// Package repro_bench holds the benchmark harness that regenerates
// every table and figure of the paper's evaluation section
// (EXPERIMENTS.md records the full-scale numbers; these testing.B
// targets run the same code paths at the small scale so they complete
// in CI time).
//
// One benchmark per experiment:
//
//	BenchmarkTable1DatasetGen           Table I   dataset generation
//	BenchmarkTable2PhraseEmbedderTraining Table II  objective comparison
//	BenchmarkTable3LocalBaselines       Table III vs Local NER systems
//	BenchmarkTable4LocalVsGlobal        Table IV  ablation + timing
//	BenchmarkTable5GlobalBaselines      Table V   vs Global NER systems
//	BenchmarkFigure3ComponentAblation   Figure 3  component curves
//	BenchmarkFigure4FrequencyImpact     Figure 4  frequency-binned recall
//
// plus the design-choice ablations called out in DESIGN.md and
// microbenchmarks of the pipeline's hot components.
package repro

import (
	"sync"
	"testing"

	"nerglobalizer/internal/cluster"
	"nerglobalizer/internal/core"
	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/ctrie"
	"nerglobalizer/internal/experiments"
	"nerglobalizer/internal/metrics"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/phrase"
	"nerglobalizer/internal/types"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

// suite returns a shared trained small-scale suite; training happens
// once, outside every benchmark's timer (and is shared with the
// integration test).
func suite(tb testing.TB) *experiments.Suite {
	tb.Helper()
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.SmallScale())
		benchSuite.TrainAll()
	})
	return benchSuite
}

func BenchmarkTable1DatasetGen(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := s.Table1()
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2PhraseEmbedderTraining(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := s.Table2()
		if len(tab.Rows) != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkTable3LocalBaselines(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := s.Table3()
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4LocalVsGlobal(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := s.Table4()
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable5GlobalBaselines(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := s.Table5()
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure3ComponentAblation(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := s.Figure3()
		if len(tab.Rows) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkFigure4FrequencyImpact(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := s.Figure4()
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkErrorAnalysis(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := s.ErrorAnalysis()
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- End-to-end pipeline benchmarks (the Table IV timing columns) ---

// BenchmarkPipelineLocalPhase measures the Local NER pass alone over
// the D1 stream (the "Local NER Execution Time" column of Table IV).
func BenchmarkPipelineLocalPhase(b *testing.B) {
	s := suite(b)
	d := s.Datasets()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.G.Run(d.Sentences, core.ModeLocalOnly)
		if len(res.Local) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkPipelineFull measures the complete pipeline over D1 (Local
// plus the "Time Overhead" of Global NER).
func BenchmarkPipelineFull(b *testing.B) {
	s := suite(b)
	d := s.Datasets()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.G.Run(d.Sentences, core.ModeFull)
		if len(res.Final) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkPipelineIncrementalCycle compares the cost of one extra
// execution cycle under the batch-recompute engine (ProcessBatch,
// global phase over the whole accumulated stream) versus the
// incremental engine (per-surface cluster growth, dirty-cluster
// re-classification only).
func BenchmarkPipelineIncrementalCycle(b *testing.B) {
	s := suite(b)
	d := s.Datasets()[0]
	warm := d.Sentences[:300]
	batch := d.Sentences[300:350]
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s.G.Reset()
			s.G.ProcessBatch(warm, core.ModeFull)
			b.StartTimer()
			s.G.ProcessBatch(batch, core.ModeFull)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inc := core.NewIncremental(s.G)
			inc.Cycle(warm)
			b.StartTimer()
			inc.Cycle(batch)
		}
	})
}

// BenchmarkAblationLocalEncoder compares the two Local NER language-
// model families (Transformer stand-in vs BiGRU) end to end: each
// sub-benchmark trains its own pipeline and reports macro-F1 on D1.
func BenchmarkAblationLocalEncoder(b *testing.B) {
	s := suite(b)
	d := s.Datasets()[0]
	train := s.Scale.TrainSet().Sentences
	d5 := s.Scale.D5().Sentences
	for _, kind := range []core.EncoderKind{core.EncoderTransformer, core.EncoderBiGRU} {
		b.Run(kind.String(), func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				cfg := s.Scale.Core
				cfg.Kind = kind
				g := core.New(cfg)
				g.PretrainEncoder(corpus.PretrainTweets(s.Scale.PretrainN, 21))
				g.FineTuneLocal(train)
				g.TrainGlobal(d5)
				res := g.Run(d.Sentences, core.ModeFull)
				f1 = metrics.Evaluate(d.GoldByKey(), res.Final).MacroF1()
			}
			b.ReportMetric(f1, "macroF1")
		})
	}
}

// BenchmarkAblationLinkage sweeps the agglomerative linkage criterion
// on a fixed mention-embedding workload.
func BenchmarkAblationLinkage(b *testing.B) {
	rng := nn.NewRNG(14)
	embs := make([][]float64, 90)
	for i := range embs {
		v := make([]float64, 24)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		embs[i] = nn.Normalize(v)
	}
	for _, lk := range []cluster.Linkage{cluster.AverageLinkage, cluster.SingleLinkage, cluster.CompleteLinkage} {
		b.Run(lk.String(), func(b *testing.B) {
			var count int
			for i := 0; i < b.N; i++ {
				count = cluster.AgglomerativeWithLinkage(embs, 0.75, lk).Count
			}
			b.ReportMetric(float64(count), "clusters")
		})
	}
}

// --- Design-choice ablations (DESIGN.md) ---

// BenchmarkAblationLossFunctions re-trains the Phrase Embedder with
// each contrastive objective and reports the downstream classifier's
// validation macro-F1 as a benchmark metric.
func BenchmarkAblationLossFunctions(b *testing.B) {
	s := suite(b)
	d5 := s.Scale.D5().Sentences
	for _, obj := range []core.Objective{core.ObjectiveTriplet, core.ObjectiveSoftNN} {
		b.Run(obj.String(), func(b *testing.B) {
			b.ReportAllocs()
			var f1 float64
			for i := 0; i < b.N; i++ {
				v := s.G.WithObjective(obj)
				res := v.TrainGlobal(d5)
				f1 = res.Classifier.ValMacroF1
			}
			b.ReportMetric(f1, "valMacroF1")
		})
	}
}

// BenchmarkAblationL2Norm compares mention pooling with and without
// the l2-normalization step of eq. (2) under the cosine separation
// metric the clustering uses. The two variants measure identically —
// cosine geometry is scale-invariant — which is itself the finding:
// the normalization step cannot change the clustering geometry and
// exists to condition the input scale of the trainable dense layer
// (eq. 3), stabilizing contrastive training.
func BenchmarkAblationL2Norm(b *testing.B) {
	s := suite(b)
	d := s.Scale.D5()
	poolRaw := func(emb *nn.Matrix, sp types.Span) []float64 {
		start, end := sp.Start, sp.End
		if end > emb.Rows {
			end = emb.Rows
		}
		if start >= end {
			return make([]float64, emb.Cols)
		}
		sum := make([]float64, emb.Cols)
		for i := start; i < end; i++ {
			nn.AddScaled(sum, emb.Row(i), 1)
		}
		nn.Scale(sum, 1/float64(end-start))
		return sum
	}
	for _, variant := range []struct {
		name string
		pool func(*nn.Matrix, types.Span) []float64
	}{
		{"l2norm", phrase.Pool},
		{"raw", poolRaw},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var sep float64
			for i := 0; i < b.N; i++ {
				sep = typeSeparation(s, d, variant.pool)
			}
			b.ReportMetric(sep, "separation")
		})
	}
}

// typeSeparation computes mean inter-type minus mean intra-type cosine
// distance over pooled gold-mention embeddings.
func typeSeparation(s *experiments.Suite, d *corpus.Dataset, pool func(*nn.Matrix, types.Span) []float64) float64 {
	byType := map[types.EntityType][][]float64{}
	count := 0
	for _, sent := range d.Sentences {
		if count > 300 {
			break
		}
		var emb *nn.Matrix
		for _, g := range sent.Gold {
			if g.End > len(sent.Tokens) {
				continue
			}
			if emb == nil {
				emb = s.G.Tagger.Embed(sent.Tokens)
			}
			if g.End > emb.Rows {
				continue
			}
			byType[g.Type] = append(byType[g.Type], pool(emb, g.Span))
			count++
		}
	}
	intra, intraN := 0.0, 0
	inter, interN := 0.0, 0
	typesList := types.EntityTypes
	for ti, ta := range typesList {
		as := byType[ta]
		for i := 0; i < len(as) && i < 30; i++ {
			for j := i + 1; j < len(as) && j < 30; j++ {
				intra += nn.CosineDistance(as[i], as[j])
				intraN++
			}
		}
		for _, tb := range typesList[ti+1:] {
			bs := byType[tb]
			for i := 0; i < len(as) && i < 15; i++ {
				for j := 0; j < len(bs) && j < 15; j++ {
					inter += nn.CosineDistance(as[i], bs[j])
					interN++
				}
			}
		}
	}
	if intraN == 0 || interN == 0 {
		return 0
	}
	return inter/float64(interN) - intra/float64(intraN)
}

// BenchmarkAblationPooling compares the learned attention pooling of
// eqs. (6)–(8) against plain mean pooling for the global candidate
// embedding, reporting end-to-end macro-F1 on D1.
func BenchmarkAblationPooling(b *testing.B) {
	s := suite(b)
	d := s.Datasets()[0]
	b.Run("attention", func(b *testing.B) {
		var f1 float64
		for i := 0; i < b.N; i++ {
			res := s.G.Run(d.Sentences, core.ModeFull)
			f1 = metrics.Evaluate(d.GoldByKey(), res.Final).MacroF1()
		}
		b.ReportMetric(f1, "macroF1")
	})
	// Mean pooling is approximated by classifying each cluster from
	// the plain average of its member embeddings (a 1-mention pseudo
	// cluster), bypassing the attention weights.
	b.Run("mean", func(b *testing.B) {
		var f1 float64
		for i := 0; i < b.N; i++ {
			res := s.G.Run(d.Sentences, core.ModeFull)
			// Re-classify every candidate from its mean embedding.
			pred := map[types.SentenceKey][]types.Entity{}
			for _, c := range s.G.CandidateBase().All() {
				mean := nn.Mean(c.Embs)
				et, _ := s.G.Classifier.Classify([][]float64{mean})
				if et == types.None {
					continue
				}
				for _, m := range c.Mentions {
					pred[m.Key] = append(pred[m.Key], types.Entity{Span: m.Span, Type: et})
				}
			}
			_ = res
			f1 = metrics.Evaluate(d.GoldByKey(), pred).MacroF1()
		}
		b.ReportMetric(f1, "macroF1")
	})
}

// BenchmarkAblationClusterThreshold sweeps the agglomerative
// clustering threshold and reports end-to-end macro-F1 on D1.
func BenchmarkAblationClusterThreshold(b *testing.B) {
	s := suite(b)
	d := s.Datasets()[0]
	for _, th := range []float64{0.25, 0.5, 0.75, 0.95} {
		b.Run(thName(th), func(b *testing.B) {
			cfg := s.Scale.Core
			cfg.ClusterThreshold = th
			// Rebuild a pipeline view sharing trained components.
			g := s.G.WithClusterThreshold(th)
			var f1 float64
			for i := 0; i < b.N; i++ {
				res := g.Run(d.Sentences, core.ModeFull)
				f1 = metrics.Evaluate(d.GoldByKey(), res.Final).MacroF1()
			}
			b.ReportMetric(f1, "macroF1")
			_ = cfg
		})
	}
}

func thName(th float64) string {
	switch th {
	case 0.25:
		return "th0.25"
	case 0.5:
		return "th0.50"
	case 0.75:
		return "th0.75"
	default:
		return "th0.95"
	}
}

// BenchmarkAblationMentionScan compares CTrie lookup against a naive
// substring scan for mention extraction over the D1 stream.
func BenchmarkAblationMentionScan(b *testing.B) {
	s := suite(b)
	d := s.Datasets()[0]
	// Build the trie from gold surfaces.
	trie := ctrie.New()
	var surfaces [][]string
	for _, sent := range d.Sentences {
		for _, g := range sent.Gold {
			if g.End <= len(sent.Tokens) {
				toks := sent.Tokens[g.Start:g.End]
				if trie.Insert(toks) {
					surfaces = append(surfaces, toks)
				}
			}
		}
	}
	b.Run("ctrie", func(b *testing.B) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			total = 0
			for _, sent := range d.Sentences {
				total += len(trie.Scan(sent.Tokens))
			}
		}
		b.ReportMetric(float64(total), "matches")
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			total = 0
			for _, sent := range d.Sentences {
				total += naiveScan(sent.Tokens, surfaces)
			}
		}
		b.ReportMetric(float64(total), "matches")
	})
}

// naiveScan counts longest-match occurrences by comparing every
// surface at every position.
func naiveScan(tokens []string, surfaces [][]string) int {
	matches := 0
	for i := 0; i < len(tokens); {
		best := 0
		for _, s := range surfaces {
			if len(s) > best && i+len(s) <= len(tokens) && equalFoldTokens(tokens[i:i+len(s)], s) {
				best = len(s)
			}
		}
		if best > 0 {
			matches++
			i += best
		} else {
			i++
		}
	}
	return matches
}

func equalFoldTokens(a, b []string) bool {
	for i := range a {
		if !equalFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// --- Component microbenchmarks ---

func BenchmarkEncoderForward(b *testing.B) {
	s := suite(b)
	tokens := []string{"cases", "rise", "in", "Italy", "again", "#covid"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.G.Tagger.Embed(tokens)
	}
}

func BenchmarkTaggerRun(b *testing.B) {
	s := suite(b)
	tokens := []string{"governor", "Beshear", "gives", "an", "update", "on", "covid"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.G.Tagger.Run(tokens)
	}
}

// BenchmarkEncoderForwardParallel shards a batch of tagger forwards
// across the worker pool, one sentence per worker, against the serial
// baseline. On a single-core host the two measure alike; the point of
// the serial/parallel pair is the scaling comparison on multi-core
// hosts (and the allocs/op column, which must not grow with workers).
func BenchmarkEncoderForwardParallel(b *testing.B) {
	s := suite(b)
	d := s.Datasets()[0]
	batch := make([][]string, 0, 64)
	for _, sent := range d.Sentences[:64] {
		batch = append(batch, sent.Tokens)
	}
	for _, bc := range []struct {
		name string
		pool *parallel.Pool
	}{
		{"serial", nil},
		{"parallel", parallel.New(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := s.G.Tagger.RunBatch(batch, bc.pool)
				if len(res) != len(batch) {
					b.Fatal("missing results")
				}
			}
		})
	}
}

// BenchmarkPairwiseDistances measures the O(n²) cosine-distance matrix
// that dominates agglomerative clustering of frequent surface forms,
// serial versus row-sharded across the pool.
func BenchmarkPairwiseDistances(b *testing.B) {
	rng := nn.NewRNG(8)
	embs := make([][]float64, 256)
	for i := range embs {
		v := make([]float64, 24)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		embs[i] = nn.Normalize(v)
	}
	for _, bc := range []struct {
		name string
		pool *parallel.Pool
	}{
		{"serial", nil},
		{"parallel", parallel.New(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist := cluster.PairwiseCosineDistances(embs, bc.pool)
				if len(dist) != len(embs) {
					b.Fatal("bad matrix")
				}
			}
		})
	}
}

func BenchmarkCTrieScan(b *testing.B) {
	trie := ctrie.New()
	rng := nn.NewRNG(9)
	vocab := []string{"alpha", "beta", "gamma", "delta", "covid", "italy", "beshear"}
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(3)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))] + string(rune('a'+rng.Intn(26)))
		}
		trie.Insert(toks)
	}
	sentence := []string{"alphaa", "betab", "the", "covidc", "italyd", "again", "beshear"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie.Scan(sentence)
	}
}

func BenchmarkAgglomerativeClustering(b *testing.B) {
	rng := nn.NewRNG(4)
	embs := make([][]float64, 120)
	for i := range embs {
		v := make([]float64, 24)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		embs[i] = nn.Normalize(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Agglomerative(embs, 0.75)
	}
}

func BenchmarkPhraseEmbed(b *testing.B) {
	s := suite(b)
	emb := s.G.Tagger.Embed([]string{"governor", "Beshear", "gives", "an", "update"})
	span := types.Span{Start: 1, End: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.G.Embedder.Embed(emb, span)
	}
}

func BenchmarkClassifierClassify(b *testing.B) {
	s := suite(b)
	rng := nn.NewRNG(6)
	embs := make([][]float64, 10)
	for i := range embs {
		v := make([]float64, s.Scale.Core.Encoder.Dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		embs[i] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.G.Classifier.Classify(embs)
	}
}
