module nerglobalizer

go 1.22
