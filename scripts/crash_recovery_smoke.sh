#!/usr/bin/env bash
# Crash-recovery smoke: serve a golden stream, SIGKILL the process
# mid-stream, restart it from the same -data-dir, and hard-gate that
# the finished stream's annotations are byte-identical to an
# uninterrupted run. Also pipes a live inclusion proof through the
# offline verifier. Exits non-zero on any divergence.
#
# Usage: scripts/crash_recovery_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
REF_PORT=18080
DUR_PORT=18081
SERVE_PID=""

cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
}
trap cleanup EXIT

say() { echo "crash_recovery_smoke: $*"; }

go build -o "$WORK/serve" ./cmd/serve
go build -o "$WORK/nerprove" ./cmd/nerprove

# The golden stream: fixed request bodies, fed in the same order to
# every run. Entity-bearing text so the byte-diff gates real
# annotations, not empty tables.
BODIES=(
  '{"tweets":["Cases rise in Italy again","Obama visits Paris this week"]}'
  '{"tweets":["Google opens office in Milan","Fans cheer for Milan tonight"]}'
  '{"tweets":["Quarantine extended in Italy","Paris streets are quiet"]}'
  '{"tweets":["Obama speech trends worldwide","New cafe opens in Paris"]}'
  '{"tweets":["Milan derby postponed","Google stock climbs again"]}'
  '{"tweets":["Italy announces new measures","Obama lands in Milan"]}'
)
HALF=3

wait_healthy() { # port timeout_sec
  local port="$1" deadline=$(( $(date +%s) + $2 ))
  while :; do
    if [ "$(curl -s -o /dev/null -w '%{http_code}' "http://localhost:$port/healthz" || true)" = "200" ]; then
      return 0
    fi
    if [ "$(date +%s)" -ge "$deadline" ]; then
      say "server on :$port not healthy within $2 s"
      return 1
    fi
    sleep 1
  done
}

feed() { # port from to
  local port="$1" i
  for (( i=$2; i<$3; i++ )); do
    curl -sf -X POST "http://localhost:$port/annotate" -d "${BODIES[$i]}" > /dev/null
  done
}

# Train once, save the checkpoint, and use the same process as the
# uninterrupted reference run.
say "training reference server (saves the shared checkpoint)"
"$WORK/serve" -scale small -save "$WORK/model.ckpt" -addr ":$REF_PORT" \
  > "$WORK/ref.log" 2>&1 &
SERVE_PID=$!
wait_healthy "$REF_PORT" 900
feed "$REF_PORT" 0 "${#BODIES[@]}"
curl -sf "http://localhost:$REF_PORT/entities" > "$WORK/ref_entities.json"
kill "$SERVE_PID" && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# Durable run: same checkpoint, half the stream, then SIGKILL — no
# shutdown hook gets to run, recovery starts from fsynced state only.
say "durable run, SIGKILL after $HALF of ${#BODIES[@]} requests"
"$WORK/serve" -model "$WORK/model.ckpt" -data-dir "$WORK/state" \
  -snapshot-every 2 -fsync always -addr ":$DUR_PORT" \
  > "$WORK/durable1.log" 2>&1 &
SERVE_PID=$!
wait_healthy "$DUR_PORT" 300
feed "$DUR_PORT" 0 "$HALF"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# Restart from the data dir: /healthz answers 503 "replaying" until the
# snapshot restore + WAL replay finish, then the stream continues.
say "restarting from $WORK/state"
"$WORK/serve" -model "$WORK/model.ckpt" -data-dir "$WORK/state" \
  -snapshot-every 2 -fsync always -addr ":$DUR_PORT" \
  > "$WORK/durable2.log" 2>&1 &
SERVE_PID=$!
wait_healthy "$DUR_PORT" 300
feed "$DUR_PORT" "$HALF" "${#BODIES[@]}"
curl -sf "http://localhost:$DUR_PORT/entities" > "$WORK/resumed_entities.json"

say "byte-diffing resumed stream against uninterrupted reference"
if ! diff -u "$WORK/ref_entities.json" "$WORK/resumed_entities.json"; then
  say "FAIL: resumed annotations diverge from the uninterrupted run"
  exit 1
fi

say "verifying a live inclusion proof offline"
curl -sf "http://localhost:$DUR_PORT/proof?tweet=0" > "$WORK/proof.json"
"$WORK/nerprove" -in "$WORK/proof.json"

kill "$SERVE_PID" && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
say "PASS: fsync=always crash recovery is byte-identical and the proof verifies"

# Group-commit leg: the same SIGKILL protocol under -fsync group with
# async snapshots. Acks block until the covering fsync of the commit
# window, so a kill in the append-to-fsync gap must never lose a
# request the client saw acknowledged — recovery from the group-mode
# state dir has to reproduce the same bytes as the always-mode run.
GRP_PORT=18082
say "group-commit run, SIGKILL after $HALF of ${#BODIES[@]} requests"
"$WORK/serve" -model "$WORK/model.ckpt" -data-dir "$WORK/gstate" \
  -snapshot-every 2 -fsync group -snapshot-async -addr ":$GRP_PORT" \
  > "$WORK/group1.log" 2>&1 &
SERVE_PID=$!
wait_healthy "$GRP_PORT" 300
feed "$GRP_PORT" 0 "$HALF"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

say "restarting from $WORK/gstate"
"$WORK/serve" -model "$WORK/model.ckpt" -data-dir "$WORK/gstate" \
  -snapshot-every 2 -fsync group -snapshot-async -addr ":$GRP_PORT" \
  > "$WORK/group2.log" 2>&1 &
SERVE_PID=$!
wait_healthy "$GRP_PORT" 300
feed "$GRP_PORT" "$HALF" "${#BODIES[@]}"
curl -sf "http://localhost:$GRP_PORT/entities" > "$WORK/group_entities.json"

say "byte-diffing group-commit resumed stream against uninterrupted reference"
if ! diff -u "$WORK/ref_entities.json" "$WORK/group_entities.json"; then
  say "FAIL: group-commit resumed annotations diverge from the uninterrupted run"
  exit 1
fi

say "verifying a live inclusion proof from the group-mode server"
curl -sf "http://localhost:$GRP_PORT/proof?tweet=0" > "$WORK/group_proof.json"
"$WORK/nerprove" -in "$WORK/group_proof.json"

kill "$SERVE_PID" && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
say "PASS: crash recovery is byte-identical in both fsync modes and the proofs verify"
