# Developer entry points. `make check` is the tier-1 gate: vet, build,
# full test suite under the race detector, and a one-iteration pass
# over the kernel and parallelism micro-benchmarks so a broken
# benchmark cannot sit unnoticed until someone profiles.

GO ?= go

.PHONY: all check vet build test race bench-smoke bench bench-json

all: check

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows suite training ~15x, so the heavyweight
# packages (core, experiments) need far more than go test's default
# 10-minute per-package timeout.
race:
	$(GO) test -race -timeout 60m ./...

# One iteration of the fast micro-benchmarks (no suite training):
# compiles every benchmark in the tree and executes the kernel and
# parallelism ones.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkMatMulKernels' -benchtime 1x ./internal/nn/
	$(GO) test -run NONE -bench 'BenchmarkTrieScan' -benchtime 1x ./internal/ctrie/
	$(GO) test -run NONE -bench 'BenchmarkPairwiseDistances' -benchtime 1x .

# Regenerates BENCH_pipeline.json: continuous-execution throughput
# (cycles/sec) with the amortization layer on vs off at several worker
# counts, including the byte-identity cross-check (trains the
# small-scale pipeline first; takes a few minutes).
bench-json:
	$(GO) run ./cmd/benchpipeline -out BENCH_pipeline.json

# The full benchmark suite, including the table/figure reproductions
# (trains the small-scale suite first; takes several minutes).
bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...
