package transformer

import (
	"hash/fnv"
	"math"
	"strings"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/tokenizer"
)

// hashToken maps a lower-cased token to a vocabulary bucket.
func hashToken(tok string, buckets int) int {
	h := fnv.New32a()
	h.Write([]byte(strings.ToLower(tok)))
	return int(h.Sum32() % uint32(buckets))
}

// charTrigrams returns the padded character trigrams of a token
// ("^it$" → "^it", "it$"), which give morphologically related and
// misspelled tokens overlapping representations.
func charTrigrams(tok string) []string {
	padded := "^" + strings.ToLower(tok) + "$"
	runes := []rune(padded)
	if len(runes) < 3 {
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-2)
	for i := 0; i+3 <= len(runes); i++ {
		out = append(out, string(runes[i:i+3]))
	}
	return out
}

// Orthographic feature indices. Token identity is hashed lower-cased,
// so casing and platform-artifact signals — which the WordPiece vocab
// of a real BERT preserves — enter through dedicated learned feature
// vectors instead.
const (
	featCap = iota
	featAllCaps
	featDigit
	featHashtag
	featUser
	featURL
	numOrthoFeats
)

// orthoFeatures returns the active orthographic features of a token.
func orthoFeatures(tok string) []int {
	var out []int
	if tokenizer.IsAllCaps(tok) {
		out = append(out, featAllCaps)
	} else if tokenizer.IsCapitalized(tok) {
		out = append(out, featCap)
	}
	if tokenizer.HasDigit(tok) {
		out = append(out, featDigit)
	}
	switch {
	case tokenizer.IsHashtag(tok):
		out = append(out, featHashtag)
	case tokenizer.IsUserMention(tok):
		out = append(out, featUser)
	case tokenizer.IsURLToken(tok):
		out = append(out, featURL)
	}
	return out
}

// embedding turns token strings into Dim-dimensional vectors: the sum
// of a hashed whole-token embedding, the mean of hashed character
// trigram embeddings, learned orthographic feature vectors, and a
// fixed sinusoidal position encoding.
type embedding struct {
	cfg     Config
	tok     *nn.Param
	char    *nn.Param
	ortho   *nn.Param
	pos     *nn.Matrix
	scale   float64
	lastIdx []embedIndex // cached hash indices for backprop
}

// embedIndex caches, per position, the buckets that contributed to the
// forward embedding so Backward can route gradients sparsely.
type embedIndex struct {
	tokBucket   int
	charBuckets []int
	orthoFeats  []int
}

func newEmbedding(cfg Config, rng *nn.RNG) *embedding {
	e := &embedding{
		cfg:   cfg,
		tok:   nn.NewParam("embed.tok", cfg.VocabBuckets, cfg.Dim),
		char:  nn.NewParam("embed.char", cfg.CharBuckets, cfg.Dim),
		ortho: nn.NewParam("embed.ortho", numOrthoFeats, cfg.Dim),
		pos:   nn.NewMatrix(cfg.MaxLen, cfg.Dim),
		scale: math.Sqrt(float64(cfg.Dim)),
	}
	rng.NormalInit(e.tok.W, 0.1)
	rng.NormalInit(e.char.W, 0.1)
	rng.NormalInit(e.ortho.W, 0.1)
	// Standard sinusoidal position encoding.
	for p := 0; p < cfg.MaxLen; p++ {
		row := e.pos.Row(p)
		for i := 0; i < cfg.Dim; i += 2 {
			freq := math.Pow(10000, -float64(i)/float64(cfg.Dim))
			row[i] = math.Sin(float64(p) * freq)
			if i+1 < cfg.Dim {
				row[i+1] = math.Cos(float64(p) * freq)
			}
		}
	}
	e.pos.ScaleInPlace(0.1)
	return e
}

// forward embeds a token sequence into a T×Dim matrix.
func (e *embedding) forward(tokens []string) *nn.Matrix {
	T := len(tokens)
	out := nn.NewMatrix(T, e.cfg.Dim)
	e.lastIdx = make([]embedIndex, T)
	for i, tok := range tokens {
		row := out.Row(i)
		tb := hashToken(tok, e.cfg.VocabBuckets)
		copy(row, e.tok.W.Row(tb))
		grams := charTrigrams(tok)
		cbs := make([]int, len(grams))
		if len(grams) > 0 {
			inv := 1 / float64(len(grams))
			for g, gram := range grams {
				cb := hashToken(gram, e.cfg.CharBuckets)
				cbs[g] = cb
				nn.AddScaled(row, e.char.W.Row(cb), inv)
			}
		}
		feats := orthoFeatures(tok)
		for _, f := range feats {
			nn.AddScaled(row, e.ortho.W.Row(f), 1)
		}
		nn.AddScaled(row, e.pos.Row(i), 1)
		e.lastIdx[i] = embedIndex{tokBucket: tb, charBuckets: cbs, orthoFeats: feats}
	}
	return out
}

// backward routes the upstream gradient into the token and trigram
// embedding tables using the indices cached by forward.
func (e *embedding) backward(dout *nn.Matrix) {
	if e.lastIdx == nil {
		panic("transformer: embedding backward before forward")
	}
	for i := range e.lastIdx {
		drow := dout.Row(i)
		idx := e.lastIdx[i]
		nn.AddScaled(e.tok.G.Row(idx.tokBucket), drow, 1)
		if len(idx.charBuckets) > 0 {
			inv := 1 / float64(len(idx.charBuckets))
			for _, cb := range idx.charBuckets {
				nn.AddScaled(e.char.G.Row(cb), drow, inv)
			}
		}
		for _, f := range idx.orthoFeats {
			nn.AddScaled(e.ortho.G.Row(f), drow, 1)
		}
	}
}

func (e *embedding) params() []*nn.Param { return []*nn.Param{e.tok, e.char, e.ortho} }
