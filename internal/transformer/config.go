// Package transformer implements a from-scratch Transformer encoder
// with full backpropagation, written against the internal/nn substrate.
//
// It stands in for BERTweet in the NER Globalizer reproduction: the
// pipeline only needs (a) token-level contextual embeddings from the
// encoder's final layer and (b) a fine-tunable stack, both of which
// this package provides at laptop scale. Tokens are embedded through
// feature hashing of the lower-cased token plus its character
// trigrams, so out-of-vocabulary tokens — the norm on microblogs —
// still receive informative embeddings.
package transformer

// Config holds the encoder hyperparameters.
type Config struct {
	// Dim is the model (embedding) dimensionality d.
	Dim int
	// Heads is the number of attention heads; must divide Dim.
	Heads int
	// Layers is the number of stacked encoder layers.
	Layers int
	// FFDim is the inner dimensionality of the feed-forward blocks.
	FFDim int
	// MaxLen is the maximum sequence length; longer inputs are
	// truncated.
	MaxLen int
	// VocabBuckets is the number of feature-hash buckets for whole
	// tokens.
	VocabBuckets int
	// CharBuckets is the number of feature-hash buckets for character
	// trigrams.
	CharBuckets int
	// Dropout is the dropout rate applied inside encoder layers during
	// training.
	Dropout float64
	// Seed drives all weight initialization and dropout masks.
	Seed int64
}

// DefaultConfig returns the configuration used across the
// reproduction: a deliberately small encoder that trains in seconds on
// a single CPU while preserving the qualitative behaviour of a large
// pre-trained model.
func DefaultConfig() Config {
	return Config{
		Dim:          32,
		Heads:        2,
		Layers:       2,
		FFDim:        64,
		MaxLen:       48,
		VocabBuckets: 2048,
		CharBuckets:  512,
		Dropout:      0.1,
		Seed:         1,
	}
}

func (c Config) validate() {
	if c.Dim <= 0 || c.Heads <= 0 || c.Layers <= 0 || c.FFDim <= 0 ||
		c.MaxLen <= 0 || c.VocabBuckets <= 0 || c.CharBuckets <= 0 {
		panic("transformer: all Config sizes must be positive")
	}
	if c.Dim%c.Heads != 0 {
		panic("transformer: Dim must be divisible by Heads")
	}
}
