package transformer

import (
	"math"

	"nerglobalizer/internal/nn"
)

// multiHeadAttention is bidirectional (unmasked) scaled dot-product
// self-attention with Heads heads, as in the original Transformer
// encoder. It operates on one sequence at a time: the input is a
// T×Dim matrix of token states.
type multiHeadAttention struct {
	cfg Config
	wq  *nn.Dense
	wk  *nn.Dense
	wv  *nn.Dense
	wo  *nn.Dense

	// Cached forward state for backprop.
	q, k, v *nn.Matrix
	attn    []*nn.Matrix // per-head T×T softmax weights
	concat  *nn.Matrix

	// Training-path scratch, reused across Forward/Backward calls so the
	// per-head intermediates stop allocating. Values are unchanged — only
	// the backing storage is recycled. The concurrency-safe Infer path
	// never touches these.
	scores, qhS, khS, vhS, ohS *nn.Matrix
	dAttnS, dScoresS           *nn.Matrix
	dOhS, dVhS, dQhS, dKhS     *nn.Matrix
	bqhS, bkhS, bvhS           *nn.Matrix
}

func newMultiHeadAttention(name string, cfg Config, rng *nn.RNG) *multiHeadAttention {
	return &multiHeadAttention{
		cfg: cfg,
		wq:  nn.NewDense(name+".wq", cfg.Dim, cfg.Dim, rng),
		wk:  nn.NewDense(name+".wk", cfg.Dim, cfg.Dim, rng),
		wv:  nn.NewDense(name+".wv", cfg.Dim, cfg.Dim, rng),
		wo:  nn.NewDense(name+".wo", cfg.Dim, cfg.Dim, rng),
	}
}

// headSlice returns the T×dh submatrix of m for head h as a copy.
func (a *multiHeadAttention) headSlice(m *nn.Matrix, h int) *nn.Matrix {
	dh := a.cfg.Dim / a.cfg.Heads
	return a.headSliceInto(nn.NewMatrix(m.Rows, dh), m, h)
}

// headSliceInto fills dst with the T×dh submatrix of m for head h.
func (a *multiHeadAttention) headSliceInto(dst, m *nn.Matrix, h int) *nn.Matrix {
	dh := a.cfg.Dim / a.cfg.Heads
	for i := 0; i < m.Rows; i++ {
		copy(dst.Row(i), m.Row(i)[h*dh:(h+1)*dh])
	}
	return dst
}

// headStore adds src (T×dh) into the head-h columns of dst (T×Dim).
func (a *multiHeadAttention) headStore(dst, src *nn.Matrix, h int) {
	dh := a.cfg.Dim / a.cfg.Heads
	for i := 0; i < src.Rows; i++ {
		drow := dst.Row(i)[h*dh : (h+1)*dh]
		for j, v := range src.Row(i) {
			drow[j] += v
		}
	}
}

func (a *multiHeadAttention) Forward(x *nn.Matrix, train bool) *nn.Matrix {
	a.q = a.wq.Forward(x, train)
	a.k = a.wk.Forward(x, train)
	a.v = a.wv.Forward(x, train)
	T := x.Rows
	dh := a.cfg.Dim / a.cfg.Heads
	invSqrt := 1 / math.Sqrt(float64(dh))
	a.attn = make([]*nn.Matrix, a.cfg.Heads)
	a.concat = nn.NewMatrix(T, a.cfg.Dim)
	a.qhS = nn.ReuseMatrix(a.qhS, T, dh)
	a.khS = nn.ReuseMatrix(a.khS, T, dh)
	a.vhS = nn.ReuseMatrix(a.vhS, T, dh)
	a.ohS = nn.ReuseMatrix(a.ohS, T, dh)
	a.scores = nn.ReuseMatrix(a.scores, T, T)
	for h := 0; h < a.cfg.Heads; h++ {
		qh := a.headSliceInto(a.qhS, a.q, h)
		kh := a.headSliceInto(a.khS, a.k, h)
		vh := a.headSliceInto(a.vhS, a.v, h)
		nn.MatMulTInto(a.scores, qh, kh)
		a.scores.ScaleInPlace(invSqrt)
		attn := nn.SoftmaxRows(a.scores)
		a.attn[h] = attn
		nn.MatMulInto(a.ohS, attn, vh)
		a.headStore(a.concat, a.ohS, h)
	}
	return a.wo.Forward(a.concat, train)
}

func (a *multiHeadAttention) Backward(dout *nn.Matrix) *nn.Matrix {
	if a.concat == nil {
		panic("transformer: attention backward before forward")
	}
	dConcat := a.wo.Backward(dout)
	T := dConcat.Rows
	dh := a.cfg.Dim / a.cfg.Heads
	invSqrt := 1 / math.Sqrt(float64(dh))
	dq := nn.NewMatrix(T, a.cfg.Dim)
	dk := nn.NewMatrix(T, a.cfg.Dim)
	dv := nn.NewMatrix(T, a.cfg.Dim)
	a.dOhS = nn.ReuseMatrix(a.dOhS, T, dh)
	a.bqhS = nn.ReuseMatrix(a.bqhS, T, dh)
	a.bkhS = nn.ReuseMatrix(a.bkhS, T, dh)
	a.bvhS = nn.ReuseMatrix(a.bvhS, T, dh)
	a.dVhS = nn.ReuseMatrix(a.dVhS, T, dh)
	a.dQhS = nn.ReuseMatrix(a.dQhS, T, dh)
	a.dKhS = nn.ReuseMatrix(a.dKhS, T, dh)
	a.dAttnS = nn.ReuseMatrix(a.dAttnS, T, T)
	a.dScoresS = nn.ReuseMatrix(a.dScoresS, T, T)
	for h := 0; h < a.cfg.Heads; h++ {
		dOh := a.headSliceInto(a.dOhS, dConcat, h)
		attn := a.attn[h]
		qh := a.headSliceInto(a.bqhS, a.q, h)
		kh := a.headSliceInto(a.bkhS, a.k, h)
		vh := a.headSliceInto(a.bvhS, a.v, h)
		// dVh = attnᵀ · dOh; dAttn = dOh · Vhᵀ.
		dVh := a.dVhS
		nn.TMatMulInto(dVh, attn, dOh)
		dAttn := a.dAttnS
		nn.MatMulTInto(dAttn, dOh, vh)
		// Softmax backward per row: dS = A ⊙ (dA − Σ_j dA_j·A_j).
		dScores := a.dScoresS
		for i := 0; i < T; i++ {
			arow := attn.Row(i)
			darow := dAttn.Row(i)
			dsrow := dScores.Row(i)
			dotSum := nn.Dot(arow, darow)
			for j := range dsrow {
				dsrow[j] = arow[j] * (darow[j] - dotSum)
			}
		}
		dScores.ScaleInPlace(invSqrt)
		// dQh = dScores · Kh; dKh = dScoresᵀ · Qh.
		dQh := a.dQhS
		nn.MatMulInto(dQh, dScores, kh)
		dKh := a.dKhS
		nn.TMatMulInto(dKh, dScores, qh)
		a.headStore(dq, dQh, h)
		a.headStore(dk, dKh, h)
		a.headStore(dv, dVh, h)
	}
	dx := a.wq.Backward(dq)
	dx.AddInPlace(a.wk.Backward(dk))
	dx.AddInPlace(a.wv.Backward(dv))
	return dx
}

func (a *multiHeadAttention) Params() []*nn.Param {
	var ps []*nn.Param
	for _, d := range []*nn.Dense{a.wq, a.wk, a.wv, a.wo} {
		ps = append(ps, d.Params()...)
	}
	return ps
}
