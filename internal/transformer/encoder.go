package transformer

import (
	"strconv"
	"sync"
	"sync/atomic"

	"nerglobalizer/internal/nn"
)

// encoderLayer is one pre-activation Transformer block: self-attention
// and feed-forward sublayers, each wrapped with a residual connection
// and layer normalization (post-norm, as in the original BERT).
type encoderLayer struct {
	attn     *multiHeadAttention
	ln1      *nn.LayerNorm
	ff       *nn.Sequential
	ln2      *nn.LayerNorm
	drop1    *nn.Dropout
	drop2    *nn.Dropout
	residual *nn.Matrix // cached inputs for residual backprop
	mid      *nn.Matrix

	// The feed-forward sublayers, also reachable through ff: the
	// batched inference path (infer_batch.go) drives them individually
	// with fused Into kernels over caller-owned scratch.
	ff1  *nn.Dense
	gelu *nn.GELU
	ff2  *nn.Dense
}

func newEncoderLayer(name string, cfg Config, rng *nn.RNG) *encoderLayer {
	// Construction order must match the struct-literal order the layer
	// always had: attention draws from rng before the FFN denses, so
	// freshly initialized weights stay identical run to run.
	attn := newMultiHeadAttention(name+".attn", cfg, rng)
	ln1 := nn.NewLayerNorm(name+".ln1", cfg.Dim)
	ff1 := nn.NewDense(name+".ff1", cfg.Dim, cfg.FFDim, rng)
	gelu := nn.NewGELU()
	ff2 := nn.NewDense(name+".ff2", cfg.FFDim, cfg.Dim, rng)
	return &encoderLayer{
		attn:  attn,
		ln1:   ln1,
		ff:    nn.NewSequential(ff1, gelu, ff2),
		ln2:   nn.NewLayerNorm(name+".ln2", cfg.Dim),
		drop1: nn.NewDropout(cfg.Dropout, rng.Fork()),
		drop2: nn.NewDropout(cfg.Dropout, rng.Fork()),
		ff1:   ff1,
		gelu:  gelu,
		ff2:   ff2,
	}
}

func (l *encoderLayer) Forward(x *nn.Matrix, train bool) *nn.Matrix {
	l.residual = x
	h := l.attn.Forward(x, train)
	h = l.drop1.Forward(h, train)
	h.AddInPlace(x)
	mid := l.ln1.Forward(h, train)
	l.mid = mid
	f := l.ff.Forward(mid, train)
	f = l.drop2.Forward(f, train)
	f.AddInPlace(mid)
	return l.ln2.Forward(f, train)
}

func (l *encoderLayer) Backward(dout *nn.Matrix) *nn.Matrix {
	d := l.ln2.Backward(dout)
	dFF := l.drop2.Backward(d)
	dMid := l.ff.Backward(dFF)
	dMid.AddInPlace(d) // residual around feed-forward
	d2 := l.ln1.Backward(dMid)
	dAttn := l.drop1.Backward(d2)
	dx := l.attn.Backward(dAttn)
	dx.AddInPlace(d2) // residual around attention
	return dx
}

func (l *encoderLayer) Params() []*nn.Param {
	ps := l.attn.Params()
	ps = append(ps, l.ln1.Params()...)
	ps = append(ps, l.ff.Params()...)
	ps = append(ps, l.ln2.Params()...)
	return ps
}

// Encoder is the full Transformer encoder: hashing embeddings followed
// by Config.Layers encoder blocks. It processes one token sequence at
// a time and exposes the final-layer token states — the "entity-aware
// token embeddings" consumed by the rest of the pipeline once the
// encoder has been fine-tuned for NER.
type Encoder struct {
	cfg    Config
	embed  *embedding
	layers []*encoderLayer
	rng    *nn.RNG

	// scratch recycles InferScratch arenas across InferBatch calls
	// (one arena per concurrent caller; each grows to the largest
	// packed batch it has seen). The zero value is ready to use.
	scratch sync.Pool

	// prec is the active inference precision tier (nn.Precision).
	// Zero value is nn.F64 — the exact default.
	prec atomic.Int32
}

// NewEncoder builds an encoder with freshly initialized weights.
func NewEncoder(cfg Config) *Encoder {
	cfg.validate()
	rng := nn.NewRNG(cfg.Seed)
	e := &Encoder{cfg: cfg, embed: newEmbedding(cfg, rng), rng: rng}
	for i := 0; i < cfg.Layers; i++ {
		e.layers = append(e.layers, newEncoderLayer(layerName(i), cfg, rng))
	}
	return e
}

func layerName(i int) string { return "layer" + strconv.Itoa(i) }

// Config returns the encoder configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Dim returns the model dimensionality.
func (e *Encoder) Dim() int { return e.cfg.Dim }

// Truncate clips a token sequence to the encoder's maximum length.
func (e *Encoder) Truncate(tokens []string) []string {
	if len(tokens) > e.cfg.MaxLen {
		return tokens[:e.cfg.MaxLen]
	}
	return tokens
}

// Forward encodes tokens into a T×Dim matrix of contextual token
// embeddings. Sequences longer than MaxLen are truncated.
func (e *Encoder) Forward(tokens []string, train bool) *nn.Matrix {
	tokens = e.Truncate(tokens)
	x := e.embed.forward(tokens)
	for _, l := range e.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient of the final token states back
// through every layer and into the embedding tables. It must follow a
// Forward on the same (possibly truncated) sequence.
func (e *Encoder) Backward(dout *nn.Matrix) {
	for i := len(e.layers) - 1; i >= 0; i-- {
		dout = e.layers[i].Backward(dout)
	}
	e.embed.backward(dout)
}

// Params returns every trainable parameter of the encoder.
func (e *Encoder) Params() []*nn.Param {
	ps := e.embed.params()
	for _, l := range e.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// RNG exposes the encoder's deterministic random stream so callers can
// derive shuffling without importing a second seed.
func (e *Encoder) RNG() *nn.RNG { return e.rng }

// SetPrecision selects the inference precision tier for subsequent
// Infer/InferBatch calls and eagerly warms the packed weight mirrors
// the tier needs, so the first inference after the switch doesn't pay
// the packing cost. Safe to call concurrently with inference.
func (e *Encoder) SetPrecision(p nn.Precision) {
	e.prec.Store(int32(p))
	e.WarmPacks(p)
}

// Precision returns the active inference precision tier.
func (e *Encoder) Precision() nn.Precision { return nn.Precision(e.prec.Load()) }

// WarmPacks (re)builds the packed weight mirrors for tier p across
// every layer. Called by SetPrecision and after bulk weight mutation
// (training completion, checkpoint load) to move packing cost out of
// the first inference call.
func (e *Encoder) WarmPacks(p nn.Precision) {
	for _, l := range e.layers {
		for _, d := range []*nn.Dense{l.attn.wq, l.attn.wk, l.attn.wv, l.attn.wo, l.ff1, l.ff2} {
			d.Warm(p)
		}
		l.ln1.Warm(p)
		l.ln2.Warm(p)
	}
}
