package transformer

import (
	"math"
	"sync"
	"testing"

	"nerglobalizer/internal/nn"
)

// maxRelDiff returns the largest |got−want| / max(1, |want|) over all
// elements — relative where the states are large, absolute near zero.
func maxRelDiff(got, want *nn.Matrix) float64 {
	worst := 0.0
	for i := range want.Data {
		denom := math.Abs(want.Data[i])
		if denom < 1 {
			denom = 1
		}
		if d := math.Abs(got.Data[i]-want.Data[i]) / denom; d > worst {
			worst = d
		}
	}
	return worst
}

// TestInferBatchReducedPrecisionErrorBound bounds the end-to-end
// divergence of the f32 and i8 packed paths from the f64 reference
// across ragged batches (empty sentences, single tokens, truncation).
// The encoder's post-norm blocks keep token states O(1), so a scaled
// relative bound is meaningful: f32 stays within ~1e-4 through two
// blocks; i8 quantizes six GEMMs per block at ~0.4% per-tensor noise.
func TestInferBatchReducedPrecisionErrorBound(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	batch := testSentences(12, 3)
	batch = append(batch, nil, []string{}, []string{"one"},
		testSentences(1, 9)[0], append(testSentences(1, 11)[0], testSentences(1, 13)[0]...))
	want := enc.InferBatch(batch)
	for _, tc := range []struct {
		prec  nn.Precision
		bound float64
	}{{nn.F32, 1e-4}, {nn.I8, 0.15}} {
		got := enc.InferBatchAt(batch, tc.prec)
		if len(got) != len(want) {
			t.Fatalf("%v: %d outputs, want %d", tc.prec, len(got), len(want))
		}
		for i := range want {
			if got[i].Rows != want[i].Rows || got[i].Cols != want[i].Cols {
				t.Fatalf("%v sentence %d: shape %dx%d, want %dx%d",
					tc.prec, i, got[i].Rows, got[i].Cols, want[i].Rows, want[i].Cols)
			}
			if d := maxRelDiff(got[i], want[i]); d > tc.bound {
				t.Fatalf("%v sentence %d: max relative divergence %g > %g", tc.prec, i, d, tc.bound)
			}
		}
	}
}

// TestInferMatchesInferBatchReduced pins the per-sentence Infer at a
// reduced tier to the batched path: both must route through the same
// packed kernels, so the results are bit-identical within a tier.
func TestInferMatchesInferBatchReduced(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	batch := testSentences(6, 5)
	for _, prec := range []nn.Precision{nn.F32, nn.I8} {
		enc.SetPrecision(prec)
		if enc.Precision() != prec {
			t.Fatalf("Precision() = %v after SetPrecision(%v)", enc.Precision(), prec)
		}
		fromBatch := enc.InferBatchAt(batch, prec)
		for i, sent := range batch {
			single := enc.Infer(sent)
			assertBitIdentical(t, single, fromBatch[i], "reduced Infer vs batched "+prec.String())
		}
	}
	enc.SetPrecision(nn.F64)
}

// TestInferBatchF64UnaffectedByTierMachinery pins the acceptance
// criterion that the f64 path stays bit-identical whether or not the
// reduced tiers have ever run (the packs are read-only mirrors; the
// f64 kernels never touch them).
func TestInferBatchF64UnaffectedByTierMachinery(t *testing.T) {
	ref := NewEncoder(tinyConfig())
	enc := NewEncoder(tinyConfig())
	batch := testSentences(8, 7)
	want := ref.InferBatch(batch)
	enc.SetPrecision(nn.I8)
	enc.InferBatch(batch) // populate packs, run the reduced path
	enc.SetPrecision(nn.F32)
	enc.InferBatch(batch)
	enc.SetPrecision(nn.F64)
	got := enc.InferBatch(batch)
	for i := range want {
		assertBitIdentical(t, got[i], want[i], "f64 after tier churn")
	}
}

// TestInferBatchMixedPrecisionConcurrent hammers one encoder with
// concurrent InferBatch calls at all three tiers at once (run under
// -race in CI). Each goroutine checks its own results against a
// serial baseline for its tier, so the test also catches cross-tier
// scratch aliasing, not just data races.
func TestInferBatchMixedPrecisionConcurrent(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	batch := testSentences(10, 17)
	baseline := map[nn.Precision][]*nn.Matrix{}
	for _, p := range []nn.Precision{nn.F64, nn.F32, nn.I8} {
		baseline[p] = enc.InferBatchAt(batch, p)
	}
	const goroutines = 12
	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		prec := []nn.Precision{nn.F64, nn.F32, nn.I8}[g%3]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				got := enc.InferBatchAt(batch, prec)
				for i := range got {
					want := baseline[prec][i]
					for j := range want.Data {
						if got[i].Data[j] != want.Data[j] {
							errs <- prec.String() + ": concurrent result diverges from serial baseline"
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
