package transformer

import (
	"math"

	"nerglobalizer/internal/nn"
)

// Reduced-precision packed inference. The structure mirrors
// inferPacked exactly — same packing, same kernel sequence, same
// segment walk — but every position-independent layer runs over the
// float32 planes of the arena, through the packed weight mirrors from
// nn/pack.go. At the I8 tier the dense projections (q/k/v/o, ff1, ff2)
// additionally run the dynamic int8 GEMM; attention scores, softmax,
// GELU and layer norm stay float32 — they are bandwidth-light and
// quantizing them buys nothing while costing accuracy.
//
// Embedding always runs in f64 (a sparse gather, not a GEMM) and the
// final token states are widened back to f64, so downstream consumers
// (tagger head, pooling, clustering) are precision-agnostic.

// inferPacked32 runs the packed forward pass at the F32 or I8 tier.
func (e *Encoder) inferPacked32(batch [][]string, s *InferScratch, prec nn.Precision) []*nn.Matrix {
	dim := e.cfg.Dim
	n, maxT := e.packEmbed(batch, s)
	s.x32 = nn.ReuseMatrix32(s.x32, n, dim)
	nn.Downconvert(s.x32, s.x)

	dh := dim / e.cfg.Heads
	s.q32 = nn.ReuseMatrix32(s.q32, n, dim)
	s.k32 = nn.ReuseMatrix32(s.k32, n, dim)
	s.v32 = nn.ReuseMatrix32(s.v32, n, dim)
	s.concat32 = nn.ReuseMatrix32(s.concat32, n, dim)
	s.mid32 = nn.ReuseMatrix32(s.mid32, n, dim)
	s.ff32 = nn.ReuseMatrix32(s.ff32, n, e.cfg.FFDim)
	s.qh32 = nn.ReuseMatrix32(s.qh32, maxT, dh)
	s.kh32 = nn.ReuseMatrix32(s.kh32, maxT, dh)
	s.vh32 = nn.ReuseMatrix32(s.vh32, maxT, dh)
	s.oh32 = nn.ReuseMatrix32(s.oh32, maxT, dh)
	s.scores32 = nn.ReuseMatrix32(s.scores32, maxT, maxT)
	s.attnW32 = nn.ReuseMatrix32(s.attnW32, maxT, maxT)

	for _, l := range e.layers {
		l.inferPacked32(e.cfg, s, prec)
	}

	// Widen the final states back to f64 — one backing allocation for
	// the whole batch, per-sentence views, as in the f64 path.
	data := make([]float64, n*dim)
	for i, v := range s.x32.Data {
		data[i] = float64(v)
	}
	mats := make([]nn.Matrix, len(batch))
	outs := make([]*nn.Matrix, len(batch))
	for i := range batch {
		lo, hi := s.offs[i]*dim, s.offs[i+1]*dim
		mats[i] = nn.Matrix{Rows: s.offs[i+1] - s.offs[i], Cols: dim, Data: data[lo:hi:hi]}
		outs[i] = &mats[i]
	}
	return outs
}

// denseInfer32 routes one dense projection through the tier's GEMM:
// float32 packed dot-product, or dynamic int8 with float32 dequant.
func denseInfer32(d *nn.Dense, dst, x *nn.Matrix32, prec nn.Precision, qs *nn.I8Scratch) {
	if prec == nn.I8 {
		d.InferIntoI8(dst, x, qs)
	} else {
		d.InferInto32(dst, x)
	}
}

// inferPacked32 runs one encoder block over the packed float32 token
// states in s.x32, leaving the block's output in s.x32. Same buffer
// rotation as the f64 inferPacked.
func (l *encoderLayer) inferPacked32(cfg Config, s *InferScratch, prec nn.Precision) {
	dim := cfg.Dim
	dh := dim / cfg.Heads
	invSqrt := float32(1 / math.Sqrt(float64(dh)))

	a := l.attn
	denseInfer32(a.wq, s.q32, s.x32, prec, &s.qs)
	denseInfer32(a.wk, s.k32, s.x32, prec, &s.qs)
	denseInfer32(a.wv, s.v32, s.x32, prec, &s.qs)
	s.concat32.Zero()
	for seg := 0; seg+1 < len(s.offs); seg++ {
		off, T := s.offs[seg], s.offs[seg+1]-s.offs[seg]
		if T == 0 {
			continue
		}
		s.qh32 = nn.ReuseMatrix32(s.qh32, T, dh)
		s.kh32 = nn.ReuseMatrix32(s.kh32, T, dh)
		s.vh32 = nn.ReuseMatrix32(s.vh32, T, dh)
		s.oh32 = nn.ReuseMatrix32(s.oh32, T, dh)
		s.scores32 = nn.ReuseMatrix32(s.scores32, T, T)
		s.attnW32 = nn.ReuseMatrix32(s.attnW32, T, T)
		for h := 0; h < cfg.Heads; h++ {
			segHeadSliceInto32(s.qh32, s.q32, off, h*dh)
			segHeadSliceInto32(s.kh32, s.k32, off, h*dh)
			segHeadSliceInto32(s.vh32, s.v32, off, h*dh)
			nn.MatMulT32Into(s.scores32, s.qh32, s.kh32)
			nn.ScaledSoftmaxRows32Into(s.attnW32, s.scores32, invSqrt)
			nn.MatMul32Into(s.oh32, s.attnW32, s.vh32)
			segHeadStore32(s.concat32, s.oh32, off, h*dh)
		}
	}
	denseInfer32(a.wo, s.q32, s.concat32, prec, &s.qs)
	l.ln1.InferResidualInto32(s.mid32, s.q32, s.x32)
	denseInfer32(l.ff1, s.ff32, s.mid32, prec, &s.qs)
	l.gelu.InferInto32(s.ff32, s.ff32)
	denseInfer32(l.ff2, s.v32, s.ff32, prec, &s.qs)
	l.ln2.InferResidualInto32(s.x32, s.v32, s.mid32)
}

// segHeadSliceInto32 fills dst (T×dh) with rows [rowOff, rowOff+T) of
// m, columns [colOff, colOff+dh) — one head of one packed segment.
func segHeadSliceInto32(dst, m *nn.Matrix32, rowOff, colOff int) {
	dh := dst.Cols
	for i := 0; i < dst.Rows; i++ {
		copy(dst.Row(i), m.Row(rowOff + i)[colOff:colOff+dh])
	}
}

// segHeadStore32 adds src (T×dh) into rows [rowOff, rowOff+T) of dst,
// columns [colOff, colOff+dh).
func segHeadStore32(dst, src *nn.Matrix32, rowOff, colOff int) {
	dh := src.Cols
	for i := 0; i < src.Rows; i++ {
		drow := dst.Row(rowOff + i)[colOff : colOff+dh]
		for j, v := range src.Row(i) {
			drow[j] += v
		}
	}
}
