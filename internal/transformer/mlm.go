package transformer

import (
	"nerglobalizer/internal/nn"
)

// MaskToken is the replacement token for masked positions. It hashes
// to an ordinary vocabulary bucket, playing the role of BERT's [MASK].
// Exported so fine-tuning word dropout can reuse the same symbol.
const MaskToken = "[MASK]"

// MLMTrainer pre-trains an Encoder with a masked-language-model
// objective: a fraction of tokens is replaced by [MASK] and the model
// must recover the original token's vocabulary bucket. This is the
// unsupervised pre-training that gives the encoder its "language
// model" role before NER fine-tuning, standing in for the
// RoBERTa-style pre-training of BERTweet.
type MLMTrainer struct {
	enc  *Encoder
	head *nn.Dense
	opt  *nn.Adam
	rng  *nn.RNG
	// MaskRate is the fraction of tokens masked per sentence.
	MaskRate float64
}

// NewMLMTrainer wires an MLM head and Adam optimizer to the encoder.
func NewMLMTrainer(enc *Encoder, lr float64) *MLMTrainer {
	rng := enc.RNG().Fork()
	head := nn.NewDense("mlm.head", enc.Dim(), enc.Config().VocabBuckets, rng)
	opt := nn.NewAdam(lr)
	opt.Register(enc.Params()...)
	opt.Register(head.Params()...)
	return &MLMTrainer{enc: enc, head: head, opt: opt, rng: rng, MaskRate: 0.15}
}

// TrainEpoch runs one pass over the corpus (a slice of tokenized
// sentences) in a shuffled order, updating after every sentence, and
// returns the mean masked-token loss.
func (t *MLMTrainer) TrainEpoch(corpus [][]string) float64 {
	perm := t.rng.Perm(len(corpus))
	total, count := 0.0, 0
	for _, idx := range perm {
		loss, ok := t.trainSentence(corpus[idx])
		if ok {
			total += loss
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func (t *MLMTrainer) trainSentence(tokens []string) (float64, bool) {
	tokens = t.enc.Truncate(tokens)
	if len(tokens) < 2 {
		return 0, false
	}
	masked := make([]string, len(tokens))
	copy(masked, tokens)
	targets := make([]int, len(tokens))
	for i := range targets {
		targets[i] = -1
	}
	any := false
	for i, tok := range tokens {
		if t.rng.Float64() < t.MaskRate {
			masked[i] = MaskToken
			targets[i] = hashToken(tok, t.enc.Config().VocabBuckets)
			any = true
		}
	}
	if !any {
		// Guarantee at least one masked position per sentence.
		i := t.rng.Intn(len(tokens))
		masked[i] = MaskToken
		targets[i] = hashToken(tokens[i], t.enc.Config().VocabBuckets)
	}
	h := t.enc.Forward(masked, true)
	logits := t.head.Forward(h, true)
	loss, dlogits := nn.SoftmaxCrossEntropy(logits, targets)
	dh := t.head.Backward(dlogits)
	t.enc.Backward(dh)
	nn.ClipGrads(t.paramSet(), 5)
	t.opt.Step()
	return loss, true
}

func (t *MLMTrainer) paramSet() []*nn.Param {
	return append(t.enc.Params(), t.head.Params()...)
}
