package transformer

import (
	"math"

	"nerglobalizer/internal/nn"
)

// Batched inference. InferBatch packs many sentences into one flat
// token matrix and runs every position-independent layer (dense
// projections, feed-forward, layer norm) as a single pass over all
// packed tokens — one large GEMM per projection instead of one small
// GEMM per sentence. Only attention depends on sentence boundaries;
// it iterates segment offsets over the packed q/k/v, reusing one
// per-worker head workspace instead of re-slicing allocations.
//
// All intermediates live in an InferScratch arena recycled through the
// encoder's sync.Pool, so steady-state batched inference performs no
// heap allocations beyond the returned token states (one backing
// array per call, shared by the per-sentence views).
//
// The identity contract extends Infer's: for every sentence in the
// batch, InferBatch returns exactly the bytes Infer would, at every
// batch composition and worker count. This holds by construction —
// the nn kernels compute each output element with the same
// floating-point operations in the same order whether a matrix holds
// one sentence or fifty (dense rows are independent dot products with
// ascending-k accumulation; layer norm and GELU are row- and
// element-local), and the fused kernels in nn/fused.go are pinned
// bit-identical to the unfused pairs they replace.

// InferScratch is a per-worker arena for packed batched inference. It
// grows to the largest packed batch seen and is reused across calls;
// the zero value is ready to use.
type InferScratch struct {
	// Packed N×Dim token-state buffers: x is the layer input (and
	// final output), q/k/v/concat/mid rotate through the sublayers.
	x, q, k, v, concat, mid *nn.Matrix
	// ff is the packed N×FFDim feed-forward intermediate.
	ff *nn.Matrix
	// Per-segment, per-head attention workspaces (≤ maxT rows).
	qh, kh, vh, oh *nn.Matrix
	scores, attnW  *nn.Matrix
	// offs[i] is the packed row offset of sentence i; offs[len] is the
	// total packed token count.
	offs []int

	// Float32 siblings of the planes above, used by the reduced
	// precision tiers (infer_batch32.go); nil until the first reduced
	// call through this arena.
	x32, q32, k32, v32, concat32, mid32 *nn.Matrix32
	ff32                                *nn.Matrix32
	qh32, kh32, vh32, oh32              *nn.Matrix32
	scores32, attnW32                   *nn.Matrix32
	// qs holds the int8 tier's quantized activation plane and per-row
	// scales.
	qs nn.I8Scratch
}

// InferBatch encodes a batch of token sequences at the encoder's
// active precision tier, returning one T×Dim matrix of contextual
// token embeddings per sentence. At the default F64 tier the output is
// byte-identical to calling Infer on each sentence, but packed into
// large fused kernels over a recycled scratch arena; the reduced tiers
// (infer_batch32.go) trade that bit-identity for bandwidth under the
// error bounds pinned in nn. Sequences longer than MaxLen are
// truncated; empty sequences yield 0×Dim matrices. Concurrent
// InferBatch (and Infer) calls on one Encoder are safe, including at
// different tiers.
func (e *Encoder) InferBatch(batch [][]string) []*nn.Matrix {
	return e.InferBatchAt(batch, e.Precision())
}

// InferBatchAt encodes a batch at an explicit precision tier,
// regardless of the encoder's configured default.
func (e *Encoder) InferBatchAt(batch [][]string, prec nn.Precision) []*nn.Matrix {
	s, _ := e.scratch.Get().(*InferScratch)
	if s == nil {
		s = new(InferScratch)
	}
	var out []*nn.Matrix
	if prec == nn.F64 {
		out = e.inferPacked(batch, s)
	} else {
		out = e.inferPacked32(batch, s, prec)
	}
	e.scratch.Put(s)
	return out
}

// packEmbed fills s.offs with the packed row offsets of batch and
// embeds every (truncated) sentence at its offset in s.x; positions
// restart at every segment boundary, exactly as in the per-sentence
// path. Returns the packed token count and the longest segment.
// Embedding always runs in f64 — it is a sparse gather/accumulate, not
// a GEMM, so the reduced tiers share it and downconvert the result.
func (e *Encoder) packEmbed(batch [][]string, s *InferScratch) (n, maxT int) {
	s.offs = s.offs[:0]
	for _, toks := range batch {
		s.offs = append(s.offs, n)
		T := len(e.Truncate(toks))
		if T > maxT {
			maxT = T
		}
		n += T
	}
	s.offs = append(s.offs, n)
	s.x = nn.ReuseMatrix(s.x, n, e.cfg.Dim)
	for i, toks := range batch {
		off := s.offs[i]
		for p, tok := range e.Truncate(toks) {
			e.embed.inferRowInto(s.x.Row(off+p), tok, p)
		}
	}
	return n, maxT
}

// inferPacked runs the packed forward pass inside the given arena.
func (e *Encoder) inferPacked(batch [][]string, s *InferScratch) []*nn.Matrix {
	dim := e.cfg.Dim
	n, maxT := e.packEmbed(batch, s)

	// Pre-size every buffer to this batch so the per-segment reshapes
	// below never allocate mid-layer.
	dh := dim / e.cfg.Heads
	s.q = nn.ReuseMatrix(s.q, n, dim)
	s.k = nn.ReuseMatrix(s.k, n, dim)
	s.v = nn.ReuseMatrix(s.v, n, dim)
	s.concat = nn.ReuseMatrix(s.concat, n, dim)
	s.mid = nn.ReuseMatrix(s.mid, n, dim)
	s.ff = nn.ReuseMatrix(s.ff, n, e.cfg.FFDim)
	s.qh = nn.ReuseMatrix(s.qh, maxT, dh)
	s.kh = nn.ReuseMatrix(s.kh, maxT, dh)
	s.vh = nn.ReuseMatrix(s.vh, maxT, dh)
	s.oh = nn.ReuseMatrix(s.oh, maxT, dh)
	s.scores = nn.ReuseMatrix(s.scores, maxT, maxT)
	s.attnW = nn.ReuseMatrix(s.attnW, maxT, maxT)

	for _, l := range e.layers {
		l.inferPacked(e.cfg, s)
	}

	// One backing allocation for the whole batch; each sentence gets a
	// view of its packed rows. The views are plain value Matrices in
	// one array, so the result costs three allocations regardless of
	// batch size.
	data := make([]float64, n*dim)
	copy(data, s.x.Data)
	mats := make([]nn.Matrix, len(batch))
	outs := make([]*nn.Matrix, len(batch))
	for i := range batch {
		lo, hi := s.offs[i]*dim, s.offs[i+1]*dim
		mats[i] = nn.Matrix{Rows: s.offs[i+1] - s.offs[i], Cols: dim, Data: data[lo:hi:hi]}
		outs[i] = &mats[i]
	}
	return outs
}

// inferPacked runs one encoder block over the packed token states in
// s.x, leaving the block's output in s.x. Dense, feed-forward and
// layer-norm run over all packed rows at once; attention walks the
// segment offsets.
func (l *encoderLayer) inferPacked(cfg Config, s *InferScratch) {
	dim := cfg.Dim
	dh := dim / cfg.Heads
	invSqrt := 1 / math.Sqrt(float64(dh))

	a := l.attn
	a.wq.InferInto(s.q, s.x)
	a.wk.InferInto(s.k, s.x)
	a.wv.InferInto(s.v, s.x)
	s.concat.Zero()
	for seg := 0; seg+1 < len(s.offs); seg++ {
		off, T := s.offs[seg], s.offs[seg+1]-s.offs[seg]
		if T == 0 {
			continue
		}
		s.qh = nn.ReuseMatrix(s.qh, T, dh)
		s.kh = nn.ReuseMatrix(s.kh, T, dh)
		s.vh = nn.ReuseMatrix(s.vh, T, dh)
		s.oh = nn.ReuseMatrix(s.oh, T, dh)
		s.scores = nn.ReuseMatrix(s.scores, T, T)
		s.attnW = nn.ReuseMatrix(s.attnW, T, T)
		for h := 0; h < cfg.Heads; h++ {
			segHeadSliceInto(s.qh, s.q, off, h*dh)
			segHeadSliceInto(s.kh, s.k, off, h*dh)
			segHeadSliceInto(s.vh, s.v, off, h*dh)
			nn.MatMulTInto(s.scores, s.qh, s.kh)
			nn.ScaledSoftmaxRowsInto(s.attnW, s.scores, invSqrt)
			nn.MatMulInto(s.oh, s.attnW, s.vh)
			segHeadStore(s.concat, s.oh, off, h*dh)
		}
	}
	// q/k/v are free once the heads are done; reuse q for the output
	// projection and v for the feed-forward output.
	a.wo.InferInto(s.q, s.concat)
	l.ln1.InferResidualInto(s.mid, s.q, s.x)
	l.ff1.InferInto(s.ff, s.mid)
	l.gelu.InferInto(s.ff, s.ff)
	l.ff2.InferInto(s.v, s.ff)
	l.ln2.InferResidualInto(s.x, s.v, s.mid)
}

// segHeadSliceInto fills dst (T×dh) with rows [rowOff, rowOff+T) of m,
// columns [colOff, colOff+dh) — one head of one packed segment.
func segHeadSliceInto(dst, m *nn.Matrix, rowOff, colOff int) {
	dh := dst.Cols
	for i := 0; i < dst.Rows; i++ {
		copy(dst.Row(i), m.Row(rowOff + i)[colOff:colOff+dh])
	}
}

// segHeadStore adds src (T×dh) into rows [rowOff, rowOff+T) of dst,
// columns [colOff, colOff+dh).
func segHeadStore(dst, src *nn.Matrix, rowOff, colOff int) {
	dh := src.Cols
	for i := 0; i < src.Rows; i++ {
		drow := dst.Row(rowOff + i)[colOff : colOff+dh]
		for j, v := range src.Row(i) {
			drow[j] += v
		}
	}
}
