package transformer

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"nerglobalizer/internal/nn"
)

// testSentences builds a deterministic ragged batch mixing ordinary
// words, social-media tokens, and casing so every embedding feature
// path participates.
func testSentences(n int, seed int) [][]string {
	vocab := []string{
		"coronavirus", "cases", "rise", "in", "Italy", "NHS", "#lockdown",
		"@gov", "http://x.co/1", "2020", "trump", "beshear", "kentucky", "the",
	}
	out := make([][]string, n)
	state := seed*2654435761 + 1
	for i := range out {
		state = state*1103515245 + 12345
		T := (state>>16)&7 + 1
		if state < 0 {
			T = -state%7 + 1
		}
		sent := make([]string, T)
		for j := range sent {
			state = state*1103515245 + 12345
			idx := state % len(vocab)
			if idx < 0 {
				idx = -idx
			}
			sent[j] = vocab[idx]
		}
		out[i] = sent
	}
	return out
}

func assertBitIdentical(t *testing.T, got, want *nn.Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s diverges at element %d: %v vs %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// TestInferBatchIdentityRagged pins InferBatch to per-sentence Infer
// bit for bit across ragged batches that include empty sentences,
// single tokens, and sentences at (and beyond) MaxLen.
func TestInferBatchIdentityRagged(t *testing.T) {
	cfg := tinyConfig()
	enc := NewEncoder(cfg)
	long := make([]string, cfg.MaxLen)
	overlong := make([]string, cfg.MaxLen+9)
	for i := range long {
		long[i] = fmt.Sprintf("tok%d", i)
	}
	for i := range overlong {
		overlong[i] = fmt.Sprintf("word%d", i)
	}
	batches := [][][]string{
		nil,
		{{}},
		{{"hello"}},
		{{}, {"hello", "world"}, {}},
		{long, {}, overlong, {"a"}},
		append(testSentences(13, 4), []string{}, long, overlong),
	}
	for bi, batch := range batches {
		got := enc.InferBatch(batch)
		if len(got) != len(batch) {
			t.Fatalf("batch %d: %d outputs for %d sentences", bi, len(got), len(batch))
		}
		for i, toks := range batch {
			want := enc.Infer(toks)
			assertBitIdentical(t, got[i], want, fmt.Sprintf("batch %d sentence %d", bi, i))
		}
	}
}

// TestInferBatchIdentityAcrossCompositions verifies that a sentence's
// output does not depend on what it is packed with: the same sentences
// split into batches of 1, 4, and all-at-once must agree bit for bit.
func TestInferBatchIdentityAcrossCompositions(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	sents := testSentences(24, 9)
	whole := enc.InferBatch(sents)
	for _, size := range []int{1, 4, 7} {
		for lo := 0; lo < len(sents); lo += size {
			hi := lo + size
			if hi > len(sents) {
				hi = len(sents)
			}
			part := enc.InferBatch(sents[lo:hi])
			for i := range part {
				assertBitIdentical(t, part[i], whole[lo+i],
					fmt.Sprintf("size %d chunk at %d sentence %d", size, lo, i))
			}
		}
	}
}

// TestInferBatchIdentityConcurrent hammers one shared Encoder (and its
// scratch pool) from many goroutines mixing InferBatch and Infer, and
// checks every result against serial references. Run with -race this
// doubles as the data-race smoke for the scratch arena recycling.
func TestInferBatchIdentityConcurrent(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	sents := testSentences(40, 77)
	refs := make([]*nn.Matrix, len(sents))
	for i, s := range sents {
		refs[i] = enc.Infer(s)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				lo := (g + iter) % len(sents)
				hi := lo + 1 + (g+iter)%9
				if hi > len(sents) {
					hi = len(sents)
				}
				if g%3 == 0 {
					// Mix in the per-sentence path to interleave pool usage.
					for i := lo; i < hi; i++ {
						out := enc.Infer(sents[i])
						for j := range out.Data {
							if out.Data[j] != refs[i].Data[j] {
								errs <- fmt.Errorf("goroutine %d: Infer sentence %d diverges", g, i)
								return
							}
						}
					}
					continue
				}
				outs := enc.InferBatch(sents[lo:hi])
				for i, out := range outs {
					ref := refs[lo+i]
					if out.Rows != ref.Rows {
						errs <- fmt.Errorf("goroutine %d: sentence %d rows %d want %d", g, lo+i, out.Rows, ref.Rows)
						return
					}
					for j := range ref.Data {
						if out.Data[j] != ref.Data[j] {
							errs <- fmt.Errorf("goroutine %d: sentence %d diverges", g, lo+i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestLayerNamesDeepStack is the regression test for the layerName bug:
// rune arithmetic produced "layer:" for layer 10, colliding parameter
// names past layer 9. A 12-layer encoder must name every layer
// distinctly and decimally.
func TestLayerNamesDeepStack(t *testing.T) {
	cfg := tinyConfig()
	cfg.Layers = 12
	enc := NewEncoder(cfg)
	seen := map[string]bool{}
	for _, p := range enc.Params() {
		if seen[p.Name] {
			t.Fatalf("duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	for i := 0; i < 12; i++ {
		prefix := fmt.Sprintf("layer%d.", i)
		found := false
		for name := range seen {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no parameter named %s*", prefix)
		}
	}
	if layerName(10) != "layer10" {
		t.Fatalf("layerName(10) = %q", layerName(10))
	}
}

// TestEmbedInferFiniteOnEdgeTokens guards the trigram-average division:
// tokens must embed to finite values even when they produce degenerate
// trigram sets (empty token, single rune, exotic runes).
func TestEmbedInferFiniteOnEdgeTokens(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	for _, tok := range []string{"", "a", "€", "^$", "…"} {
		out := enc.Infer([]string{tok})
		for i, v := range out.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("token %q: non-finite output at %d: %v", tok, i, v)
			}
		}
		// The guarded helper itself must leave the row finite even when
		// handed a trigram-free token.
		row := make([]float64, enc.cfg.Dim)
		enc.embed.inferRowInto(row, tok, 0)
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("inferRowInto(%q): non-finite at %d: %v", tok, i, v)
			}
		}
	}
}

// TestInferRowFastPathMatchesCanonical pins the allocation-free ASCII
// embedding path to the string-materializing reference: for every
// token shape the row must equal copy(tok bucket) + mean(trigram
// buckets) + ortho features + position, computed via hashToken and
// charTrigrams.
func TestInferRowFastPathMatchesCanonical(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	e := enc.embed
	tokens := []string{
		"", "a", "It", "ITALY", "covid", "#LockDown2020", "@Gov", "http://x.co/1",
		"café", "München", "…", "naïve", "MiXeD123", "^$",
	}
	for pos, tok := range tokens {
		p := pos % e.cfg.MaxLen
		want := make([]float64, e.cfg.Dim)
		copy(want, e.tok.W.Row(hashToken(tok, e.cfg.VocabBuckets)))
		grams := charTrigrams(tok)
		if len(grams) > 0 {
			inv := 1 / float64(len(grams))
			for _, gram := range grams {
				nn.AddScaled(want, e.char.W.Row(hashToken(gram, e.cfg.CharBuckets)), inv)
			}
		}
		for _, f := range orthoFeatures(tok) {
			nn.AddScaled(want, e.ortho.W.Row(f), 1)
		}
		nn.AddScaled(want, e.pos.Row(p), 1)

		got := make([]float64, e.cfg.Dim)
		e.inferRowInto(got, tok, p)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("token %q element %d: %v vs %v", tok, i, got[i], want[i])
			}
		}
	}
}

// benchSentences builds tweet-shaped sentences (8–20 tokens) for the
// inference benchmarks.
func benchSentences(n int) [][]string {
	base := testSentences(n, 3)
	for i := range base {
		for len(base[i]) < 8+(i%13) {
			base[i] = append(base[i], base[i][len(base[i])%len(base[i])])
		}
	}
	return base
}

// BenchmarkInferSerial measures the per-sentence inference path at the
// small-scale pipeline's encoder size.
func BenchmarkInferSerial(b *testing.B) {
	cfg := Config{Dim: 24, Heads: 2, Layers: 2, FFDim: 48, MaxLen: 24,
		VocabBuckets: 1024, CharBuckets: 256, Seed: 3}
	enc := NewEncoder(cfg)
	sents := benchSentences(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sents {
			enc.Infer(s)
		}
	}
}

// BenchmarkInferBatch measures the packed batched path over the same
// workload; steady state should show near-zero allocations per batch.
func BenchmarkInferBatch(b *testing.B) {
	cfg := Config{Dim: 24, Heads: 2, Layers: 2, FFDim: 48, MaxLen: 24,
		VocabBuckets: 1024, CharBuckets: 256, Seed: 3}
	enc := NewEncoder(cfg)
	sents := benchSentences(64)
	enc.InferBatch(sents) // grow the scratch arena once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.InferBatch(sents)
	}
}

// BenchmarkInferBatchTiers compares the packed batched path across the
// precision tiers on one fixed workload — the kernel-level view of the
// speedups BENCH_pipeline.json reports end to end.
func BenchmarkInferBatchTiers(b *testing.B) {
	cfg := Config{Dim: 24, Heads: 2, Layers: 2, FFDim: 48, MaxLen: 24,
		VocabBuckets: 1024, CharBuckets: 256, Seed: 3}
	for _, p := range []nn.Precision{nn.F64, nn.F32, nn.I8} {
		b.Run(p.String(), func(b *testing.B) {
			enc := NewEncoder(cfg)
			enc.SetPrecision(p)
			sents := benchSentences(64)
			enc.InferBatch(sents)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.InferBatch(sents)
			}
		})
	}
}

// TestInferBatchTierISAStability is the determinism contract for the
// kernel-dispatch layer at the encoder level: within any one forced
// SIMD tier and i8 kernel mode, the reduced-precision batch output must
// be bit-identical no matter how many GEMM workers carve the batch —
// the 2D tiling must never change a row's arithmetic. The f64 path
// uses no dispatched kernels, so it must additionally be bit-identical
// across every SIMD level.
func TestInferBatchTierISAStability(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	sents := append(testSentences(24, 5), []string{}, []string{"solo"})
	defer nn.SetSIMDAuto()
	defer nn.SetI8Mode("auto")
	defer nn.SetMatMulWorkers(0)

	nn.SetMatMulWorkers(1)
	f64Base := enc.InferBatchAt(sents, nn.F64)
	for _, level := range nn.SupportedSIMDLevels() {
		if err := nn.SetSIMD(level); err != nil {
			t.Fatalf("SetSIMD(%s): %v", level, err)
		}
		type variant struct {
			label string
			prec  nn.Precision
			i8    string
		}
		variants := []variant{
			{"f32", nn.F32, "auto"},
			{"i8-w8a16", nn.I8, "w8a16"},
			{"i8-w8a8", nn.I8, "w8a8"},
		}
		for _, v := range variants {
			if err := nn.SetI8Mode(v.i8); err != nil {
				t.Fatalf("SetI8Mode(%s): %v", v.i8, err)
			}
			nn.SetMatMulWorkers(1)
			base := enc.InferBatchAt(sents, v.prec)
			for _, workers := range []int{2, 8} {
				nn.SetMatMulWorkers(workers)
				got := enc.InferBatchAt(sents, v.prec)
				for i := range base {
					assertBitIdentical(t, got[i], base[i],
						fmt.Sprintf("%s/%s workers=%d sentence %d", level, v.label, workers, i))
				}
			}
		}
		if err := nn.SetI8Mode("auto"); err != nil {
			t.Fatal(err)
		}
		nn.SetMatMulWorkers(1)
		f64Got := enc.InferBatchAt(sents, nn.F64)
		for i := range f64Base {
			assertBitIdentical(t, f64Got[i], f64Base[i],
				fmt.Sprintf("%s/f64 sentence %d", level, i))
		}
	}
}

// TestAttentionCombineCrossTierIdentity pins the attention-combine
// step (probability rows × value head, the MatMul32Into call inside
// inferPacked32) to identical bits at every kernel tier on the segment
// shapes the batch walk actually produces: empty segments, single
// tokens, sub-lane head widths, and ragged T×T probability blocks.
// The combine kernels vectorize only along independent output columns
// (mul-then-add, no FMA, k never split), so — unlike the surrounding
// dot-product GEMMs — its output is a cross-ISA invariant; this is
// what lets a sharded fleet mix ISAs without the combine contributing
// any drift.
func TestAttentionCombineCrossTierIdentity(t *testing.T) {
	shapes := []struct{ T, dh int }{{0, 8}, {1, 1}, {2, 3}, {5, 8}, {17, 32}, {33, 7}}
	defer nn.SetSIMDAuto()
	defer nn.SetMatMulWorkers(0)

	type seg struct{ attnW, vh, want *nn.Matrix32 }
	segs := make([]seg, len(shapes))
	if err := nn.SetSIMD(nn.SIMDGeneric); err != nil {
		t.Fatal(err)
	}
	nn.SetMatMulWorkers(1)
	state := uint64(0x9E3779B97F4A7C15)
	randf := func() float32 {
		state = state*6364136223846793005 + 1442695040888963407
		return float32(int32(state>>33)) / (1 << 31)
	}
	for i, sh := range shapes {
		s := seg{
			attnW: nn.NewMatrix32(sh.T, sh.T),
			vh:    nn.NewMatrix32(sh.T, sh.dh),
			want:  nn.NewMatrix32(sh.T, sh.dh),
		}
		// Rows of attnW mimic softmax output: non-negative, ~normalized.
		for r := 0; r < sh.T; r++ {
			row := s.attnW.Row(r)
			var sum float32
			for j := range row {
				row[j] = randf()*0.5 + 0.5
				sum += row[j]
			}
			for j := range row {
				row[j] /= sum
			}
		}
		for j := range s.vh.Data {
			s.vh.Data[j] = randf()
		}
		nn.MatMul32Into(s.want, s.attnW, s.vh)
		segs[i] = s
	}

	for _, level := range nn.SupportedSIMDLevels() {
		if err := nn.SetSIMD(level); err != nil {
			t.Fatalf("SetSIMD(%s): %v", level, err)
		}
		for _, workers := range []int{1, 4} {
			nn.SetMatMulWorkers(workers)
			for i, sh := range shapes {
				got := nn.NewMatrix32(sh.T, sh.dh)
				nn.MatMul32Into(got, segs[i].attnW, segs[i].vh)
				for j, v := range got.Data {
					if math.Float32bits(v) != math.Float32bits(segs[i].want.Data[j]) {
						t.Fatalf("T=%d dh=%d level=%s workers=%d: combine elem %d = %g, generic %g",
							sh.T, sh.dh, level, workers, j, v, segs[i].want.Data[j])
					}
				}
			}
		}
	}
}
