package transformer

import (
	"testing"

	"nerglobalizer/internal/parallel"
)

func TestInferMatchesForward(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	sents := [][]string{
		{"covid", "in", "italy"},
		{"@user", "loves", "#nyc", "!"},
		{"BREAKING", "earthquake", "near", "Tokyo", "http://t.co/x"},
	}
	for _, toks := range sents {
		want := enc.Forward(toks, false)
		got := enc.Infer(toks)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("Infer diverges from Forward at element %d: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestInferConcurrent shares one encoder across goroutines; go test
// -race is the real assertion, plus bit-identical outputs.
func TestInferConcurrent(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	toks := []string{"flooding", "in", "jakarta", "today"}
	want := enc.Infer(toks)
	p := parallel.New(8)
	outs := parallel.MapOrdered(p, 32, func(i int) []float64 {
		return enc.Infer(toks).Data
	})
	for _, data := range outs {
		for i := range want.Data {
			if data[i] != want.Data[i] {
				t.Fatal("concurrent Infer output diverged")
			}
		}
	}
}

// TestForwardScratchReuseStable pins that recycling attention scratch
// between calls does not perturb outputs: two Forward passes over
// different-length inputs then a repeat of the first must reproduce it.
func TestForwardScratchReuseStable(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	a := []string{"storm", "hits", "coast"}
	b := []string{"just", "one", "more", "random", "tweet", "here"}
	first := enc.Forward(a, false)
	enc.Forward(b, false)
	again := enc.Forward(a, false)
	for i := range first.Data {
		if first.Data[i] != again.Data[i] {
			t.Fatalf("scratch reuse changed output at %d", i)
		}
	}
}
