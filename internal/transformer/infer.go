package transformer

import (
	"math"

	"nerglobalizer/internal/nn"
)

// Inference path. Forward caches activations on the encoder structs
// (attention stores q/k/v/attn/concat, the embedding stores its hash
// indices), so one encoder cannot run Forward from several goroutines.
// Infer computes the identical token states while writing no encoder
// state, which lets the pipeline share a single trained encoder across
// a worker pool. For every input, Infer(tokens) equals
// Forward(tokens, false) bit for bit.

// infer embeds a token sequence without caching hash indices.
func (e *embedding) infer(tokens []string) *nn.Matrix {
	T := len(tokens)
	out := nn.NewMatrix(T, e.cfg.Dim)
	for i, tok := range tokens {
		row := out.Row(i)
		copy(row, e.tok.W.Row(hashToken(tok, e.cfg.VocabBuckets)))
		grams := charTrigrams(tok)
		inv := 1 / float64(len(grams))
		for _, gram := range grams {
			nn.AddScaled(row, e.char.W.Row(hashToken(gram, e.cfg.CharBuckets)), inv)
		}
		for _, f := range orthoFeatures(tok) {
			nn.AddScaled(row, e.ortho.W.Row(f), 1)
		}
		nn.AddScaled(row, e.pos.Row(i), 1)
	}
	return out
}

// Infer runs self-attention without caching backprop state. All
// intermediates are local, so concurrent calls over one set of weights
// are safe.
func (a *multiHeadAttention) Infer(x *nn.Matrix) *nn.Matrix {
	q := a.wq.Infer(x)
	k := a.wk.Infer(x)
	v := a.wv.Infer(x)
	T := x.Rows
	dh := a.cfg.Dim / a.cfg.Heads
	invSqrt := 1 / math.Sqrt(float64(dh))
	concat := nn.NewMatrix(T, a.cfg.Dim)
	for h := 0; h < a.cfg.Heads; h++ {
		qh := a.headSlice(q, h)
		kh := a.headSlice(k, h)
		vh := a.headSlice(v, h)
		scores := nn.MatMulT(qh, kh)
		scores.ScaleInPlace(invSqrt)
		attn := nn.SoftmaxRows(scores)
		oh := nn.MatMul(attn, vh)
		a.headStore(concat, oh, h)
	}
	return a.wo.Infer(concat)
}

// Infer runs one encoder block without caching residual state.
func (l *encoderLayer) Infer(x *nn.Matrix) *nn.Matrix {
	h := l.attn.Infer(x)
	h.AddInPlace(x)
	mid := l.ln1.Infer(h)
	f := l.ff.Infer(mid)
	f.AddInPlace(mid)
	return l.ln2.Infer(f)
}

// Infer encodes tokens into a T×Dim matrix of contextual token
// embeddings, identically to Forward(tokens, false) but with no writes
// to encoder state. Concurrent Infer calls on one Encoder are safe;
// Forward/Backward training must not run at the same time.
func (e *Encoder) Infer(tokens []string) *nn.Matrix {
	tokens = e.Truncate(tokens)
	x := e.embed.infer(tokens)
	for _, l := range e.layers {
		x = l.Infer(x)
	}
	return x
}
