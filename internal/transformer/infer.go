package transformer

import (
	"math"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/tokenizer"
)

// Inference path. Forward caches activations on the encoder structs
// (attention stores q/k/v/attn/concat, the embedding stores its hash
// indices), so one encoder cannot run Forward from several goroutines.
// Infer computes the identical token states while writing no encoder
// state, which lets the pipeline share a single trained encoder across
// a worker pool. For every input, Infer(tokens) equals
// Forward(tokens, false) bit for bit.

// FNV-1a 32-bit constants, matching hash/fnv so the allocation-free
// fast path below lands in the same buckets as hashToken.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// isASCII reports whether the token is pure ASCII — the case where
// bytes coincide with runes and lower-casing is a byte map, so trigram
// buckets can be computed in-place without building strings.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// lowerASCII matches strings.ToLower byte-for-byte on ASCII input.
func lowerASCII(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

// paddedByte indexes the virtual padded token "^"+tok+"$" without
// materializing it. Valid for j in [0, len(tok)+2).
func paddedByte(tok string, j int) byte {
	switch {
	case j == 0:
		return '^'
	case j == len(tok)+1:
		return '$'
	default:
		return tok[j-1]
	}
}

// inferRowInto overwrites row with the inference-time embedding of tok
// at position pos (within its sentence). Shared by the per-sentence
// and packed-batch paths so the two embed identically. The trigram
// average is guarded against tokens that produce no trigrams — the
// unguarded 1/len(grams) would poison the row with ±Inf.
//
// Lower-case ASCII tokens (the overwhelming majority after social-media
// normalization) take an allocation-free path that feeds token and
// trigram bytes straight into FNV-1a, producing exactly the buckets
// hashToken(charTrigrams(tok)) would; everything else falls back to
// the string-materializing path.
func (e *embedding) inferRowInto(row []float64, tok string, pos int) {
	if isASCII(tok) {
		h := uint32(fnvOffset32)
		for i := 0; i < len(tok); i++ {
			h ^= uint32(lowerASCII(tok[i]))
			h *= fnvPrime32
		}
		copy(row, e.tok.W.Row(int(h%uint32(e.cfg.VocabBuckets))))
		// Trigrams of the padded token: len(tok)+2 padded bytes give
		// len(tok) windows (one degenerate "^$" gram for the empty
		// token), mirroring charTrigrams exactly.
		grams := len(tok)
		padLen := len(tok) + 2
		if grams == 0 {
			grams = 1
			padLen = 2 // hash the whole "^$" as the single gram
		}
		inv := 1 / float64(grams)
		for i := 0; i+2 < padLen || (i == 0 && padLen == 2); i++ {
			g := uint32(fnvOffset32)
			for j := i; j < i+3 && j < padLen; j++ {
				g ^= uint32(lowerASCII(paddedByte(tok, j)))
				g *= fnvPrime32
			}
			nn.AddScaled(row, e.char.W.Row(int(g%uint32(e.cfg.CharBuckets))), inv)
		}
	} else {
		copy(row, e.tok.W.Row(hashToken(tok, e.cfg.VocabBuckets)))
		grams := charTrigrams(tok)
		if len(grams) > 0 {
			inv := 1 / float64(len(grams))
			for _, gram := range grams {
				nn.AddScaled(row, e.char.W.Row(hashToken(gram, e.cfg.CharBuckets)), inv)
			}
		}
	}
	// Orthographic features, inlined in orthoFeatures' append order so
	// the floating-point additions happen in the identical sequence
	// without building a feature slice.
	if tokenizer.IsAllCaps(tok) {
		nn.AddScaled(row, e.ortho.W.Row(featAllCaps), 1)
	} else if tokenizer.IsCapitalized(tok) {
		nn.AddScaled(row, e.ortho.W.Row(featCap), 1)
	}
	if tokenizer.HasDigit(tok) {
		nn.AddScaled(row, e.ortho.W.Row(featDigit), 1)
	}
	switch {
	case tokenizer.IsHashtag(tok):
		nn.AddScaled(row, e.ortho.W.Row(featHashtag), 1)
	case tokenizer.IsUserMention(tok):
		nn.AddScaled(row, e.ortho.W.Row(featUser), 1)
	case tokenizer.IsURLToken(tok):
		nn.AddScaled(row, e.ortho.W.Row(featURL), 1)
	}
	nn.AddScaled(row, e.pos.Row(pos), 1)
}

// infer embeds a token sequence without caching hash indices.
func (e *embedding) infer(tokens []string) *nn.Matrix {
	T := len(tokens)
	out := nn.NewMatrix(T, e.cfg.Dim)
	for i, tok := range tokens {
		e.inferRowInto(out.Row(i), tok, i)
	}
	return out
}

// Infer runs self-attention without caching backprop state. All
// intermediates are local, so concurrent calls over one set of weights
// are safe.
func (a *multiHeadAttention) Infer(x *nn.Matrix) *nn.Matrix {
	q := a.wq.Infer(x)
	k := a.wk.Infer(x)
	v := a.wv.Infer(x)
	T := x.Rows
	dh := a.cfg.Dim / a.cfg.Heads
	invSqrt := 1 / math.Sqrt(float64(dh))
	concat := nn.NewMatrix(T, a.cfg.Dim)
	for h := 0; h < a.cfg.Heads; h++ {
		qh := a.headSlice(q, h)
		kh := a.headSlice(k, h)
		vh := a.headSlice(v, h)
		scores := nn.MatMulT(qh, kh)
		scores.ScaleInPlace(invSqrt)
		attn := nn.SoftmaxRows(scores)
		oh := nn.MatMul(attn, vh)
		a.headStore(concat, oh, h)
	}
	return a.wo.Infer(concat)
}

// Infer runs one encoder block without caching residual state.
func (l *encoderLayer) Infer(x *nn.Matrix) *nn.Matrix {
	h := l.attn.Infer(x)
	h.AddInPlace(x)
	mid := l.ln1.Infer(h)
	f := l.ff.Infer(mid)
	f.AddInPlace(mid)
	return l.ln2.Infer(f)
}

// Infer encodes tokens into a T×Dim matrix of contextual token
// embeddings with no writes to encoder state. At the default F64 tier
// the result is identical to Forward(tokens, false) bit for bit; at a
// reduced tier the sentence routes through the packed reduced-
// precision path so per-sentence and batched inference agree within
// one tier. Concurrent Infer calls on one Encoder are safe;
// Forward/Backward training must not run at the same time.
func (e *Encoder) Infer(tokens []string) *nn.Matrix {
	if p := e.Precision(); p != nn.F64 {
		return e.InferBatchAt([][]string{tokens}, p)[0]
	}
	tokens = e.Truncate(tokens)
	x := e.embed.infer(tokens)
	for _, l := range e.layers {
		x = l.Infer(x)
	}
	return x
}
