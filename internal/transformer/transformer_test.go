package transformer

import (
	"math"
	"testing"

	"nerglobalizer/internal/nn"
)

func tinyConfig() Config {
	return Config{
		Dim: 8, Heads: 2, Layers: 2, FFDim: 16, MaxLen: 12,
		VocabBuckets: 64, CharBuckets: 32, Dropout: 0, Seed: 7,
	}
}

func TestEncoderShapes(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	out := enc.Forward([]string{"hello", "world", "!"}, false)
	if out.Rows != 3 || out.Cols != 8 {
		t.Fatalf("shape = %dx%d", out.Rows, out.Cols)
	}
}

func TestEncoderTruncation(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	long := make([]string, 50)
	for i := range long {
		long[i] = "tok"
	}
	out := enc.Forward(long, false)
	if out.Rows != 12 {
		t.Fatalf("truncated rows = %d, want 12", out.Rows)
	}
}

func TestEncoderDeterministic(t *testing.T) {
	a := NewEncoder(tinyConfig()).Forward([]string{"covid", "in", "italy"}, false)
	b := NewEncoder(tinyConfig()).Forward([]string{"covid", "in", "italy"}, false)
	a.SubInPlace(b)
	if a.MaxAbs() != 0 {
		t.Fatal("same seed must produce identical outputs")
	}
}

func TestEncoderContextSensitivity(t *testing.T) {
	// The same token in different contexts must receive different
	// embeddings — the defining property of contextual embeddings.
	enc := NewEncoder(tinyConfig())
	a := enc.Forward([]string{"washington", "signed", "the", "bill"}, false).Row(0)
	av := append([]float64(nil), a...)
	b := enc.Forward([]string{"flying", "to", "washington", "today"}, false).Row(2)
	if nn.EuclideanDistance(av, b) < 1e-6 {
		t.Fatal("contextual embeddings must differ across contexts")
	}
}

func TestCharTrigrams(t *testing.T) {
	got := charTrigrams("it")
	if len(got) != 2 || got[0] != "^it" || got[1] != "it$" {
		t.Fatalf("charTrigrams(it) = %v", got)
	}
	if got := charTrigrams(""); len(got) != 1 {
		t.Fatalf("charTrigrams(empty) = %v", got)
	}
	got = charTrigrams("covid")
	if len(got) != 5 {
		t.Fatalf("charTrigrams(covid) has %d grams", len(got))
	}
}

func TestHashTokenStableAndCaseInsensitive(t *testing.T) {
	if hashToken("Italy", 64) != hashToken("italy", 64) {
		t.Fatal("hashing must be case-insensitive")
	}
	if h := hashToken("x", 64); h < 0 || h >= 64 {
		t.Fatalf("bucket out of range: %d", h)
	}
}

// TestEncoderGradients verifies the full encoder backward pass —
// attention, residuals, layer norms, FFN, and hashed embeddings —
// against numeric gradients of a scalar pseudo-loss.
func TestEncoderGradients(t *testing.T) {
	cfg := tinyConfig()
	enc := NewEncoder(cfg)
	tokens := []string{"trump", "in", "us"}
	coeffRNG := nn.NewRNG(99)
	coeff := nn.NewMatrix(3, cfg.Dim)
	coeffRNG.NormalInit(coeff, 1)

	lossFn := func() float64 {
		out := enc.Forward(tokens, true)
		s := 0.0
		for i, v := range out.Data {
			s += coeff.Data[i] * v
		}
		return s
	}

	lossFn()
	nn.ZeroGrads(enc.Params())
	enc.Backward(coeff.Clone())

	for _, p := range enc.Params() {
		analytic := append([]float64(nil), p.G.Data...)
		// Numeric-check a subset of coordinates for the big embedding
		// tables; full check for small parameters.
		stride := 1
		if len(p.W.Data) > 200 {
			stride = 97
		}
		for i := 0; i < len(p.W.Data); i += stride {
			orig := p.W.Data[i]
			const eps = 1e-5
			p.W.Data[i] = orig + eps
			fp := lossFn()
			p.W.Data[i] = orig - eps
			fm := lossFn()
			p.W.Data[i] = orig
			num := (fp - fm) / (2 * eps)
			if d := math.Abs(num - analytic[i]); d > 1e-4 {
				t.Fatalf("param %s[%d]: analytic %g vs numeric %g", p.Name, i, analytic[i], num)
			}
		}
	}
}

func TestAttentionRowsSumToOne(t *testing.T) {
	cfg := tinyConfig()
	rng := nn.NewRNG(3)
	attn := newMultiHeadAttention("a", cfg, rng)
	x := nn.NewMatrix(4, cfg.Dim)
	rng.NormalInit(x, 1)
	attn.Forward(x, false)
	for h, A := range attn.attn {
		for i := 0; i < A.Rows; i++ {
			sum := 0.0
			for _, v := range A.Row(i) {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("head %d row %d attention sum = %v", h, i, sum)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Dim not divisible by Heads")
		}
	}()
	NewEncoder(Config{Dim: 7, Heads: 2, Layers: 1, FFDim: 8, MaxLen: 4, VocabBuckets: 8, CharBuckets: 8})
}

func TestMLMTrainingReducesLoss(t *testing.T) {
	cfg := tinyConfig()
	enc := NewEncoder(cfg)
	trainer := NewMLMTrainer(enc, 0.005)
	corpus := [][]string{
		{"coronavirus", "cases", "rise", "in", "italy"},
		{"coronavirus", "cases", "rise", "in", "canada"},
		{"trump", "speaks", "about", "coronavirus"},
		{"beshear", "updates", "kentucky", "on", "coronavirus"},
		{"nhs", "hospitals", "are", "full"},
		{"cases", "rise", "in", "the", "us"},
	}
	first := trainer.TrainEpoch(corpus)
	var last float64
	for i := 0; i < 30; i++ {
		last = trainer.TrainEpoch(corpus)
	}
	if last >= first {
		t.Fatalf("MLM loss did not decrease: first %v, last %v", first, last)
	}
}
