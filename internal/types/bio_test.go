package types

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBIOLabelArithmetic(t *testing.T) {
	for _, et := range EntityTypes {
		b, i := BForType(et), IForType(et)
		if !b.IsB() || b.IsI() {
			t.Errorf("BForType(%v) = %v misclassified", et, b)
		}
		if !i.IsI() || i.IsB() {
			t.Errorf("IForType(%v) = %v misclassified", et, i)
		}
		if b.Type() != et || i.Type() != et {
			t.Errorf("type recovery failed for %v", et)
		}
	}
	if BForType(None) != LabelO || IForType(None) != LabelO {
		t.Error("None must map to O")
	}
	if LabelO.Type() != None || LabelO.IsB() || LabelO.IsI() {
		t.Error("LabelO misclassified")
	}
}

func TestBIOLabelStringRoundTrip(t *testing.T) {
	for l := BIOLabel(0); l < NumBIOLabels; l++ {
		got, err := ParseBIOLabel(l.String())
		if err != nil {
			t.Fatalf("ParseBIOLabel(%q): %v", l.String(), err)
		}
		if got != l {
			t.Errorf("round trip %v -> %q -> %v", l, l.String(), got)
		}
	}
	for _, bad := range []string{"X-PER", "B-", "B-banana", "I"} {
		if _, err := ParseBIOLabel(bad); err == nil {
			t.Errorf("ParseBIOLabel(%q) should fail", bad)
		}
	}
}

func TestEncodeBIOKnown(t *testing.T) {
	ents := []Entity{
		{Span: Span{Start: 1, End: 3}, Type: Person},
		{Span: Span{Start: 4, End: 5}, Type: Location},
	}
	got := EncodeBIO(6, ents)
	want := []BIOLabel{LabelO, LabelBPer, LabelIPer, LabelO, LabelBLoc, LabelO}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EncodeBIO = %v, want %v", got, want)
	}
}

func TestEncodeBIOConflictAndClipping(t *testing.T) {
	ents := []Entity{
		{Span: Span{Start: 0, End: 2}, Type: Person},
		{Span: Span{Start: 1, End: 3}, Type: Location},       // overlaps: dropped
		{Span: Span{Start: -2, End: 1}, Type: Organization},  // clipped then conflicts: dropped
		{Span: Span{Start: 3, End: 99}, Type: Miscellaneous}, // clipped to sentence
	}
	got := EncodeBIO(4, ents)
	want := []BIOLabel{LabelBPer, LabelIPer, LabelO, LabelBMisc}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EncodeBIO = %v, want %v", got, want)
	}
}

func TestDecodeBIOKnown(t *testing.T) {
	labels := []BIOLabel{LabelO, LabelBPer, LabelIPer, LabelBLoc, LabelO}
	got := DecodeBIO(labels)
	want := []Entity{
		{Span: Span{Start: 1, End: 3}, Type: Person},
		{Span: Span{Start: 3, End: 4}, Type: Location},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DecodeBIO = %v, want %v", got, want)
	}
}

func TestDecodeBIOMalformed(t *testing.T) {
	// I- without B- starts a new entity; type switch mid-entity splits.
	labels := []BIOLabel{LabelIPer, LabelILoc, LabelILoc}
	got := DecodeBIO(labels)
	want := []Entity{
		{Span: Span{Start: 0, End: 1}, Type: Person},
		{Span: Span{Start: 1, End: 3}, Type: Location},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DecodeBIO = %v, want %v", got, want)
	}
}

func TestDecodeBIOEntityAtEnd(t *testing.T) {
	labels := []BIOLabel{LabelO, LabelBOrg, LabelIOrg}
	got := DecodeBIO(labels)
	if len(got) != 1 || got[0].End != 3 || got[0].Type != Organization {
		t.Fatalf("DecodeBIO = %v", got)
	}
}

// Property: encode → decode is the identity on non-overlapping,
// in-range entity sets.
func TestBIORoundTripProperty(t *testing.T) {
	f := func(raw [4]uint8) bool {
		n := 12
		// Construct up to two non-overlapping entities deterministically
		// from the fuzz input.
		s1 := int(raw[0]) % 5
		l1 := 1 + int(raw[1])%3
		t1 := EntityTypes[int(raw[2])%len(EntityTypes)]
		ents := []Entity{{Span: Span{Start: s1, End: s1 + l1}, Type: t1}}
		s2 := s1 + l1 + 1 + int(raw[3])%3
		if s2+1 <= n {
			ents = append(ents, Entity{Span: Span{Start: s2, End: s2 + 1}, Type: EntityTypes[int(raw[3])%len(EntityTypes)]})
		}
		dec := DecodeBIO(EncodeBIO(n, ents))
		return reflect.DeepEqual(dec, ents)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeBIO output spans never overlap and are sorted.
func TestDecodeBIOWellFormedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		labels := make([]BIOLabel, len(raw))
		for i, r := range raw {
			labels[i] = BIOLabel(int(r) % NumBIOLabels)
		}
		ents := DecodeBIO(labels)
		for i, e := range ents {
			if e.Start >= e.End || e.Type == None {
				return false
			}
			if i > 0 && ents[i-1].End > e.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
