package types

import (
	"testing"
)

func TestEntityTypeStringRoundTrip(t *testing.T) {
	for _, et := range append([]EntityType{None}, EntityTypes...) {
		got, err := ParseEntityType(et.String())
		if err != nil {
			t.Fatalf("ParseEntityType(%q): %v", et.String(), err)
		}
		if got != et {
			t.Errorf("round trip %v -> %q -> %v", et, et.String(), got)
		}
	}
}

func TestParseEntityTypeLongForms(t *testing.T) {
	cases := map[string]EntityType{
		"person": Person, "LOCATION": Location, "Organization": Organization,
		"misc": Miscellaneous, "": None, "none": None,
	}
	for in, want := range cases {
		got, err := ParseEntityType(in)
		if err != nil || got != want {
			t.Errorf("ParseEntityType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseEntityType("banana"); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestSpanOps(t *testing.T) {
	s := Span{Start: 2, End: 5}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Contains(2) || !s.Contains(4) || s.Contains(5) || s.Contains(1) {
		t.Error("Contains boundary behaviour wrong")
	}
	if !s.Overlaps(Span{Start: 4, End: 6}) {
		t.Error("should overlap")
	}
	if s.Overlaps(Span{Start: 5, End: 7}) {
		t.Error("touching spans must not overlap")
	}
}

func TestCanonicalSurface(t *testing.T) {
	if got := CanonicalSurface([]string{"Andy", "BESHEAR"}); got != "andy beshear" {
		t.Errorf("CanonicalSurface = %q", got)
	}
	s := &Sentence{Tokens: []string{"I", "love", "New", "York"}}
	if got := s.SurfaceAt(Span{Start: 2, End: 4}); got != "new york" {
		t.Errorf("SurfaceAt = %q", got)
	}
}

func TestSentenceKeyAndText(t *testing.T) {
	s := &Sentence{TweetID: 7, SentID: 2, Tokens: []string{"hello", "world"}}
	if s.Key() != (SentenceKey{TweetID: 7, SentID: 2}) {
		t.Errorf("Key = %+v", s.Key())
	}
	if s.Text() != "hello world" {
		t.Errorf("Text = %q", s.Text())
	}
}
