package types

import (
	"fmt"
	"strings"
)

// BIOLabel is a token-level label in the BIO (Beginning-Inside-Outside)
// scheme, encoding both entity boundary position and entity type. The
// label set is {O} ∪ {B-T, I-T : T ∈ EntityTypes}, nine labels total.
type BIOLabel int

// BIO label constants. The layout interleaves B and I per type so
// BForType/IForType are simple arithmetic.
const (
	LabelO BIOLabel = iota
	LabelBPer
	LabelIPer
	LabelBLoc
	LabelILoc
	LabelBOrg
	LabelIOrg
	LabelBMisc
	LabelIMisc
)

// NumBIOLabels is the size of the BIO label vocabulary.
const NumBIOLabels = 9

// BForType returns the B- label for an entity type.
func BForType(t EntityType) BIOLabel {
	if t == None {
		return LabelO
	}
	return BIOLabel(1 + 2*(int(t)-1))
}

// IForType returns the I- label for an entity type.
func IForType(t EntityType) BIOLabel {
	if t == None {
		return LabelO
	}
	return BIOLabel(2 + 2*(int(t)-1))
}

// IsB reports whether the label begins an entity.
func (l BIOLabel) IsB() bool { return l != LabelO && (int(l)-1)%2 == 0 }

// IsI reports whether the label continues an entity.
func (l BIOLabel) IsI() bool { return l != LabelO && (int(l)-1)%2 == 1 }

// Type returns the entity type the label refers to (None for O).
func (l BIOLabel) Type() EntityType {
	if l == LabelO {
		return None
	}
	return EntityType(1 + (int(l)-1)/2)
}

// String renders the label in the conventional "B-PER" style.
func (l BIOLabel) String() string {
	if l == LabelO {
		return "O"
	}
	prefix := "B"
	if l.IsI() {
		prefix = "I"
	}
	return prefix + "-" + l.Type().String()
}

// ParseBIOLabel parses labels of the form "O", "B-PER", "I-LOC".
func ParseBIOLabel(s string) (BIOLabel, error) {
	if strings.EqualFold(s, "O") || s == "" {
		return LabelO, nil
	}
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return LabelO, fmt.Errorf("types: malformed BIO label %q", s)
	}
	t, err := ParseEntityType(parts[1])
	if err != nil || t == None {
		return LabelO, fmt.Errorf("types: malformed BIO label %q", s)
	}
	switch strings.ToUpper(parts[0]) {
	case "B":
		return BForType(t), nil
	case "I":
		return IForType(t), nil
	default:
		return LabelO, fmt.Errorf("types: malformed BIO label %q", s)
	}
}

// EncodeBIO converts entity span annotations into a per-token BIO label
// sequence of length n. Overlapping entities are resolved
// first-come-first-served; out-of-range spans are clipped.
func EncodeBIO(n int, entities []Entity) []BIOLabel {
	labels := make([]BIOLabel, n)
	for _, e := range entities {
		if e.Type == None {
			continue
		}
		start, end := e.Start, e.End
		if start < 0 {
			start = 0
		}
		if end > n {
			end = n
		}
		if start >= end {
			continue
		}
		conflict := false
		for i := start; i < end; i++ {
			if labels[i] != LabelO {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		labels[start] = BForType(e.Type)
		for i := start + 1; i < end; i++ {
			labels[i] = IForType(e.Type)
		}
	}
	return labels
}

// DecodeBIO converts a BIO label sequence back into entity spans. It is
// tolerant of malformed sequences the way NER evaluators conventionally
// are: an I-T without a preceding B-T (or following a different type)
// starts a new entity.
func DecodeBIO(labels []BIOLabel) []Entity {
	var out []Entity
	var cur *Entity
	flush := func(end int) {
		if cur != nil {
			cur.End = end
			out = append(out, *cur)
			cur = nil
		}
	}
	for i, l := range labels {
		switch {
		case l == LabelO:
			flush(i)
		case l.IsB():
			flush(i)
			cur = &Entity{Span: Span{Start: i}, Type: l.Type()}
		default: // I-
			if cur == nil || cur.Type != l.Type() {
				flush(i)
				cur = &Entity{Span: Span{Start: i}, Type: l.Type()}
			}
		}
	}
	flush(len(labels))
	return out
}
