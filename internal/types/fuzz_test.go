package types

import "testing"

// FuzzParseBIOLabel checks that arbitrary strings either parse to a
// valid label that round-trips, or error — never panic.
func FuzzParseBIOLabel(f *testing.F) {
	for l := BIOLabel(0); l < NumBIOLabels; l++ {
		f.Add(l.String())
	}
	f.Add("B-")
	f.Add("X-PER")
	f.Add("b-per")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseBIOLabel(s)
		if err != nil {
			return
		}
		if l < 0 || l >= NumBIOLabels {
			t.Fatalf("parsed label out of range: %v", l)
		}
		// A successfully parsed label must round-trip through its own
		// canonical string form.
		back, err := ParseBIOLabel(l.String())
		if err != nil || back != l {
			t.Fatalf("round trip failed for %v", l)
		}
	})
}

// FuzzDecodeBIO checks DecodeBIO never produces ill-formed entities
// for arbitrary label sequences.
func FuzzDecodeBIO(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{2, 2, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		labels := make([]BIOLabel, len(raw))
		for i, b := range raw {
			labels[i] = BIOLabel(int(b) % NumBIOLabels)
		}
		prevEnd := 0
		for _, e := range DecodeBIO(labels) {
			if e.Start < prevEnd || e.End <= e.Start || e.End > len(labels) || e.Type == None {
				t.Fatalf("ill-formed entity %+v", e)
			}
			prevEnd = e.End
		}
	})
}
