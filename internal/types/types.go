// Package types defines the shared vocabulary of the NER Globalizer
// reproduction: entity types, tweets and sentences, spans, mentions,
// and the BIO token-label scheme used by Local NER.
package types

import (
	"fmt"
	"strings"
)

// EntityType is one of the L preset entity types the system classifies
// into, plus None for non-entities. The paper fixes L=4: Person,
// Location, Organization and Miscellaneous.
type EntityType int

// The four preset entity types plus the non-entity class.
const (
	None EntityType = iota
	Person
	Location
	Organization
	Miscellaneous
)

// EntityTypes lists the L=4 entity types in canonical order (excluding
// None).
var EntityTypes = []EntityType{Person, Location, Organization, Miscellaneous}

// NumClasses is L+1: the four entity types plus the non-entity class
// used by the Entity Classifier.
const NumClasses = 5

// String returns the conventional short tag for the type.
func (e EntityType) String() string {
	switch e {
	case Person:
		return "PER"
	case Location:
		return "LOC"
	case Organization:
		return "ORG"
	case Miscellaneous:
		return "MISC"
	default:
		return "O"
	}
}

// ParseEntityType converts a short tag back to an EntityType.
func ParseEntityType(s string) (EntityType, error) {
	switch strings.ToUpper(s) {
	case "PER", "PERSON":
		return Person, nil
	case "LOC", "LOCATION":
		return Location, nil
	case "ORG", "ORGANIZATION":
		return Organization, nil
	case "MISC", "MISCELLANEOUS":
		return Miscellaneous, nil
	case "O", "NONE", "":
		return None, nil
	default:
		return None, fmt.Errorf("types: unknown entity type %q", s)
	}
}

// Span is a half-open token range [Start, End) within a sentence.
type Span struct {
	Start, End int
}

// Len returns the number of tokens covered.
func (s Span) Len() int { return s.End - s.Start }

// Contains reports whether token index i falls inside the span.
func (s Span) Contains(i int) bool { return i >= s.Start && i < s.End }

// Overlaps reports whether two spans share at least one token.
func (s Span) Overlaps(o Span) bool { return s.Start < o.End && o.Start < s.End }

// Entity is a gold or predicted entity annotation: a typed token span
// within one sentence.
type Entity struct {
	Span
	Type EntityType
}

// Sentence is one tweet sentence: the unit Local NER processes. Tokens
// are the output of the tweet tokenizer; Gold carries annotations when
// the sentence comes from a labelled dataset.
type Sentence struct {
	TweetID int
	SentID  int
	Tokens  []string
	Gold    []Entity
}

// Key identifies the sentence within a TweetBase.
func (s *Sentence) Key() SentenceKey { return SentenceKey{TweetID: s.TweetID, SentID: s.SentID} }

// Text reconstructs a space-joined form of the sentence for display.
func (s *Sentence) Text() string { return strings.Join(s.Tokens, " ") }

// SurfaceAt returns the lower-cased surface form of the token span,
// which is how candidate surface forms are canonicalized throughout
// the pipeline (mention matching is case-insensitive).
func (s *Sentence) SurfaceAt(sp Span) string {
	return CanonicalSurface(s.Tokens[sp.Start:sp.End])
}

// CanonicalSurface lower-cases and space-joins tokens to produce the
// canonical candidate surface form string.
func CanonicalSurface(tokens []string) string {
	parts := make([]string, len(tokens))
	for i, t := range tokens {
		parts[i] = strings.ToLower(t)
	}
	return strings.Join(parts, " ")
}

// SentenceKey indexes a sentence by (tweet ID, sentence ID), the record
// key of the TweetBase.
type SentenceKey struct {
	TweetID int
	SentID  int
}

// Mention is an individual reference to a candidate in a message
// (Definition III.3): a token span in a specific sentence, with the
// canonical surface form it matched and the type attributed to it (None
// until classification).
type Mention struct {
	Key     SentenceKey
	Span    Span
	Surface string
	Type    EntityType
	// FromLocalNER marks mentions originally produced by the Local NER
	// tagger, as opposed to ones recovered later by mention extraction.
	FromLocalNER bool
}

// Tweet is a raw microblog message before sentence splitting.
type Tweet struct {
	ID    int
	Text  string
	Topic string
}
