// Cycle records: the WAL's unit of appending and the provenance
// layer's unit of leaf batching. One record captures everything needed
// to re-execute one committed cycle — the batch sentences in batch
// order and the mode — plus the annotations the service emitted for
// that batch, which replay verifies against (a mismatch means the
// restart is running a different model or configuration than the one
// that wrote the log) and the Merkle layer hashes as leaves.
package durable

import (
	"fmt"

	"nerglobalizer/internal/types"
)

// Entity is one emitted entity annotation: a typed token span plus the
// surface string as the serving path rendered it.
type Entity struct {
	Start   int              `json:"start"`
	End     int              `json:"end"`
	Type    types.EntityType `json:"type"`
	Surface string           `json:"surface"`
}

// SentenceAnnotation is the annotations one cycle emitted for one
// batch sentence — one Merkle leaf.
type SentenceAnnotation struct {
	TweetID  int      `json:"tweet_id"`
	SentID   int      `json:"sent_id"`
	Entities []Entity `json:"entities"`
}

// Key returns the sentence's stream key.
func (a *SentenceAnnotation) Key() types.SentenceKey {
	return types.SentenceKey{TweetID: a.TweetID, SentID: a.SentID}
}

// CycleSentence is one batch sentence as ingested: identity plus the
// tokenizer's output, enough to re-execute the cycle on replay.
type CycleSentence struct {
	TweetID int
	SentID  int
	Tokens  []string
}

// Sentence materializes the logged form.
func (c CycleSentence) Sentence() *types.Sentence {
	return &types.Sentence{TweetID: c.TweetID, SentID: c.SentID, Tokens: c.Tokens}
}

// ToCycleSentences converts a batch for logging.
func ToCycleSentences(batch []*types.Sentence) []CycleSentence {
	out := make([]CycleSentence, len(batch))
	for i, s := range batch {
		out[i] = CycleSentence{TweetID: s.TweetID, SentID: s.SentID, Tokens: s.Tokens}
	}
	return out
}

// ToSentences materializes a logged batch.
func ToSentences(cs []CycleSentence) []*types.Sentence {
	out := make([]*types.Sentence, len(cs))
	for i, c := range cs {
		out[i] = c.Sentence()
	}
	return out
}

// RenderAnnotations builds the loggable annotations for one cycle from
// the engine's output, index-aligned with batch. Surfaces are rendered
// exactly as the serving path does (SurfaceAt over the final span), so
// replay verification and Merkle leaves cover the bytes clients saw.
func RenderAnnotations(batch []*types.Sentence, final map[types.SentenceKey][]types.Entity) []SentenceAnnotation {
	out := make([]SentenceAnnotation, len(batch))
	for i, sent := range batch {
		a := SentenceAnnotation{TweetID: sent.TweetID, SentID: sent.SentID}
		for _, e := range final[sent.Key()] {
			a.Entities = append(a.Entities, Entity{
				Start:   e.Start,
				End:     e.End,
				Type:    e.Type,
				Surface: sent.SurfaceAt(e.Span),
			})
		}
		out[i] = a
	}
	return out
}

// AnnotationsEqual compares two cycles' annotations by their canonical
// leaf encodings — the same bytes the Merkle layer hashes.
func AnnotationsEqual(a, b []SentenceAnnotation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(leafBytes(a[i])) != string(leafBytes(b[i])) {
			return false
		}
	}
	return true
}

// CycleRecord is one committed execution cycle in the WAL. Annotations
// is index-aligned with Sentences.
type CycleRecord struct {
	Seq         uint64
	Mode        int
	Sentences   []CycleSentence
	Annotations []SentenceAnnotation
}

// leafBytes is the canonical encoding of one annotation leaf — the
// bytes the Merkle layer hashes and cmd/nerprove re-derives during
// verification. It must never change shape without a WAL format bump.
func leafBytes(a SentenceAnnotation) []byte {
	w := &writer{buf: make([]byte, 0, 24+32*len(a.Entities))}
	w.i64(a.TweetID)
	w.i64(a.SentID)
	w.u32(len(a.Entities))
	for _, e := range a.Entities {
		w.i64(e.Start)
		w.i64(e.End)
		w.i64(int(e.Type))
		w.str(e.Surface)
	}
	return w.buf
}

func putAnnotations(w *writer, anns []SentenceAnnotation) {
	w.u32(len(anns))
	for i := range anns {
		w.bytes(leafBytes(anns[i]))
	}
}

func getAnnotations(r *reader) []SentenceAnnotation {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]SentenceAnnotation, n)
	for i := range out {
		lr := &reader{b: r.rawBytes()}
		out[i].TweetID = lr.i64()
		out[i].SentID = lr.i64()
		ne := lr.count(28)
		if lr.err == nil && ne > 0 {
			out[i].Entities = make([]Entity, ne)
		}
		for j := range out[i].Entities {
			e := &out[i].Entities[j]
			e.Start = lr.i64()
			e.End = lr.i64()
			e.Type = types.EntityType(lr.i64())
			e.Surface = lr.str()
		}
		if err := lr.done(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return out
}

func putCycleSentences(w *writer, cs []CycleSentence) {
	w.u32(len(cs))
	for i := range cs {
		w.i64(cs[i].TweetID)
		w.i64(cs[i].SentID)
		w.strs(cs[i].Tokens)
	}
}

func getCycleSentences(r *reader) []CycleSentence {
	n := r.count(20)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]CycleSentence, n)
	for i := range out {
		out[i].TweetID = r.i64()
		out[i].SentID = r.i64()
		out[i].Tokens = r.strs()
	}
	return out
}

// encode serializes the record for WAL framing.
func (c *CycleRecord) encode() []byte {
	w := &writer{buf: make([]byte, 0, 256)}
	w.u64(c.Seq)
	w.i64(c.Mode)
	putCycleSentences(w, c.Sentences)
	putAnnotations(w, c.Annotations)
	return w.buf
}

// decodeCycleRecord parses one framed WAL payload.
func decodeCycleRecord(b []byte) (*CycleRecord, error) {
	r := &reader{b: b}
	c := &CycleRecord{}
	c.Seq = r.u64()
	c.Mode = r.i64()
	c.Sentences = getCycleSentences(r)
	c.Annotations = getAnnotations(r)
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("durable: cycle record: %w", err)
	}
	return c, nil
}
