// Hand-rolled binary codec for the durability formats (snapshot
// payloads, WAL records, Merkle leaves).
//
// The layout conventions are the fleet wire codec's: integers are
// 64-bit little-endian two's complement, counts and string lengths are
// uint32, strings are length-prefixed bytes, slices are count-prefixed
// elements, floats are IEEE-754 bit images. Float64 bits round-trip
// exactly — warm resume must reproduce byte-identical annotations, and
// the amortization caches it restores are keyed by those bits.
//
// The reader latches its first error and returns zero values from then
// on, so decoders run straight-line and check done() once; element
// counts are validated against the remaining body so a corrupt length
// field cannot drive a huge allocation.
package durable

import (
	"encoding/binary"
	"fmt"
	"math"
)

// writer accumulates a payload by appending fixed-width fields.
type writer struct {
	buf []byte
	err error
}

func (w *writer) u8(x byte) { w.buf = append(w.buf, x) }

func (w *writer) u64(x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	w.buf = append(w.buf, b[:]...)
}

func (w *writer) i64(x int) { w.u64(uint64(int64(x))) }

func (w *writer) f64(x float64) { w.u64(math.Float64bits(x)) }

func (w *writer) u32(x int) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(x))
	w.buf = append(w.buf, b[:]...)
}

func (w *writer) str(s string) {
	w.u32(len(s))
	w.buf = append(w.buf, s...)
}

func (w *writer) strs(ss []string) {
	w.u32(len(ss))
	for _, s := range ss {
		w.str(s)
	}
}

func (w *writer) bytes(b []byte) {
	w.u32(len(b))
	w.buf = append(w.buf, b...)
}

func (w *writer) floats(d []float64) {
	w.u32(len(d))
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, 8*len(d))...)
	for i, v := range d {
		binary.LittleEndian.PutUint64(w.buf[off+8*i:], math.Float64bits(v))
	}
}

// reader consumes a payload with latched-error semantics.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("durable: body truncated or corrupt at byte %d of %d", r.off, len(r.b))
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int { return int(int64(r.u64())) }

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) u32() int {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return int(v)
}

// count reads an element count whose elements each occupy at least min
// bytes, rejecting counts the remaining body cannot possibly hold.
func (r *reader) count(min int) int {
	c := r.u32()
	if r.err == nil && c > (len(r.b)-r.off)/min {
		r.fail()
		return 0
	}
	return c
}

func (r *reader) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) strs() []string {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *reader) rawBytes() []byte {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

func (r *reader) floats() []float64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off+8*i:]))
	}
	r.off += 8 * n
	return out
}

// done finishes a decode: any latched error wins, and trailing bytes
// are an error too.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("durable: body has %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}
