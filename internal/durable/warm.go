// Binary codec for core.WarmState — the engine-state body of a
// snapshot. Field order here is the format; any change needs a
// snapshot version bump in snapshot.go.
package durable

import (
	"fmt"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

func putInts(w *writer, xs []int) {
	w.u32(len(xs))
	for _, x := range xs {
		w.i64(x)
	}
}

func getInts(r *reader) []int {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

func putEntities(w *writer, es []types.Entity) {
	w.u32(len(es))
	for _, e := range es {
		w.i64(e.Start)
		w.i64(e.End)
		w.i64(int(e.Type))
	}
}

func getEntities(r *reader) []types.Entity {
	n := r.count(24)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]types.Entity, n)
	for i := range out {
		out[i].Start = r.i64()
		out[i].End = r.i64()
		out[i].Type = types.EntityType(r.i64())
	}
	return out
}

func putMention(w *writer, m types.Mention) {
	w.i64(m.Key.TweetID)
	w.i64(m.Key.SentID)
	w.i64(m.Span.Start)
	w.i64(m.Span.End)
	w.str(m.Surface)
	w.i64(int(m.Type))
	if m.FromLocalNER {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func getMention(r *reader) types.Mention {
	var m types.Mention
	m.Key.TweetID = r.i64()
	m.Key.SentID = r.i64()
	m.Span.Start = r.i64()
	m.Span.End = r.i64()
	m.Surface = r.str()
	m.Type = types.EntityType(r.i64())
	m.FromLocalNER = r.u8() == 1
	return m
}

// wireMentionMin is the smallest encoded mention: four i64s, an empty
// string, a type and a flag.
const wireMentionMin = 8*5 + 4 + 1

func putMentions(w *writer, ms []types.Mention) {
	w.u32(len(ms))
	for _, m := range ms {
		putMention(w, m)
	}
}

func getMentions(r *reader) []types.Mention {
	n := r.count(wireMentionMin)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]types.Mention, n)
	for i := range out {
		out[i] = getMention(r)
	}
	return out
}

func putMatrix(w *writer, m *nn.Matrix) {
	if m == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	w.i64(m.Rows)
	w.i64(m.Cols)
	w.floats(m.Data)
}

func getMatrix(r *reader) *nn.Matrix {
	if r.u8() == 0 {
		return nil
	}
	m := &nn.Matrix{Rows: r.i64(), Cols: r.i64()}
	m.Data = r.floats()
	if r.err == nil && (m.Rows < 0 || m.Cols < 0 || len(m.Data) != m.Rows*m.Cols) {
		r.err = fmt.Errorf("durable: matrix shape %dx%d has %d values", m.Rows, m.Cols, len(m.Data))
	}
	return m
}

func putRecordState(w *writer, rs *core.RecordState) {
	w.i64(rs.TweetID)
	w.i64(rs.SentID)
	w.strs(rs.Tokens)
	putEntities(w, rs.Gold)
	putEntities(w, rs.Local)
	putMatrix(w, rs.Emb)
	putMentions(w, rs.Final)
}

func getRecordState(r *reader) core.RecordState {
	var rs core.RecordState
	rs.TweetID = r.i64()
	rs.SentID = r.i64()
	rs.Tokens = r.strs()
	rs.Gold = getEntities(r)
	rs.Local = getEntities(r)
	rs.Emb = getMatrix(r)
	rs.Final = getMentions(r)
	return rs
}

func putAmortState(w *writer, as *core.AmortState) {
	if as == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	w.i64(as.ScannedLen)
	w.i64(as.TrieLen)
	w.i64(as.MentionCount)
	w.i64(as.Mode)
	w.u32(len(as.Scans))
	for i := range as.Scans {
		w.i64(as.Scans[i].Key.TweetID)
		w.i64(as.Scans[i].Key.SentID)
		putMentions(w, as.Scans[i].Mentions)
	}
	w.u32(len(as.Surfaces))
	for i := range as.Surfaces {
		st := &as.Surfaces[i]
		w.str(st.Surface)
		putMentions(w, st.Pool)
		if st.Skip {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u32(len(st.Cands))
		for j := range st.Cands {
			cs := &st.Cands[j]
			w.i64(cs.ClusterID)
			putInts(w, cs.Members)
			w.floats(cs.GlobalEmb)
			w.i64(int(cs.Type))
			w.f64(cs.Conf)
		}
	}
	w.u32(len(as.Embeds))
	for i := range as.Embeds {
		e := &as.Embeds[i]
		w.i64(e.Key.TweetID)
		w.i64(e.Key.SentID)
		w.i64(e.Span.Start)
		w.i64(e.Span.End)
		w.floats(e.Vec)
	}
}

func getAmortState(r *reader) *core.AmortState {
	if r.u8() == 0 {
		return nil
	}
	as := &core.AmortState{}
	as.ScannedLen = r.i64()
	as.TrieLen = r.i64()
	as.MentionCount = r.i64()
	as.Mode = r.i64()
	if n := r.count(20); r.err == nil && n > 0 {
		as.Scans = make([]core.ScanState, n)
		for i := range as.Scans {
			as.Scans[i].Key.TweetID = r.i64()
			as.Scans[i].Key.SentID = r.i64()
			as.Scans[i].Mentions = getMentions(r)
		}
	}
	if n := r.count(13); r.err == nil && n > 0 {
		as.Surfaces = make([]core.SurfaceState, n)
		for i := range as.Surfaces {
			st := &as.Surfaces[i]
			st.Surface = r.str()
			st.Pool = getMentions(r)
			st.Skip = r.u8() == 1
			if nc := r.count(28); r.err == nil && nc > 0 {
				st.Cands = make([]core.CandState, nc)
				for j := range st.Cands {
					cs := &st.Cands[j]
					cs.ClusterID = r.i64()
					cs.Members = getInts(r)
					cs.GlobalEmb = r.floats()
					cs.Type = types.EntityType(r.i64())
					cs.Conf = r.f64()
				}
			}
		}
	}
	if n := r.count(36); r.err == nil && n > 0 {
		as.Embeds = make([]core.MentionEmbed, n)
		for i := range as.Embeds {
			e := &as.Embeds[i]
			e.Key.TweetID = r.i64()
			e.Key.SentID = r.i64()
			e.Span.Start = r.i64()
			e.Span.End = r.i64()
			e.Vec = r.floats()
		}
	}
	return as
}

func putWarmState(w *writer, ws *core.WarmState) {
	if ws == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	w.str(ws.Precision)
	w.i64(ws.ShardIndex)
	w.i64(ws.ShardCount)
	w.strs(ws.Surfaces)
	w.u32(len(ws.Records))
	for i := range ws.Records {
		putRecordState(w, &ws.Records[i])
	}
	putAmortState(w, ws.Amort)
}

func getWarmState(r *reader) *core.WarmState {
	if r.u8() == 0 {
		return nil
	}
	ws := &core.WarmState{}
	ws.Precision = r.str()
	ws.ShardIndex = r.i64()
	ws.ShardCount = r.i64()
	ws.Surfaces = r.strs()
	if n := r.count(45); r.err == nil && n > 0 {
		ws.Records = make([]core.RecordState, n)
		for i := range ws.Records {
			ws.Records[i] = getRecordState(r)
		}
	}
	ws.Amort = getAmortState(r)
	return ws
}
