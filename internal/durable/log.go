// Log is the durability manager one serving process owns: the WAL
// writer, the snapshot schedule, compaction, and the ner_wal_* /
// ner_snapshot_* metrics. The serving layers (server, fleet) call
// Append once per committed cycle before acking, ask ShouldSnapshot on
// the cycle schedule, and hand SaveSnapshot a captured Snapshot —
// usually from a background goroutine, since the capture is the only
// part that needs the serving lock.
package durable

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nerglobalizer/internal/obs"
)

// Options configures a process's durability layer.
type Options struct {
	// SnapshotEvery is the cycle count between snapshots; <= 0 selects
	// the default of 64.
	SnapshotEvery int
	// Fsync is the WAL flush policy.
	Fsync FsyncPolicy
	// MaxSegmentBytes bounds WAL segment size; <= 0 selects the default.
	MaxSegmentBytes int64
}

// defaultSnapshotEvery balances replay length against snapshot cost.
const defaultSnapshotEvery = 64

// Recovery is what Open found on disk: the latest valid snapshot (nil
// on a cold start) and the WAL records past it, in seq order.
type Recovery struct {
	Snapshot *Snapshot
	Tail     []*CycleRecord
}

// Log manages one process's durability state. Append is safe for
// concurrent use; SaveSnapshot is single-flight (a second call while
// one is writing is dropped).
type Log struct {
	dir  string
	opts Options

	mu sync.Mutex // guards w
	w  *wal

	lastSnapSeq atomic.Uint64
	snapBusy    atomic.Bool

	appends      *obs.Counter
	walBytes     *obs.Counter
	appendSecs   *obs.Histogram
	segments     *obs.Gauge
	compactions  *obs.Counter
	snapWrites   *obs.Counter
	snapErrors   *obs.Counter
	snapBytes    *obs.Gauge
	snapSecs     *obs.Histogram
	replayCycles *obs.Counter
	replaySecs   *obs.Gauge
	proofsServed *obs.Counter
}

// Open prepares the data directory: loads the latest valid snapshot,
// reads the WAL tail past it, and readies the writer. The returned
// Recovery is what the caller replays; Append may be used immediately
// after (new records land in a fresh segment). reg may be nil.
func Open(dir string, opts Options, reg *obs.Registry) (*Log, *Recovery, error) {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: data dir: %w", err)
	}
	snap, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	recs, err := readWAL(dir)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovery{Snapshot: snap}
	var snapSeq uint64
	if snap != nil {
		snapSeq = snap.Seq
	}
	for _, r := range recs {
		if r.Seq > snapSeq {
			rec.Tail = append(rec.Tail, r)
		}
	}
	// The WAL is contiguous (readWAL checked); the snapshot must reach
	// the tail, or cycles between them were compacted away.
	if len(rec.Tail) > 0 && rec.Tail[0].Seq != snapSeq+1 {
		return nil, nil, fmt.Errorf("durable: wal resumes at seq %d but snapshot covers through %d", rec.Tail[0].Seq, snapSeq)
	}
	if len(recs) == 0 && snap == nil {
		rec = &Recovery{}
	}

	l := &Log{dir: dir, opts: opts, w: openWAL(dir, opts.Fsync, opts.MaxSegmentBytes)}
	l.lastSnapSeq.Store(snapSeq)
	if reg != nil {
		l.appends = reg.Counter("ner_wal_appends_total", "WAL records appended")
		l.walBytes = reg.Counter("ner_wal_bytes_total", "WAL bytes written (framed)")
		l.appendSecs = reg.Histogram("ner_wal_append_seconds", "WAL append latency including fsync", obs.DefBuckets)
		l.segments = reg.Gauge("ner_wal_segments", "WAL segment files on disk")
		l.compactions = reg.Counter("ner_wal_compactions_total", "WAL segments deleted by compaction")
		l.snapWrites = reg.Counter("ner_snapshot_writes_total", "snapshots written")
		l.snapErrors = reg.Counter("ner_snapshot_errors_total", "snapshot write failures")
		l.snapBytes = reg.Gauge("ner_snapshot_bytes", "size of the latest snapshot")
		l.snapSecs = reg.Histogram("ner_snapshot_seconds", "snapshot write wall time", obs.DefBuckets)
		l.replayCycles = reg.Counter("ner_replay_cycles_total", "WAL cycles replayed at startup")
		l.replaySecs = reg.Gauge("ner_replay_millis", "startup recovery wall time in milliseconds")
		l.proofsServed = reg.Counter("ner_proofs_served_total", "inclusion-proof bundles served")
	}
	l.segments.Set(int64(l.w.segmentCount()))
	return l, rec, nil
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Append durably logs one committed cycle. The serving path calls this
// before acking the cycle's jobs — once Append returns under the
// "always" fsync policy, the cycle survives a crash.
func (l *Log) Append(rec *CycleRecord) error {
	t0 := time.Now()
	l.mu.Lock()
	n, err := l.w.append(rec)
	segs := l.w.segmentCount()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	l.appends.Inc()
	l.walBytes.Add(int64(n))
	l.appendSecs.Observe(time.Since(t0).Seconds())
	l.segments.Set(int64(segs))
	return nil
}

// ShouldSnapshot reports whether the cycle schedule calls for a
// snapshot at seq — and no snapshot write is already in flight.
func (l *Log) ShouldSnapshot(seq uint64) bool {
	return !l.snapBusy.Load() && seq >= l.lastSnapSeq.Load()+uint64(l.opts.SnapshotEvery)
}

// SaveSnapshot writes the snapshot and compacts sealed WAL segments
// whose records are all at or below compactThrough. Single-flight: a
// call that finds another write in progress returns false immediately.
// compactThrough is normally snap.Seq; the fleet router passes the
// lowest seq its shards have fully committed, so records it may still
// need for re-driving a lagging shard survive compaction.
func (l *Log) SaveSnapshot(snap *Snapshot, compactThrough uint64) (bool, error) {
	if !l.snapBusy.CompareAndSwap(false, true) {
		return false, nil
	}
	defer l.snapBusy.Store(false)
	t0 := time.Now()
	size, err := WriteSnapshot(l.dir, snap)
	if err != nil {
		l.snapErrors.Inc()
		return false, err
	}
	l.snapWrites.Inc()
	l.snapBytes.Set(size)
	l.snapSecs.Observe(time.Since(t0).Seconds())
	l.lastSnapSeq.Store(snap.Seq)
	if compactThrough > snap.Seq {
		compactThrough = snap.Seq
	}
	l.mu.Lock()
	removed, cerr := l.w.compact(compactThrough)
	segs := l.w.segmentCount()
	l.mu.Unlock()
	l.compactions.Add(int64(removed))
	l.segments.Set(int64(segs))
	if cerr != nil {
		return true, cerr
	}
	return true, nil
}

// ObserveReplay records startup recovery cost.
func (l *Log) ObserveReplay(cycles int, elapsed time.Duration) {
	l.replayCycles.Add(int64(cycles))
	l.replaySecs.Set(elapsed.Milliseconds())
}

// ProofServed counts one served proof bundle.
func (l *Log) ProofServed() { l.proofsServed.Inc() }

// Close seals the active WAL segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.close()
}
