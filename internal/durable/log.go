// Log is the durability manager one serving process owns: the WAL
// writer, the snapshot schedule, compaction, and the ner_wal_* /
// ner_snapshot_* metrics. The serving layers (server, fleet) call
// Append (or AppendAsync under the group fsync policy) once per
// committed cycle before acking, ask ShouldSnapshot on the cycle
// schedule, and hand SubmitSnapshot a captured Snapshot — the capture
// is the only part that needs the serving lock; the write happens off
// the hot path.
//
// Group commit: under FsyncGroup, appends write the frame without
// syncing and take a ticket; a single syncer goroutine fsyncs once per
// pass, covering every ticket appended before the flush started. An
// ack waits only until the fsync covering its ticket completes, so
// concurrent and back-to-back cycles share flushes. The ack coverage
// rule is strict: wait() returns nil only when a completed fsync (or
// the sealing sync of Close) covers the record — never earlier.
package durable

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nerglobalizer/internal/obs"
)

// Options configures a process's durability layer.
type Options struct {
	// SnapshotEvery is the cycle count between snapshots; <= 0 selects
	// the default of 64.
	SnapshotEvery int
	// Fsync is the WAL flush policy.
	Fsync FsyncPolicy
	// MaxSegmentBytes bounds WAL segment size; <= 0 selects the default.
	MaxSegmentBytes int64
	// AsyncSnapshots moves snapshot writes to a background writer with a
	// depth-1 queue. A snapshot submitted while the queue is full is
	// dropped — safe, because the WAL covers every cycle and the next
	// schedule boundary retries.
	AsyncSnapshots bool
}

// defaultSnapshotEvery balances replay length against snapshot cost.
const defaultSnapshotEvery = 64

// groupSizeBuckets buckets fsync group sizes (records per flush).
var groupSizeBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64}

// Recovery is what Open found on disk: the latest valid snapshot (nil
// on a cold start) and the WAL records past it, in seq order.
type Recovery struct {
	Snapshot *Snapshot
	Tail     []*CycleRecord
}

// Status is a point-in-time durability summary for /statusz.
type Status struct {
	Fsync           string `json:"fsync"`
	AsyncSnapshots  bool   `json:"async_snapshots"`
	WALBacklog      uint64 `json:"wal_backlog"`
	SnapshotPending int    `json:"snapshot_pending"`
}

// snapJob is one queued background snapshot write.
type snapJob struct {
	snap           *Snapshot
	compactThrough uint64
}

// Log manages one process's durability state. Append/AppendAsync are
// safe for concurrent use; SaveSnapshot is single-flight (a second
// call while one is writing is dropped).
type Log struct {
	dir  string
	opts Options

	mu sync.Mutex // guards w
	w  *wal

	// Group-commit state. Lock order: mu may nest gmu (appenders take
	// their ticket while still holding mu so ticket order matches file
	// order); the syncer never holds gmu while acquiring mu.
	gmu      sync.Mutex
	gcond    *sync.Cond
	appended uint64 // tickets issued (== records written)
	synced   uint64 // highest ticket covered by a completed fsync
	gerr     error  // sticky fsync failure; fails every later wait
	closed   bool

	syncWake   chan struct{} // cap 1; nudges the syncer
	syncQuit   chan struct{}
	syncerDone chan struct{}

	snapCh   chan snapJob // depth-1 background snapshot queue
	snapDone chan struct{}

	lastSnapSeq atomic.Uint64
	snapBusy    atomic.Bool

	appends      *obs.Counter
	walBytes     *obs.Counter
	appendSecs   *obs.Histogram
	segments     *obs.Gauge
	compactions  *obs.Counter
	groupSize    *obs.Histogram
	backlog      *obs.Gauge
	snapWrites   *obs.Counter
	snapErrors   *obs.Counter
	snapBytes    *obs.Gauge
	snapSecs     *obs.Histogram
	snapPending  *obs.Gauge
	replayCycles *obs.Counter
	replaySecs   *obs.Gauge
	proofsServed *obs.Counter
}

// Open prepares the data directory: loads the latest valid snapshot,
// reads the WAL tail past it, and readies the writer. The returned
// Recovery is what the caller replays; Append may be used immediately
// after (new records land in a fresh segment). reg may be nil.
func Open(dir string, opts Options, reg *obs.Registry) (*Log, *Recovery, error) {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: data dir: %w", err)
	}
	snap, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	recs, err := readWAL(dir)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovery{Snapshot: snap}
	var snapSeq uint64
	if snap != nil {
		snapSeq = snap.Seq
	}
	for _, r := range recs {
		if r.Seq > snapSeq {
			rec.Tail = append(rec.Tail, r)
		}
	}
	// The WAL is contiguous (readWAL checked); the snapshot must reach
	// the tail, or cycles between them were compacted away.
	if len(rec.Tail) > 0 && rec.Tail[0].Seq != snapSeq+1 {
		return nil, nil, fmt.Errorf("durable: wal resumes at seq %d but snapshot covers through %d", rec.Tail[0].Seq, snapSeq)
	}
	if len(recs) == 0 && snap == nil {
		rec = &Recovery{}
	}

	l := &Log{dir: dir, opts: opts, w: openWAL(dir, opts.Fsync, opts.MaxSegmentBytes)}
	l.gcond = sync.NewCond(&l.gmu)
	l.lastSnapSeq.Store(snapSeq)
	if reg != nil {
		l.appends = reg.Counter("ner_wal_appends_total", "WAL records appended")
		l.walBytes = reg.Counter("ner_wal_bytes_total", "WAL bytes written (framed)")
		l.appendSecs = reg.Histogram("ner_wal_append_seconds", "WAL append latency including fsync", obs.DefBuckets)
		l.segments = reg.Gauge("ner_wal_segments", "WAL segment files on disk")
		l.compactions = reg.Counter("ner_wal_compactions_total", "WAL segments deleted by compaction")
		l.groupSize = reg.Histogram("ner_wal_group_size", "records covered per group-commit fsync", groupSizeBuckets)
		l.backlog = reg.Gauge("ner_wal_backlog", "appended records not yet covered by an fsync")
		l.snapWrites = reg.Counter("ner_snapshot_writes_total", "snapshots written")
		l.snapErrors = reg.Counter("ner_snapshot_errors_total", "snapshot write failures")
		l.snapBytes = reg.Gauge("ner_snapshot_bytes", "size of the latest snapshot")
		l.snapSecs = reg.Histogram("ner_snapshot_seconds", "snapshot write wall time", obs.DefBuckets)
		l.snapPending = reg.Gauge("ner_snapshot_async_pending", "queued plus in-flight background snapshot writes")
		l.replayCycles = reg.Counter("ner_replay_cycles_total", "WAL cycles replayed at startup")
		l.replaySecs = reg.Gauge("ner_replay_millis", "startup recovery wall time in milliseconds")
		l.proofsServed = reg.Counter("ner_proofs_served_total", "inclusion-proof bundles served")
	}
	l.segments.Set(int64(l.w.segmentCount()))
	if opts.Fsync == FsyncGroup {
		l.syncWake = make(chan struct{}, 1)
		l.syncQuit = make(chan struct{})
		l.syncerDone = make(chan struct{})
		go l.syncer()
	}
	if opts.AsyncSnapshots {
		l.snapCh = make(chan snapJob, 1)
		l.snapDone = make(chan struct{})
		go l.snapWriter()
	}
	return l, rec, nil
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Append durably logs one committed cycle, blocking until the record
// is as durable as the policy promises — under "always" and "group"
// it survives a crash once Append returns.
func (l *Log) Append(rec *CycleRecord) error {
	wait, err := l.AppendAsync(rec)
	if err != nil {
		return err
	}
	return wait()
}

// AppendAsync writes one committed cycle record and returns a wait
// function that blocks until the record is durable per policy. Under
// FsyncGroup the write returns immediately and wait blocks on the
// covering fsync; under "always" the record is already synced and
// under "none" durability is never promised, so wait is a no-op for
// both. The serving path must call wait before acking the cycle.
func (l *Log) AppendAsync(rec *CycleRecord) (func() error, error) {
	t0 := time.Now()
	l.mu.Lock()
	n, err := l.w.append(rec)
	var ticket uint64
	if err == nil && l.opts.Fsync == FsyncGroup {
		l.gmu.Lock()
		l.appended++
		ticket = l.appended
		l.backlog.Set(int64(l.appended - l.synced))
		l.gmu.Unlock()
	}
	segs := l.w.segmentCount()
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	l.appends.Inc()
	l.walBytes.Add(int64(n))
	l.appendSecs.Observe(time.Since(t0).Seconds())
	l.segments.Set(int64(segs))
	if l.opts.Fsync != FsyncGroup {
		return func() error { return nil }, nil
	}
	select {
	case l.syncWake <- struct{}{}:
	default:
	}
	return func() error {
		l.gmu.Lock()
		defer l.gmu.Unlock()
		for l.synced < ticket && l.gerr == nil {
			l.gcond.Wait()
		}
		return l.gerr
	}, nil
}

// syncer is the group-commit flush loop: each pass covers every ticket
// appended before the fsync starts, then wakes all waiters at or below
// the covered ticket. An fsync failure is sticky — every current and
// future wait fails, matching the serving layers' broken-flag model.
func (l *Log) syncer() {
	defer close(l.syncerDone)
	for {
		select {
		case <-l.syncQuit:
			return
		case <-l.syncWake:
		}
		for {
			l.gmu.Lock()
			cover, base := l.appended, l.synced
			broken := l.gerr != nil
			l.gmu.Unlock()
			if cover == base || broken {
				break
			}
			// Capture the active segment under mu but fsync outside
			// it: a slow flush (e.g. queued behind a snapshot fsync
			// on the same device) must not block concurrent appends,
			// or the commit window can never exceed one record. Every
			// record at or below cover is either in this file or in a
			// segment that was sealed (and sealing fsyncs), so the
			// captured fd is enough.
			l.mu.Lock()
			f := l.w.f
			l.mu.Unlock()
			err := syncFile(f)
			l.gmu.Lock()
			if err != nil {
				if l.gerr == nil {
					l.gerr = err
				}
			} else if cover > l.synced {
				l.synced = cover
			}
			backlog := l.appended - l.synced
			l.gcond.Broadcast()
			l.gmu.Unlock()
			l.groupSize.Observe(float64(cover - base))
			l.backlog.Set(int64(backlog))
			if err != nil {
				break
			}
		}
	}
}

// ShouldSnapshot reports whether the cycle schedule calls for a
// snapshot at seq — and no snapshot write is already in flight or
// queued (back-pressure: a slow writer skips boundaries rather than
// stacking work).
func (l *Log) ShouldSnapshot(seq uint64) bool {
	if l.snapBusy.Load() {
		return false
	}
	if l.snapCh != nil && len(l.snapCh) > 0 {
		return false
	}
	return seq >= l.lastSnapSeq.Load()+uint64(l.opts.SnapshotEvery)
}

// SubmitSnapshot hands a captured snapshot to the write path without
// blocking the caller: the background writer when AsyncSnapshots is
// on (drop-on-full — the WAL covers every cycle, so a skipped
// snapshot only lengthens replay), a fire-and-forget goroutine
// otherwise.
func (l *Log) SubmitSnapshot(snap *Snapshot, compactThrough uint64) {
	l.gmu.Lock()
	closed := l.closed
	l.gmu.Unlock()
	if closed {
		return
	}
	if l.snapCh != nil {
		select {
		case l.snapCh <- snapJob{snap: snap, compactThrough: compactThrough}:
			l.updateSnapPending()
		default:
		}
		return
	}
	go l.SaveSnapshot(snap, compactThrough)
}

// snapWriter drains the background snapshot queue. If this goroutine
// (or the process) dies mid-file, the tmp+rename protocol leaves only
// an orphan .tmp behind and recovery falls back to the previous
// snapshot plus a longer WAL tail.
func (l *Log) snapWriter() {
	defer close(l.snapDone)
	for job := range l.snapCh {
		l.SaveSnapshot(job.snap, job.compactThrough)
		l.updateSnapPending()
	}
}

// updateSnapPending publishes queued + in-flight snapshot writes.
func (l *Log) updateSnapPending() {
	n := 0
	if l.snapCh != nil {
		n = len(l.snapCh)
	}
	if l.snapBusy.Load() {
		n++
	}
	l.snapPending.Set(int64(n))
}

// SaveSnapshot writes the snapshot and compacts sealed WAL segments
// whose records are all at or below compactThrough. Single-flight: a
// call that finds another write in progress returns false immediately.
// compactThrough is normally snap.Seq; the fleet router passes the
// lowest seq its shards have fully committed, so records it may still
// need for re-driving a lagging shard survive compaction.
func (l *Log) SaveSnapshot(snap *Snapshot, compactThrough uint64) (bool, error) {
	if !l.snapBusy.CompareAndSwap(false, true) {
		return false, nil
	}
	defer l.snapBusy.Store(false)
	t0 := time.Now()
	size, err := WriteSnapshot(l.dir, snap)
	if err != nil {
		l.snapErrors.Inc()
		return false, err
	}
	l.snapWrites.Inc()
	l.snapBytes.Set(size)
	l.snapSecs.Observe(time.Since(t0).Seconds())
	l.lastSnapSeq.Store(snap.Seq)
	if compactThrough > snap.Seq {
		compactThrough = snap.Seq
	}
	l.mu.Lock()
	removed, cerr := l.w.compact(compactThrough)
	segs := l.w.segmentCount()
	l.mu.Unlock()
	l.compactions.Add(int64(removed))
	l.segments.Set(int64(segs))
	if cerr != nil {
		return true, cerr
	}
	return true, nil
}

// Status summarizes the commit path for /statusz.
func (l *Log) Status() Status {
	s := Status{Fsync: l.opts.Fsync.String(), AsyncSnapshots: l.opts.AsyncSnapshots}
	l.gmu.Lock()
	s.WALBacklog = l.appended - l.synced
	l.gmu.Unlock()
	if l.snapCh != nil {
		s.SnapshotPending = len(l.snapCh)
	}
	if l.snapBusy.Load() {
		s.SnapshotPending++
	}
	return s
}

// ObserveReplay records startup recovery cost.
func (l *Log) ObserveReplay(cycles int, elapsed time.Duration) {
	l.replayCycles.Add(int64(cycles))
	l.replaySecs.Set(elapsed.Milliseconds())
}

// ProofServed counts one served proof bundle.
func (l *Log) ProofServed() { l.proofsServed.Inc() }

// Close drains the background goroutines, then seals the active WAL
// segment. The seal syncs, so after a clean Close every appended
// record is durable; any waiters still parked are released with that
// outcome.
func (l *Log) Close() error {
	l.gmu.Lock()
	if l.closed {
		l.gmu.Unlock()
		return nil
	}
	l.closed = true
	l.gmu.Unlock()
	if l.syncQuit != nil {
		close(l.syncQuit)
		<-l.syncerDone
	}
	if l.snapCh != nil {
		close(l.snapCh)
		<-l.snapDone
	}
	l.mu.Lock()
	err := l.w.close()
	l.mu.Unlock()
	l.gmu.Lock()
	if err == nil {
		l.synced = l.appended
	} else if l.gerr == nil {
		l.gerr = err
	}
	l.gcond.Broadcast()
	l.gmu.Unlock()
	return err
}
