// Append-only write-ahead log of cycle records, stored as a directory
// of segment files.
//
// Segment files are named wal-<firstSeq>.log and carry an 8-byte magic
// followed by framed records: [u32 payload length][u32 CRC-32C of the
// payload][payload]. A segment seals when it passes the size bound and
// the next append opens a fresh segment; reopening after a restart
// always starts a new segment, so sealed files are immutable.
//
// Recovery reads every segment in name order. A torn frame (short
// header, short payload, or CRC mismatch) in the newest segment is the
// expected signature of a crash mid-append: the tail is dropped and
// recovery succeeds with everything before it — exactly the acked
// prefix under the "always" fsync policy. The same damage in a sealed
// segment is real corruption and fails recovery loudly.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// FsyncPolicy selects when the WAL reaches the platters.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acked cycle survives a
	// kill -9. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncNone leaves flushing to the OS page cache: faster, but the
	// newest cycles can be lost on a hard crash (recovery still works,
	// it just resumes from an earlier prefix).
	FsyncNone
	// FsyncGroup batches appends under shared fsyncs: a record's ack
	// blocks only until the first fsync issued after its append
	// completes, so concurrent and consecutive records ride one disk
	// flush. Same crash guarantee as FsyncAlways for acked records —
	// nothing is acked ahead of its covering fsync — at a fraction of
	// the per-cycle flush cost once anything overlaps.
	FsyncGroup
)

// ParseFsync parses the -fsync flag values.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	case "group":
		return FsyncGroup, nil
	default:
		return FsyncAlways, fmt.Errorf("durable: unknown fsync policy %q (want always, group, or none)", s)
	}
}

// String names the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNone:
		return "none"
	case FsyncGroup:
		return "group"
	}
	return "always"
}

var walMagic = [8]byte{'N', 'E', 'R', 'W', 'A', 'L', '0', '1'}

// castagnoli is the CRC-32C table (hardware-accelerated on both serving
// arches).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// defaultSegmentBytes rotates segments at 8 MiB — small enough that
// compaction reclaims space promptly, large enough that rotation cost
// is noise.
const defaultSegmentBytes = 8 << 20

// maxRecordBytes rejects absurd frame lengths before allocating.
const maxRecordBytes = 1 << 30

// wal is the segment writer. Not safe for concurrent use; the Log
// manager serializes appends.
type wal struct {
	dir      string
	policy   FsyncPolicy
	maxBytes int64

	f        *os.File
	fileSize int64
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%020d.log", firstSeq)
}

// segmentSeq parses the first-seq component of a segment file name.
func segmentSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// segmentFiles lists the directory's segment files in seq order.
func segmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: wal dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := segmentSeq(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// readSegment parses one segment file. tolerateTail permits a torn
// final frame (dropped silently); any earlier damage is an error.
func readSegment(path string, tolerateTail bool) ([]*CycleRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("durable: wal segment: %w", err)
	}
	if len(b) < len(walMagic) || string(b[:len(walMagic)]) != string(walMagic[:]) {
		if tolerateTail && len(b) < len(walMagic) {
			// A crash between create and magic write leaves a short file.
			return nil, nil
		}
		return nil, fmt.Errorf("durable: %s: bad segment magic", filepath.Base(path))
	}
	var out []*CycleRecord
	off := len(walMagic)
	for off < len(b) {
		torn := func(what string) ([]*CycleRecord, error) {
			if tolerateTail {
				return out, nil
			}
			return nil, fmt.Errorf("durable: %s: %s at byte %d", filepath.Base(path), what, off)
		}
		if off+8 > len(b) {
			return torn("torn frame header")
		}
		n := binary.LittleEndian.Uint32(b[off:])
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n > maxRecordBytes {
			return torn("absurd frame length")
		}
		if off+8+int(n) > len(b) {
			return torn("torn frame payload")
		}
		payload := b[off+8 : off+8+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return torn("frame checksum mismatch")
		}
		rec, err := decodeCycleRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("durable: %s: %w", filepath.Base(path), err)
		}
		out = append(out, rec)
		off += 8 + int(n)
	}
	return out, nil
}

// readWAL reads every segment in the directory, tolerating a torn tail
// only in the newest one, and checks seq contiguity across the result.
func readWAL(dir string) ([]*CycleRecord, error) {
	names, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	var out []*CycleRecord
	for i, name := range names {
		recs, err := readSegment(filepath.Join(dir, name), i == len(names)-1)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Seq != out[i-1].Seq+1 {
			return nil, fmt.Errorf("durable: wal seq gap: %d follows %d", out[i].Seq, out[i-1].Seq)
		}
	}
	return out, nil
}

// openWAL prepares the writer; the first append creates its segment.
func openWAL(dir string, policy FsyncPolicy, maxBytes int64) *wal {
	if maxBytes <= 0 {
		maxBytes = defaultSegmentBytes
	}
	return &wal{dir: dir, policy: policy, maxBytes: maxBytes}
}

// startSegment opens a fresh segment whose first record will be seq.
func (w *wal) startSegment(seq uint64) error {
	if w.f != nil {
		if err := w.closeSegment(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: wal segment: %w", err)
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("durable: wal segment: %w", err)
	}
	w.f = f
	w.fileSize = int64(len(walMagic))
	return nil
}

// closeSegment seals the active segment, syncing it regardless of
// policy so sealed files are always fully on disk before compaction
// could consider them.
func (w *wal) closeSegment() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if err != nil {
		return fmt.Errorf("durable: wal seal: %w", err)
	}
	return nil
}

// append frames and writes one record, rotating first when the active
// segment is full. Returns the framed size in bytes.
func (w *wal) append(rec *CycleRecord) (int, error) {
	if w.f == nil || w.fileSize >= w.maxBytes {
		if err := w.startSegment(rec.Seq); err != nil {
			return 0, err
		}
	}
	payload := rec.encode()
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("durable: wal append: %w", err)
	}
	w.fileSize += int64(len(frame))
	if w.policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("durable: wal fsync: %w", err)
		}
	}
	return len(frame), nil
}

// sync flushes the active segment to disk. A nil active segment
// (nothing appended since rotation) is a no-op. Rotation is safe
// between an append and its covering sync because closeSegment seals
// with its own Sync — a record can only leave the active segment by
// being fsynced on the way out.
func (w *wal) sync() error { return syncFile(w.f) }

// syncFile fsyncs a captured segment file; the group-commit syncer
// calls it outside the append lock so a slow flush overlaps new
// appends. nil (no active segment) is a no-op, and ErrClosed means a
// concurrent rotation sealed the file out from under us — sealing
// fsyncs, so everything the caller is covering is already durable.
func syncFile(f *os.File) error {
	if f == nil {
		return nil
	}
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return nil
		}
		return fmt.Errorf("durable: wal fsync: %w", err)
	}
	return nil
}

// close seals the active segment.
func (w *wal) close() error { return w.closeSegment() }

// compact deletes sealed segments whose every record is at or below
// throughSeq (covered by a snapshot). A sealed segment's coverage ends
// where the next segment begins, so the check only needs the name
// order. The active segment is never deleted. Returns how many
// segments were removed.
func (w *wal) compact(throughSeq uint64) (int, error) {
	names, err := segmentFiles(w.dir)
	if err != nil {
		return 0, err
	}
	var active string
	if w.f != nil {
		active = filepath.Base(w.f.Name())
	}
	removed := 0
	for i, name := range names {
		if name == active || i+1 >= len(names) {
			break
		}
		nextFirst, ok := segmentSeq(names[i+1])
		if !ok || nextFirst == 0 || nextFirst-1 > throughSeq {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, name)); err != nil {
			return removed, fmt.Errorf("durable: wal compact: %w", err)
		}
		removed++
	}
	return removed, nil
}

// segmentCount reports how many segment files exist (observability).
func (w *wal) segmentCount() int {
	names, err := segmentFiles(w.dir)
	if err != nil {
		return 0
	}
	return len(names)
}
