// Snapshot files: a full serialization of one serving process's warm
// state, written on a cycle-count schedule so restart replays only the
// WAL tail past the latest snapshot.
//
// Format: 8-byte magic "NERSNAP1", u32 version, u32 CRC-32C of the
// payload, payload (see encodePayload for the field order). Files are
// named snap-<seq>.snap and written tmp+rename with file and directory
// fsyncs, so a crash mid-write never damages an existing snapshot —
// the loader picks the highest-seq file that validates and ignores the
// rest.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"nerglobalizer/internal/core"
)

var snapMagic = [8]byte{'N', 'E', 'R', 'S', 'N', 'A', 'P', '1'}

const snapVersion = 1

// Snapshot kinds: the three serving processes persist different state
// shapes, and recovery refuses to load a data dir written by a
// different process kind.
const (
	// KindSingle is a single-process server: engine state + provenance.
	KindSingle = iota
	// KindShard is a fleet shard: engine state + provenance + the
	// seq-gate's cached last response.
	KindShard
	// KindRouter is the fleet front router: no engine, just the stream
	// registry (sentences for surface rendering) and the cycle cursor.
	KindRouter
)

// Snapshot is one process's full durable state at a cycle boundary.
type Snapshot struct {
	Kind int
	// Seq is the last cycle folded into this snapshot; replay resumes
	// at Seq+1.
	Seq uint64
	// NextID is the tweet-ID allocator cursor (single server, router).
	NextID int
	// LastResp is the shard's gob-encoded cached commit response — the
	// seq-gate's replay answer (shard only).
	LastResp []byte
	// Warm is the engine state (single server, shard).
	Warm *core.WarmState
	// Provenance is the Merkle chain's ground truth (single, shard).
	Provenance []CycleProv
	// RouterSentences is the router's sentence registry in ingestion
	// order (router only).
	RouterSentences []CycleSentence
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("snap-%020d.snap", seq)
}

// snapshotSeq parses the seq component of a snapshot file name.
func snapshotSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func (s *Snapshot) encodePayload() []byte {
	w := &writer{buf: make([]byte, 0, 1024)}
	w.u8(byte(s.Kind))
	w.u64(s.Seq)
	w.i64(s.NextID)
	w.bytes(s.LastResp)
	putWarmState(w, s.Warm)
	putProvCycles(w, s.Provenance)
	putCycleSentences(w, s.RouterSentences)
	return w.buf
}

func decodeSnapshotPayload(b []byte) (*Snapshot, error) {
	r := &reader{b: b}
	s := &Snapshot{}
	s.Kind = int(r.u8())
	s.Seq = r.u64()
	s.NextID = r.i64()
	s.LastResp = r.rawBytes()
	s.Warm = getWarmState(r)
	s.Provenance = getProvCycles(r)
	s.RouterSentences = getCycleSentences(r)
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("durable: snapshot payload: %w", err)
	}
	return s, nil
}

// WriteSnapshot persists the snapshot into dir atomically and returns
// the file size. The file and the directory entry are both synced
// before return — once this returns, the snapshot survives a crash.
func WriteSnapshot(dir string, s *Snapshot) (int64, error) {
	payload := s.encodePayload()
	buf := make([]byte, 0, 16+len(payload))
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)

	final := filepath.Join(dir, snapshotName(s.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: snapshot: %w", err)
	}
	// Write-and-sync in bounded chunks rather than one flush of the
	// whole file: a multi-MB fsync monopolizes the device's flush
	// queue, and a WAL group-commit fsync stuck behind it stalls every
	// ack for the duration. Chunking caps that collateral latency at
	// one chunk's flush; the trailing Sync then has almost nothing
	// left to push.
	const snapChunk = 4 << 20
	for off := 0; off < len(buf) && err == nil; off += snapChunk {
		end := off + snapChunk
		if end > len(buf) {
			end = len(buf)
		}
		if _, err = f.Write(buf[off:end]); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("durable: snapshot: %w", err)
	}
	syncDir(dir)
	return int64(len(buf)), nil
}

// syncDir flushes a directory entry table; errors are ignored (some
// filesystems reject directory fsync, and the data file itself is
// already synced).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// readSnapshot parses and validates one snapshot file.
func readSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot: %w", err)
	}
	if len(b) < 16 || string(b[:8]) != string(snapMagic[:]) {
		return nil, fmt.Errorf("durable: %s: bad snapshot magic", filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != snapVersion {
		return nil, fmt.Errorf("durable: %s: snapshot version %d, want %d", filepath.Base(path), v, snapVersion)
	}
	sum := binary.LittleEndian.Uint32(b[12:])
	payload := b[16:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("durable: %s: snapshot checksum mismatch", filepath.Base(path))
	}
	return decodeSnapshotPayload(payload)
}

// loadLatestSnapshot returns the highest-seq snapshot in dir that
// validates, or nil if none exists. A corrupt newest snapshot falls
// back to the previous one — the WAL tail covers the gap.
func loadLatestSnapshot(dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := snapshotSeq(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var firstErr error
	for _, name := range names {
		s, err := readSnapshot(filepath.Join(dir, name))
		if err == nil {
			return s, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil && len(names) > 0 {
		// Every snapshot is damaged: refuse to silently cold-start over
		// a data dir that clearly held state.
		return nil, firstErr
	}
	return nil, nil
}
