// Merkle tree and chained-root machinery of the provenance layer.
//
// Each execution cycle's emitted annotations become the leaves of one
// Merkle tree; the tree roots are then chained across cycles, so the
// chain head commits to every annotation the service ever emitted. An
// inclusion proof for one annotation is its audit path inside the
// cycle's tree plus the chain links from that cycle to the head — a
// verifier holding only the head can confirm any single emitted
// annotation without the stream.
//
// The hashing follows the RFC 6962 transparency-log construction:
// domain-separated SHA-256 (0x00 for leaves, 0x01 for interior nodes,
// 0x02 for the cross-cycle chain), with an odd node at any level
// promoted unchanged. Domain separation keeps a leaf from being
// reinterpreted as an interior node (second-preimage hardening).
package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Hash is a SHA-256 digest.
type Hash [sha256.Size]byte

// String returns the lowercase hex form.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// parseHash decodes a lowercase-hex digest.
func parseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return h, fmt.Errorf("durable: bad hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

const (
	leafPrefix  = 0x00
	nodePrefix  = 0x01
	chainPrefix = 0x02
)

// hashLeaf hashes one canonical leaf encoding.
func hashLeaf(data []byte) Hash {
	d := sha256.New()
	d.Write([]byte{leafPrefix})
	d.Write(data)
	var h Hash
	d.Sum(h[:0])
	return h
}

// hashNode hashes an interior node from its children.
func hashNode(l, r Hash) Hash {
	d := sha256.New()
	d.Write([]byte{nodePrefix})
	d.Write(l[:])
	d.Write(r[:])
	var h Hash
	d.Sum(h[:0])
	return h
}

// chainHash links one cycle's tree root onto the running chain.
func chainHash(prev, root Hash) Hash {
	d := sha256.New()
	d.Write([]byte{chainPrefix})
	d.Write(prev[:])
	d.Write(root[:])
	var h Hash
	d.Sum(h[:0])
	return h
}

// merkleRoot folds leaf hashes into the tree root. The empty tree's
// root is SHA-256 of the empty string (the RFC 6962 convention); a
// single leaf's root is the leaf hash itself.
func merkleRoot(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return sha256.Sum256(nil)
	}
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				// Odd node: promoted unchanged to the next level.
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// ProofStep is one audit-path element: the sibling hash and which side
// of the running hash it sits on (Left means the sibling is the left
// input of the parent).
type ProofStep struct {
	Hash string `json:"hash"`
	Left bool   `json:"left"`
}

// auditPath returns the inclusion path of leaf idx: the sibling at
// every level, bottom up. Levels where the running node is an odd
// promoted tail contribute no step, matching merkleRoot exactly.
func auditPath(leaves []Hash, idx int) []ProofStep {
	path := []ProofStep{}
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		sib := idx ^ 1
		if sib < len(level) {
			path = append(path, ProofStep{Hash: level[sib].String(), Left: sib < idx})
		}
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
		idx /= 2
	}
	return path
}

// foldPath recomputes the tree root from a leaf hash and its audit
// path.
func foldPath(leaf Hash, path []ProofStep) (Hash, error) {
	h := leaf
	for _, step := range path {
		sib, err := parseHash(step.Hash)
		if err != nil {
			return Hash{}, err
		}
		if step.Left {
			h = hashNode(sib, h)
		} else {
			h = hashNode(h, sib)
		}
	}
	return h, nil
}
