package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

func sampleRecord(seq uint64) *CycleRecord {
	return &CycleRecord{
		Seq:  seq,
		Mode: 3,
		Sentences: []CycleSentence{
			{TweetID: int(seq * 10), SentID: 0, Tokens: []string{"obama", "visits", "paris"}},
			{TweetID: int(seq*10 + 1), SentID: 1, Tokens: []string{"just", "vibes"}},
		},
		Annotations: []SentenceAnnotation{
			{TweetID: int(seq * 10), SentID: 0, Entities: []Entity{
				{Start: 0, End: 1, Type: types.Person, Surface: "Obama"},
				{Start: 2, End: 3, Type: types.Location, Surface: "Paris"},
			}},
			{TweetID: int(seq*10 + 1), SentID: 1},
		},
	}
}

func TestCycleRecordRoundTrip(t *testing.T) {
	rec := sampleRecord(7)
	got, err := decodeCycleRecord(rec.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", rec, got)
	}
}

func TestCycleRecordDecodeNeverPanics(t *testing.T) {
	full := sampleRecord(3).encode()
	// Every strict prefix must error cleanly.
	for n := 0; n < len(full); n++ {
		if _, err := decodeCycleRecord(full[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
	// Trailing garbage must error too.
	if _, err := decodeCycleRecord(append(append([]byte{}, full...), 0xFF)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// Single-byte corruptions must never panic (errors are fine, and
	// some flips decode to different-but-valid records).
	for i := 0; i < len(full); i++ {
		mut := append([]byte{}, full...)
		mut[i] ^= 0xFF
		decodeCycleRecord(mut)
	}
}

func TestCodecCountGuard(t *testing.T) {
	// A huge count field must be rejected before allocation.
	w := &writer{}
	w.u32(1 << 30)
	r := &reader{b: w.buf}
	if out := r.strs(); out != nil || r.err == nil {
		t.Fatalf("absurd count accepted: %v, err %v", out, r.err)
	}
}

func TestMerkleProofsAllShapes(t *testing.T) {
	for n := 1; n <= 12; n++ {
		leaves := make([]Hash, n)
		for i := range leaves {
			leaves[i] = hashLeaf([]byte{byte(n), byte(i)})
		}
		root := merkleRoot(leaves)
		for i := range leaves {
			got, err := foldPath(leaves[i], auditPath(leaves, i))
			if err != nil {
				t.Fatalf("n=%d leaf %d: %v", n, i, err)
			}
			if got != root {
				t.Fatalf("n=%d leaf %d: path folds to %s, root %s", n, i, got, root)
			}
		}
		// A wrong leaf must not fold to the root.
		if n > 1 {
			got, _ := foldPath(hashLeaf([]byte("forged")), auditPath(leaves, 0))
			if got == root {
				t.Fatalf("n=%d: forged leaf folded to the root", n)
			}
		}
	}
}

func TestMerkleDomainSeparation(t *testing.T) {
	a, b := hashLeaf([]byte("x")), hashLeaf([]byte("y"))
	if hashNode(a, b) == hashNode(b, a) {
		t.Fatal("node hash ignores child order")
	}
	if merkleRoot(nil) != merkleRoot([]Hash{}) {
		t.Fatal("empty root unstable")
	}
	if chainHash(Hash{}, a) == chainHash(a, Hash{}) {
		t.Fatal("chain hash ignores order")
	}
}

func TestWALRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(dir, FsyncNone, 0)
	var want []*CycleRecord
	for seq := uint64(1); seq <= 5; seq++ {
		rec := sampleRecord(seq)
		if _, err := w.append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	got, err := readWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("read %d records, want %d (or content mismatch)", len(got), len(want))
	}

	// Chop bytes off the tail: the torn final frame drops, the rest
	// survives.
	names, _ := segmentFiles(dir)
	path := filepath.Join(dir, names[0])
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = readWAL(dir)
	if err != nil {
		t.Fatalf("torn tail should recover: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("torn tail kept %d records, want 4", len(got))
	}
}

func TestWALSealedCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment bound forces one record per segment.
	w := openWAL(dir, FsyncNone, 1)
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := w.append(sampleRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	names, _ := segmentFiles(dir)
	if len(names) != 3 {
		t.Fatalf("got %d segments, want 3", len(names))
	}
	// Flip a payload byte in the FIRST (sealed) segment: hard error.
	path := filepath.Join(dir, names[0])
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readWAL(dir); err == nil {
		t.Fatal("sealed-segment corruption must fail recovery")
	}
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(dir, FsyncNone, 1)
	for seq := uint64(1); seq <= 6; seq++ {
		if _, err := w.append(sampleRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if n := w.segmentCount(); n != 6 {
		t.Fatalf("got %d segments, want 6", n)
	}
	// Compact through seq 4: segments holding 1..4 go, except any the
	// boundary rules keep; the active segment always survives.
	removed, err := w.compact(4)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Fatalf("removed %d segments, want 4", removed)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	got, err := readWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("post-compaction records wrong: %d records", len(got))
	}
	// Over-eager compaction must never touch the live tail.
	w2 := openWAL(dir, FsyncNone, 1)
	if _, err := w2.append(sampleRecord(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.compact(99); err != nil {
		t.Fatal(err)
	}
	w2.close()
	got, err = readWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[len(got)-1].Seq != 7 {
		t.Fatal("compaction deleted the active segment")
	}
}

func sampleWarmState() *core.WarmState {
	m := nn.NewMatrix(2, 3)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.25
	}
	key := types.SentenceKey{TweetID: 1, SentID: 0}
	return &core.WarmState{
		Precision:  "f64",
		ShardIndex: 0,
		ShardCount: 2,
		Surfaces:   []string{"obama", "paris"},
		Records: []core.RecordState{{
			TweetID: 1, SentID: 0,
			Tokens: []string{"obama", "in", "paris"},
			Local:  []types.Entity{{Span: types.Span{Start: 0, End: 1}, Type: types.Person}},
			Emb:    m,
			Final: []types.Mention{{
				Key: key, Span: types.Span{Start: 0, End: 1},
				Surface: "obama", Type: types.Person, FromLocalNER: true,
			}},
		}},
		Amort: &core.AmortState{
			ScannedLen: 1, TrieLen: 2, MentionCount: 2, Mode: 3,
			Scans: []core.ScanState{{Key: key, Mentions: []types.Mention{{
				Key: key, Span: types.Span{Start: 0, End: 1},
				Surface: "obama", Type: types.Person, FromLocalNER: true,
			}}}},
			Surfaces: []core.SurfaceState{
				{Surface: "obama",
					Pool: []types.Mention{{Key: key, Span: types.Span{Start: 0, End: 1}, Surface: "obama", Type: types.Person, FromLocalNER: true}},
					Cands: []core.CandState{{
						ClusterID: 0, Members: []int{0},
						GlobalEmb: []float64{0.5, -0.5}, Type: types.Person, Conf: 0.93,
					}},
				},
				{Surface: "paris", Pool: []types.Mention{{Key: key, Span: types.Span{Start: 2, End: 3}, Surface: "paris"}}, Skip: true},
			},
			Embeds: []core.MentionEmbed{{Key: key, Span: types.Span{Start: 0, End: 1}, Vec: []float64{1, 2, 3}}},
		},
	}
}

func TestWarmStateCodecRoundTrip(t *testing.T) {
	ws := sampleWarmState()
	w := &writer{}
	putWarmState(w, ws)
	r := &reader{b: w.buf}
	got := getWarmState(r)
	if err := r.done(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(ws, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", ws, got)
	}
	// Truncations error, never panic.
	for n := 0; n < len(w.buf); n++ {
		r := &reader{b: w.buf[:n]}
		getWarmState(r)
		if r.done() == nil {
			t.Fatalf("prefix of %d bytes decoded cleanly", n)
		}
	}
}

func TestSnapshotRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	s1 := &Snapshot{Kind: KindShard, Seq: 10, NextID: 42, LastResp: []byte{1, 2, 3},
		Warm: sampleWarmState(),
		Provenance: []CycleProv{{Seq: 10, Annotations: []SentenceAnnotation{
			{TweetID: 1, SentID: 0, Entities: []Entity{{Start: 0, End: 1, Type: types.Person, Surface: "Obama"}}},
		}}},
	}
	if _, err := WriteSnapshot(dir, s1); err != nil {
		t.Fatal(err)
	}
	s2 := &Snapshot{Kind: KindShard, Seq: 20, NextID: 99, Warm: sampleWarmState()}
	if _, err := WriteSnapshot(dir, s2); err != nil {
		t.Fatal(err)
	}
	got, err := loadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2, got) {
		t.Fatal("latest snapshot mismatch")
	}
	// Corrupt the newest: the loader falls back to the previous one.
	path := filepath.Join(dir, snapshotName(20))
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xFF
	os.WriteFile(path, b, 0o644)
	got, err = loadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Seq != 10 {
		t.Fatal("loader did not fall back to the previous valid snapshot")
	}
	if !reflect.DeepEqual(s1, got) {
		t.Fatal("fallback snapshot mismatch")
	}
	// A leftover tmp file is ignored.
	os.WriteFile(filepath.Join(dir, snapshotName(30)+".tmp"), []byte("junk"), 0o644)
	if got, err = loadLatestSnapshot(dir); err != nil || got.Seq != 10 {
		t.Fatalf("tmp leftover broke loading: %v", err)
	}
}

func TestProvenanceBundleVerify(t *testing.T) {
	p := NewProvenance()
	for seq := uint64(1); seq <= 5; seq++ {
		rec := sampleRecord(seq)
		p.AppendCycle(seq, rec.Annotations)
	}
	// Tweet 30 was annotated in cycle 3; links must walk to the head.
	b, ok := p.BundleForTweet(30, -1)
	if !ok {
		t.Fatal("no bundle for annotated tweet")
	}
	if n, err := b.Verify(); err != nil || n != 1 {
		t.Fatalf("verify: n=%d err=%v", n, err)
	}
	// Multi-sentence tweet: both proofs verify.
	b31, ok := p.BundleForTweet(31, 2)
	if !ok || len(b31.Proofs) != 1 || b31.Shard != 2 {
		t.Fatalf("bundle shape wrong: %+v", b31)
	}
	if _, err := b31.Verify(); err != nil {
		t.Fatal(err)
	}
	// Unknown tweet: no bundle.
	if _, ok := p.BundleForTweet(999, -1); ok {
		t.Fatal("bundle for unknown tweet")
	}
	// Tampering with the annotation must fail verification.
	b.Proofs[0].Annotation.Entities[0].Type = types.Location
	if _, err := b.Verify(); err == nil {
		t.Fatal("tampered annotation verified")
	}
}

func TestProvenanceRestoreMatches(t *testing.T) {
	p := NewProvenance()
	for seq := uint64(1); seq <= 4; seq++ {
		p.AppendCycle(seq, sampleRecord(seq).Annotations)
	}
	q := RestoreProvenance(p.Cycles())
	pSeq, pHead, _ := p.Head()
	qSeq, qHead, _ := q.Head()
	if pSeq != qSeq || pHead != qHead {
		t.Fatalf("restored head %d/%s, want %d/%s", qSeq, qHead, pSeq, pHead)
	}
	// Codec round trip of the snapshot form.
	w := &writer{}
	putProvCycles(w, p.Cycles())
	r := &reader{b: w.buf}
	got := getProvCycles(r)
	if err := r.done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Cycles(), got) {
		t.Fatal("provenance codec round trip mismatch")
	}
}

func TestLogOpenAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{SnapshotEvery: 2, Fsync: FsyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Tail) != 0 {
		t.Fatal("cold open found state")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(sampleRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if !l.ShouldSnapshot(5) {
		t.Fatal("snapshot overdue but not scheduled")
	}
	snap := &Snapshot{Kind: KindSingle, Seq: 3, NextID: 30, Warm: sampleWarmState()}
	if ok, err := l.SaveSnapshot(snap, 3); err != nil || !ok {
		t.Fatalf("save: ok=%v err=%v", ok, err)
	}
	if l.ShouldSnapshot(4) {
		t.Fatal("snapshot schedule ignored the fresh snapshot")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(dir, Options{Fsync: FsyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Snapshot == nil || rec2.Snapshot.Seq != 3 {
		t.Fatal("reopen lost the snapshot")
	}
	if len(rec2.Tail) != 2 || rec2.Tail[0].Seq != 4 || rec2.Tail[1].Seq != 5 {
		t.Fatalf("reopen tail wrong: %d records", len(rec2.Tail))
	}
	if !bytes.Equal(rec2.Tail[0].encode(), sampleRecord(4).encode()) {
		t.Fatal("tail record content mismatch")
	}
}

func TestLogRefusesCompactedGap(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNone, MaxSegmentBytes: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.Append(sampleRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot at 2 compacts segments 1..2 away; then delete the
	// snapshot to fake a gap.
	if ok, err := l.SaveSnapshot(&Snapshot{Kind: KindSingle, Seq: 2}, 2); err != nil || !ok {
		t.Fatal(err)
	}
	l.Close()
	if err := os.Remove(filepath.Join(dir, snapshotName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Fsync: FsyncNone}, nil); err == nil {
		t.Fatal("gap between snapshot coverage and WAL tail must fail open")
	}
}

func TestParseFsync(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{{"always", FsyncAlways, true}, {"", FsyncAlways, true}, {"NONE", FsyncNone, true}, {"Group", FsyncGroup, true}, {"sometimes", FsyncAlways, false}} {
		got, err := ParseFsync(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseFsync(%q) = %v, %v", tc.in, got, err)
		}
	}
	if FsyncAlways.String() != "always" || FsyncNone.String() != "none" || FsyncGroup.String() != "group" {
		t.Fatal("policy names wrong")
	}
}

// TestGroupCommitAppendRecover exercises the fsync=group batcher:
// AppendAsync returns before any fsync, concurrent waits all resolve
// once covering flushes complete, the backlog drains to zero, and a
// reopen recovers every appended record in order.
func TestGroupCommitAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{Fsync: FsyncGroup}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Tail) != 0 {
		t.Fatal("fresh dir must recover empty")
	}
	const n = 32
	waits := make([]func() error, n)
	for i := 0; i < n; i++ {
		w, err := l.AppendAsync(sampleRecord(uint64(i + 1)))
		if err != nil {
			t.Fatalf("append %d: %v", i+1, err)
		}
		waits[i] = w
	}
	var wg sync.WaitGroup
	werrs := make([]error, n)
	for i := range waits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = waits[i]()
		}(i)
	}
	wg.Wait()
	for i, err := range werrs {
		if err != nil {
			t.Fatalf("wait %d: %v", i+1, err)
		}
	}
	if st := l.Status(); st.Fsync != "group" || st.WALBacklog != 0 {
		t.Fatalf("status after drain = %+v", st)
	}
	// A record whose wait is never called must still persist: Close
	// seals the segment with its own sync.
	if _, err := l.AppendAsync(sampleRecord(n + 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Open(dir, Options{Fsync: FsyncGroup}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Tail) != n+1 {
		t.Fatalf("recovered %d records, want %d", len(rec2.Tail), n+1)
	}
	for i, r := range rec2.Tail {
		if r.Seq != uint64(i+1) {
			t.Fatalf("tail[%d].Seq = %d", i, r.Seq)
		}
	}
}

// TestGroupCommitBlockingAppend checks the plain Append wrapper under
// fsync=group: it must not return until the record is covered, so the
// router's intent journal keeps its journal-before-fan-out guarantee.
func TestGroupCommitBlockingAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncGroup}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.Append(sampleRecord(seq)); err != nil {
			t.Fatal(err)
		}
		if st := l.Status(); st.WALBacklog != 0 {
			t.Fatalf("backlog %d after blocking append of seq %d", st.WALBacklog, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncSnapshotWriteOnClose checks the background snapshot writer:
// a submitted snapshot is written by Close's drain, and a second submit
// while the queue is full is dropped rather than blocking.
func TestAsyncSnapshotWriteOnClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNone, AsyncSnapshots: true, SnapshotEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(sampleRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if !l.ShouldSnapshot(3) {
		t.Fatal("schedule should call for a snapshot")
	}
	l.SubmitSnapshot(&Snapshot{Kind: KindSingle, Seq: 2}, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{Fsync: FsyncNone, AsyncSnapshots: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.Seq != 2 {
		t.Fatalf("recovery snapshot = %+v, want seq 2", rec.Snapshot)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 3 {
		t.Fatalf("recovery tail = %+v, want just seq 3", rec.Tail)
	}
}

// TestAsyncSnapshotWriterDeathFallsBack proves the restart contract
// when the background writer dies mid-file: an orphan .tmp and even a
// corrupt completed snapshot are skipped, and recovery falls back to
// the previous valid snapshot plus the WAL tail past it.
func TestAsyncSnapshotWriterDeathFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(sampleRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := l.SaveSnapshot(&Snapshot{Kind: KindSingle, Seq: 1}, 0); err != nil || !ok {
		t.Fatalf("snapshot: ok=%v err=%v", ok, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A writer killed mid-file leaves a partial .tmp that never renamed.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(3)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a torn rename/written-then-corrupted newest snapshot must fall
	// back rather than fail.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(2)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{Fsync: FsyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.Seq != 1 {
		t.Fatalf("recovery snapshot = %+v, want fallback to seq 1", rec.Snapshot)
	}
	if len(rec.Tail) != 2 || rec.Tail[0].Seq != 2 || rec.Tail[1].Seq != 3 {
		t.Fatalf("recovery tail = %+v, want seqs 2,3", rec.Tail)
	}
}
