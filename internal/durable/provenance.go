// Provenance index: the in-memory Merkle state a serving process keeps
// so it can answer GET /proof requests.
//
// Every committed cycle appends one tree (its annotation leaves) and
// one chain link (the running chain hash folded with the tree root).
// The index retains per-cycle leaf hashes and annotations so it can
// emit inclusion proofs for any sentence the process ever annotated;
// roots and chain hashes are retained for the links section of each
// proof. A proof bundle is self-contained: cmd/nerprove re-derives the
// leaf bytes from the embedded annotation, folds the audit path, checks
// the chain hash, and walks the links to the head.
package durable

import (
	"fmt"

	"nerglobalizer/internal/types"
)

// provCycle is one committed cycle's provenance state.
type provCycle struct {
	seq    uint64
	anns   []SentenceAnnotation
	leaves []Hash
	root   Hash
	chain  Hash // chain hash after folding this cycle's root
}

// Provenance accumulates the per-cycle Merkle chain.
type Provenance struct {
	cycles []provCycle
	// bySent locates the (cycle, leaf) of each annotated sentence.
	// Sentences are ingested exactly once, so the mapping is unique.
	bySent map[types.SentenceKey]leafRef
	// byTweet lists each tweet's sentence keys in emission order.
	byTweet map[int][]types.SentenceKey
}

type leafRef struct {
	cycle int // index into cycles
	leaf  int // index into that cycle's leaves
}

// NewProvenance returns an empty chain.
func NewProvenance() *Provenance {
	return &Provenance{
		bySent:  make(map[types.SentenceKey]leafRef),
		byTweet: make(map[int][]types.SentenceKey),
	}
}

// AppendCycle folds one committed cycle's annotations into the chain.
func (p *Provenance) AppendCycle(seq uint64, anns []SentenceAnnotation) {
	leaves := make([]Hash, len(anns))
	for i := range anns {
		leaves[i] = hashLeaf(leafBytes(anns[i]))
	}
	root := merkleRoot(leaves)
	var prev Hash
	if n := len(p.cycles); n > 0 {
		prev = p.cycles[n-1].chain
	}
	c := provCycle{seq: seq, anns: anns, leaves: leaves, root: root, chain: chainHash(prev, root)}
	ci := len(p.cycles)
	p.cycles = append(p.cycles, c)
	for i := range anns {
		key := anns[i].Key()
		if _, dup := p.bySent[key]; !dup {
			p.byTweet[key.TweetID] = append(p.byTweet[key.TweetID], key)
		}
		p.bySent[key] = leafRef{cycle: ci, leaf: i}
	}
}

// Len reports how many cycles the chain covers.
func (p *Provenance) Len() int { return len(p.cycles) }

// Head returns the latest chain hash and its cycle seq; ok is false on
// an empty chain.
func (p *Provenance) Head() (seq uint64, head Hash, ok bool) {
	if len(p.cycles) == 0 {
		return 0, Hash{}, false
	}
	c := p.cycles[len(p.cycles)-1]
	return c.seq, c.chain, true
}

// ChainLink is one cycle's contribution to the chain, as shipped inside
// a proof bundle: every link from the proven cycle (exclusive) to the
// head (inclusive).
type ChainLink struct {
	Seq  uint64 `json:"seq"`
	Root string `json:"root"`
}

// InclusionProof proves one sentence's annotations are committed to by
// the chain head.
type InclusionProof struct {
	Seq        uint64             `json:"seq"`
	LeafIndex  int                `json:"leaf_index"`
	Annotation SentenceAnnotation `json:"annotation"`
	Path       []ProofStep        `json:"path"`
	Root       string             `json:"root"`
	PrevChain  string             `json:"prev_chain"`
	Chain      string             `json:"chain"`
}

// ProofBundle is the GET /proof response for one serving process: the
// chain head it vouches for, one inclusion proof per annotated sentence
// of the requested tweet, and the chain links tying each proven cycle
// to the head. Shard is -1 for a single-process server.
type ProofBundle struct {
	Shard   int              `json:"shard"`
	HeadSeq uint64           `json:"head_seq"`
	Head    string           `json:"head"`
	Links   []ChainLink      `json:"links"`
	Proofs  []InclusionProof `json:"proofs"`
}

// BundleForTweet builds the proof bundle for one tweet. ok is false if
// this process annotated no sentence of the tweet.
func (p *Provenance) BundleForTweet(tweetID, shard int) (*ProofBundle, bool) {
	keys := p.byTweet[tweetID]
	if len(keys) == 0 {
		return nil, false
	}
	headSeq, head, _ := p.Head()
	b := &ProofBundle{Shard: shard, HeadSeq: headSeq, Head: head.String()}
	// Links cover from the earliest proven cycle (exclusive) to the
	// head; shipping the full suffix once keeps each proof small.
	earliest := len(p.cycles)
	for _, key := range keys {
		ref := p.bySent[key]
		if ref.cycle < earliest {
			earliest = ref.cycle
		}
		c := &p.cycles[ref.cycle]
		var prev Hash
		if ref.cycle > 0 {
			prev = p.cycles[ref.cycle-1].chain
		}
		b.Proofs = append(b.Proofs, InclusionProof{
			Seq:        c.seq,
			LeafIndex:  ref.leaf,
			Annotation: c.anns[ref.leaf],
			Path:       auditPath(c.leaves, ref.leaf),
			Root:       c.root.String(),
			PrevChain:  prev.String(),
			Chain:      c.chain.String(),
		})
	}
	for ci := earliest + 1; ci < len(p.cycles); ci++ {
		b.Links = append(b.Links, ChainLink{Seq: p.cycles[ci].seq, Root: p.cycles[ci].root.String()})
	}
	return b, true
}

// CycleProv is a cycle's provenance state as stored in snapshots: seq
// plus annotations. Leaf hashes, roots, and chain hashes are recomputed
// on restore — the annotations are the ground truth.
type CycleProv struct {
	Seq         uint64
	Annotations []SentenceAnnotation
}

// Cycles exports the chain for snapshotting.
func (p *Provenance) Cycles() []CycleProv {
	out := make([]CycleProv, len(p.cycles))
	for i := range p.cycles {
		out[i] = CycleProv{Seq: p.cycles[i].seq, Annotations: p.cycles[i].anns}
	}
	return out
}

// RestoreProvenance rebuilds the chain from snapshot state, recomputing
// every hash.
func RestoreProvenance(cycles []CycleProv) *Provenance {
	p := NewProvenance()
	for i := range cycles {
		p.AppendCycle(cycles[i].Seq, cycles[i].Annotations)
	}
	return p
}

func putProvCycles(w *writer, cycles []CycleProv) {
	w.u32(len(cycles))
	for i := range cycles {
		w.u64(cycles[i].Seq)
		putAnnotations(w, cycles[i].Annotations)
	}
}

func getProvCycles(r *reader) []CycleProv {
	n := r.count(12)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]CycleProv, n)
	for i := range out {
		out[i].Seq = r.u64()
		out[i].Annotations = getAnnotations(r)
	}
	return out
}

// Verify checks one proof bundle end to end: each proof's leaf bytes
// fold through the audit path to the claimed root, the root folds onto
// the claimed previous chain hash, and the chain links walk contiguous
// cycles from the proven seq to the bundle head. Returns the number of
// verified proofs.
func (b *ProofBundle) Verify() (int, error) {
	if len(b.Proofs) == 0 {
		return 0, fmt.Errorf("durable: bundle has no proofs")
	}
	head, err := parseHash(b.Head)
	if err != nil {
		return 0, err
	}
	for i := range b.Proofs {
		pr := &b.Proofs[i]
		root, err := foldPath(hashLeaf(leafBytes(pr.Annotation)), pr.Path)
		if err != nil {
			return 0, fmt.Errorf("durable: proof %d: %w", i, err)
		}
		claimedRoot, err := parseHash(pr.Root)
		if err != nil {
			return 0, fmt.Errorf("durable: proof %d: %w", i, err)
		}
		if root != claimedRoot {
			return 0, fmt.Errorf("durable: proof %d: audit path folds to %s, root claims %s", i, root, claimedRoot)
		}
		prev, err := parseHash(pr.PrevChain)
		if err != nil {
			return 0, fmt.Errorf("durable: proof %d: %w", i, err)
		}
		chain, err := parseHash(pr.Chain)
		if err != nil {
			return 0, fmt.Errorf("durable: proof %d: %w", i, err)
		}
		if chainHash(prev, root) != chain {
			return 0, fmt.Errorf("durable: proof %d: chain hash mismatch at seq %d", i, pr.Seq)
		}
		// Walk the links from this proof's cycle to the head.
		h, seq := chain, pr.Seq
		for _, link := range b.Links {
			if link.Seq <= seq {
				continue
			}
			if link.Seq != seq+1 {
				return 0, fmt.Errorf("durable: proof %d: link gap: seq %d follows %d", i, link.Seq, seq)
			}
			lr, err := parseHash(link.Root)
			if err != nil {
				return 0, fmt.Errorf("durable: proof %d: %w", i, err)
			}
			h = chainHash(h, lr)
			seq = link.Seq
		}
		if seq != b.HeadSeq {
			return 0, fmt.Errorf("durable: proof %d: links end at seq %d, head claims %d", i, seq, b.HeadSeq)
		}
		if h != head {
			return 0, fmt.Errorf("durable: proof %d: chain walks to %s, head claims %s", i, h, b.Head)
		}
	}
	return len(b.Proofs), nil
}
