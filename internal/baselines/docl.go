package baselines

import (
	"strings"

	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/types"
)

// DocL is the DocL-NER baseline (Gui et al., IJCAI 2020): a base
// tagger produces first-pass labels, then a label-refinement pass
// enforces document-level label consistency — each token's final label
// mixes its local prediction with the distribution of labels the same
// token string received across the whole document.
type DocL struct {
	tagger *localner.Tagger
	// Alpha is the weight of the local prediction in the refinement
	// mix; (1−Alpha) weights the document-level label distribution.
	Alpha float64
}

// NewDocL builds the baseline over a fine-tuned tagger.
func NewDocL(tagger *localner.Tagger) *DocL {
	return &DocL{tagger: tagger, Alpha: 0.55}
}

// Name implements System.
func (d *DocL) Name() string { return "DocL-NER" }

// Train is a no-op: DocL refines an already fine-tuned base tagger;
// the refinement itself has no trainable parameters in this
// reproduction.
func (d *DocL) Train(train []*types.Sentence) {}

// Predict runs the two-pass refinement over the stream-as-document.
func (d *DocL) Predict(sents []*types.Sentence) map[types.SentenceKey][]types.Entity {
	// Pass 1: base predictions and document-level label counts per
	// token string.
	type firstPass struct {
		tokens []string
		labels []types.BIOLabel
	}
	passes := make([]firstPass, len(sents))
	counts := make(map[string]*[types.NumBIOLabels]int)
	for i, s := range sents {
		res := d.tagger.Run(s.Tokens)
		passes[i] = firstPass{tokens: res.Tokens, labels: res.Labels}
		for t, tok := range res.Tokens {
			k := strings.ToLower(tok)
			c, ok := counts[k]
			if !ok {
				c = &[types.NumBIOLabels]int{}
				counts[k] = c
			}
			c[res.Labels[t]]++
		}
	}
	// Pass 2: refine each token label towards document consistency.
	out := make(map[types.SentenceKey][]types.Entity, len(sents))
	for i, s := range sents {
		p := passes[i]
		refined := make([]types.BIOLabel, len(p.labels))
		for t, tok := range p.tokens {
			refined[t] = d.refine(p.labels[t], counts[strings.ToLower(tok)])
		}
		out[s.Key()] = labelsToEntities(refined)
	}
	return out
}

// refine mixes the local one-hot prediction with the document label
// distribution and returns the argmax.
func (d *DocL) refine(local types.BIOLabel, counts *[types.NumBIOLabels]int) types.BIOLabel {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return local
	}
	best, bestScore := local, -1.0
	for l := 0; l < types.NumBIOLabels; l++ {
		score := (1 - d.Alpha) * float64(counts[l]) / float64(total)
		if types.BIOLabel(l) == local {
			score += d.Alpha
		}
		if score > bestScore {
			best, bestScore = types.BIOLabel(l), score
		}
	}
	return best
}
