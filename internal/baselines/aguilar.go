package baselines

import (
	"nerglobalizer/internal/crf"
	"nerglobalizer/internal/types"
)

// Aguilar is the Aguilar et al. (WNUT17 winner) Local NER baseline:
// a linear-chain CRF over the microblog feature templates.
type Aguilar struct {
	model *crf.CRF
	cfg   crf.TrainConfig
}

// NewAguilar constructs the baseline with default CRF training
// settings.
func NewAguilar() *Aguilar {
	return &Aguilar{
		model: crf.New(types.NumBIOLabels, 1<<17, crf.MicroblogFeatures),
		cfg:   crf.DefaultTrainConfig(),
	}
}

// Name implements System.
func (a *Aguilar) Name() string { return "Aguilar et al." }

// Train fits the CRF on the annotated sentences.
func (a *Aguilar) Train(train []*types.Sentence) {
	var sents [][]string
	var labels [][]int
	for _, s := range train {
		if len(s.Tokens) == 0 {
			continue
		}
		sents = append(sents, s.Tokens)
		labels = append(labels, goldTargets(s, len(s.Tokens)))
	}
	a.model.Train(sents, labels, a.cfg)
}

// Predict implements System via Viterbi decoding.
func (a *Aguilar) Predict(sents []*types.Sentence) map[types.SentenceKey][]types.Entity {
	out := make(map[types.SentenceKey][]types.Entity, len(sents))
	for _, s := range sents {
		path := a.model.Decode(s.Tokens)
		labels := make([]types.BIOLabel, len(path))
		for i, y := range path {
			labels[i] = types.BIOLabel(y)
		}
		out[s.Key()] = labelsToEntities(labels)
	}
	return out
}
