package baselines

import (
	"sync"
	"testing"

	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/metrics"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

func testEncoderConfig() transformer.Config {
	return transformer.Config{
		Dim: 16, Heads: 2, Layers: 1, FFDim: 32, MaxLen: 24,
		VocabBuckets: 512, CharBuckets: 128, Dropout: 0, Seed: 3,
	}
}

func trainSet() *corpus.Dataset {
	return corpus.Generate(corpus.StreamConfig{
		Name: "train", NumTweets: 400, NumTopics: 3,
		PerTopicEntities: [4]int{15, 12, 10, 10},
		ZipfExponent:     1.1, TypoRate: 0.02, LowercaseRate: 0.35,
		NonEntityRate: 0.3, AmbiguousRate: 0.15, UninformativeRate: 0.15,
		Ambiguity: true, Streaming: false, Seed: 51,
	})
}

func testSet() *corpus.Dataset {
	return corpus.Generate(corpus.StreamConfig{
		Name: "test", NumTweets: 200, NumTopics: 1,
		PerTopicEntities: [4]int{12, 10, 8, 8},
		ZipfExponent:     1.1, TypoRate: 0.02, LowercaseRate: 0.35,
		NonEntityRate: 0.3, AmbiguousRate: 0.15, UninformativeRate: 0.15,
		Ambiguity: true, Streaming: true, Seed: 52,
	})
}

var (
	taggerOnce sync.Once
	baseTagger *localner.Tagger
)

// sharedTagger trains one Local NER tagger for the global baselines.
func sharedTagger(t *testing.T) *localner.Tagger {
	t.Helper()
	taggerOnce.Do(func() {
		enc := transformer.NewEncoder(testEncoderConfig())
		mlm := transformer.NewMLMTrainer(enc, 0.003)
		tweets := corpus.PretrainTweets(300, 61)
		for i := 0; i < 2; i++ {
			mlm.TrainEpoch(tweets)
		}
		baseTagger = localner.NewTagger(enc, 0.003)
		baseTagger.Train(trainSet().Sentences, 8)
	})
	return baseTagger
}

// checkSystem trains (if needed) and runs a system end to end,
// asserting it produces a sane, above-floor output.
func checkSystem(t *testing.T, sys System, minF1 float64) float64 {
	t.Helper()
	test := testSet()
	pred := sys.Predict(test.Sentences)
	if len(pred) != len(test.Sentences) {
		t.Fatalf("%s predicted %d sentences, want %d", sys.Name(), len(pred), len(test.Sentences))
	}
	for _, s := range test.Sentences {
		for _, e := range pred[s.Key()] {
			if e.Start < 0 || e.End > len(s.Tokens) || e.Start >= e.End || e.Type == types.None {
				t.Fatalf("%s produced invalid entity %+v", sys.Name(), e)
			}
		}
	}
	f1 := metrics.Evaluate(test.GoldByKey(), pred).MacroF1()
	t.Logf("%s macro-F1 = %.3f", sys.Name(), f1)
	if f1 < minF1 {
		t.Fatalf("%s macro-F1 %.3f below floor %.3f", sys.Name(), f1, minF1)
	}
	return f1
}

func TestAguilarEndToEnd(t *testing.T) {
	a := NewAguilar()
	a.Train(trainSet().Sentences)
	checkSystem(t, a, 0.02)
}

func TestBERTNEREndToEnd(t *testing.T) {
	b := NewBERTNER(BERTNERConfig{
		Encoder: testEncoderConfig(), PretrainN: 300, PretrainEpochs: 2,
		PretrainLR: 0.003, FineTuneEpochs: 8, FineTuneLR: 0.003, Seed: 71,
	})
	b.Train(trainSet().Sentences)
	checkSystem(t, b, 0.02)
}

func TestAkbikEndToEnd(t *testing.T) {
	a := NewAkbik(sharedTagger(t), 6, 0.005, 81)
	a.Train(trainSet().Sentences)
	checkSystem(t, a, 0.02)
}

func TestHIREEndToEnd(t *testing.T) {
	h := NewHIRE(sharedTagger(t), 6, 0.005, 82)
	h.Train(trainSet().Sentences)
	checkSystem(t, h, 0.02)
}

func TestDocLEndToEnd(t *testing.T) {
	d := NewDocL(sharedTagger(t))
	d.Train(nil)
	checkSystem(t, d, 0.02)
}

func TestTokenMemoryMeanAndAttention(t *testing.T) {
	mem := newTokenMemory(2, 4)
	mem.add("Us", []float64{1, 0})
	mem.add("us", []float64{0, 1})
	mu := mem.pooledMean("US")
	if mu[0] != 0.5 || mu[1] != 0.5 {
		t.Fatalf("pooled mean = %v", mu)
	}
	zero := mem.pooledMean("unseen")
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("unseen token should pool to zeros")
	}
	att := mem.attended("us", []float64{1, 0}, 0.1)
	if att[0] <= att[1] {
		t.Fatalf("attention should prefer the similar entry: %v", att)
	}
	if got := mem.attended("unseen", []float64{1, 0}, 0.1); got[0] != 0 {
		t.Fatal("unseen token attention should be zeros")
	}
}

func TestTokenMemoryCap(t *testing.T) {
	mem := newTokenMemory(1, 2)
	for i := 0; i < 5; i++ {
		mem.add("x", []float64{float64(i)})
	}
	if len(mem.raw["x"]) != 2 {
		t.Fatalf("raw cap violated: %d", len(mem.raw["x"]))
	}
	if mem.count["x"] != 5 {
		t.Fatalf("count = %d", mem.count["x"])
	}
}

func TestDocLRefineConsistency(t *testing.T) {
	d := NewDocL(nil)
	counts := &[types.NumBIOLabels]int{}
	counts[types.LabelBPer] = 9
	counts[types.LabelO] = 1
	// Local O prediction with overwhelming document evidence for B-PER:
	// with alpha 0.55 the local vote (0.55) still beats 0.45·0.9 so the
	// local label survives...
	if got := d.refine(types.LabelO, counts); got != types.LabelO {
		t.Fatalf("refine flipped too eagerly: %v", got)
	}
	// ...but with a weaker alpha the document wins.
	d.Alpha = 0.3
	if got := d.refine(types.LabelO, counts); got != types.LabelBPer {
		t.Fatalf("refine failed to enforce consistency: %v", got)
	}
	// No document evidence: keep local.
	if got := d.refine(types.LabelBLoc, &[types.NumBIOLabels]int{}); got != types.LabelBLoc {
		t.Fatalf("empty counts must keep local label: %v", got)
	}
}
