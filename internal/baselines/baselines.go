// Package baselines implements the comparison systems of the paper's
// evaluation (Tables III and V):
//
// Local NER baselines — systems that process each sentence in
// isolation:
//   - Aguilar et al.: the WNUT17-winning feature-rich CRF pipeline
//     (here a linear-chain CRF over orthographic/lexical/char-n-gram
//     features; see internal/crf).
//   - BERT-NER: the seminal BERT fine-tuned for NER — the same
//     Transformer stack as the BERTweet stand-in but pre-trained on
//     well-edited formal text, giving it the domain mismatch the paper
//     observes on tweets.
//
// Global NER baselines — systems that add non-local context at the
// token level:
//   - Akbik et al.: pooled contextualized embeddings (a per-token
//     memory, mean-pooled and concatenated to the local embedding).
//   - HIRE-NER: hierarchical document-level memory fused by
//     similarity-weighted attention.
//   - DocL-NER: document-level label-consistency refinement over a
//     base tagger's outputs.
package baselines

import (
	"nerglobalizer/internal/types"
)

// System is a complete NER system: trained once, then asked to label a
// stream of sentences.
type System interface {
	// Name identifies the system in experiment tables.
	Name() string
	// Train fits the system on annotated sentences.
	Train(train []*types.Sentence)
	// Predict labels every sentence and returns entities keyed by
	// sentence.
	Predict(sents []*types.Sentence) map[types.SentenceKey][]types.Entity
}

// labelsToEntities decodes a BIO tag sequence, truncated to the token
// count, into entity spans.
func labelsToEntities(labels []types.BIOLabel) []types.Entity {
	return types.DecodeBIO(labels)
}

// goldTargets encodes a sentence's gold annotations as int targets for
// token-level training, given the (possibly truncated) token count.
func goldTargets(s *types.Sentence, n int) []int {
	labels := types.EncodeBIO(n, s.Gold)
	out := make([]int, n)
	for i, l := range labels {
		out[i] = int(l)
	}
	return out
}
