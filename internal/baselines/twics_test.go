package baselines

import (
	"testing"

	"nerglobalizer/internal/metrics"
	"nerglobalizer/internal/types"
)

func sent(id int, tokens ...string) *types.Sentence {
	return &types.Sentence{TweetID: id, Tokens: tokens}
}

func TestCandidateRuns(t *testing.T) {
	spans := candidateRuns([]string{"visiting", "New", "York", "City", "today"})
	if len(spans) != 1 || spans[0].Start != 1 || spans[0].End != 4 {
		t.Fatalf("runs = %v", spans)
	}
	spans = candidateRuns([]string{"NHS", "and", "Beshear", "#Covid", "@User"})
	if len(spans) != 2 {
		t.Fatalf("runs = %v", spans)
	}
	if candidateRuns([]string{"all", "lower", "case"}) != nil {
		t.Fatal("no capitalized tokens should yield no runs")
	}
}

func TestTwiCSSupportFiltersNoise(t *testing.T) {
	// "Beshear" appears capitalized thrice; "Nice" appears capitalized
	// once but lower-cased many times (a common word with stray
	// capitalization) and must be filtered by the ratio test.
	sents := []*types.Sentence{
		sent(1, "Beshear", "speaks", "today"),
		sent(2, "thank", "you", "Beshear"),
		sent(3, "Beshear", "again"),
		sent(4, "Nice", "weather", "today"),
		sent(5, "such", "nice", "weather"),
		sent(6, "a", "nice", "day"),
		sent(7, "so", "nice", "outside"),
	}
	tw := NewTwiCS()
	tw.Train(nil)
	pred := tw.Predict(sents)
	found := map[string]int{}
	for _, s := range sents {
		for _, e := range pred[s.Key()] {
			found[s.SurfaceAt(e.Span)]++
		}
	}
	if found["beshear"] != 3 {
		t.Fatalf("beshear mentions = %d, want 3", found["beshear"])
	}
	if found["nice"] != 0 {
		t.Fatalf("noise surface 'nice' should be filtered, got %d", found["nice"])
	}
}

func TestTwiCSMinSupport(t *testing.T) {
	sents := []*types.Sentence{
		sent(1, "Oncely", "mentioned"),
		sent(2, "unrelated", "text"),
	}
	pred := NewTwiCS().Predict(sents)
	for _, es := range pred {
		if len(es) != 0 {
			t.Fatalf("singleton candidate should lack support: %v", es)
		}
	}
}

func TestTwiCSEndToEndEMD(t *testing.T) {
	test := testSet()
	pred := NewTwiCS().Predict(test.Sentences)
	c := metrics.EvaluateEMD(test.GoldByKey(), pred)
	prf := c.PRF()
	t.Logf("TwiCS EMD: P=%.3f R=%.3f F=%.3f", prf.Precision, prf.Recall, prf.F1)
	if prf.F1 <= 0.05 {
		t.Fatalf("TwiCS EMD F1 %.3f unusably low", prf.F1)
	}
}
