package baselines

import (
	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// HIRE is the HIRE-NER document-level baseline (Luo et al., AAAI
// 2020): a document-scope memory stores contextual embeddings per
// unique token; at tagging time each token's local embedding queries
// the memory with similarity-weighted attention and the fused
// representation feeds the classification head. The stream is treated
// as one composite document, as the paper's evaluation does.
type HIRE struct {
	tagger *localner.Tagger
	head   *nn.Dense
	opt    *nn.Adam
	rng    *nn.RNG
	epochs int
	// Temp is the attention temperature over memory entries.
	Temp float64
	// MemCap bounds stored embeddings per token string.
	MemCap int
}

// NewHIRE builds the baseline over a fine-tuned tagger.
func NewHIRE(tagger *localner.Tagger, epochs int, lr float64, seed int64) *HIRE {
	rng := nn.NewRNG(seed)
	head := nn.NewDense("hire.head", 2*tagger.Dim(), types.NumBIOLabels, rng)
	opt := nn.NewAdam(lr)
	opt.Register(head.Params()...)
	return &HIRE{tagger: tagger, head: head, opt: opt, rng: rng, epochs: epochs, Temp: 0.2, MemCap: 24}
}

// Name implements System.
func (h *HIRE) Name() string { return "HIRE-NER" }

// Train fits the head on memory-fused features computed over the
// training document.
func (h *HIRE) Train(train []*types.Sentence) {
	mem := newTokenMemory(h.tagger.Dim(), h.MemCap)
	embs := make([]*nn.Matrix, len(train))
	for i, s := range train {
		emb := h.tagger.Embed(s.Tokens)
		embs[i] = emb
		for t := 0; t < emb.Rows; t++ {
			mem.add(s.Tokens[t], emb.Row(t))
		}
	}
	for epoch := 0; epoch < h.epochs; epoch++ {
		perm := h.rng.Perm(len(train))
		for _, i := range perm {
			s := train[i]
			emb := embs[i]
			if emb.Rows == 0 {
				continue
			}
			x := h.features(s.Tokens, emb, mem)
			logits := h.head.Forward(x, true)
			_, dl := nn.SoftmaxCrossEntropy(logits, goldTargets(s, emb.Rows))
			h.head.Backward(dl)
			h.opt.Step()
		}
	}
}

func (h *HIRE) features(tokens []string, emb *nn.Matrix, mem *tokenMemory) *nn.Matrix {
	d := h.tagger.Dim()
	x := nn.NewMatrix(emb.Rows, 2*d)
	for t := 0; t < emb.Rows; t++ {
		local := emb.Row(t)
		copy(x.Row(t)[:d], local)
		copy(x.Row(t)[d:], mem.attended(tokens[t], local, h.Temp))
	}
	return x
}

// Predict builds the document memory over the whole stream first (the
// document is available in full to a document-level model), then tags
// every sentence with fused features.
func (h *HIRE) Predict(sents []*types.Sentence) map[types.SentenceKey][]types.Entity {
	mem := newTokenMemory(h.tagger.Dim(), h.MemCap)
	embs := make([]*nn.Matrix, len(sents))
	for i, s := range sents {
		emb := h.tagger.Embed(s.Tokens)
		embs[i] = emb
		for t := 0; t < emb.Rows; t++ {
			mem.add(s.Tokens[t], emb.Row(t))
		}
	}
	out := make(map[types.SentenceKey][]types.Entity, len(sents))
	for i, s := range sents {
		emb := embs[i]
		if emb.Rows == 0 {
			out[s.Key()] = nil
			continue
		}
		x := h.features(s.Tokens, emb, mem)
		logits := h.head.Forward(x, false)
		labels := make([]types.BIOLabel, emb.Rows)
		for t := 0; t < emb.Rows; t++ {
			labels[t] = types.BIOLabel(nn.ArgMax(logits.Row(t)))
		}
		out[s.Key()] = labelsToEntities(labels)
	}
	return out
}
