package baselines

import (
	"strings"

	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// tokenMemory is a per-token-string memory of contextual embeddings,
// the core device of the Akbik et al. and HIRE-NER baselines. It keeps
// a running mean and up to cap raw embeddings per token.
type tokenMemory struct {
	dim   int
	cap   int
	mean  map[string][]float64
	count map[string]int
	raw   map[string][][]float64
}

func newTokenMemory(dim, cap_ int) *tokenMemory {
	return &tokenMemory{
		dim:   dim,
		cap:   cap_,
		mean:  make(map[string][]float64),
		count: make(map[string]int),
		raw:   make(map[string][][]float64),
	}
}

func (m *tokenMemory) add(tok string, emb []float64) {
	k := strings.ToLower(tok)
	mu, ok := m.mean[k]
	if !ok {
		mu = make([]float64, m.dim)
		m.mean[k] = mu
	}
	m.count[k]++
	inv := 1 / float64(m.count[k])
	for i, v := range emb {
		mu[i] += (v - mu[i]) * inv
	}
	if len(m.raw[k]) < m.cap {
		m.raw[k] = append(m.raw[k], append([]float64(nil), emb...))
	}
}

// pooledMean returns the running mean embedding of the token (zeros if
// unseen).
func (m *tokenMemory) pooledMean(tok string) []float64 {
	if mu, ok := m.mean[strings.ToLower(tok)]; ok {
		return mu
	}
	return make([]float64, m.dim)
}

// attended returns a similarity-weighted mixture of the stored raw
// embeddings (HIRE-style key-value attention with the local embedding
// as query).
func (m *tokenMemory) attended(tok string, query []float64, temp float64) []float64 {
	raws := m.raw[strings.ToLower(tok)]
	if len(raws) == 0 {
		return make([]float64, m.dim)
	}
	scores := make([]float64, len(raws))
	for i, r := range raws {
		scores[i] = nn.CosineSimilarity(query, r) / temp
	}
	w := nn.Softmax(scores)
	out := make([]float64, m.dim)
	for i, r := range raws {
		nn.AddScaled(out, r, w[i])
	}
	return out
}

// Akbik is the pooled contextualized embeddings baseline (Akbik et
// al., NAACL 2019): every token's local embedding is concatenated with
// the mean of all contextual embeddings previously seen for the same
// token string, and a token-classification head labels the pair. The
// memory accumulates over the evaluation stream, as in the original
// "evolving" pooling.
type Akbik struct {
	tagger *localner.Tagger
	head   *nn.Dense
	opt    *nn.Adam
	rng    *nn.RNG
	epochs int
}

// NewAkbik builds the baseline over an already fine-tuned Local NER
// tagger (it reuses the tagger's encoder as its embedding source, as
// the original reuses its pre-trained flair embeddings).
func NewAkbik(tagger *localner.Tagger, epochs int, lr float64, seed int64) *Akbik {
	rng := nn.NewRNG(seed)
	head := nn.NewDense("akbik.head", 2*tagger.Dim(), types.NumBIOLabels, rng)
	opt := nn.NewAdam(lr)
	opt.Register(head.Params()...)
	return &Akbik{tagger: tagger, head: head, opt: opt, rng: rng, epochs: epochs}
}

// Name implements System.
func (a *Akbik) Name() string { return "Akbik et al." }

// Train fits the classification head on concatenated local+pooled
// features, with the memory built from the training set itself.
func (a *Akbik) Train(train []*types.Sentence) {
	mem := newTokenMemory(a.tagger.Dim(), 1)
	embs := make([]*nn.Matrix, len(train))
	for i, s := range train {
		emb := a.tagger.Embed(s.Tokens)
		embs[i] = emb
		for t := 0; t < emb.Rows; t++ {
			mem.add(s.Tokens[t], emb.Row(t))
		}
	}
	for epoch := 0; epoch < a.epochs; epoch++ {
		perm := a.rng.Perm(len(train))
		for _, i := range perm {
			s := train[i]
			emb := embs[i]
			if emb.Rows == 0 {
				continue
			}
			x := a.features(s.Tokens, emb, mem)
			logits := a.head.Forward(x, true)
			_, dl := nn.SoftmaxCrossEntropy(logits, goldTargets(s, emb.Rows))
			a.head.Backward(dl)
			a.opt.Step()
		}
	}
}

// features builds the [local ‖ pooled] token feature matrix.
func (a *Akbik) features(tokens []string, emb *nn.Matrix, mem *tokenMemory) *nn.Matrix {
	d := a.tagger.Dim()
	x := nn.NewMatrix(emb.Rows, 2*d)
	for t := 0; t < emb.Rows; t++ {
		copy(x.Row(t)[:d], emb.Row(t))
		copy(x.Row(t)[d:], mem.pooledMean(tokens[t]))
	}
	return x
}

// Predict labels the stream, updating the pooled memory as it goes.
func (a *Akbik) Predict(sents []*types.Sentence) map[types.SentenceKey][]types.Entity {
	mem := newTokenMemory(a.tagger.Dim(), 1)
	out := make(map[types.SentenceKey][]types.Entity, len(sents))
	for _, s := range sents {
		emb := a.tagger.Embed(s.Tokens)
		for t := 0; t < emb.Rows; t++ {
			mem.add(s.Tokens[t], emb.Row(t))
		}
		if emb.Rows == 0 {
			out[s.Key()] = nil
			continue
		}
		x := a.features(s.Tokens, emb, mem)
		logits := a.head.Forward(x, false)
		labels := make([]types.BIOLabel, emb.Rows)
		for t := 0; t < emb.Rows; t++ {
			labels[t] = types.BIOLabel(nn.ArgMax(logits.Row(t)))
		}
		out[s.Key()] = labelsToEntities(labels)
	}
	return out
}
