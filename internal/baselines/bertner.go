package baselines

import (
	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

// BERTNER is the Devlin et al. BERT baseline: the same Transformer
// architecture as the BERTweet stand-in, but pre-trained on a
// well-edited formal-text corpus before NER fine-tuning. The domain
// mismatch (clean casing, no hashtags, no typos at pre-training time)
// is what makes it weaker than a tweet-pre-trained encoder on
// microblog streams.
type BERTNER struct {
	tagger         *localner.Tagger
	pretrainN      int
	pretrainEpochs int
	pretrainLR     float64
	fineTuneEpochs int
	seed           int64
}

// BERTNERConfig configures the baseline.
type BERTNERConfig struct {
	Encoder        transformer.Config
	PretrainN      int
	PretrainEpochs int
	PretrainLR     float64
	FineTuneEpochs int
	FineTuneLR     float64
	// InferBatchTokens caps the tokens packed per batched inference
	// call in Predict (0 runs the per-sentence path). Predictions are
	// byte-identical at every setting.
	InferBatchTokens int
	Seed             int64
}

// NewBERTNER builds the baseline (encoder weights fresh; call Train).
func NewBERTNER(cfg BERTNERConfig) *BERTNER {
	enc := transformer.NewEncoder(cfg.Encoder)
	t := localner.NewTagger(enc, cfg.FineTuneLR)
	t.BatchTokens = cfg.InferBatchTokens
	return &BERTNER{
		tagger:         t,
		pretrainN:      cfg.PretrainN,
		pretrainEpochs: cfg.PretrainEpochs,
		pretrainLR:     cfg.PretrainLR,
		fineTuneEpochs: cfg.FineTuneEpochs,
		seed:           cfg.Seed,
	}
}

// Name implements System.
func (b *BERTNER) Name() string { return "BERT-NER" }

// Train pre-trains on formal text, then fine-tunes on the annotated
// sentences.
func (b *BERTNER) Train(train []*types.Sentence) {
	formal := corpus.PretrainFormal(b.pretrainN, b.seed)
	if enc, ok := b.tagger.Encoder().(*transformer.Encoder); ok {
		mlm := transformer.NewMLMTrainer(enc, b.pretrainLR)
		for i := 0; i < b.pretrainEpochs; i++ {
			mlm.TrainEpoch(formal)
		}
	}
	b.tagger.Train(train, b.fineTuneEpochs)
}

// Predict implements System. The tagger forwards run through its
// batched path over the process-wide pool — packed spans of sentences
// per worker when InferBatchTokens is set, one sentence per worker
// otherwise (the trained tagger runs its cache-free inference path);
// the map assembles serially afterwards, so the prediction set is
// identical at any worker count and batch size.
func (b *BERTNER) Predict(sents []*types.Sentence) map[types.SentenceKey][]types.Entity {
	toks := make([][]string, len(sents))
	for i, s := range sents {
		toks[i] = s.Tokens
	}
	results := b.tagger.RunBatch(toks, parallel.Default())
	out := make(map[types.SentenceKey][]types.Entity, len(sents))
	for i, s := range sents {
		out[s.Key()] = results[i].Entities
	}
	return out
}
