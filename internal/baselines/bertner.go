package baselines

import (
	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

// BERTNER is the Devlin et al. BERT baseline: the same Transformer
// architecture as the BERTweet stand-in, but pre-trained on a
// well-edited formal-text corpus before NER fine-tuning. The domain
// mismatch (clean casing, no hashtags, no typos at pre-training time)
// is what makes it weaker than a tweet-pre-trained encoder on
// microblog streams.
type BERTNER struct {
	tagger         *localner.Tagger
	pretrainN      int
	pretrainEpochs int
	pretrainLR     float64
	fineTuneEpochs int
	seed           int64
}

// BERTNERConfig configures the baseline.
type BERTNERConfig struct {
	Encoder        transformer.Config
	PretrainN      int
	PretrainEpochs int
	PretrainLR     float64
	FineTuneEpochs int
	FineTuneLR     float64
	Seed           int64
}

// NewBERTNER builds the baseline (encoder weights fresh; call Train).
func NewBERTNER(cfg BERTNERConfig) *BERTNER {
	enc := transformer.NewEncoder(cfg.Encoder)
	return &BERTNER{
		tagger:         localner.NewTagger(enc, cfg.FineTuneLR),
		pretrainN:      cfg.PretrainN,
		pretrainEpochs: cfg.PretrainEpochs,
		pretrainLR:     cfg.PretrainLR,
		fineTuneEpochs: cfg.FineTuneEpochs,
		seed:           cfg.Seed,
	}
}

// Name implements System.
func (b *BERTNER) Name() string { return "BERT-NER" }

// Train pre-trains on formal text, then fine-tunes on the annotated
// sentences.
func (b *BERTNER) Train(train []*types.Sentence) {
	formal := corpus.PretrainFormal(b.pretrainN, b.seed)
	if enc, ok := b.tagger.Encoder().(*transformer.Encoder); ok {
		mlm := transformer.NewMLMTrainer(enc, b.pretrainLR)
		for i := 0; i < b.pretrainEpochs; i++ {
			mlm.TrainEpoch(formal)
		}
	}
	b.tagger.Train(train, b.fineTuneEpochs)
}

// Predict implements System. The tagger forwards shard one sentence
// per worker over the process-wide pool (the trained tagger runs its
// cache-free inference path); the map assembles serially afterwards,
// so the prediction set is identical at any worker count.
func (b *BERTNER) Predict(sents []*types.Sentence) map[types.SentenceKey][]types.Entity {
	ents := parallel.MapOrdered(parallel.Default(), len(sents), func(i int) []types.Entity {
		return b.tagger.Run(sents[i].Tokens).Entities
	})
	out := make(map[types.SentenceKey][]types.Entity, len(sents))
	for i, s := range sents {
		out[s.Key()] = ents[i]
	}
	return out
}
