package baselines

import (
	"strings"

	"nerglobalizer/internal/tokenizer"
	"nerglobalizer/internal/types"
)

// TwiCS is the lightweight entity mention detection system of Saha
// Bhowmick et al. (TKDE 2021), the first collective-processing system
// in the NER Globalizer lineage: a shallow syntactic heuristic
// (capitalized token runs) proposes candidate mentions, and syntactic
// support aggregated across the stream — how consistently a surface
// form appears capitalized — separates legitimate entities from noise.
//
// TwiCS performs EMD only; its output spans carry the Miscellaneous
// type as a placeholder so entity-level scorers that skip None can
// process them. Compare with metrics.EvaluateEMD, which ignores types.
type TwiCS struct {
	// MinSupport is the minimum number of capitalized occurrences a
	// surface form needs across the stream.
	MinSupport int
	// MinRatio is the minimum fraction of a surface form's
	// occurrences that must be capitalized.
	MinRatio float64
}

// NewTwiCS returns the baseline with the support thresholds used in
// our experiments.
func NewTwiCS() *TwiCS {
	return &TwiCS{MinSupport: 2, MinRatio: 0.5}
}

// Name implements System.
func (t *TwiCS) Name() string { return "TwiCS" }

// Train is a no-op: TwiCS is unsupervised.
func (t *TwiCS) Train(train []*types.Sentence) {}

// candidateRuns returns the maximal capitalized token runs of a
// sentence (the shallow syntactic heuristic). Hashtags, user mentions
// and URLs never start or extend a run.
func candidateRuns(tokens []string) []types.Span {
	var out []types.Span
	i := 0
	for i < len(tokens) {
		if !isCandidateToken(tokens[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(tokens) && isCandidateToken(tokens[j]) {
			j++
		}
		out = append(out, types.Span{Start: i, End: j})
		i = j
	}
	return out
}

func isCandidateToken(tok string) bool {
	if tokenizer.IsHashtag(tok) || tokenizer.IsUserMention(tok) || tokenizer.IsURLToken(tok) {
		return false
	}
	return tokenizer.IsCapitalized(tok) || tokenizer.IsAllCaps(tok)
}

// Predict implements System: a first pass gathers syntactic support
// across the whole stream, a second pass emits the mentions of
// supported surface forms.
func (t *TwiCS) Predict(sents []*types.Sentence) map[types.SentenceKey][]types.Entity {
	capCount := make(map[string]int)   // capitalized occurrences per surface
	totalCount := make(map[string]int) // all (case-insensitive) occurrences per unigram token

	type cand struct {
		key  types.SentenceKey
		span types.Span
		surf string
	}
	var cands []cand
	for _, s := range sents {
		for _, sp := range candidateRuns(s.Tokens) {
			surf := s.SurfaceAt(sp)
			capCount[surf]++
			cands = append(cands, cand{key: s.Key(), span: sp, surf: surf})
		}
		for _, tok := range s.Tokens {
			totalCount[strings.ToLower(tok)]++
		}
	}

	supported := func(surf string) bool {
		if capCount[surf] < t.MinSupport {
			return false
		}
		// Ratio check on single-token surfaces: common words appear
		// frequently in lower case, entities rarely do.
		if !strings.Contains(surf, " ") {
			total := totalCount[surf]
			if total > 0 && float64(capCount[surf]) < t.MinRatio*float64(total) {
				return false
			}
		}
		return true
	}

	out := make(map[types.SentenceKey][]types.Entity, len(sents))
	for _, s := range sents {
		out[s.Key()] = nil
	}
	for _, c := range cands {
		if !supported(c.surf) {
			continue
		}
		out[c.key] = append(out[c.key], types.Entity{Span: c.span, Type: types.Miscellaneous})
	}
	return out
}
