package classifier

import (
	"math"
	"testing"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

func TestGlobalEmbeddingIsConvexCombination(t *testing.T) {
	c := New(3, 1)
	embs := [][]float64{{1, 0, 0}, {0, 1, 0}}
	g := c.GlobalEmbedding(embs)
	// g = w1·e1 + w2·e2 with w1+w2 = 1, w positive: components along
	// each axis equal the weights.
	if g[0] <= 0 || g[1] <= 0 || math.Abs(g[0]+g[1]-1) > 1e-9 || g[2] != 0 {
		t.Fatalf("GlobalEmbedding = %v", g)
	}
}

func TestGlobalEmbeddingEmptyCluster(t *testing.T) {
	c := New(3, 1)
	g := c.GlobalEmbedding(nil)
	for _, v := range g {
		if v != 0 {
			t.Fatal("empty cluster should pool to zero")
		}
	}
}

func TestClassifyEmptyClusterIsNone(t *testing.T) {
	c := New(3, 1)
	et, probs := c.Classify(nil)
	if et != types.None || probs[int(types.None)] != 1 {
		t.Fatalf("empty cluster: %v %v", et, probs)
	}
}

func TestClassifyReturnsValidDistribution(t *testing.T) {
	c := New(4, 2)
	_, probs := c.Classify([][]float64{{0.1, 0.2, 0.3, 0.4}})
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if len(probs) != types.NumClasses {
		t.Fatalf("probs length = %d", len(probs))
	}
}

func TestPoolingGradients(t *testing.T) {
	// Finite-difference check of the attention pooling parameters
	// through a fixed linear pseudo-loss on the global embedding.
	c := New(4, 3)
	embs := [][]float64{
		{0.5, -0.2, 0.3, 0.9},
		{-0.4, 0.7, 0.1, -0.3},
		{0.2, 0.2, -0.6, 0.4},
	}
	coeff := []float64{0.3, -0.7, 0.5, 0.2}
	lossFn := func() float64 {
		g := c.poolForward(embs)
		return nn.Dot(coeff, g)
	}
	lossFn()
	c.wa.ZeroGrad()
	c.ba.ZeroGrad()
	c.poolBackward(coeff)
	numWa := nn.NumericGrad(lossFn, c.wa.W.Data, 1e-6)
	if d := nn.MaxGradDiff(c.wa.G.Data, numWa); d > 1e-7 {
		t.Fatalf("wa gradient mismatch: %g", d)
	}
	numBa := nn.NumericGrad(lossFn, c.ba.W.Data, 1e-6)
	if d := nn.MaxGradDiff(c.ba.G.Data, numBa); d > 1e-7 {
		t.Fatalf("ba gradient mismatch: %g", d)
	}
}

// syntheticRecords builds well-separated clusters per class so the
// classifier can be validated end-to-end.
func syntheticRecords(rng *nn.RNG, dim, perClass, mentionsPer int) []Record {
	classes := []types.EntityType{types.None, types.Person, types.Location, types.Organization, types.Miscellaneous}
	var out []Record
	for ci, cl := range classes {
		proto := make([]float64, dim)
		proto[ci%dim] = 1
		proto[(ci+2)%dim] = -0.5
		for k := 0; k < perClass; k++ {
			var embs [][]float64
			for m := 0; m < mentionsPer; m++ {
				v := make([]float64, dim)
				for j := range v {
					v[j] = proto[j] + 0.2*rng.NormFloat64()
				}
				embs = append(embs, v)
			}
			out = append(out, Record{Embs: embs, Label: cl})
		}
	}
	return out
}

func TestTrainLearnsSeparableClusters(t *testing.T) {
	rng := nn.NewRNG(5)
	records := syntheticRecords(rng, 8, 12, 3)
	c := New(8, 7)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 200
	cfg.LR = 0.01
	res := c.Train(records, cfg)
	if res.ValMacroF1 < 0.9 {
		t.Fatalf("validation macro-F1 = %v, want ≥ 0.9", res.ValMacroF1)
	}
	if res.EpochsRun == 0 {
		t.Fatal("no epochs ran")
	}
	// Training must not mutate the caller's slice order reference.
	if len(records) != 60 {
		t.Fatalf("records length changed: %d", len(records))
	}
}

func TestTrainHandlesVariableClusterSizes(t *testing.T) {
	rng := nn.NewRNG(6)
	records := syntheticRecords(rng, 6, 8, 1)
	// Mix in larger clusters.
	records = append(records, syntheticRecords(rng, 6, 4, 7)...)
	c := New(6, 8)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	res := c.Train(records, cfg)
	if res.ValMacroF1 <= 0 {
		t.Fatalf("macro F1 = %v", res.ValMacroF1)
	}
}

func TestEvalMacroF1PerfectAndEmpty(t *testing.T) {
	c := New(4, 9)
	if got := c.EvalMacroF1(nil); got != 0 {
		t.Fatalf("empty eval = %v", got)
	}
}
