package classifier

import (
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// Record is one training example: the local mention embeddings of a
// ground-truth candidate cluster and its label (an entity type, or
// None for seed non-entities).
type Record struct {
	Embs  [][]float64
	Label types.EntityType
}

// TrainConfig controls Entity Classifier training. The paper trains
// for 200 epochs with Adam at lr 0.0015, batch size 32, an 80/20
// train-validation split, early stopping after 20 stagnant epochs, and
// selects the checkpoint with the best validation macro-F1.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Patience    int
	ValFraction float64
	// WeightDecay is the decoupled L2 decay applied by Adam.
	WeightDecay float64
	Seed        int64
}

// DefaultTrainConfig returns the paper's training configuration.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:      200,
		BatchSize:   32,
		LR:          0.0015,
		Patience:    20,
		ValFraction: 0.2,
		WeightDecay: 1e-4,
		Seed:        17,
	}
}

// TrainResult reports the selected checkpoint's quality, mirroring the
// last column of Table II.
type TrainResult struct {
	TrainLoss  float64
	ValMacroF1 float64
	EpochsRun  int
}

// Train fits the pooling and classification parameters on the labelled
// cluster records and returns the best-validation-F1 checkpoint
// metrics. The records slice is not mutated.
func (c *Classifier) Train(records []Record, cfg TrainConfig) TrainResult {
	rng := nn.NewRNG(cfg.Seed)
	recs := append([]Record(nil), records...)
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	nVal := int(float64(len(recs)) * cfg.ValFraction)
	val := recs[:nVal]
	train := recs[nVal:]

	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.Register(c.Params()...)

	best := TrainResult{ValMacroF1: -1}
	var bestSnap []*nn.Matrix
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
		totalLoss := 0.0
		count := 0
		for start := 0; start < len(train); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(train) {
				end = len(train)
			}
			batch := train[start:end]
			batchLoss := 0.0
			for _, r := range batch {
				batchLoss += c.accumulateRecord(r, 1/float64(len(batch)))
			}
			opt.Step()
			totalLoss += batchLoss
			count++
		}
		if count > 0 {
			totalLoss /= float64(count)
		}
		valF1 := c.EvalMacroF1(val)
		if valF1 > best.ValMacroF1 {
			best = TrainResult{TrainLoss: totalLoss, ValMacroF1: valF1, EpochsRun: epoch + 1}
			bestSnap = c.snapshot()
			sinceBest = 0
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				break
			}
		}
	}
	if bestSnap != nil {
		c.restore(bestSnap)
	}
	return best
}

// accumulateRecord runs one record forward and accumulates scaled
// gradients (scale = 1/batch), returning the scaled loss contribution.
func (c *Classifier) accumulateRecord(r Record, scale float64) float64 {
	if len(r.Embs) == 0 {
		return 0
	}
	g := c.poolForward(r.Embs)
	logits := c.mlp.Forward(nn.FromVec(g), true)
	loss, dlogits := nn.SoftmaxCrossEntropy(logits, []int{int(r.Label)})
	dlogits.ScaleInPlace(scale)
	dg := c.mlp.Backward(dlogits)
	c.poolBackward(dg.Row(0))
	return loss * scale
}

// EvalMacroF1 computes the macro-averaged F1 over the four entity
// types on labelled records (None participates as a prediction target
// but not as an averaged class, following the WNUT17 "F1 (entity)"
// convention).
func (c *Classifier) EvalMacroF1(records []Record) float64 {
	if len(records) == 0 {
		return 0
	}
	tp := make([]int, types.NumClasses)
	fp := make([]int, types.NumClasses)
	fn := make([]int, types.NumClasses)
	for _, r := range records {
		pred, _ := c.Classify(r.Embs)
		if pred == r.Label {
			tp[int(pred)]++
		} else {
			fp[int(pred)]++
			fn[int(r.Label)]++
		}
	}
	sum := 0.0
	for _, et := range types.EntityTypes {
		i := int(et)
		p := safeDiv(float64(tp[i]), float64(tp[i]+fp[i]))
		r := safeDiv(float64(tp[i]), float64(tp[i]+fn[i]))
		sum += safeDiv(2*p*r, p+r)
	}
	return sum / float64(len(types.EntityTypes))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
