// Package classifier implements the Entity Classifier of Global NER
// (Section V-D): a learned attention pooling (eqs. 6–8) aggregates the
// local mention embeddings of a candidate cluster into one global
// candidate embedding, and a feed-forward network with ReLU
// activations and a softmax output classifies the candidate into one
// of L+1 classes — the four preset entity types or non-entity.
//
// The pooling weights and the classification network train end-to-end
// (the paper: "the learned pooling operation and the classification
// network are trained end-to-end to optimize the final NER
// classification performance").
package classifier

import (
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// Classifier pools candidate clusters into global embeddings and
// labels them.
type Classifier struct {
	wa  *nn.Param // d×1 attention projection (eq. 6)
	ba  *nn.Param // 1×1 attention bias
	mlp *nn.Sequential
	dim int

	// cached forward state for trainRecord backprop
	lastEmbs    [][]float64
	lastWeights []float64
}

// New creates a Classifier over d-dimensional mention embeddings with
// a two-hidden-layer ReLU network.
func New(dim int, seed int64) *Classifier {
	rng := nn.NewRNG(seed)
	c := &Classifier{
		wa:  nn.NewParam("pool.wa", dim, 1),
		ba:  nn.NewParam("pool.ba", 1, 1),
		dim: dim,
		mlp: nn.NewSequential(
			nn.NewDense("cls.h1", dim, 2*dim, rng),
			nn.NewReLU(),
			nn.NewDense("cls.h2", 2*dim, dim, rng),
			nn.NewReLU(),
			nn.NewDense("cls.out", dim, types.NumClasses, rng),
		),
	}
	rng.XavierInit(c.wa.W, dim, 1)
	return c
}

// Dim returns the embedding dimensionality.
func (c *Classifier) Dim() int { return c.dim }

// poolForward computes eqs. (6)–(8), caching the attention weights for
// backprop. It returns the global embedding.
func (c *Classifier) poolForward(embs [][]float64) []float64 {
	n := len(embs)
	scores := make([]float64, n)
	for j, e := range embs {
		s := c.ba.W.Data[0]
		for i, v := range e {
			s += c.wa.W.Data[i] * v
		}
		scores[j] = s
	}
	weights := nn.Softmax(scores)
	global := make([]float64, c.dim)
	for j, e := range embs {
		nn.AddScaled(global, e, weights[j])
	}
	c.lastEmbs = embs
	c.lastWeights = weights
	return global
}

// poolBackward routes the gradient of the global embedding into the
// attention parameters (the mention embeddings themselves are frozen
// inputs).
func (c *Classifier) poolBackward(dglobal []float64) {
	embs, w := c.lastEmbs, c.lastWeights
	n := len(embs)
	dw := make([]float64, n)
	for j, e := range embs {
		dw[j] = nn.Dot(dglobal, e)
	}
	// Softmax backward over the attention scores.
	dot := 0.0
	for j := range w {
		dot += w[j] * dw[j]
	}
	for j, e := range embs {
		da := w[j] * (dw[j] - dot)
		for i, v := range e {
			c.wa.G.Data[i] += da * v
		}
		c.ba.G.Data[0] += da
	}
}

// poolInfer computes eqs. (6)–(8) without caching attention state, so
// concurrent callers can share one trained classifier. The value
// matches poolForward exactly.
func (c *Classifier) poolInfer(embs [][]float64) []float64 {
	n := len(embs)
	scores := make([]float64, n)
	for j, e := range embs {
		s := c.ba.W.Data[0]
		for i, v := range e {
			s += c.wa.W.Data[i] * v
		}
		scores[j] = s
	}
	weights := nn.Softmax(scores)
	global := make([]float64, c.dim)
	for j, e := range embs {
		nn.AddScaled(global, e, weights[j])
	}
	return global
}

// GlobalEmbedding returns the pooled global candidate embedding
// (eqs. 6–8) for a cluster's local mention embeddings. Returns a zero
// vector for an empty cluster. Safe for concurrent use on a trained
// classifier.
func (c *Classifier) GlobalEmbedding(embs [][]float64) []float64 {
	if len(embs) == 0 {
		return make([]float64, c.dim)
	}
	return c.poolInfer(embs)
}

// Classify pools the cluster and returns the predicted class together
// with the class probability vector (index order: None, PER, LOC, ORG,
// MISC). Safe for concurrent use on a trained classifier.
func (c *Classifier) Classify(embs [][]float64) (types.EntityType, []float64) {
	if len(embs) == 0 {
		probs := make([]float64, types.NumClasses)
		probs[int(types.None)] = 1
		return types.None, probs
	}
	g := c.poolInfer(embs)
	logits := c.mlp.Infer(nn.FromVec(g))
	probs := nn.Softmax(logits.Row(0))
	return types.EntityType(nn.ArgMax(probs)), probs
}

// Params returns all trainable parameters (pooling + network).
func (c *Classifier) Params() []*nn.Param {
	return append([]*nn.Param{c.wa, c.ba}, c.mlp.Params()...)
}

// snapshot/restore support best-checkpoint selection during training.
func (c *Classifier) snapshot() []*nn.Matrix {
	var out []*nn.Matrix
	for _, p := range c.Params() {
		out = append(out, p.W.Clone())
	}
	return out
}

func (c *Classifier) restore(snap []*nn.Matrix) {
	for i, p := range c.Params() {
		copy(p.W.Data, snap[i].Data)
	}
}
