package rnn

import (
	"math"
	"testing"

	"nerglobalizer/internal/nn"
)

func tinyConfig() Config {
	return Config{Dim: 8, MaxLen: 10, VocabBuckets: 64, CharBuckets: 32, Seed: 5}
}

func TestEncoderShapes(t *testing.T) {
	e := NewEncoder(tinyConfig())
	out := e.Forward([]string{"hello", "world", "!"}, false)
	if out.Rows != 3 || out.Cols != 8 {
		t.Fatalf("shape = %dx%d", out.Rows, out.Cols)
	}
}

func TestEncoderTruncation(t *testing.T) {
	e := NewEncoder(tinyConfig())
	long := make([]string, 30)
	for i := range long {
		long[i] = "x"
	}
	if out := e.Forward(long, false); out.Rows != 10 {
		t.Fatalf("rows = %d, want 10", out.Rows)
	}
}

func TestEncoderOddDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd Dim")
		}
	}()
	NewEncoder(Config{Dim: 7, MaxLen: 4, VocabBuckets: 8, CharBuckets: 8})
}

func TestEncoderContextSensitivityBothDirections(t *testing.T) {
	// The same token must receive different embeddings when context
	// changes on either side — the point of bidirectionality.
	e := NewEncoder(tinyConfig())
	left := append([]float64(nil), e.Forward([]string{"a", "covid", "x"}, false).Row(1)...)
	leftChanged := e.Forward([]string{"b", "covid", "x"}, false).Row(1)
	if nn.EuclideanDistance(left, leftChanged) < 1e-9 {
		t.Fatal("left context must influence the state")
	}
	rightChanged := e.Forward([]string{"a", "covid", "y"}, false).Row(1)
	if nn.EuclideanDistance(left, rightChanged) < 1e-9 {
		t.Fatal("right context must influence the state (backward GRU)")
	}
}

func TestEncoderDeterministic(t *testing.T) {
	a := NewEncoder(tinyConfig()).Forward([]string{"covid", "in", "italy"}, false)
	b := NewEncoder(tinyConfig()).Forward([]string{"covid", "in", "italy"}, false)
	a.SubInPlace(b)
	if a.MaxAbs() != 0 {
		t.Fatal("same seed must give identical outputs")
	}
}

// TestEncoderGradients numeric-checks the full BPTT: every parameter
// of both GRU directions plus the embedding tables.
func TestEncoderGradients(t *testing.T) {
	cfg := tinyConfig()
	e := NewEncoder(cfg)
	tokens := []string{"us", "fights", "covid"}
	coeff := nn.NewMatrix(3, cfg.Dim)
	nn.NewRNG(99).NormalInit(coeff, 1)
	lossFn := func() float64 {
		out := e.Forward(tokens, true)
		s := 0.0
		for i, v := range out.Data {
			s += coeff.Data[i] * v
		}
		return s
	}
	lossFn()
	nn.ZeroGrads(e.Params())
	e.Backward(coeff.Clone())
	for _, p := range e.Params() {
		analytic := append([]float64(nil), p.G.Data...)
		stride := 1
		if len(p.W.Data) > 200 {
			stride = 53
		}
		for i := 0; i < len(p.W.Data); i += stride {
			orig := p.W.Data[i]
			const eps = 1e-5
			p.W.Data[i] = orig + eps
			fp := lossFn()
			p.W.Data[i] = orig - eps
			fm := lossFn()
			p.W.Data[i] = orig
			num := (fp - fm) / (2 * eps)
			if d := math.Abs(num - analytic[i]); d > 1e-4 {
				t.Fatalf("param %s[%d]: analytic %g vs numeric %g", p.Name, i, analytic[i], num)
			}
		}
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); math.Abs(s-1) > 1e-12 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 && s > 1e-300 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
}

func TestTrainableOnTinyTask(t *testing.T) {
	// A BiGRU + linear head learns to tag the token after "in" — a
	// task requiring left context.
	cfg := tinyConfig()
	e := NewEncoder(cfg)
	rng := nn.NewRNG(7)
	head := nn.NewDense("head", cfg.Dim, 2, rng)
	opt := nn.NewAdam(0.01)
	opt.Register(e.Params()...)
	opt.Register(head.Params()...)

	var sents [][]string
	var labels [][]int
	for _, city := range []string{"paris", "rome", "tokyo", "cairo", "lima", "quito", "accra", "delhi"} {
		sents = append(sents,
			[]string{"i", "live", "in", city},
			[]string{"cases", "rise", "in", city},
			[]string{"nothing", "here", "at", "all"},
		)
		labels = append(labels,
			[]int{0, 0, 0, 1},
			[]int{0, 0, 0, 1},
			[]int{0, 0, 0, 0},
		)
	}
	var loss float64
	for epoch := 0; epoch < 150; epoch++ {
		loss = 0
		for i, toks := range sents {
			h := e.Forward(toks, true)
			logits := head.Forward(h, true)
			l, dl := nn.SoftmaxCrossEntropy(logits, labels[i])
			loss += l
			e.Backward(head.Backward(dl))
			opt.Step()
		}
	}
	if loss > 0.2 {
		t.Fatalf("BiGRU failed to learn tiny task, loss = %v", loss)
	}
	// Context sensitivity on an unseen token: the entity logit after
	// "in" must clearly exceed the entity logit of the same unseen
	// token in a non-cue context. (Full argmax generalization to
	// arbitrary unseen embeddings is not guaranteed at this toy scale;
	// the relative ordering is the property that matters.)
	cue := head.Forward(e.Forward([]string{"we", "met", "in", "oslo"}, false), false).At(3, 1)
	noCue := head.Forward(e.Forward([]string{"we", "met", "the", "oslo"}, false), false).At(3, 1)
	if cue <= noCue {
		t.Fatalf("left-context cue did not raise entity logit: %v vs %v", cue, noCue)
	}
}
