// Package rnn implements a bidirectional GRU sequence encoder with
// full backpropagation through time, as an alternative Local NER
// language model: the paper notes state-of-the-art NER uses "a
// Transformer encoder or BiLSTM" to produce token-level contextual
// embeddings, and the pipeline is deliberately decoupled from that
// choice. The BiGRU plugs into internal/localner through the same
// Encoder interface the Transformer satisfies.
package rnn

import (
	"nerglobalizer/internal/nn"
)

// gruCell holds the parameters of one GRU direction.
//
// Update gate   z_t = σ(W_z x_t + U_z h_{t-1} + b_z)
// Reset gate    r_t = σ(W_r x_t + U_r h_{t-1} + b_r)
// Candidate     ĥ_t = tanh(W_h x_t + U_h (r_t ⊙ h_{t-1}) + b_h)
// State         h_t = (1−z_t) ⊙ h_{t-1} + z_t ⊙ ĥ_t
type gruCell struct {
	wz, uz, bz *nn.Param
	wr, ur, br *nn.Param
	wh, uh, bh *nn.Param
	in, hidden int
}

func newGRUCell(name string, in, hidden int, rng *nn.RNG) *gruCell {
	c := &gruCell{
		wz: nn.NewParam(name+".wz", in, hidden), uz: nn.NewParam(name+".uz", hidden, hidden), bz: nn.NewParam(name+".bz", 1, hidden),
		wr: nn.NewParam(name+".wr", in, hidden), ur: nn.NewParam(name+".ur", hidden, hidden), br: nn.NewParam(name+".br", 1, hidden),
		wh: nn.NewParam(name+".wh", in, hidden), uh: nn.NewParam(name+".uh", hidden, hidden), bh: nn.NewParam(name+".bh", 1, hidden),
		in: in, hidden: hidden,
	}
	for _, p := range []*nn.Param{c.wz, c.wr, c.wh} {
		rng.XavierInit(p.W, in, hidden)
	}
	for _, p := range []*nn.Param{c.uz, c.ur, c.uh} {
		rng.XavierInit(p.W, hidden, hidden)
	}
	return c
}

func (c *gruCell) params() []*nn.Param {
	return []*nn.Param{c.wz, c.uz, c.bz, c.wr, c.ur, c.br, c.wh, c.uh, c.bh}
}

// cellState caches one timestep's forward intermediates for BPTT.
type cellState struct {
	x, hPrev      []float64
	z, r, hHat, h []float64
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		e := fastExp(-x)
		return 1 / (1 + e)
	}
	e := fastExp(x)
	return e / (1 + e)
}

// fastExp is math.Exp behind a tiny indirection so the hot loop stays
// readable.
func fastExp(x float64) float64 { return expImpl(x) }

// step runs one GRU timestep.
func (c *gruCell) step(x, hPrev []float64) cellState {
	h := c.hidden
	st := cellState{
		x: x, hPrev: hPrev,
		z: make([]float64, h), r: make([]float64, h),
		hHat: make([]float64, h), h: make([]float64, h),
	}
	zPre := affine(x, c.wz.W, hPrev, c.uz.W, c.bz.W)
	rPre := affine(x, c.wr.W, hPrev, c.ur.W, c.br.W)
	for j := 0; j < h; j++ {
		st.z[j] = sigmoid(zPre[j])
		st.r[j] = sigmoid(rPre[j])
	}
	rh := make([]float64, h)
	for j := 0; j < h; j++ {
		rh[j] = st.r[j] * hPrev[j]
	}
	hPre := affine(x, c.wh.W, rh, c.uh.W, c.bh.W)
	for j := 0; j < h; j++ {
		st.hHat[j] = tanh(hPre[j])
		st.h[j] = (1-st.z[j])*hPrev[j] + st.z[j]*st.hHat[j]
	}
	return st
}

// affine computes xᵀW + hᵀU + b.
func affine(x []float64, w *nn.Matrix, h []float64, u *nn.Matrix, b *nn.Matrix) []float64 {
	out := append([]float64(nil), b.Data...)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		nn.AddScaled(out, w.Row(i), xv)
	}
	for i, hv := range h {
		if hv == 0 {
			continue
		}
		nn.AddScaled(out, u.Row(i), hv)
	}
	return out
}

// stepBackward backpropagates one timestep: given ∂L/∂h_t it
// accumulates parameter gradients and returns (∂L/∂x_t, ∂L/∂h_{t-1}).
func (c *gruCell) stepBackward(st cellState, dh []float64) (dx, dhPrev []float64) {
	h := c.hidden
	dx = make([]float64, c.in)
	dhPrev = make([]float64, h)

	dz := make([]float64, h)
	dhHat := make([]float64, h)
	for j := 0; j < h; j++ {
		dz[j] = dh[j] * (st.hHat[j] - st.hPrev[j])
		dhHat[j] = dh[j] * st.z[j]
		dhPrev[j] += dh[j] * (1 - st.z[j])
	}
	// Through candidate tanh.
	dhPre := make([]float64, h)
	for j := 0; j < h; j++ {
		dhPre[j] = dhHat[j] * (1 - st.hHat[j]*st.hHat[j])
	}
	// Candidate affine: wh·x + uh·(r⊙hPrev) + bh.
	drh := make([]float64, h)
	c.accumAffine(c.wh, c.uh, c.bh, st.x, mulVec(st.r, st.hPrev), dhPre, dx, drh)
	dr := make([]float64, h)
	for j := 0; j < h; j++ {
		dr[j] = drh[j] * st.hPrev[j]
		dhPrev[j] += drh[j] * st.r[j]
	}
	// Gate pre-activations.
	dzPre := make([]float64, h)
	drPre := make([]float64, h)
	for j := 0; j < h; j++ {
		dzPre[j] = dz[j] * st.z[j] * (1 - st.z[j])
		drPre[j] = dr[j] * st.r[j] * (1 - st.r[j])
	}
	c.accumAffine(c.wz, c.uz, c.bz, st.x, st.hPrev, dzPre, dx, dhPrev)
	c.accumAffine(c.wr, c.ur, c.br, st.x, st.hPrev, drPre, dx, dhPrev)
	return dx, dhPrev
}

// accumAffine accumulates gradients of out = xᵀW + hᵀU + b given dOut,
// adding ∂L/∂x into dx and ∂L/∂h into dh.
func (c *gruCell) accumAffine(w, u, b *nn.Param, x, h, dOut, dx, dh []float64) {
	for j, d := range dOut {
		b.G.Data[j] += d
	}
	for i, xv := range x {
		if xv != 0 {
			nn.AddScaled(w.G.Row(i), dOut, xv)
		}
		dx[i] += nn.Dot(w.W.Row(i), dOut)
	}
	for i, hv := range h {
		if hv != 0 {
			nn.AddScaled(u.G.Row(i), dOut, hv)
		}
		dh[i] += nn.Dot(u.W.Row(i), dOut)
	}
}

func mulVec(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

func tanh(x float64) float64 { return tanhImpl(x) }
