package rnn

import (
	"testing"

	"nerglobalizer/internal/parallel"
)

func TestInferMatchesForward(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	sents := [][]string{
		{"covid", "in", "italy"},
		{"@user", "loves", "#nyc", "!"},
		{"BREAKING", "quake", "near", "Tokyo"},
	}
	for _, toks := range sents {
		want := enc.Forward(toks, false)
		got := enc.Infer(toks)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("Infer diverges from Forward at element %d", i)
			}
		}
	}
}

// TestInferConcurrent shares one encoder across goroutines; go test
// -race is the real assertion, plus bit-identical outputs.
func TestInferConcurrent(t *testing.T) {
	enc := NewEncoder(tinyConfig())
	toks := []string{"flooding", "in", "jakarta"}
	want := enc.Infer(toks)
	p := parallel.New(8)
	outs := parallel.MapOrdered(p, 32, func(i int) []float64 {
		return enc.Infer(toks).Data
	})
	for _, data := range outs {
		for i := range want.Data {
			if data[i] != want.Data[i] {
				t.Fatal("concurrent Infer output diverged")
			}
		}
	}
}
