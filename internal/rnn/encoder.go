package rnn

import (
	"hash/fnv"
	"math"
	"strings"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/tokenizer"
)

func expImpl(x float64) float64  { return math.Exp(x) }
func tanhImpl(x float64) float64 { return math.Tanh(x) }

// Config holds the BiGRU encoder hyperparameters. Dim is the output
// embedding size; each direction produces Dim/2 features.
type Config struct {
	Dim          int
	MaxLen       int
	VocabBuckets int
	CharBuckets  int
	Seed         int64
}

// DefaultConfig mirrors the Transformer stand-in's footprint.
func DefaultConfig() Config {
	return Config{Dim: 32, MaxLen: 48, VocabBuckets: 2048, CharBuckets: 512, Seed: 1}
}

// Encoder is a bidirectional GRU over hashed token embeddings. It
// implements the localner.Encoder contract: Forward produces a T×Dim
// matrix of contextual token states, Backward propagates its gradient
// into every parameter.
type Encoder struct {
	cfg Config
	tok *nn.Param
	chr *nn.Param
	ort *nn.Param
	fwd *gruCell
	bwd *gruCell
	rng *nn.RNG

	// forward cache
	lastTokens [][]int // char buckets per token
	lastBucket []int
	lastOrtho  [][]int
	lastFwd    []cellState
	lastBwd    []cellState
}

// NewEncoder builds a BiGRU encoder with fresh weights. Dim must be
// even.
func NewEncoder(cfg Config) *Encoder {
	if cfg.Dim%2 != 0 {
		panic("rnn: Dim must be even (split across directions)")
	}
	rng := nn.NewRNG(cfg.Seed)
	e := &Encoder{
		cfg: cfg,
		tok: nn.NewParam("rnn.tok", cfg.VocabBuckets, cfg.Dim),
		chr: nn.NewParam("rnn.char", cfg.CharBuckets, cfg.Dim),
		ort: nn.NewParam("rnn.ortho", 6, cfg.Dim),
		fwd: newGRUCell("rnn.fwd", cfg.Dim, cfg.Dim/2, rng),
		bwd: newGRUCell("rnn.bwd", cfg.Dim, cfg.Dim/2, rng),
		rng: rng,
	}
	rng.NormalInit(e.tok.W, 0.1)
	rng.NormalInit(e.chr.W, 0.1)
	rng.NormalInit(e.ort.W, 0.1)
	return e
}

// Dim returns the output dimensionality.
func (e *Encoder) Dim() int { return e.cfg.Dim }

// RNG exposes the deterministic random stream.
func (e *Encoder) RNG() *nn.RNG { return e.rng }

// Truncate clips a sequence to MaxLen.
func (e *Encoder) Truncate(tokens []string) []string {
	if len(tokens) > e.cfg.MaxLen {
		return tokens[:e.cfg.MaxLen]
	}
	return tokens
}

func bucket(s string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(strings.ToLower(s)))
	return int(h.Sum32() % uint32(n))
}

func charBuckets(tok string, n int) []int {
	padded := "^" + strings.ToLower(tok) + "$"
	runes := []rune(padded)
	if len(runes) < 3 {
		return []int{bucket(string(runes), n)}
	}
	out := make([]int, 0, len(runes)-2)
	for i := 0; i+3 <= len(runes); i++ {
		out = append(out, bucket(string(runes[i:i+3]), n))
	}
	return out
}

func orthoFeats(tok string) []int {
	var out []int
	if tokenizer.IsAllCaps(tok) {
		out = append(out, 1)
	} else if tokenizer.IsCapitalized(tok) {
		out = append(out, 0)
	}
	if tokenizer.HasDigit(tok) {
		out = append(out, 2)
	}
	switch {
	case tokenizer.IsHashtag(tok):
		out = append(out, 3)
	case tokenizer.IsUserMention(tok):
		out = append(out, 4)
	case tokenizer.IsURLToken(tok):
		out = append(out, 5)
	}
	return out
}

// embed builds the per-token input vectors and caches the hash indices
// for backprop.
func (e *Encoder) embed(tokens []string) *nn.Matrix {
	T := len(tokens)
	x := nn.NewMatrix(T, e.cfg.Dim)
	e.lastBucket = make([]int, T)
	e.lastTokens = make([][]int, T)
	e.lastOrtho = make([][]int, T)
	for i, tok := range tokens {
		row := x.Row(i)
		tb := bucket(tok, e.cfg.VocabBuckets)
		e.lastBucket[i] = tb
		copy(row, e.tok.W.Row(tb))
		cbs := charBuckets(tok, e.cfg.CharBuckets)
		e.lastTokens[i] = cbs
		inv := 1 / float64(len(cbs))
		for _, cb := range cbs {
			nn.AddScaled(row, e.chr.W.Row(cb), inv)
		}
		ofs := orthoFeats(tok)
		e.lastOrtho[i] = ofs
		for _, f := range ofs {
			nn.AddScaled(row, e.ort.W.Row(f), 1)
		}
	}
	return x
}

// Forward encodes tokens into a T×Dim matrix: the concatenation of the
// forward and backward GRU states at each position. The train flag is
// accepted for interface parity (the BiGRU has no dropout).
func (e *Encoder) Forward(tokens []string, train bool) *nn.Matrix {
	tokens = e.Truncate(tokens)
	T := len(tokens)
	x := e.embed(tokens)
	half := e.cfg.Dim / 2
	e.lastFwd = make([]cellState, T)
	e.lastBwd = make([]cellState, T)
	out := nn.NewMatrix(T, e.cfg.Dim)
	h := make([]float64, half)
	for t := 0; t < T; t++ {
		st := e.fwd.step(x.Row(t), h)
		e.lastFwd[t] = st
		h = st.h
		copy(out.Row(t)[:half], st.h)
	}
	h = make([]float64, half)
	for t := T - 1; t >= 0; t-- {
		st := e.bwd.step(x.Row(t), h)
		e.lastBwd[t] = st
		h = st.h
		copy(out.Row(t)[half:], st.h)
	}
	return out
}

// Backward propagates ∂L/∂out through both directions and into the
// embedding tables.
func (e *Encoder) Backward(dout *nn.Matrix) {
	T := dout.Rows
	half := e.cfg.Dim / 2
	dx := nn.NewMatrix(T, e.cfg.Dim)
	// Forward direction: walk time backwards.
	carry := make([]float64, half)
	for t := T - 1; t >= 0; t-- {
		dh := append([]float64(nil), dout.Row(t)[:half]...)
		for j := range dh {
			dh[j] += carry[j]
		}
		dxt, dhPrev := e.fwd.stepBackward(e.lastFwd[t], dh)
		nn.AddScaled(dx.Row(t), dxt, 1)
		carry = dhPrev
	}
	// Backward direction: walk time forwards.
	carry = make([]float64, half)
	for t := 0; t < T; t++ {
		dh := append([]float64(nil), dout.Row(t)[half:]...)
		for j := range dh {
			dh[j] += carry[j]
		}
		dxt, dhPrev := e.bwd.stepBackward(e.lastBwd[t], dh)
		nn.AddScaled(dx.Row(t), dxt, 1)
		carry = dhPrev
	}
	// Into the embedding tables.
	for t := 0; t < T; t++ {
		drow := dx.Row(t)
		nn.AddScaled(e.tok.G.Row(e.lastBucket[t]), drow, 1)
		inv := 1 / float64(len(e.lastTokens[t]))
		for _, cb := range e.lastTokens[t] {
			nn.AddScaled(e.chr.G.Row(cb), drow, inv)
		}
		for _, f := range e.lastOrtho[t] {
			nn.AddScaled(e.ort.G.Row(f), drow, 1)
		}
	}
}

// Params returns every trainable parameter.
func (e *Encoder) Params() []*nn.Param {
	ps := []*nn.Param{e.tok, e.chr, e.ort}
	ps = append(ps, e.fwd.params()...)
	ps = append(ps, e.bwd.params()...)
	return ps
}
