package rnn

import (
	"nerglobalizer/internal/nn"
)

// Inference path. Forward caches hash indices and per-timestep cell
// states on the Encoder for BPTT, so a shared encoder cannot run
// Forward concurrently. Infer computes the identical output with no
// writes to encoder state: gruCell.step is already pure (it touches
// only its returned cellState), so only the embedding and state
// bookkeeping need cache-free variants. Infer(tokens) equals
// Forward(tokens, false) bit for bit.

// embedInfer builds per-token input vectors without caching indices.
func (e *Encoder) embedInfer(tokens []string) *nn.Matrix {
	T := len(tokens)
	x := nn.NewMatrix(T, e.cfg.Dim)
	for i, tok := range tokens {
		row := x.Row(i)
		copy(row, e.tok.W.Row(bucket(tok, e.cfg.VocabBuckets)))
		cbs := charBuckets(tok, e.cfg.CharBuckets)
		inv := 1 / float64(len(cbs))
		for _, cb := range cbs {
			nn.AddScaled(row, e.chr.W.Row(cb), inv)
		}
		for _, f := range orthoFeats(tok) {
			nn.AddScaled(row, e.ort.W.Row(f), 1)
		}
	}
	return x
}

// Infer encodes tokens into a T×Dim matrix identically to
// Forward(tokens, false), writing no encoder state. Concurrent Infer
// calls on one Encoder are safe; training must not run at the same
// time.
func (e *Encoder) Infer(tokens []string) *nn.Matrix {
	tokens = e.Truncate(tokens)
	T := len(tokens)
	x := e.embedInfer(tokens)
	half := e.cfg.Dim / 2
	out := nn.NewMatrix(T, e.cfg.Dim)
	h := make([]float64, half)
	for t := 0; t < T; t++ {
		st := e.fwd.step(x.Row(t), h)
		h = st.h
		copy(out.Row(t)[:half], st.h)
	}
	h = make([]float64, half)
	for t := T - 1; t >= 0; t-- {
		st := e.bwd.step(x.Row(t), h)
		h = st.h
		copy(out.Row(t)[half:], st.h)
	}
	return out
}
