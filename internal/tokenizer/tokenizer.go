// Package tokenizer provides the tweet tokenizer and sentence splitter
// used throughout the NER Globalizer reproduction.
//
// Microblog text mixes ordinary words with platform artifacts —
// hashtags, @-mentions, URLs, emoticons, elongated punctuation — that a
// whitespace tokenizer mangles. This tokenizer keeps those artifacts
// intact as single tokens while splitting ordinary punctuation off
// words, which is the behaviour downstream BIO tagging assumes.
package tokenizer

import (
	"strings"
	"unicode"
)

// Tokenize splits a raw tweet into tokens. Hashtags (#covid),
// user mentions (@user), and URLs survive as single tokens; trailing
// and leading punctuation is split from words; contractions keep their
// apostrophes ("don't" stays one token).
func Tokenize(text string) []string {
	var tokens []string
	for _, field := range strings.Fields(text) {
		tokens = append(tokens, tokenizeField(field)...)
	}
	return tokens
}

func tokenizeField(field string) []string {
	if field == "" {
		return nil
	}
	if isURL(field) {
		return []string{field}
	}
	if field[0] == '#' || field[0] == '@' {
		// Keep the sigil attached; split trailing punctuation.
		body, trail := splitTrailingPunct(field)
		if len(body) > 1 {
			out := []string{body}
			return append(out, trail...)
		}
	}
	if isEmoticon(field) {
		return []string{field}
	}
	var out []string
	lead, rest := splitLeadingPunct(field)
	out = append(out, lead...)
	body, trail := splitTrailingPunct(rest)
	if body != "" {
		out = append(out, splitInnerPunct(body)...)
	}
	out = append(out, trail...)
	return out
}

// splitLeadingPunct peels punctuation runes off the front of s.
func splitLeadingPunct(s string) (puncts []string, rest string) {
	runes := []rune(s)
	i := 0
	for i < len(runes) && isSplittablePunct(runes[i]) {
		puncts = append(puncts, string(runes[i]))
		i++
	}
	return puncts, string(runes[i:])
}

// splitTrailingPunct peels punctuation runes off the end of s.
func splitTrailingPunct(s string) (body string, puncts []string) {
	runes := []rune(s)
	j := len(runes)
	for j > 0 && isSplittablePunct(runes[j-1]) {
		j--
	}
	for i := j; i < len(runes); i++ {
		puncts = append(puncts, string(runes[i]))
	}
	return string(runes[:j]), puncts
}

// splitInnerPunct breaks tokens joined by slashes or em-dashes but
// preserves apostrophes and intra-word hyphens.
func splitInnerPunct(s string) []string {
	var out []string
	start := 0
	runes := []rune(s)
	for i, r := range runes {
		if r == '/' || r == '—' {
			if i > start {
				out = append(out, string(runes[start:i]))
			}
			out = append(out, string(r))
			start = i + 1
		}
	}
	if start < len(runes) {
		out = append(out, string(runes[start:]))
	}
	return out
}

func isSplittablePunct(r rune) bool {
	switch r {
	case '\'', '-', '#', '@', '_':
		return false
	}
	return unicode.IsPunct(r) || r == '…'
}

func isURL(s string) bool {
	low := strings.ToLower(s)
	return strings.HasPrefix(low, "http://") || strings.HasPrefix(low, "https://") ||
		strings.HasPrefix(low, "www.")
}

var emoticons = map[string]bool{
	":)": true, ":(": true, ":D": true, ":P": true, ";)": true, ":/": true,
	":-)": true, ":-(": true, ":'(": true, "<3": true, ":O": true, "xD": true,
}

func isEmoticon(s string) bool { return emoticons[s] }

// SplitSentences breaks a token stream into sentences at terminal
// punctuation (. ! ?), keeping the terminator with the preceding
// sentence. A tweet with no terminators is one sentence.
func SplitSentences(tokens []string) [][]string {
	var sents [][]string
	start := 0
	for i, tok := range tokens {
		if isTerminator(tok) {
			sents = append(sents, tokens[start:i+1])
			start = i + 1
		}
	}
	if start < len(tokens) {
		sents = append(sents, tokens[start:])
	}
	return sents
}

func isTerminator(tok string) bool {
	switch tok {
	case ".", "!", "?", "!!", "??", "?!", "...":
		return true
	}
	return false
}

// IsCapitalized reports whether the token starts with an upper-case
// letter — an orthographic feature used by the CRF baseline.
func IsCapitalized(tok string) bool {
	for _, r := range tok {
		return unicode.IsUpper(r)
	}
	return false
}

// IsAllCaps reports whether every letter in the token is upper-case and
// the token contains at least one letter.
func IsAllCaps(tok string) bool {
	hasLetter := false
	for _, r := range tok {
		if unicode.IsLetter(r) {
			hasLetter = true
			if !unicode.IsUpper(r) {
				return false
			}
		}
	}
	return hasLetter
}

// HasDigit reports whether the token contains a digit.
func HasDigit(tok string) bool {
	for _, r := range tok {
		if unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

// IsHashtag reports whether the token is a hashtag.
func IsHashtag(tok string) bool { return len(tok) > 1 && tok[0] == '#' }

// IsUserMention reports whether the token is an @-mention.
func IsUserMention(tok string) bool { return len(tok) > 1 && tok[0] == '@' }

// IsURLToken reports whether the token is a URL.
func IsURLToken(tok string) bool { return isURL(tok) }
