package tokenizer

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello world", []string{"Hello", "world"}},
		{"Hello, world!", []string{"Hello", ",", "world", "!"}},
		{"", nil},
		{"   ", nil},
		{"don't stop", []string{"don't", "stop"}},
		{"covid-19 cases", []string{"covid-19", "cases"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeTwitterArtifacts(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"#coronavirus is trending", []string{"#coronavirus", "is", "trending"}},
		{"thanks @beshear!", []string{"thanks", "@beshear", "!"}},
		{"see https://t.co/abc123 now", []string{"see", "https://t.co/abc123", "now"}},
		{"see www.example.com.", []string{"see", "www.example.com."}},
		{"great news :)", []string{"great", "news", ":)"}},
		{"#covid!", []string{"#covid", "!"}},
		{"lockdown in italy/spain", []string{"lockdown", "in", "italy", "/", "spain"}},
		{"(breaking)", []string{"(", "breaking", ")"}},
		{"\"quote\"", []string{"\"", "quote", "\""}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitSentences(t *testing.T) {
	toks := Tokenize("Trump spoke. Beshear replied! No cases in canada")
	sents := SplitSentences(toks)
	if len(sents) != 3 {
		t.Fatalf("got %d sentences: %v", len(sents), sents)
	}
	if sents[0][len(sents[0])-1] != "." {
		t.Errorf("terminator should stay with sentence: %v", sents[0])
	}
	if sents[2][0] != "No" {
		t.Errorf("last sentence = %v", sents[2])
	}
}

func TestSplitSentencesNoTerminator(t *testing.T) {
	sents := SplitSentences([]string{"just", "one", "clause"})
	if len(sents) != 1 || len(sents[0]) != 3 {
		t.Fatalf("sents = %v", sents)
	}
	if SplitSentences(nil) != nil {
		t.Error("empty input should yield no sentences")
	}
}

func TestOrthographicPredicates(t *testing.T) {
	if !IsCapitalized("Trump") || IsCapitalized("trump") || IsCapitalized("#x") {
		t.Error("IsCapitalized wrong")
	}
	if !IsAllCaps("NHS") || IsAllCaps("NHs") || IsAllCaps("123") {
		t.Error("IsAllCaps wrong")
	}
	if !HasDigit("covid19") || HasDigit("covid") {
		t.Error("HasDigit wrong")
	}
	if !IsHashtag("#covid") || IsHashtag("#") || IsHashtag("covid") {
		t.Error("IsHashtag wrong")
	}
	if !IsUserMention("@user") || IsUserMention("@") || IsUserMention("user") {
		t.Error("IsUserMention wrong")
	}
	if !IsURLToken("https://x.co") || IsURLToken("x.co") {
		t.Error("IsURLToken wrong")
	}
}

// Property: no token produced by Tokenize contains interior whitespace
// and none is empty.
func TestTokenizeNoWhitespaceProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r == ' ' || r == '\t' || r == '\n' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sentence splitting preserves tokens exactly.
func TestSplitSentencesPreservesTokensProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		var joined []string
		for _, sent := range SplitSentences(toks) {
			joined = append(joined, sent...)
		}
		return reflect.DeepEqual(joined, toks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
