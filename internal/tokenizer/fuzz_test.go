package tokenizer

import (
	"strings"
	"testing"
)

// FuzzTokenize checks the tokenizer's invariants on arbitrary input:
// no empty tokens, no interior whitespace, and sentence splitting
// preserves the token stream.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"", "hello world", "#covid!", "@user: look https://t.co/x :)",
		"don't stop—believing... now", "ITALY/spain 100% \t\n mixed",
		"日本語のツイート #test", "a.b.c?!",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			if strings.ContainsAny(tok, " \t\n\r") {
				t.Fatalf("token %q contains whitespace", tok)
			}
		}
		total := 0
		for _, sent := range SplitSentences(toks) {
			total += len(sent)
		}
		if total != len(toks) {
			t.Fatalf("sentence split lost tokens: %d vs %d", total, len(toks))
		}
	})
}
