package core

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nerglobalizer/internal/cluster"
	"nerglobalizer/internal/mention"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/obs"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// This file implements the cross-cycle amortization layer of the
// continuous execution setup. ProcessBatch re-runs Global NER over the
// accumulated stream every cycle, so without amortization the per-cycle
// cost grows with stream length even when almost nothing changed. The
// layer never recomputes work whose inputs did not change:
//
//   - an embedding cache runs phrase pooling + the Phrase Embedder once
//     per (sentence, span) ever;
//   - a scan cache skips re-scanning old sentences unless the CTrie
//     gained a surface form that could match them (token-membership
//     filter on the new surfaces' first tokens);
//   - dirty-surface tracking re-clusters and re-classifies only surface
//     forms whose mention pool changed this cycle, with a growable
//     pristine distance matrix that appends rows for new mentions
//     instead of recomputing the full N×N block.
//
// The invariant: annotations are byte-identical with caching on or off,
// at every worker count. Every cache is keyed by the exact inputs of
// the computation it skips, and every skipped recomputation is a pure
// function of those inputs (trained parameters are frozen during
// serving). Config.DisableCache switches the layer off wholesale.

// embedCache memoizes local mention embeddings (eqs. 1–3) by
// (sentence, span). Entries are immutable once stored — consumers only
// read the vectors — so one embedding is computed per mention ever,
// no matter how many cycles re-visit its surface form. The two-level
// keying makes whole-sentence invalidation cheap.
type embedCache struct {
	mu sync.RWMutex
	m  map[types.SentenceKey]map[types.Span][]float64
}

func newEmbedCache() *embedCache {
	return &embedCache{m: make(map[types.SentenceKey]map[types.Span][]float64)}
}

// get returns the cached embedding for the mention, computing and
// storing it on first use. Concurrent callers may compute the same
// entry twice; both compute identical values, so the race is benign.
func (c *embedCache) get(g *Globalizer, m types.Mention) []float64 {
	c.mu.RLock()
	v := c.m[m.Key][m.Span]
	c.mu.RUnlock()
	if v != nil {
		if g.o != nil {
			g.o.embedCacheHits.Inc()
		}
		return v
	}
	if g.o != nil {
		g.o.mentionsEmbedded.Inc()
	}
	rec := g.tweetBase.Get(m.Key)
	v = g.Embedder.Embed(g.mentionStates(rec), m.Span)
	c.mu.Lock()
	bySpan := c.m[m.Key]
	if bySpan == nil {
		bySpan = make(map[types.Span][]float64)
		c.m[m.Key] = bySpan
	}
	bySpan[m.Span] = v
	c.mu.Unlock()
	return v
}

// drop forgets every embedding of one sentence.
func (c *embedCache) drop(key types.SentenceKey) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// state32Cache memoizes the float32-grade token states the i8 tier's
// global phase pools mention embeddings from — one re-embed per
// mentioned sentence ever (see Globalizer.mentionStates for why the
// i8 tier re-embeds). Like embedCache, concurrent first computations
// of the same entry are benign: both produce identical matrices.
type state32Cache struct {
	mu sync.RWMutex
	m  map[types.SentenceKey]*nn.Matrix
}

func newState32Cache() *state32Cache {
	return &state32Cache{m: make(map[types.SentenceKey]*nn.Matrix)}
}

func (c *state32Cache) get(g *Globalizer, rec *stream.Record) *nn.Matrix {
	key := rec.Sentence.Key()
	c.mu.RLock()
	v := c.m[key]
	c.mu.RUnlock()
	if v != nil {
		return v
	}
	v = g.Tagger.EmbedAt(rec.Sentence.Tokens, nn.F32)
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
	return v
}

func (c *state32Cache) drop(key types.SentenceKey) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// mentionStates returns the token states mention embeddings pool over
// (eqs. 1–2) for one sentence. At f64 and f32 these are the
// local-phase encoder outputs stored on the record. At i8 the
// sentence is lazily re-embedded at f32: quantized weights shift
// mention embeddings by ~1.5e-2 in cosine distance, far above the
// ~1e-4 near-tie margins that decide average-linkage merge order, so
// clustering — and with it candidate identity — would diverge from
// the exact path. Re-embedding only the mentioned sentences keeps the
// tagging hot path fully quantized while the global phase sees
// f32-grade geometry, the same scope tuning the Phrase Embedder
// applies to its dense layer (phrase.SetPrecision). With caching on a
// sentence is re-embedded once ever; with caching off it is
// recomputed per mention, like every other cache-off computation.
func (g *Globalizer) mentionStates(rec *stream.Record) *nn.Matrix {
	if g.Precision() != nn.I8 {
		return rec.Embeddings
	}
	if g.cfg.DisableCache {
		return g.Tagger.EmbedAt(rec.Sentence.Tokens, nn.F32)
	}
	return g.amort.states32.get(g, rec)
}

// embedMention returns the local mention embedding, through the cache
// unless caching is disabled.
func (g *Globalizer) embedMention(m types.Mention) []float64 {
	if g.cfg.DisableCache {
		if g.o != nil {
			g.o.mentionsEmbedded.Inc()
		}
		rec := g.tweetBase.Get(m.Key)
		return g.Embedder.Embed(g.mentionStates(rec), m.Span)
	}
	return g.amort.embeds.get(g, m)
}

// surfaceAmort is the cached Global NER state of one surface form: its
// mention pool in stream order, the pool's embeddings and pristine
// distance matrix, and the finished outcome (candidate clusters plus
// typed mentions). The outcome is valid exactly while the mention pool
// is unchanged; a pool that grew by appending reuses the embedding and
// distance prefixes.
type surfaceAmort struct {
	mentions []types.Mention
	embs     [][]float64
	dist     *cluster.DistMatrix
	outcome  surfaceOutcome
	// typedBySent splits outcome.typed by sentence, preserving the
	// outcome's within-surface order. Incremental FinalMentions rebuilds
	// read it, and diffing it against a fresh outcome yields exactly the
	// sentences whose annotations changed.
	typedBySent map[types.SentenceKey][]types.Mention
	// ccache memoizes step-4 cluster verdicts by membership signature;
	// valid only while the pool keeps its prefix (indices identify the
	// same mentions), so it resets together with embs/dist.
	ccache map[string]*clusterVerdict
}

// clusterVerdict is the cached step-4 result of one candidate cluster:
// its pooled global embedding and the ensemble's decision. Entries are
// immutable once stored.
type clusterVerdict struct {
	globalEmb []float64
	et        types.EntityType
	conf      float64
}

// clusterKey builds the membership signature of a cluster from its
// member indices (ascending by construction of Members).
func clusterKey(idxs []int) string {
	var b strings.Builder
	for _, i := range idxs {
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(',')
	}
	return b.String()
}

// AmortStats summarizes cache activity in the most recent amortized
// cycle: how many of the stream's sentences were actually re-scanned,
// and how many surface forms returned their cached outcome untouched.
// Purely observational — useful for tests, benchmarks and operations.
type AmortStats struct {
	// Sentences is the accumulated stream length; Rescanned of those
	// went through a fresh trie scan this cycle.
	Sentences, Rescanned int
	// Surfaces is the number of surface forms processed; Reused of
	// those returned their cached outcome without recomputation.
	Surfaces, Reused int
}

// AmortStats returns the cache activity of the most recent amortized
// cycle (zero when caching is disabled or no cycle ran yet). The same
// numbers live on the observability registry as the ner_amort_*
// gauges when an observer is attached (SetObserver); this accessor
// remains for callers that read them programmatically.
func (g *Globalizer) AmortStats() AmortStats { return g.amort.stats }

// amortizer is the per-stream amortization state, reset with the rest
// of the stream state by Globalizer.Reset.
type amortizer struct {
	embeds *embedCache
	// states32 caches per-sentence f32 re-embeds for the i8 tier's
	// global phase (see mentionStates).
	states32 *state32Cache
	// scans caches each sentence's mention-extraction result against
	// the trie state it was last scanned with.
	scans map[types.SentenceKey][]types.Mention
	// toksets caches each sentence's case-folded token set, the input
	// of the rescan filter.
	toksets map[types.SentenceKey]map[string]bool
	// tokIndex inverts toksets: case-folded token → the sentences
	// containing it, in stream order. The rescan filter reads it to
	// find the sentences a new surface form's first token could touch,
	// instead of testing every cached sentence per cycle.
	tokIndex map[string][]types.SentenceKey
	// scannedLen is the stream length after the last rescan pass.
	// Records are append-only, so keys at positions beyond it are
	// exactly the sentences no pass has scanned yet.
	scannedLen int
	// surfaces caches per-surface outcomes across cycles.
	surfaces map[string]*surfaceAmort
	// pools mirrors mention.GroupBySurface over the whole stream — each
	// owned surface's mentions ordered by (stream index, span) — but is
	// maintained incrementally from scan diffs instead of being rebuilt
	// per cycle, so steady-state cycle cost tracks what changed, not
	// stream length. Unowned surfaces (sharded fleets) are never pooled.
	pools map[string][]types.Mention
	// dirty marks surfaces whose pool changed since their outcome was
	// last computed.
	dirty map[string]bool
	// finalDirty marks sentences whose FinalMentions must be rebuilt
	// this cycle (their scan or one of their surfaces' outcomes moved).
	finalDirty map[types.SentenceKey]bool
	// mentionCount tracks the stream's total mention count (all
	// surfaces, owned or not) for observability.
	mentionCount int
	// trieLen is the trie size the bookkeeping last saw. A mismatch
	// beyond this cycle's registrations means surfaces were inserted
	// outside the amortized path (cache-off cycles, ModeLocalOnly
	// cycles, another engine) and the first-token filter cannot be
	// trusted — the cycle falls back to a full rescan, which the diffs
	// then repair exactly.
	trieLen int
	// stale records that stream outputs (FinalMentions, CandidateBase)
	// were last written outside the amortized path, so the next
	// amortized cycle must republish candidates and rebuild every
	// sentence's FinalMentions from its (pool-validated) outcomes.
	stale bool
	// lastMode guards the outcome cache against mode switches between
	// cycles (outcomes encode the mode they were computed at).
	lastMode Mode
	haveMode bool
	// stats describes the most recent cycle's cache activity.
	stats AmortStats
}

func newAmortizer() *amortizer {
	return &amortizer{
		embeds:     newEmbedCache(),
		states32:   newState32Cache(),
		scans:      make(map[types.SentenceKey][]types.Mention),
		toksets:    make(map[types.SentenceKey]map[string]bool),
		tokIndex:   make(map[string][]types.SentenceKey),
		surfaces:   make(map[string]*surfaceAmort),
		pools:      make(map[string][]types.Mention),
		dirty:      make(map[string]bool),
		finalDirty: make(map[types.SentenceKey]bool),
	}
}

// markStale notes that a cycle ran outside the amortized path (caching
// disabled) and wrote FinalMentions and the CandidateBase directly.
func (a *amortizer) markStale() { a.stale = true }

// invalidateSentence forgets everything derived from one sentence.
// Used when a record is replaced in the TweetBase — a pathological
// case (stream keys are unique by construction), handled by dropping
// every derived structure: the replaced sentence's embeddings may back
// arbitrary surfaces, and the mention pools index into a stream whose
// content changed. The next amortized cycle rescans everything and
// rebuilds the pools from empty.
func (a *amortizer) invalidateSentence(key types.SentenceKey) {
	a.embeds.drop(key)
	a.states32.drop(key)
	a.scans = make(map[types.SentenceKey][]types.Mention)
	a.toksets = make(map[types.SentenceKey]map[string]bool)
	a.tokIndex = make(map[string][]types.SentenceKey)
	a.scannedLen = 0
	a.surfaces = make(map[string]*surfaceAmort)
	a.pools = make(map[string][]types.Mention)
	a.dirty = make(map[string]bool)
	a.mentionCount = 0
	a.stale = true
}

// rescanPass refreshes the scan cache for one cycle, byte-identical to
// scanning every sentence against the full trie, while actually
// re-scanning only (a) this cycle's batch and (b) old sentences that
// could match a surface the trie gained this cycle.
//
// The filter is conservative and therefore exact: a cached sentence's
// scan can only change if a newly registered surface form occurs
// verbatim (case-folded) in it, which requires the surface's first
// token to be among the sentence's tokens. Sentences failing that
// membership test reuse their cached result; sentences passing it are
// re-scanned (often to an unchanged result, which refreshes the cache
// harmlessly). When the trie grew outside this cycle's registrations
// (cache-off or local-only cycles ran in between), the filter's input
// is incomplete and every sentence re-scans.
//
// Every scan that actually changed is diffed against its predecessor,
// splicing the per-surface mention pools and marking the touched
// surfaces dirty — the bookkeeping the incremental global phase runs
// on.
func (a *amortizer) rescanPass(g *Globalizer, batch []*types.Sentence, newSurfaces [][]string) {
	first := make(map[string]bool, len(newSurfaces))
	for _, toks := range newSurfaces {
		first[strings.ToLower(toks[0])] = true
	}
	rescanAll := a.stale || g.trie.Len() != a.trieLen+len(newSurfaces)
	a.stats.Sentences = g.tweetBase.Len()

	// Candidate set: never-scanned sentences (the append-only tail —
	// this cycle's batch, plus anything a local-only cycle added) and
	// cached sentences whose token set contains a new surface's first
	// token, read off the inverted index. Sorted back into stream
	// order so diffs apply in the order the old full walk used.
	var cands []types.SentenceKey
	if rescanAll {
		cands = g.tweetBase.Keys()
	} else {
		cands = g.tweetBase.KeysFrom(a.scannedLen)
		if len(first) > 0 {
			seen := make(map[types.SentenceKey]bool, len(cands))
			for _, k := range cands {
				seen[k] = true
			}
			for f := range first {
				for _, k := range a.tokIndex[f] {
					if !seen[k] {
						seen[k] = true
						cands = append(cands, k)
					}
				}
			}
			sort.Slice(cands, func(i, j int) bool {
				return g.tweetBase.IndexOf(cands[i]) < g.tweetBase.IndexOf(cands[j])
			})
		}
	}
	a.stats.Rescanned = len(cands)

	// Re-scans shard over the pool (the frozen trie is read-only);
	// cached sentences keep their stored result. Results land at the
	// candidate's own index, so stream order is preserved.
	scanned := parallel.MapOrdered(g.pool, len(cands), func(i int) []types.Mention {
		r := g.tweetBase.Get(cands[i])
		return mention.Extract(r.Sentence, g.trie, r.LocalEntities)
	})

	for i, key := range cands {
		old := a.scans[key]
		if !mentionsEqual(old, scanned[i]) {
			a.applyScanDiff(g, key, old, scanned[i])
			a.mentionCount += len(scanned[i]) - len(old)
		}
		a.scans[key] = scanned[i]
		if _, ok := a.toksets[key]; !ok {
			r := g.tweetBase.Get(key)
			set := make(map[string]bool, len(r.Sentence.Tokens))
			for _, t := range r.Sentence.Tokens {
				if lt := strings.ToLower(t); !set[lt] {
					set[lt] = true
					a.tokIndex[lt] = append(a.tokIndex[lt], key)
				}
			}
			a.toksets[key] = set
		}
	}
	a.scannedLen = g.tweetBase.Len()
	a.trieLen = g.trie.Len()
}

// extract returns the mention-extraction result over the whole
// accumulated stream in stream order. The ablation modes and direct
// callers consume this flat view; the ModeFull serving path skips the
// concatenation and works from the incrementally maintained pools.
func (a *amortizer) extract(g *Globalizer, batch []*types.Sentence, newSurfaces [][]string) []types.Mention {
	a.rescanPass(g, batch, newSurfaces)
	var out []types.Mention
	for _, key := range g.tweetBase.Keys() {
		out = append(out, a.scans[key]...)
	}
	return out
}

// groupScan splits one sentence's scan result by surface form,
// preserving span order within each surface.
func groupScan(ms []types.Mention) map[string][]types.Mention {
	if len(ms) == 0 {
		return nil
	}
	out := make(map[string][]types.Mention, 4)
	for _, m := range ms {
		out[m.Surface] = append(out[m.Surface], m)
	}
	return out
}

// applyScanDiff reconciles the mention pools with one sentence's
// changed scan: every owned surface whose contribution from this
// sentence differs gets its pool spliced and is marked dirty.
func (a *amortizer) applyScanDiff(g *Globalizer, key types.SentenceKey, old, cur []types.Mention) {
	oldBy := groupScan(old)
	curBy := groupScan(cur)
	for s, oms := range oldBy {
		if !g.ownsSurface(s) {
			continue
		}
		if !mentionsEqual(oms, curBy[s]) && a.splicePool(g, s, key, curBy[s]) {
			a.dirty[s] = true
		}
	}
	for s, cms := range curBy {
		if _, seen := oldBy[s]; seen || !g.ownsSurface(s) {
			continue
		}
		if a.splicePool(g, s, key, cms) {
			a.dirty[s] = true
		}
	}
}

// splicePool replaces one sentence's contribution to a surface's
// mention pool, preserving the pool's (stream index, span) order, and
// reports whether the pool changed. Appends at the tail extend the
// slice in place — safe because cached surfaceAmort prefixes are never
// overwritten, only extended past their length — while interior
// splices copy into a fresh slice so cached prefixes keep their bytes.
func (a *amortizer) splicePool(g *Globalizer, surface string, key types.SentenceKey, repl []types.Mention) bool {
	pool := a.pools[surface]
	idx := g.tweetBase.IndexOf(key)
	lo := sort.Search(len(pool), func(i int) bool {
		return g.tweetBase.IndexOf(pool[i].Key) >= idx
	})
	hi := lo
	for hi < len(pool) && pool[hi].Key == key {
		hi++
	}
	if mentionsEqual(pool[lo:hi], repl) {
		return false
	}
	if lo == len(pool) {
		a.pools[surface] = append(pool, repl...)
		return true
	}
	np := make([]types.Mention, 0, len(pool)-(hi-lo)+len(repl))
	np = append(np, pool[:lo]...)
	np = append(np, repl...)
	np = append(np, pool[hi:]...)
	a.pools[surface] = np
	return true
}

// typedBySentence splits a surface outcome's typed mentions by
// sentence, preserving the outcome's order within each.
func typedBySentence(typed []types.Mention) map[types.SentenceKey][]types.Mention {
	if len(typed) == 0 {
		return nil
	}
	out := make(map[types.SentenceKey][]types.Mention, 8)
	for _, m := range typed {
		out[m.Key] = append(out[m.Key], m)
	}
	return out
}

// markTypedDiff marks every sentence whose typed mentions differ
// between two outcomes of one surface.
func markTypedDiff(dst map[types.SentenceKey]bool, old, cur map[types.SentenceKey][]types.Mention) {
	for key, oms := range old {
		if !mentionsEqual(oms, cur[key]) {
			dst[key] = true
		}
	}
	for key := range cur {
		if _, seen := old[key]; !seen {
			dst[key] = true
		}
	}
}

// rebuildFinal reassembles one sentence's FinalMentions from the
// cached outcomes of the surfaces its scan mentions — ascending
// surface order, each surface's mentions in pool order — which is
// exactly the order the full rebuild produces.
func (a *amortizer) rebuildFinal(key types.SentenceKey) []types.Mention {
	scan := a.scans[key]
	if len(scan) == 0 {
		return nil
	}
	surfs := make([]string, 0, 4)
	for _, m := range scan {
		dup := false
		for _, s := range surfs {
			if s == m.Surface {
				dup = true
				break
			}
		}
		if !dup {
			surfs = append(surfs, m.Surface)
		}
	}
	sort.Strings(surfs)
	var out []types.Mention
	for _, s := range surfs {
		if sa := a.surfaces[s]; sa != nil {
			out = append(out, sa.typedBySent[key]...)
		}
	}
	return out
}

// mentionsPrefix reports whether old is a prefix of cur — the "pool
// only grew" case whose embeddings and distance matrix can be reused.
func mentionsPrefix(old, cur []types.Mention) bool {
	if len(old) > len(cur) {
		return false
	}
	for i, m := range old {
		if cur[i] != m {
			return false
		}
	}
	return true
}

func mentionsEqual(a, b []types.Mention) bool {
	return len(a) == len(b) && mentionsPrefix(a, b)
}

// amortizedGlobalPhase is globalPhase with cross-cycle reuse, run
// incrementally: cached scans feed the rescan filter, scan diffs
// splice the per-surface mention pools, only pool-changed (dirty)
// surfaces recompute — reusing embedding and distance-matrix prefixes
// when their pool only grew — and only sentences whose typed mentions
// actually moved get their FinalMentions rebuilt. Steady-state cycle
// cost is proportional to what changed, not to stream length, yet the
// observable output (FinalMentions, CandidateBase) is byte-identical
// to the uncached full recomputation.
func (g *Globalizer) amortizedGlobalPhase(batch []*types.Sentence, newSurfaces [][]string, mode Mode, tr *obs.Trace) {
	a := g.amort
	stale := a.stale
	if a.haveMode && a.lastMode != mode {
		// Outcomes encode the mode they were computed at: drop them all
		// and rebuild every surface and sentence this cycle. Embeddings
		// are mode-independent and survive in the embed cache.
		a.surfaces = make(map[string]*surfaceAmort)
		for s := range a.pools {
			a.dirty[s] = true
		}
		stale = true
	}
	a.lastMode, a.haveMode = mode, true

	if mode == ModeMentionExtraction {
		// The majority-vote ablation has no per-surface outcome state; it
		// rewrites every FinalMention each cycle from the flat mention
		// view, and publishes no candidates.
		t0 := g.o.now()
		mentions := a.extract(g, batch, newSurfaces)
		g.o.extractDone(tr, t0, len(mentions), a.stats.Rescanned, a.stats.Sentences-a.stats.Rescanned)
		g.candBase = stream.NewCandidateBase()
		g.assignMajorityTypes(mentions)
		g.o.publishAmort(a.stats)
		a.stale = false
		return
	}

	t0 := g.o.now()
	a.rescanPass(g, batch, newSurfaces)
	g.o.extractDone(tr, t0, a.mentionCount, a.stats.Rescanned, a.stats.Sentences-a.stats.Rescanned)

	if stale {
		// Candidates were last published outside this path (or at another
		// mode): start from an empty base and republish every cached
		// outcome below, after the dirty recomputations land.
		g.candBase = stream.NewCandidateBase()
	}

	// Surfaces whose pool emptied (a late longer surface shadowing every
	// match) disappear from every output.
	var dirtySurfaces []string
	for s := range a.dirty {
		delete(a.dirty, s)
		if len(a.pools[s]) == 0 {
			if sa := a.surfaces[s]; sa != nil {
				markTypedDiff(a.finalDirty, sa.typedBySent, nil)
			}
			delete(a.surfaces, s)
			delete(a.pools, s)
			g.candBase.Delete(s)
			continue
		}
		dirtySurfaces = append(dirtySurfaces, s)
	}
	sort.Strings(dirtySurfaces)
	a.stats.Surfaces = len(a.pools)
	a.stats.Reused = len(a.pools) - len(dirtySurfaces)

	// Dirty surfaces fan out one per worker exactly like globalPhase;
	// each worker touches only its own surface's cached state. The old
	// typed views are captured first so the serial merge below can diff
	// them (updateSurface mutates the cached entry in place on the
	// append-only path).
	oldTyped := make([]map[types.SentenceKey][]types.Mention, len(dirtySurfaces))
	for i, s := range dirtySurfaces {
		if sa := a.surfaces[s]; sa != nil {
			oldTyped[i] = sa.typedBySent
		}
	}
	ts := g.o.now()
	updated := parallel.MapOrdered(g.pool, len(dirtySurfaces), func(si int) *surfaceAmort {
		surface := dirtySurfaces[si]
		return g.updateSurface(a.surfaces[surface], surface, a.pools[surface], mode)
	})
	g.o.surfacesDone(tr, ts, a.stats.Surfaces, a.stats.Reused)
	g.o.publishAmort(a.stats)

	for si, sa := range updated {
		surface := dirtySurfaces[si]
		newTyped := typedBySentence(sa.outcome.typed)
		markTypedDiff(a.finalDirty, oldTyped[si], newTyped)
		sa.typedBySent = newTyped
		a.surfaces[surface] = sa
		if sa.outcome.skip {
			g.candBase.Delete(surface)
		} else {
			g.candBase.SetClusters(surface, sa.outcome.cands)
		}
	}

	if stale {
		// Republish clean outcomes into the fresh candidate base. Order
		// is irrelevant: surfaces are distinct keys.
		for s, sa := range a.surfaces {
			if !a.dirtyContains(dirtySurfaces, s) && !sa.outcome.skip {
				g.candBase.SetClusters(s, sa.outcome.cands)
			}
		}
		g.tweetBase.Each(func(r *stream.Record) {
			r.FinalMentions = a.rebuildFinal(r.Sentence.Key())
		})
		clear(a.finalDirty)
		a.stale = false
		return
	}

	for key := range a.finalDirty {
		delete(a.finalDirty, key)
		if rec := g.tweetBase.Get(key); rec != nil {
			rec.FinalMentions = a.rebuildFinal(key)
		}
	}
}

// dirtyContains reports whether surface is in the sorted dirty list.
func (a *amortizer) dirtyContains(sorted []string, surface string) bool {
	i := sort.SearchStrings(sorted, surface)
	return i < len(sorted) && sorted[i] == surface
}

// updateSurface recomputes one dirty surface. A pool that grew by
// appending keeps its embedding prefix and distance matrix; a pool
// whose earlier mentions changed (a late-arriving longer surface
// re-shaped an old sentence's scan) rebuilds from the embedding cache,
// which still spares the per-mention encoder work.
func (g *Globalizer) updateSurface(sa *surfaceAmort, surface string, ms []types.Mention, mode Mode) *surfaceAmort {
	if sa == nil || !mentionsPrefix(sa.mentions, ms) {
		sa = &surfaceAmort{dist: cluster.NewDistMatrix(), ccache: make(map[string]*clusterVerdict)}
	}
	sa.mentions = ms
	if g.lacksLocalSupport(ms) {
		sa.outcome = surfaceOutcome{surface: surface, skip: true}
		return sa
	}
	o := g.o
	te := o.now()
	for i := len(sa.embs); i < len(ms); i++ {
		sa.embs = append(sa.embs, g.embedMention(ms[i]))
	}
	if o != nil {
		o.stageEmbed.Observe(time.Since(te).Seconds())
	}
	var clustering cluster.Result
	if mode != ModeLocalEmbeddings {
		tc := o.now()
		sa.dist.Grow(sa.embs, g.pool)
		clustering = sa.dist.Cluster(g.cfg.ClusterThreshold, cluster.AverageLinkage)
		o.clusteringDone(tc, len(ms), clustering.Count)
	}
	sa.outcome = g.outcomeFromEmbeddings(surface, ms, sa.embs, mode, clustering, sa.ccache)
	return sa
}
