package core

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"nerglobalizer/internal/cluster"
	"nerglobalizer/internal/mention"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/obs"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// This file implements the cross-cycle amortization layer of the
// continuous execution setup. ProcessBatch re-runs Global NER over the
// accumulated stream every cycle, so without amortization the per-cycle
// cost grows with stream length even when almost nothing changed. The
// layer never recomputes work whose inputs did not change:
//
//   - an embedding cache runs phrase pooling + the Phrase Embedder once
//     per (sentence, span) ever;
//   - a scan cache skips re-scanning old sentences unless the CTrie
//     gained a surface form that could match them (token-membership
//     filter on the new surfaces' first tokens);
//   - dirty-surface tracking re-clusters and re-classifies only surface
//     forms whose mention pool changed this cycle, with a growable
//     pristine distance matrix that appends rows for new mentions
//     instead of recomputing the full N×N block.
//
// The invariant: annotations are byte-identical with caching on or off,
// at every worker count. Every cache is keyed by the exact inputs of
// the computation it skips, and every skipped recomputation is a pure
// function of those inputs (trained parameters are frozen during
// serving). Config.DisableCache switches the layer off wholesale.

// embedCache memoizes local mention embeddings (eqs. 1–3) by
// (sentence, span). Entries are immutable once stored — consumers only
// read the vectors — so one embedding is computed per mention ever,
// no matter how many cycles re-visit its surface form. The two-level
// keying makes whole-sentence invalidation cheap.
type embedCache struct {
	mu sync.RWMutex
	m  map[types.SentenceKey]map[types.Span][]float64
}

func newEmbedCache() *embedCache {
	return &embedCache{m: make(map[types.SentenceKey]map[types.Span][]float64)}
}

// get returns the cached embedding for the mention, computing and
// storing it on first use. Concurrent callers may compute the same
// entry twice; both compute identical values, so the race is benign.
func (c *embedCache) get(g *Globalizer, m types.Mention) []float64 {
	c.mu.RLock()
	v := c.m[m.Key][m.Span]
	c.mu.RUnlock()
	if v != nil {
		if g.o != nil {
			g.o.embedCacheHits.Inc()
		}
		return v
	}
	if g.o != nil {
		g.o.mentionsEmbedded.Inc()
	}
	rec := g.tweetBase.Get(m.Key)
	v = g.Embedder.Embed(g.mentionStates(rec), m.Span)
	c.mu.Lock()
	bySpan := c.m[m.Key]
	if bySpan == nil {
		bySpan = make(map[types.Span][]float64)
		c.m[m.Key] = bySpan
	}
	bySpan[m.Span] = v
	c.mu.Unlock()
	return v
}

// drop forgets every embedding of one sentence.
func (c *embedCache) drop(key types.SentenceKey) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// state32Cache memoizes the float32-grade token states the i8 tier's
// global phase pools mention embeddings from — one re-embed per
// mentioned sentence ever (see Globalizer.mentionStates for why the
// i8 tier re-embeds). Like embedCache, concurrent first computations
// of the same entry are benign: both produce identical matrices.
type state32Cache struct {
	mu sync.RWMutex
	m  map[types.SentenceKey]*nn.Matrix
}

func newState32Cache() *state32Cache {
	return &state32Cache{m: make(map[types.SentenceKey]*nn.Matrix)}
}

func (c *state32Cache) get(g *Globalizer, rec *stream.Record) *nn.Matrix {
	key := rec.Sentence.Key()
	c.mu.RLock()
	v := c.m[key]
	c.mu.RUnlock()
	if v != nil {
		return v
	}
	v = g.Tagger.EmbedAt(rec.Sentence.Tokens, nn.F32)
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
	return v
}

func (c *state32Cache) drop(key types.SentenceKey) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// mentionStates returns the token states mention embeddings pool over
// (eqs. 1–2) for one sentence. At f64 and f32 these are the
// local-phase encoder outputs stored on the record. At i8 the
// sentence is lazily re-embedded at f32: quantized weights shift
// mention embeddings by ~1.5e-2 in cosine distance, far above the
// ~1e-4 near-tie margins that decide average-linkage merge order, so
// clustering — and with it candidate identity — would diverge from
// the exact path. Re-embedding only the mentioned sentences keeps the
// tagging hot path fully quantized while the global phase sees
// f32-grade geometry, the same scope tuning the Phrase Embedder
// applies to its dense layer (phrase.SetPrecision). With caching on a
// sentence is re-embedded once ever; with caching off it is
// recomputed per mention, like every other cache-off computation.
func (g *Globalizer) mentionStates(rec *stream.Record) *nn.Matrix {
	if g.Precision() != nn.I8 {
		return rec.Embeddings
	}
	if g.cfg.DisableCache {
		return g.Tagger.EmbedAt(rec.Sentence.Tokens, nn.F32)
	}
	return g.amort.states32.get(g, rec)
}

// embedMention returns the local mention embedding, through the cache
// unless caching is disabled.
func (g *Globalizer) embedMention(m types.Mention) []float64 {
	if g.cfg.DisableCache {
		if g.o != nil {
			g.o.mentionsEmbedded.Inc()
		}
		rec := g.tweetBase.Get(m.Key)
		return g.Embedder.Embed(g.mentionStates(rec), m.Span)
	}
	return g.amort.embeds.get(g, m)
}

// surfaceAmort is the cached Global NER state of one surface form: its
// mention pool in stream order, the pool's embeddings and pristine
// distance matrix, and the finished outcome (candidate clusters plus
// typed mentions). The outcome is valid exactly while the mention pool
// is unchanged; a pool that grew by appending reuses the embedding and
// distance prefixes.
type surfaceAmort struct {
	mentions []types.Mention
	embs     [][]float64
	dist     *cluster.DistMatrix
	outcome  surfaceOutcome
	// ccache memoizes step-4 cluster verdicts by membership signature;
	// valid only while the pool keeps its prefix (indices identify the
	// same mentions), so it resets together with embs/dist.
	ccache map[string]*clusterVerdict
}

// clusterVerdict is the cached step-4 result of one candidate cluster:
// its pooled global embedding and the ensemble's decision. Entries are
// immutable once stored.
type clusterVerdict struct {
	globalEmb []float64
	et        types.EntityType
	conf      float64
}

// clusterKey builds the membership signature of a cluster from its
// member indices (ascending by construction of Members).
func clusterKey(idxs []int) string {
	var b strings.Builder
	for _, i := range idxs {
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(',')
	}
	return b.String()
}

// AmortStats summarizes cache activity in the most recent amortized
// cycle: how many of the stream's sentences were actually re-scanned,
// and how many surface forms returned their cached outcome untouched.
// Purely observational — useful for tests, benchmarks and operations.
type AmortStats struct {
	// Sentences is the accumulated stream length; Rescanned of those
	// went through a fresh trie scan this cycle.
	Sentences, Rescanned int
	// Surfaces is the number of surface forms processed; Reused of
	// those returned their cached outcome without recomputation.
	Surfaces, Reused int
}

// AmortStats returns the cache activity of the most recent amortized
// cycle (zero when caching is disabled or no cycle ran yet). The same
// numbers live on the observability registry as the ner_amort_*
// gauges when an observer is attached (SetObserver); this accessor
// remains for callers that read them programmatically.
func (g *Globalizer) AmortStats() AmortStats { return g.amort.stats }

// amortizer is the per-stream amortization state, reset with the rest
// of the stream state by Globalizer.Reset.
type amortizer struct {
	embeds *embedCache
	// states32 caches per-sentence f32 re-embeds for the i8 tier's
	// global phase (see mentionStates).
	states32 *state32Cache
	// scans caches each sentence's mention-extraction result against
	// the trie state it was last scanned with.
	scans map[types.SentenceKey][]types.Mention
	// toksets caches each sentence's case-folded token set, the input
	// of the rescan filter.
	toksets map[types.SentenceKey]map[string]bool
	// surfaces caches per-surface outcomes across cycles.
	surfaces map[string]*surfaceAmort
	// lastMode guards the outcome cache against mode switches between
	// cycles (outcomes encode the mode they were computed at).
	lastMode Mode
	haveMode bool
	// stats describes the most recent cycle's cache activity.
	stats AmortStats
}

func newAmortizer() *amortizer {
	return &amortizer{
		embeds:   newEmbedCache(),
		states32: newState32Cache(),
		scans:    make(map[types.SentenceKey][]types.Mention),
		toksets:  make(map[types.SentenceKey]map[string]bool),
		surfaces: make(map[string]*surfaceAmort),
	}
}

// invalidateSentence forgets everything derived from one sentence.
// Used when a record is replaced in the TweetBase — a pathological
// case (stream keys are unique by construction), handled by dropping
// the per-sentence caches and every surface outcome, since the
// replaced sentence's embeddings may back arbitrary surfaces.
func (a *amortizer) invalidateSentence(key types.SentenceKey) {
	a.embeds.drop(key)
	a.states32.drop(key)
	delete(a.scans, key)
	delete(a.toksets, key)
	a.surfaces = make(map[string]*surfaceAmort)
}

// extract returns the mention-extraction result over the whole
// accumulated stream, byte-identical to scanning every sentence
// against the full trie, while actually re-scanning only (a) this
// cycle's batch and (b) old sentences that could match a surface the
// trie gained this cycle.
//
// The filter is conservative and therefore exact: a cached sentence's
// scan can only change if a newly registered surface form occurs
// verbatim (case-folded) in it, which requires the surface's first
// token to be among the sentence's tokens. Sentences failing that
// membership test reuse their cached result; sentences passing it are
// re-scanned (often to an unchanged result, which refreshes the cache
// harmlessly).
func (a *amortizer) extract(g *Globalizer, batch []*types.Sentence, newSurfaces [][]string) []types.Mention {
	inBatch := make(map[types.SentenceKey]bool, len(batch))
	for _, s := range batch {
		inBatch[s.Key()] = true
	}
	first := make(map[string]bool, len(newSurfaces))
	for _, toks := range newSurfaces {
		first[strings.ToLower(toks[0])] = true
	}

	records := g.tweetBase.Records()
	rescan := make([]bool, len(records))
	for i, r := range records {
		key := r.Sentence.Key()
		if inBatch[key] {
			rescan[i] = true
			continue
		}
		if _, ok := a.scans[key]; !ok {
			rescan[i] = true
			continue
		}
		set := a.toksets[key]
		for f := range first {
			if set[f] {
				rescan[i] = true
				break
			}
		}
	}
	a.stats.Sentences = len(records)
	a.stats.Rescanned = 0
	for _, r := range rescan {
		if r {
			a.stats.Rescanned++
		}
	}

	// Re-scans shard over the pool (the frozen trie is read-only);
	// cached sentences return their stored result. Results land at the
	// sentence's own index, so concatenation preserves stream order.
	scanned := parallel.MapOrdered(g.pool, len(records), func(i int) []types.Mention {
		r := records[i]
		if !rescan[i] {
			return a.scans[r.Sentence.Key()]
		}
		return mention.Extract(r.Sentence, g.trie, r.LocalEntities)
	})

	var out []types.Mention
	for i, r := range records {
		key := r.Sentence.Key()
		if rescan[i] {
			a.scans[key] = scanned[i]
			if _, ok := a.toksets[key]; !ok {
				set := make(map[string]bool, len(r.Sentence.Tokens))
				for _, t := range r.Sentence.Tokens {
					set[strings.ToLower(t)] = true
				}
				a.toksets[key] = set
			}
		}
		out = append(out, scanned[i]...)
	}
	return out
}

// mentionsPrefix reports whether old is a prefix of cur — the "pool
// only grew" case whose embeddings and distance matrix can be reused.
func mentionsPrefix(old, cur []types.Mention) bool {
	if len(old) > len(cur) {
		return false
	}
	for i, m := range old {
		if cur[i] != m {
			return false
		}
	}
	return true
}

func mentionsEqual(a, b []types.Mention) bool {
	return len(a) == len(b) && mentionsPrefix(a, b)
}

// amortizedGlobalPhase is globalPhase with cross-cycle reuse: cached
// scans feed mention extraction, clean surfaces return their cached
// outcome, and dirty surfaces recompute — reusing embedding and
// distance-matrix prefixes when their pool only grew.
func (g *Globalizer) amortizedGlobalPhase(batch []*types.Sentence, newSurfaces [][]string, mode Mode, tr *obs.Trace) {
	a := g.amort
	if a.haveMode && a.lastMode != mode {
		a.surfaces = make(map[string]*surfaceAmort)
	}
	a.lastMode, a.haveMode = mode, true

	t0 := g.o.now()
	mentions := a.extract(g, batch, newSurfaces)
	g.o.extractDone(tr, t0, len(mentions), a.stats.Rescanned, a.stats.Sentences-a.stats.Rescanned)

	if mode == ModeMentionExtraction {
		g.assignMajorityTypes(mentions)
		g.o.publishAmort(a.stats)
		return
	}

	// Surfaces fan out one per worker exactly like globalPhase; each
	// worker touches only its own surface's cached state, and the map of
	// cached surfaces is read-only until the serial merge below. The
	// clean/dirty split is decided serially first (a cheap walk over the
	// mention pools) so the stats reflect it exactly.
	groups := mention.GroupBySurface(mentions)
	surfaces := sortedKeys(groups)
	clean := make([]bool, len(surfaces))
	a.stats.Surfaces = len(surfaces)
	a.stats.Reused = 0
	for si, surface := range surfaces {
		if sa := a.surfaces[surface]; sa != nil && mentionsEqual(sa.mentions, groups[surface]) {
			clean[si] = true
			a.stats.Reused++
		}
	}
	ts := g.o.now()
	updated := parallel.MapOrdered(g.pool, len(surfaces), func(si int) *surfaceAmort {
		surface := surfaces[si]
		if clean[si] {
			return a.surfaces[surface]
		}
		return g.updateSurface(a.surfaces[surface], surface, groups[surface], mode)
	})
	g.o.surfacesDone(tr, ts, len(surfaces), a.stats.Reused)
	g.o.publishAmort(a.stats)

	finalBySent := make(map[types.SentenceKey][]types.Mention)
	for si, sa := range updated {
		a.surfaces[surfaces[si]] = sa
		oc := sa.outcome
		if oc.skip {
			continue
		}
		g.candBase.SetClusters(oc.surface, oc.cands)
		for _, m := range oc.typed {
			finalBySent[m.Key] = append(finalBySent[m.Key], m)
		}
	}
	g.tweetBase.Each(func(r *stream.Record) {
		r.FinalMentions = finalBySent[r.Sentence.Key()]
	})
}

// updateSurface recomputes one dirty surface. A pool that grew by
// appending keeps its embedding prefix and distance matrix; a pool
// whose earlier mentions changed (a late-arriving longer surface
// re-shaped an old sentence's scan) rebuilds from the embedding cache,
// which still spares the per-mention encoder work.
func (g *Globalizer) updateSurface(sa *surfaceAmort, surface string, ms []types.Mention, mode Mode) *surfaceAmort {
	if sa == nil || !mentionsPrefix(sa.mentions, ms) {
		sa = &surfaceAmort{dist: cluster.NewDistMatrix(), ccache: make(map[string]*clusterVerdict)}
	}
	sa.mentions = ms
	if g.lacksLocalSupport(ms) {
		sa.outcome = surfaceOutcome{surface: surface, skip: true}
		return sa
	}
	o := g.o
	te := o.now()
	for i := len(sa.embs); i < len(ms); i++ {
		sa.embs = append(sa.embs, g.embedMention(ms[i]))
	}
	if o != nil {
		o.stageEmbed.Observe(time.Since(te).Seconds())
	}
	var clustering cluster.Result
	if mode != ModeLocalEmbeddings {
		tc := o.now()
		sa.dist.Grow(sa.embs, g.pool)
		clustering = sa.dist.Cluster(g.cfg.ClusterThreshold, cluster.AverageLinkage)
		o.clusteringDone(tc, len(ms), clustering.Count)
	}
	sa.outcome = g.outcomeFromEmbeddings(surface, ms, sa.embs, mode, clustering, sa.ccache)
	return sa
}
