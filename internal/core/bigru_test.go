package core

import (
	"testing"

	"nerglobalizer/internal/metrics"
)

// TestBiGRUPipelineEndToEnd exercises the full pipeline with the
// recurrent Local NER encoder: the Global NER stage is decoupled from
// the language-model choice (Section I's second contribution), so the
// whole system must train and improve with a BiGRU just as it does
// with the Transformer.
func TestBiGRUPipelineEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.Kind = EncoderBiGRU
	g := New(cfg)
	if losses := g.PretrainEncoder(nil); losses != nil {
		t.Fatal("masked-LM pre-training must be a no-op for the BiGRU")
	}
	g.FineTuneLocal(trainStream("btrain", 600, 3, false, 122).Sentences)
	g.TrainGlobal(trainStream("bd5", 600, 2, true, 123).Sentences)

	test := smallStream("btest", 200, 131)
	res := g.Run(test.Sentences, ModeFull)
	gold := test.GoldByKey()
	local := metrics.Evaluate(gold, res.Local).MacroF1()
	full := metrics.Evaluate(gold, res.Final).MacroF1()
	t.Logf("BiGRU pipeline: local=%.3f full=%.3f candidates=%d", local, full, res.Candidates)
	if local <= 0 {
		t.Fatal("BiGRU local NER produced no signal")
	}
	if res.Candidates == 0 {
		t.Fatal("no candidate clusters formed")
	}
	if full < local-0.03 {
		t.Fatalf("Global NER clearly degraded the BiGRU pipeline: %.3f vs %.3f", full, local)
	}
}

func TestEncoderKindStrings(t *testing.T) {
	if EncoderTransformer.String() != "transformer" || EncoderBiGRU.String() != "bigru" {
		t.Fatal("encoder kind names wrong")
	}
}
