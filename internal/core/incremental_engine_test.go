package core

import (
	"testing"

	"nerglobalizer/internal/metrics"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

func TestIncrementalEngineCycles(t *testing.T) {
	g := trainedGlobalizer(t)
	test := smallStream("inceng", 160, 81)
	inc := NewIncremental(g)
	batches := stream.Batches(test.Sentences, 40)

	var final map[types.SentenceKey][]types.Entity
	for i, b := range batches {
		final = inc.Cycle(b)
		if len(final) != (i+1)*40 {
			t.Fatalf("cycle %d covers %d sentences", i, len(final))
		}
	}
	// Outputs must be well-formed: valid non-overlapping spans, no
	// None types.
	for _, s := range test.Sentences {
		ents := final[s.Key()]
		end := 0
		for _, e := range ents {
			if e.Start < end || e.End > len(s.Tokens) || e.Start >= e.End || e.Type == types.None {
				t.Fatalf("ill-formed incremental output %+v in %v", e, s.Tokens)
			}
			end = e.End
		}
	}
}

func TestIncrementalEngineTracksBatchQuality(t *testing.T) {
	// The incremental engine's final output should score close to the
	// batch recomputation on the same stream (greedy clustering may
	// deviate slightly).
	g := trainedGlobalizer(t)
	test := smallStream("inceng2", 200, 83)
	gold := test.GoldByKey()

	inc := NewIncremental(g)
	var final map[types.SentenceKey][]types.Entity
	for _, b := range stream.Batches(test.Sentences, 50) {
		final = inc.Cycle(b)
	}
	incF1 := metrics.Evaluate(gold, final).MacroF1()

	batchRes := g.Run(test.Sentences, ModeFull)
	batchF1 := metrics.Evaluate(gold, batchRes.Final).MacroF1()
	t.Logf("macro-F1: incremental=%.3f batch=%.3f", incF1, batchF1)
	if incF1 < batchF1-0.12 {
		t.Fatalf("incremental engine too far below batch: %.3f vs %.3f", incF1, batchF1)
	}
}

func TestIncrementalEngineBackMinesNewSurfaces(t *testing.T) {
	// A surface first detected in cycle 2 must have its cycle-1
	// occurrences recovered by back-mining.
	g := trainedGlobalizer(t)
	inc := NewIncremental(g)
	early := &types.Sentence{TweetID: 1, Tokens: []string{"brunfel", "lol"}}
	inc.Cycle([]*types.Sentence{early})
	// "Brunfel" in an informative context: likely locally detected
	// here, seeding the surface.
	late := &types.Sentence{TweetID: 2, Tokens: []string{"governor", "Brunfel", "gives", "an", "update"}}
	inc.Cycle([]*types.Sentence{late})
	ms := inc.mentions["brunfel"]
	keys := map[int]bool{}
	for _, m := range ms {
		keys[m.Key.TweetID] = true
	}
	if len(ms) > 0 && !keys[1] && keys[2] {
		t.Fatal("back-mining failed: early occurrence not pooled")
	}
	// (If local NER missed both, ms is empty — vacuously fine for this
	// trained fixture; the assertion above only fires when the surface
	// was seeded.)
}

func TestResolveOverlaps(t *testing.T) {
	mk := func(start, end int) types.Mention {
		return types.Mention{Span: types.Span{Start: start, End: end}, Type: types.Person}
	}
	got := resolveOverlaps([]types.Mention{mk(2, 4), mk(0, 3), mk(0, 1), mk(5, 6)})
	// Leftmost-longest: [0,3) wins over [0,1); [2,4) overlaps and is
	// dropped; [5,6) kept.
	if len(got) != 2 || got[0].Span.Start != 0 || got[0].Span.End != 3 || got[1].Span.Start != 5 {
		t.Fatalf("resolveOverlaps = %v", got)
	}
	if out := resolveOverlaps(nil); len(out) != 0 {
		t.Fatal("nil input should stay empty")
	}
}
