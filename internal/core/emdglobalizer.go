package core

import (
	"time"

	"nerglobalizer/internal/mention"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// RunEMDGlobalizer runs the predecessor system of the paper — EMD
// Globalizer (Saha Bhowmick et al., ICDE 2022) — using this pipeline's
// trained components. EMD Globalizer performs collective processing
// for entity mention detection only: every surface form receives a
// single global embedding pooled over all of its mentions (no
// candidate clustering, hence no surface-form ambiguity handling), and
// is verified collectively as entity or non-entity.
//
// The paper's Section VI-D reports NER Globalizer improving EMD F1 by
// 7.9% on average over this system, attributing the gain to
// type-aware clustering keeping entity and non-entity mentions of the
// same surface form apart. Running both on the same trained components
// isolates exactly that difference.
func (g *Globalizer) RunEMDGlobalizer(sents []*types.Sentence) map[types.SentenceKey][]types.Entity {
	g.Reset()
	tr := g.o.beginCycle()
	t0 := g.o.now()
	for _, batch := range stream.Batches(sents, g.cfg.BatchSize) {
		g.localPhase(batch, tr)
	}
	tx := g.o.now()
	var all []*types.Sentence
	g.tweetBase.Each(func(r *stream.Record) { all = append(all, r.Sentence) })
	mentions := mention.ExtractBatchPool(all, g.trie, g.tweetBase.LocalEntityMap(), g.pool)
	groups := mention.GroupBySurface(mentions)
	g.o.extractDone(tr, tx, len(mentions), len(all), 0)

	// Per-surface embedding and collective verification are independent,
	// so they fan out one surface per worker; the merge below replays
	// results in sorted surface order, keeping the output identical to a
	// serial run at any worker count.
	surfaces := sortedKeys(groups)
	ts := g.o.now()
	verdicts := parallel.MapOrdered(g.pool, len(surfaces), func(si int) types.EntityType {
		ms := groups[surfaces[si]]
		if g.lacksLocalSupport(ms) {
			return types.None
		}
		// One pooled candidate per surface form: all mentions together,
		// ambiguity unresolved. Embeddings route through the shared
		// mention-embedding cache when enabled.
		te := g.o.now()
		embs := make([][]float64, len(ms))
		for i, m := range ms {
			embs[i] = g.embedMention(m)
		}
		if g.o != nil {
			g.o.stageEmbed.Observe(time.Since(te).Seconds())
		}
		tc := g.o.now()
		et, _ := g.classify(embs)
		if g.o != nil {
			g.o.stageClassify.Observe(time.Since(tc).Seconds())
			g.o.clustersClassified.Inc()
		}
		if et == types.None {
			if lv, votes, n := localVote(ms); n >= 2 && float64(votes) >= 0.7*float64(n) {
				et = lv
			}
		}
		return et
	})
	g.o.surfacesDone(tr, ts, len(surfaces), 0)

	out := make(map[types.SentenceKey][]types.Entity)
	for si, surface := range surfaces {
		et := verdicts[si]
		if et == types.None {
			continue
		}
		for _, m := range groups[surface] {
			out[m.Key] = append(out[m.Key], types.Entity{Span: m.Span, Type: et})
		}
	}
	// Sentences with no verified mentions still appear with empty
	// entries so evaluators see every sentence.
	for _, s := range all {
		if _, ok := out[s.Key()]; !ok {
			out[s.Key()] = nil
		}
	}
	g.o.cycleDone(tr, t0, g.tweetBase.Len(), 0)
	return out
}
