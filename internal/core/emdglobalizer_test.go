package core

import (
	"testing"

	"nerglobalizer/internal/metrics"
	"nerglobalizer/internal/types"
)

func TestEMDGlobalizerProducesValidSpans(t *testing.T) {
	g := trainedGlobalizer(t)
	test := smallStream("emd", 150, 71)
	pred := g.RunEMDGlobalizer(test.Sentences)
	if len(pred) != len(test.Sentences) {
		t.Fatalf("output covers %d sentences, want %d", len(pred), len(test.Sentences))
	}
	for _, s := range test.Sentences {
		for _, e := range pred[s.Key()] {
			if e.Start < 0 || e.End > len(s.Tokens) || e.Start >= e.End || e.Type == types.None {
				t.Fatalf("invalid entity %+v in %v", e, s.Tokens)
			}
		}
	}
}

func TestNERGlobalizerEMDAtLeastEMDGlobalizer(t *testing.T) {
	// Section VI-D: the full NER pipeline, with type-aware clustering,
	// should match or beat the cluster-free predecessor on EMD F1.
	g := trainedGlobalizer(t)
	// Aggregate over two streams; at this miniature scale the two
	// systems trade blows within a few points per stream. The
	// invariant enforced is near-parity on average (the full system
	// must not sacrifice EMD for typing); the full-scale comparison —
	// where the paper's +7.9% reproduces as +7.2% — is recorded in
	// EXPERIMENTS.md.
	emdSum, fullSum := 0.0, 0.0
	for _, seed := range []int64{73, 74} {
		test := smallStream("emd2", 250, seed)
		gold := test.GoldByKey()
		emdF1 := metrics.EvaluateEMD(gold, g.RunEMDGlobalizer(test.Sentences)).PRF().F1
		full := g.Run(test.Sentences, ModeFull)
		fullF1 := metrics.EvaluateEMD(gold, full.Final).PRF().F1
		t.Logf("seed %d: EMD F1 emd-globalizer=%.3f ner-globalizer=%.3f", seed, emdF1, fullF1)
		emdSum += emdF1
		fullSum += fullF1
	}
	if fullSum < emdSum-0.08 {
		t.Fatalf("NER Globalizer mean EMD F1 %.3f clearly below EMD Globalizer %.3f", fullSum/2, emdSum/2)
	}
}
