package core

import (
	"reflect"
	"sync"
	"testing"

	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/metrics"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

// testConfig is a scaled-down pipeline that trains in a couple of
// seconds while preserving the full execution path.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Encoder = transformer.Config{
		Dim: 24, Heads: 2, Layers: 2, FFDim: 48, MaxLen: 24,
		VocabBuckets: 1024, CharBuckets: 256, Dropout: 0, Seed: 3,
	}
	cfg.PretrainEpochs = 2
	cfg.PretrainLR = 0.001
	cfg.FineTuneEpochs = 25
	cfg.FineTuneLR = 0.003
	cfg.MaxTriplets = 6000
	cfg.PhraseTrain.Epochs = 30
	cfg.PhraseTrain.BatchSize = 128
	cfg.ClassifierTrain.Epochs = 120
	cfg.ClassifierTrain.LR = 0.005
	cfg.ClassifierTrain.Patience = 30
	cfg.BatchSize = 200
	return cfg
}

// smallStream generates an evaluation stream with the full microblog
// noise distribution (every alternation variant, heavy typos,
// cue-free contexts).
func smallStream(name string, n int, seed int64) *corpus.Dataset {
	return corpus.Generate(corpus.StreamConfig{
		Name: name, NumTweets: n, NumTopics: 1,
		PerTopicEntities:  [4]int{12, 10, 8, 8},
		ZipfExponent:      1.1,
		TypoRate:          0.08,
		CapNoiseRate:      0.12,
		LowercaseRate:     0.35,
		NonEntityRate:     0.3,
		AmbiguousRate:     0.15,
		UninformativeRate: 0.25,
		AltFull:           true,
		Ambiguity:         true, Streaming: true, Seed: seed,
	})
}

// trainStream generates a pre-shift training corpus (canonical
// alternation variants, milder noise).
func trainStream(name string, n, topics int, streaming bool, seed int64) *corpus.Dataset {
	return corpus.Generate(corpus.StreamConfig{
		Name: name, NumTweets: n, NumTopics: topics,
		PerTopicEntities:  [4]int{15, 12, 10, 10},
		ZipfExponent:      1.1,
		TypoRate:          0.02,
		CapNoiseRate:      0.08,
		LowercaseRate:     0.35,
		NonEntityRate:     0.3,
		AmbiguousRate:     0.15,
		UninformativeRate: 0.15,
		Ambiguity:         true, Streaming: streaming, Seed: seed,
	})
}

var (
	trainedOnce sync.Once
	trainedG    *Globalizer
)

// trainedGlobalizer trains one shared pipeline for all tests (and
// benchmarks) in this package.
func trainedGlobalizer(t testing.TB) *Globalizer {
	t.Helper()
	trainedOnce.Do(func() {
		g := New(testConfig())
		g.PretrainEncoder(corpus.PretrainTweets(600, 21))
		g.FineTuneLocal(trainStream("train", 800, 3, false, 22).Sentences)
		g.TrainGlobal(trainStream("d5", 800, 2, true, 23).Sentences)
		trainedG = g
	})
	return trainedG
}

func TestTrainingPipelineProducesSignal(t *testing.T) {
	g := trainedGlobalizer(t)
	// Aggregate over two independent streams: single-stream macro-F1
	// at this miniature scale swings by a few points with the seed.
	localSum, fullSum := 0.0, 0.0
	for _, seed := range []int64{31, 32} {
		test := smallStream("test", 250, seed)
		res := g.Run(test.Sentences, ModeFull)
		if res.Candidates == 0 {
			t.Fatal("no candidate clusters formed")
		}
		local := metrics.Evaluate(test.GoldByKey(), res.Local).MacroF1()
		full := metrics.Evaluate(test.GoldByKey(), res.Final).MacroF1()
		t.Logf("seed %d: macro-F1 local=%.3f full=%.3f", seed, local, full)
		if local <= 0 {
			t.Fatal("local NER produced zero macro-F1; training failed")
		}
		localSum += local
		fullSum += full
	}
	if fullSum <= localSum {
		t.Fatalf("Global NER did not improve over Local on average: %.3f vs %.3f", fullSum/2, localSum/2)
	}
}

func TestRunModeLocalOnly(t *testing.T) {
	g := trainedGlobalizer(t)
	test := smallStream("test2", 60, 33)
	res := g.Run(test.Sentences, ModeLocalOnly)
	if !reflect.DeepEqual(res.Local, res.Final) {
		t.Fatal("ModeLocalOnly must return local results as final")
	}
	if res.GlobalTime != 0 {
		t.Fatal("ModeLocalOnly should not spend global time")
	}
}

func TestRunFinalEntitiesWellFormed(t *testing.T) {
	g := trainedGlobalizer(t)
	test := smallStream("test3", 120, 35)
	res := g.Run(test.Sentences, ModeFull)
	for _, s := range test.Sentences {
		ents := res.Final[s.Key()]
		for i, e := range ents {
			if e.Start < 0 || e.End > len(s.Tokens) || e.Start >= e.End {
				t.Fatalf("invalid final span %+v in %v", e, s.Tokens)
			}
			if e.Type == types.None {
				t.Fatal("final output contains None-typed entity")
			}
			for j := 0; j < i; j++ {
				if e.Span.Overlaps(ents[j].Span) {
					t.Fatalf("overlapping final entities %v and %v", ents[j], e)
				}
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g := trainedGlobalizer(t)
	test := smallStream("test4", 80, 37)
	a := g.Run(test.Sentences, ModeFull)
	b := g.Run(test.Sentences, ModeFull)
	if !reflect.DeepEqual(a.Final, b.Final) {
		t.Fatal("Run must be deterministic for a trained system")
	}
}

func TestAblationModesRun(t *testing.T) {
	g := trainedGlobalizer(t)
	test := smallStream("test5", 100, 39)
	gold := test.GoldByKey()
	scores := map[Mode]float64{}
	for _, mode := range []Mode{ModeLocalOnly, ModeMentionExtraction, ModeLocalEmbeddings, ModeFull} {
		res := g.Run(test.Sentences, mode)
		scores[mode] = metrics.Evaluate(gold, res.Final).MacroF1()
	}
	t.Logf("ablation scores: %v", scores)
	if scores[ModeFull] <= scores[ModeLocalOnly] {
		t.Fatalf("full pipeline should beat local-only: %v", scores)
	}
}

func TestResetClearsStreamState(t *testing.T) {
	g := trainedGlobalizer(t)
	test := smallStream("test6", 40, 41)
	g.Run(test.Sentences, ModeFull)
	if g.TweetBase().Len() == 0 {
		t.Fatal("expected tweet base to be populated after Run")
	}
	g.Reset()
	if g.TweetBase().Len() != 0 || g.CandidateBase().Len() != 0 {
		t.Fatal("Reset must clear stream state")
	}
}

func TestModeStrings(t *testing.T) {
	names := map[Mode]string{
		ModeLocalOnly:         "LocalNER",
		ModeMentionExtraction: "+MentionExtraction",
		ModeLocalEmbeddings:   "+LocalEmbeddings",
		ModeFull:              "+GlobalEmbeddings",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q", m, m.String())
		}
	}
	if ObjectiveTriplet.String() != "Triplet" || ObjectiveSoftNN.String() != "SoftNN" {
		t.Error("objective names wrong")
	}
}
