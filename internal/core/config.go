// Package core implements the NER Globalizer pipeline — the paper's
// primary contribution. It wires the Local NER tagger, the candidate
// prefix trie, mention extraction, the Entity Phrase Embedder,
// candidate cluster generation, attention pooling and the Entity
// Classifier into the continuous execution cycle of Section III, and
// exposes the ablation stages of Figure 3.
package core

import (
	"nerglobalizer/internal/classifier"
	"nerglobalizer/internal/cluster"
	"nerglobalizer/internal/phrase"
	"nerglobalizer/internal/transformer"
)

// Objective selects the contrastive objective used to train the
// Phrase Embedder (Table II compares the two).
type Objective int

// The two Phrase Embedder training objectives.
const (
	// ObjectiveTriplet is the production configuration (eq. 4).
	ObjectiveTriplet Objective = iota
	// ObjectiveSoftNN is the soft nearest-neighbour alternative (eq. 5).
	ObjectiveSoftNN
)

// String names the objective.
func (o Objective) String() string {
	if o == ObjectiveSoftNN {
		return "SoftNN"
	}
	return "Triplet"
}

// EncoderKind selects the Local NER language-model family.
type EncoderKind int

// Encoder families.
const (
	// EncoderTransformer is the BERTweet stand-in (default).
	EncoderTransformer EncoderKind = iota
	// EncoderBiGRU is the BiLSTM-era recurrent alternative.
	EncoderBiGRU
)

// String names the encoder kind.
func (k EncoderKind) String() string {
	if k == EncoderBiGRU {
		return "bigru"
	}
	return "transformer"
}

// Config gathers every knob of the pipeline.
type Config struct {
	// Encoder configures the Local NER language model (dimensions are
	// shared by both encoder kinds).
	Encoder transformer.Config
	// Kind selects the language-model family; masked-LM pre-training
	// applies only to EncoderTransformer.
	Kind EncoderKind
	// PretrainSentences and PretrainEpochs control masked-LM
	// pre-training of the encoder.
	PretrainSentences int
	PretrainEpochs    int
	PretrainLR        float64
	// FineTuneEpochs and FineTuneLR control NER fine-tuning on the
	// annotated training split.
	FineTuneEpochs int
	FineTuneLR     float64
	// Objective selects the Phrase Embedder loss; MaxTriplets caps the
	// mined triplet set.
	Objective   Objective
	MaxTriplets int
	PhraseTrain phrase.TrainConfig
	// ClassifierTrain controls Entity Classifier training.
	ClassifierTrain classifier.TrainConfig
	// EnsembleSize is the number of independently seeded Entity
	// Classifiers trained and averaged at inference. The paper reports
	// averages over five random seeds for its trained components; the
	// ensemble bakes the same variance reduction into one model.
	EnsembleSize int
	// ClusterThreshold is the agglomerative cosine threshold of the
	// candidate cluster generation step.
	ClusterThreshold float64
	// MinLocalSupport drops candidate surface forms whose mentions are
	// almost never confirmed by Local NER: a surface with at least
	// MinSupportMentions occurrences but a locally-typed fraction
	// below MinLocalSupport is discarded as noise before clustering.
	// This is the collective "syntactic support" verification of the
	// TwiCS / EMD Globalizer lineage — one stray local false positive
	// on a stopword must not flood the stream with mined mentions.
	MinLocalSupport    float64
	MinSupportMentions int
	// GuardOverrideConf is the ensemble confidence needed to override
	// a Local NER label on a small (1–2 mention) cluster; 0 means the
	// default of 0.75.
	GuardOverrideConf float64
	// NoneMiningTokens caps how many frequent non-entity tokens are
	// mined from D5 as explicit None training sets (0 disables).
	NoneMiningTokens int
	// JunkClusters is the number of synthetic incoherent None clusters
	// added to classifier training (0 disables).
	JunkClusters int
	// BatchSize discretizes the stream into execution cycles.
	BatchSize int
	// DisableCache switches off the cross-cycle amortization layer
	// (mention-embedding cache, CTrie scan cache, dirty-surface
	// tracking with incremental distance matrices). Annotations are
	// byte-identical with the layer on or off; the caches only trade
	// memory for per-cycle wall-clock in the continuous execution
	// setup. The zero value keeps amortization on.
	DisableCache bool
	// InferBatchTokens caps the tokens packed into one batched encoder
	// inference call: the local phase, mention embedding, and baseline
	// predictors pack contiguous sentences into a single flat token
	// matrix of at most this many (truncated) tokens per worker.
	// Annotations are byte-identical at every setting — packing changes
	// kernel shapes, never values. 0 disables packing and runs the
	// per-sentence inference path.
	InferBatchTokens int
	// InferPrecision selects the numeric tier of the encoder-bound
	// inference kernels: "f64" (or empty — the exact default, bit-
	// identical to training), "f32" (packed float32 GEMMs), or "i8"
	// (dynamic int8 dense GEMMs with float32 accumulation). Training
	// always runs f64; weights stay f64 on disk. Reduced tiers trade
	// the bit-identity contract for throughput under the error bounds
	// pinned in internal/nn; any other spelling is rejected, never
	// silently mapped to f64.
	InferPrecision string
	// Workers caps the goroutines used by the data-parallel hot paths
	// (batch tagging, mention scanning, phrase embedding, pairwise
	// clustering distances, per-surface classification). 0 sizes the
	// pool from GOMAXPROCS; 1 reproduces the serial execution exactly.
	// Output is byte-identical at every setting — the knob trades
	// wall-clock only.
	Workers int
	// Seed feeds auxiliary randomness (mining, shuffles).
	Seed int64
}

// DefaultConfig returns the production configuration of the
// reproduction, scaled to run on one CPU in seconds.
func DefaultConfig() Config {
	clsTrain := classifier.DefaultTrainConfig()
	// The paper's lr of 0.0015 is tuned for its 15.77M-triplet regime;
	// at this reproduction's data scale a slightly higher rate with
	// longer patience reaches the same checkpoints (see EXPERIMENTS.md).
	clsTrain.LR = 0.005
	clsTrain.Patience = 30
	return Config{
		Encoder:            transformer.DefaultConfig(),
		PretrainSentences:  1500,
		PretrainEpochs:     2,
		PretrainLR:         0.001,
		FineTuneEpochs:     30,
		FineTuneLR:         0.003,
		Objective:          ObjectiveTriplet,
		MaxTriplets:        30000,
		PhraseTrain:        phrase.DefaultTrainConfig(),
		ClassifierTrain:    clsTrain,
		EnsembleSize:       3,
		ClusterThreshold:   cluster.DefaultThreshold,
		MinLocalSupport:    0.1,
		MinSupportMentions: 10,
		NoneMiningTokens:   40,
		JunkClusters:       15,
		BatchSize:          500,
		InferBatchTokens:   256,
		Seed:               13,
	}
}
