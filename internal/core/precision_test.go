package core

import (
	"reflect"
	"testing"

	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/nn"
)

// TestGoldenStreamAnnotationsIdenticalAcrossTiers is the end-to-end
// precision contract: on the seed evaluation stream the reduced tiers
// must produce exactly the f64 annotations — the kernel error bounds
// are tuned so quantization noise never crosses a decision boundary on
// this distribution. On failure the test prints the f64 decision-margin
// histogram so the bound (or the tier's kernel scope) can be re-tuned.
func TestGoldenStreamAnnotationsIdenticalAcrossTiers(t *testing.T) {
	g := trainedGlobalizer(t)
	setTier := func(p nn.Precision) {
		t.Helper()
		if err := g.SetPrecision(p); err != nil {
			t.Fatalf("SetPrecision(%s): %v", p, err)
		}
	}
	defer setTier(nn.F64)

	test := smallStream("golden", 250, 31)
	setTier(nn.F64)
	base := g.Run(test.Sentences, ModeFull)

	// Every dispatched kernel tier must preserve the annotations: the
	// reduced tiers' numerics differ across ISA levels (FMA, lane
	// widths, quantizer tie rounding), so the identity is re-proven at
	// each level this machine supports, not just the boot default.
	defer nn.SetSIMDAuto()
	for _, level := range nn.SupportedSIMDLevels() {
		if err := nn.SetSIMD(level); err != nil {
			t.Fatalf("SetSIMD(%s): %v", level, err)
		}
		for _, tier := range []nn.Precision{nn.F32, nn.I8} {
			setTier(tier)
			got := g.Run(test.Sentences, ModeFull)
			if !reflect.DeepEqual(base.Local, got.Local) {
				logMarginHistogram(t, g, test, tier)
				t.Fatalf("tier %s at SIMD level %s changed Local NER annotations on the golden stream", tier, level)
			}
			if !reflect.DeepEqual(base.Final, got.Final) {
				logMarginHistogram(t, g, test, tier)
				t.Fatalf("tier %s at SIMD level %s changed final annotations on the golden stream", tier, level)
			}
		}
	}
}

// logMarginHistogram prints the distribution of f64 per-token decision
// margins over the stream — the diagnostic for a reduced tier flipping
// a tag: flips happen where the margin is below the tier's effective
// logit perturbation, so the low buckets say how much headroom is left.
func logMarginHistogram(t *testing.T, g *Globalizer, test *corpus.Dataset, tier nn.Precision) {
	t.Helper()
	if err := g.SetPrecision(nn.F64); err != nil {
		t.Fatalf("SetPrecision(f64): %v", err)
	}
	defer g.SetPrecision(tier)
	bounds := []float64{1e-4, 1e-3, 1e-2, 0.1, 0.3, 1}
	counts := make([]int, len(bounds)+1)
	minMargin, tokens := -1.0, 0
	for _, s := range test.Sentences {
		res := g.Tagger.Run(s.Tokens)
		if res.Embeddings == nil {
			continue
		}
		for _, m := range g.Tagger.Margins(res.Embeddings) {
			tokens++
			if minMargin < 0 || m < minMargin {
				minMargin = m
			}
			i := 0
			for i < len(bounds) && m >= bounds[i] {
				i++
			}
			counts[i]++
		}
	}
	t.Logf("f64 decision-margin histogram over %d tokens (tier %s flipped a tag):", tokens, tier)
	lo := 0.0
	for i, c := range counts {
		if i < len(bounds) {
			t.Logf("  [%g, %g): %d", lo, bounds[i], c)
			lo = bounds[i]
		} else {
			t.Logf("  [%g, inf): %d", lo, c)
		}
	}
	t.Logf("  min margin: %g", minMargin)
}

// TestPrecisionConfigValidation pins the no-silent-fallback contract:
// unknown spellings are rejected at construction, and the BiGRU
// encoder (no tier support) refuses reduced tiers instead of quietly
// running exact.
func TestPrecisionConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.InferPrecision = "fp16"
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("New must panic on an unknown InferPrecision spelling")
			}
		}()
		New(cfg)
	}()

	cfg = testConfig()
	cfg.Kind = EncoderBiGRU
	g := New(cfg)
	if err := g.SetPrecision(nn.F32); err == nil {
		t.Fatal("SetPrecision(f32) must fail for the BiGRU encoder")
	}
	if got := g.Precision(); got != nn.F64 {
		t.Fatalf("failed SetPrecision must leave the tier at f64, got %s", got)
	}
	if err := g.SetPrecision(nn.F64); err != nil {
		t.Fatalf("SetPrecision(f64) must succeed for the BiGRU encoder: %v", err)
	}

	cfg = testConfig()
	cfg.Kind = EncoderBiGRU
	cfg.InferPrecision = "i8"
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("New must panic on a reduced tier with a tierless encoder")
			}
		}()
		New(cfg)
	}()
}

// TestSetPrecisionSurvivesObjectiveSwap pins that WithObjective's fresh
// Phrase Embedder inherits the active tier.
func TestSetPrecisionSurvivesObjectiveSwap(t *testing.T) {
	g := trainedGlobalizer(t)
	if err := g.SetPrecision(nn.F32); err != nil {
		t.Fatal(err)
	}
	defer g.SetPrecision(nn.F64)
	v := g.WithObjective(ObjectiveSoftNN)
	if got := v.Embedder.Precision(); got != nn.F32 {
		t.Fatalf("WithObjective embedder tier = %s, want f32", got)
	}
}
