package core

import (
	"sort"

	"nerglobalizer/internal/classifier"
	"nerglobalizer/internal/ctrie"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/phrase"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

// PretrainEncoder runs masked-LM pre-training over the unlabeled
// corpus for Config.PretrainEpochs epochs, returning per-epoch losses.
// This is the "BERTweet pre-training" stage of the reproduction. It is
// a no-op for non-Transformer encoders (the BiLSTM-era local models
// trained without masked-LM pre-training).
func (g *Globalizer) PretrainEncoder(corpus [][]string) []float64 {
	enc, ok := g.Tagger.Encoder().(*transformer.Encoder)
	if !ok {
		return nil
	}
	trainer := transformer.NewMLMTrainer(enc, g.cfg.PretrainLR)
	losses := make([]float64, 0, g.cfg.PretrainEpochs)
	for i := 0; i < g.cfg.PretrainEpochs; i++ {
		losses = append(losses, trainer.TrainEpoch(corpus))
	}
	return losses
}

// FineTuneLocal fine-tunes the Local NER tagger end-to-end on the
// annotated training sentences (the WNUT17 training split in the
// paper), returning per-epoch losses.
func (g *Globalizer) FineTuneLocal(train []*types.Sentence) []float64 {
	return g.Tagger.Train(train, g.cfg.FineTuneEpochs)
}

// GlobalTrainResult summarizes training of the Global NER components —
// the quantities reported in Table II.
type GlobalTrainResult struct {
	Objective   Objective
	Phrase      phrase.TrainResult
	Classifier  classifier.TrainResult
	NumTriplets int
	NumRecords  int
	// NumCandidates is the number of ground-truth candidate clusters
	// (entities + seed non-entities) used to train the classifier.
	NumCandidates int
}

// TrainGlobal trains the Phrase Embedder and Entity Classifier from an
// annotated training stream (D5 in the paper). Entities come from the
// gold annotations; seed non-entities are curated the way the paper
// does — by running the (already fine-tuned) local system over D5 and
// collecting confident false-positive spans, plus occurrences of
// entity surface forms in non-entity positions (the "us"-as-pronoun
// signal).
func (g *Globalizer) TrainGlobal(d5 []*types.Sentence) GlobalTrainResult {
	rng := nn.NewRNG(g.cfg.Seed + 3)
	sets := g.buildMentionSets(d5)

	var phraseRes phrase.TrainResult
	var numTriplets, numRecords int
	switch g.cfg.Objective {
	case ObjectiveSoftNN:
		records := phrase.MineSoftNNRecords(sets, rng)
		numRecords = len(records)
		phraseRes = g.Embedder.TrainSoftNN(records, g.cfg.PhraseTrain)
	default:
		triplets := phrase.MineTriplets(sets, g.cfg.MaxTriplets, rng)
		numTriplets = len(triplets)
		phraseRes = g.Embedder.TrainTriplets(triplets, g.cfg.PhraseTrain)
	}

	// Ground-truth clusters → classifier records, embedded with the
	// freshly trained Phrase Embedder. Each cluster is additionally
	// augmented with random sub-clusters: at inference time candidate
	// clusters are often much smaller than the ground-truth ones
	// (early in a stream, or for long-tail entities), so the pooled
	// classifier must be accurate on partial evidence too.
	var records []classifier.Record
	for _, s := range sets {
		if len(s.Pooled) == 0 {
			continue
		}
		embs := g.Embedder.EmbedBatch(s.Pooled)
		records = append(records, classifier.Record{Embs: embs, Label: s.Type})
		if len(embs) >= 2 {
			for k := 0; k < 2; k++ {
				sub := 1 + rng.Intn(len(embs))
				perm := rng.Perm(len(embs))[:sub]
				subset := make([][]float64, sub)
				for i, p := range perm {
					subset[i] = embs[p]
				}
				records = append(records, classifier.Record{Embs: subset, Label: s.Type})
			}
		}
	}
	// Synthetic junk clusters: large pools mixing mentions of many
	// different non-entity surfaces, labeled None. At stream scale a
	// stray local false positive on a frequent token can mine a huge,
	// incoherent mention pool; the classifier must learn that such
	// pools are non-entities rather than letting the attention pooling
	// hallucinate a type.
	var nonePool [][]float64
	for _, s := range sets {
		if s.Type == types.None {
			nonePool = append(nonePool, g.Embedder.EmbedBatch(s.Pooled)...)
		}
	}
	if len(nonePool) >= 8 && g.cfg.JunkClusters > 0 {
		for k := 0; k < g.cfg.JunkClusters; k++ {
			size := 8 + rng.Intn(23)
			embs := make([][]float64, size)
			for i := range embs {
				embs[i] = nonePool[rng.Intn(len(nonePool))]
			}
			records = append(records, classifier.Record{Embs: embs, Label: types.None})
		}
	}

	// Train every ensemble member on the same records with distinct
	// shuffling/initialization seeds; report the first member's
	// metrics (Table II convention).
	var clsRes classifier.TrainResult
	for i, c := range g.Ensemble {
		tc := g.cfg.ClassifierTrain
		tc.Seed += int64(i) * 977
		res := c.Train(records, tc)
		if i == 0 {
			clsRes = res
		}
	}

	return GlobalTrainResult{
		Objective:     g.cfg.Objective,
		Phrase:        phraseRes,
		Classifier:    clsRes,
		NumTriplets:   numTriplets,
		NumRecords:    numRecords,
		NumCandidates: len(records),
	}
}

// buildMentionSets converts the annotated training stream into
// per-candidate mention sets with pooled local embeddings: one set per
// (surface form, type) for gold entities, plus non-entity sets mined
// from the local system's behaviour on the same stream.
func (g *Globalizer) buildMentionSets(d5 []*types.Sentence) []phrase.MentionSet {
	type key struct {
		surface string
		typ     types.EntityType
	}
	pooledByCand := make(map[key][][]float64)
	order := make([]key, 0)
	add := func(k key, emb []float64) {
		if _, ok := pooledByCand[k]; !ok {
			order = append(order, k)
		}
		pooledByCand[k] = append(pooledByCand[k], emb)
	}

	// Embed and tag the whole stream through the packed batched
	// inference path (bit-identical to per-sentence calls, far fewer
	// kernel launches and allocations).
	toks := make([][]string, len(d5))
	for i, s := range d5 {
		toks[i] = s.Tokens
	}
	embCache := g.Tagger.EmbedBatch(toks, g.pool)
	tagged := g.Tagger.RunBatch(toks, g.pool)

	goldTrie := ctrie.New()
	for i, s := range d5 {
		emb := embCache[i]
		for _, e := range s.Gold {
			if e.End > emb.Rows || e.Type == types.None {
				continue
			}
			surface := s.SurfaceAt(e.Span)
			add(key{surface, e.Type}, phrase.Pool(emb, e.Span))
			goldTrie.Insert(s.Tokens[e.Start:e.End])
		}
	}

	// Seed non-entities, two sources mirroring the paper's EMD-based
	// curation:
	// (a) occurrences of gold entity surface forms outside any gold
	//     span (ambiguous surfaces used as ordinary words), and
	// (b) spans the local tagger extracts that match no gold entity
	//     (its confident false positives).
	for i, s := range d5 {
		emb := embCache[i]
		goldAt := make([]bool, len(s.Tokens))
		for _, e := range s.Gold {
			for j := e.Start; j < e.End && j < len(goldAt); j++ {
				goldAt[j] = true
			}
		}
		overlapsGold := func(sp types.Span) bool {
			for j := sp.Start; j < sp.End && j < len(goldAt); j++ {
				if goldAt[j] {
					return true
				}
			}
			return false
		}
		for _, m := range goldTrie.Scan(s.Tokens) {
			sp := types.Span{Start: m.Start, End: m.End}
			if overlapsGold(sp) || sp.End > emb.Rows {
				continue
			}
			add(key{m.Surface, types.None}, phrase.Pool(emb, sp))
		}
		res := tagged[i]
		for _, e := range res.Entities {
			if overlapsGold(e.Span) || e.End > emb.Rows {
				continue
			}
			add(key{s.SurfaceAt(e.Span), types.None}, phrase.Pool(emb, e.Span))
		}
	}

	// (c) frequent ordinary tokens: the most common tokens never seen
	// inside a gold span ("the", "is", topical hashtags) become
	// explicit non-entity sets, so the classifier learns to reject
	// the big junk clusters a stray local false positive can mine.
	tokenCount := make(map[string]int)
	inGold := make(map[string]bool)
	for _, s := range d5 {
		goldAt := make([]bool, len(s.Tokens))
		for _, e := range s.Gold {
			for j := e.Start; j < e.End && j < len(goldAt); j++ {
				goldAt[j] = true
			}
		}
		for j, tok := range s.Tokens {
			low := types.CanonicalSurface([]string{tok})
			if goldAt[j] {
				inGold[low] = true
			} else {
				tokenCount[low]++
			}
		}
	}
	type freqTok struct {
		tok string
		n   int
	}
	var frequent []freqTok
	for tok, n := range tokenCount {
		if n >= 25 && !inGold[tok] {
			frequent = append(frequent, freqTok{tok, n})
		}
	}
	if g.cfg.NoneMiningTokens <= 0 {
		frequent = nil
	}
	sort.Slice(frequent, func(i, j int) bool {
		if frequent[i].n != frequent[j].n {
			return frequent[i].n > frequent[j].n
		}
		return frequent[i].tok < frequent[j].tok
	})
	if g.cfg.NoneMiningTokens > 0 && len(frequent) > g.cfg.NoneMiningTokens {
		frequent = frequent[:g.cfg.NoneMiningTokens]
	}
	for _, ft := range frequent {
		k := key{ft.tok, types.None}
		if _, exists := pooledByCand[k]; exists {
			continue
		}
		// Sample up to 25 occurrences of the token across the stream.
		for i, s := range d5 {
			if len(pooledByCand[k]) >= 12 {
				break
			}
			emb := embCache[i]
			for j, tok := range s.Tokens {
				if j >= emb.Rows || types.CanonicalSurface([]string{tok}) != ft.tok {
					continue
				}
				add(k, phrase.Pool(emb, types.Span{Start: j, End: j + 1}))
				break // at most one sample per sentence
			}
		}
	}

	sets := make([]phrase.MentionSet, 0, len(order))
	for _, k := range order {
		sets = append(sets, phrase.MentionSet{
			Surface: k.surface,
			Type:    k.typ,
			Pooled:  pooledByCand[k],
		})
	}
	return sets
}
