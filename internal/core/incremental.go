package core

import (
	"sort"
	"time"

	"nerglobalizer/internal/cluster"
	"nerglobalizer/internal/ctrie"
	"nerglobalizer/internal/mention"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// Incremental is the true streaming engine of the pipeline: unlike
// ProcessBatch (which re-runs the global phase from scratch over the
// accumulated stream every cycle), it maintains per-surface-form
// mention pools and incremental clusters that only grow, re-classifies
// only the clusters that changed in a cycle, and back-mines newly
// discovered surface forms from the sentences already seen — the
// paper's "mention subspace ... can be incrementally updated by adding
// local embeddings into the pool as new mentions of the surface form
// appear".
//
// Its outputs can differ slightly from the batch recomputation (greedy
// incremental clustering versus full agglomerative re-clustering); the
// trade is a per-cycle cost that depends on the batch, not on the full
// stream length.
type Incremental struct {
	g *Globalizer

	// perSurface clustering state.
	clusters map[string]*cluster.Incremental
	// mentions[surface][i] belongs to cluster assign[surface][i].
	mentions map[string][]types.Mention
	assign   map[string][]int
	// seen indexes every pooled mention by (sentence, span) — spans are
	// matched by one overlap-free scan per sentence, so a (sentence,
	// span) pair identifies a mention uniquely across all surfaces.
	// Keeping the set turns duplicate detection from a linear walk of
	// the surface's pool into one map probe.
	seen map[types.SentenceKey]map[types.Span]bool
	// clusterType caches the decision per (surface, cluster id);
	// invalidated when the cluster gains members.
	clusterType map[string]map[int]types.EntityType
	dirty       map[string]map[int]bool
}

// NewIncremental creates an incremental engine over a trained
// pipeline. It resets the pipeline's stream state.
func NewIncremental(g *Globalizer) *Incremental {
	g.Reset()
	return &Incremental{
		g:           g,
		clusters:    make(map[string]*cluster.Incremental),
		mentions:    make(map[string][]types.Mention),
		assign:      make(map[string][]int),
		seen:        make(map[types.SentenceKey]map[types.Span]bool),
		clusterType: make(map[string]map[int]types.EntityType),
		dirty:       make(map[string]map[int]bool),
	}
}

// Globalizer returns the wrapped pipeline.
func (inc *Incremental) Globalizer() *Globalizer { return inc.g }

// Cycle consumes one batch of sentences and returns the current final
// entities for every sentence seen so far.
func (inc *Incremental) Cycle(batch []*types.Sentence) map[types.SentenceKey][]types.Entity {
	g := inc.g
	tr := g.o.beginCycle()
	t0 := g.o.now()

	// Local phase: tagger forwards shard across the pool and the
	// TweetBase/CTrie writes replay serially in batch order; localPhase
	// reports which surfaces are new to the CTrie.
	newSurfaces := g.localPhase(batch, tr)

	// Mention discovery: new sentences against the full trie, old
	// sentences against the new surfaces only.
	tx := g.o.now()
	scanned := len(batch)
	localEnts := g.tweetBase.LocalEntityMap()
	var fresh []types.Mention
	fresh = append(fresh, mention.ExtractBatchPool(batch, g.trie, localEnts, g.pool)...)
	if len(newSurfaces) > 0 {
		newTrie := ctrie.New()
		for _, toks := range newSurfaces {
			newTrie.Insert(toks)
		}
		inBatch := make(map[types.SentenceKey]bool, len(batch))
		for _, s := range batch {
			inBatch[s.Key()] = true
		}
		var old []*types.Sentence
		g.tweetBase.Each(func(r *stream.Record) {
			if !inBatch[r.Sentence.Key()] {
				old = append(old, r.Sentence)
			}
		})
		scanned += len(old)
		fresh = append(fresh, mention.ExtractBatchPool(old, newTrie, localEnts, g.pool)...)
	}
	g.o.extractDone(tr, tx, len(fresh), scanned, 0)

	// Grow the per-surface pools and clusters. Deduplication replays the
	// serial scan order first (a later duplicate within the same cycle
	// must be dropped exactly as before); the surviving mentions then
	// embed in parallel — each is a pure function of its record — and
	// the order-dependent incremental cluster Adds stay serial, so
	// cluster ids are identical at any worker count.
	kept := fresh[:0]
	for _, m := range fresh {
		if inc.isDuplicate(m) {
			continue
		}
		inc.markSeen(m)
		kept = append(kept, m)
		inc.mentions[m.Surface] = append(inc.mentions[m.Surface], m)
	}
	tm := g.o.now()
	embs := parallel.MapOrdered(g.pool, len(kept), func(i int) []float64 {
		return g.embedMention(kept[i])
	})
	if g.o != nil {
		g.o.stageEmbed.Observe(time.Since(tm).Seconds())
		tr.Span("embed", tm, int64(len(kept)), 0)
	}
	for i, m := range kept {
		c, ok := inc.clusters[m.Surface]
		if !ok {
			c = cluster.NewIncremental(g.cfg.ClusterThreshold)
			inc.clusters[m.Surface] = c
			inc.clusterType[m.Surface] = make(map[int]types.EntityType)
			inc.dirty[m.Surface] = make(map[int]bool)
		}
		id := c.Add(embs[i])
		inc.assign[m.Surface] = append(inc.assign[m.Surface], id)
		inc.dirty[m.Surface][id] = true
	}

	// Re-classify dirty clusters only and rebuild the final output.
	ts := g.o.now()
	final := make(map[types.SentenceKey][]types.Mention)
	surfaces := make([]string, 0, len(inc.mentions))
	for s := range inc.mentions {
		surfaces = append(surfaces, s)
	}
	sort.Strings(surfaces)
	for _, surface := range surfaces {
		ms := inc.mentions[surface]
		if g.lacksLocalSupport(ms) {
			continue
		}
		byCluster := make(map[int][]types.Mention)
		for i, m := range ms {
			byCluster[inc.assign[surface][i]] = append(byCluster[inc.assign[surface][i]], m)
		}
		for id, members := range byCluster {
			if inc.dirty[surface][id] {
				et, _ := g.decideClusterType(members, inc.clusters[surface].Members(id))
				inc.clusterType[surface][id] = et
				delete(inc.dirty[surface], id)
			} else if g.o != nil {
				g.o.verdictCacheHits.Inc()
			}
			et := inc.clusterType[surface][id]
			if et == types.None {
				continue
			}
			for _, m := range members {
				m.Type = et
				final[m.Key] = append(final[m.Key], m)
			}
		}
	}
	g.o.surfacesDone(tr, ts, len(surfaces), 0)
	g.tweetBase.Each(func(r *stream.Record) {
		r.FinalMentions = resolveOverlaps(final[r.Sentence.Key()])
	})
	g.o.cycleDone(tr, t0, g.tweetBase.Len(), 0)
	return g.tweetBase.FinalEntityMap()
}

// resolveOverlaps keeps a leftmost-longest non-overlapping subset of a
// sentence's mentions. Unlike the batch path — where one trie scan per
// sentence is overlap-free by construction — incremental back-mining
// of new surfaces can propose spans overlapping earlier ones.
func resolveOverlaps(ms []types.Mention) []types.Mention {
	if len(ms) < 2 {
		return ms
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Span.Start != ms[j].Span.Start {
			return ms[i].Span.Start < ms[j].Span.Start
		}
		return ms[i].Span.Len() > ms[j].Span.Len()
	})
	out := ms[:0]
	end := 0
	for _, m := range ms {
		if m.Span.Start >= end {
			out = append(out, m)
			end = m.Span.End
		}
	}
	return out
}

// isDuplicate reports whether the mention (same sentence and span) is
// already pooled.
func (inc *Incremental) isDuplicate(m types.Mention) bool {
	return inc.seen[m.Key][m.Span]
}

// markSeen records the mention in the duplicate index.
func (inc *Incremental) markSeen(m types.Mention) {
	bySpan := inc.seen[m.Key]
	if bySpan == nil {
		bySpan = make(map[types.Span]bool)
		inc.seen[m.Key] = bySpan
	}
	bySpan[m.Span] = true
}
