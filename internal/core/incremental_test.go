package core

import (
	"reflect"
	"testing"

	"nerglobalizer/internal/metrics"
	"nerglobalizer/internal/stream"
)

func TestProcessBatchAccumulatesState(t *testing.T) {
	g := trainedGlobalizer(t)
	g.Reset()
	test := smallStream("inc", 120, 61)
	batches := stream.Batches(test.Sentences, 40)

	var lastCandidates int
	for i, b := range batches {
		out := g.ProcessBatch(b, ModeFull)
		seen := (i + 1) * 40
		if len(out) != seen {
			t.Fatalf("cycle %d: output covers %d sentences, want %d", i, len(out), seen)
		}
		if g.TweetBase().Len() != seen {
			t.Fatalf("cycle %d: tweet base has %d records", i, g.TweetBase().Len())
		}
		if c := g.CandidateBase().Len(); c < lastCandidates {
			// Candidates can merge but the base should not collapse.
			if c == 0 {
				t.Fatalf("cycle %d: candidate base emptied", i)
			}
		} else {
			lastCandidates = c
		}
	}
}

func TestProcessBatchMatchesRunAtEnd(t *testing.T) {
	g := trainedGlobalizer(t)
	test := smallStream("inc2", 90, 63)
	batches := stream.Batches(test.Sentences, 30)

	g.Reset()
	var got any
	for _, b := range batches {
		got = g.ProcessBatch(b, ModeFull)
	}
	runRes := g.Run(test.Sentences, ModeFull)
	// The final incremental output must equal a fresh full run: the
	// global phase always recomputes over the accumulated stream.
	if !reflect.DeepEqual(got, runRes.Final) {
		gf := metrics.Evaluate(test.GoldByKey(), runRes.Final).MacroF1()
		t.Fatalf("incremental final output diverged from batch run (run macro-F1 %.3f)", gf)
	}
}

func TestProcessBatchLocalOnly(t *testing.T) {
	g := trainedGlobalizer(t)
	g.Reset()
	test := smallStream("inc3", 40, 65)
	out := g.ProcessBatch(test.Sentences, ModeLocalOnly)
	if len(out) != 40 {
		t.Fatalf("local-only output covers %d sentences", len(out))
	}
	if g.CandidateBase().Len() != 0 {
		t.Fatal("local-only cycle must not build candidates")
	}
}
