package core

import (
	"reflect"
	"testing"

	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// TestWarmStateResumeByteIdentical is the core durability contract: a
// stream processed half-way, captured, restored and continued must
// produce exactly the annotations of the uninterrupted run — both the
// per-batch answers and the final whole-stream state.
func TestWarmStateResumeByteIdentical(t *testing.T) {
	g := trainedGlobalizer(t)
	sents := smallStream("persist", 120, 91).Sentences
	batches := stream.Batches(sents, 10)
	half := len(batches) / 2

	// Uninterrupted run, capturing warm state at the half-way point.
	g.Reset()
	var refAnswers []map[types.SentenceKey][]types.Entity
	var ws *WarmState
	for i, b := range batches {
		refAnswers = append(refAnswers, g.ProcessBatchEntities(b, ModeFull))
		if i == half-1 {
			ws = g.CaptureWarmState()
		}
	}
	refFinal := g.tweetBase.FinalEntityMap()
	refCands := g.candBase.Len()

	if ws.Amort == nil {
		t.Fatal("clean mid-stream capture lost the amortizer state")
	}

	// Restore and continue.
	if err := g.RestoreWarmState(ws); err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(batches); i++ {
		got := g.ProcessBatchEntities(batches[i], ModeFull)
		if !reflect.DeepEqual(refAnswers[i], got) {
			t.Fatalf("batch %d answers diverged after warm resume", i)
		}
	}
	if !reflect.DeepEqual(refFinal, g.tweetBase.FinalEntityMap()) {
		t.Fatal("final entity map diverged after warm resume")
	}
	if g.candBase.Len() != refCands {
		t.Fatalf("candidate count diverged: %d vs %d", g.candBase.Len(), refCands)
	}
	// The first resumed cycle must actually be warm: only the new batch
	// re-scans, not the whole restored stream.
	if st := g.AmortStats(); st.Rescanned >= st.Sentences {
		t.Fatalf("resume ran cold: rescanned %d of %d", st.Rescanned, st.Sentences)
	}

	// The cold-amortizer fallback (Amort == nil) must still be
	// byte-identical — the caches are speed, not truth.
	ws.Amort = nil
	if err := g.RestoreWarmState(ws); err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(batches); i++ {
		got := g.ProcessBatchEntities(batches[i], ModeFull)
		if !reflect.DeepEqual(refAnswers[i], got) {
			t.Fatalf("batch %d answers diverged after cold-amort resume", i)
		}
	}
	if !reflect.DeepEqual(refFinal, g.tweetBase.FinalEntityMap()) {
		t.Fatal("final entity map diverged after cold-amort resume")
	}
}

// TestWarmStateRejectsMismatchedEngine checks the restore guards.
func TestWarmStateRejectsMismatchedEngine(t *testing.T) {
	g := trainedGlobalizer(t)
	g.Reset()
	g.ProcessBatchEntities(smallStream("persist-guard", 10, 92).Sentences, ModeFull)
	ws := g.CaptureWarmState()

	bad := *ws
	bad.Precision = "i8"
	if err := g.RestoreWarmState(&bad); err == nil {
		t.Fatal("precision mismatch accepted")
	}
	bad = *ws
	bad.ShardCount = 4
	if err := g.RestoreWarmState(&bad); err == nil {
		t.Fatal("shard-ownership mismatch accepted")
	}
	// The guards must not have wrecked the engine: a clean restore
	// still works.
	if err := g.RestoreWarmState(ws); err != nil {
		t.Fatal(err)
	}
}

// TestCaptureWhileCachingDisabled: capture under DisableCache yields a
// nil Amort, and restore falls back cleanly.
func TestCaptureWhileCachingDisabled(t *testing.T) {
	g := trainedGlobalizer(t)
	defer g.SetCaching(true)
	g.SetCaching(false)
	g.Reset()
	sents := smallStream("persist-nocache", 20, 93).Sentences
	batches := stream.Batches(sents, 10)
	ref := g.ProcessBatchEntities(batches[0], ModeFull)
	ws := g.CaptureWarmState()
	if ws.Amort != nil {
		t.Fatal("cache-off capture produced amortizer state")
	}
	if err := g.RestoreWarmState(ws); err != nil {
		t.Fatal(err)
	}
	// Replaying the same batch over the restored state must answer the
	// same (idempotent re-ingestion is the fleet's replay contract).
	_ = ref
	got := g.ProcessBatchEntities(batches[1], ModeFull)
	g.SetCaching(true)

	// Against a from-scratch run of both batches.
	g.Reset()
	g.ProcessBatchEntities(batches[0], ModeFull)
	want := g.ProcessBatchEntities(batches[1], ModeFull)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("cache-off capture/restore diverged from scratch run")
	}
}
