package core

import (
	"time"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/obs"
)

// This file wires the observability subsystem (internal/obs) through
// the pipeline. Instrumentation follows the zero-overhead contract: a
// Globalizer with no observer carries a nil *pipeObs, and every record
// point below is a single nil-check branch — no clock reads, no
// atomics, no allocations — so the uninstrumented cycle path stays
// within noise of the pre-instrumentation pipeline (pinned by
// BenchmarkCycleObservability). Annotations are byte-identical with
// instrumentation on or off: every hook only reads pipeline state.
//
// Stage metrics map onto the paper's pipeline stages: Local NER
// tagging (stage_local), CTrie mention re-mining (stage_extract),
// phrase embedding (stage_embed), agglomerative clustering
// (stage_cluster), attention pooling (stage_pool), and cluster
// classification (stage_classify). Wall-clock stages observe once per
// cycle; fan-out stages observe once per work unit (surface form in
// the batch engines, cycle in the incremental engine), so sums are
// busy time across workers.

// pipeObs is the pipeline's registered metric set.
type pipeObs struct {
	reg   *obs.Registry
	spans *obs.SpanRecorder

	cycles       *obs.Counter
	cycleSeconds *obs.Histogram

	stageLocal    *obs.Histogram
	stageExtract  *obs.Histogram
	stageSurfaces *obs.Histogram
	stageEmbed    *obs.Histogram
	stageCluster  *obs.Histogram
	stagePool     *obs.Histogram
	stageClassify *obs.Histogram

	sentencesTagged    *obs.Counter
	trieSurfaces       *obs.Counter
	mentionsExtracted  *obs.Counter
	mentionsEmbedded   *obs.Counter
	embedCacheHits     *obs.Counter
	sentencesRescanned *obs.Counter
	scanCacheHits      *obs.Counter
	surfacesProcessed  *obs.Counter
	surfacesReused     *obs.Counter
	clustersFormed     *obs.Counter
	clusterMerges      *obs.Counter
	clustersClassified *obs.Counter
	verdictCacheHits   *obs.Counter

	streamSentences *obs.Gauge
	candClusters    *obs.Gauge
	// inferPrecision is an info gauge holding the active tier's index
	// (0 = f64, 1 = f32, 2 = i8) so dashboards can attribute
	// throughput shifts to precision changes.
	inferPrecision *obs.Gauge
	// kernelISA is the dispatched SIMD kernel tier's index (0 =
	// generic, 1 = sse2, 2 = avx2-fma, 3 = neon) — the second axis
	// dashboards need to compare throughput across heterogeneous
	// machines, including mixed amd64/arm64 fleets.
	kernelISA *obs.Gauge

	amortSentences *obs.Gauge
	amortRescanned *obs.Gauge
	amortSurfaces  *obs.Gauge
	amortReused    *obs.Gauge
}

// newPipeObs registers the pipeline metric set on the registry. A nil
// registry yields a nil *pipeObs — the uninstrumented fast path.
func newPipeObs(reg *obs.Registry) *pipeObs {
	if reg == nil {
		return nil
	}
	return &pipeObs{
		reg:   reg,
		spans: obs.NewSpanRecorder(8),

		cycles:       reg.Counter("ner_cycles_total", "execution cycles run (all engines)"),
		cycleSeconds: reg.Histogram("ner_cycle_seconds", "wall time of one execution cycle", nil),

		stageLocal:    reg.Histogram("ner_stage_local_seconds", "Local NER tagging wall time per batch", nil),
		stageExtract:  reg.Histogram("ner_stage_extract_seconds", "CTrie mention re-mining wall time per cycle", nil),
		stageSurfaces: reg.Histogram("ner_stage_surfaces_seconds", "surface fan-out (embed+cluster+classify) wall time per cycle", nil),
		stageEmbed:    reg.Histogram("ner_stage_embed_seconds", "phrase embedding busy time per work unit", nil),
		stageCluster:  reg.Histogram("ner_stage_cluster_seconds", "agglomerative clustering busy time per surface form", nil),
		stagePool:     reg.Histogram("ner_stage_pool_seconds", "attention pooling busy time per candidate cluster", nil),
		stageClassify: reg.Histogram("ner_stage_classify_seconds", "cluster classification busy time per decision", nil),

		sentencesTagged:    reg.Counter("ner_sentences_tagged_total", "sentences run through Local NER tagging"),
		trieSurfaces:       reg.Counter("ner_trie_surfaces_total", "surface forms registered in the CTrie"),
		mentionsExtracted:  reg.Counter("ner_mentions_extracted_total", "mentions mined from the accumulated stream"),
		mentionsEmbedded:   reg.Counter("ner_mentions_embedded_total", "phrase-embedder invocations (embed-cache misses)"),
		embedCacheHits:     reg.Counter("ner_embed_cache_hits_total", "mention embeddings served from the cross-cycle cache"),
		sentencesRescanned: reg.Counter("ner_sentences_rescanned_total", "sentences re-scanned against the CTrie"),
		scanCacheHits:      reg.Counter("ner_scan_cache_hits_total", "sentence scans served from the cross-cycle cache"),
		surfacesProcessed:  reg.Counter("ner_surfaces_processed_total", "surface forms processed by the global phase"),
		surfacesReused:     reg.Counter("ner_surface_outcomes_reused_total", "surface outcomes served from the cross-cycle cache"),
		clustersFormed:     reg.Counter("ner_clusters_formed_total", "candidate clusters produced by agglomerative clustering"),
		clusterMerges:      reg.Counter("ner_cluster_merges_total", "agglomerative merge steps performed"),
		clustersClassified: reg.Counter("ner_clusters_classified_total", "cluster type decisions computed"),
		verdictCacheHits:   reg.Counter("ner_cluster_verdict_cache_hits_total", "cluster verdicts served from the membership-signature cache"),

		streamSentences: reg.Gauge("ner_stream_sentences", "sentences in the accumulated stream"),
		candClusters:    reg.Gauge("ner_candidate_clusters", "candidate clusters in the current CandidateBase"),
		inferPrecision:  reg.Gauge("ner_infer_precision", "active inference precision tier (0=f64, 1=f32, 2=i8)"),
		kernelISA:       reg.Gauge("ner_kernel_isa", "dispatched SIMD kernel tier (0=generic, 1=sse2, 2=avx2-fma, 3=neon)"),

		amortSentences: reg.Gauge("ner_amort_sentences", "stream length seen by the most recent amortized cycle"),
		amortRescanned: reg.Gauge("ner_amort_rescanned", "sentences re-scanned in the most recent amortized cycle"),
		amortSurfaces:  reg.Gauge("ner_amort_surfaces", "surface forms processed in the most recent amortized cycle"),
		amortReused:    reg.Gauge("ner_amort_reused", "surface outcomes reused in the most recent amortized cycle"),
	}
}

// SetObserver attaches an observability registry to the pipeline: all
// subsequent cycles record per-stage wall time, item counts, cache
// activity, and per-cycle traces onto it, and the pipeline's worker
// pool registers its dispatch metrics. Passing nil detaches
// instrumentation entirely, restoring the zero-overhead path.
// Annotations are byte-identical either way.
func (g *Globalizer) SetObserver(reg *obs.Registry) {
	g.o = newPipeObs(reg)
	g.pool.SetObserver(reg)
	g.o.setPrecision(g.Precision())
	g.o.setKernelISA()
}

// setKernelISA publishes the dispatched SIMD tier's index on the info
// gauge. Called on attach and after runtime tier switches; the value
// mirrors nn.ActiveSIMD at that moment.
func (o *pipeObs) setKernelISA() {
	if o == nil {
		return
	}
	o.kernelISA.Set(int64(nn.ActiveSIMD()))
}

// setPrecision publishes the active inference tier's index on the
// info gauge.
func (o *pipeObs) setPrecision(p nn.Precision) {
	if o == nil {
		return
	}
	o.inferPrecision.Set(int64(p))
}

// Observer returns the attached registry (nil when uninstrumented).
func (g *Globalizer) Observer() *obs.Registry {
	if g.o == nil {
		return nil
	}
	return g.o.reg
}

// Traces returns the per-cycle stage traces of the most recent cycles
// (nil when uninstrumented).
func (g *Globalizer) Traces() []obs.CycleTrace {
	if g.o == nil {
		return nil
	}
	return g.o.spans.Traces()
}

// now reads the clock only when instrumentation is attached; record
// points pair it with a nil-checked observe so the detached path never
// touches the clock.
func (o *pipeObs) now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// beginCycle opens a cycle trace and bumps the cycle counter.
func (o *pipeObs) beginCycle() *obs.Trace {
	if o == nil {
		return nil
	}
	o.cycles.Inc()
	return o.spans.Begin()
}

// localDone records one Local NER batch: tagging wall time, sentences
// tagged, and surfaces newly registered in the CTrie.
func (o *pipeObs) localDone(tr *obs.Trace, t0 time.Time, sentences, newSurfaces int) {
	if o == nil {
		return
	}
	o.stageLocal.Observe(time.Since(t0).Seconds())
	o.sentencesTagged.Add(int64(sentences))
	o.trieSurfaces.Add(int64(newSurfaces))
	tr.Span("local", t0, int64(sentences), 0)
}

// extractDone records one mention re-mining pass: wall time, mentions
// mined, sentences actually re-scanned, and scans served from cache.
func (o *pipeObs) extractDone(tr *obs.Trace, t0 time.Time, mentions, rescanned, cacheHits int) {
	if o == nil {
		return
	}
	o.stageExtract.Observe(time.Since(t0).Seconds())
	o.mentionsExtracted.Add(int64(mentions))
	o.sentencesRescanned.Add(int64(rescanned))
	o.scanCacheHits.Add(int64(cacheHits))
	tr.Span("extract", t0, int64(mentions), 0)
}

// surfacesDone records the per-surface fan-out (embedding, clustering,
// pooling, classification): wall time, surfaces processed, and cached
// outcomes reused.
func (o *pipeObs) surfacesDone(tr *obs.Trace, t0 time.Time, surfaces, reused int) {
	if o == nil {
		return
	}
	o.stageSurfaces.Observe(time.Since(t0).Seconds())
	o.surfacesProcessed.Add(int64(surfaces))
	o.surfacesReused.Add(int64(reused))
	tr.Span("surfaces", t0, int64(surfaces), 0)
}

// cycleDone closes the cycle trace and refreshes the stream gauges.
func (o *pipeObs) cycleDone(tr *obs.Trace, t0 time.Time, streamSentences, candidates int) {
	if o == nil {
		return
	}
	o.cycleSeconds.Observe(time.Since(t0).Seconds())
	o.streamSentences.Set(int64(streamSentences))
	o.candClusters.Set(int64(candidates))
	tr.End()
}

// publishAmort mirrors the most recent cycle's AmortStats onto the
// registry gauges — the registry is where operators read them; the
// AmortStats accessor keeps serving the same numbers to existing
// callers.
func (o *pipeObs) publishAmort(st AmortStats) {
	if o == nil {
		return
	}
	o.amortSentences.Set(int64(st.Sentences))
	o.amortRescanned.Set(int64(st.Rescanned))
	o.amortSurfaces.Set(int64(st.Surfaces))
	o.amortReused.Set(int64(st.Reused))
}

// clusteringDone records one surface's agglomerative clustering:
// busy time, clusters formed, and merge steps (mentions − clusters).
func (o *pipeObs) clusteringDone(t0 time.Time, mentions, clusters int) {
	if o == nil {
		return
	}
	o.stageCluster.Observe(time.Since(t0).Seconds())
	o.clustersFormed.Add(int64(clusters))
	if merges := mentions - clusters; merges > 0 {
		o.clusterMerges.Add(int64(merges))
	}
}
