package core

import (
	"testing"

	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/metrics"
	"nerglobalizer/internal/types"
)

// TestDebugDiagnostics prints internal statistics of the trained
// pipeline; it never fails and exists to aid tuning.
func TestDebugDiagnostics(t *testing.T) {
	cfg := testConfig()
	g := New(cfg)
	pre := g.PretrainEncoder(corpus.PretrainTweets(400, 21))
	ft := g.FineTuneLocal(corpus.Generate(corpus.StreamConfig{
		Name: "train", NumTweets: 500, NumTopics: 3,
		PerTopicEntities: [4]int{15, 12, 10, 10},
		ZipfExponent:     1.1, TypoRate: 0.02, LowercaseRate: 0.35,
		NonEntityRate: 0.3, AmbiguousRate: 0.15, UninformativeRate: 0.15,
		Ambiguity: true, Streaming: false, Seed: 22,
	}).Sentences)
	d5 := smallStream("d5", 500, 23)
	sets := g.buildMentionSets(d5.Sentences)
	byType := map[types.EntityType]int{}
	mentionsByType := map[types.EntityType]int{}
	for _, s := range sets {
		byType[s.Type]++
		mentionsByType[s.Type] += len(s.Pooled)
	}
	t.Logf("pretrain losses: %v", pre)
	t.Logf("finetune losses: first=%.3f last=%.3f", ft[0], ft[len(ft)-1])
	t.Logf("mention sets by type: %v (mentions %v)", byType, mentionsByType)

	res := g.TrainGlobal(d5.Sentences)
	t.Logf("phrase: train=%.4f val=%.4f epochs=%d triplets=%d",
		res.Phrase.TrainLoss, res.Phrase.ValLoss, res.Phrase.EpochsRun, res.NumTriplets)
	t.Logf("classifier: val macro-F1=%.3f epochs=%d candidates=%d",
		res.Classifier.ValMacroF1, res.Classifier.EpochsRun, res.NumCandidates)

	test := smallStream("test", 250, 31)
	run := g.Run(test.Sentences, ModeFull)
	// Cluster statistics.
	nCand, nNone := 0, 0
	clustersPerSurface := map[int]int{}
	predByType := map[types.EntityType]int{}
	for _, surface := range g.CandidateBase().Surfaces() {
		cands := g.CandidateBase().ForSurface(surface)
		clustersPerSurface[len(cands)]++
		for _, c := range cands {
			nCand++
			predByType[c.Type]++
			if c.Type == types.None {
				nNone++
			}
		}
	}
	t.Logf("candidates=%d none=%d predByType=%v clustersPerSurface=%v",
		nCand, nNone, predByType, clustersPerSurface)
	local := metrics.Evaluate(test.GoldByKey(), run.Local)
	full := metrics.Evaluate(test.GoldByKey(), run.Final)
	for _, et := range types.EntityTypes {
		t.Logf("%s: local %+v full %+v", et, local.TypeF1(et), full.TypeF1(et))
	}
	t.Logf("macro local=%.3f full=%.3f", local.MacroF1(), full.MacroF1())
}
