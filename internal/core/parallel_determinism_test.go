package core

import (
	"reflect"
	"testing"

	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// TestWorkersOutputIdentical is the determinism contract of the
// data-parallel execution layer: at every worker count the pipeline
// must produce bit-identical tagger output, candidate clusters
// (assignments, embeddings, types, confidences), and final entity
// tables. The serial run (Workers=1) is the reference.
func TestWorkersOutputIdentical(t *testing.T) {
	g := trainedGlobalizer(t)
	orig := g.Workers()
	defer g.SetWorkers(orig)

	test := smallStream("par", 120, 41)

	g.SetWorkers(1)
	serial := g.Run(test.Sentences, ModeFull)
	serialCands := g.CandidateBase().All()

	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"workers=2", 2},
		{"workers=4", 4},
		{"workers=8", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g.SetWorkers(tc.workers)
			res := g.Run(test.Sentences, ModeFull)
			if !reflect.DeepEqual(res.Local, serial.Local) {
				t.Fatal("tagger output differs from serial run")
			}
			if !reflect.DeepEqual(res.Final, serial.Final) {
				t.Fatal("final entity table differs from serial run")
			}
			if res.Candidates != serial.Candidates {
				t.Fatalf("candidate count %d differs from serial %d", res.Candidates, serial.Candidates)
			}
			// Candidates carry cluster ids, member mentions, pooled
			// embeddings, and confidences — DeepEqual demands all of it
			// bit-identical, not just the entity decisions.
			if !reflect.DeepEqual(g.CandidateBase().All(), serialCands) {
				t.Fatal("candidate clusters differ from serial run")
			}
		})
	}
}

// TestEMDGlobalizerWorkersIdentical covers the per-surface fan-out of
// the EMD Globalizer comparison path.
func TestEMDGlobalizerWorkersIdentical(t *testing.T) {
	g := trainedGlobalizer(t)
	orig := g.Workers()
	defer g.SetWorkers(orig)

	test := smallStream("paremd", 80, 43)
	g.SetWorkers(1)
	serial := g.RunEMDGlobalizer(test.Sentences)
	g.SetWorkers(4)
	par := g.RunEMDGlobalizer(test.Sentences)
	if !reflect.DeepEqual(par, serial) {
		t.Fatal("EMD Globalizer output differs between Workers=1 and Workers=4")
	}
}

// TestIncrementalWorkersIdentical covers the incremental engine, whose
// greedy clustering is order-dependent: parallel embedding must not
// perturb the serial Add order, so every cycle's output must match the
// serial run exactly.
func TestIncrementalWorkersIdentical(t *testing.T) {
	g := trainedGlobalizer(t)
	orig := g.Workers()
	defer g.SetWorkers(orig)

	test := smallStream("parinc", 100, 47)
	batches := stream.Batches(test.Sentences, 25)
	run := func(workers int) []map[types.SentenceKey][]types.Entity {
		g.SetWorkers(workers)
		inc := NewIncremental(g)
		outs := make([]map[types.SentenceKey][]types.Entity, 0, len(batches))
		for _, b := range batches {
			outs = append(outs, inc.Cycle(b))
		}
		return outs
	}
	serial := run(1)
	par := run(4)
	for i := range serial {
		if !reflect.DeepEqual(par[i], serial[i]) {
			t.Fatalf("incremental cycle %d differs between Workers=1 and Workers=4", i)
		}
	}
}
