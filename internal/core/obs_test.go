package core

import (
	"reflect"
	"strings"
	"testing"

	"nerglobalizer/internal/obs"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// These tests pin the observability contract: attaching a registry
// never changes annotations (every hook only reads pipeline state),
// the registered metric set covers the paper's stages plus the caches
// and the pool, and the detached path records nothing.

// runObserved drives ProcessBatch over the stream and returns the
// per-cycle final entity tables.
func runObserved(g *Globalizer, sents []*types.Sentence, batchSize int, reg *obs.Registry) []map[types.SentenceKey][]types.Entity {
	g.SetObserver(reg)
	g.Reset()
	var out []map[types.SentenceKey][]types.Entity
	for _, b := range stream.Batches(sents, batchSize) {
		out = append(out, g.ProcessBatch(b, ModeFull))
	}
	return out
}

func TestObserverDoesNotChangeAnnotations(t *testing.T) {
	g := trainedGlobalizer(t)
	defer g.SetObserver(nil)
	sents := smallStream("obs-ident", 120, 91).Sentences

	for _, cached := range []bool{true, false} {
		g.SetCaching(cached)
		plain := runObserved(g, sents, 30, nil)
		instrumented := runObserved(g, sents, 30, obs.NewRegistry())
		if len(plain) != len(instrumented) {
			t.Fatalf("cached=%v: cycle counts differ", cached)
		}
		for ci := range plain {
			if !reflect.DeepEqual(plain[ci], instrumented[ci]) {
				t.Fatalf("cached=%v: annotations differ at cycle %d with observer attached", cached, ci)
			}
		}
	}

	// The EMD and incremental engines share the hooks; pin them too.
	g.SetCaching(true)
	emdPlain := g.RunEMDGlobalizer(sents)
	g.SetObserver(obs.NewRegistry())
	emdObserved := g.RunEMDGlobalizer(sents)
	if !reflect.DeepEqual(emdPlain, emdObserved) {
		t.Fatal("EMD engine annotations differ with observer attached")
	}

	g.SetObserver(nil)
	inc := NewIncremental(g)
	var incPlain []map[types.SentenceKey][]types.Entity
	for _, b := range stream.Batches(sents, 30) {
		incPlain = append(incPlain, inc.Cycle(b))
	}
	g.SetObserver(obs.NewRegistry())
	inc = NewIncremental(g)
	for ci, b := range stream.Batches(sents, 30) {
		if got := inc.Cycle(b); !reflect.DeepEqual(got, incPlain[ci]) {
			t.Fatalf("incremental engine annotations differ at cycle %d with observer attached", ci)
		}
	}
}

func TestObserverRecordsPipelineActivity(t *testing.T) {
	g := trainedGlobalizer(t)
	defer g.SetObserver(nil)
	sents := smallStream("obs-activity", 120, 92).Sentences

	reg := obs.NewRegistry()
	g.SetCaching(true)
	runObserved(g, sents, 30, reg)
	// Re-submit the first batch: replacing records invalidates their
	// sentences and clears every cached surface outcome, so the rebuild
	// re-embeds mention pools through the embed cache — the
	// deterministic cache-hit path (append-only growth reuses embedding
	// prefixes without consulting the cache at all).
	g.ProcessBatch(sents[:30], ModeFull)

	s := reg.Snapshot()
	st := g.AmortStats()

	if got := s.Counters["ner_cycles_total"]; got != 5 {
		t.Fatalf("ner_cycles_total = %d, want 5", got)
	}
	if got := s.Counters["ner_sentences_tagged_total"]; got < 120 {
		t.Fatalf("ner_sentences_tagged_total = %d, want >= 120", got)
	}
	for _, name := range []string{
		"ner_mentions_extracted_total",
		"ner_mentions_embedded_total",
		"ner_surfaces_processed_total",
		"ner_clusters_formed_total",
		"ner_clusters_classified_total",
		"ner_trie_surfaces_total",
		"ner_sentences_rescanned_total",
		"ner_pool_tasks_total",
	} {
		if s.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, s.Counters[name])
		}
	}
	// Cross-cycle caches must have produced hits over a 4-cycle replay
	// of a mostly unchanged stream.
	if s.Counters["ner_embed_cache_hits_total"] <= 0 {
		t.Error("embed cache recorded no hits over a warm replay")
	}
	if s.Counters["ner_scan_cache_hits_total"] <= 0 {
		t.Error("scan cache recorded no hits over a warm replay")
	}
	// AmortStats and the registry gauges are the same numbers.
	if got := s.Gauges["ner_amort_sentences"]; got != int64(st.Sentences) {
		t.Errorf("ner_amort_sentences = %d, AmortStats.Sentences = %d", got, st.Sentences)
	}
	if got := s.Gauges["ner_amort_reused"]; got != int64(st.Reused) {
		t.Errorf("ner_amort_reused = %d, AmortStats.Reused = %d", got, st.Reused)
	}
	if got := s.Gauges["ner_stream_sentences"]; got != int64(g.TweetBase().Len()) {
		t.Errorf("ner_stream_sentences = %d, TweetBase.Len = %d", got, g.TweetBase().Len())
	}

	// Stage histograms observed real durations.
	for _, name := range []string{
		"ner_stage_local_seconds",
		"ner_stage_extract_seconds",
		"ner_stage_surfaces_seconds",
		"ner_stage_embed_seconds",
		"ner_stage_cluster_seconds",
		"ner_stage_classify_seconds",
		"ner_cycle_seconds",
	} {
		h := s.Histograms[name]
		if h.Count <= 0 || h.Sum <= 0 {
			t.Errorf("histogram %s: count=%d sum=%v, want observations", name, h.Count, h.Sum)
		}
	}

	// The acceptance floor: at least 12 distinct metrics spanning the
	// subsystems, all exposable as valid Prometheus text.
	if reg.Len() < 12 {
		t.Fatalf("registry has %d metrics, want >= 12", reg.Len())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ner_cycle_seconds_bucket{le=\"+Inf\"}") {
		t.Fatal("exposition missing histogram series")
	}

	// Per-cycle traces carry the stage spans.
	traces := g.Traces()
	if len(traces) != 5 {
		t.Fatalf("recorded %d traces, want 5", len(traces))
	}
	last := traces[len(traces)-1]
	stages := map[string]bool{}
	for _, sp := range last.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"local", "extract", "surfaces"} {
		if !stages[want] {
			t.Errorf("last cycle trace missing stage %q (have %v)", want, last.Spans)
		}
	}
	if last.WallSec <= 0 {
		t.Error("cycle trace has zero wall time")
	}

	// Detaching stops recording.
	g.SetObserver(nil)
	before := reg.Snapshot().Counters["ner_cycles_total"]
	g.ProcessBatch(sents[:10], ModeFull)
	if after := reg.Snapshot().Counters["ner_cycles_total"]; after != before {
		t.Fatalf("detached pipeline still recorded cycles: %d -> %d", before, after)
	}
	if g.Observer() != nil || g.Traces() != nil {
		t.Fatal("detached pipeline still reports an observer")
	}
}

// BenchmarkCycleObservability compares the continuous-execution cycle
// with instrumentation detached (the nil-registry fast path, which
// must stay within noise of the pre-instrumentation pipeline) and
// attached (the full metric set plus per-cycle traces).
func BenchmarkCycleObservability(b *testing.B) {
	g := trainedGlobalizer(b)
	defer g.SetObserver(nil)
	sents := smallStream("obs-bench", 240, 93).Sentences
	batches := stream.Batches(sents, 40)

	for _, bench := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"nil-registry", nil},
		{"instrumented", obs.NewRegistry()},
	} {
		b.Run(bench.name, func(b *testing.B) {
			g.SetObserver(bench.reg)
			g.SetCaching(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Reset()
				for _, batch := range batches {
					g.ProcessBatch(batch, ModeFull)
				}
			}
		})
	}
}
