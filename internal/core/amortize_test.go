package core

import (
	"reflect"
	"testing"

	"nerglobalizer/internal/mention"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// These tests pin the amortization invariant: every engine produces
// byte-identical output with the cross-cycle caches on or off, at any
// worker count. DeepEqual on the final entity tables AND the candidate
// base demands bit-identical embeddings, cluster assignments and
// confidences, not just matching entity decisions.

// cycleSnapshot captures everything observable after one execution
// cycle.
type cycleSnapshot struct {
	final map[types.SentenceKey][]types.Entity
	cands []*stream.Candidate
}

// runCycles drives ProcessBatch over the stream in fixed-size cycles,
// snapshotting each cycle's output. modeAt lets a test switch ablation
// modes mid-stream (nil = ModeFull throughout).
func runCycles(g *Globalizer, sents []*types.Sentence, batchSize int, cached bool, workers int, modeAt func(cycle int) Mode) []cycleSnapshot {
	g.SetCaching(cached)
	g.SetWorkers(workers)
	g.Reset()
	var out []cycleSnapshot
	for ci, b := range stream.Batches(sents, batchSize) {
		mode := ModeFull
		if modeAt != nil {
			mode = modeAt(ci)
		}
		final := g.ProcessBatch(b, mode)
		out = append(out, cycleSnapshot{final: final, cands: g.CandidateBase().All()})
	}
	return out
}

func compareCycles(t *testing.T, name string, got, want []cycleSnapshot) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cycles, want %d", name, len(got), len(want))
	}
	for ci := range want {
		if !reflect.DeepEqual(got[ci].final, want[ci].final) {
			t.Fatalf("%s: final entity table differs at cycle %d", name, ci)
		}
		if !reflect.DeepEqual(got[ci].cands, want[ci].cands) {
			t.Fatalf("%s: candidate clusters differ at cycle %d", name, ci)
		}
	}
}

// TestCachedMatchesUncachedBatchEngine compares multi-cycle
// ProcessBatch runs with amortization on against the scratch
// recomputation, across ablation modes and worker counts.
func TestCachedMatchesUncachedBatchEngine(t *testing.T) {
	g := trainedGlobalizer(t)
	origWorkers := g.Workers()
	defer func() {
		g.SetWorkers(origWorkers)
		g.SetCaching(true)
	}()

	test := smallStream("amort", 100, 53)

	// ModeFull is the production path: verify against the uncached
	// reference at several worker counts, and check the caches actually
	// engaged (later cycles reuse surface outcomes and skip re-scans).
	ref := runCycles(g, test.Sentences, 25, false, 1, nil)
	for _, workers := range []int{1, 4} {
		got := runCycles(g, test.Sentences, 25, true, workers, nil)
		compareCycles(t, "ModeFull cached", got, ref)

		st := g.AmortStats()
		if st.Sentences != len(test.Sentences) {
			t.Fatalf("stats saw %d sentences, want %d", st.Sentences, len(test.Sentences))
		}
		if st.Reused == 0 {
			t.Fatal("final cycle reused no surface outcomes — amortization never engaged")
		}
		if st.Rescanned >= st.Sentences {
			t.Fatalf("final cycle re-scanned all %d sentences — scan cache never engaged", st.Sentences)
		}
	}

	// Remaining global modes: cached parallel run against the uncached
	// serial reference.
	for _, mode := range []Mode{ModeLocalEmbeddings, ModeMentionExtraction} {
		mode := mode
		modeAt := func(int) Mode { return mode }
		ref := runCycles(g, test.Sentences, 25, false, 1, modeAt)
		got := runCycles(g, test.Sentences, 25, true, 4, modeAt)
		compareCycles(t, mode.String(), got, ref)
	}
}

// TestCachedModeSwitchMidStream switches ablation modes between cycles
// of one continuous run: cached surface outcomes encode the mode they
// were computed at, so a switch must invalidate them — the output must
// still match the scratch recomputation exactly.
func TestCachedModeSwitchMidStream(t *testing.T) {
	g := trainedGlobalizer(t)
	origWorkers := g.Workers()
	defer func() {
		g.SetWorkers(origWorkers)
		g.SetCaching(true)
	}()

	test := smallStream("amortmode", 80, 59)
	modeAt := func(cycle int) Mode {
		switch cycle {
		case 2:
			return ModeLocalEmbeddings
		default:
			return ModeFull
		}
	}
	ref := runCycles(g, test.Sentences, 20, false, 1, modeAt)
	got := runCycles(g, test.Sentences, 20, true, 4, modeAt)
	compareCycles(t, "mode switch", got, ref)
}

// TestCachedMatchesUncachedEMD covers the EMD Globalizer comparison
// path, whose per-mention embeddings route through the shared cache.
func TestCachedMatchesUncachedEMD(t *testing.T) {
	g := trainedGlobalizer(t)
	origWorkers := g.Workers()
	defer func() {
		g.SetWorkers(origWorkers)
		g.SetCaching(true)
	}()

	test := smallStream("amortemd", 80, 61)
	g.SetCaching(false)
	g.SetWorkers(1)
	ref := g.RunEMDGlobalizer(test.Sentences)
	g.SetCaching(true)
	g.SetWorkers(4)
	got := g.RunEMDGlobalizer(test.Sentences)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("EMD Globalizer output differs with caching enabled")
	}
}

// TestCachedMatchesUncachedIncremental covers the incremental engine,
// whose per-mention embeddings route through the shared cache.
func TestCachedMatchesUncachedIncremental(t *testing.T) {
	g := trainedGlobalizer(t)
	origWorkers := g.Workers()
	defer func() {
		g.SetWorkers(origWorkers)
		g.SetCaching(true)
	}()

	test := smallStream("amortinc", 80, 67)
	batches := stream.Batches(test.Sentences, 20)
	run := func(cached bool, workers int) []map[types.SentenceKey][]types.Entity {
		g.SetCaching(cached)
		g.SetWorkers(workers)
		inc := NewIncremental(g)
		outs := make([]map[types.SentenceKey][]types.Entity, 0, len(batches))
		for _, b := range batches {
			outs = append(outs, inc.Cycle(b))
		}
		return outs
	}
	ref := run(false, 1)
	got := run(true, 4)
	for ci := range ref {
		if !reflect.DeepEqual(got[ci], ref[ci]) {
			t.Fatalf("incremental cycle %d differs with caching enabled", ci)
		}
	}
}

// TestLateSurfaceInvalidatesScanCache drives the scan cache directly
// through the pathological ordering the token-membership filter
// exists for: a surface form registered in a late cycle ("new york
// city") occurs verbatim in an old, already-cached sentence and must
// force that sentence's re-scan — reshaping its cached mentions — while
// unrelated cached sentences are left untouched.
func TestLateSurfaceInvalidatesScanCache(t *testing.T) {
	g := New(testConfig())

	s0 := &types.Sentence{TweetID: 1, Tokens: []string{"visit", "new", "york", "city", "soon"}}
	s1 := &types.Sentence{TweetID: 2, Tokens: []string{"alpha", "beta", "gamma"}}
	s2 := &types.Sentence{TweetID: 3, Tokens: []string{"talk", "about", "new", "york", "city"}}

	extract := func(batch []*types.Sentence, newSurfaces [][]string) []types.Mention {
		for _, s := range batch {
			g.tweetBase.Add(&stream.Record{Sentence: s})
		}
		for _, toks := range newSurfaces {
			g.trie.Insert(toks)
		}
		return g.amort.extract(g, batch, newSurfaces)
	}
	// fullRescan is the ground truth: every sentence against the full
	// trie, concatenated in stream order.
	fullRescan := func() []types.Mention {
		var want []types.Mention
		for _, r := range g.tweetBase.Records() {
			want = append(want, mention.Extract(r.Sentence, g.trie, r.LocalEntities)...)
		}
		return want
	}

	// Cycle 1: "york" registers and matches s0 at [2,3).
	got := extract([]*types.Sentence{s0}, [][]string{{"york"}})
	if !reflect.DeepEqual(got, fullRescan()) {
		t.Fatal("cycle 1: cached extraction differs from full rescan")
	}
	if len(got) != 1 || got[0].Surface != "york" {
		t.Fatalf("cycle 1: got %v, want one 'york' mention", got)
	}

	// Cycle 2: "alpha" cannot occur in s0 (membership filter misses),
	// so only the batch sentence is scanned.
	got = extract([]*types.Sentence{s1}, [][]string{{"alpha"}})
	if !reflect.DeepEqual(got, fullRescan()) {
		t.Fatal("cycle 2: cached extraction differs from full rescan")
	}
	if st := g.amort.stats; st.Sentences != 2 || st.Rescanned != 1 {
		t.Fatalf("cycle 2: rescanned %d of %d sentences, want 1 of 2", st.Rescanned, st.Sentences)
	}
	s1Scan := g.amort.scans[s1.Key()]

	// Cycle 3: "new york city" arrives late. Its first token occurs in
	// s0, so s0 must be re-scanned — the longer surface now shadows the
	// old "york" match — while s1 stays cached.
	got = extract([]*types.Sentence{s2}, [][]string{{"new", "york", "city"}})
	if !reflect.DeepEqual(got, fullRescan()) {
		t.Fatal("cycle 3: cached extraction differs from full rescan")
	}
	if st := g.amort.stats; st.Sentences != 3 || st.Rescanned != 2 {
		t.Fatalf("cycle 3: rescanned %d of %d sentences, want 2 of 3 (s0 and the batch)", st.Rescanned, st.Sentences)
	}
	for _, m := range got {
		if m.Key == s0.Key() && m.Surface == "york" {
			t.Fatal("cycle 3: stale 'york' mention survived in s0 after 'new york city' registered")
		}
	}
	var sawLong bool
	for _, m := range got {
		if m.Key == s0.Key() && m.Surface == "new york city" {
			sawLong = true
		}
	}
	if !sawLong {
		t.Fatal("cycle 3: s0 was not re-scanned against the late surface")
	}
	if &g.amort.scans[s1.Key()][0] != &s1Scan[0] {
		t.Fatal("cycle 3: s1 was re-scanned although the filter should have skipped it")
	}
}
