package core

import (
	"fmt"
	"sort"
	"time"

	"nerglobalizer/internal/classifier"
	"nerglobalizer/internal/cluster"
	"nerglobalizer/internal/ctrie"
	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/mention"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/obs"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/phrase"
	"nerglobalizer/internal/rnn"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

// Mode selects how much of the pipeline runs — the ablation stages of
// Figure 3, bottom curve to top.
type Mode int

// Ablation stages.
const (
	// ModeLocalOnly stops after Local NER (the bottom curve of Fig. 3).
	ModeLocalOnly Mode = iota
	// ModeMentionExtraction adds occurrence mining with
	// majority-vote typing of each surface form.
	ModeMentionExtraction
	// ModeLocalEmbeddings classifies each mention individually from
	// its local embedding (no global pooling).
	ModeLocalEmbeddings
	// ModeFull is the complete pipeline with global candidate
	// embeddings (the top curve).
	ModeFull
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeLocalOnly:
		return "LocalNER"
	case ModeMentionExtraction:
		return "+MentionExtraction"
	case ModeLocalEmbeddings:
		return "+LocalEmbeddings"
	default:
		return "+GlobalEmbeddings"
	}
}

// Globalizer is the assembled NER Globalizer system.
type Globalizer struct {
	cfg Config

	// pool shards the pipeline's data-parallel hot paths. Sized from
	// cfg.Workers (0 = GOMAXPROCS, 1 = serial); output is identical at
	// every width, so it only trades wall-clock.
	pool *parallel.Pool

	Tagger   *localner.Tagger
	Embedder *phrase.Embedder
	// Classifier is the first ensemble member, kept for direct access;
	// classification averages the probability vectors of Ensemble.
	Classifier *classifier.Classifier
	Ensemble   []*classifier.Classifier

	// Per-stream state, reset by Reset.
	trie      *ctrie.Trie
	tweetBase *stream.TweetBase
	candBase  *stream.CandidateBase
	// amort carries the cross-cycle caches of the continuous execution
	// setup (embeddings, scans, surface outcomes); see amortize.go.
	amort *amortizer
	// shardIndex/shardCount restrict the Global NER phase to surface
	// forms this engine owns in a sharded fleet (see SetShardOwnership);
	// shardCount <= 1 — the default — owns everything.
	shardIndex, shardCount int
	// o is the observability hook set (see obs.go); nil — the default —
	// keeps every record point a single branch on the hot path.
	o *pipeObs
}

// New builds a Globalizer with untrained components. Callers normally
// follow with PretrainEncoder, FineTuneLocal and TrainGlobal (or use
// the Trainer in train.go).
func New(cfg Config) *Globalizer {
	var enc localner.Encoder
	switch cfg.Kind {
	case EncoderBiGRU:
		enc = rnn.NewEncoder(rnn.Config{
			Dim:          cfg.Encoder.Dim,
			MaxLen:       cfg.Encoder.MaxLen,
			VocabBuckets: cfg.Encoder.VocabBuckets,
			CharBuckets:  cfg.Encoder.CharBuckets,
			Seed:         cfg.Encoder.Seed,
		})
	default:
		enc = transformer.NewEncoder(cfg.Encoder)
	}
	g := &Globalizer{
		cfg:      cfg,
		pool:     parallel.New(cfg.Workers),
		Tagger:   localner.NewTagger(enc, cfg.FineTuneLR),
		Embedder: phrase.NewEmbedder(cfg.Encoder.Dim, cfg.Seed+1),
	}
	g.Tagger.BatchTokens = cfg.InferBatchTokens
	g.Ensemble = newEnsemble(cfg)
	g.Classifier = g.Ensemble[0]
	// Apply the configured precision tier; like Encoder.validate, an
	// invalid configuration is a programming error, not a fallback.
	prec, err := nn.ParsePrecision(cfg.InferPrecision)
	if err != nil {
		panic(err)
	}
	if err := g.SetPrecision(prec); err != nil {
		panic(err)
	}
	g.Reset()
	return g
}

// newEnsemble builds EnsembleSize independently seeded classifiers.
func newEnsemble(cfg Config) []*classifier.Classifier {
	n := cfg.EnsembleSize
	if n < 1 {
		n = 1
	}
	out := make([]*classifier.Classifier, n)
	for i := range out {
		out[i] = classifier.New(cfg.Encoder.Dim, cfg.Seed+2+int64(i)*101)
	}
	return out
}

// classify averages the ensemble's probability vectors for a cluster
// and returns the winning class with its mean probability.
func (g *Globalizer) classify(embs [][]float64) (types.EntityType, float64) {
	if len(embs) == 0 {
		return types.None, 1
	}
	mean := make([]float64, types.NumClasses)
	for _, c := range g.Ensemble {
		_, probs := c.Classify(embs)
		for i, p := range probs {
			mean[i] += p
		}
	}
	for i := range mean {
		mean[i] /= float64(len(g.Ensemble))
	}
	best := 0
	for i, p := range mean {
		if p > mean[best] {
			best = i
		}
	}
	return types.EntityType(best), mean[best]
}

// Config returns the pipeline configuration.
func (g *Globalizer) Config() Config { return g.cfg }

// SetWorkers resizes the worker pool used by the data-parallel hot
// paths: 0 selects GOMAXPROCS, 1 forces serial execution. Output is
// identical at every setting. Useful after loading a checkpoint whose
// saved config pinned a different width.
func (g *Globalizer) SetWorkers(workers int) {
	g.cfg.Workers = workers
	g.pool = parallel.New(workers)
	if g.o != nil {
		// The fresh pool inherits the attached registry so pool metrics
		// survive a resize.
		g.pool.SetObserver(g.o.reg)
	}
}

// Workers returns the configured pool width.
func (g *Globalizer) Workers() int { return g.pool.Workers() }

// SetInferBatch re-caps the tokens packed per batched encoder
// inference call (0 disables packing). Annotations are byte-identical
// at every setting; the knob trades kernel shapes for wall-clock only.
// Useful after loading a checkpoint saved before batching existed,
// whose config decodes with packing off.
func (g *Globalizer) SetInferBatch(tokens int) {
	g.cfg.InferBatchTokens = tokens
	g.Tagger.BatchTokens = tokens
}

// InferBatchTokens returns the configured packed-inference cap.
func (g *Globalizer) InferBatchTokens() int { return g.cfg.InferBatchTokens }

// SetPrecision switches every inference consumer — the tagger's
// encoder and the phrase embedder — onto the given precision tier and
// records it in the config (so checkpoints round-trip the setting).
// F64 restores the exact, bit-identical-to-training path. Returns an
// error when the encoder family has no reduced-precision kernels
// (the BiGRU); the pipeline is left on its previous tier in that case.
func (g *Globalizer) SetPrecision(p nn.Precision) error {
	if !g.Tagger.SetPrecision(p) {
		return fmt.Errorf("core: encoder kind %q does not support inference precision %q", g.cfg.Kind, p)
	}
	g.Embedder.SetPrecision(p)
	g.cfg.InferPrecision = p.String()
	g.o.setPrecision(p)
	return nil
}

// Precision returns the active inference precision tier.
func (g *Globalizer) Precision() nn.Precision { return g.Tagger.Precision() }

// WithObjective returns a new Globalizer that shares this one's
// (already trained) Local NER tagger but carries fresh, untrained
// Global NER components configured for the given contrastive
// objective. Used to compare the two Phrase Embedder objectives
// (Table II) without re-training the language model.
func (g *Globalizer) WithObjective(obj Objective) *Globalizer {
	cfg := g.cfg
	cfg.Objective = obj
	cfg.Seed += 40 + int64(obj)*7
	v := &Globalizer{
		cfg:      cfg,
		pool:     g.pool,
		Tagger:   g.Tagger,
		Embedder: phrase.NewEmbedder(cfg.Encoder.Dim, cfg.Seed+10),
	}
	// The fresh embedder inherits the active tier (the shared tagger
	// already carries it).
	v.Embedder.SetPrecision(g.Precision())
	v.Ensemble = newEnsemble(cfg)
	v.Classifier = v.Ensemble[0]
	v.Reset()
	return v
}

// AllParams returns every trainable parameter of the assembled system
// — the Local NER tagger (encoder plus head), the Phrase Embedder, and
// every Entity Classifier in the ensemble — for checkpointing.
func (g *Globalizer) AllParams() []*nn.Param {
	ps := g.Tagger.Params()
	ps = append(ps, g.Embedder.Params()...)
	for _, c := range g.Ensemble {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// WithClusterThreshold returns a view of this Globalizer that shares
// every trained component but clusters candidate mentions at a
// different agglomerative threshold. Used by the threshold-sweep
// ablation bench.
func (g *Globalizer) WithClusterThreshold(th float64) *Globalizer {
	cfg := g.cfg
	cfg.ClusterThreshold = th
	v := &Globalizer{
		cfg:        cfg,
		pool:       g.pool,
		Tagger:     g.Tagger,
		Embedder:   g.Embedder,
		Classifier: g.Classifier,
		Ensemble:   g.Ensemble,
	}
	v.Reset()
	return v
}

// SetShardOwnership restricts the Global NER phase to the surface
// forms owned by shard index in a fleet of count engines (ownership is
// ctrie.OwnerShard of the canonical surface). Every shard still
// replicates the full stream — trie scans resolve overlaps across the
// whole trie, so mention extraction must see everything — but the
// expensive per-surface steps (embedding, clustering, classification)
// run only for owned surfaces, and FinalMentions and the CandidateBase
// carry owned surfaces only. Because those steps are pure functions of
// a surface's own mention pool, the union of K shards' outputs is
// byte-identical to an unsharded run. Resets stream state: ownership
// must be fixed for the lifetime of a stream.
func (g *Globalizer) SetShardOwnership(index, count int) error {
	if count < 1 || index < 0 || index >= count {
		return fmt.Errorf("core: invalid shard ownership %d of %d", index, count)
	}
	g.shardIndex, g.shardCount = index, count
	g.Reset()
	return nil
}

// ShardOwnership returns the configured (index, count); count <= 1
// means this engine owns every surface.
func (g *Globalizer) ShardOwnership() (int, int) { return g.shardIndex, g.shardCount }

// ownsSurface reports whether this engine's Global NER phase processes
// the canonical surface form.
func (g *Globalizer) ownsSurface(surface string) bool {
	return g.shardCount <= 1 || ctrie.OwnerShard(surface, g.shardCount) == g.shardIndex
}

// ownedSurfaces filters a sorted surface list down to owned ones,
// in place (the caller's slice is freshly built).
func (g *Globalizer) ownedSurfaces(surfaces []string) []string {
	if g.shardCount <= 1 {
		return surfaces
	}
	out := surfaces[:0]
	for _, s := range surfaces {
		if g.ownsSurface(s) {
			out = append(out, s)
		}
	}
	return out
}

// Reset clears all per-stream state (CTrie, TweetBase, CandidateBase)
// so the same trained system can process a fresh stream.
func (g *Globalizer) Reset() {
	g.trie = ctrie.New()
	g.tweetBase = stream.NewTweetBase()
	g.candBase = stream.NewCandidateBase()
	g.amort = newAmortizer()
}

// SetCaching toggles the cross-cycle amortization layer. Annotations
// are byte-identical either way; the setting only trades per-cycle
// wall-clock against cache memory. Toggling mid-stream is safe: every
// cache entry is validated against its exact inputs before reuse.
func (g *Globalizer) SetCaching(enabled bool) { g.cfg.DisableCache = !enabled }

// CachingEnabled reports whether the amortization layer is active.
func (g *Globalizer) CachingEnabled() bool { return !g.cfg.DisableCache }

// TweetBase exposes the per-sentence records of the current stream.
func (g *Globalizer) TweetBase() *stream.TweetBase { return g.tweetBase }

// CandidateBase exposes the candidate clusters of the current stream.
func (g *Globalizer) CandidateBase() *stream.CandidateBase { return g.candBase }

// RunResult is the outcome of processing a stream.
type RunResult struct {
	// Local holds Local NER's entities per sentence; Final holds the
	// pipeline output at the requested mode.
	Local map[types.SentenceKey][]types.Entity
	Final map[types.SentenceKey][]types.Entity
	// LocalTime and GlobalTime split the wall-clock cost the way
	// Table IV reports it.
	LocalTime  time.Duration
	GlobalTime time.Duration
	// Candidates is the number of candidate clusters formed.
	Candidates int
}

// Run executes the pipeline over the sentences at the given mode: the
// Local NER phase proceeds batch by batch (the CTrie growing as the
// stream evolves), then the Global NER phase processes the accumulated
// stream state. Run resets per-stream state first.
func (g *Globalizer) Run(sents []*types.Sentence, mode Mode) *RunResult {
	g.Reset()
	res := &RunResult{}
	tr := g.o.beginCycle()
	t0 := g.o.now()

	startLocal := time.Now()
	for _, batch := range stream.Batches(sents, g.cfg.BatchSize) {
		g.localPhase(batch, tr)
	}
	res.LocalTime = time.Since(startLocal)
	res.Local = g.tweetBase.LocalEntityMap()

	if mode == ModeLocalOnly {
		res.Final = res.Local
		g.o.cycleDone(tr, t0, g.tweetBase.Len(), 0)
		return res
	}

	startGlobal := time.Now()
	g.globalPhase(mode, tr)
	res.GlobalTime = time.Since(startGlobal)
	res.Final = g.tweetBase.FinalEntityMap()
	res.Candidates = g.candBase.Len()
	g.o.cycleDone(tr, t0, g.tweetBase.Len(), res.Candidates)
	return res
}

// ProcessBatch consumes one execution cycle of the stream: it runs the
// Local NER phase over the incoming batch (growing the CTrie and
// TweetBase) and then refreshes the Global NER phase over the whole
// accumulated stream, returning the current final entities for every
// sentence seen so far. Unlike Run it does not reset state, so
// repeated calls realize the paper's continuous, incremental execution
// setup — candidates gather more mentions (and more reliable global
// embeddings) with every cycle.
func (g *Globalizer) ProcessBatch(batch []*types.Sentence, mode Mode) map[types.SentenceKey][]types.Entity {
	g.runCycle(batch, nil, mode)
	if mode == ModeLocalOnly {
		return g.tweetBase.LocalEntityMap()
	}
	return g.tweetBase.FinalEntityMap()
}

// ProcessBatchEntities consumes one execution cycle exactly like
// ProcessBatch but returns entities for the batch's sentences only,
// skipping the whole-stream entity map build — the shape serving paths
// want, since /annotate answers for the submitted tweets.
func (g *Globalizer) ProcessBatchEntities(batch []*types.Sentence, mode Mode) map[types.SentenceKey][]types.Entity {
	g.runCycle(batch, nil, mode)
	return g.batchEntities(batch, mode)
}

// TagBatch runs Local NER tagging — the encoder forward and BIO decode
// — over a batch without touching stream state. Fleet routers
// partition this stage across shards: per-sentence results are
// byte-identical at any batch composition (the PR 3 contract), so any
// shard may tag any slice and the results replay everywhere via
// ProcessTagged.
func (g *Globalizer) TagBatch(batch []*types.Sentence) []*localner.Result {
	toks := make([][]string, len(batch))
	for i, s := range batch {
		toks[i] = s.Tokens
	}
	return g.Tagger.RunBatch(toks, g.pool)
}

// ProcessTagged consumes one execution cycle with externally supplied
// tag results (index-aligned with batch, e.g. shipped from another
// shard that ran TagBatch), returning entities for the batch's
// sentences. Byte-identical to ProcessBatchEntities when the results
// came from an identically configured engine.
func (g *Globalizer) ProcessTagged(batch []*types.Sentence, tagged []*localner.Result, mode Mode) map[types.SentenceKey][]types.Entity {
	g.runCycle(batch, tagged, mode)
	return g.batchEntities(batch, mode)
}

// runCycle is the shared cycle body of the ProcessBatch variants.
func (g *Globalizer) runCycle(batch []*types.Sentence, tagged []*localner.Result, mode Mode) {
	tr := g.o.beginCycle()
	t0 := g.o.now()
	var newSurfaces [][]string
	if tagged != nil {
		newSurfaces = g.applyTagged(batch, tagged, tr, g.o.now())
	} else {
		newSurfaces = g.localPhase(batch, tr)
	}
	if mode == ModeLocalOnly {
		g.o.cycleDone(tr, t0, g.tweetBase.Len(), 0)
		return
	}
	if g.cfg.DisableCache {
		g.candBase = stream.NewCandidateBase()
		g.globalPhase(mode, tr)
		// The amortizer did not see this cycle's outputs; the next
		// amortized cycle revalidates and republishes everything.
		g.amort.markStale()
	} else {
		g.amortizedGlobalPhase(batch, newSurfaces, mode, tr)
	}
	g.o.cycleDone(tr, t0, g.tweetBase.Len(), g.candBase.Len())
}

// batchEntities renders the current annotations of the batch's
// sentences — the per-sentence values FinalEntityMap (or
// LocalEntityMap at ModeLocalOnly) would contain for those keys.
func (g *Globalizer) batchEntities(batch []*types.Sentence, mode Mode) map[types.SentenceKey][]types.Entity {
	out := make(map[types.SentenceKey][]types.Entity, len(batch))
	for _, s := range batch {
		rec := g.tweetBase.Get(s.Key())
		if rec == nil {
			continue
		}
		if mode == ModeLocalOnly {
			out[s.Key()] = rec.LocalEntities
			continue
		}
		var ents []types.Entity
		for _, m := range rec.FinalMentions {
			if m.Type == types.None {
				continue
			}
			ents = append(ents, types.Entity{Span: m.Span, Type: m.Type})
		}
		out[s.Key()] = ents
	}
	return out
}

// localPhase runs Local NER over one batch: tagging, TweetBase
// recording, and CTrie seeding. Tagging — the encoder forwards, by far
// the dominant cost — goes through the tagger's batched path: packed
// spans of sentences per worker when the encoder supports it, one
// sentence per worker otherwise. The TweetBase and CTrie writes then
// replay serially in batch order, so the stream state is identical to
// a serial run at any worker count and any batch size. It returns the
// token sequences of surface forms newly registered in the CTrie this
// batch — the dirty set the amortized global phase and the incremental
// engine key their invalidation on.
func (g *Globalizer) localPhase(batch []*types.Sentence, tr *obs.Trace) [][]string {
	t0 := g.o.now()
	results := g.TagBatch(batch)
	return g.applyTagged(batch, results, tr, t0)
}

// applyTagged replays tag results into the stream state (TweetBase
// records, CTrie seeding) in batch order — the serial half of the
// local phase, shared by the in-process and fleet (wire-shipped tag
// results) paths.
func (g *Globalizer) applyTagged(batch []*types.Sentence, results []*localner.Result, tr *obs.Trace, t0 time.Time) [][]string {
	var newSurfaces [][]string
	for i, s := range batch {
		r := results[i]
		if g.tweetBase.Get(s.Key()) != nil {
			g.amort.invalidateSentence(s.Key())
		}
		g.tweetBase.Add(&stream.Record{
			Sentence:      s,
			LocalEntities: r.Entities,
			Embeddings:    r.Embeddings,
		})
		for _, e := range r.Entities {
			if e.End <= len(r.Tokens) {
				toks := r.Tokens[e.Start:e.End]
				if g.trie.Insert(toks) {
					newSurfaces = append(newSurfaces, toks)
				}
			}
		}
	}
	g.o.localDone(tr, t0, len(batch), len(newSurfaces))
	return newSurfaces
}

// surfaceOutcome carries one surface form's Global NER results out of
// the parallel fan-out: its candidate clusters and its typed mentions,
// each in the exact order the serial loop would have produced them.
type surfaceOutcome struct {
	surface string
	skip    bool
	cands   []*stream.Candidate
	typed   []types.Mention
}

// globalPhase runs the four Global NER steps over the whole TweetBase.
func (g *Globalizer) globalPhase(mode Mode, tr *obs.Trace) {
	// Step 1: mention extraction across the accumulated stream, the
	// per-sentence trie scans sharded over the pool (the frozen trie is
	// read-only here).
	t0 := g.o.now()
	var sents []*types.Sentence
	g.tweetBase.Each(func(r *stream.Record) { sents = append(sents, r.Sentence) })
	mentions := mention.ExtractBatchPool(sents, g.trie, g.tweetBase.LocalEntityMap(), g.pool)
	g.o.extractDone(tr, t0, len(mentions), len(sents), 0)

	if mode == ModeMentionExtraction {
		g.assignMajorityTypes(mentions)
		return
	}

	// Steps 2–4 are independent per surface form, so embedding,
	// clustering and classification fan out one surface per worker —
	// every model involved runs its cache-free inference path, and the
	// TweetBase is only read now that the local phase is done. Workers
	// return their results at the surface's own index; the merge below
	// replays them in sorted surface order, so the CandidateBase and the
	// typed mentions are identical to a serial run at any worker count.
	groups := mention.GroupBySurface(mentions)
	surfaces := g.ownedSurfaces(sortedKeys(groups))
	ts := g.o.now()
	outcomes := parallel.MapOrdered(g.pool, len(surfaces), func(si int) surfaceOutcome {
		return g.processSurface(surfaces[si], groups[surfaces[si]], mode)
	})
	g.o.surfacesDone(tr, ts, len(surfaces), 0)

	finalBySent := make(map[types.SentenceKey][]types.Mention)
	for _, oc := range outcomes {
		if oc.skip {
			continue
		}
		g.candBase.SetClusters(oc.surface, oc.cands)
		for _, m := range oc.typed {
			finalBySent[m.Key] = append(finalBySent[m.Key], m)
		}
	}
	g.tweetBase.Each(func(r *stream.Record) {
		r.FinalMentions = finalBySent[r.Sentence.Key()]
	})
}

// processSurface runs Global NER steps 2–4 for one surface form and
// returns its outcome. It only reads shared state, so many surfaces
// can process concurrently.
func (g *Globalizer) processSurface(surface string, ms []types.Mention, mode Mode) surfaceOutcome {
	if g.lacksLocalSupport(ms) {
		return surfaceOutcome{surface: surface, skip: true}
	}
	o := g.o
	// Step 2: local mention embeddings (eqs. 1–3), through the
	// embedding cache when enabled.
	te := o.now()
	embs := make([][]float64, len(ms))
	for i, m := range ms {
		embs[i] = g.embedMention(m)
	}
	if o != nil {
		o.stageEmbed.Observe(time.Since(te).Seconds())
	}

	// Step 3: candidate cluster generation (Section V-C). The O(n²)
	// distance matrix row-shards over the pool; the merge loop inside
	// stays serial so merge order is unchanged.
	var clustering cluster.Result
	if mode != ModeLocalEmbeddings {
		tc := o.now()
		clustering = cluster.AgglomerativePool(embs, g.cfg.ClusterThreshold, cluster.AverageLinkage, g.pool)
		o.clusteringDone(tc, len(embs), clustering.Count)
	}
	return g.outcomeFromEmbeddings(surface, ms, embs, mode, clustering, nil)
}

// outcomeFromEmbeddings runs Global NER step 4 (global pooling +
// Entity Classifier, Section V-D) over already-embedded mentions and
// an already-computed clustering. It is the shared tail of the
// recompute and amortized paths, so the two stay equivalent by
// construction. clustering is ignored at ModeLocalEmbeddings.
//
// ccache, when non-nil, memoizes per-cluster verdicts by membership
// signature: over an append-only mention pool, a cluster's global
// embedding, type and confidence are pure functions of its member
// index set, so a dirty surface only re-classifies the clusters the
// new mentions actually reshaped. The uncached path passes nil and
// recomputes everything.
func (g *Globalizer) outcomeFromEmbeddings(surface string, ms []types.Mention, embs [][]float64, mode Mode, clustering cluster.Result, ccache map[string]*clusterVerdict) surfaceOutcome {
	oc := surfaceOutcome{surface: surface}

	if mode == ModeLocalEmbeddings {
		// Ablation: classify every mention from its own local
		// embedding, no clustering or pooling.
		for i, m := range ms {
			key := clusterKey([]int{i})
			v := ccache[key]
			if v == nil {
				tc := g.o.now()
				et, conf := g.classify([][]float64{embs[i]})
				if g.o != nil {
					g.o.stageClassify.Observe(time.Since(tc).Seconds())
					g.o.clustersClassified.Inc()
				}
				v = &clusterVerdict{et: et, conf: conf}
				if ccache != nil {
					ccache[key] = v
				}
			} else if g.o != nil {
				g.o.verdictCacheHits.Inc()
			}
			m.Type = v.et
			oc.cands = append(oc.cands, &stream.Candidate{
				Surface: surface, ClusterID: i,
				Mentions:   []types.Mention{m},
				Embs:       [][]float64{embs[i]},
				Type:       v.et,
				Confidence: v.conf,
			})
			if v.et != types.None {
				oc.typed = append(oc.typed, m)
			}
		}
		return oc
	}

	for cid, idxs := range clustering.Members() {
		cand := &stream.Candidate{Surface: surface, ClusterID: cid}
		for _, i := range idxs {
			cand.Mentions = append(cand.Mentions, ms[i])
			cand.Embs = append(cand.Embs, embs[i])
		}
		key := clusterKey(idxs)
		v := ccache[key]
		if v == nil {
			tp := g.o.now()
			v = &clusterVerdict{globalEmb: g.Classifier.GlobalEmbedding(cand.Embs)}
			if g.o != nil {
				// Attention pooling (eq. 6) separated from the ensemble
				// decision timed inside decideClusterType.
				g.o.stagePool.Observe(time.Since(tp).Seconds())
			}
			v.et, v.conf = g.decideClusterType(cand.Mentions, cand.Embs)
			if ccache != nil {
				ccache[key] = v
			}
		} else if g.o != nil {
			g.o.verdictCacheHits.Inc()
		}
		cand.GlobalEmb, cand.Type, cand.Confidence = v.globalEmb, v.et, v.conf
		oc.cands = append(oc.cands, cand)
		if cand.Type == types.None {
			continue
		}
		for _, m := range cand.Mentions {
			m.Type = cand.Type
			oc.typed = append(oc.typed, m)
		}
	}
	return oc
}

// assignMajorityTypes implements the first ablation baseline: every
// mention of a surface form receives the most frequent type Local NER
// assigned to that surface (Figure 3's "+mention extraction" curve).
func (g *Globalizer) assignMajorityTypes(mentions []types.Mention) {
	groups := mention.GroupBySurface(mentions)
	finalBySent := make(map[types.SentenceKey][]types.Mention)
	for _, surface := range g.ownedSurfaces(sortedKeys(groups)) {
		ms := groups[surface]
		if g.lacksLocalSupport(ms) {
			continue
		}
		votes := make(map[types.EntityType]int)
		for _, m := range ms {
			if m.FromLocalNER && m.Type != types.None {
				votes[m.Type]++
			}
		}
		best, bestN := types.None, 0
		for _, et := range types.EntityTypes {
			if votes[et] > bestN {
				best, bestN = et, votes[et]
			}
		}
		if best == types.None {
			continue
		}
		for _, m := range ms {
			m.Type = best
			finalBySent[m.Key] = append(finalBySent[m.Key], m)
		}
	}
	g.tweetBase.Each(func(r *stream.Record) {
		r.FinalMentions = finalBySent[r.Sentence.Key()]
	})
}

// decideClusterType combines the ensemble's global classification with
// the cluster's Local NER evidence.
//
// The paper observes (Section VI-C) that mentions correctly detected
// by Local NER are rarely mislabelled at the global step, and that
// global embeddings become reliable only as mention support grows
// (Figure 4). Both observations shape the rule:
//
//   - large clusters (≥3 mentions): the global classification rules;
//     a None verdict is overturned only by a strong local consensus
//     (≥2 consistent votes covering ≥70% of locally typed mentions);
//   - small clusters (1–2 mentions): the global embedding is pooled
//     from almost no context, so an existing local label is kept
//     unless the classifier disagrees with high confidence.
//
// All engines route their cluster decisions through here, so the
// classification-stage metrics cover the batch, amortized, incremental
// and EMD paths from one record point.
func (g *Globalizer) decideClusterType(mentions []types.Mention, embs [][]float64) (types.EntityType, float64) {
	tc := g.o.now()
	et, conf := g.decideCluster(mentions, embs)
	if g.o != nil {
		g.o.stageClassify.Observe(time.Since(tc).Seconds())
		g.o.clustersClassified.Inc()
	}
	return et, conf
}

// decideCluster is decideClusterType's decision body.
func (g *Globalizer) decideCluster(mentions []types.Mention, embs [][]float64) (types.EntityType, float64) {
	et, conf := g.classify(embs)
	lv, votes, n := localVote(mentions)
	if len(mentions) <= 2 {
		if lv != types.None && (et == types.None || conf < g.guardOverrideConf()) && et != lv {
			return lv, float64(votes) / float64(max(n, 1))
		}
		return et, conf
	}
	if et == types.None && n >= 2 && float64(votes) >= 0.7*float64(n) {
		return lv, float64(votes) / float64(n)
	}
	return et, conf
}

// guardOverrideConf is the ensemble confidence required to override a
// local label on a small cluster.
func (g *Globalizer) guardOverrideConf() float64 {
	if g.cfg.GuardOverrideConf > 0 {
		return g.cfg.GuardOverrideConf
	}
	return 0.75
}

// lacksLocalSupport reports whether a surface form's mention set is
// large yet almost never confirmed by Local NER — the signature of a
// stray false positive ("the", a hashtag) flooding occurrence mining.
func (g *Globalizer) lacksLocalSupport(ms []types.Mention) bool {
	minMentions := g.cfg.MinSupportMentions
	if minMentions <= 0 || g.cfg.MinLocalSupport <= 0 {
		return false
	}
	if len(ms) < minMentions {
		return false
	}
	local := 0
	for _, m := range ms {
		if m.FromLocalNER && m.Type != types.None {
			local++
		}
	}
	return float64(local) < g.cfg.MinLocalSupport*float64(len(ms))
}

// localVote returns the majority Local NER type among a cluster's
// mentions, its vote count, and the total number of locally typed
// mentions.
func localVote(mentions []types.Mention) (types.EntityType, int, int) {
	votes := make(map[types.EntityType]int)
	total := 0
	for _, m := range mentions {
		if m.FromLocalNER && m.Type != types.None {
			votes[m.Type]++
			total++
		}
	}
	best, bestN := types.None, 0
	for _, et := range types.EntityTypes {
		if votes[et] > bestN {
			best, bestN = et, votes[et]
		}
	}
	return best, bestN, total
}

func sortedKeys(m map[string][]types.Mention) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
