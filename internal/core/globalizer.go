package core

import (
	"sort"
	"time"

	"nerglobalizer/internal/classifier"
	"nerglobalizer/internal/cluster"
	"nerglobalizer/internal/ctrie"
	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/mention"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/phrase"
	"nerglobalizer/internal/rnn"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

// Mode selects how much of the pipeline runs — the ablation stages of
// Figure 3, bottom curve to top.
type Mode int

// Ablation stages.
const (
	// ModeLocalOnly stops after Local NER (the bottom curve of Fig. 3).
	ModeLocalOnly Mode = iota
	// ModeMentionExtraction adds occurrence mining with
	// majority-vote typing of each surface form.
	ModeMentionExtraction
	// ModeLocalEmbeddings classifies each mention individually from
	// its local embedding (no global pooling).
	ModeLocalEmbeddings
	// ModeFull is the complete pipeline with global candidate
	// embeddings (the top curve).
	ModeFull
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeLocalOnly:
		return "LocalNER"
	case ModeMentionExtraction:
		return "+MentionExtraction"
	case ModeLocalEmbeddings:
		return "+LocalEmbeddings"
	default:
		return "+GlobalEmbeddings"
	}
}

// Globalizer is the assembled NER Globalizer system.
type Globalizer struct {
	cfg Config

	Tagger   *localner.Tagger
	Embedder *phrase.Embedder
	// Classifier is the first ensemble member, kept for direct access;
	// classification averages the probability vectors of Ensemble.
	Classifier *classifier.Classifier
	Ensemble   []*classifier.Classifier

	// Per-stream state, reset by Reset.
	trie      *ctrie.Trie
	tweetBase *stream.TweetBase
	candBase  *stream.CandidateBase
}

// New builds a Globalizer with untrained components. Callers normally
// follow with PretrainEncoder, FineTuneLocal and TrainGlobal (or use
// the Trainer in train.go).
func New(cfg Config) *Globalizer {
	var enc localner.Encoder
	switch cfg.Kind {
	case EncoderBiGRU:
		enc = rnn.NewEncoder(rnn.Config{
			Dim:          cfg.Encoder.Dim,
			MaxLen:       cfg.Encoder.MaxLen,
			VocabBuckets: cfg.Encoder.VocabBuckets,
			CharBuckets:  cfg.Encoder.CharBuckets,
			Seed:         cfg.Encoder.Seed,
		})
	default:
		enc = transformer.NewEncoder(cfg.Encoder)
	}
	g := &Globalizer{
		cfg:      cfg,
		Tagger:   localner.NewTagger(enc, cfg.FineTuneLR),
		Embedder: phrase.NewEmbedder(cfg.Encoder.Dim, cfg.Seed+1),
	}
	g.Ensemble = newEnsemble(cfg)
	g.Classifier = g.Ensemble[0]
	g.Reset()
	return g
}

// newEnsemble builds EnsembleSize independently seeded classifiers.
func newEnsemble(cfg Config) []*classifier.Classifier {
	n := cfg.EnsembleSize
	if n < 1 {
		n = 1
	}
	out := make([]*classifier.Classifier, n)
	for i := range out {
		out[i] = classifier.New(cfg.Encoder.Dim, cfg.Seed+2+int64(i)*101)
	}
	return out
}

// classify averages the ensemble's probability vectors for a cluster
// and returns the winning class with its mean probability.
func (g *Globalizer) classify(embs [][]float64) (types.EntityType, float64) {
	if len(embs) == 0 {
		return types.None, 1
	}
	mean := make([]float64, types.NumClasses)
	for _, c := range g.Ensemble {
		_, probs := c.Classify(embs)
		for i, p := range probs {
			mean[i] += p
		}
	}
	for i := range mean {
		mean[i] /= float64(len(g.Ensemble))
	}
	best := 0
	for i, p := range mean {
		if p > mean[best] {
			best = i
		}
	}
	return types.EntityType(best), mean[best]
}

// Config returns the pipeline configuration.
func (g *Globalizer) Config() Config { return g.cfg }

// WithObjective returns a new Globalizer that shares this one's
// (already trained) Local NER tagger but carries fresh, untrained
// Global NER components configured for the given contrastive
// objective. Used to compare the two Phrase Embedder objectives
// (Table II) without re-training the language model.
func (g *Globalizer) WithObjective(obj Objective) *Globalizer {
	cfg := g.cfg
	cfg.Objective = obj
	cfg.Seed += 40 + int64(obj)*7
	v := &Globalizer{
		cfg:      cfg,
		Tagger:   g.Tagger,
		Embedder: phrase.NewEmbedder(cfg.Encoder.Dim, cfg.Seed+10),
	}
	v.Ensemble = newEnsemble(cfg)
	v.Classifier = v.Ensemble[0]
	v.Reset()
	return v
}

// AllParams returns every trainable parameter of the assembled system
// — the Local NER tagger (encoder plus head), the Phrase Embedder, and
// every Entity Classifier in the ensemble — for checkpointing.
func (g *Globalizer) AllParams() []*nn.Param {
	ps := g.Tagger.Params()
	ps = append(ps, g.Embedder.Params()...)
	for _, c := range g.Ensemble {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// WithClusterThreshold returns a view of this Globalizer that shares
// every trained component but clusters candidate mentions at a
// different agglomerative threshold. Used by the threshold-sweep
// ablation bench.
func (g *Globalizer) WithClusterThreshold(th float64) *Globalizer {
	cfg := g.cfg
	cfg.ClusterThreshold = th
	v := &Globalizer{
		cfg:        cfg,
		Tagger:     g.Tagger,
		Embedder:   g.Embedder,
		Classifier: g.Classifier,
		Ensemble:   g.Ensemble,
	}
	v.Reset()
	return v
}

// Reset clears all per-stream state (CTrie, TweetBase, CandidateBase)
// so the same trained system can process a fresh stream.
func (g *Globalizer) Reset() {
	g.trie = ctrie.New()
	g.tweetBase = stream.NewTweetBase()
	g.candBase = stream.NewCandidateBase()
}

// TweetBase exposes the per-sentence records of the current stream.
func (g *Globalizer) TweetBase() *stream.TweetBase { return g.tweetBase }

// CandidateBase exposes the candidate clusters of the current stream.
func (g *Globalizer) CandidateBase() *stream.CandidateBase { return g.candBase }

// RunResult is the outcome of processing a stream.
type RunResult struct {
	// Local holds Local NER's entities per sentence; Final holds the
	// pipeline output at the requested mode.
	Local map[types.SentenceKey][]types.Entity
	Final map[types.SentenceKey][]types.Entity
	// LocalTime and GlobalTime split the wall-clock cost the way
	// Table IV reports it.
	LocalTime  time.Duration
	GlobalTime time.Duration
	// Candidates is the number of candidate clusters formed.
	Candidates int
}

// Run executes the pipeline over the sentences at the given mode: the
// Local NER phase proceeds batch by batch (the CTrie growing as the
// stream evolves), then the Global NER phase processes the accumulated
// stream state. Run resets per-stream state first.
func (g *Globalizer) Run(sents []*types.Sentence, mode Mode) *RunResult {
	g.Reset()
	res := &RunResult{}

	startLocal := time.Now()
	for _, batch := range stream.Batches(sents, g.cfg.BatchSize) {
		g.localPhase(batch)
	}
	res.LocalTime = time.Since(startLocal)
	res.Local = g.tweetBase.LocalEntityMap()

	if mode == ModeLocalOnly {
		res.Final = res.Local
		return res
	}

	startGlobal := time.Now()
	g.globalPhase(mode)
	res.GlobalTime = time.Since(startGlobal)
	res.Final = g.tweetBase.FinalEntityMap()
	res.Candidates = g.candBase.Len()
	return res
}

// ProcessBatch consumes one execution cycle of the stream: it runs the
// Local NER phase over the incoming batch (growing the CTrie and
// TweetBase) and then refreshes the Global NER phase over the whole
// accumulated stream, returning the current final entities for every
// sentence seen so far. Unlike Run it does not reset state, so
// repeated calls realize the paper's continuous, incremental execution
// setup — candidates gather more mentions (and more reliable global
// embeddings) with every cycle.
func (g *Globalizer) ProcessBatch(batch []*types.Sentence, mode Mode) map[types.SentenceKey][]types.Entity {
	g.localPhase(batch)
	if mode == ModeLocalOnly {
		return g.tweetBase.LocalEntityMap()
	}
	g.candBase = stream.NewCandidateBase()
	g.globalPhase(mode)
	return g.tweetBase.FinalEntityMap()
}

// localPhase runs Local NER over one batch: tagging, TweetBase
// recording, and CTrie seeding.
func (g *Globalizer) localPhase(batch []*types.Sentence) {
	for _, s := range batch {
		r := g.Tagger.Run(s.Tokens)
		g.tweetBase.Add(&stream.Record{
			Sentence:      s,
			LocalEntities: r.Entities,
			Embeddings:    r.Embeddings,
		})
		for _, e := range r.Entities {
			if e.End <= len(r.Tokens) {
				g.trie.Insert(r.Tokens[e.Start:e.End])
			}
		}
	}
}

// globalPhase runs the four Global NER steps over the whole TweetBase.
func (g *Globalizer) globalPhase(mode Mode) {
	// Step 1: mention extraction across the accumulated stream.
	var sents []*types.Sentence
	g.tweetBase.Each(func(r *stream.Record) { sents = append(sents, r.Sentence) })
	mentions := mention.ExtractBatch(sents, g.trie, g.tweetBase.LocalEntityMap())

	if mode == ModeMentionExtraction {
		g.assignMajorityTypes(mentions)
		return
	}

	// Step 2: local mention embeddings (eqs. 1–3).
	groups := mention.GroupBySurface(mentions)
	finalBySent := make(map[types.SentenceKey][]types.Mention)
	for _, surface := range sortedKeys(groups) {
		ms := groups[surface]
		if g.lacksLocalSupport(ms) {
			continue
		}
		embs := make([][]float64, len(ms))
		for i, m := range ms {
			rec := g.tweetBase.Get(m.Key)
			embs[i] = g.Embedder.Embed(rec.Embeddings, m.Span)
		}

		var cands []*stream.Candidate
		if mode == ModeLocalEmbeddings {
			// Ablation: classify every mention from its own local
			// embedding, no clustering or pooling.
			for i, m := range ms {
				et, conf := g.classify([][]float64{embs[i]})
				m.Type = et
				cands = append(cands, &stream.Candidate{
					Surface: surface, ClusterID: i,
					Mentions:   []types.Mention{m},
					Embs:       [][]float64{embs[i]},
					Type:       et,
					Confidence: conf,
				})
				if et != types.None {
					finalBySent[m.Key] = append(finalBySent[m.Key], m)
				}
			}
			g.candBase.SetClusters(surface, cands)
			continue
		}

		// Step 3: candidate cluster generation (Section V-C).
		clustering := cluster.Agglomerative(embs, g.cfg.ClusterThreshold)
		members := clustering.Members()

		// Step 4: global pooling + Entity Classifier (Section V-D).
		for cid, idxs := range members {
			cand := &stream.Candidate{Surface: surface, ClusterID: cid}
			for _, i := range idxs {
				cand.Mentions = append(cand.Mentions, ms[i])
				cand.Embs = append(cand.Embs, embs[i])
			}
			cand.GlobalEmb = g.Classifier.GlobalEmbedding(cand.Embs)
			cand.Type, cand.Confidence = g.decideClusterType(cand.Mentions, cand.Embs)
			cands = append(cands, cand)
			if cand.Type == types.None {
				continue
			}
			for _, m := range cand.Mentions {
				m.Type = cand.Type
				finalBySent[m.Key] = append(finalBySent[m.Key], m)
			}
		}
		g.candBase.SetClusters(surface, cands)
	}
	g.tweetBase.Each(func(r *stream.Record) {
		r.FinalMentions = finalBySent[r.Sentence.Key()]
	})
}

// assignMajorityTypes implements the first ablation baseline: every
// mention of a surface form receives the most frequent type Local NER
// assigned to that surface (Figure 3's "+mention extraction" curve).
func (g *Globalizer) assignMajorityTypes(mentions []types.Mention) {
	groups := mention.GroupBySurface(mentions)
	finalBySent := make(map[types.SentenceKey][]types.Mention)
	for _, surface := range sortedKeys(groups) {
		ms := groups[surface]
		if g.lacksLocalSupport(ms) {
			continue
		}
		votes := make(map[types.EntityType]int)
		for _, m := range ms {
			if m.FromLocalNER && m.Type != types.None {
				votes[m.Type]++
			}
		}
		best, bestN := types.None, 0
		for _, et := range types.EntityTypes {
			if votes[et] > bestN {
				best, bestN = et, votes[et]
			}
		}
		if best == types.None {
			continue
		}
		for _, m := range ms {
			m.Type = best
			finalBySent[m.Key] = append(finalBySent[m.Key], m)
		}
	}
	g.tweetBase.Each(func(r *stream.Record) {
		r.FinalMentions = finalBySent[r.Sentence.Key()]
	})
}

// decideClusterType combines the ensemble's global classification with
// the cluster's Local NER evidence.
//
// The paper observes (Section VI-C) that mentions correctly detected
// by Local NER are rarely mislabelled at the global step, and that
// global embeddings become reliable only as mention support grows
// (Figure 4). Both observations shape the rule:
//
//   - large clusters (≥3 mentions): the global classification rules;
//     a None verdict is overturned only by a strong local consensus
//     (≥2 consistent votes covering ≥70% of locally typed mentions);
//   - small clusters (1–2 mentions): the global embedding is pooled
//     from almost no context, so an existing local label is kept
//     unless the classifier disagrees with high confidence.
func (g *Globalizer) decideClusterType(mentions []types.Mention, embs [][]float64) (types.EntityType, float64) {
	et, conf := g.classify(embs)
	lv, votes, n := localVote(mentions)
	if len(mentions) <= 2 {
		if lv != types.None && (et == types.None || conf < g.guardOverrideConf()) && et != lv {
			return lv, float64(votes) / float64(max(n, 1))
		}
		return et, conf
	}
	if et == types.None && n >= 2 && float64(votes) >= 0.7*float64(n) {
		return lv, float64(votes) / float64(n)
	}
	return et, conf
}

// guardOverrideConf is the ensemble confidence required to override a
// local label on a small cluster.
func (g *Globalizer) guardOverrideConf() float64 {
	if g.cfg.GuardOverrideConf > 0 {
		return g.cfg.GuardOverrideConf
	}
	return 0.75
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// lacksLocalSupport reports whether a surface form's mention set is
// large yet almost never confirmed by Local NER — the signature of a
// stray false positive ("the", a hashtag) flooding occurrence mining.
func (g *Globalizer) lacksLocalSupport(ms []types.Mention) bool {
	minMentions := g.cfg.MinSupportMentions
	if minMentions <= 0 || g.cfg.MinLocalSupport <= 0 {
		return false
	}
	if len(ms) < minMentions {
		return false
	}
	local := 0
	for _, m := range ms {
		if m.FromLocalNER && m.Type != types.None {
			local++
		}
	}
	return float64(local) < g.cfg.MinLocalSupport*float64(len(ms))
}

// localVote returns the majority Local NER type among a cluster's
// mentions, its vote count, and the total number of locally typed
// mentions.
func localVote(mentions []types.Mention) (types.EntityType, int, int) {
	votes := make(map[types.EntityType]int)
	total := 0
	for _, m := range mentions {
		if m.FromLocalNER && m.Type != types.None {
			votes[m.Type]++
			total++
		}
	}
	best, bestN := types.None, 0
	for _, et := range types.EntityTypes {
		if votes[et] > bestN {
			best, bestN = et, votes[et]
		}
	}
	return best, bestN, total
}

func sortedKeys(m map[string][]types.Mention) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
