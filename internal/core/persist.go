package core

import (
	"fmt"
	"sort"
	"strings"

	"nerglobalizer/internal/cluster"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// This file materializes the engine's per-stream state into a flat,
// serializable form (WarmState) and rebuilds the engine from it — the
// core half of the durability layer. internal/durable owns the on-disk
// encoding; this file owns what is captured and how it is reinstalled.
//
// The amortization invariant ("byte-identical with caching on or off")
// is the safety net: everything in AmortState is a cache over the
// records and trie, so RestoreWarmState only has to choose between
// reinstalling those caches exactly or discarding them (Amort == nil),
// in which case the next cycle falls back to a full recompute that
// produces the same annotations, just without the warm speed.
//
// Capture is synchronous: every map is flattened into slices under the
// caller's lock, so the returned WarmState can be encoded to disk
// concurrently with later cycles. Leaf slices alias live engine data —
// token slices, embedding vectors and record matrices are immutable
// once published, and mention pools only ever grow in place or are
// replaced wholesale, so a captured slice header keeps its bytes.

// RecordState is one TweetBase record in serializable form.
type RecordState struct {
	TweetID, SentID int
	Tokens          []string
	Gold            []types.Entity
	Local           []types.Entity
	Emb             *nn.Matrix
	Final           []types.Mention
}

// ScanState is one sentence's cached trie-scan result.
type ScanState struct {
	Key      types.SentenceKey
	Mentions []types.Mention
}

// MentionEmbed is one cached local mention embedding.
type MentionEmbed struct {
	Key  types.SentenceKey
	Span types.Span
	Vec  []float64
}

// CandState is one candidate cluster of a surface outcome, with its
// members as indices into the surface's mention pool.
type CandState struct {
	ClusterID int
	Members   []int
	GlobalEmb []float64
	Type      types.EntityType
	Conf      float64
}

// SurfaceState is one surface form's cached amortization state: its
// mention pool and its finished outcome.
type SurfaceState struct {
	Surface string
	Pool    []types.Mention
	Skip    bool
	Cands   []CandState
}

// AmortState is the amortizer's cross-cycle cache state, captured only
// when the amortizer is clean (see captureAmort). Everything here is
// derivable from the records and trie — restoring it buys warm-resume
// speed, not correctness.
type AmortState struct {
	ScannedLen, TrieLen, MentionCount int
	Mode                              int
	Scans                             []ScanState
	Surfaces                          []SurfaceState
	Embeds                            []MentionEmbed
}

// WarmState is the engine's complete per-stream state in serializable
// form. Amort is nil when the amortizer was not cleanly capturable; the
// restored engine then rebuilds its caches on the next cycle.
type WarmState struct {
	Precision              string
	ShardIndex, ShardCount int
	Surfaces               []string
	Records                []RecordState
	Amort                  *AmortState
}

// CaptureWarmState snapshots the per-stream state. The caller must hold
// whatever lock serializes cycles on this engine; the returned value is
// safe to encode concurrently with later cycles.
func (g *Globalizer) CaptureWarmState() *WarmState {
	ws := &WarmState{
		Precision:  g.Precision().String(),
		ShardIndex: g.shardIndex,
		ShardCount: g.shardCount,
		Surfaces:   g.trie.Surfaces(),
	}
	sort.Strings(ws.Surfaces)
	ws.Records = make([]RecordState, 0, g.tweetBase.Len())
	g.tweetBase.Each(func(r *stream.Record) {
		ws.Records = append(ws.Records, RecordState{
			TweetID: r.Sentence.TweetID,
			SentID:  r.Sentence.SentID,
			Tokens:  r.Sentence.Tokens,
			Gold:    r.Sentence.Gold,
			Local:   r.LocalEntities,
			Emb:     r.Embeddings,
			Final:   r.FinalMentions,
		})
	})
	ws.Amort = g.captureAmort()
	return ws
}

// captureAmort flattens the amortizer, or returns nil when its state is
// not cleanly capturable: caching off, a non-ModeFull last cycle, stale
// or dirty bookkeeping, or any internal inconsistency. nil is always
// safe — restore falls back to a cold amortizer over warm records.
func (g *Globalizer) captureAmort() *AmortState {
	a := g.amort
	if g.cfg.DisableCache || !a.haveMode || a.lastMode != ModeFull || a.stale ||
		len(a.dirty) != 0 || len(a.finalDirty) != 0 ||
		a.scannedLen != g.tweetBase.Len() || a.trieLen != g.trie.Len() ||
		len(a.surfaces) != len(a.pools) {
		return nil
	}
	as := &AmortState{
		ScannedLen:   a.scannedLen,
		TrieLen:      a.trieLen,
		MentionCount: a.mentionCount,
		Mode:         int(a.lastMode),
	}
	keys := g.tweetBase.Keys()
	as.Scans = make([]ScanState, 0, len(keys))
	for _, key := range keys {
		ms, ok := a.scans[key]
		if !ok {
			return nil
		}
		as.Scans = append(as.Scans, ScanState{Key: key, Mentions: ms})
	}

	surfs := make([]string, 0, len(a.pools))
	for s := range a.pools {
		surfs = append(surfs, s)
	}
	sort.Strings(surfs)
	as.Surfaces = make([]SurfaceState, 0, len(surfs))
	for _, s := range surfs {
		sa := a.surfaces[s]
		pool := a.pools[s]
		if sa == nil || !mentionsEqual(sa.mentions, pool) {
			return nil
		}
		st := SurfaceState{Surface: s, Pool: pool, Skip: sa.outcome.skip}
		if !sa.outcome.skip {
			// Invert the outcome's mention values back to pool indices;
			// (sentence, span) identifies a pool entry uniquely.
			idx := make(map[types.SentenceKey]map[types.Span]int, len(pool))
			for i, m := range pool {
				bySpan := idx[m.Key]
				if bySpan == nil {
					bySpan = make(map[types.Span]int, 2)
					idx[m.Key] = bySpan
				}
				bySpan[m.Span] = i
			}
			for _, cand := range sa.outcome.cands {
				cs := CandState{
					ClusterID: cand.ClusterID,
					GlobalEmb: cand.GlobalEmb,
					Type:      cand.Type,
					Conf:      cand.Confidence,
				}
				for _, m := range cand.Mentions {
					i, ok := idx[m.Key][m.Span]
					if !ok {
						return nil
					}
					cs.Members = append(cs.Members, i)
				}
				st.Cands = append(st.Cands, cs)
			}
		}
		as.Surfaces = append(as.Surfaces, st)
	}

	// Flatten the embedding cache in stream order, spans ascending, so
	// snapshot bytes are deterministic for a given engine state.
	a.embeds.mu.RLock()
	for _, key := range keys {
		bySpan := a.embeds.m[key]
		if len(bySpan) == 0 {
			continue
		}
		spans := make([]types.Span, 0, len(bySpan))
		for sp := range bySpan {
			spans = append(spans, sp)
		}
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Start != spans[j].Start {
				return spans[i].Start < spans[j].Start
			}
			return spans[i].End < spans[j].End
		})
		for _, sp := range spans {
			as.Embeds = append(as.Embeds, MentionEmbed{Key: key, Span: sp, Vec: bySpan[sp]})
		}
	}
	a.embeds.mu.RUnlock()
	return as
}

// RestoreWarmState rebuilds the per-stream state from a capture. The
// engine must already be configured identically to the one that
// captured (precision tier, shard ownership); per-stream state is
// discarded and replaced. After restore, continued cycles produce
// byte-identical annotations to the uninterrupted run.
func (g *Globalizer) RestoreWarmState(ws *WarmState) error {
	if ws.Precision != g.Precision().String() {
		return fmt.Errorf("core: warm state captured at precision %q, engine runs %q", ws.Precision, g.Precision())
	}
	if ws.ShardIndex != g.shardIndex || ws.ShardCount != g.shardCount {
		return fmt.Errorf("core: warm state owns shard %d of %d, engine owns %d of %d",
			ws.ShardIndex, ws.ShardCount, g.shardIndex, g.shardCount)
	}
	g.Reset()
	for _, s := range ws.Surfaces {
		g.trie.InsertSurface(s)
	}
	for i := range ws.Records {
		rs := &ws.Records[i]
		sent := &types.Sentence{TweetID: rs.TweetID, SentID: rs.SentID, Tokens: rs.Tokens, Gold: rs.Gold}
		if g.tweetBase.Get(sent.Key()) != nil {
			return fmt.Errorf("core: warm state repeats sentence %v", sent.Key())
		}
		g.tweetBase.Add(&stream.Record{
			Sentence:      sent,
			LocalEntities: rs.Local,
			Embeddings:    rs.Emb,
			FinalMentions: rs.Final,
		})
	}
	if ws.Amort == nil {
		// No cache state: the next cycle re-derives everything from the
		// records and trie (byte-identical, once-off full-recompute cost).
		g.amort.markStale()
		return nil
	}
	return g.restoreAmort(ws.Amort)
}

// restoreAmort reinstalls the amortizer caches from a clean capture.
func (g *Globalizer) restoreAmort(as *AmortState) error {
	a := g.amort
	if as.ScannedLen != g.tweetBase.Len() {
		return fmt.Errorf("core: warm state scanned %d of %d sentences", as.ScannedLen, g.tweetBase.Len())
	}
	if as.TrieLen != g.trie.Len() {
		return fmt.Errorf("core: warm state trie length %d, rebuilt trie has %d", as.TrieLen, g.trie.Len())
	}
	if len(as.Scans) != g.tweetBase.Len() {
		return fmt.Errorf("core: warm state has %d scans for %d sentences", len(as.Scans), g.tweetBase.Len())
	}
	for i := range as.Scans {
		key := as.Scans[i].Key
		if g.tweetBase.Get(key) == nil {
			return fmt.Errorf("core: warm state scans unknown sentence %v", key)
		}
		a.scans[key] = as.Scans[i].Mentions
	}
	// Token sets and the inverted index rebuild from the records in
	// stream order — the order rescanPass populated them in.
	g.tweetBase.Each(func(r *stream.Record) {
		key := r.Sentence.Key()
		set := make(map[string]bool, len(r.Sentence.Tokens))
		for _, t := range r.Sentence.Tokens {
			if lt := strings.ToLower(t); !set[lt] {
				set[lt] = true
				a.tokIndex[lt] = append(a.tokIndex[lt], key)
			}
		}
		a.toksets[key] = set
	})
	for i := range as.Embeds {
		e := &as.Embeds[i]
		bySpan := a.embeds.m[e.Key]
		if bySpan == nil {
			bySpan = make(map[types.Span][]float64)
			a.embeds.m[e.Key] = bySpan
		}
		bySpan[e.Span] = e.Vec
	}

	for i := range as.Surfaces {
		st := &as.Surfaces[i]
		if !g.ownsSurface(st.Surface) {
			return fmt.Errorf("core: warm state pools unowned surface %q", st.Surface)
		}
		pool := st.Pool
		a.pools[st.Surface] = pool
		sa := &surfaceAmort{
			mentions: pool,
			dist:     cluster.NewDistMatrix(),
			ccache:   make(map[string]*clusterVerdict),
		}
		if st.Skip {
			sa.outcome = surfaceOutcome{surface: st.Surface, skip: true}
			a.surfaces[st.Surface] = sa
			continue
		}
		// Re-derive the pool's embeddings through the (just restored)
		// cache; the distance matrix regrows lazily on the next dirty
		// cycle, which is pure over these exact float bits.
		sa.embs = make([][]float64, len(pool))
		for j := range pool {
			sa.embs[j] = g.embedMention(pool[j])
		}
		oc := surfaceOutcome{surface: st.Surface}
		for _, cs := range st.Cands {
			cand := &stream.Candidate{
				Surface:    st.Surface,
				ClusterID:  cs.ClusterID,
				GlobalEmb:  cs.GlobalEmb,
				Type:       cs.Type,
				Confidence: cs.Conf,
			}
			for _, idx := range cs.Members {
				if idx < 0 || idx >= len(pool) {
					return fmt.Errorf("core: warm state cluster member %d outside pool of %q", idx, st.Surface)
				}
				cand.Mentions = append(cand.Mentions, pool[idx])
				cand.Embs = append(cand.Embs, sa.embs[idx])
			}
			sa.ccache[clusterKey(cs.Members)] = &clusterVerdict{globalEmb: cs.GlobalEmb, et: cs.Type, conf: cs.Conf}
			oc.cands = append(oc.cands, cand)
			if cand.Type != types.None {
				for _, m := range cand.Mentions {
					m.Type = cand.Type
					oc.typed = append(oc.typed, m)
				}
			}
		}
		sa.outcome = oc
		sa.typedBySent = typedBySentence(oc.typed)
		a.surfaces[st.Surface] = sa
		g.candBase.SetClusters(st.Surface, oc.cands)
	}

	a.scannedLen = as.ScannedLen
	a.trieLen = as.TrieLen
	a.mentionCount = as.MentionCount
	a.lastMode = Mode(as.Mode)
	a.haveMode = true
	a.stale = false
	return nil
}
