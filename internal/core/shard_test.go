package core

import (
	"reflect"
	"testing"

	"nerglobalizer/internal/stream"
	"nerglobalizer/internal/types"
)

// These tests pin the fleet decomposition's core claim at the engine
// level, with no HTTP in sight: restricting the Global NER phase to a
// hash-ownership partition of the surface forms and unioning K such
// runs reproduces the unsharded run byte for byte, cycle by cycle —
// because the per-surface steps (embedding, clustering, classifying)
// are pure functions of each surface's own mention pool.

// shardCycles drives ProcessBatch over the stream under a given
// ownership, snapshotting each cycle's final map and candidates.
func shardCycles(g *Globalizer, sents []*types.Sentence, batchSize, index, count int, t *testing.T) []cycleSnapshot {
	if err := g.SetShardOwnership(index, count); err != nil {
		t.Fatal(err)
	}
	var out []cycleSnapshot
	for _, b := range stream.Batches(sents, batchSize) {
		final := g.ProcessBatch(b, ModeFull)
		out = append(out, cycleSnapshot{final: final, cands: g.CandidateBase().All()})
	}
	return out
}

// TestShardedUnionMatchesUnsharded runs the engine under every
// ownership of K ∈ {2, 3} shards and checks that (a) each shard's
// output contains exactly the unsharded entities whose surfaces it
// owns, and (b) the per-sentence union across shards equals the
// unsharded run, every cycle.
func TestShardedUnionMatchesUnsharded(t *testing.T) {
	g := trainedGlobalizer(t)
	defer func() {
		g.SetShardOwnership(0, 1)
		g.SetCaching(true)
	}()
	test := smallStream("shardpart", 90, 71)
	g.SetCaching(true)
	g.SetWorkers(0)

	ref := shardCycles(g, test.Sentences, 30, 0, 1, t)

	for _, count := range []int{2, 3} {
		parts := make([][]cycleSnapshot, count)
		for idx := 0; idx < count; idx++ {
			parts[idx] = shardCycles(g, test.Sentences, 30, idx, count, t)
		}
		for ci := range ref {
			// Candidates: merge per-shard candidate lists by ascending
			// surface — each list is sorted already, and one surface lives
			// on exactly one shard.
			var merged []*stream.Candidate
			idxs := make([]int, count)
			for {
				best := -1
				for s := 0; s < count; s++ {
					if idxs[s] >= len(parts[s][ci].cands) {
						continue
					}
					if best == -1 || parts[s][ci].cands[idxs[s]].Surface < parts[best][ci].cands[idxs[best]].Surface {
						best = s
					}
				}
				if best == -1 {
					break
				}
				surf := parts[best][ci].cands[idxs[best]].Surface
				for idxs[best] < len(parts[best][ci].cands) && parts[best][ci].cands[idxs[best]].Surface == surf {
					merged = append(merged, parts[best][ci].cands[idxs[best]])
					idxs[best]++
				}
			}
			if !reflect.DeepEqual(merged, ref[ci].cands) {
				t.Fatalf("K=%d cycle %d: merged candidates differ from unsharded", count, ci)
			}

			// Entities: per sentence, the shards partition the unsharded
			// entity list by surface ownership; re-merging by surface key
			// must reproduce it exactly.
			for key, want := range ref[ci].final {
				var got []types.Entity
				bySurf := make(map[string][]types.Entity)
				var order []string
				for idx := 0; idx < count; idx++ {
					for _, e := range parts[idx][ci].final[key] {
						s := surfaceOf(test.Sentences, key, e)
						if _, ok := bySurf[s]; !ok {
							order = append(order, s)
						}
						bySurf[s] = append(bySurf[s], e)
					}
				}
				sortStrings(order)
				for _, s := range order {
					got = append(got, bySurf[s]...)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("K=%d cycle %d: sentence %v entities differ after merge", count, ci, key)
				}
			}
		}
	}
}

func surfaceOf(sents []*types.Sentence, key types.SentenceKey, e types.Entity) string {
	for _, s := range sents {
		if s.Key() == key {
			return s.SurfaceAt(e.Span)
		}
	}
	return ""
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestPoolsMirrorGroups pins the incremental bookkeeping invariant the
// amortized phase rests on: after every cycle, the spliced per-surface
// pools equal mention.GroupBySurface over a fresh full extraction.
func TestPoolsMirrorGroups(t *testing.T) {
	g := trainedGlobalizer(t)
	defer g.SetCaching(true)
	test := smallStream("poolmirror", 60, 73)
	g.SetCaching(true)
	g.SetWorkers(1)
	g.Reset()
	for ci, b := range stream.Batches(test.Sentences, 15) {
		g.ProcessBatch(b, ModeFull)
		// Ground truth: flat rescan of every sentence, grouped.
		var all []types.Mention
		for _, key := range g.TweetBase().Keys() {
			all = append(all, g.amort.scans[key]...)
		}
		want := make(map[string][]types.Mention)
		for _, m := range all {
			want[m.Surface] = append(want[m.Surface], m)
		}
		if len(g.amort.pools) != len(want) {
			t.Fatalf("cycle %d: %d pooled surfaces, want %d", ci, len(g.amort.pools), len(want))
		}
		for s, ms := range want {
			if !mentionsEqual(g.amort.pools[s], ms) {
				t.Fatalf("cycle %d: pool for %q diverged from grouped extraction", ci, s)
			}
		}
	}
}

// TestProcessBatchEntitiesMatchesProcessBatch pins the scoped serving
// API: per-batch entities must be the exact per-key values of the full
// entity map, on both cached and uncached paths.
func TestProcessBatchEntitiesMatchesProcessBatch(t *testing.T) {
	g := trainedGlobalizer(t)
	defer g.SetCaching(true)
	test := smallStream("scoped", 60, 79)
	for _, cached := range []bool{true, false} {
		g.SetCaching(cached)
		g.SetWorkers(0)
		g.Reset()
		full := make([]map[types.SentenceKey][]types.Entity, 0)
		for _, b := range stream.Batches(test.Sentences, 20) {
			full = append(full, g.ProcessBatch(b, ModeFull))
		}
		g.Reset()
		for ci, b := range stream.Batches(test.Sentences, 20) {
			got := g.ProcessBatchEntities(b, ModeFull)
			for _, s := range b {
				want := full[ci][s.Key()]
				if !reflect.DeepEqual(got[s.Key()], want) {
					t.Fatalf("cached=%v cycle %d: scoped entities differ for %v", cached, ci, s.Key())
				}
			}
		}
	}
}

// TestProcessTaggedMatchesLocal pins the fleet tag-shipping contract:
// a cycle fed externally computed tag results (TagBatch on an engine
// clone) is byte-identical to tagging locally.
func TestProcessTaggedMatchesLocal(t *testing.T) {
	g := trainedGlobalizer(t)
	defer g.SetCaching(true)
	test := smallStream("tagged", 50, 83)
	batches := stream.Batches(test.Sentences, 25)

	g.SetCaching(true)
	g.SetWorkers(0)
	g.Reset()
	var want []map[types.SentenceKey][]types.Entity
	for _, b := range batches {
		want = append(want, g.ProcessBatchEntities(b, ModeFull))
	}

	g.Reset()
	for ci, b := range batches {
		// Tag in two asymmetric slices to exercise batch-composition
		// invariance on the shipped path, then stitch.
		cut := len(b) / 3
		results := append(g.TagBatch(b[:cut]), g.TagBatch(b[cut:])...)
		got := g.ProcessTagged(b, results, ModeFull)
		if !reflect.DeepEqual(got, want[ci]) {
			t.Fatalf("cycle %d: tagged-injection output differs from local tagging", ci)
		}
	}
}
