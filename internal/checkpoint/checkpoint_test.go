package checkpoint

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/transformer"
)

func tinyConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Encoder = transformer.Config{
		Dim: 16, Heads: 2, Layers: 1, FFDim: 32, MaxLen: 20,
		VocabBuckets: 256, CharBuckets: 64, Dropout: 0, Seed: 3,
	}
	cfg.PretrainEpochs = 1
	cfg.FineTuneEpochs = 4
	cfg.MaxTriplets = 1500
	cfg.PhraseTrain.Epochs = 8
	cfg.ClassifierTrain.Epochs = 20
	cfg.EnsembleSize = 2
	return cfg
}

func tinyStream(name string, n int, seed int64) *corpus.Dataset {
	return corpus.Generate(corpus.StreamConfig{
		Name: name, NumTweets: n, NumTopics: 1,
		PerTopicEntities: [4]int{8, 7, 5, 5},
		ZipfExponent:     1.1, TypoRate: 0.02, LowercaseRate: 0.3,
		NonEntityRate: 0.3, AmbiguousRate: 0.1, UninformativeRate: 0.1,
		Ambiguity: true, Streaming: true, Seed: seed,
	})
}

var (
	ckptOnce sync.Once
	ckptG    *core.Globalizer
)

func trained(t *testing.T) *core.Globalizer {
	t.Helper()
	ckptOnce.Do(func() {
		g := core.New(tinyConfig())
		g.PretrainEncoder(corpus.PretrainTweets(150, 5))
		g.FineTuneLocal(tinyStream("train", 200, 6).Sentences)
		g.TrainGlobal(tinyStream("d5", 200, 7).Sentences)
		ckptG = g
	})
	return ckptG
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := trained(t)
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// The loaded pipeline must produce byte-identical outputs.
	test := tinyStream("test", 80, 8)
	want := g.Run(test.Sentences, core.ModeFull)
	got := loaded.Run(test.Sentences, core.ModeFull)
	if !reflect.DeepEqual(want.Final, got.Final) {
		t.Fatal("loaded pipeline output differs from original")
	}
	if !reflect.DeepEqual(want.Local, got.Local) {
		t.Fatal("loaded pipeline local output differs from original")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := trained(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveFile(path, g); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Config().Encoder.Dim != g.Config().Encoder.Dim {
		t.Fatal("config not restored")
	}
}

// TestLoadRebuildsPackedMirrors pins the satellite contract: weights
// live on disk in f64 only, and a checkpoint saved from an i8-tier
// pipeline comes back with its packed mirrors rebuilt from the loaded
// weights — so a loaded model at i8 matches a freshly-packed one
// exactly.
func TestLoadRebuildsPackedMirrors(t *testing.T) {
	g := trained(t)
	if err := g.SetPrecision(nn.I8); err != nil {
		t.Fatalf("SetPrecision(i8): %v", err)
	}
	defer g.SetPrecision(nn.F64)
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := loaded.Precision(); got != nn.I8 {
		t.Fatalf("loaded tier = %s, want i8 (config must carry the tier)", got)
	}
	test := tinyStream("ptest", 80, 9)
	want := g.Run(test.Sentences, core.ModeFull)
	got := loaded.Run(test.Sentences, core.ModeFull)
	if !reflect.DeepEqual(want.Local, got.Local) {
		t.Fatal("loaded i8 pipeline local output differs from freshly-packed original")
	}
	if !reflect.DeepEqual(want.Final, got.Final) {
		t.Fatal("loaded i8 pipeline final output differs from freshly-packed original")
	}
}

// TestLoadedMirrorsInvalidateOnMutation pins that a caller mutating
// params after Load (further training, weight surgery) invalidates the
// packed mirrors: the reduced tier must serve the new weights, not the
// packs built at load time.
func TestLoadedMirrorsInvalidateOnMutation(t *testing.T) {
	g := trained(t)
	if err := g.SetPrecision(nn.I8); err != nil {
		t.Fatalf("SetPrecision(i8): %v", err)
	}
	defer g.SetPrecision(nn.F64)
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	test := tinyStream("mtest", 60, 10)
	before := loaded.Run(test.Sentences, core.ModeFull)

	// Zero an encoder FFN weight — a matrix the reduced tiers consume
	// only through their packed mirrors — and bump its version, as the
	// optimizers do after every step.
	var mutated bool
	for _, p := range loaded.AllParams() {
		if strings.Contains(p.Name, ".ff1.W") {
			for i := range p.W.Data {
				p.W.Data[i] = 0
			}
			p.Bump()
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no encoder .ff1.W parameter found to mutate")
	}
	after := loaded.Run(test.Sentences, core.ModeFull)
	if reflect.DeepEqual(before.Local, after.Local) {
		t.Fatal("i8 tier served stale packed mirrors after a post-load weight mutation")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	g := trained(t)
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Re-decode into the private struct, bump the version, re-encode.
	// Simpler: corrupt by re-saving with a hacked struct is not
	// possible from outside; instead verify version check via direct
	// construction.
	f := file{Version: 99}
	var vbuf bytes.Buffer
	if err := encodeFile(&vbuf, &f); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&vbuf); err == nil {
		t.Fatal("expected version error")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
