// Package checkpoint serializes trained NER Globalizer pipelines to a
// single binary file (encoding/gob) and restores them, so that a
// system trained once can be shipped and deployed without retraining.
//
// Weights are stored by parameter name with their shapes; Load rebuilds
// the architecture from the stored configuration and then copies the
// weights in, refusing mismatched names or shapes. Optimizer state is
// not saved — a loaded pipeline is for inference or further training
// from fresh optimizer moments.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"nerglobalizer/internal/core"
)

// format versioning: bump when the layout changes incompatibly.
const formatVersion = 1

// tensor is one named weight matrix.
type tensor struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// file is the serialized form.
type file struct {
	Version int
	Config  core.Config
	Tensors []tensor
}

// encodeFile gob-encodes a raw file structure (exposed to tests for
// version-check coverage).
func encodeFile(w io.Writer, f *file) error {
	return gob.NewEncoder(w).Encode(f)
}

// Save writes the pipeline's configuration and every trainable weight
// to w.
func Save(w io.Writer, g *core.Globalizer) error {
	f := file{Version: formatVersion, Config: g.Config()}
	seen := make(map[string]bool)
	for i, p := range g.AllParams() {
		name := p.Name
		if seen[name] {
			// Ensemble members share layer names; disambiguate by
			// position so round-trips stay exact.
			name = fmt.Sprintf("%s#%d", p.Name, i)
		}
		seen[name] = true
		f.Tensors = append(f.Tensors, tensor{
			Name: name,
			Rows: p.W.Rows,
			Cols: p.W.Cols,
			Data: append([]float64(nil), p.W.Data...),
		})
	}
	return gob.NewEncoder(w).Encode(&f)
}

// SaveFile saves the pipeline to path, creating or truncating it.
func SaveFile(path string, g *core.Globalizer) error {
	fd, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer fd.Close()
	if err := Save(fd, g); err != nil {
		return err
	}
	return fd.Close()
}

// Load reads a checkpoint and reconstructs a ready-to-run pipeline.
func Load(r io.Reader) (*core.Globalizer, error) {
	var f file
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if f.Version != formatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (want %d)", f.Version, formatVersion)
	}
	g := core.New(f.Config)
	params := g.AllParams()
	if len(params) != len(f.Tensors) {
		return nil, fmt.Errorf("checkpoint: parameter count mismatch: file has %d, architecture has %d",
			len(f.Tensors), len(params))
	}
	seen := make(map[string]bool)
	for i, p := range params {
		name := p.Name
		if seen[name] {
			name = fmt.Sprintf("%s#%d", p.Name, i)
		}
		seen[name] = true
		t := f.Tensors[i]
		if t.Name != name {
			return nil, fmt.Errorf("checkpoint: parameter %d name mismatch: file %q vs architecture %q",
				i, t.Name, name)
		}
		if t.Rows != p.W.Rows || t.Cols != p.W.Cols {
			return nil, fmt.Errorf("checkpoint: parameter %q shape mismatch: file %dx%d vs architecture %dx%d",
				t.Name, t.Rows, t.Cols, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, t.Data)
		// Weights live on disk in f64 only; bumping the version here
		// invalidates any packed reduced-precision mirrors built from
		// the pre-load initialization, so the tiers always serve the
		// loaded weights.
		p.Bump()
	}
	// Re-apply the configured tier so the packed mirrors are rebuilt
	// eagerly from the loaded weights rather than inside the first
	// inference call.
	if err := g.SetPrecision(g.Precision()); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return g, nil
}

// LoadFile loads a pipeline checkpoint from path.
func LoadFile(path string) (*core.Globalizer, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer fd.Close()
	return Load(fd)
}
