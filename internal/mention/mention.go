// Package mention implements the mention-extraction step of Global NER
// (Section V-A of the paper): given the candidate surface forms seeded
// in the CTrie by Local NER, it re-scans every sentence to discover all
// mentions of those forms — the ones Local NER already tagged, the
// ones it missed (false negatives), and completions of partial
// extractions.
package mention

import (
	"nerglobalizer/internal/ctrie"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/types"
)

// Extract scans one sentence against the trie and returns all surface
// form mentions found. localEntities are the entities Local NER tagged
// in this sentence; a scanned mention that exactly matches one of them
// inherits its locally predicted type and is flagged FromLocalNER.
// Everything else gets type None until the Entity Classifier rules.
func Extract(sent *types.Sentence, trie *ctrie.Trie, localEntities []types.Entity) []types.Mention {
	matches := trie.Scan(sent.Tokens)
	if len(matches) == 0 {
		return nil
	}
	out := make([]types.Mention, 0, len(matches))
	for _, m := range matches {
		men := types.Mention{
			Key:     sent.Key(),
			Span:    types.Span{Start: m.Start, End: m.End},
			Surface: m.Surface,
		}
		for _, e := range localEntities {
			if e.Start == m.Start && e.End == m.End {
				men.Type = e.Type
				men.FromLocalNER = true
				break
			}
		}
		out = append(out, men)
	}
	return out
}

// ExtractBatch runs Extract over a batch of sentences. localBySent maps
// each sentence key to its Local NER entities (keys may be absent).
func ExtractBatch(sents []*types.Sentence, trie *ctrie.Trie, localBySent map[types.SentenceKey][]types.Entity) []types.Mention {
	return ExtractBatchPool(sents, trie, localBySent, nil)
}

// ExtractBatchPool is ExtractBatch with the per-sentence trie scans
// sharded over pool. Trie.Scan is read-only, so concurrent scans over
// one frozen trie are safe; per-sentence results are collected at the
// sentence's own index and concatenated in batch order, making the
// output identical to the serial loop at any worker count. A nil pool
// runs serially.
func ExtractBatchPool(sents []*types.Sentence, trie *ctrie.Trie, localBySent map[types.SentenceKey][]types.Entity, pool *parallel.Pool) []types.Mention {
	perSent := parallel.MapOrdered(pool, len(sents), func(i int) []types.Mention {
		s := sents[i]
		return Extract(s, trie, localBySent[s.Key()])
	})
	var out []types.Mention
	for _, ms := range perSent {
		out = append(out, ms...)
	}
	return out
}

// GroupBySurface indexes mentions by their canonical surface form,
// preserving order within each group.
func GroupBySurface(mentions []types.Mention) map[string][]types.Mention {
	out := make(map[string][]types.Mention)
	for _, m := range mentions {
		out[m.Surface] = append(out[m.Surface], m)
	}
	return out
}
