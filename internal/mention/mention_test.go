package mention

import (
	"testing"

	"nerglobalizer/internal/ctrie"
	"nerglobalizer/internal/types"
)

func newTrie(surfaces ...string) *ctrie.Trie {
	tr := ctrie.New()
	for _, s := range surfaces {
		tr.InsertSurface(s)
	}
	return tr
}

func TestExtractRecoversMissedMentions(t *testing.T) {
	tr := newTrie("coronavirus")
	s := &types.Sentence{TweetID: 1, Tokens: []string{"Coronavirus", "spreads", "fast"}}
	// Local NER found nothing in this sentence.
	got := Extract(s, tr, nil)
	if len(got) != 1 {
		t.Fatalf("mentions = %v", got)
	}
	m := got[0]
	if m.Surface != "coronavirus" || m.FromLocalNER || m.Type != types.None {
		t.Fatalf("mention = %+v", m)
	}
	if m.Span.Start != 0 || m.Span.End != 1 {
		t.Fatalf("span = %+v", m.Span)
	}
}

func TestExtractInheritsLocalType(t *testing.T) {
	tr := newTrie("beshear")
	s := &types.Sentence{TweetID: 2, Tokens: []string{"beshear", "speaks"}}
	local := []types.Entity{{Span: types.Span{Start: 0, End: 1}, Type: types.Person}}
	got := Extract(s, tr, local)
	if len(got) != 1 || !got[0].FromLocalNER || got[0].Type != types.Person {
		t.Fatalf("mention = %+v", got)
	}
}

func TestExtractCorrectsPartialExtraction(t *testing.T) {
	// Local NER tagged only "Andy" but the full form is registered:
	// the scan returns the complete mention, not flagged as local
	// (spans differ).
	tr := newTrie("andy beshear")
	s := &types.Sentence{TweetID: 3, Tokens: []string{"Andy", "Beshear", "announced"}}
	local := []types.Entity{{Span: types.Span{Start: 0, End: 1}, Type: types.Person}}
	got := Extract(s, tr, local)
	if len(got) != 1 {
		t.Fatalf("mentions = %v", got)
	}
	if got[0].Span.End != 2 || got[0].FromLocalNER {
		t.Fatalf("partial extraction not corrected: %+v", got[0])
	}
}

func TestExtractBatchAndGroupBySurface(t *testing.T) {
	tr := newTrie("italy", "us")
	sents := []*types.Sentence{
		{TweetID: 1, Tokens: []string{"Italy", "locks", "down"}},
		{TweetID: 2, Tokens: []string{"us", "cases", "rise", "in", "Italy"}},
	}
	ms := ExtractBatch(sents, tr, map[types.SentenceKey][]types.Entity{})
	if len(ms) != 3 {
		t.Fatalf("got %d mentions", len(ms))
	}
	groups := GroupBySurface(ms)
	if len(groups["italy"]) != 2 || len(groups["us"]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestExtractNoMatches(t *testing.T) {
	tr := newTrie("zika")
	s := &types.Sentence{Tokens: []string{"nothing", "here"}}
	if got := Extract(s, tr, nil); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}
