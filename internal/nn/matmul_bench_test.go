package nn

import (
	"fmt"
	"testing"
)

// BenchmarkMatMulKernels compares the pre-existing naive triple loop
// (kept above as the test reference) against the blocked kernel and the
// blocked+parallel kernel at pipeline-relevant sizes. Run with
// `go test ./internal/nn -bench MatMulKernels -benchmem`.
func BenchmarkMatMulKernels(b *testing.B) {
	rng := NewRNG(1)
	for _, n := range []int{64, 256, 1024} {
		a := randMatrix(n, n, rng)
		bm := randMatrix(n, n, rng)
		b.Run(fmt.Sprintf("naive/%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				matMulNaive(a, bm)
			}
		})
		b.Run(fmt.Sprintf("blocked/%d", n), func(b *testing.B) {
			SetMatMulWorkers(1)
			defer SetMatMulWorkers(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMul(a, bm)
			}
		})
		b.Run(fmt.Sprintf("blocked-parallel/%d", n), func(b *testing.B) {
			SetMatMulWorkers(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMul(a, bm)
			}
		})
		b.Run(fmt.Sprintf("blocked-into/%d", n), func(b *testing.B) {
			SetMatMulWorkers(1)
			defer SetMatMulWorkers(0)
			dst := NewMatrix(n, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bm)
			}
		})
	}
}
