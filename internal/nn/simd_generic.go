//go:build !amd64

package nn

// Portable reference bodies for the reduced-precision inner loops.
// simd_amd64.s carries the SSE2 versions; these keep every other
// architecture building and correct. The two implementations may
// differ in the last float32 ulp (different accumulation widths and
// rounding of the activation quantizer) — the contract is the
// analytic error bound in precision_test.go, not cross-architecture
// bit equality.

// dotRows32 computes dst[j] = Σ_k a[k]·rows[j·len(a)+k] for every j:
// one activation row against len(dst) contiguous (transposed) weight
// rows. len(rows) must be at least len(dst)·len(a).
func dotRows32(dst, a, rows []float32) {
	in := len(a)
	for j := range dst {
		r := rows[j*in : j*in+in]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+3 < in; i += 4 {
			s0 += a[i] * r[i]
			s1 += a[i+1] * r[i+1]
			s2 += a[i+2] * r[i+2]
			s3 += a[i+3] * r[i+3]
		}
		for ; i < in; i++ {
			s0 += a[i] * r[i]
		}
		dst[j] = (s0 + s1) + (s2 + s3)
	}
}

// quantRow quantizes one activation row to symmetric int16 in q
// (round half away from zero), zeroes the q[len(x):] padding tail,
// and returns the dequantization scale maxabs/32767 (0 for an
// all-zero row).
func quantRow(q []int16, x []float32) float32 {
	var maxabs float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > maxabs {
			maxabs = v
		}
	}
	if maxabs == 0 {
		for j := range q {
			q[j] = 0
		}
		return 0
	}
	inv := 32767 / maxabs
	for j, v := range x {
		r := v * inv
		if r >= 0 {
			q[j] = int16(int32(r + 0.5))
		} else {
			q[j] = int16(int32(r - 0.5))
		}
	}
	for j := len(x); j < len(q); j++ {
		q[j] = 0
	}
	return maxabs / 32767
}

// i8Rows computes one activation row of the quantized GEMM:
// dst[o] = s · Σ_g (Σ_{i∈g} q[i]·wt[o·inPad+i]) · scale[o·nb+g] + b[o],
// with len(q) a whole number of i8Group-wide groups (zero-padded by
// the caller). Each group's integer dot is exact in int32: products
// are ≤ 32767·127 and i8Group of them stay far below 2³¹.
func i8Rows(dst []float32, q []int16, wt []int8, scale, b []float32, s float32) {
	in := len(q)
	nb := in / i8Group
	for o := range dst {
		wrow := wt[o*in : o*in+in]
		ws := scale[o*nb : o*nb+nb]
		var acc float32
		for g := 0; g < nb; g++ {
			lo := g * i8Group
			var p0, p1, p2, p3 int32
			for i := lo; i < lo+i8Group; i += 4 {
				p0 += int32(q[i]) * int32(wrow[i])
				p1 += int32(q[i+1]) * int32(wrow[i+1])
				p2 += int32(q[i+2]) * int32(wrow[i+2])
				p3 += int32(q[i+3]) * int32(wrow[i+3])
			}
			acc += float32((p0+p1)+(p2+p3)) * ws[g]
		}
		dst[o] = s*acc + b[o]
	}
}

// i8Rows4 is i8Rows over four consecutive activation rows. The
// portable body just delegates row by row — the blocking only pays on
// architectures where the assembly version shares the weight
// sign-extension across rows.
func i8Rows4(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad int) {
	for r := 0; r < 4; r++ {
		i8Rows(dst[r*out:(r+1)*out], q[r*inPad:(r+1)*inPad], wt, scale, b, sx[r])
	}
}

// geluVec is the vectorized-GELU hook; no vector body here, so the
// caller's scalar loop covers everything.
func geluVec(dst, x []float32) int {
	return 0
}
