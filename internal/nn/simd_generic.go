//go:build !amd64 && !arm64

package nn

// Architectures without assembly kernels run the portable reference
// tier only; the dispatch machinery still works (SetSIMD(SIMDGeneric)
// is valid) so cross-platform code can use the same knobs, and
// forcing sse2/avx2/neon fails with an error naming this arch.

var archTiers []simdTier
