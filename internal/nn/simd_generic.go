//go:build !amd64

package nn

// Non-amd64 architectures run the portable reference tier only; the
// dispatch machinery still works (SetSIMD(SIMDGeneric) is valid) so
// cross-platform code can use the same knobs.

func bestSIMD() SIMDLevel { return SIMDGeneric }

func simdSupported(l SIMDLevel) bool { return l == SIMDGeneric }

func newKernelSet(l SIMDLevel, m i8Mode) *kernelSet {
	return refKernelSet(m)
}
