package nn

import (
	"math"
	"testing"
)

func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"", F64, true},
		{"f64", F64, true},
		{"f32", F32, true},
		{"i8", I8, true},
		{"fp16", F64, false},
		{"F32", F64, false},
		{"int8", F64, false},
	}
	for _, c := range cases {
		got, err := ParsePrecision(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePrecision(%q) accepted; want error", c.in)
		}
	}
	for _, p := range []Precision{F64, F32, I8} {
		rt, err := ParsePrecision(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip %v → %q → %v, %v", p, p.String(), rt, err)
		}
	}
}

// down converts a float64 matrix to a fresh float32 one.
func down(x *Matrix) *Matrix32 {
	d := NewMatrix32(x.Rows, x.Cols)
	Downconvert(d, x)
	return d
}

// propShapes are the random shapes the kernel property tests sweep:
// the usual packed-batch sizes plus empty, single-row, and ragged
// (non-multiple-of-4) widths that exercise the unroll tails.
var propShapes = [][2]int{{0, 8}, {1, 1}, {1, 32}, {3, 5}, {7, 24}, {13, 17}, {40, 32}, {64, 33}, {128, 64}}

// TestDenseInferInto32ErrorBound bounds |f32 − f64| per output element
// by a relative tolerance against the sum of absolute contributions
// (the natural condition number of a dot product). Widths stay ≤128,
// so float32 accumulation error is well under 1e-5 relative.
func TestDenseInferInto32ErrorBound(t *testing.T) {
	rng := NewRNG(41)
	for _, shape := range propShapes {
		rows, in := shape[0], shape[1]
		out := in/2 + 3
		d := NewDense("p", in, out, rng)
		rng.NormalInit(d.B.W, 0.5)
		x := randomMatrix(rows, in, int64(100+rows*in))
		want := d.Infer(x)
		dst := NewMatrix32(rows, out)
		d.InferInto32(dst, down(x))
		for i := 0; i < rows; i++ {
			for o := 0; o < out; o++ {
				refAbs := math.Abs(d.B.W.Data[o])
				for j := 0; j < in; j++ {
					refAbs += math.Abs(x.Row(i)[j] * d.W.W.Data[j*out+o])
				}
				diff := math.Abs(float64(dst.Row(i)[o]) - want.Row(i)[o])
				if bound := 1e-5*refAbs + 1e-7; diff > bound {
					t.Fatalf("shape %dx%d→%d elem (%d,%d): |f32−f64| = %g > %g", rows, in, out, i, o, diff, bound)
				}
			}
		}
	}
}

// TestDenseInferIntoI8ErrorBound checks the W8A16 kernel against the
// analytic quantization bound: with the group-wise weight scale s_w
// and the row's dynamic int16 activation step s_x = maxabs/32767, each
// output obeys |y_i8 − y_f64| ≤ Σ_j (|x_j|·s_w/2 + |ŵ_j|·s_x/2) plus
// float32 slack, where ŵ is the dequantized weight and s_w is the
// scale of j's group. A zero activation row has s_x = 0 (represented
// exactly). The W8A16 mode is pinned explicitly: on AVX2 hardware the
// auto mode runs the W8A8 kernels, whose bound is different (see
// TestDenseInferIntoU8ErrorBound).
func TestDenseInferIntoI8ErrorBound(t *testing.T) {
	if err := SetI8Mode("w8a16"); err != nil {
		t.Fatal(err)
	}
	defer SetI8Mode("auto")
	rng := NewRNG(43)
	var qs I8Scratch
	for _, shape := range propShapes {
		rows, in := shape[0], shape[1]
		out := in/2 + 3
		d := NewDense("q", in, out, rng)
		rng.NormalInit(d.B.W, 0.5)
		x := randomMatrix(rows, in, int64(200+rows*in))
		want := d.Infer(x)
		dst := NewMatrix32(rows, out)
		x32 := down(x)
		d.InferIntoI8(dst, x32, &qs)
		pk := d.packI8s()
		nb := (in + i8Group - 1) / i8Group
		for i := 0; i < rows; i++ {
			// Per-row activation step, mirroring the kernel.
			var maxabs float32
			for _, v := range x32.Row(i) {
				if v < 0 {
					v = -v
				}
				if v > maxabs {
					maxabs = v
				}
			}
			sx := float64(maxabs) / 32767
			for o := 0; o < out; o++ {
				bound := 1e-6
				refAbs := math.Abs(d.B.W.Data[o])
				for j := 0; j < in; j++ {
					g := j / i8Group
					sw := float64(pk.scale[o*nb+g])
					xv := math.Abs(x.Row(i)[j])
					wq := math.Abs(float64(pk.wt[o*pk.inPad+j]))
					bound += xv*sw/2 + wq*sw*sx/2
					refAbs += xv * math.Abs(d.W.W.Data[j*out+o])
				}
				bound = bound*1.01 + 1e-5*refAbs // float32 rounding slack
				diff := math.Abs(float64(dst.Row(i)[o]) - want.Row(i)[o])
				if diff > bound {
					t.Fatalf("shape %dx%d→%d elem (%d,%d): |i8−f64| = %g > %g", rows, in, out, i, o, diff, bound)
				}
			}
		}
	}
}

// TestDenseInferIntoU8ErrorBound checks the W8A8 kernels against
// their analytic bound: the affine uint8 activation x̂ = xmin + step·u
// carries |x̂_j − x_j| ≤ step/2 (step = range/127), the
// group-quantized weight |ŵ_j − w_j| ≤ s_w/2, so each output obeys
// |y − y_f64| ≤ Σ_j (|ŵ_j|·step/2 + |x_j|·s_w/2) plus float32 slack.
// The forced mode runs the reference bodies on non-AVX2 machines and
// the VPMADDUBSW assembly where dispatched — same bound either way.
func TestDenseInferIntoU8ErrorBound(t *testing.T) {
	if err := SetI8Mode("w8a8"); err != nil {
		t.Fatal(err)
	}
	defer SetI8Mode("auto")
	rng := NewRNG(53)
	var qs I8Scratch
	for _, shape := range propShapes {
		rows, in := shape[0], shape[1]
		out := in/2 + 3
		d := NewDense("u", in, out, rng)
		rng.NormalInit(d.B.W, 0.5)
		x := randomMatrix(rows, in, int64(300+rows*in))
		want := d.Infer(x)
		dst := NewMatrix32(rows, out)
		x32 := down(x)
		d.InferIntoI8(dst, x32, &qs)
		pk := d.packI8s()
		nb := (in + i8Group - 1) / i8Group
		for i := 0; i < rows; i++ {
			// Per-row affine quantization step, mirroring the kernel.
			xmin, xmax := x32.Row(i)[0], x32.Row(i)[0]
			for _, v := range x32.Row(i) {
				if v < xmin {
					xmin = v
				}
				if v > xmax {
					xmax = v
				}
			}
			step := float64(xmax-xmin) / 127
			for o := 0; o < out; o++ {
				bound := 1e-6
				refAbs := math.Abs(d.B.W.Data[o])
				for j := 0; j < in; j++ {
					g := j / i8Group
					sw := float64(pk.scale[o*nb+g])
					xv := math.Abs(x.Row(i)[j])
					wq := math.Abs(float64(pk.wt[o*pk.inPad+j]))
					bound += xv*sw/2 + wq*sw*step/2
					refAbs += xv * math.Abs(d.W.W.Data[j*out+o])
				}
				bound = bound*1.02 + 1e-5*refAbs // float32 + rounding slack
				diff := math.Abs(float64(dst.Row(i)[o]) - want.Row(i)[o])
				if diff > bound {
					t.Fatalf("shape %dx%d→%d elem (%d,%d): |u8−f64| = %g > %g", rows, in, out, i, o, diff, bound)
				}
			}
		}
	}
}

// TestInferIntoI8ZeroRowIsExactBias pins the zero-skip semantics: a
// zero activation row must produce exactly the (float32) bias, the
// same answer the f64 kernel gives padded rows.
func TestInferIntoI8ZeroRowIsExactBias(t *testing.T) {
	rng := NewRNG(47)
	d := NewDense("z", 16, 9, rng)
	rng.NormalInit(d.B.W, 1)
	x := NewMatrix32(3, 16)
	for j := range x.Row(1) { // middle row nonzero, outer rows zero
		x.Row(1)[j] = float32(j) - 7.5
	}
	dst := NewMatrix32(3, 9)
	var qs I8Scratch
	d.InferIntoI8(dst, x, &qs)
	for _, r := range []int{0, 2} {
		for o := 0; o < 9; o++ {
			if dst.Row(r)[o] != float32(d.B.W.Data[o]) {
				t.Fatalf("zero row %d output %d = %v, want exact bias %v", r, o, dst.Row(r)[o], float32(d.B.W.Data[o]))
			}
		}
	}
}

// TestMatMul32ErrorBound covers the float32 attention GEMMs (plain and
// transposed) against their f64 references.
func TestMatMul32ErrorBound(t *testing.T) {
	for _, shape := range [][3]int{{1, 1, 1}, {5, 7, 3}, {16, 16, 16}, {33, 9, 21}, {0, 4, 4}} {
		m, k, n := shape[0], shape[1], shape[2]
		a := randomMatrix(m, k, int64(m*100+k))
		b := randomMatrix(k, n, int64(k*100+n))
		bt := randomMatrix(n, k, int64(n*100+k+1))
		want := MatMul(a, b)
		dst := NewMatrix32(m, n)
		MatMul32Into(dst, down(a), down(b))
		checkMatClose(t, "MatMul32Into", dst, want, a, b, false)
		wantT := MatMulT(a, bt)
		dstT := NewMatrix32(m, n)
		MatMulT32Into(dstT, down(a), down(bt))
		checkMatClose(t, "MatMulT32Into", dstT, wantT, a, bt, true)
	}
}

func checkMatClose(t *testing.T, label string, got *Matrix32, want, a, b *Matrix, transposed bool) {
	t.Helper()
	for i := 0; i < want.Rows; i++ {
		for j := 0; j < want.Cols; j++ {
			refAbs := 1e-7
			for k := 0; k < a.Cols; k++ {
				bv := 0.0
				if transposed {
					bv = b.Row(j)[k]
				} else {
					bv = b.Row(k)[j]
				}
				refAbs += math.Abs(a.Row(i)[k] * bv)
			}
			diff := math.Abs(float64(got.Row(i)[j]) - want.Row(i)[j])
			if bound := 1e-5 * refAbs; diff > bound {
				t.Fatalf("%s elem (%d,%d): diff %g > %g", label, i, j, diff, bound)
			}
		}
	}
}

// TestExp32Accuracy sweeps the softmax-relevant range and bounds the
// relative error of the fast exponential.
func TestExp32Accuracy(t *testing.T) {
	worst := 0.0
	for x := -87.0; x <= 10; x += 0.0137 {
		got := float64(exp32(float32(x)))
		want := math.Exp(x)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > 5e-5 {
		t.Fatalf("exp32 worst relative error %g > 5e-5", worst)
	}
	if exp32(-200) != 0 {
		t.Fatalf("exp32(-200) = %v, want 0", exp32(-200))
	}
}

// TestTanh32Accuracy bounds the absolute error of the fast tanh over
// the GELU-relevant range (tanh is bounded, so absolute is the right
// metric).
func TestTanh32Accuracy(t *testing.T) {
	worst := 0.0
	for x := -12.0; x <= 12; x += 0.0093 {
		diff := math.Abs(float64(tanh32(float32(x))) - math.Tanh(x))
		if diff > worst {
			worst = diff
		}
	}
	if worst > 1e-4 {
		t.Fatalf("tanh32 worst absolute error %g > 1e-4", worst)
	}
}

// TestScaledSoftmax32ErrorBound compares f32 softmax rows (fast exp,
// reciprocal normalization) against the f64 kernel; outputs are
// probabilities so the bound is absolute.
func TestScaledSoftmax32ErrorBound(t *testing.T) {
	const scale = 0.25
	forEachSIMDLevel(t, func(t *testing.T) {
		for _, shape := range [][2]int{{1, 1}, {6, 6}, {17, 5}, {0, 4}, {3, 0}, {9, 48}} {
			x := randomMatrix(shape[0], shape[1], int64(shape[0]*37+shape[1]))
			x.ScaleInPlace(4) // widen logit spread
			want := NewMatrix(shape[0], shape[1])
			ScaledSoftmaxRowsInto(want, x, scale)
			dst := NewMatrix32(shape[0], shape[1])
			ScaledSoftmaxRows32Into(dst, down(x), scale)
			for i := range want.Data {
				if diff := math.Abs(float64(dst.Data[i]) - want.Data[i]); diff > 1e-4 {
					t.Fatalf("shape %v elem %d: |f32−f64| = %g > 1e-4", shape, i, diff)
				}
			}
		}
	})
}

// TestLayerNormInferResidualInto32ErrorBound compares the fused f32
// residual+norm against f64. Outputs are normalized (unit variance
// before the affine), so an absolute bound is appropriate.
func TestLayerNormInferResidualInto32ErrorBound(t *testing.T) {
	forEachSIMDLevel(t, func(t *testing.T) {
		for _, dim := range []int{3, 24, 37} { // sub-lane, lane-aligned, ragged tails
			ln := NewLayerNorm("p32", dim)
			rng := NewRNG(53)
			rng.NormalInit(ln.Gamma.W, 0.3)
			rng.NormalInit(ln.Beta.W, 0.3)
			for _, rows := range []int{0, 1, 5, 37} {
				x := randomMatrix(rows, dim, int64(rows)+300)
				res := randomMatrix(rows, dim, int64(rows)+400)
				want := NewMatrix(rows, dim)
				ln.InferResidualInto(want, x.Clone(), res)
				dst := NewMatrix32(rows, dim)
				ln.InferResidualInto32(dst, down(x), down(res))
				for i := range want.Data {
					if diff := math.Abs(float64(dst.Data[i]) - want.Data[i]); diff > 1e-3 {
						t.Fatalf("dim=%d rows=%d elem %d: |f32−f64| = %g > 1e-3", dim, rows, i, diff)
					}
				}
			}
		}
	})
}

// TestGELUInferInto32ErrorBound compares the fast-tanh GELU with the
// f64 reference, relative to |x| (GELU(x) ≈ x for large x).
func TestGELUInferInto32ErrorBound(t *testing.T) {
	g := NewGELU()
	x := randomMatrix(11, 13, 61)
	x.ScaleInPlace(3)
	want := g.Infer(x)
	dst := NewMatrix32(11, 13)
	g.InferInto32(dst, down(x))
	for i := range want.Data {
		diff := math.Abs(float64(dst.Data[i]) - want.Data[i])
		if bound := 1e-4*math.Abs(x.Data[i]) + 1e-6; diff > bound {
			t.Fatalf("elem %d (x=%g): |f32−f64| = %g > %g", i, x.Data[i], diff, bound)
		}
	}
}

// TestPackInvalidation pins the staleness contract: mutating a Param
// (directly + Bump, or through an optimizer Step) rebuilds the packed
// mirrors, and an unchanged Param reuses the cached pack.
func TestPackInvalidation(t *testing.T) {
	rng := NewRNG(59)
	d := NewDense("inv", 8, 6, rng)
	x := randomMatrix(4, 8, 71)
	x32 := down(x)
	dst := NewMatrix32(4, 6)
	d.InferInto32(dst, x32)
	p1 := d.p32.Load()
	d.InferInto32(dst, x32)
	if d.p32.Load() != p1 {
		t.Fatal("pack32 rebuilt without a weight mutation")
	}
	// Direct mutation + Bump must invalidate.
	d.W.W.Data[0] += 1
	d.W.Bump()
	d.InferInto32(dst, x32)
	if d.p32.Load() == p1 {
		t.Fatal("pack32 not rebuilt after Bump")
	}
	want := d.Infer(x)
	if math.Abs(float64(dst.Row(0)[0])-want.Row(0)[0]) > 1e-4*math.Abs(want.Row(0)[0])+1e-5 {
		t.Fatalf("stale pack served after Bump: got %v want %v", dst.Row(0)[0], want.Row(0)[0])
	}
	// Optimizer steps bump every registered param.
	var qs I8Scratch
	dstQ := NewMatrix32(4, 6)
	d.InferIntoI8(dstQ, x32, &qs)
	q1 := d.pi8.Load()
	wv, bv := d.W.Version(), d.B.Version()
	opt := NewSGD(0.1)
	opt.Register(d.Params()...)
	d.W.G.Fill(0.5)
	opt.Step()
	if d.W.Version() == wv || d.B.Version() == bv {
		t.Fatal("SGD.Step did not bump param versions")
	}
	d.InferIntoI8(dstQ, x32, &qs)
	if d.pi8.Load() == q1 {
		t.Fatal("packI8 not rebuilt after optimizer step")
	}
	adam := NewAdam(0.01)
	adam.Register(d.Params()...)
	wv = d.W.Version()
	d.W.G.Fill(0.25)
	adam.Step()
	if d.W.Version() == wv {
		t.Fatal("Adam.Step did not bump param versions")
	}
}

// TestPackI8ZeroColumn pins the degenerate all-zero weight column: its
// scale stays 0 and the output is exactly the bias regardless of
// input.
func TestPackI8ZeroColumn(t *testing.T) {
	rng := NewRNG(67)
	d := NewDense("zc", 8, 4, rng)
	for i := 0; i < 8; i++ { // zero column 2
		d.W.W.Data[i*4+2] = 0
	}
	d.W.Bump()
	rng.NormalInit(d.B.W, 1)
	d.B.Bump()
	x := randomMatrix(3, 8, 73)
	dst := NewMatrix32(3, 4)
	var qs I8Scratch
	d.InferIntoI8(dst, down(x), &qs)
	for r := 0; r < 3; r++ {
		if dst.Row(r)[2] != float32(d.B.W.Data[2]) {
			t.Fatalf("zero-column output row %d = %v, want exact bias %v", r, dst.Row(r)[2], float32(d.B.W.Data[2]))
		}
	}
}
