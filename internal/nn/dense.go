package nn

// Dense is a fully connected layer computing y = x·W + b for a batch x
// with one example per row.
type Dense struct {
	W *Param // in×out weight matrix
	B *Param // 1×out bias

	x *Matrix // cached input for backprop
	// dwScratch holds xᵀ·dout between Backward calls so the weight
	// gradient stops allocating a fresh in×out matrix per step. The
	// gradient is still accumulated into W.G with the same element
	// order as before, keeping training trajectories bit-identical.
	dwScratch *Matrix

	// Packed read-only weight mirrors for the reduced-precision
	// inference tiers (pack.go); rebuilt lazily when the Param
	// versions move.
	p32 packPtr32
	pi8 packPtrI8
}

// NewDense constructs a Dense layer with Xavier-initialized weights.
func NewDense(name string, in, out int, rng *RNG) *Dense {
	d := &Dense{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", 1, out),
	}
	rng.XavierInit(d.W.W, in, out)
	return d
}

// In returns the input dimensionality.
func (d *Dense) In() int { return d.W.W.Rows }

// Out returns the output dimensionality.
func (d *Dense) Out() int { return d.W.W.Cols }

// Forward computes x·W + b.
func (d *Dense) Forward(x *Matrix, train bool) *Matrix {
	d.x = x
	out := MatMul(x, d.W.W)
	out.AddRowVecInPlace(d.B.W.Data)
	return out
}

// Backward accumulates dW = xᵀ·dout and db = Σrows(dout), returning
// dx = dout·Wᵀ.
func (d *Dense) Backward(dout *Matrix) *Matrix {
	if d.x == nil {
		panic("nn: Dense.Backward before Forward")
	}
	d.dwScratch = ReuseMatrix(d.dwScratch, d.W.W.Rows, d.W.W.Cols)
	TMatMulInto(d.dwScratch, d.x, dout)
	d.W.G.AddInPlace(d.dwScratch)
	for j, v := range dout.SumRows() {
		d.B.G.Data[j] += v
	}
	return MatMulT(dout, d.W.W)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
