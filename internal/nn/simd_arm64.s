//go:build arm64

#include "textflag.h"

// NEON (Advanced SIMD) kernel tier for arm64.
//
// The Go assembler has no mnemonics for most aarch64 vector float
// instructions (FMUL/FADD/FSUB/FDIV/FABS/FMAX/FCMGT/compare/convert
// vector forms, SMLAL, SSHLL, SQXTN, FMAXV, lane DUP). aarch64
// instructions are fixed 4-byte words, so those are emitted as
// WORD-encoded opcodes through the macros below — each macro names
// the instruction, its operand roles, and the arrangement, and the
// generated machine code is pinned by disassembly (go tool objdump)
// against the intended mnemonics. Macro arguments are REGISTER
// NUMBERS (V7 → 7), not register names.
//
// Contracts mirror the x86 tiers:
//   - dotRows32NEON uses FMLA — cross-tier bit equality NOT promised.
//   - gelu4NEON / expRow4NEON transliterate the scalar exp32/tanh32
//     operation sequence with separate multiply and add — per-element
//     bits match the scalar formulas (and every other tier) exactly.
//   - axpy4/axpy1/lnAffine/vscale keep the scalar mul-then-add order
//     per independent lane — bit-identical to the reference walk.
//   - i8Rows/i8Rows4 accumulate exact int32 group sums (order-exact)
//     and replicate the reference's scalar dequant order — bit-
//     identical to i8RowsRef, and to each other per row.

#define FMUL4S(m, n, d) WORD $(0x6E20DC00 | (m)<<16 | (n)<<5 | (d)) // FMUL Vd.4S, Vn.4S, Vm.4S
#define FADD4S(m, n, d) WORD $(0x4E20D400 | (m)<<16 | (n)<<5 | (d)) // FADD Vd.4S, Vn.4S, Vm.4S
#define FSUB4S(m, n, d) WORD $(0x4EA0D400 | (m)<<16 | (n)<<5 | (d)) // FSUB Vd.4S, Vn.4S, Vm.4S (d = n − m)
#define FDIV4S(m, n, d) WORD $(0x6E20FC00 | (m)<<16 | (n)<<5 | (d)) // FDIV Vd.4S, Vn.4S, Vm.4S (d = n / m)
#define FMAX4S(m, n, d) WORD $(0x4E20F400 | (m)<<16 | (n)<<5 | (d)) // FMAX Vd.4S, Vn.4S, Vm.4S
#define FABS4S(n, d) WORD $(0x4EA0F800 | (n)<<5 | (d))              // FABS Vd.4S, Vn.4S
#define FCMGT4S(m, n, d) WORD $(0x6EA0E400 | (m)<<16 | (n)<<5 | (d)) // FCMGT Vd.4S, Vn.4S, Vm.4S (d = n > m)
#define FCMGE4S(m, n, d) WORD $(0x6E20E400 | (m)<<16 | (n)<<5 | (d)) // FCMGE Vd.4S, Vn.4S, Vm.4S (d = n ≥ m)
#define BIC16B(m, n, d) WORD $(0x4E601C00 | (m)<<16 | (n)<<5 | (d)) // BIC Vd.16B, Vn.16B, Vm.16B (d = n &^ m)
#define FCVTZS4S(n, d) WORD $(0x4EA1B800 | (n)<<5 | (d))            // FCVTZS Vd.4S, Vn.4S (trunc toward zero)
#define SCVTF4S(n, d) WORD $(0x4E21D800 | (n)<<5 | (d))             // SCVTF Vd.4S, Vn.4S (int32 → f32)
#define FCVTAS4S(n, d) WORD $(0x4E21C800 | (n)<<5 | (d))            // FCVTAS Vd.4S, Vn.4S (nearest, ties away)
#define SQXTN4H(n, d) WORD $(0x0E614800 | (n)<<5 | (d))             // SQXTN Vd.4H, Vn.4S (saturating narrow)
#define SSHLL8H(n, d) WORD $(0x0F08A400 | (n)<<5 | (d))             // SSHLL Vd.8H, Vn.8B, #0 (sign-extend)
#define SSHLL2_8H(n, d) WORD $(0x4F08A400 | (n)<<5 | (d))           // SSHLL2 Vd.8H, Vn.16B, #0
#define SMLAL4S(m, n, d) WORD $(0x0E608000 | (m)<<16 | (n)<<5 | (d)) // SMLAL Vd.4S, Vn.4H, Vm.4H
#define SMLAL2_4S(m, n, d) WORD $(0x4E608000 | (m)<<16 | (n)<<5 | (d)) // SMLAL2 Vd.4S, Vn.8H, Vm.8H
#define FMAXVS(n, d) WORD $(0x6E30F800 | (n)<<5 | (d))              // FMAXV Sd, Vn.4S
#define DUPSLANE(idx, n, d) WORD $(0x5E000400 | ((idx)<<3|4)<<16 | (n)<<5 | (d)) // DUP Sd, Vn.S[idx]
#define SCVTFS(n, d) WORD $(0x5E21D800 | (n)<<5 | (d))              // SCVTF Sd, Sn (int32 lane 0 → f32)
#define FCVTASW(n, d) WORD $(0x1E240000 | (n)<<5 | (d))             // FCVTAS Wd, Sn (nearest, ties away)

// func dotRows32NEON(dst, a, rows []float32)
//
// dst[j] = Σ_k a[k]·rows[j·len(a)+k]: two 4-wide FMLA accumulators (8
// elements per iteration), a 4-block tail, vector fold
// (l0+l1)+(l2+l3), then a scalar remainder.
TEXT ·dotRows32NEON(SB), NOSPLIT, $0-72
	MOVD dst_base+0(FP), R0
	MOVD dst_len+8(FP), R1
	MOVD a_base+24(FP), R2
	MOVD a_len+32(FP), R3
	MOVD rows_base+48(FP), R4
	CBZ  R1, dr_done

dr_outer:
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	MOVD R2, R5
	LSR  $3, R3, R6
	CBZ  R6, dr_tail4

dr_loop8:
	VLD1.P 32(R5), [V2.S4, V3.S4]
	VLD1.P 32(R4), [V4.S4, V5.S4]
	VFMLA  V4.S4, V2.S4, V0.S4
	VFMLA  V5.S4, V3.S4, V1.S4
	SUBS $1, R6, R6
	BNE  dr_loop8

dr_tail4:
	AND $4, R3, R7
	CBZ R7, dr_fold
	VLD1.P 16(R5), [V2.S4]
	VLD1.P 16(R4), [V4.S4]
	VFMLA  V4.S4, V2.S4, V0.S4

dr_fold:
	FADD4S(1, 0, 0)
	DUPSLANE(1, 0, 16)
	DUPSLANE(2, 0, 17)
	DUPSLANE(3, 0, 18)
	FADDS F16, F0, F0
	FADDS F18, F17, F17
	FADDS F17, F0, F0
	AND $3, R3, R7
	CBZ R7, dr_store

dr_scalar:
	FMOVS.P 4(R5), F1
	FMOVS.P 4(R4), F2
	FMULS F1, F2, F2
	FADDS F2, F0, F0
	SUBS $1, R7, R7
	BNE  dr_scalar

dr_store:
	FMOVS.P F0, 4(R0)
	SUBS $1, R1, R1
	BNE  dr_outer

dr_done:
	RET

// func quantRowNEON(q []int16, x []float32) float32
//
// Symmetric int16 quantizer: 4-wide FABS/FMAX maxabs scan (FMAXV
// fold, scalar tail), then 4-wide FMUL/FCVTAS/SQXTN quantize with a
// scalar FCVTAS tail — both round nearest-ties-away, the reference's
// half-away rule. Pads q[len(x):] with zeros; returns maxabs/32767.
TEXT ·quantRowNEON(SB), NOSPLIT, $0-52
	MOVD q_base+0(FP), R0
	MOVD q_len+8(FP), R1
	MOVD x_base+24(FP), R2
	MOVD x_len+32(FP), R3
	VEOR V0.B16, V0.B16, V0.B16
	MOVD R2, R5
	LSR  $2, R3, R6
	CBZ  R6, qm_fold

qm_loop:
	VLD1.P 16(R5), [V1.S4]
	FABS4S(1, 1)
	FMAX4S(1, 0, 0)
	SUBS $1, R6, R6
	BNE  qm_loop

qm_fold:
	FMAXVS(0, 0)
	AND $3, R3, R7
	CBZ R7, qm_done

qm_scalar:
	FMOVS.P 4(R5), F1
	FABSS F1, F1
	FMAXS F1, F0, F0
	SUBS $1, R7, R7
	BNE  qm_scalar

qm_done:
	FCMPS $(0.0), F0
	BNE   q_nonzero

	// All-zero row: zero q (whole i8Group-wide groups: 16 int16 = 32
	// bytes per group) and return 0.
	VEOR V1.B16, V1.B16, V1.B16
	MOVD R0, R8
	LSR  $4, R1, R9
	CBZ  R9, qz_ret

qz_loop:
	VST1.P [V0.B16, V1.B16], 32(R8)
	SUBS $1, R9, R9
	BNE  qz_loop

qz_ret:
	FMOVS F0, ret+48(FP)
	RET

q_nonzero:
	MOVD  $0x46fffe00, R7 // 32767.0
	FMOVS R7, F2
	FDIVS F0, F2, F2      // inv = 32767/maxabs
	VDUP  V2.S[0], V3.S4
	MOVD  R2, R5
	MOVD  R0, R8
	LSR   $2, R3, R6
	CBZ   R6, qq_tail

qq_loop:
	VLD1.P 16(R5), [V1.S4]
	FMUL4S(3, 1, 1)
	FCVTAS4S(1, 1)
	SQXTN4H(1, 1)
	VST1.P [V1.H4], 8(R8)
	SUBS $1, R6, R6
	BNE  qq_loop

qq_tail:
	AND $3, R3, R7
	CBZ R7, qq_pad

qq_scalar:
	FMOVS.P 4(R5), F4
	FMULS F2, F4, F4
	FCVTASW(4, 9)
	MOVH.P R9, 2(R8)
	SUBS $1, R7, R7
	BNE  qq_scalar

qq_pad:
	ADD R1<<1, R0, R10 // q end

qq_padloop:
	CMP R10, R8
	BHS qq_ret
	MOVH.P ZR, 2(R8)
	JMP qq_padloop

qq_ret:
	MOVD  $0x46fffe00, R7
	FMOVS R7, F2
	FDIVS F2, F0, F0 // scale = maxabs/32767
	FMOVS F0, ret+48(FP)
	RET

// func i8RowsNEON(dst []float32, q []int16, wt []int8, scale, b []float32, s float32)
//
// One W8A16 activation row. Per 16-wide group: SSHLL widens the int8
// weights, four SMLAL accumulate exact int32 lane sums, ADDV folds
// the group total, and the scalar SCVTF·ws[g] accumulation replicates
// the reference order — bit-identical to i8RowsRef.
TEXT ·i8RowsNEON(SB), NOSPLIT, $0-124
	MOVD  dst_base+0(FP), R0
	MOVD  dst_len+8(FP), R1
	MOVD  q_base+24(FP), R2
	MOVD  q_len+32(FP), R3
	MOVD  wt_base+48(FP), R4
	MOVD  scale_base+72(FP), R5
	MOVD  b_base+96(FP), R6
	FMOVS s+120(FP), F31
	LSR   $4, R3, R7 // groups per row
	CBZ   R1, i8_done
	MOVD  $0, R12

i8_outer:
	FMOVS R12, F30 // acc = 0
	MOVD  R2, R8
	MOVD  R7, R9
	CBZ   R9, i8_fin

i8_group:
	VLD1.P 16(R4), [V1.B16]
	SSHLL8H(1, 4)
	SSHLL2_8H(1, 5)
	VLD1.P 32(R8), [V2.H8, V3.H8]
	VEOR   V6.B16, V6.B16, V6.B16
	SMLAL4S(4, 2, 6)
	SMLAL2_4S(4, 2, 6)
	SMLAL4S(5, 3, 6)
	SMLAL2_4S(5, 3, 6)
	VADDV V6.S4, V7
	SCVTFS(7, 7)
	FMOVS.P 4(R5), F8
	FMULS F8, F7, F7
	FADDS F7, F30, F30
	SUBS $1, R9, R9
	BNE  i8_group

i8_fin:
	FMULS F31, F30, F30
	FMOVS.P 4(R6), F8
	FADDS F8, F30, F30
	FMOVS.P F30, 4(R0)
	SUBS $1, R1, R1
	BNE  i8_outer

i8_done:
	RET

// func i8Rows4NEON(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad, dstStride int)
//
// i8RowsNEON over four activation rows: weight widening and ws[g]
// loads shared, per-row operation order identical to the single-row
// kernel (bit-identical per row).
TEXT ·i8Rows4NEON(SB), NOSPLIT, $0-168
	MOVD dst_base+0(FP), R0
	MOVD q_base+24(FP), R2
	MOVD sx_base+48(FP), R3
	MOVD wt_base+72(FP), R4
	MOVD scale_base+96(FP), R5
	MOVD b_base+120(FP), R6
	MOVD out+144(FP), R1
	MOVD inPad+152(FP), R13
	MOVD dstStride+160(FP), R14
	CBZ  R1, r4_done
	LSL  $1, R13, R13 // activation row stride in bytes
	LSL  $2, R14, R14 // dst row stride in bytes
	MOVD R0, R19
	ADD  R14, R19, R20
	ADD  R14, R20, R21
	ADD  R14, R21, R22
	FMOVS 0(R3), F25
	FMOVS 4(R3), F26
	FMOVS 8(R3), F27
	FMOVS 12(R3), F28
	LSR  $5, R13, R15 // groups per row
	MOVD $0, R12

r4_outer:
	FMOVS R12, F20
	FMOVS R12, F21
	FMOVS R12, F22
	FMOVS R12, F23
	MOVD  R2, R7
	ADD   R13, R7, R8
	ADD   R13, R8, R9
	ADD   R13, R9, R10
	MOVD  R15, R11
	CBZ   R11, r4_fin

r4_group:
	VLD1.P 16(R4), [V1.B16]
	SSHLL8H(1, 4)
	SSHLL2_8H(1, 5)
	FMOVS.P 4(R5), F8

	VLD1.P 32(R7), [V2.H8, V3.H8]
	VEOR   V6.B16, V6.B16, V6.B16
	SMLAL4S(4, 2, 6)
	SMLAL2_4S(4, 2, 6)
	SMLAL4S(5, 3, 6)
	SMLAL2_4S(5, 3, 6)
	VADDV V6.S4, V7
	SCVTFS(7, 7)
	FMULS F8, F7, F7
	FADDS F7, F20, F20

	VLD1.P 32(R8), [V2.H8, V3.H8]
	VEOR   V6.B16, V6.B16, V6.B16
	SMLAL4S(4, 2, 6)
	SMLAL2_4S(4, 2, 6)
	SMLAL4S(5, 3, 6)
	SMLAL2_4S(5, 3, 6)
	VADDV V6.S4, V7
	SCVTFS(7, 7)
	FMULS F8, F7, F7
	FADDS F7, F21, F21

	VLD1.P 32(R9), [V2.H8, V3.H8]
	VEOR   V6.B16, V6.B16, V6.B16
	SMLAL4S(4, 2, 6)
	SMLAL2_4S(4, 2, 6)
	SMLAL4S(5, 3, 6)
	SMLAL2_4S(5, 3, 6)
	VADDV V6.S4, V7
	SCVTFS(7, 7)
	FMULS F8, F7, F7
	FADDS F7, F22, F22

	VLD1.P 32(R10), [V2.H8, V3.H8]
	VEOR   V6.B16, V6.B16, V6.B16
	SMLAL4S(4, 2, 6)
	SMLAL2_4S(4, 2, 6)
	SMLAL4S(5, 3, 6)
	SMLAL2_4S(5, 3, 6)
	VADDV V6.S4, V7
	SCVTFS(7, 7)
	FMULS F8, F7, F7
	FADDS F7, F23, F23

	SUBS $1, R11, R11
	BNE  r4_group

r4_fin:
	FMOVS.P 4(R6), F8
	FMULS F25, F20, F20
	FADDS F8, F20, F20
	FMOVS.P F20, 4(R19)
	FMULS F26, F21, F21
	FADDS F8, F21, F21
	FMOVS.P F21, 4(R20)
	FMULS F27, F22, F22
	FADDS F8, F22, F22
	FMOVS.P F22, 4(R21)
	FMULS F28, F23, F23
	FADDS F8, F23, F23
	FMOVS.P F23, 4(R22)
	SUBS $1, R1, R1
	BNE  r4_outer

r4_done:
	RET

// func gelu4NEON(dst, x []float32)
//
// Tanh-approximated GELU, four lanes at a time, transliterating the
// scalar operation sequence (incl. exp32's trunc-and-correct floor
// and Horner chain) with separate multiply and add — bit-identical to
// the scalar formula. len(x) must be a multiple of 4; dst may alias x.
TEXT ·gelu4NEON(SB), NOSPLIT, $0-48
	MOVD dst_base+0(FP), R0
	MOVD x_base+24(FP), R1
	MOVD x_len+32(FP), R2
	LSR  $2, R2, R2
	CBZ  R2, g_done
	MOVD $0x3D372713, R3 // 0.044715
	VDUP R3, V16.S4
	MOVD $0x3F4C422A, R3 // √(2/π)
	VDUP R3, V17.S4
	MOVD $0x7FFFFFFF, R3 // |·| mask
	VDUP R3, V18.S4
	MOVD $0x80000000, R3 // sign mask
	VDUP R3, V19.S4
	MOVD $0xC0000000, R3 // -2.0
	VDUP R3, V20.S4
	MOVD $0x3FB8AA3B, R3 // log₂(e)
	VDUP R3, V21.S4
	MOVD $0x39218489, R3 // exp32 poly, degree 6 first
	VDUP R3, V22.S4
	MOVD $0x3AAEC3FF, R3
	VDUP R3, V23.S4
	MOVD $0x3C1D955B, R3
	VDUP R3, V24.S4
	MOVD $0x3D635847, R3
	VDUP R3, V25.S4
	MOVD $0x3E75FDF0, R3
	VDUP R3, V26.S4
	MOVD $0x3F317218, R3
	VDUP R3, V27.S4
	MOVD $0x3F800000, R3 // 1.0
	VDUP R3, V28.S4
	MOVD $0x3F000000, R3 // 0.5
	VDUP R3, V29.S4
	MOVD $0x41100000, R3 // 9.0
	VDUP R3, V30.S4
	MOVD $0x0000007F, R3 // exponent bias
	VDUP R3, V31.S4

g_loop:
	VLD1.P 16(R1), [V0.S4]
	FMUL4S(16, 0, 1)               // 0.044715·v
	FMUL4S(0, 1, 1)                // ·v
	FMUL4S(0, 1, 1)                // ·v
	FADD4S(1, 0, 1)                // v + ...
	FMUL4S(17, 1, 1)               // y = c·(...)
	VAND V18.B16, V1.B16, V2.B16   // a = |y|
	VAND V19.B16, V1.B16, V3.B16   // sign(y)
	FCMGE4S(30, 2, 4)              // saturation: a ≥ 9
	FMUL4S(20, 2, 5)               // exp arg = −2a
	FMUL4S(21, 5, 6)               // z = arg·log₂(e)
	FCVTZS4S(6, 2)                 // n = trunc(z)
	SCVTF4S(2, 1)                  // float(n)
	FCMGT4S(6, 1, 7)               // float(n) > z → floor correction
	VADD V7.S4, V2.S4, V2.S4       // n += −1 where set
	SCVTF4S(2, 1)
	FSUB4S(1, 6, 6)                // f = z − float(n), in [0,1)
	VORR V22.B16, V22.B16, V5.B16  // p = c6
	FMUL4S(6, 5, 5)
	FADD4S(23, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(24, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(25, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(26, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(27, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(28, 5, 5)               // p = p·f + 1
	VADD V31.S4, V2.S4, V2.S4      // n + 127
	VSHL $23, V2.S4, V2.S4         // float bits of 2^n
	FMUL4S(2, 5, 5)                // e = p·2^n
	FSUB4S(5, 28, 1)               // 1 − e
	FADD4S(5, 28, 2)               // 1 + e
	FDIV4S(2, 1, 1)                // t = (1−e)/(1+e)
	VAND V28.B16, V4.B16, V6.B16   // 1.0 where saturated
	BIC16B(4, 1, 1)
	VORR V6.B16, V1.B16, V1.B16    // t = 1 on saturated lanes
	VORR V3.B16, V1.B16, V1.B16    // restore sign (t ≥ 0 here)
	FMUL4S(29, 0, 2)               // 0.5·v
	FADD4S(1, 28, 1)               // 1 + t
	FMUL4S(1, 2, 2)                // (0.5·v)·(1+t)
	VST1.P [V2.S4], 16(R0)
	SUBS $1, R2, R2
	BNE  g_loop

g_done:
	RET

// func expRow4NEON(dst, x []float32, scale, max float32) float32
//
// dst[i] = exp32(x[i]·scale − max), four lanes at a time, returning
// the sum of the written values ((l0+l1)+(l2+l3) fold). Transliterates
// scalar exp32 exactly (no FMA); the x < −87 underflow returns exact
// zeros via a compare mask, like the scalar early-out.
TEXT ·expRow4NEON(SB), NOSPLIT, $0-60
	MOVD  dst_base+0(FP), R0
	MOVD  x_base+24(FP), R1
	MOVD  x_len+32(FP), R2
	LSR   $2, R2, R2
	MOVWU scale+48(FP), R3
	VDUP  R3, V16.S4
	MOVWU max+52(FP), R3
	VDUP  R3, V17.S4
	MOVD  $0x3FB8AA3B, R3 // log₂(e)
	VDUP  R3, V21.S4
	MOVD  $0x39218489, R3 // exp32 poly, degree 6 first
	VDUP  R3, V22.S4
	MOVD  $0x3AAEC3FF, R3
	VDUP  R3, V23.S4
	MOVD  $0x3C1D955B, R3
	VDUP  R3, V24.S4
	MOVD  $0x3D635847, R3
	VDUP  R3, V25.S4
	MOVD  $0x3E75FDF0, R3
	VDUP  R3, V26.S4
	MOVD  $0x3F317218, R3
	VDUP  R3, V27.S4
	MOVD  $0x3F800000, R3 // 1.0
	VDUP  R3, V28.S4
	MOVD  $0xC2AE0000, R3 // -87.0, the underflow line
	VDUP  R3, V30.S4
	MOVD  $0x0000007F, R3
	VDUP  R3, V31.S4
	VEOR  V18.B16, V18.B16, V18.B16 // sum accumulator
	CBZ   R2, ex_fold

ex_loop:
	VLD1.P 16(R1), [V0.S4]
	FMUL4S(16, 0, 0)
	FSUB4S(17, 0, 0)          // w = x·scale − max (≤ 0)
	FCMGT4S(0, 30, 4)         // flush: −87 > w
	FMUL4S(21, 0, 6)          // z
	FCVTZS4S(6, 2)            // n = trunc(z)
	SCVTF4S(2, 1)
	FCMGT4S(6, 1, 7)          // float(n) > z
	VADD V7.S4, V2.S4, V2.S4  // floor correction
	SCVTF4S(2, 1)
	FSUB4S(1, 6, 6)           // f
	VORR V22.B16, V22.B16, V5.B16
	FMUL4S(6, 5, 5)
	FADD4S(23, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(24, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(25, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(26, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(27, 5, 5)
	FMUL4S(6, 5, 5)
	FADD4S(28, 5, 5)
	VADD V31.S4, V2.S4, V2.S4
	VSHL $23, V2.S4, V2.S4
	FMUL4S(2, 5, 5)           // e = p·2^n
	BIC16B(4, 5, 5)           // flush underflow lanes to 0
	VST1.P [V5.S4], 16(R0)
	FADD4S(5, 18, 18)
	SUBS $1, R2, R2
	BNE  ex_loop

ex_fold:
	DUPSLANE(1, 18, 1)
	DUPSLANE(2, 18, 2)
	DUPSLANE(3, 18, 3)
	FADDS F1, F18, F18
	FADDS F3, F2, F2
	FADDS F2, F18, F18
	FMOVS F18, ret+56(FP)
	RET

// func axpy4NEON(dst, b []float32, stride int, av []float32)
//
// dst[j] += av[0]·b[j] + av[1]·b[s+j] + av[2]·b[2s+j] + av[3]·b[3s+j]
// along independent j lanes, mul-then-add in ascending row order (no
// FMLA) — bit-identical to the scalar walk. Scalar tail inside.
TEXT ·axpy4NEON(SB), NOSPLIT, $0-80
	MOVD dst_base+0(FP), R0
	MOVD dst_len+8(FP), R1
	MOVD b_base+24(FP), R2
	MOVD stride+48(FP), R3
	MOVD av_base+56(FP), R4
	LSL  $2, R3, R3
	MOVD R2, R5
	ADD  R3, R5, R6
	ADD  R3, R6, R7
	ADD  R3, R7, R8
	FMOVS 0(R4), F20
	VDUP  V20.S[0], V16.S4
	FMOVS 4(R4), F21
	VDUP  V21.S[0], V17.S4
	FMOVS 8(R4), F22
	VDUP  V22.S[0], V18.S4
	FMOVS 12(R4), F23
	VDUP  V23.S[0], V19.S4
	LSR  $2, R1, R9
	CBZ  R9, ax4_tail

ax4_vec:
	VLD1   (R0), [V0.S4]
	VLD1.P 16(R5), [V1.S4]
	FMUL4S(16, 1, 1)
	FADD4S(1, 0, 0)
	VLD1.P 16(R6), [V1.S4]
	FMUL4S(17, 1, 1)
	FADD4S(1, 0, 0)
	VLD1.P 16(R7), [V1.S4]
	FMUL4S(18, 1, 1)
	FADD4S(1, 0, 0)
	VLD1.P 16(R8), [V1.S4]
	FMUL4S(19, 1, 1)
	FADD4S(1, 0, 0)
	VST1.P [V0.S4], 16(R0)
	SUBS $1, R9, R9
	BNE  ax4_vec

ax4_tail:
	AND $3, R1, R9
	CBZ R9, ax4_done

ax4_scalar:
	FMOVS (R0), F0
	FMOVS.P 4(R5), F1
	FMULS F20, F1, F1
	FADDS F1, F0, F0
	FMOVS.P 4(R6), F1
	FMULS F21, F1, F1
	FADDS F1, F0, F0
	FMOVS.P 4(R7), F1
	FMULS F22, F1, F1
	FADDS F1, F0, F0
	FMOVS.P 4(R8), F1
	FMULS F23, F1, F1
	FADDS F1, F0, F0
	FMOVS.P F0, 4(R0)
	SUBS $1, R9, R9
	BNE  ax4_scalar

ax4_done:
	RET

// func axpy1NEON(dst, b []float32, av float32)
//
// dst[j] += av·b[j], no FMLA, scalar tail inside.
TEXT ·axpy1NEON(SB), NOSPLIT, $0-52
	MOVD  dst_base+0(FP), R0
	MOVD  dst_len+8(FP), R1
	MOVD  b_base+24(FP), R2
	FMOVS av+48(FP), F20
	VDUP  V20.S[0], V16.S4
	LSR   $2, R1, R9
	CBZ   R9, ax1_tail

ax1_vec:
	VLD1   (R0), [V0.S4]
	VLD1.P 16(R2), [V1.S4]
	FMUL4S(16, 1, 1)
	FADD4S(1, 0, 0)
	VST1.P [V0.S4], 16(R0)
	SUBS $1, R9, R9
	BNE  ax1_vec

ax1_tail:
	AND $3, R1, R9
	CBZ R9, ax1_done

ax1_scalar:
	FMOVS (R0), F0
	FMOVS.P 4(R2), F1
	FMULS F20, F1, F1
	FADDS F1, F0, F0
	FMOVS.P F0, 4(R0)
	SUBS $1, R9, R9
	BNE  ax1_scalar

ax1_done:
	RET

// func lnSum4NEON(o, x, res []float32) float32
//
// o[j] = x[j] + res[j], returning Σ o[j] with a 4-lane accumulator
// folded (l0+l1)+(l2+l3). len(o) must be a multiple of 4.
TEXT ·lnSum4NEON(SB), NOSPLIT, $0-76
	MOVD o_base+0(FP), R0
	MOVD o_len+8(FP), R1
	MOVD x_base+24(FP), R2
	MOVD res_base+48(FP), R3
	VEOR V0.B16, V0.B16, V0.B16
	LSR  $2, R1, R4
	CBZ  R4, lns_fold

lns_loop:
	VLD1.P 16(R2), [V1.S4]
	VLD1.P 16(R3), [V2.S4]
	FADD4S(2, 1, 1)
	VST1.P [V1.S4], 16(R0)
	FADD4S(1, 0, 0)
	SUBS $1, R4, R4
	BNE  lns_loop

lns_fold:
	DUPSLANE(1, 0, 1)
	DUPSLANE(2, 0, 2)
	DUPSLANE(3, 0, 3)
	FADDS F1, F0, F0
	FADDS F3, F2, F2
	FADDS F2, F0, F0
	FMOVS F0, ret+72(FP)
	RET

// func lnSq4NEON(o []float32, mean float32) float32
//
// Returns Σ (o[j]−mean)², 4-lane accumulator, (l0+l1)+(l2+l3) fold.
// len(o) must be a multiple of 4.
TEXT ·lnSq4NEON(SB), NOSPLIT, $0-36
	MOVD  o_base+0(FP), R0
	MOVD  o_len+8(FP), R1
	MOVWU mean+24(FP), R3
	VDUP  R3, V4.S4
	VEOR  V0.B16, V0.B16, V0.B16
	LSR   $2, R1, R4
	CBZ   R4, lnq_fold

lnq_loop:
	VLD1.P 16(R0), [V1.S4]
	FSUB4S(4, 1, 1)
	FMUL4S(1, 1, 1)
	FADD4S(1, 0, 0)
	SUBS $1, R4, R4
	BNE  lnq_loop

lnq_fold:
	DUPSLANE(1, 0, 1)
	DUPSLANE(2, 0, 2)
	DUPSLANE(3, 0, 3)
	FADDS F1, F0, F0
	FADDS F3, F2, F2
	FADDS F2, F0, F0
	FMOVS F0, ret+32(FP)
	RET

// func lnAffine4NEON(o []float32, mean, inv float32, gamma, beta []float32)
//
// o[j] = ((o[j]−mean)·inv)·gamma[j] + beta[j] — exact scalar order,
// no FMLA. len(o) must be a multiple of 4.
TEXT ·lnAffine4NEON(SB), NOSPLIT, $0-80
	MOVD  o_base+0(FP), R0
	MOVD  o_len+8(FP), R1
	MOVWU mean+24(FP), R3
	VDUP  R3, V4.S4
	MOVWU inv+28(FP), R3
	VDUP  R3, V5.S4
	MOVD  gamma_base+32(FP), R2
	MOVD  beta_base+56(FP), R3
	LSR   $2, R1, R4
	CBZ   R4, lna_done

lna_loop:
	VLD1 (R0), [V0.S4]
	FSUB4S(4, 0, 0)
	FMUL4S(5, 0, 0)
	VLD1.P 16(R2), [V1.S4]
	FMUL4S(1, 0, 0)
	VLD1.P 16(R3), [V1.S4]
	FADD4S(1, 0, 0)
	VST1.P [V0.S4], 16(R0)
	SUBS $1, R4, R4
	BNE  lna_loop

lna_done:
	RET

// func rowMax4NEON(x []float32, scale float32) float32
//
// Returns max_j x[j]·scale (exact — max never reassociates; finite
// inputs). len(x) must be a non-zero multiple of 4.
TEXT ·rowMax4NEON(SB), NOSPLIT, $0-36
	MOVD  x_base+0(FP), R0
	MOVD  x_len+8(FP), R1
	MOVWU scale+24(FP), R3
	VDUP  R3, V4.S4
	VLD1.P 16(R0), [V0.S4]
	FMUL4S(4, 0, 0)
	LSR   $2, R1, R4
	SUB   $1, R4, R4
	CBZ   R4, rm_fold

rm_loop:
	VLD1.P 16(R0), [V1.S4]
	FMUL4S(4, 1, 1)
	FMAX4S(1, 0, 0)
	SUBS $1, R4, R4
	BNE  rm_loop

rm_fold:
	FMAXVS(0, 0)
	FMOVS F0, ret+32(FP)
	RET

// func vscale4NEON(o []float32, inv float32)
//
// o[j] *= inv in place — element-wise, identical IEEE result to the
// scalar loop. len(o) must be a multiple of 4.
TEXT ·vscale4NEON(SB), NOSPLIT, $0-28
	MOVD  o_base+0(FP), R0
	MOVD  o_len+8(FP), R1
	MOVWU inv+24(FP), R3
	VDUP  R3, V4.S4
	LSR   $2, R1, R4
	CBZ   R4, vs_done

vs_loop:
	VLD1 (R0), [V0.S4]
	FMUL4S(4, 0, 0)
	VST1.P [V0.S4], 16(R0)
	SUBS $1, R4, R4
	BNE  vs_loop

vs_done:
	RET
