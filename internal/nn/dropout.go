package nn

// Dropout randomly zeroes a fraction Rate of activations during
// training, scaling the survivors by 1/(1−Rate) (inverted dropout) so
// inference needs no rescaling.
type Dropout struct {
	Rate float64
	rng  *RNG
	mask *Matrix
}

// NewDropout returns a Dropout layer with the given drop rate in [0, 1).
func NewDropout(rate float64, rng *RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: dropout rate must be in [0, 1)")
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward applies the dropout mask when train is true; otherwise it is
// the identity.
func (d *Dropout) Forward(x *Matrix, train bool) *Matrix {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	d.mask = NewMatrix(x.Rows, x.Cols)
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward applies the same mask to the upstream gradient.
func (d *Dropout) Backward(dout *Matrix) *Matrix {
	if d.mask == nil {
		return dout
	}
	dx := dout.Clone()
	dx.MulElemInPlace(d.mask)
	return dx
}

// Params returns nil: Dropout has no trainable parameters.
func (d *Dropout) Params() []*Param { return nil }
