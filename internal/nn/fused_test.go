package nn

import "testing"

// randomMatrix fills a rows×cols matrix from a seeded RNG.
func randomMatrix(rows, cols int, seed int64) *Matrix {
	rng := NewRNG(seed)
	m := NewMatrix(rows, cols)
	rng.NormalInit(m, 1)
	return m
}

func assertSameData(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s diverges at element %d: %v vs %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// TestDenseInferIntoIdentity pins InferInto to Infer bit for bit.
func TestDenseInferIntoIdentity(t *testing.T) {
	rng := NewRNG(5)
	d := NewDense("f", 16, 24, rng)
	for _, rows := range []int{1, 7, 40} {
		x := randomMatrix(rows, 16, int64(rows))
		want := d.Infer(x)
		dst := NewMatrix(rows, 24)
		d.InferInto(dst, x)
		assertSameData(t, dst, want, "Dense.InferInto")
	}
}

// TestGELUInferIntoIdentity covers both the separate-destination and
// the in-place (dst == x) forms.
func TestGELUInferIntoIdentity(t *testing.T) {
	g := NewGELU()
	x := randomMatrix(9, 13, 11)
	want := g.Infer(x)
	dst := NewMatrix(9, 13)
	g.InferInto(dst, x)
	assertSameData(t, dst, want, "GELU.InferInto")
	inPlace := x.Clone()
	g.InferInto(inPlace, inPlace)
	assertSameData(t, inPlace, want, "GELU.InferInto in place")
}

// TestScaledSoftmaxRowsIntoIdentity pins the fused scale+softmax to
// ScaleInPlace followed by SoftmaxRows, including the in-place form
// and zero-width rows.
func TestScaledSoftmaxRowsIntoIdentity(t *testing.T) {
	const scale = 0.35355339059327373 // 1/sqrt(8), an attention-typical value
	for _, shape := range [][2]int{{1, 1}, {6, 6}, {17, 5}, {0, 4}, {3, 0}} {
		x := randomMatrix(shape[0], shape[1], int64(shape[0]*31+shape[1]))
		ref := x.Clone()
		ref.ScaleInPlace(scale)
		want := SoftmaxRows(ref)
		dst := NewMatrix(shape[0], shape[1])
		ScaledSoftmaxRowsInto(dst, x, scale)
		assertSameData(t, dst, want, "ScaledSoftmaxRowsInto")
		inPlace := x.Clone()
		ScaledSoftmaxRowsInto(inPlace, inPlace, scale)
		assertSameData(t, inPlace, want, "ScaledSoftmaxRowsInto in place")
	}
}

// TestLayerNormInferResidualIntoIdentity pins the fused residual+norm
// to AddInPlace followed by Infer.
func TestLayerNormInferResidualIntoIdentity(t *testing.T) {
	ln := NewLayerNorm("f", 12)
	// Perturb gamma/beta so the affine step actually participates.
	rng := NewRNG(17)
	rng.NormalInit(ln.Gamma.W, 0.3)
	rng.NormalInit(ln.Beta.W, 0.3)
	for _, rows := range []int{1, 5, 23} {
		x := randomMatrix(rows, 12, int64(rows)+100)
		res := randomMatrix(rows, 12, int64(rows)+200)
		ref := x.Clone()
		ref.AddInPlace(res)
		want := ln.Infer(ref)
		dst := NewMatrix(rows, 12)
		ln.InferResidualInto(dst, x, res)
		assertSameData(t, dst, want, "LayerNorm.InferResidualInto")
	}
}
