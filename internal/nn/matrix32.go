package nn

import "fmt"

// Matrix32 is a dense row-major matrix of float32 — the working type of
// the reduced-precision inference planes. It never carries trainable
// state: the float64 Matrix stays the single source of truth for
// weights and training activations, and Matrix32 buffers exist only
// inside inference scratch arenas and packed weight mirrors.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 returns a zeroed rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero resets every element to zero.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// ReuseMatrix32 returns m reshaped to rows×cols, reusing its backing
// array when capacity allows — the float32 sibling of ReuseMatrix.
// The returned matrix's contents are unspecified.
func ReuseMatrix32(m *Matrix32, rows, cols int) *Matrix32 {
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		return NewMatrix32(rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
	return m
}

// Downconvert overwrites dst with src rounded to float32. Shapes must
// match; each element is one float64→float32 rounding (round to
// nearest even), the only precision loss on the f32 tier's inputs.
func Downconvert(dst *Matrix32, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("nn: downconvert shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
}

// Upconvert overwrites dst with src widened to float64 (exact).
func Upconvert(dst *Matrix, src *Matrix32) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("nn: upconvert shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] = float64(v)
	}
}

func (m *Matrix32) mustSameShape(o *Matrix32) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("nn: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}
