package nn

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkKernelTiers times the dispatched kernels themselves at each
// supported SIMD level on the pipeline's packed-batch shapes (Dim 24 ×
// FFDim 48, ~900 packed token rows per 64-sentence batch): the
// undiluted per-ISA view behind BENCH_pipeline.json's kernel section.
// Run with `go test ./internal/nn -bench KernelTiers`.
func BenchmarkKernelTiers(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	const rows, in, out = 896, 24, 48
	inPad := (in + i8Group - 1) / i8Group * i8Group
	x := make([]float32, rows*inPad)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	wt := make([]float32, out*inPad)
	for i := range wt {
		wt[i] = float32(rng.NormFloat64() * 0.1)
	}
	dst := make([]float32, rows*out)
	gelu := make([]float32, rows*out)

	defer SetSIMDAuto()
	for _, level := range SupportedSIMDLevels() {
		if err := SetSIMD(level); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("dotRows32/%s", level), func(b *testing.B) {
			b.SetBytes(int64(rows * out * inPad * 4))
			for i := 0; i < b.N; i++ {
				for r := 0; r < rows; r++ {
					dotRows32(dst[r*out:(r+1)*out], x[r*inPad:(r+1)*inPad], wt)
				}
			}
		})
		b.Run(fmt.Sprintf("geluVec/%s", level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				geluVec(gelu, dst)
			}
		})
	}
}
