package nn

// Sequential chains layers so Forward runs them in order and Backward
// in reverse order.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential container from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs every layer in order.
func (s *Sequential) Forward(x *Matrix, train bool) *Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs every layer's Backward in reverse order.
func (s *Sequential) Backward(dout *Matrix) *Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
