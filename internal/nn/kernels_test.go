package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The gelu4 lanes must reproduce the scalar formula exactly: the
// vectorized prefix and the scalar tail land in the same output plane,
// so any lane/scalar divergence would make a value depend on its index
// modulo 4. Exercised across the sign boundary, the ±9 tanh saturation
// cut, zeros, and denormal-small inputs, at every dispatched tier —
// gelu and expRow are the two kernels whose contract is cross-tier bit
// equality (which is why their AVX2 bodies forgo FMA).
func TestGeluVecMatchesScalar(t *testing.T) {
	forEachSIMDLevel(t, testGeluVecMatchesScalar)
}

func testGeluVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := []float32{0, float32(math.Copysign(0, -1)), 1e-30, -1e-30, 8.9, 9.0, 9.1, -8.9, -9.0, -9.1, 100, -100, 0.5, -0.5}
	for len(xs)%4 != 0 {
		xs = append(xs, 0)
	}
	for i := 0; i < 4096; i++ {
		xs = append(xs, float32(rng.NormFloat64()*3))
	}
	got := make([]float32, len(xs))
	n := geluVec(got, xs)
	c := float32(geluC)
	for i, v := range xs {
		want := 0.5 * v * (1 + tanh32(c*(v+0.044715*v*v*v)))
		if i < n && math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("lane %d: gelu(%g) = %g (bits %#08x), scalar %g (bits %#08x)",
				i, v, got[i], math.Float32bits(got[i]), want, math.Float32bits(want))
		}
	}
}

// expRow32's vectorized prefix must reproduce scalar exp32 bit-for-bit
// under the softmax contract (x[i]·scale ≤ max): any lane/scalar
// divergence would make an attention weight depend on its column index
// modulo the vector width. Exercised across ragged tails, the −87
// underflow flush, w = 0 (the max element), and exact-integer z values
// where the trunc-vs-floor correction is live, at every tier.
func TestExpRowMatchesScalar(t *testing.T) {
	forEachSIMDLevel(t, testExpRowMatchesScalar)
}

func testExpRowMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const scale = 0.37
	for _, n := range []int{1, 3, 4, 7, 8, 15, 16, 17, 33, 64} {
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64() * 8)
		}
		if n > 2 {
			x[n/2] = x[0] - 300 // past the −87 flush after scaling
			x[n-1] = 2 / scale  // exact-integer z = w·log₂e edge
		}
		max := x[0] * scale
		for _, v := range x[1:] {
			if sv := v * scale; sv > max {
				max = sv
			}
		}
		got := make([]float32, n)
		covered, sum := expRow32(got, x, scale, max)
		if ActiveSIMD() == SIMDGeneric && covered != 0 {
			t.Fatalf("n=%d: generic tier covered %d elements, want 0", n, covered)
		}
		var wantSum float64
		for i := 0; i < covered; i++ {
			want := exp32(x[i]*scale - max)
			if math.Float32bits(got[i]) != math.Float32bits(want) {
				t.Fatalf("n=%d lane %d: exp(%g) = %g (bits %#08x), scalar %g (bits %#08x)",
					n, i, x[i]*scale-max, got[i], math.Float32bits(got[i]), want, math.Float32bits(want))
			}
			wantSum += float64(want)
		}
		if covered > 0 {
			if diff := math.Abs(float64(sum) - wantSum); diff > 1e-5*math.Max(1, wantSum) {
				t.Fatalf("n=%d: prefix sum %g, scalar %g", n, sum, wantSum)
			}
		}
	}
}

// quantRow must return q within half a quantization step of x/scale,
// zero the padding tail, and map a zero row to scale 0 with all-zero
// q — at every dispatched tier.
func TestQuantRowProperties(t *testing.T) {
	forEachSIMDLevel(t, testQuantRowProperties)
}

func testQuantRowProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 4, 7, 8, 15, 16, 17, 24, 45} {
		inPad := (n + i8Group - 1) / i8Group * i8Group
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		q := make([]int16, inPad)
		for i := range q {
			q[i] = -1 // must be overwritten (pad included)
		}
		sx := quantRow(q, x)
		if sx <= 0 {
			t.Fatalf("n=%d: scale %g for nonzero row", n, sx)
		}
		for i, v := range x {
			diff := math.Abs(float64(v) - float64(q[i])*float64(sx))
			// Half a step plus float32 rounding proportional to |v|:
			// the v·inv product, the reference's +0.5, and the
			// inv-vs-sx reciprocal mismatch each contribute O(|v|·ulp).
			if diff > float64(sx)*0.5+math.Abs(float64(v))*4e-7 {
				t.Fatalf("n=%d q[%d]=%d: |%g - %g| = %g > sx/2 = %g", n, i, q[i], v, float64(q[i])*float64(sx), diff, sx/2)
			}
		}
		for i := n; i < inPad; i++ {
			if q[i] != 0 {
				t.Fatalf("n=%d: padding q[%d] = %d, want 0", n, i, q[i])
			}
		}
		for i := range x {
			x[i] = 0
		}
		if sx := quantRow(q, x); sx != 0 {
			t.Fatalf("n=%d: zero row scale %g", n, sx)
		}
		for i, v := range q {
			if v != 0 {
				t.Fatalf("n=%d: zero row q[%d] = %d", n, i, v)
			}
		}
	}
}

// A row must compute identical bits whether it runs through the 4-row
// blocked kernel or the single-row one: shard boundaries move with the
// worker count, and the i8 tier stays deterministic only if blocking
// never changes a row's result. Checked at every dispatched tier.
func TestI8Rows4MatchesSingleRow(t *testing.T) {
	forEachSIMDLevel(t, testI8Rows4MatchesSingleRow)
}

func testI8Rows4MatchesSingleRow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []struct{ in, out int }{{16, 3}, {32, 8}, {48, 24}, {5, 7}} {
		inPad := (shape.in + i8Group - 1) / i8Group * i8Group
		nb := inPad / i8Group
		wt := make([]int8, shape.out*inPad)
		scale := make([]float32, shape.out*nb)
		b := make([]float32, shape.out)
		for o := 0; o < shape.out; o++ {
			for j := 0; j < shape.in; j++ {
				wt[o*inPad+j] = int8(rng.Intn(255) - 127)
			}
			for g := 0; g < nb; g++ {
				scale[o*nb+g] = float32(rng.Float64() * 0.01)
			}
			b[o] = float32(rng.NormFloat64())
		}
		q := make([]int16, 4*inPad)
		sx := make([]float32, 4)
		for r := 0; r < 4; r++ {
			for j := 0; j < shape.in; j++ {
				q[r*inPad+j] = int16(rng.Intn(65535) - 32767)
			}
			sx[r] = float32(rng.Float64() * 1e-4)
		}
		blocked := make([]float32, 4*shape.out)
		single := make([]float32, 4*shape.out)
		i8Rows4(blocked, q, sx, wt, scale, b, shape.out, inPad, shape.out)
		for r := 0; r < 4; r++ {
			i8Rows(single[r*shape.out:(r+1)*shape.out], q[r*inPad:(r+1)*inPad], wt, scale, b, sx[r])
		}
		for i := range blocked {
			if math.Float32bits(blocked[i]) != math.Float32bits(single[i]) {
				t.Fatalf("in=%d out=%d: element %d blocked %g vs single %g", shape.in, shape.out, i, blocked[i], single[i])
			}
		}
	}
}
