package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The gelu4 lanes must reproduce the scalar formula exactly: the
// vectorized prefix and the scalar tail land in the same output plane,
// so any lane/scalar divergence would make a value depend on its index
// modulo 4. Exercised across the sign boundary, the ±9 tanh saturation
// cut, zeros, and denormal-small inputs.
func TestGeluVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := []float32{0, float32(math.Copysign(0, -1)), 1e-30, -1e-30, 8.9, 9.0, 9.1, -8.9, -9.0, -9.1, 100, -100, 0.5, -0.5}
	for len(xs)%4 != 0 {
		xs = append(xs, 0)
	}
	for i := 0; i < 4096; i++ {
		xs = append(xs, float32(rng.NormFloat64()*3))
	}
	got := make([]float32, len(xs))
	n := geluVec(got, xs)
	c := float32(geluC)
	for i, v := range xs {
		want := 0.5 * v * (1 + tanh32(c*(v+0.044715*v*v*v)))
		if i < n && math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("lane %d: gelu(%g) = %g (bits %#08x), scalar %g (bits %#08x)",
				i, v, got[i], math.Float32bits(got[i]), want, math.Float32bits(want))
		}
	}
}

// quantRow must return q within half a quantization step of x/scale,
// zero the padding tail, and map a zero row to scale 0 with all-zero q.
func TestQuantRowProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 4, 7, 8, 15, 16, 17, 24, 45} {
		inPad := (n + i8Group - 1) / i8Group * i8Group
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		q := make([]int16, inPad)
		for i := range q {
			q[i] = -1 // must be overwritten (pad included)
		}
		sx := quantRow(q, x)
		if sx <= 0 {
			t.Fatalf("n=%d: scale %g for nonzero row", n, sx)
		}
		for i, v := range x {
			diff := math.Abs(float64(v) - float64(q[i])*float64(sx))
			if diff > float64(sx)*0.5000001 {
				t.Fatalf("n=%d q[%d]=%d: |%g - %g| = %g > sx/2 = %g", n, i, q[i], v, float64(q[i])*float64(sx), diff, sx/2)
			}
		}
		for i := n; i < inPad; i++ {
			if q[i] != 0 {
				t.Fatalf("n=%d: padding q[%d] = %d, want 0", n, i, q[i])
			}
		}
		for i := range x {
			x[i] = 0
		}
		if sx := quantRow(q, x); sx != 0 {
			t.Fatalf("n=%d: zero row scale %g", n, sx)
		}
		for i, v := range q {
			if v != 0 {
				t.Fatalf("n=%d: zero row q[%d] = %d", n, i, v)
			}
		}
	}
}

// A row must compute identical bits whether it runs through the 4-row
// blocked kernel or the single-row one: shard boundaries move with the
// worker count, and the i8 tier stays deterministic only if blocking
// never changes a row's result.
func TestI8Rows4MatchesSingleRow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []struct{ in, out int }{{16, 3}, {32, 8}, {48, 24}, {5, 7}} {
		inPad := (shape.in + i8Group - 1) / i8Group * i8Group
		nb := inPad / i8Group
		wt := make([]int8, shape.out*inPad)
		scale := make([]float32, shape.out*nb)
		b := make([]float32, shape.out)
		for o := 0; o < shape.out; o++ {
			for j := 0; j < shape.in; j++ {
				wt[o*inPad+j] = int8(rng.Intn(255) - 127)
			}
			for g := 0; g < nb; g++ {
				scale[o*nb+g] = float32(rng.Float64() * 0.01)
			}
			b[o] = float32(rng.NormFloat64())
		}
		q := make([]int16, 4*inPad)
		sx := make([]float32, 4)
		for r := 0; r < 4; r++ {
			for j := 0; j < shape.in; j++ {
				q[r*inPad+j] = int16(rng.Intn(65535) - 32767)
			}
			sx[r] = float32(rng.Float64() * 1e-4)
		}
		blocked := make([]float32, 4*shape.out)
		single := make([]float32, 4*shape.out)
		i8Rows4(blocked, q, sx, wt, scale, b, shape.out, inPad)
		for r := 0; r < 4; r++ {
			i8Rows(single[r*shape.out:(r+1)*shape.out], q[r*inPad:(r+1)*inPad], wt, scale, b, sx[r])
		}
		for i := range blocked {
			if math.Float32bits(blocked[i]) != math.Float32bits(single[i]) {
				t.Fatalf("in=%d out=%d: element %d blocked %g vs single %g", shape.in, shape.out, i, blocked[i], single[i])
			}
		}
	}
}
