package nn

import "math"

// Optimizer updates registered parameters from their accumulated
// gradients and clears the gradients afterwards.
type Optimizer interface {
	// Step applies one update using the gradients currently accumulated
	// in each parameter, then zeroes them.
	Step()
	// Register adds parameters to the optimizer's working set.
	Register(params ...*Param)
}

// SGD is plain stochastic gradient descent with optional L2 weight
// decay.
type SGD struct {
	LR          float64
	WeightDecay float64
	params      []*Param
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Register adds parameters to the optimizer.
func (s *SGD) Register(params ...*Param) { s.params = append(s.params, params...) }

// Step applies w ← w − lr·(g + wd·w) and clears gradients.
func (s *SGD) Step() {
	for _, p := range s.params {
		for i := range p.W.Data {
			g := p.G.Data[i] + s.WeightDecay*p.W.Data[i]
			p.W.Data[i] -= s.LR * g
		}
		p.Bump()
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, 2014), the optimizer
// the paper uses for both the Phrase Embedder (lr 0.001) and the Entity
// Classifier (lr 0.0015). WeightDecay applies decoupled L2 decay as the
// paper lists weight decay among its regularizers.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	params []*Param
	m      map[*Param]*Matrix
	v      map[*Param]*Matrix
	t      int
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Param]*Matrix),
		v:     make(map[*Param]*Matrix),
	}
}

// Register adds parameters to the optimizer and allocates their moment
// buffers.
func (a *Adam) Register(params ...*Param) {
	for _, p := range params {
		if _, ok := a.m[p]; ok {
			continue
		}
		a.params = append(a.params, p)
		a.m[p] = NewMatrix(p.W.Rows, p.W.Cols)
		a.v[p] = NewMatrix(p.W.Rows, p.W.Cols)
	}
}

// Step applies one bias-corrected Adam update and clears gradients.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range a.params {
		m, v := a.m[p], a.v[p]
		for i := range p.W.Data {
			g := p.G.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			upd := mhat / (math.Sqrt(vhat) + a.Eps)
			if a.WeightDecay != 0 {
				upd += a.WeightDecay * p.W.Data[i]
			}
			p.W.Data[i] -= a.LR * upd
		}
		p.Bump()
		p.ZeroGrad()
	}
}
