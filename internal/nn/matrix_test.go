package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("At returned wrong values: %v", m.Data)
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set did not update value")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	assertMatrixEqual(t, got, want, 0)
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(1)
	a, b := NewMatrix(4, 5), NewMatrix(3, 5)
	rng.NormalInit(a, 1)
	rng.NormalInit(b, 1)
	got := MatMulT(a, b)
	want := MatMul(a, b.Transpose())
	assertMatrixEqual(t, got, want, 1e-12)
}

func TestTMatMulMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a, b := NewMatrix(4, 5), NewMatrix(4, 3)
	rng.NormalInit(a, 1)
	rng.NormalInit(b, 1)
	got := TMatMul(a, b)
	want := MatMul(a.Transpose(), b)
	assertMatrixEqual(t, got, want, 1e-12)
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(3)
	m := NewMatrix(5, 7)
	rng.NormalInit(m, 1)
	assertMatrixEqual(t, m.Transpose().Transpose(), m, 0)
}

func TestAddSubScaleInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	a.AddInPlace(b)
	assertMatrixEqual(t, a, FromRows([][]float64{{11, 22}, {33, 44}}), 0)
	a.SubInPlace(b)
	assertMatrixEqual(t, a, FromRows([][]float64{{1, 2}, {3, 4}}), 0)
	a.ScaleInPlace(2)
	assertMatrixEqual(t, a, FromRows([][]float64{{2, 4}, {6, 8}}), 0)
}

func TestSumRowsAndAddRowVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	sums := m.SumRows()
	if sums[0] != 5 || sums[1] != 7 || sums[2] != 9 {
		t.Fatalf("SumRows = %v", sums)
	}
	m.AddRowVecInPlace([]float64{1, 1, 1})
	if m.At(0, 0) != 2 || m.At(1, 2) != 7 {
		t.Fatalf("AddRowVecInPlace result = %v", m.Data)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestMaxAbsAndNorm(t *testing.T) {
	m := FromRows([][]float64{{-3, 4}})
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.Norm()-5) > 1e-12 {
		t.Fatalf("Norm = %v, want 5", m.Norm())
	}
}

// Property: matmul distributes over addition, (A+B)·C = A·C + B·C.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := NewRNG(7)
	f := func(seed uint8) bool {
		r := NewRNG(int64(seed))
		a, b, c := NewMatrix(3, 4), NewMatrix(3, 4), NewMatrix(4, 2)
		r.NormalInit(a, 1)
		r.NormalInit(b, 1)
		r.NormalInit(c, 1)
		sum := a.Clone()
		sum.AddInPlace(b)
		left := MatMul(sum, c)
		right := MatMul(a, c)
		right.AddInPlace(MatMul(b, c))
		left.SubInPlace(right)
		return left.MaxAbs() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng.r}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := NewRNG(int64(seed) + 100)
		a, b := NewMatrix(3, 5), NewMatrix(5, 2)
		r.NormalInit(a, 1)
		r.NormalInit(b, 1)
		left := MatMul(a, b).Transpose()
		right := MatMul(b.Transpose(), a.Transpose())
		left.SubInPlace(right)
		return left.MaxAbs() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func assertMatrixEqual(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape mismatch: got %dx%d want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol {
			t.Fatalf("element %d: got %v want %v", i, got.Data[i], want.Data[i])
		}
	}
}
