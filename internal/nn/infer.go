package nn

import "math"

// Inference path. Layer.Forward caches activations for backprop even
// with train=false (Dense stores its input, LayerNorm its normalized
// rows, and so on), so a shared model cannot run Forward from several
// goroutines at once. Infer is the concurrency-safe sibling: it
// computes the identical output while writing no layer state, which is
// what lets the pipeline shard per-tweet forwards across a worker pool
// over one set of weights.
//
// The contract: for every layer, Infer(x) returns the same values as
// Forward(x, false); Backward after Infer is invalid (there is nothing
// cached to differentiate).

// Inferer is a layer with a cache-free, concurrency-safe forward pass.
// All layers in this package implement it.
type Inferer interface {
	Infer(x *Matrix) *Matrix
}

// Infer computes x·W + b without caching the input for backprop.
func (d *Dense) Infer(x *Matrix) *Matrix {
	out := MatMul(x, d.W.W)
	out.AddRowVecInPlace(d.B.W.Data)
	return out
}

// Infer clamps negative inputs to zero without recording the mask.
func (r *ReLU) Infer(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Infer applies tanh element-wise without caching the output.
func (t *Tanh) Infer(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// Infer applies the tanh-approximated GELU without caching the input.
func (g *GELU) Infer(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
	}
	return out
}

// Infer is the identity: dropout only acts during training.
func (d *Dropout) Infer(x *Matrix) *Matrix { return x }

// Infer normalizes each row and applies the affine transform without
// caching normalization state.
func (ln *LayerNorm) Infer(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	n := float64(x.Cols)
	gamma := ln.Gamma.W.Data
	beta := ln.Beta.W.Data
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= n
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+ln.Eps)
		o := out.Row(i)
		for j, v := range row {
			o[j] = (v-mean)*inv*gamma[j] + beta[j]
		}
	}
	return out
}

// Infer normalizes with the running statistics (the !train branch of
// Forward) without touching the cached training state.
func (bn *BatchNorm) Infer(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		o := out.Row(i)
		for j, v := range row {
			h := (v - bn.RunningMean[j]) / math.Sqrt(bn.RunningVar[j]+bn.Eps)
			o[j] = h*bn.Gamma.W.Data[j] + bn.Beta.W.Data[j]
		}
	}
	return out
}

// Infer runs every layer's Infer in order. All layers of a Sequential
// must implement Inferer (every layer in this package does).
func (s *Sequential) Infer(x *Matrix) *Matrix {
	for _, l := range s.Layers {
		x = l.(Inferer).Infer(x)
	}
	return x
}
