package nn

import (
	"math"
	"sync/atomic"
)

// Param is a trainable tensor together with its gradient accumulator.
// Layers expose their Params so a single optimizer can update an entire
// model; gradients accumulate across Backward calls until the optimizer
// consumes and clears them.
type Param struct {
	// Name identifies the parameter for debugging and checkpoint I/O.
	Name string
	// W holds the weights.
	W *Matrix
	// G holds the accumulated gradient, always the same shape as W.
	G *Matrix

	// version counts mutations of W. The packed reduced-precision
	// inference mirrors (pack.go) record the version they were built
	// from and rebuild lazily when it moves, so a mirror can never
	// serve stale weights. The optimizers and checkpoint loading bump
	// it automatically; code that writes W.Data directly must call
	// Bump afterwards.
	version atomic.Uint64
}

// Bump records that W has been mutated, invalidating any packed
// inference mirrors derived from it.
func (p *Param) Bump() { p.version.Add(1) }

// Version returns the current mutation counter of W.
func (p *Param) Version() uint64 { return p.version.Load() }

// NewParam allocates a named parameter of the given shape with a zeroed
// gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: NewMatrix(rows, cols), G: NewMatrix(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is a differentiable module operating on batches: one row per
// example (or per token for sequence models).
//
// The contract is strict single-use: Backward must be called with the
// upstream gradient of the most recent Forward, because layers cache
// forward activations. Params returns the trainable parameters so they
// can be registered with an optimizer; gradient accumulation into
// Param.G happens during Backward.
type Layer interface {
	Forward(x *Matrix, train bool) *Matrix
	Backward(dout *Matrix) *Matrix
	Params() []*Param
}

// ZeroGrads clears the gradients of every parameter in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGrads scales all gradients down so that their global L2 norm does
// not exceed maxNorm. It returns the pre-clip norm.
func ClipGrads(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.G.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, p := range params {
			p.G.ScaleInPlace(s)
		}
	}
	return norm
}
