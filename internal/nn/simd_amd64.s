//go:build amd64

#include "textflag.h"

// 32767.0 in float32 — the symmetric int16 activation range.
DATA qconst<>+0(SB)/4, $0x46fffe00
GLOBL qconst<>(SB), RODATA|NOPTR, $4

// func dotRows32SSE2(dst, a, rows []float32)
//
// dst[j] = Σ_k a[k]·rows[j·len(a)+k]. Two four-lane accumulators per
// row (X0 lanes carry k≡0..3 (mod 8), X1 lanes k≡4..7), a possible
// lone 4-block, then scalar tail into X0's low lane, and a horizontal
// reduction pairing (l0+l1)+(l2+l3). Pure SSE2.
TEXT ·dotRows32SSE2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ rows_base+48(FP), R8
	TESTQ DX, DX
	JZ   drdone

drouter:
	XORPS X0, X0
	XORPS X1, X1
	MOVQ  SI, R10 // a cursor
	MOVQ  R8, R11 // weight-row cursor
	MOVQ  CX, R9
	SHRQ  $3, R9  // 8-wide blocks
	JZ    drtail4

drloop8:
	MOVUPS (R10), X2
	MOVUPS (R11), X3
	MULPS  X3, X2
	ADDPS  X2, X0
	MOVUPS 16(R10), X4
	MOVUPS 16(R11), X5
	MULPS  X5, X4
	ADDPS  X4, X1
	ADDQ   $32, R10
	ADDQ   $32, R11
	DECQ   R9
	JNZ    drloop8

drtail4:
	MOVQ  CX, R9
	ANDQ  $7, R9
	SHRQ  $2, R9
	JZ    drcomb
	MOVUPS (R10), X2
	MOVUPS (R11), X3
	MULPS  X3, X2
	ADDPS  X2, X0
	ADDQ   $16, R10
	ADDQ   $16, R11

drcomb:
	ADDPS X1, X0
	MOVQ  CX, R9
	ANDQ  $3, R9
	JZ    drhsum

drtail1:
	MOVSS (R10), X2
	MULSS (R11), X2
	ADDSS X2, X0
	ADDQ  $4, R10
	ADDQ  $4, R11
	DECQ  R9
	JNZ   drtail1

drhsum:
	PSHUFD $0x01, X0, X2
	PSHUFD $0x02, X0, X3
	PSHUFD $0x03, X0, X4
	ADDSS  X2, X0
	ADDSS  X4, X3
	ADDSS  X3, X0
	MOVSS  X0, (DI)
	ADDQ   $4, DI
	LEAQ   (R8)(CX*4), R8 // next weight row
	DECQ   DX
	JNZ    drouter

drdone:
	RET

// func quantRowSSE2(q []int16, x []float32) float32
//
// Symmetric int16 quantization of one activation row: maxabs scan
// (packed |x| via an 0x7fffffff mask and MAXPS), then q = round(x ·
// 32767/maxabs) with CVTPS2DQ's round-to-nearest and a saturating
// PACKSSDW pack, the q[len(x):] padding tail zeroed, and maxabs/32767
// returned as the row's dequantization scale. A zero row zeroes q and
// returns 0. Rounding is round-half-even here vs the portable
// fallback's half-away — within the ±½-step bound either way, and
// cross-architecture bit equality is explicitly not the contract.
TEXT ·quantRowSSE2(SB), NOSPLIT, $0-52
	MOVQ q_base+0(FP), DI
	MOVQ q_len+8(FP), DX  // padded length
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX // real length
	PCMPEQL X7, X7
	PSRLL   $1, X7        // 0x7fffffff lanes
	XORPS   X0, X0        // maxabs accumulator
	MOVQ    SI, R10
	MOVQ    CX, R9
	SHRQ    $2, R9
	JZ      qmtail

qmloop:
	MOVUPS (R10), X1
	ANDPS  X7, X1
	MAXPS  X1, X0
	ADDQ   $16, R10
	DECQ   R9
	JNZ    qmloop

qmtail:
	MOVQ CX, R9
	ANDQ $3, R9
	JZ   qmhmax

qmtail1:
	MOVSS (R10), X1
	ANDPS X7, X1
	MAXSS X1, X0
	ADDQ  $4, R10
	DECQ  R9
	JNZ   qmtail1

qmhmax:
	PSHUFD $0x4E, X0, X1
	MAXPS  X1, X0
	PSHUFD $0x55, X0, X1
	MAXSS  X1, X0 // low lane = maxabs
	XORPS  X2, X2
	UCOMISS X2, X0
	JNE    qscale
	// zero row: clear the whole padded q, return scale 0
	MOVQ DX, R9
	SHRQ $3, R9 // len(q) is a whole number of 16-wide groups

qzero:
	MOVOU X2, (DI)
	ADDQ  $16, DI
	DECQ  R9
	JNZ   qzero
	MOVSS X2, ret+48(FP)
	RET

qscale:
	MOVSS  qconst<>+0(SB), X3
	DIVSS  X0, X3    // inv = 32767/maxabs
	SHUFPS $0, X3, X3
	MOVQ   SI, R10
	MOVQ   CX, R9
	SHRQ   $3, R9
	JZ     qtail4

q8:
	MOVUPS (R10), X1
	MULPS  X3, X1
	CVTPS2PL X1, X1
	MOVUPS 16(R10), X2
	MULPS  X3, X2
	CVTPS2PL X2, X2
	PACKSSLW X2, X1 // 8 saturated int16
	MOVOU  X1, (DI)
	ADDQ   $32, R10
	ADDQ   $16, DI
	DECQ   R9
	JNZ    q8

qtail4:
	MOVQ CX, R9
	ANDQ $7, R9
	JZ   qpad

qtail1:
	MOVSS (R10), X1
	MULSS X3, X1
	CVTSS2SL X1, AX
	CMPL  AX, $32767
	JLE   qclamplo
	MOVL  $32767, AX

qclamplo:
	CMPL AX, $-32768
	JGE  qstore
	MOVL $-32768, AX

qstore:
	MOVW AX, (DI)
	ADDQ $4, R10
	ADDQ $2, DI
	DECQ R9
	JNZ  qtail1

qpad:
	MOVQ DX, R9
	SUBQ CX, R9
	JZ   qret
	XORL AX, AX

qpadloop:
	MOVW AX, (DI)
	ADDQ $2, DI
	DECQ R9
	JNZ  qpadloop

qret:
	DIVSS qconst<>+0(SB), X0 // sx = maxabs/32767
	MOVSS X0, ret+48(FP)
	RET

// func i8RowsSSE2(dst []float32, q []int16, wt []int8, scale, b []float32, s float32)
//
// One activation row of the W8A16 GEMM. Per 16-wide group: the int8
// weights are widened to int16 (PUNPCK+PSRAW — SSE2 has no PMOVSXBW),
// two PMADDWD blocks produce pairwise int32 sums, and the four lanes
// are converted to float32 (each lane ≤ 4·32767·127 < 2²⁴, so the
// conversion is exact) and multiplied by the group's broadcast weight
// scale into a packed float accumulator. Per output, one horizontal
// reduction (l0+l2)+(l1+l3), then dst[o] = s·Σ + b[o]. The packed
// accumulation order is IDENTICAL to one row of i8Rows4 so a row
// computes the same bits whether it lands in a 4-row block or the
// tail. len(q) must be a multiple of 16 (caller pads).
TEXT ·i8RowsSSE2(SB), NOSPLIT, $0-124
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ q_base+24(FP), SI
	MOVQ q_len+32(FP), CX
	MOVQ wt_base+48(FP), R8
	MOVQ scale_base+72(FP), R12
	MOVQ b_base+96(FP), R13
	MOVSS s+120(FP), X9
	TESTQ DX, DX
	JZ   i8done
	MOVQ CX, AX
	SHRQ $4, AX // group count

i8outer:
	XORPS X8, X8  // packed float accumulator
	MOVQ  SI, R10 // q cursor (reset per output)
	MOVQ  AX, R9

i8group:
	MOVOU (R8), X4 // 16 int8 weights
	MOVO  X4, X5
	PUNPCKLBW X4, X4
	PSRAW $8, X4   // w[0:8] as int16
	PUNPCKHBW X5, X5
	PSRAW $8, X5   // w[8:16] as int16
	MOVSS (R12), X6
	SHUFPS $0, X6, X6 // group scale, broadcast
	MOVOU (R10), X2
	MOVOU 16(R10), X3
	PMADDWL X4, X2
	PMADDWL X5, X3
	PADDD X3, X2
	CVTPL2PS X2, X2
	MULPS X6, X2
	ADDPS X2, X8
	ADDQ  $32, R10
	ADDQ  $16, R8
	ADDQ  $4, R12
	DECQ  R9
	JNZ   i8group

	PSHUFD $0x4E, X8, X7
	ADDPS  X7, X8
	PSHUFD $0x55, X8, X7
	ADDSS  X7, X8
	MULSS  X9, X8   // × activation scale
	ADDSS  (R13), X8 // + bias
	MOVSS  X8, (DI)
	ADDQ   $4, DI
	ADDQ   $4, R13
	DECQ   DX
	JNZ    i8outer

i8done:
	RET

// func i8Rows4SSE2(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad, dstStride int)
//
// Four activation rows of the W8A16 GEMM in one sweep. The win over
// four i8Rows calls is amortization: each group's weight
// sign-extension and scale broadcast happen once and feed four
// PMADDWD pipelines (one packed-float accumulator per row). dst rows
// sit dstStride elements apart (out contiguous outputs each — equal
// to dstStride for a full-width call, smaller for a column tile), q
// is 4×inPad contiguous, sx holds the four activation scales.
// Per-row arithmetic matches i8RowsSSE2 bit for bit.
TEXT ·i8Rows4SSE2(SB), NOSPLIT, $0-168
	MOVQ dst_base+0(FP), DI
	MOVQ q_base+24(FP), SI
	MOVQ wt_base+72(FP), R8
	MOVQ scale_base+96(FP), R12
	MOVQ b_base+120(FP), R13
	MOVQ out+144(FP), DX
	MOVQ inPad+152(FP), AX
	MOVQ AX, BX
	ADDQ BX, BX          // q row stride in bytes
	LEAQ (BX)(BX*2), CX  // 3× stride for row 3
	SHRQ $4, AX          // group count
	MOVQ dstStride+160(FP), R14
	SHLQ $2, R14         // dst row stride in bytes
	LEAQ (R14)(R14*2), R11
	TESTQ DX, DX
	JZ   b4done

b4outer:
	XORPS X8, X8
	XORPS X9, X9
	XORPS X10, X10
	XORPS X11, X11
	MOVQ  SI, R10
	MOVQ  AX, R9

b4group:
	MOVOU (R8), X4
	MOVO  X4, X5
	PUNPCKLBW X4, X4
	PSRAW $8, X4
	PUNPCKHBW X5, X5
	PSRAW $8, X5
	MOVSS (R12), X6
	SHUFPS $0, X6, X6
	// row 0
	MOVOU (R10), X0
	MOVOU 16(R10), X1
	PMADDWL X4, X0
	PMADDWL X5, X1
	PADDD X1, X0
	CVTPL2PS X0, X0
	MULPS X6, X0
	ADDPS X0, X8
	// row 1
	MOVOU (R10)(BX*1), X0
	MOVOU 16(R10)(BX*1), X1
	PMADDWL X4, X0
	PMADDWL X5, X1
	PADDD X1, X0
	CVTPL2PS X0, X0
	MULPS X6, X0
	ADDPS X0, X9
	// row 2
	MOVOU (R10)(BX*2), X0
	MOVOU 16(R10)(BX*2), X1
	PMADDWL X4, X0
	PMADDWL X5, X1
	PADDD X1, X0
	CVTPL2PS X0, X0
	MULPS X6, X0
	ADDPS X0, X10
	// row 3
	MOVOU (R10)(CX*1), X0
	MOVOU 16(R10)(CX*1), X1
	PMADDWL X4, X0
	PMADDWL X5, X1
	PADDD X1, X0
	CVTPL2PS X0, X0
	MULPS X6, X0
	ADDPS X0, X11
	ADDQ  $32, R10
	ADDQ  $16, R8
	ADDQ  $4, R12
	DECQ  R9
	JNZ   b4group

	// reduce, scale, bias, and store the four outputs (dst stride R14)
	MOVQ  sx_base+48(FP), R9
	MOVSS (R13), X6 // b[o], shared across rows
	PSHUFD $0x4E, X8, X7
	ADDPS  X7, X8
	PSHUFD $0x55, X8, X7
	ADDSS  X7, X8
	MULSS  (R9), X8
	ADDSS  X6, X8
	MOVSS  X8, (DI)
	PSHUFD $0x4E, X9, X7
	ADDPS  X7, X9
	PSHUFD $0x55, X9, X7
	ADDSS  X7, X9
	MULSS  4(R9), X9
	ADDSS  X6, X9
	MOVSS  X9, (DI)(R14*1)
	PSHUFD $0x4E, X10, X7
	ADDPS  X7, X10
	PSHUFD $0x55, X10, X7
	ADDSS  X7, X10
	MULSS  8(R9), X10
	ADDSS  X6, X10
	MOVSS  X10, (DI)(R14*2)
	PSHUFD $0x4E, X11, X7
	ADDPS  X7, X11
	PSHUFD $0x55, X11, X7
	ADDSS  X7, X11
	MULSS  12(R9), X11
	ADDSS  X6, X11
	MOVSS  X11, (DI)(R11*1)
	ADDQ   $4, DI
	ADDQ   $4, R13
	DECQ   DX
	JNZ    b4outer

b4done:
	RET

// Broadcast constant table for gelu4 — the float32 bit patterns of the
// exact constants the scalar GELU/tanh32/exp32 path uses, so the
// packed lanes compute the same IEEE single-precision operation
// sequence as the scalar code.
DATA gelu<>+0x00(SB)/8, $0x3d3727133d372713 // 0.044715
DATA gelu<>+0x08(SB)/8, $0x3d3727133d372713
DATA gelu<>+0x10(SB)/8, $0x3f4c422a3f4c422a // √(2/π)
DATA gelu<>+0x18(SB)/8, $0x3f4c422a3f4c422a
DATA gelu<>+0x20(SB)/8, $0x7fffffff7fffffff // |·| mask
DATA gelu<>+0x28(SB)/8, $0x7fffffff7fffffff
DATA gelu<>+0x30(SB)/8, $0x8000000080000000 // sign mask
DATA gelu<>+0x38(SB)/8, $0x8000000080000000
DATA gelu<>+0x40(SB)/8, $0xc0000000c0000000 // -2.0
DATA gelu<>+0x48(SB)/8, $0xc0000000c0000000
DATA gelu<>+0x50(SB)/8, $0x3fb8aa3b3fb8aa3b // log₂(e)
DATA gelu<>+0x58(SB)/8, $0x3fb8aa3b3fb8aa3b
DATA gelu<>+0x60(SB)/8, $0x3921848939218489 // exp32 poly, degree 6 first
DATA gelu<>+0x68(SB)/8, $0x3921848939218489
DATA gelu<>+0x70(SB)/8, $0x3aaec3ff3aaec3ff
DATA gelu<>+0x78(SB)/8, $0x3aaec3ff3aaec3ff
DATA gelu<>+0x80(SB)/8, $0x3c1d955b3c1d955b
DATA gelu<>+0x88(SB)/8, $0x3c1d955b3c1d955b
DATA gelu<>+0x90(SB)/8, $0x3d6358473d635847
DATA gelu<>+0x98(SB)/8, $0x3d6358473d635847
DATA gelu<>+0xa0(SB)/8, $0x3e75fdf03e75fdf0
DATA gelu<>+0xa8(SB)/8, $0x3e75fdf03e75fdf0
DATA gelu<>+0xb0(SB)/8, $0x3f3172183f317218
DATA gelu<>+0xb8(SB)/8, $0x3f3172183f317218
DATA gelu<>+0xc0(SB)/8, $0x3f8000003f800000 // 1.0
DATA gelu<>+0xc8(SB)/8, $0x3f8000003f800000
DATA gelu<>+0xd0(SB)/8, $0x3f0000003f000000 // 0.5
DATA gelu<>+0xd8(SB)/8, $0x3f0000003f000000
DATA gelu<>+0xe0(SB)/8, $0x410fffff410fffff // bits(9.0)−1, for a≥9 as ints
DATA gelu<>+0xe8(SB)/8, $0x410fffff410fffff
DATA gelu<>+0xf0(SB)/8, $0x0000007f0000007f // exponent bias 127
DATA gelu<>+0xf8(SB)/8, $0x0000007f0000007f
GLOBL gelu<>(SB), RODATA|NOPTR, $256

// func gelu4SSE2(dst, x []float32)
//
// Tanh-approximated GELU over four lanes at a time, replicating the
// scalar 0.5·v·(1+tanh32(c·(v+0.044715·v³))) operation-for-operation
// in packed IEEE single arithmetic: exp32's exponent/polynomial split
// runs packed (floor via truncate-and-adjust — the z<n compare maps
// to a signed-int compare of the negated floats, both ≥0 since the
// tanh argument is ≤0), and the |x|≥9 saturation lanes are blended to
// ±1, which also discards the garbage lanes where 2^n under/overflows.
// len(x) must be a multiple of 4; dst may alias x.
TEXT ·gelu4SSE2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), DX
	SHRQ $2, DX
	JZ   gdone

gloop:
	MOVUPS (SI), X0         // v
	MOVUPS gelu<>+0x00(SB), X1
	MULPS  X0, X1
	MULPS  X0, X1
	MULPS  X0, X1           // 0.044715·v³ (left-assoc like the scalar code)
	ADDPS  X0, X1
	MOVUPS gelu<>+0x10(SB), X2
	MULPS  X2, X1           // x = c·(v + 0.044715·v³)
	MOVUPS gelu<>+0x30(SB), X3
	ANDPS  X1, X3           // X3 = sign bits of x
	MOVUPS gelu<>+0x20(SB), X2
	ANDPS  X2, X1           // X1 = a = |x|
	MOVO   X1, X2
	MOVUPS gelu<>+0xe0(SB), X5
	PCMPGTL X5, X2          // X2 = saturation mask (a ≥ 9)
	// e = exp32(-2a)
	MOVUPS gelu<>+0x40(SB), X4
	MULPS  X1, X4           // -2a
	MOVUPS gelu<>+0x50(SB), X5
	MULPS  X5, X4           // z = -2a·log₂e  (≤ 0)
	CVTTPS2PL X4, X5        // n = trunc(z)
	CVTPL2PS X5, X6         // float(n)
	MOVUPS gelu<>+0x30(SB), X1
	MOVO   X4, X7
	XORPS  X1, X7           // -z
	XORPS  X6, X1           // -float(n)
	PCMPGTL X1, X7          // z < float(n) → need floor correction
	PADDL  X7, X5           // n-- where truncation rounded up
	CVTPL2PS X5, X6
	SUBPS  X6, X4           // f = z - n ∈ [0,1)
	MOVUPS gelu<>+0x60(SB), X7
	MOVUPS gelu<>+0x70(SB), X1
	MULPS  X4, X7
	ADDPS  X1, X7
	MOVUPS gelu<>+0x80(SB), X1
	MULPS  X4, X7
	ADDPS  X1, X7
	MOVUPS gelu<>+0x90(SB), X1
	MULPS  X4, X7
	ADDPS  X1, X7
	MOVUPS gelu<>+0xa0(SB), X1
	MULPS  X4, X7
	ADDPS  X1, X7
	MOVUPS gelu<>+0xb0(SB), X1
	MULPS  X4, X7
	ADDPS  X1, X7
	MOVUPS gelu<>+0xc0(SB), X1
	MULPS  X4, X7
	ADDPS  X1, X7           // p ≈ 2^f
	MOVOU  gelu<>+0xf0(SB), X1
	PADDL  X1, X5
	PSLLL  $23, X5          // float bits of 2^n
	MULPS  X5, X7           // e = p·2^n
	// t = (1-e)/(1+e), then restore sign
	MOVUPS gelu<>+0xc0(SB), X1
	MOVO   X1, X4
	SUBPS  X7, X4
	ADDPS  X7, X1
	DIVPS  X1, X4
	XORPS  X3, X4           // t, signed
	// saturated lanes → ±1
	MOVUPS gelu<>+0xc0(SB), X1
	XORPS  X3, X1           // ±1
	PAND   X2, X1
	PANDN  X4, X2
	POR    X1, X2           // t, saturation applied
	// gelu = (0.5·v)·(1+t)
	MOVUPS gelu<>+0xd0(SB), X1
	MULPS  X0, X1
	MOVUPS gelu<>+0xc0(SB), X4
	ADDPS  X2, X4
	MULPS  X4, X1
	MOVUPS X1, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   DX
	JNZ    gloop

gdone:
	RET

// 87.0 in float32 — |w| beyond this, exp32(w) flushes to zero.
DATA expc<>+0x00(SB)/8, $0x42ae000042ae0000
DATA expc<>+0x08(SB)/8, $0x42ae000042ae0000
GLOBL expc<>(SB), RODATA|NOPTR, $16

// func expRow4SSE2(dst, x []float32, scale, max float32) float32
//
// dst[i] = exp32(x[i]·scale − max), four lanes at a time, returning
// the sum of the written values. len(x) must be a multiple of 4 and
// the caller guarantees x[i]·scale ≤ max (softmax: w ≤ 0), so the
// overflow clamp of the scalar exp32 can never fire. Per-element bits
// match scalar exp32 exactly: same trunc-and-correct floor, same
// Horner order, no FMA; the w < −87 underflow flush is applied by
// mask. Only the returned sum's accumulation order is vector-specific.
TEXT ·expRow4SSE2(SB), NOSPLIT, $0-60
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), DX
	MOVSS scale+48(FP), X8
	SHUFPS $0x00, X8, X8
	MOVSS max+52(FP), X9
	SHUFPS $0x00, X9, X9
	XORPS X10, X10          // sum accumulator
	SHRQ $2, DX
	JZ   exdone

exloop:
	MOVUPS (SI), X0
	MULPS  X8, X0           // v·scale
	SUBPS  X9, X0           // w = v·scale − max ≤ 0
	// flush mask: w < −87 ⇔ −w > 87 (positive floats order as ints)
	MOVUPS gelu<>+0x30(SB), X1
	MOVO   X0, X7
	XORPS  X1, X7           // −w
	MOVUPS expc<>+0x00(SB), X2
	PCMPGTL X2, X7          // X7 = flush mask
	// z = w·log₂e, n = floor(z), f = z − n (trunc-and-correct, as exp32)
	MOVUPS gelu<>+0x50(SB), X1
	MULPS  X1, X0           // z (w dead)
	CVTTPS2PL X0, X5        // n = trunc(z)
	CVTPL2PS X5, X6         // float(n)
	MOVUPS gelu<>+0x30(SB), X1
	MOVO   X0, X2
	XORPS  X1, X2           // −z
	MOVO   X6, X3
	XORPS  X1, X3           // −float(n)
	PCMPGTL X3, X2          // z < float(n) → truncation rounded up
	PADDL  X2, X5           // n--
	CVTPL2PS X5, X6
	SUBPS  X6, X0           // f = z − n ∈ [0,1)
	// p ≈ 2^f: exp32's degree-6 Horner, multiply and add kept separate
	MOVUPS gelu<>+0x60(SB), X1
	MULPS  X0, X1
	MOVUPS gelu<>+0x70(SB), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS gelu<>+0x80(SB), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS gelu<>+0x90(SB), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS gelu<>+0xa0(SB), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS gelu<>+0xb0(SB), X2
	ADDPS  X2, X1
	MULPS  X0, X1
	MOVUPS gelu<>+0xc0(SB), X2
	ADDPS  X2, X1           // p
	MOVOU  gelu<>+0xf0(SB), X2
	PADDL  X2, X5
	PSLLL  $23, X5          // float bits of 2^n
	MULPS  X5, X1           // e = p·2^n
	PANDN  X1, X7           // flush: ^mask & e
	MOVUPS X7, (DI)
	ADDPS  X7, X10
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   DX
	JNZ    exloop

exdone:
	// fixed-order fold: (l0+l2)+(l1+l3)
	PSHUFD $0x4E, X10, X1
	ADDPS  X1, X10
	PSHUFD $0x55, X10, X1
	ADDSS  X1, X10
	MOVSS  X10, ret+56(FP)
	RET

// func axpy4SSE2(dst, b []float32, stride int, av []float32)
//
// dst[j] += av[0]·b[j] + av[1]·b[stride+j] + av[2]·b[2s+j] +
// av[3]·b[3s+j]. Vectorized along the independent j lanes with
// mul-then-add in ascending row order — the exact scalar operation
// sequence per lane, so the bits match the reference walk at every
// tile geometry. Scalar tail inside the kernel (same MULSS/ADDSS
// order, identical IEEE results lane-for-lane).
TEXT ·axpy4SSE2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ b_base+24(FP), SI
	MOVQ stride+48(FP), R8
	SHLQ $2, R8 // stride in bytes
	MOVQ av_base+56(FP), AX
	MOVSS  0(AX), X4
	SHUFPS $0x00, X4, X4
	MOVSS  4(AX), X5
	SHUFPS $0x00, X5, X5
	MOVSS  8(AX), X6
	SHUFPS $0x00, X6, X6
	MOVSS  12(AX), X7
	SHUFPS $0x00, X7, X7
	LEAQ (SI)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-4, DX

ax4vec:
	CMPQ BX, DX
	JGE  ax4tail
	MOVUPS (DI)(BX*4), X0
	MOVUPS (SI)(BX*4), X1
	MULPS  X4, X1
	ADDPS  X1, X0
	MOVUPS (R9)(BX*4), X1
	MULPS  X5, X1
	ADDPS  X1, X0
	MOVUPS (R10)(BX*4), X1
	MULPS  X6, X1
	ADDPS  X1, X0
	MOVUPS (R11)(BX*4), X1
	MULPS  X7, X1
	ADDPS  X1, X0
	MOVUPS X0, (DI)(BX*4)
	ADDQ   $4, BX
	JMP    ax4vec

ax4tail:
	CMPQ BX, CX
	JGE  ax4done
	MOVSS (DI)(BX*4), X0
	MOVSS (SI)(BX*4), X1
	MULSS X4, X1
	ADDSS X1, X0
	MOVSS (R9)(BX*4), X1
	MULSS X5, X1
	ADDSS X1, X0
	MOVSS (R10)(BX*4), X1
	MULSS X6, X1
	ADDSS X1, X0
	MOVSS (R11)(BX*4), X1
	MULSS X7, X1
	ADDSS X1, X0
	MOVSS X0, (DI)(BX*4)
	INCQ  BX
	JMP   ax4tail

ax4done:
	RET

// func axpy1SSE2(dst, b []float32, av float32)
//
// dst[j] += av·b[j] — the k-tail of the saxpy walk. Scalar tail
// inside the kernel.
TEXT ·axpy1SSE2(SB), NOSPLIT, $0-52
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ b_base+24(FP), SI
	MOVSS  av+48(FP), X4
	SHUFPS $0x00, X4, X4
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-4, DX

ax1vec:
	CMPQ BX, DX
	JGE  ax1tail
	MOVUPS (DI)(BX*4), X0
	MOVUPS (SI)(BX*4), X1
	MULPS  X4, X1
	ADDPS  X1, X0
	MOVUPS X0, (DI)(BX*4)
	ADDQ   $4, BX
	JMP    ax1vec

ax1tail:
	CMPQ BX, CX
	JGE  ax1done
	MOVSS (DI)(BX*4), X0
	MOVSS (SI)(BX*4), X1
	MULSS X4, X1
	ADDSS X1, X0
	MOVSS X0, (DI)(BX*4)
	INCQ  BX
	JMP   ax1tail

ax1done:
	RET

// func lnSum4SSE2(o, x, res []float32) float32
//
// o[j] = x[j] + res[j], returning Σ o[j] over the whole slice with a
// 4-lane accumulator folded (l0+l2)+(l1+l3). len(o) must be a
// multiple of 4 (the Go wrapper slices to the aligned prefix).
TEXT ·lnSum4SSE2(SB), NOSPLIT, $0-76
	MOVQ o_base+0(FP), DI
	MOVQ o_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	MOVQ res_base+48(FP), DX
	XORPS X0, X0
	XORQ  BX, BX

lnsloop:
	CMPQ BX, CX
	JGE  lnsfold
	MOVUPS (SI)(BX*4), X1
	MOVUPS (DX)(BX*4), X2
	ADDPS  X2, X1
	MOVUPS X1, (DI)(BX*4)
	ADDPS  X1, X0
	ADDQ   $4, BX
	JMP    lnsloop

lnsfold:
	PSHUFD $0x4E, X0, X1
	ADDPS  X1, X0
	PSHUFD $0x55, X0, X1
	ADDSS  X1, X0
	MOVSS  X0, ret+72(FP)
	RET

// func lnSq4SSE2(o []float32, mean float32) float32
//
// Returns Σ (o[j]−mean)², 4-lane accumulator, (l0+l2)+(l1+l3) fold.
// len(o) must be a multiple of 4.
TEXT ·lnSq4SSE2(SB), NOSPLIT, $0-36
	MOVQ o_base+0(FP), DI
	MOVQ o_len+8(FP), CX
	MOVSS  mean+24(FP), X4
	SHUFPS $0x00, X4, X4
	XORPS X0, X0
	XORQ  BX, BX

lnqloop:
	CMPQ BX, CX
	JGE  lnqfold
	MOVUPS (DI)(BX*4), X1
	SUBPS  X4, X1
	MULPS  X1, X1
	ADDPS  X1, X0
	ADDQ   $4, BX
	JMP    lnqloop

lnqfold:
	PSHUFD $0x4E, X0, X1
	ADDPS  X1, X0
	PSHUFD $0x55, X0, X1
	ADDSS  X1, X0
	MOVSS  X0, ret+32(FP)
	RET

// func lnAffine4SSE2(o []float32, mean, inv float32, gamma, beta []float32)
//
// o[j] = ((o[j]−mean)·inv)·gamma[j] + beta[j] — the exact scalar
// operation order (no FMA), so bits match the reference at every
// tier. len(o) must be a multiple of 4.
TEXT ·lnAffine4SSE2(SB), NOSPLIT, $0-80
	MOVQ o_base+0(FP), DI
	MOVQ o_len+8(FP), CX
	MOVSS  mean+24(FP), X4
	SHUFPS $0x00, X4, X4
	MOVSS  inv+28(FP), X5
	SHUFPS $0x00, X5, X5
	MOVQ gamma_base+32(FP), SI
	MOVQ beta_base+56(FP), DX
	XORQ BX, BX

lnaloop:
	CMPQ BX, CX
	JGE  lnadone
	MOVUPS (DI)(BX*4), X0
	SUBPS  X4, X0
	MULPS  X5, X0
	MOVUPS (SI)(BX*4), X1
	MULPS  X1, X0
	MOVUPS (DX)(BX*4), X1
	ADDPS  X1, X0
	MOVUPS X0, (DI)(BX*4)
	ADDQ   $4, BX
	JMP    lnaloop

lnadone:
	RET

// func rowMax4SSE2(x []float32, scale float32) float32
//
// Returns max_j x[j]·scale. max never reassociates, so the result is
// exact (finite inputs; MAXPS NaN ordering differs from the scalar
// comparison). len(x) must be a non-zero multiple of 4.
TEXT ·rowMax4SSE2(SB), NOSPLIT, $0-36
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVSS  scale+24(FP), X4
	SHUFPS $0x00, X4, X4
	MOVUPS (SI), X0
	MULPS  X4, X0
	MOVQ   $4, BX

rmloop:
	CMPQ BX, CX
	JGE  rmfold
	MOVUPS (SI)(BX*4), X1
	MULPS  X4, X1
	MAXPS  X1, X0
	ADDQ   $4, BX
	JMP    rmloop

rmfold:
	PSHUFD $0x4E, X0, X1
	MAXPS  X1, X0
	PSHUFD $0x55, X0, X1
	MAXSS  X1, X0
	MOVSS  X0, ret+32(FP)
	RET

// func vscale4SSE2(o []float32, inv float32)
//
// o[j] *= inv in place — element-wise, identical IEEE result to the
// scalar loop. len(o) must be a multiple of 4.
TEXT ·vscale4SSE2(SB), NOSPLIT, $0-28
	MOVQ o_base+0(FP), DI
	MOVQ o_len+8(FP), CX
	MOVSS  inv+24(FP), X4
	SHUFPS $0x00, X4, X4
	XORQ BX, BX

vsloop:
	CMPQ BX, CX
	JGE  vsdone
	MOVUPS (DI)(BX*4), X0
	MULPS  X4, X0
	MOVUPS X0, (DI)(BX*4)
	ADDQ   $4, BX
	JMP    vsloop

vsdone:
	RET
