package nn

import "math"

// SoftmaxCrossEntropy computes the mean cross-entropy between row-wise
// softmax(logits) and integer class targets. It returns the loss and
// the gradient w.r.t. the logits (already divided by the batch size).
// A target of -1 masks that row out of the loss (used for padding and
// for subword continuation tokens during fine-tuning).
func SoftmaxCrossEntropy(logits *Matrix, targets []int) (float64, *Matrix) {
	if len(targets) != logits.Rows {
		panic("nn: targets length must equal logit rows")
	}
	dlogits := NewMatrix(logits.Rows, logits.Cols)
	loss := 0.0
	active := 0
	for i := 0; i < logits.Rows; i++ {
		if targets[i] < 0 {
			continue
		}
		active++
	}
	if active == 0 {
		return 0, dlogits
	}
	inv := 1 / float64(active)
	for i := 0; i < logits.Rows; i++ {
		t := targets[i]
		if t < 0 {
			continue
		}
		probs := Softmax(logits.Row(i))
		p := probs[t]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p) * inv
		drow := dlogits.Row(i)
		for j, q := range probs {
			drow[j] = q * inv
		}
		drow[t] -= inv
	}
	return loss, dlogits
}

// CosineDistanceGrad returns the gradients of 1 − cos(a, b) with
// respect to a and b. Near-zero vectors produce zero gradients to keep
// training numerically stable.
func CosineDistanceGrad(a, b []float64) (da, db []float64) {
	da = make([]float64, len(a))
	db = make([]float64, len(b))
	na, nb := L2Norm(a), L2Norm(b)
	if na < 1e-12 || nb < 1e-12 {
		return da, db
	}
	dot := Dot(a, b)
	inv := 1 / (na * nb)
	cos := dot * inv
	for i := range a {
		// ∂cos/∂a_i = b_i/(|a||b|) − cos·a_i/|a|²; distance negates it.
		da[i] = -(b[i]*inv - cos*a[i]/(na*na))
		db[i] = -(a[i]*inv - cos*b[i]/(nb*nb))
	}
	return da, db
}

// TripletCosineLoss implements the paper's triplet objective (eq. 4):
//
//	max(d(a,p) − d(a,n) + margin, 0)
//
// with d the cosine distance. It returns the loss and the gradients for
// the anchor, positive and negative embeddings. The paper sets
// margin = 1 to push negatives towards orthogonality.
func TripletCosineLoss(anchor, pos, neg []float64, margin float64) (loss float64, da, dp, dn []float64) {
	dAP := CosineDistance(anchor, pos)
	dAN := CosineDistance(anchor, neg)
	loss = dAP - dAN + margin
	da = make([]float64, len(anchor))
	dp = make([]float64, len(pos))
	dn = make([]float64, len(neg))
	if loss <= 0 {
		return 0, da, dp, dn
	}
	daP, dpP := CosineDistanceGrad(anchor, pos)
	daN, dnN := CosineDistanceGrad(anchor, neg)
	for i := range da {
		da[i] = daP[i] - daN[i]
	}
	copy(dp, dpP)
	for i := range dn {
		dn[i] = -dnN[i]
	}
	return loss, da, dp, dn
}

// SoftNearestNeighborLoss implements the paper's second contrastive
// objective (eq. 5): the negative log probability of sampling a
// same-class neighbour for each anchor in the batch, with cosine
// distances scaled by the temperature τ:
//
//	−(1/b) Σ_i log( Σ_{j≠i, y_j=y_i} e^{−d_ij/τ} / Σ_{k≠i} e^{−d_ik/τ} )
//
// It returns the mean loss over anchors that have at least one
// same-class neighbour and the gradient for every embedding. labels[i]
// gives the class of embs[i].
func SoftNearestNeighborLoss(embs [][]float64, labels []int, temperature float64) (float64, [][]float64) {
	b := len(embs)
	grads := make([][]float64, b)
	for i := range grads {
		grads[i] = make([]float64, len(embs[i]))
	}
	if b < 2 {
		return 0, grads
	}
	if temperature <= 0 {
		panic("nn: soft-NN temperature must be positive")
	}
	// Precompute pairwise distances and kernel values.
	dist := make([][]float64, b)
	kern := make([][]float64, b)
	for i := 0; i < b; i++ {
		dist[i] = make([]float64, b)
		kern[i] = make([]float64, b)
	}
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			d := CosineDistance(embs[i], embs[j])
			dist[i][j], dist[j][i] = d, d
			k := math.Exp(-d / temperature)
			kern[i][j], kern[j][i] = k, k
		}
	}
	loss := 0.0
	anchors := 0
	// coef[i][j] accumulates ∂L/∂d_ij (for i anchor, j ≠ i).
	coef := make([][]float64, b)
	for i := range coef {
		coef[i] = make([]float64, b)
	}
	for i := 0; i < b; i++ {
		num, den := 0.0, 0.0
		hasPos := false
		for j := 0; j < b; j++ {
			if j == i {
				continue
			}
			den += kern[i][j]
			if labels[j] == labels[i] {
				num += kern[i][j]
				hasPos = true
			}
		}
		if !hasPos || den < 1e-300 || num < 1e-300 {
			continue
		}
		anchors++
		loss -= math.Log(num / den)
		for j := 0; j < b; j++ {
			if j == i {
				continue
			}
			// ∂L_i/∂k_ij = −[pos]/num + 1/den; ∂k/∂d = −k/τ.
			dk := 1 / den
			if labels[j] == labels[i] {
				dk -= 1 / num
			}
			coef[i][j] += dk * (-kern[i][j] / temperature)
		}
	}
	if anchors == 0 {
		return 0, grads
	}
	inv := 1 / float64(anchors)
	loss *= inv
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			if i == j || coef[i][j] == 0 {
				continue
			}
			c := coef[i][j] * inv
			gi, gj := CosineDistanceGrad(embs[i], embs[j])
			AddScaled(grads[i], gi, c)
			AddScaled(grads[j], gj, c)
		}
	}
	return loss, grads
}
