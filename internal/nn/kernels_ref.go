package nn

// Portable reference bodies for the reduced-precision inner loops.
// These compile on every architecture: they are the only tier on
// non-amd64, the SIMDGeneric forcing target on amd64, and the
// differential oracle the cross-ISA equivalence tests compare the
// assembly tiers against. The assembly versions may differ in the
// last float32 ulp (different accumulation widths, FMA contraction,
// and quantizer tie rounding) — the contract is the analytic error
// bound in precision_test.go, not cross-tier bit equality.

// dotRows32Ref computes dst[j] = Σ_k a[k]·rows[j·len(a)+k] for every
// j: one activation row against len(dst) contiguous (transposed)
// weight rows. len(rows) must be at least len(dst)·len(a).
func dotRows32Ref(dst, a, rows []float32) {
	in := len(a)
	for j := range dst {
		r := rows[j*in : j*in+in]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+3 < in; i += 4 {
			s0 += a[i] * r[i]
			s1 += a[i+1] * r[i+1]
			s2 += a[i+2] * r[i+2]
			s3 += a[i+3] * r[i+3]
		}
		for ; i < in; i++ {
			s0 += a[i] * r[i]
		}
		dst[j] = (s0 + s1) + (s2 + s3)
	}
}

// quantRowRef quantizes one activation row to symmetric int16 in q
// (round half away from zero), zeroes the q[len(x):] padding tail,
// and returns the dequantization scale maxabs/32767 (0 for an
// all-zero row).
func quantRowRef(q []int16, x []float32) float32 {
	var maxabs float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > maxabs {
			maxabs = v
		}
	}
	if maxabs == 0 {
		for j := range q {
			q[j] = 0
		}
		return 0
	}
	inv := 32767 / maxabs
	for j, v := range x {
		r := v * inv
		if r >= 0 {
			q[j] = int16(int32(r + 0.5))
		} else {
			q[j] = int16(int32(r - 0.5))
		}
	}
	for j := len(x); j < len(q); j++ {
		q[j] = 0
	}
	return maxabs / 32767
}

// i8RowsRef computes one activation row of the W8A16 GEMM:
// dst[o] = s · Σ_g (Σ_{i∈g} q[i]·wt[o·inPad+i]) · scale[o·nb+g] + b[o],
// with len(q) a whole number of i8Group-wide groups (zero-padded by
// the caller). Each group's integer dot is exact in int32: products
// are ≤ 32767·127 and i8Group of them stay far below 2³¹.
func i8RowsRef(dst []float32, q []int16, wt []int8, scale, b []float32, s float32) {
	in := len(q)
	nb := in / i8Group
	for o := range dst {
		wrow := wt[o*in : o*in+in]
		ws := scale[o*nb : o*nb+nb]
		var acc float32
		for g := 0; g < nb; g++ {
			lo := g * i8Group
			var p0, p1, p2, p3 int32
			for i := lo; i < lo+i8Group; i += 4 {
				p0 += int32(q[i]) * int32(wrow[i])
				p1 += int32(q[i+1]) * int32(wrow[i+1])
				p2 += int32(q[i+2]) * int32(wrow[i+2])
				p3 += int32(q[i+3]) * int32(wrow[i+3])
			}
			acc += float32((p0+p1)+(p2+p3)) * ws[g]
		}
		dst[o] = s*acc + b[o]
	}
}

// i8Rows4Ref is i8RowsRef over four activation rows whose outputs sit
// dstStride apart. The portable body delegates row by row — the
// blocking only pays on architectures where the assembly shares the
// weight sign-extension across rows — so per-row bits trivially match
// the single-row kernel.
func i8Rows4Ref(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad, dstStride int) {
	for r := 0; r < 4; r++ {
		i8RowsRef(dst[r*dstStride:r*dstStride+out], q[r*inPad:(r+1)*inPad], wt, scale, b, sx[r])
	}
}

// quantRowU8Ref quantizes one activation row for the W8A8 GEMM:
// affine uint8 on the row's own [min, max] range, u = round((x −
// xmin)/step) with step = (max − min)/127, so u ∈ [0, 127]. That
// 7-bit ceiling is what keeps the VPMADDUBSW pairing exact: every
// adjacent-pair sum |u·w + u'·w'| ≤ 2·127·127 = 32258 < 2¹⁵, so the
// saturating int16 multiply-add can never actually saturate. Zeroes
// the u[len(x):] padding tail (pad lanes quantize the row minimum to
// 0 contribution via the corr term — see u8RowsRef). A constant row
// (max == min, including all-zero and empty) yields step 0 and
// all-zero u, making the kernel's output exactly xmin·corr + b.
func quantRowU8Ref(u []uint8, x []float32) (xmin, step float32) {
	if len(x) == 0 {
		for j := range u {
			u[j] = 0
		}
		return 0, 0
	}
	xmin, xmax := x[0], x[0]
	for _, v := range x[1:] {
		if v < xmin {
			xmin = v
		}
		if v > xmax {
			xmax = v
		}
	}
	rng := xmax - xmin
	if rng == 0 {
		for j := range u {
			u[j] = 0
		}
		return xmin, 0
	}
	inv := 127 / rng
	for j, v := range x {
		r := (v-xmin)*inv + 0.5
		q := int32(r)
		// Saturate like the assembly's PACKUSWB; float rounding can
		// push the top value a hair past 127, which stays exact in the
		// pairing bound (2·128·127 < 2¹⁵).
		if q > 255 {
			q = 255
		}
		u[j] = uint8(q)
	}
	for j := len(x); j < len(u); j++ {
		u[j] = 0
	}
	return xmin, rng / 127
}

// u8RowsRef computes one activation row of the W8A8 GEMM. With the
// affine activation x̂[i] = xmin + step·u[i] and the group-quantized
// weight ŵ, the dot product decomposes as
//
//	Σ x̂·ŵ = step·Σ_g scale_g·(Σ_{i∈g} u[i]·w[i]) + xmin·Σ_g scale_g·(Σ_{i∈g} w[i])
//
// The second term is activation-independent: pack.go precomputes it
// per output as corr[o]. Each group's Σ u·w accumulates exactly in
// int32 (≤ 16·128·127 < 2²⁴, so the float32 conversion is exact too),
// dequantization multiplies by the group's weight scale and sums in
// float32, and the row finishes as
//
//	dst[o] = step·Σ + xmin·corr[o] + b[o]
//
// Zero padding lanes carry u = 0 and w = 0, contributing zero to both
// terms. len(u) must be a whole number of i8Group-wide groups.
func u8RowsRef(dst []float32, u []uint8, wt []int8, scale, corr, b []float32, xmin, step float32) {
	in := len(u)
	nb := in / i8Group
	for o := range dst {
		wrow := wt[o*in : o*in+in]
		ws := scale[o*nb : o*nb+nb]
		var acc float32
		for g := 0; g < nb; g++ {
			lo := g * i8Group
			var p0, p1, p2, p3 int32
			for i := lo; i < lo+i8Group; i += 4 {
				p0 += int32(u[i]) * int32(wrow[i])
				p1 += int32(u[i+1]) * int32(wrow[i+1])
				p2 += int32(u[i+2]) * int32(wrow[i+2])
				p3 += int32(u[i+3]) * int32(wrow[i+3])
			}
			acc += float32((p0+p1)+(p2+p3)) * ws[g]
		}
		dst[o] = step*acc + xmin*corr[o] + b[o]
	}
}

// u8Rows4Ref is u8RowsRef over four activation rows whose outputs sit
// dstStride apart; aff holds the rows' (xmin, step) pairs. Delegates
// row by row, so per-row bits trivially match the single-row kernel.
func u8Rows4Ref(dst []float32, u []uint8, aff []float32, wt []int8, scale, corr, b []float32, out, inPad, dstStride int) {
	for r := 0; r < 4; r++ {
		u8RowsRef(dst[r*dstStride:r*dstStride+out], u[r*inPad:(r+1)*inPad], wt, scale, corr, b, aff[2*r], aff[2*r+1])
	}
}

// geluVecRef is the reference tier's vectorized-GELU hook; no vector
// body, so the caller's scalar loop covers everything.
func geluVecRef(dst, x []float32) int {
	return 0
}

// expRowRef is the reference tier's softmax-exp hook; covering nothing
// keeps the generic tier's softmax on the historical scalar path.
func expRowRef(dst, x []float32, scale, max float32) (int, float32) {
	return 0, 0
}

// axpy4Ref accumulates four saxpy rows into dst:
// dst[j] += av[0]·b[j] + av[1]·b[stride+j] + av[2]·b[2·stride+j] +
// av[3]·b[3·stride+j], mul-then-add in ascending row order. This IS
// the attention-combine inner loop — the assembly tiers vectorize
// along the independent j lanes with the identical per-j operation
// sequence (no FMA), so every tier produces these exact bits. stride
// is in elements; len(b) must cover 3·stride+len(dst); len(av) ≥ 4.
func axpy4Ref(dst, b []float32, stride int, av []float32) {
	b0 := b
	b1 := b[stride:]
	b2 := b[2*stride:]
	b3 := b[3*stride:]
	av0, av1, av2, av3 := av[0], av[1], av[2], av[3]
	for j := range dst {
		s := dst[j] + av0*b0[j]
		s += av1 * b1[j]
		s += av2 * b2[j]
		s += av3 * b3[j]
		dst[j] = s
	}
}

// axpy1Ref accumulates one saxpy row: dst[j] += av·b[j] (the k-tail of
// the attention combine). Bit-identical across tiers like axpy4Ref.
func axpy1Ref(dst, b []float32, av float32) {
	for j := range dst {
		dst[j] += av * b[j]
	}
}

// lnSumRef is the reference tier's residual-add-and-sum hook; covering
// nothing keeps the generic layer norm on the historical scalar path.
func lnSumRef(o, x, res []float32) (int, float32) {
	return 0, 0
}

// lnSqRef is the reference tier's variance-reduction hook.
func lnSqRef(o []float32, mean float32) (int, float32) {
	return 0, 0
}

// lnAffineRef is the reference tier's normalize-and-affine hook.
func lnAffineRef(o []float32, mean, inv float32, gamma, beta []float32) int {
	return 0
}

// rowMaxRef is the reference tier's softmax row-max hook.
func rowMaxRef(x []float32, scale float32) (int, float32) {
	return 0, 0
}

// vscaleRef is the reference tier's in-place row-scale hook.
func vscaleRef(o []float32, inv float32) int {
	return 0
}
