//go:build amd64

package nn

// SSE2 implementations in simd_amd64.s. SSE2 is part of the amd64
// baseline (GOAMD64=v1), so no runtime feature detection is needed.

// dotRows32 computes dst[j] = Σ_k a[k]·rows[j·len(a)+k] for every j:
// one activation row against len(dst) contiguous (transposed) weight
// rows. len(rows) must be at least len(dst)·len(a).
//
//go:noescape
func dotRows32(dst, a, rows []float32)

// quantRow quantizes one activation row to symmetric int16 in q,
// zeroes the q[len(x):] padding tail, and returns the dequantization
// scale maxabs/32767 (0 for an all-zero row). len(q) must be a whole
// number of i8Group-wide groups and at least len(x).
//
//go:noescape
func quantRow(q []int16, x []float32) float32

// i8Rows computes one activation row of the quantized GEMM:
// dst[o] = s · Σ_g (Σ_{i∈g} q[i]·wt[o·inPad+i]) · scale[o·nb+g] + b[o],
// with len(q) a whole number of i8Group-wide groups (zero-padded by
// the caller).
//
//go:noescape
func i8Rows(dst []float32, q []int16, wt []int8, scale, b []float32, s float32)

// i8Rows4 is i8Rows over four consecutive activation rows: dst is
// 4×out contiguous, q is 4×inPad contiguous, sx holds the four
// activation scales. Weight sign-extension and scale broadcasts are
// shared across the rows; per-row results are bit-identical to
// i8Rows, so row blocking never changes the output.
//
//go:noescape
func i8Rows4(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad int)

// gelu4 applies the tanh-approximated GELU four lanes at a time.
// len(x) must be a multiple of 4; dst may alias x.
//
//go:noescape
func gelu4(dst, x []float32)

// geluVec runs the vectorized GELU over the largest 4-aligned prefix
// and reports how many elements it covered; the caller finishes the
// tail with the scalar formula.
func geluVec(dst, x []float32) int {
	n := len(x) &^ 3
	if n > 0 {
		gelu4(dst[:n], x[:n])
	}
	return n
}
