//go:build amd64

package nn

// amd64 kernel tiers. SSE2 is part of the amd64 baseline (GOAMD64=v1)
// so the SSE2 tier needs no feature detection; the AVX2 tier
// additionally requires FMA and OS-enabled YMM state (cpu_amd64.go).
// Assembly bodies: simd_amd64.s (SSE2), simd_avx2_amd64.s (AVX2/FMA).
//
// Tiers are applied cumulatively by newKernelSet (simd.go): the AVX2
// overlay inherits the SSE2 W8A16 bodies for the entry points it does
// not replace.

var archTiers = []simdTier{
	{level: SIMDSSE2, supported: func() bool { return true }, apply: applySSE2},
	{level: SIMDAVX2, supported: func() bool { return cpuHasAVX2FMA }, apply: applyAVX2},
}

func applySSE2(ks *kernelSet) {
	ks.dot = dotRows32SSE2
	ks.quant = quantRowSSE2
	ks.i8r = i8RowsSSE2
	ks.i8r4 = i8Rows4SSE2
	ks.gelu = geluVecSSE2
	ks.exprow = expRowSSE2
	ks.axpy4 = axpy4SSE2
	ks.axpy1 = axpy1SSE2
	ks.lnSum = lnSumSSE2
	ks.lnSq = lnSqSSE2
	ks.lnAffine = lnAffineSSE2
	ks.rowMax = rowMaxSSE2
	ks.vscale = vscaleSSE2
	// No SSE2 W8A8 assembly: a forced w8a8 mode at this level runs
	// the reference bodies already in ks.
}

func applyAVX2(ks *kernelSet) {
	ks.dot = dotRows32AVX2
	ks.quant = quantRowAVX2
	// The W8A16 kernels stay at the SSE2 bodies (forced w8a16 mode,
	// differential tests) — inherited from the SSE2 overlay.
	ks.gelu = geluVecAVX2
	ks.exprow = expRowAVX2
	ks.quantU8 = quantRowU8AVX2
	ks.u8r = u8RowsAVX2
	ks.u8r4 = u8Rows4AVX2
	ks.axpy4 = axpy4AVX2
	ks.axpy1 = axpy1AVX2
	ks.lnSum = lnSumAVX2
	ks.lnSq = lnSqAVX2
	ks.lnAffine = lnAffineAVX2
	ks.rowMax = rowMaxAVX2
	ks.vscale = vscaleAVX2
}

// dotRows32SSE2 computes dst[j] = Σ_k a[k]·rows[j·len(a)+k] for every
// j: one activation row against len(dst) contiguous (transposed)
// weight rows. len(rows) must be at least len(dst)·len(a).
//
//go:noescape
func dotRows32SSE2(dst, a, rows []float32)

// quantRowSSE2 quantizes one activation row to symmetric int16 in q,
// zeroes the q[len(x):] padding tail, and returns the dequantization
// scale maxabs/32767 (0 for an all-zero row). len(q) must be a whole
// number of i8Group-wide groups and at least len(x).
//
//go:noescape
func quantRowSSE2(q []int16, x []float32) float32

// i8RowsSSE2 computes one activation row of the W8A16 GEMM:
// dst[o] = s · Σ_g (Σ_{i∈g} q[i]·wt[o·inPad+i]) · scale[o·nb+g] + b[o],
// with len(q) a whole number of i8Group-wide groups (zero-padded by
// the caller).
//
//go:noescape
func i8RowsSSE2(dst []float32, q []int16, wt []int8, scale, b []float32, s float32)

// i8Rows4SSE2 is i8RowsSSE2 over four activation rows: dst rows sit
// dstStride apart (out contiguous elements each), q is 4×inPad
// contiguous, sx holds the four activation scales. Weight
// sign-extension and scale broadcasts are shared across the rows;
// per-row results are bit-identical to i8RowsSSE2, so row blocking
// and column tiling never change the output.
//
//go:noescape
func i8Rows4SSE2(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad, dstStride int)

// gelu4SSE2 applies the tanh-approximated GELU four lanes at a time.
// len(x) must be a multiple of 4; dst may alias x.
//
//go:noescape
func gelu4SSE2(dst, x []float32)

// geluVecSSE2 runs the vectorized GELU over the largest 4-aligned
// prefix and reports how many elements it covered; the caller
// finishes the tail with the scalar formula.
func geluVecSSE2(dst, x []float32) int {
	n := len(x) &^ 3
	if n > 0 {
		gelu4SSE2(dst[:n], x[:n])
	}
	return n
}

// expRow4SSE2 computes dst[i] = exp32(x[i]·scale − max) four lanes at
// a time and returns the sum of the written values. len(x) must be a
// multiple of 4 and x[i]·scale ≤ max (the softmax contract: w ≤ 0).
// Per-element bits match scalar exp32 exactly — same trunc-and-correct
// floor, same Horner order, no FMA.
//
//go:noescape
func expRow4SSE2(dst, x []float32, scale, max float32) float32

// expRowSSE2 runs the 4-wide softmax exp over the largest 4-aligned
// prefix; the caller finishes the tail with scalar exp32.
func expRowSSE2(dst, x []float32, scale, max float32) (int, float32) {
	n := len(x) &^ 3
	if n == 0 {
		return 0, 0
	}
	return n, expRow4SSE2(dst[:n], x[:n], scale, max)
}

// axpy4SSE2 accumulates dst[j] += av[0]·b[j] + av[1]·b[stride+j] +
// av[2]·b[2·stride+j] + av[3]·b[3·stride+j] for every j, mul-then-add
// in ascending row order with a scalar tail inside the kernel —
// bit-identical to the scalar 4-wide saxpy walk at every j. stride is
// in elements; len(b) must cover 3·stride+len(dst); len(av) ≥ 4.
//
//go:noescape
func axpy4SSE2(dst, b []float32, stride int, av []float32)

// axpy1SSE2 accumulates dst[j] += av·b[j] (the k-tail of the saxpy
// walk), scalar tail inside the kernel.
//
//go:noescape
func axpy1SSE2(dst, b []float32, av float32)

// lnSum4SSE2 writes o[j] = x[j] + res[j] four lanes at a time and
// returns the sum of the written values (4-lane accumulator folded
// (l0+l2)+(l1+l3)). len(o) must be a multiple of 4.
//
//go:noescape
func lnSum4SSE2(o, x, res []float32) float32

func lnSumSSE2(o, x, res []float32) (int, float32) {
	n := len(o) &^ 3
	if n == 0 {
		return 0, 0
	}
	return n, lnSum4SSE2(o[:n], x[:n], res[:n])
}

// lnSq4SSE2 returns Σ (o[j]−mean)² over o, four lanes at a time.
// len(o) must be a multiple of 4.
//
//go:noescape
func lnSq4SSE2(o []float32, mean float32) float32

func lnSqSSE2(o []float32, mean float32) (int, float32) {
	n := len(o) &^ 3
	if n == 0 {
		return 0, 0
	}
	return n, lnSq4SSE2(o[:n], mean)
}

// lnAffine4SSE2 writes o[j] = ((o[j]−mean)·inv)·gamma[j] + beta[j]
// four lanes at a time — the exact scalar operation order, no FMA, so
// bits match the reference at every tier. len(o) must be a multiple
// of 4; gamma/beta at least as long.
//
//go:noescape
func lnAffine4SSE2(o []float32, mean, inv float32, gamma, beta []float32)

func lnAffineSSE2(o []float32, mean, inv float32, gamma, beta []float32) int {
	n := len(o) &^ 3
	if n > 0 {
		lnAffine4SSE2(o[:n], mean, inv, gamma, beta)
	}
	return n
}

// rowMax4SSE2 returns max_j x[j]·scale, four lanes at a time. len(x)
// must be a non-zero multiple of 4; inputs finite (MAXPS NaN ordering
// is not the scalar comparison's).
//
//go:noescape
func rowMax4SSE2(x []float32, scale float32) float32

func rowMaxSSE2(x []float32, scale float32) (int, float32) {
	n := len(x) &^ 3
	if n == 0 {
		return 0, 0
	}
	return n, rowMax4SSE2(x[:n], scale)
}

// vscale4SSE2 multiplies o by inv in place, four lanes at a time.
// len(o) must be a multiple of 4.
//
//go:noescape
func vscale4SSE2(o []float32, inv float32)

func vscaleSSE2(o []float32, inv float32) int {
	n := len(o) &^ 3
	if n > 0 {
		vscale4SSE2(o[:n], inv)
	}
	return n
}

// dotRows32AVX2 is dotRows32 with two 8-wide FMA accumulators: 16
// elements per iteration, 8/4/scalar tails, VZEROUPPER on exit.
//
//go:noescape
func dotRows32AVX2(dst, a, rows []float32)

// quantRowAVX2 is quantRow with an 8-wide maxabs scan and a 16-wide
// quantize loop (VCVTPS2DQ round-half-even + VPACKSSDW).
//
//go:noescape
func quantRowAVX2(q []int16, x []float32) float32

// gelu8AVX2 applies the tanh-approximated GELU eight lanes at a time,
// replicating the scalar operation sequence exactly (no FMA — the
// contract is bit equality with the scalar formula). len(x) must be a
// multiple of 8; dst may alias x.
//
//go:noescape
func gelu8AVX2(dst, x []float32)

// geluVecAVX2 runs the 8-wide GELU over the largest 8-aligned prefix
// and reports how many elements it covered.
func geluVecAVX2(dst, x []float32) int {
	n := len(x) &^ 7
	if n > 0 {
		gelu8AVX2(dst[:n], x[:n])
	}
	return n
}

// expRow8AVX2 is the eight-lane mirror of expRow4SSE2: deliberately
// FMA-free so its per-element bits match the scalar exp32 (and the
// SSE2 tier) exactly. len(x) must be a multiple of 8.
//
//go:noescape
func expRow8AVX2(dst, x []float32, scale, max float32) float32

// expRowAVX2 runs the 8-wide softmax exp over the largest 8-aligned
// prefix; the caller finishes the tail with scalar exp32.
func expRowAVX2(dst, x []float32, scale, max float32) (int, float32) {
	n := len(x) &^ 7
	if n == 0 {
		return 0, 0
	}
	return n, expRow8AVX2(dst[:n], x[:n], scale, max)
}

// axpy4AVX2 is axpy4SSE2 with 8-wide VMULPS/VADDPS (deliberately no
// FMA — the cross-tier bit-identity contract) and 4-wide + scalar
// tails inside the kernel.
//
//go:noescape
func axpy4AVX2(dst, b []float32, stride int, av []float32)

// axpy1AVX2 is axpy1SSE2, 8-wide, no FMA, tails inside the kernel.
//
//go:noescape
func axpy1AVX2(dst, b []float32, av float32)

// lnSum8AVX2 is lnSum4SSE2 eight lanes at a time (8-lane accumulator,
// high/low fold then the SSE2 pairing). len(o) must be a multiple of 8.
//
//go:noescape
func lnSum8AVX2(o, x, res []float32) float32

func lnSumAVX2(o, x, res []float32) (int, float32) {
	n := len(o) &^ 7
	if n == 0 {
		return 0, 0
	}
	return n, lnSum8AVX2(o[:n], x[:n], res[:n])
}

// lnSq8AVX2 is lnSq4SSE2 eight lanes at a time. len(o) must be a
// multiple of 8.
//
//go:noescape
func lnSq8AVX2(o []float32, mean float32) float32

func lnSqAVX2(o []float32, mean float32) (int, float32) {
	n := len(o) &^ 7
	if n == 0 {
		return 0, 0
	}
	return n, lnSq8AVX2(o[:n], mean)
}

// lnAffine8AVX2 is lnAffine4SSE2 eight lanes at a time, no FMA.
// len(o) must be a multiple of 8.
//
//go:noescape
func lnAffine8AVX2(o []float32, mean, inv float32, gamma, beta []float32)

func lnAffineAVX2(o []float32, mean, inv float32, gamma, beta []float32) int {
	n := len(o) &^ 7
	if n > 0 {
		lnAffine8AVX2(o[:n], mean, inv, gamma, beta)
	}
	return n
}

// rowMax8AVX2 is rowMax4SSE2 eight lanes at a time. len(x) must be a
// non-zero multiple of 8.
//
//go:noescape
func rowMax8AVX2(x []float32, scale float32) float32

func rowMaxAVX2(x []float32, scale float32) (int, float32) {
	n := len(x) &^ 7
	if n == 0 {
		return 0, 0
	}
	return n, rowMax8AVX2(x[:n], scale)
}

// vscale8AVX2 is vscale4SSE2 eight lanes at a time. len(o) must be a
// multiple of 8.
//
//go:noescape
func vscale8AVX2(o []float32, inv float32)

func vscaleAVX2(o []float32, inv float32) int {
	n := len(o) &^ 7
	if n > 0 {
		vscale8AVX2(o[:n], inv)
	}
	return n
}

// quantRowU8AVX2 is the W8A8 activation quantizer: affine uint8 on
// [min, max], u = round((x−xmin)·127/range), padding tail zeroed,
// returning (xmin, step). See quantRowU8Ref for the contract.
//
//go:noescape
func quantRowU8AVX2(u []uint8, x []float32) (xmin, step float32)

// u8RowsAVX2 computes one activation row of the W8A8 GEMM via
// VPMADDUBSW (exact by the u ≤ 128 pairing bound) + VPMADDWD against
// a ones vector for the group-wise int32 sums:
// dst[o] = step·Σ_g scale_g·dot_g + xmin·corr[o] + b[o].
//
//go:noescape
func u8RowsAVX2(dst []float32, u []uint8, wt []int8, scale, corr, b []float32, xmin, step float32)

// u8Rows4AVX2 is u8RowsAVX2 over four activation rows (dst rows
// dstStride apart, aff = 4 × (xmin, step)); weight loads and scale
// broadcasts are shared, per-row bits match u8RowsAVX2 exactly.
//
//go:noescape
func u8Rows4AVX2(dst []float32, u []uint8, aff []float32, wt []int8, scale, corr, b []float32, out, inPad, dstStride int)
