package nn

// NumericGrad estimates ∂f/∂x by central finite differences, mutating
// and restoring x in place. It exists to support gradient-check tests
// of every differentiable module in this repository.
func NumericGrad(f func() float64, x []float64, eps float64) []float64 {
	g := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		fp := f()
		x[i] = orig - eps
		fm := f()
		x[i] = orig
		g[i] = (fp - fm) / (2 * eps)
	}
	return g
}

// MaxGradDiff returns the maximum absolute difference between an
// analytic gradient and a numeric one.
func MaxGradDiff(analytic, numeric []float64) float64 {
	max := 0.0
	for i := range analytic {
		d := analytic[i] - numeric[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
