package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// TestMatMul32IntoCrossTierBitIdentity pins the attention-combine
// contract behind the vectorized saxpy walk: MatMul32Into produces
// identical bits at every kernel tier, worker count, and column-tile
// floor. The tiers vectorize along the independent output columns with
// the scalar mul-then-add order (no FMA) and never split the k walk,
// so — unlike the dot-product GEMMs — the combine is exchangeable
// across ISAs mid-stream. Shapes cover ragged k (odd, <4), ragged
// column counts (sub-lane, odd, >64), empty inner dims, and one shape
// big enough to cross the parallel-tiling threshold.
func TestMatMul32IntoCrossTierBitIdentity(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 2}, {2, 7, 3}, {4, 4, 4}, {5, 13, 31},
		{3, 16, 33}, {8, 9, 100}, {2, 0, 5}, {17, 3, 1}, {32, 24, 180},
	}
	defer func() {
		SetMatMulWorkers(0)
		minGEMMColTile = 32
		SetSIMDAuto()
	}()
	rng := rand.New(rand.NewSource(71))
	type gemm struct{ a, b, want *Matrix32 }
	cases := make([]gemm, len(shapes))
	if err := SetSIMD(SIMDGeneric); err != nil {
		t.Fatal(err)
	}
	SetMatMulWorkers(1)
	for i, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		g := gemm{a: NewMatrix32(m, k), b: NewMatrix32(k, n), want: NewMatrix32(m, n)}
		for j := range g.a.Data {
			g.a.Data[j] = float32(rng.NormFloat64())
		}
		for j := range g.b.Data {
			g.b.Data[j] = float32(rng.NormFloat64())
		}
		MatMul32Into(g.want, g.a, g.b)
		cases[i] = g
	}
	forEachSIMDLevel(t, func(t *testing.T) {
		for i, sh := range shapes {
			g := cases[i]
			got := NewMatrix32(sh[0], sh[2])
			for _, workers := range []int{1, 2, 8} {
				for _, colTile := range []int{1, 32} {
					SetMatMulWorkers(workers)
					minGEMMColTile = colTile
					for j := range got.Data {
						got.Data[j] = float32(math.NaN()) // must be fully overwritten
					}
					MatMul32Into(got, g.a, g.b)
					for j, v := range got.Data {
						if math.Float32bits(v) != math.Float32bits(g.want.Data[j]) {
							t.Fatalf("%dx%dx%d workers=%d colTile=%d elem %d: %g (bits %#x) vs generic %g (bits %#x)",
								sh[0], sh[1], sh[2], workers, colTile, j, v, math.Float32bits(v),
								g.want.Data[j], math.Float32bits(g.want.Data[j]))
						}
					}
				}
			}
			SetMatMulWorkers(0)
			minGEMMColTile = 32
		}
	})
}

// TestMatMul32IntoMatchesF64OnOddWidths is the accuracy property for
// the vectorized combine at every tier: against the f64 product, each
// element stays inside the standard dot-product condition bound, on
// widths chosen to stress the 4-unroll tails (odd k) and the vector
// tails (odd, sub-lane, and >64 column counts).
func TestMatMul32IntoMatchesF64OnOddWidths(t *testing.T) {
	forEachSIMDLevel(t, func(t *testing.T) {
		for _, sh := range [][3]int{{3, 7, 5}, {5, 31, 3}, {2, 129, 65}, {1, 5, 1}, {4, 15, 9}} {
			m, k, n := sh[0], sh[1], sh[2]
			a := randomMatrix(m, k, int64(m*1000+k))
			b := randomMatrix(k, n, int64(k*1000+n))
			want := MatMul(a, b)
			dst := NewMatrix32(m, n)
			MatMul32Into(dst, down(a), down(b))
			checkMatClose(t, "MatMul32Into", dst, want, a, b, false)
		}
	})
}

// TestRowKernelHooksBitContract checks the per-tier row-kernel hooks
// feeding layer norm and softmax. Element-wise hooks (the residual add
// inside lnSum, the normalize-affine, the row scale) and the
// order-insensitive row max must produce the scalar formula's exact
// bits over whatever prefix they cover; the reduction returns (lnSum,
// lnSq) may reassociate and are bounded against f64 instead. Coverage
// must be a lane-aligned prefix the scalar tail can finish.
func TestRowKernelHooksBitContract(t *testing.T) {
	forEachSIMDLevel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(97))
		ks := kernels()
		for _, n := range []int{1, 3, 4, 5, 8, 17, 33, 64} {
			x := make([]float32, n)
			res := make([]float32, n)
			gamma := make([]float32, n)
			beta := make([]float32, n)
			for i := range x {
				x[i] = float32(rng.NormFloat64())
				res[i] = float32(rng.NormFloat64())
				gamma[i] = float32(rng.NormFloat64())
				beta[i] = float32(rng.NormFloat64())
			}
			mean := float32(rng.NormFloat64())
			inv := float32(rng.Float64() + 0.5)
			scale := float32(0.25)

			checkCover := func(label string, c int) {
				t.Helper()
				if c < 0 || c > n || c%4 != 0 {
					t.Fatalf("n=%d: %s covered %d elements; want a 4-aligned prefix", n, label, c)
				}
			}

			o := make([]float32, n)
			c, partial := ks.lnSum(o, x, res)
			checkCover("lnSum", c)
			var f64sum float64
			for j := 0; j < c; j++ {
				want := x[j] + res[j]
				if math.Float32bits(o[j]) != math.Float32bits(want) {
					t.Fatalf("n=%d lnSum elem %d: %g vs scalar %g", n, j, o[j], want)
				}
				f64sum += float64(want)
			}
			if diff := math.Abs(float64(partial) - f64sum); diff > 1e-5*math.Abs(f64sum)+1e-5 {
				t.Fatalf("n=%d lnSum partial sum %g vs f64 %g", n, partial, f64sum)
			}
			for j := c; j < n; j++ {
				o[j] = x[j] + res[j]
			}

			c, partial = ks.lnSq(o, mean)
			checkCover("lnSq", c)
			var f64sq float64
			for j := 0; j < c; j++ {
				d := o[j] - mean
				f64sq += float64(d) * float64(d)
			}
			if diff := math.Abs(float64(partial) - f64sq); diff > 1e-5*f64sq+1e-5 {
				t.Fatalf("n=%d lnSq partial sum %g vs f64 %g", n, partial, f64sq)
			}

			before := append([]float32(nil), o...)
			c = ks.lnAffine(o, mean, inv, gamma, beta)
			checkCover("lnAffine", c)
			for j := 0; j < c; j++ {
				want := (before[j]-mean)*inv*gamma[j] + beta[j]
				if math.Float32bits(o[j]) != math.Float32bits(want) {
					t.Fatalf("n=%d lnAffine elem %d: %g vs scalar %g", n, j, o[j], want)
				}
			}

			c, max := ks.rowMax(x, scale)
			checkCover("rowMax", c)
			if c > 0 {
				want := x[0] * scale
				for j := 1; j < c; j++ {
					if v := x[j] * scale; v > want {
						want = v
					}
				}
				if math.Float32bits(max) != math.Float32bits(want) {
					t.Fatalf("n=%d rowMax over %d: %g vs scalar %g", n, c, max, want)
				}
			}

			before = append([]float32(nil), o...)
			c = ks.vscale(o, inv)
			checkCover("vscale", c)
			for j := 0; j < c; j++ {
				want := before[j] * inv
				if math.Float32bits(o[j]) != math.Float32bits(want) {
					t.Fatalf("n=%d vscale elem %d: %g vs scalar %g", n, j, o[j], want)
				}
			}
		}
	})
}

// TestBestSIMDPerArch pins the per-architecture dispatch expectations:
// the NEON tier is the arm64 baseline (and unsupported elsewhere), the
// x86 tiers exist only on amd64, and BestSIMD always lands on this
// arch's top tier. On the arm64 CI runner this is the proof that
// BestSIMD() == neon, not a silent generic fallback.
func TestBestSIMDPerArch(t *testing.T) {
	supported := map[SIMDLevel]bool{}
	for _, l := range SupportedSIMDLevels() {
		supported[l] = true
	}
	switch runtime.GOARCH {
	case "arm64":
		if BestSIMD() != SIMDNEON {
			t.Fatalf("BestSIMD() = %s on arm64; want neon", BestSIMD())
		}
		if !supported[SIMDNEON] || supported[SIMDSSE2] || supported[SIMDAVX2] {
			t.Fatalf("arm64 supported set %v; want neon without x86 tiers", SupportedSIMDLevels())
		}
	case "amd64":
		if supported[SIMDNEON] {
			t.Fatalf("amd64 supported set %v claims neon", SupportedSIMDLevels())
		}
		if !supported[SIMDSSE2] {
			t.Fatalf("amd64 supported set %v lacks sse2", SupportedSIMDLevels())
		}
		if best := BestSIMD(); best < SIMDSSE2 || best == SIMDNEON {
			t.Fatalf("BestSIMD() = %s on amd64", best)
		}
	default:
		if len(SupportedSIMDLevels()) != 1 || BestSIMD() != SIMDGeneric {
			t.Fatalf("generic-only arch: supported %v best %s", SupportedSIMDLevels(), BestSIMD())
		}
	}
	// Forcing a tier from a foreign architecture must fail loudly, with
	// the error naming this platform.
	for _, l := range []SIMDLevel{SIMDSSE2, SIMDAVX2, SIMDNEON} {
		if supported[l] {
			continue
		}
		err := SetSIMD(l)
		if err == nil {
			SetSIMDAuto()
			t.Fatalf("SetSIMD(%s) succeeded on %s", l, runtime.GOARCH)
		}
	}
}
