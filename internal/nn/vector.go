package nn

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("nn: dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddScaled adds s*src into dst element-wise.
func AddScaled(dst, src []float64, s float64) {
	if len(dst) != len(src) {
		panic("nn: addscaled length mismatch")
	}
	for i, v := range src {
		dst[i] += s * v
	}
}

// Scale multiplies every element of v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// L2Norm returns the Euclidean norm of v.
func L2Norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize returns a unit-norm copy of v. If v is (numerically) the
// zero vector it returns a zero vector of the same length, avoiding NaNs.
func Normalize(v []float64) []float64 {
	out := make([]float64, len(v))
	n := L2Norm(v)
	if n < 1e-12 {
		return out
	}
	for i, x := range v {
		out[i] = x / n
	}
	return out
}

// CosineSimilarity returns the cosine of the angle between a and b,
// in [-1, 1]. Zero vectors yield similarity 0.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := L2Norm(a), L2Norm(b)
	if na < 1e-12 || nb < 1e-12 {
		return 0
	}
	s := Dot(a, b) / (na * nb)
	if s > 1 {
		s = 1
	} else if s < -1 {
		s = -1
	}
	return s
}

// CosineDistance returns 1 − CosineSimilarity(a, b), in [0, 2]. This is
// the distance the paper uses both for the triplet-loss margin and for
// agglomerative clustering of mention embeddings.
func CosineDistance(a, b []float64) float64 {
	return 1 - CosineSimilarity(a, b)
}

// EuclideanDistance returns the L2 distance between a and b.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("nn: euclidean length mismatch")
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Mean returns the element-wise mean of the given vectors. All vectors
// must share one length; an empty input returns nil.
func Mean(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		AddScaled(out, v, 1)
	}
	Scale(out, 1/float64(len(vecs)))
	return out
}

// Softmax writes the softmax of logits into a new slice. It is
// numerically stabilized by subtracting the maximum logit.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	if len(logits) == 0 {
		return out
	}
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// ArgMax returns the index of the largest element of v, or -1 for an
// empty slice. Ties resolve to the lowest index.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v[1:] {
		if x > v[best] {
			best = i + 1
		}
	}
	return best
}
