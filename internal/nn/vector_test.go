package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestL2NormAndNormalize(t *testing.T) {
	v := []float64{3, 4}
	if math.Abs(L2Norm(v)-5) > 1e-12 {
		t.Fatalf("L2Norm = %v", L2Norm(v))
	}
	u := Normalize(v)
	if math.Abs(L2Norm(u)-1) > 1e-12 {
		t.Fatalf("normalized norm = %v", L2Norm(u))
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize(zero) = %v, want zero vector", z)
	}
}

func TestCosineSimilarityKnown(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 0}, []float64{-1, 0}, -1},
		{[]float64{0, 0}, []float64{1, 0}, 0},
	}
	for _, c := range cases {
		if got := CosineSimilarity(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CosineSimilarity(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// sanitizeVec maps arbitrary quick-generated floats into the bounded
// range embeddings actually occupy, avoiding overflow in x².
func sanitizeVec(a [4]float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = math.Mod(v, 10)
	}
	return out
}

func TestCosineDistanceRangeProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		d := CosineDistance(sanitizeVec(a), sanitizeVec(b))
		return d >= 0 && d <= 2 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineDistanceScaleInvarianceProperty(t *testing.T) {
	f := func(a, b [4]float64, scale uint8) bool {
		s := float64(scale%50) + 1
		av, bv := sanitizeVec(a), sanitizeVec(b)
		scaled := make([]float64, 4)
		copy(scaled, av)
		Scale(scaled, s)
		return math.Abs(CosineDistance(av, bv)-CosineDistance(scaled, bv)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEuclideanDistance(t *testing.T) {
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("EuclideanDistance = %v", got)
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m[0] != 3 || m[1] != 4 {
		t.Fatalf("Mean = %v", m)
	}
	if Mean(nil) != nil {
		t.Fatal("Mean(nil) should be nil")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(a [5]float64) bool {
		// Clamp to avoid Inf inputs from quick.
		in := make([]float64, 5)
		for i, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			in[i] = math.Mod(v, 50)
		}
		p := Softmax(in)
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableWithLargeLogits(t *testing.T) {
	p := Softmax([]float64{1000, 1000, 1000})
	for _, v := range p {
		if math.Abs(v-1.0/3.0) > 1e-9 {
			t.Fatalf("Softmax large-logit = %v", p)
		}
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax basic failed")
	}
	if ArgMax([]float64{2, 2}) != 0 {
		t.Fatal("ArgMax tie should pick lowest index")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) should be -1")
	}
}

func TestAddScaledAndScale(t *testing.T) {
	dst := []float64{1, 1}
	AddScaled(dst, []float64{2, 3}, 2)
	if dst[0] != 5 || dst[1] != 7 {
		t.Fatalf("AddScaled = %v", dst)
	}
}
