//go:build arm64

package nn

// arm64 kernel tier. NEON (Advanced SIMD) is part of the aarch64 base
// ISA, so the tier needs no feature detection — BestSIMD resolves to
// neon on every arm64 machine. Assembly bodies: simd_arm64.s. The
// float vector instructions the Go assembler lacks mnemonics for are
// emitted as WORD-encoded aarch64 opcodes (fixed 4-byte instructions)
// and pinned by disassembly; see the .s file header.
//
// The W8A8 kernels have no NEON assembly: a forced w8a8 mode runs the
// portable reference bodies, mirroring the SSE2 tier's policy.

var archTiers = []simdTier{
	{level: SIMDNEON, supported: func() bool { return true }, apply: applyNEON},
}

func applyNEON(ks *kernelSet) {
	ks.dot = dotRows32NEON
	ks.quant = quantRowNEON
	ks.i8r = i8RowsNEON
	ks.i8r4 = i8Rows4NEON
	ks.gelu = geluVecNEON
	ks.exprow = expRowNEON
	ks.axpy4 = axpy4NEON
	ks.axpy1 = axpy1NEON
	ks.lnSum = lnSumNEON
	ks.lnSq = lnSqNEON
	ks.lnAffine = lnAffineNEON
	ks.rowMax = rowMaxNEON
	ks.vscale = vscaleNEON
}

// dotRows32NEON computes dst[j] = Σ_k a[k]·rows[j·len(a)+k] with two
// 4-wide FMLA accumulators (8 elements per iteration), a 4-block and
// scalar tails. Cross-tier bit equality is not promised (FMA, 4-lane
// accumulation), matching the x86 dot kernels' contract.
//
//go:noescape
func dotRows32NEON(dst, a, rows []float32)

// quantRowNEON quantizes one activation row to symmetric int16:
// 4-wide FABS/FMAX maxabs scan + FMAXV fold, then a 4-wide
// FMUL/FCVTAS/SQXTN quantize loop (round-to-nearest ties away — the
// reference's half-away rounding — with saturation like PACKSSDW).
// Zeroes the padding tail and returns maxabs/32767 (0 for an all-zero
// row). len(q) must be a whole number of i8Group-wide groups.
//
//go:noescape
func quantRowNEON(q []int16, x []float32) float32

// i8RowsNEON computes one activation row of the W8A16 GEMM. Per
// 16-wide group: SSHLL/SSHLL2 widen the int8 weights to int16, four
// SMLAL/SMLAL2 accumulate exact int32 lane sums (each lane ≤
// 4·32767·127 < 2²⁴), ADDV folds the group total (int adds are
// order-exact), and the scalar SCVTF/FMUL/FADD dequant sequence
// matches the reference order — so the kernel is bit-identical to
// i8RowsRef.
//
//go:noescape
func i8RowsNEON(dst []float32, q []int16, wt []int8, scale, b []float32, s float32)

// i8Rows4NEON is i8RowsNEON over four activation rows (dst rows
// dstStride apart, q 4×inPad contiguous, sx the four activation
// scales). Weight widening and scale loads are shared across the
// rows; the per-row operation sequence is identical to i8RowsNEON, so
// per-row bits match the single-row kernel exactly.
//
//go:noescape
func i8Rows4NEON(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad, dstStride int)

// gelu4NEON applies the tanh-approximated GELU four lanes at a time,
// transliterating the scalar operation sequence exactly (no FMA; the
// contract is bit equality with the scalar formula at every tier).
// len(x) must be a multiple of 4; dst may alias x.
//
//go:noescape
func gelu4NEON(dst, x []float32)

// geluVecNEON runs the vectorized GELU over the largest 4-aligned
// prefix and reports how many elements it covered.
func geluVecNEON(dst, x []float32) int {
	n := len(x) &^ 3
	if n > 0 {
		gelu4NEON(dst[:n], x[:n])
	}
	return n
}

// expRow4NEON computes dst[i] = exp32(x[i]·scale − max) four lanes at
// a time and returns the sum of the written values; per-element bits
// match scalar exp32 exactly (same trunc-and-correct floor, same
// Horner order, no FMA). len(x) must be a multiple of 4 and
// x[i]·scale ≤ max.
//
//go:noescape
func expRow4NEON(dst, x []float32, scale, max float32) float32

// expRowNEON runs the 4-wide softmax exp over the largest 4-aligned
// prefix; the caller finishes the tail with scalar exp32.
func expRowNEON(dst, x []float32, scale, max float32) (int, float32) {
	n := len(x) &^ 3
	if n == 0 {
		return 0, 0
	}
	return n, expRow4NEON(dst[:n], x[:n], scale, max)
}

// axpy4NEON is the 4-wide saxpy over four rows — FMUL+FADD only (no
// FMLA): bit-identical to the scalar mul-then-add walk, scalar tail
// inside the kernel.
//
//go:noescape
func axpy4NEON(dst, b []float32, stride int, av []float32)

// axpy1NEON is the single-row saxpy, no FMLA, scalar tail inside.
//
//go:noescape
func axpy1NEON(dst, b []float32, av float32)

// lnSum4NEON writes o[j] = x[j] + res[j] four lanes at a time and
// returns the sum of the written values ((l0+l1)+(l2+l3) fold).
// len(o) must be a multiple of 4.
//
//go:noescape
func lnSum4NEON(o, x, res []float32) float32

func lnSumNEON(o, x, res []float32) (int, float32) {
	n := len(o) &^ 3
	if n == 0 {
		return 0, 0
	}
	return n, lnSum4NEON(o[:n], x[:n], res[:n])
}

// lnSq4NEON returns Σ (o[j]−mean)² over o, four lanes at a time.
// len(o) must be a multiple of 4.
//
//go:noescape
func lnSq4NEON(o []float32, mean float32) float32

func lnSqNEON(o []float32, mean float32) (int, float32) {
	n := len(o) &^ 3
	if n == 0 {
		return 0, 0
	}
	return n, lnSq4NEON(o[:n], mean)
}

// lnAffine4NEON writes o[j] = ((o[j]−mean)·inv)·gamma[j] + beta[j]
// four lanes at a time — the exact scalar operation order, no FMA.
// len(o) must be a multiple of 4.
//
//go:noescape
func lnAffine4NEON(o []float32, mean, inv float32, gamma, beta []float32)

func lnAffineNEON(o []float32, mean, inv float32, gamma, beta []float32) int {
	n := len(o) &^ 3
	if n > 0 {
		lnAffine4NEON(o[:n], mean, inv, gamma, beta)
	}
	return n
}

// rowMax4NEON returns max_j x[j]·scale (FMAX + FMAXV — exact, max
// never reassociates; finite inputs). len(x) must be a non-zero
// multiple of 4.
//
//go:noescape
func rowMax4NEON(x []float32, scale float32) float32

func rowMaxNEON(x []float32, scale float32) (int, float32) {
	n := len(x) &^ 3
	if n == 0 {
		return 0, 0
	}
	return n, rowMax4NEON(x[:n], scale)
}

// vscale4NEON multiplies o by inv in place, four lanes at a time.
// len(o) must be a multiple of 4.
//
//go:noescape
func vscale4NEON(o []float32, inv float32)

func vscaleNEON(o []float32, inv float32) int {
	n := len(o) &^ 3
	if n > 0 {
		vscale4NEON(o[:n], inv)
	}
	return n
}
