package nn

import (
	"math"
	"testing"
)

// quadratic sets up a param at (5, -3) whose loss is ½‖w‖²; gradient is
// w itself, so the optimum is the origin.
func quadraticParam() *Param {
	p := NewParam("q", 1, 2)
	p.W.Data[0], p.W.Data[1] = 5, -3
	return p
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := quadraticParam()
	opt := NewSGD(0.1)
	opt.Register(p)
	for i := 0; i < 200; i++ {
		copy(p.G.Data, p.W.Data)
		opt.Step()
	}
	if n := L2Norm(p.W.Data); n > 1e-6 {
		t.Fatalf("SGD did not converge, |w| = %v", n)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := quadraticParam()
	opt := NewSGD(0.1)
	opt.WeightDecay = 0.5
	opt.Register(p)
	before := L2Norm(p.W.Data)
	p.ZeroGrad()
	opt.Step()
	if after := L2Norm(p.W.Data); after >= before {
		t.Fatalf("weight decay should shrink weights: %v -> %v", before, after)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := quadraticParam()
	opt := NewAdam(0.05)
	opt.Register(p)
	for i := 0; i < 2000; i++ {
		copy(p.G.Data, p.W.Data)
		opt.Step()
	}
	if n := L2Norm(p.W.Data); n > 1e-3 {
		t.Fatalf("Adam did not converge, |w| = %v", n)
	}
}

func TestAdamStepClearsGradients(t *testing.T) {
	p := quadraticParam()
	opt := NewAdam(0.01)
	opt.Register(p)
	p.G.Fill(1)
	opt.Step()
	for _, g := range p.G.Data {
		if g != 0 {
			t.Fatal("Step must zero gradients")
		}
	}
}

func TestAdamRegisterIdempotent(t *testing.T) {
	p := quadraticParam()
	opt := NewAdam(0.01)
	opt.Register(p)
	opt.Register(p)
	if len(opt.params) != 1 {
		t.Fatalf("duplicate registration: %d params", len(opt.params))
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ~lr
	// regardless of gradient scale.
	p := NewParam("p", 1, 1)
	opt := NewAdam(0.1)
	opt.Register(p)
	p.G.Data[0] = 1e6
	opt.Step()
	if d := math.Abs(p.W.Data[0]); math.Abs(d-0.1) > 1e-3 {
		t.Fatalf("first step magnitude = %v, want ~0.1", d)
	}
}

func TestTrainTinyNetworkXOR(t *testing.T) {
	// End-to-end sanity: a 2-layer MLP learns XOR with Adam.
	rng := NewRNG(42)
	net := NewSequential(
		NewDense("h", 2, 8, rng),
		NewTanh(),
		NewDense("o", 8, 2, rng),
	)
	opt := NewAdam(0.05)
	opt.Register(net.Params()...)
	x := FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := []int{0, 1, 1, 0}
	var loss float64
	for epoch := 0; epoch < 500; epoch++ {
		logits := net.Forward(x, true)
		var dl *Matrix
		loss, dl = SoftmaxCrossEntropy(logits, y)
		net.Backward(dl)
		opt.Step()
	}
	if loss > 0.05 {
		t.Fatalf("XOR training failed to converge, loss = %v", loss)
	}
	logits := net.Forward(x, false)
	for i, want := range y {
		if ArgMax(logits.Row(i)) != want {
			t.Fatalf("XOR prediction wrong for row %d", i)
		}
	}
}
