package nn

import (
	"fmt"
	"sync/atomic"

	"nerglobalizer/internal/parallel"
)

// Matrix-multiply kernels. Three layers:
//
//  1. *Into variants write into a caller-owned destination so hot
//     call sites (attention, FFN backprop) can reuse scratch buffers
//     instead of allocating a fresh matrix per call.
//  2. Every kernel is cache-blocked: the inner loops walk a small
//     panel of b that stays resident in L1/L2 while being reused
//     across many output rows.
//  3. Above a flop threshold the output rows are sharded across the
//     package matmul pool. Each output element is still accumulated
//     by exactly one worker in ascending-k order, so the result is
//     bit-identical to the serial kernel at any worker count.

// matmulBlock is the k-panel height of the blocked kernels: 64 rows of
// a float64 matrix with a few hundred columns fit comfortably in L2.
const matmulBlock = 64

// parallelMatMulMinFlops gates row sharding: below ~128k multiply-adds
// the goroutine fan-out costs more than it saves. The pipeline's
// per-token matrices (Dim≈32) stay under it and run serially even when
// the pool is wide.
const parallelMatMulMinFlops = 1 << 17

// matmulPool is the pool used for oversized multiplies. It defaults to
// the process-wide pool; SetMatMulWorkers overrides it.
var matmulPool atomic.Pointer[parallel.Pool]

// SetMatMulWorkers caps the goroutines used by oversized matrix
// multiplies. workers == 1 forces fully serial kernels; workers <= 0
// restores GOMAXPROCS auto-sizing. Output is bit-identical at every
// setting — the knob trades wall-clock only.
func SetMatMulWorkers(workers int) {
	matmulPool.Store(parallel.New(workers))
}

func kernelPool() *parallel.Pool {
	if p := matmulPool.Load(); p != nil {
		return p
	}
	return parallel.Default()
}

// shardPool returns the pool to fan a kernel out over, or nil when the
// kernel should run serially. Call sites branch on nil and invoke the
// range function directly in the serial case — routing the serial path
// through a callback would heap-allocate a closure per multiply, which
// dominates the profile once the batched inference path drives
// thousands of small attention GEMMs per cycle.
func shardPool(rows, flops int) *parallel.Pool {
	p := kernelPool()
	if flops < parallelMatMulMinFlops || p.Workers() <= 1 || rows <= 1 {
		return nil
	}
	return p
}

// minGEMMColTile is the narrowest output-column tile the 2D packed
// GEMM split will produce. Below ~32 outputs a tile re-reads the whole
// activation row for too little work and the per-tile dispatch
// overhead shows. A var, not a const, so tests can force degenerate
// tile boundaries.
var minGEMMColTile = 32

// gemmTiles plans the cooperative 2D split of a packed GEMM: rows ×
// output-columns. Row sharding alone (the pre-dispatch scheme) leaves
// cores idle whenever rows < workers — a few wide sentences, or the
// tagger head over one sentence — so leftover workers tile the output
// dimension instead. Returns (nil, 0, 0) when the multiply should run
// serially. Every output element is still computed by exactly one
// worker with a fixed per-element operation order, so the result is
// bit-identical at every worker count and tile geometry.
func gemmTiles(rows, out, flops int) (p *parallel.Pool, rowTiles, colTiles int) {
	pool := kernelPool()
	if flops < parallelMatMulMinFlops || pool.Workers() <= 1 || rows == 0 || out == 0 {
		return nil, 0, 0
	}
	w := pool.Workers()
	rt := rows
	if rt > w {
		rt = w
	}
	ct := 1
	if rt < w {
		ct = (w + rt - 1) / rt
		if maxCT := out / minGEMMColTile; ct > maxCT {
			ct = maxCT
		}
		if ct < 1 {
			ct = 1
		}
	}
	if rt*ct <= 1 {
		return nil, 0, 0
	}
	return pool, rt, ct
}

// tileSpan returns contiguous span s of [0, n) split into parts
// near-equal pieces — the same low-to-high arithmetic
// parallel.ForEachSpan uses, so row spans match the pre-tiling
// sharding exactly.
func tileSpan(s, parts, n int) (lo, hi int) {
	q, r := n/parts, n%parts
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

// MatMul returns a × b.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a × b, overwriting dst. dst must be
// a.Rows×b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	if p := shardPool(a.Rows, a.Rows*a.Cols*b.Cols); p != nil {
		p.ForEachSpan(a.Rows, func(lo, hi int) {
			matMulRange(dst, a, b, lo, hi)
		})
	} else {
		matMulRange(dst, a, b, 0, a.Rows)
	}
}

// matMulRange accumulates rows [i0, i1) of dst += a × b, k-blocked so
// each 64-row panel of b is reused across every output row in the
// span. The k loop is unrolled four-wide: each pass over the output
// row folds in four b rows, quartering the load/store traffic on dst.
// Per output element the additions still happen one at a time in
// ascending-k order — ((o + a₀b₀) + a₁b₁) + … — so the result matches
// the unblocked triple loop bit for bit. Zero a-row entries are
// skipped exactly as the scalar kernel skips them (the fused pass runs
// only when all four coefficients are nonzero; a mixed group falls
// back to the per-k loop), which keeps one-hot and padded inputs cheap
// and never folds in 0·b terms the scalar kernel would have skipped.
func matMulRange(dst, a, b *Matrix, i0, i1 int) {
	K := a.Cols
	for k0 := 0; k0 < K; k0 += matmulBlock {
		k1 := k0 + matmulBlock
		if k1 > K {
			k1 = K
		}
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			k := k0
			for ; k+4 <= k1; k += 4 {
				av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
					b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
					for j, v0 := range b0 {
						s := orow[j] + av0*v0
						s += av1 * b1[j]
						s += av2 * b2[j]
						s += av3 * b3[j]
						orow[j] = s
					}
					continue
				}
				for kk := k; kk < k+4; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := b.Row(kk)
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
			for ; k < k1; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// MatMulT returns a × bᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes dst = a × bᵀ, overwriting dst. dst must be
// a.Rows×b.Rows and must not alias a or b.
func MatMulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmulT dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if p := shardPool(a.Rows, a.Rows*a.Cols*b.Rows); p != nil {
		p.ForEachSpan(a.Rows, func(lo, hi int) {
			matMulTRange(dst, a, b, lo, hi)
		})
	} else {
		matMulTRange(dst, a, b, 0, a.Rows)
	}
}

// matMulTRange fills rows [i0, i1) of dst = a × bᵀ, j-blocked so a
// panel of b rows is reused across the span. Every element is one full
// dot product, so blocking cannot change its value.
func matMulTRange(dst, a, b *Matrix, i0, i1 int) {
	for j0 := 0; j0 < b.Rows; j0 += matmulBlock {
		j1 := j0 + matmulBlock
		if j1 > b.Rows {
			j1 = b.Rows
		}
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := j0; j < j1; j++ {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	}
}

// TMatMul returns aᵀ × b.
func TMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Cols, b.Cols)
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes dst = aᵀ × b, overwriting dst. dst must be
// a.Cols×b.Cols and must not alias a or b.
func TMatMulInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: tmatmul shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: tmatmul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	if p := shardPool(a.Cols, a.Rows*a.Cols*b.Cols); p != nil {
		p.ForEachSpan(a.Cols, func(lo, hi int) {
			tMatMulRange(dst, a, b, lo, hi)
		})
	} else {
		tMatMulRange(dst, a, b, 0, a.Cols)
	}
}

// tMatMulRange accumulates output rows [i0, i1) of dst += aᵀ × b.
// Output row i draws from column i of a; sharding by output row keeps
// worker writes disjoint while each element still accumulates over k
// (rows of a) in ascending order.
func tMatMulRange(dst, a, b *Matrix, i0, i1 int) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := i0; i < i1; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := dst.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// ReuseMatrix returns m reshaped to rows×cols, reusing its backing
// array when capacity allows, or a fresh matrix otherwise. Scratch
// owners call it once per forward/backward so steady-state hot loops
// stop allocating. The returned matrix's contents are unspecified.
func ReuseMatrix(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		return NewMatrix(rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
	return m
}
