package nn

import "math"

// Fused inference kernels. The batched transformer inference path
// (internal/transformer, InferBatch) packs many sentences into one
// flat token matrix and runs every position-independent layer as a
// single pass over the packed rows. These kernels are its substrate:
// each one writes into caller-owned scratch and fuses the operation
// pairs the per-sentence path performs back to back (dense + bias,
// scale + softmax, residual-add + layer-norm), so steady-state
// inference allocates nothing.
//
// The contract shared with the rest of the package: every fused kernel
// is bit-identical to the unfused sequence it replaces. Each output
// element is computed by the same floating-point operations in the
// same order — fusion removes intermediate storage, never roundings.

// InferInto computes dst = x·W + b without caching backprop state,
// bit-identical to Infer. dst must be x.Rows×Out and must not alias x.
func (d *Dense) InferInto(dst, x *Matrix) {
	MatMulInto(dst, x, d.W.W)
	dst.AddRowVecInPlace(d.B.W.Data)
}

// InferInto applies the tanh-approximated GELU element-wise into dst,
// bit-identical to Infer. dst must share x's shape; dst == x is
// allowed (each element is read before it is written).
func (g *GELU) InferInto(dst, x *Matrix) {
	x.mustSameShape(dst)
	for i, v := range x.Data {
		dst.Data[i] = 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
	}
}

// ScaledSoftmaxRowsInto fuses x.ScaleInPlace(scale) followed by
// SoftmaxRows(x) into one pass, writing the row-wise softmax of
// scale·x into dst without mutating x. Each scaled logit is the same
// single multiplication the unfused pair performs, so the output is
// bit-identical. dst must share x's shape; dst == x is allowed.
func ScaledSoftmaxRowsInto(dst, x *Matrix, scale float64) {
	x.mustSameShape(dst)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		if len(row) == 0 {
			continue
		}
		o := dst.Row(i)
		max := row[0] * scale
		for _, v := range row[1:] {
			if sv := v * scale; sv > max {
				max = sv
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v*scale - max)
			o[j] = e
			sum += e
		}
		for j := range o {
			o[j] /= sum
		}
	}
}

// InferResidualInto fuses the residual add into the normalization:
// dst = LayerNorm(x + res), bit-identical to x.AddInPlace(res)
// followed by ln.Infer(x) (each sum is the same single addition; the
// row statistics then see identical values). All three matrices must
// share one shape; dst must not alias x or res.
func (ln *LayerNorm) InferResidualInto(dst, x, res *Matrix) {
	x.mustSameShape(res)
	x.mustSameShape(dst)
	n := float64(x.Cols)
	gamma := ln.Gamma.W.Data
	beta := ln.Beta.W.Data
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		rrow := res.Row(i)
		o := dst.Row(i)
		mean := 0.0
		for j, v := range xrow {
			s := v + rrow[j]
			o[j] = s
			mean += s
		}
		mean /= n
		variance := 0.0
		for _, v := range o {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+ln.Eps)
		for j, v := range o {
			o[j] = (v-mean)*inv*gamma[j] + beta[j]
		}
	}
}
