package nn

import "fmt"

// Precision selects the numeric tier of the packed inference kernels.
// Training and the default inference path always run in float64; the
// reduced tiers trade bit-exactness for memory traffic on the
// encoder-bound GEMMs (see pack.go and fused32.go). The correctness
// contract is two-level: per-kernel relative-error bounds against the
// float64 reference (pinned by property tests), and annotation-equal
// end-to-end output on the shipped streams (pinned by the golden-stream
// precision tests in internal/core).
type Precision uint8

// The three inference tiers.
const (
	// F64 is the exact default: every kernel bit-identical to training.
	F64 Precision = iota
	// F32 runs the packed dense/FFN/attention GEMMs over float32 weight
	// mirrors with float32 accumulation, halving the bytes moved.
	F32
	// I8 additionally quantizes the dense-layer GEMMs to int8 (per-row
	// weight scales, dynamic per-row activation scales, exact int32
	// accumulation), quartering the weight bytes moved.
	I8
)

// ParsePrecision maps the configuration spelling of a tier to its
// Precision. The empty string selects F64 so configurations serialized
// before the knob existed keep their exact behaviour; any other
// unknown spelling is an error — callers must reject it rather than
// silently falling back to f64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64":
		return F64, nil
	case "f32":
		return F32, nil
	case "i8":
		return I8, nil
	}
	return F64, fmt.Errorf("nn: unknown inference precision %q (want f64, f32 or i8)", s)
}

// String names the tier as ParsePrecision spells it.
func (p Precision) String() string {
	switch p {
	case F32:
		return "f32"
	case I8:
		return "i8"
	}
	return "f64"
}
