package nn

import "math"

// LayerNorm normalizes each row of its input to zero mean and unit
// variance, then applies a learned per-feature affine transform
// (gain γ and bias β). Used after attention and feed-forward blocks of
// the Transformer encoder.
type LayerNorm struct {
	Gamma *Param
	Beta  *Param
	Eps   float64

	xhat   *Matrix
	invStd []float64

	// p32 holds the float32 mirror of γ/β used by the reduced-precision
	// inference tiers (pack.go).
	p32 lnPackPtr32
}

// NewLayerNorm returns a LayerNorm over dim features with γ=1, β=0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Gamma: NewParam(name+".gamma", 1, dim),
		Beta:  NewParam(name+".beta", 1, dim),
		Eps:   1e-5,
	}
	ln.Gamma.W.Fill(1)
	return ln
}

// Forward normalizes each row and applies the affine transform.
func (ln *LayerNorm) Forward(x *Matrix, train bool) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	ln.xhat = NewMatrix(x.Rows, x.Cols)
	ln.invStd = make([]float64, x.Rows)
	n := float64(x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= n
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+ln.Eps)
		ln.invStd[i] = inv
		xh := ln.xhat.Row(i)
		o := out.Row(i)
		for j, v := range row {
			h := (v - mean) * inv
			xh[j] = h
			o[j] = h*ln.Gamma.W.Data[j] + ln.Beta.W.Data[j]
		}
	}
	return out
}

// Backward computes gradients w.r.t. γ, β and the input.
func (ln *LayerNorm) Backward(dout *Matrix) *Matrix {
	if ln.xhat == nil {
		panic("nn: LayerNorm.Backward before Forward")
	}
	dx := NewMatrix(dout.Rows, dout.Cols)
	n := float64(dout.Cols)
	for i := 0; i < dout.Rows; i++ {
		drow := dout.Row(i)
		xh := ln.xhat.Row(i)
		// Accumulate parameter grads and the two row-level sums needed
		// for the input gradient.
		sumDxhat := 0.0
		sumDxhatXhat := 0.0
		dxhat := make([]float64, dout.Cols)
		for j, dv := range drow {
			ln.Gamma.G.Data[j] += dv * xh[j]
			ln.Beta.G.Data[j] += dv
			dh := dv * ln.Gamma.W.Data[j]
			dxhat[j] = dh
			sumDxhat += dh
			sumDxhatXhat += dh * xh[j]
		}
		inv := ln.invStd[i]
		out := dx.Row(i)
		for j := range dxhat {
			out[j] = inv / n * (n*dxhat[j] - sumDxhat - xh[j]*sumDxhatXhat)
		}
	}
	return dx
}

// Params returns γ and β.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// BatchNorm normalizes each feature column over the batch during
// training and tracks running statistics for inference. The paper adds
// batch normalization when training the Phrase Embedder.
type BatchNorm struct {
	Gamma *Param
	Beta  *Param
	Eps   float64
	// Momentum controls the exponential moving average of the running
	// statistics (fraction of old value retained).
	Momentum float64

	RunningMean []float64
	RunningVar  []float64

	xhat   *Matrix
	invStd []float64
}

// NewBatchNorm returns a BatchNorm over dim features.
func NewBatchNorm(name string, dim int) *BatchNorm {
	bn := &BatchNorm{
		Gamma:       NewParam(name+".gamma", 1, dim),
		Beta:        NewParam(name+".beta", 1, dim),
		Eps:         1e-5,
		Momentum:    0.9,
		RunningMean: make([]float64, dim),
		RunningVar:  make([]float64, dim),
	}
	bn.Gamma.W.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes per feature using batch statistics when train is
// true and running statistics otherwise.
func (bn *BatchNorm) Forward(x *Matrix, train bool) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	if !train || x.Rows == 1 {
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			o := out.Row(i)
			for j, v := range row {
				h := (v - bn.RunningMean[j]) / math.Sqrt(bn.RunningVar[j]+bn.Eps)
				o[j] = h*bn.Gamma.W.Data[j] + bn.Beta.W.Data[j]
			}
		}
		bn.xhat = nil
		return out
	}
	n := float64(x.Rows)
	mean := make([]float64, x.Cols)
	variance := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}
	bn.xhat = NewMatrix(x.Rows, x.Cols)
	bn.invStd = make([]float64, x.Cols)
	for j := range variance {
		bn.invStd[j] = 1 / math.Sqrt(variance[j]+bn.Eps)
		bn.RunningMean[j] = bn.Momentum*bn.RunningMean[j] + (1-bn.Momentum)*mean[j]
		bn.RunningVar[j] = bn.Momentum*bn.RunningVar[j] + (1-bn.Momentum)*variance[j]
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		xh := bn.xhat.Row(i)
		o := out.Row(i)
		for j, v := range row {
			h := (v - mean[j]) * bn.invStd[j]
			xh[j] = h
			o[j] = h*bn.Gamma.W.Data[j] + bn.Beta.W.Data[j]
		}
	}
	return out
}

// Backward computes gradients through the batch statistics. Must follow
// a training-mode Forward.
func (bn *BatchNorm) Backward(dout *Matrix) *Matrix {
	if bn.xhat == nil {
		panic("nn: BatchNorm.Backward requires a training-mode Forward")
	}
	rows, cols := dout.Rows, dout.Cols
	n := float64(rows)
	sumDxhat := make([]float64, cols)
	sumDxhatXhat := make([]float64, cols)
	dxhat := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		drow := dout.Row(i)
		xh := bn.xhat.Row(i)
		dh := dxhat.Row(i)
		for j, dv := range drow {
			bn.Gamma.G.Data[j] += dv * xh[j]
			bn.Beta.G.Data[j] += dv
			dh[j] = dv * bn.Gamma.W.Data[j]
			sumDxhat[j] += dh[j]
			sumDxhatXhat[j] += dh[j] * xh[j]
		}
	}
	dx := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		xh := bn.xhat.Row(i)
		dh := dxhat.Row(i)
		o := dx.Row(i)
		for j := range dh {
			o[j] = bn.invStd[j] / n * (n*dh[j] - sumDxhat[j] - xh[j]*sumDxhatXhat[j])
		}
	}
	return dx
}

// Params returns γ and β.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
