package nn

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source for weight initialization,
// shuffling, and dropout. Every component in the reproduction receives
// its randomness through an RNG so experiments are repeatable.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork derives an independent RNG stream from this one, so that adding
// consumers of one stream does not perturb the draws of another.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// XavierInit fills m with Glorot-uniform values scaled for fanIn inputs
// and fanOut outputs.
func (g *RNG) XavierInit(m *Matrix, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (2*g.Float64() - 1) * limit
	}
}

// NormalInit fills m with zero-mean Gaussian values of the given
// standard deviation.
func (g *RNG) NormalInit(m *Matrix, std float64) {
	for i := range m.Data {
		m.Data[i] = g.NormFloat64() * std
	}
}
