package nn

import "math"

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	mask *Matrix
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward clamps negative inputs to zero.
func (r *ReLU) Forward(x *Matrix, train bool) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	r.mask = NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask.Data[i] = 1
		}
	}
	return out
}

// Backward zeroes the gradient where the input was negative.
func (r *ReLU) Backward(dout *Matrix) *Matrix {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	dx := dout.Clone()
	dx.MulElemInPlace(r.mask)
	return dx
}

// Params returns nil: ReLU has no trainable parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic tangent activation, applied element-wise.
type Tanh struct {
	out *Matrix
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *Matrix, train bool) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.out = out
	return out
}

// Backward multiplies by (1 − tanh²).
func (t *Tanh) Backward(dout *Matrix) *Matrix {
	if t.out == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	dx := NewMatrix(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		y := t.out.Data[i]
		dx.Data[i] = v * (1 - y*y)
	}
	return dx
}

// Params returns nil: Tanh has no trainable parameters.
func (t *Tanh) Params() []*Param { return nil }

// GELU is the Gaussian error linear unit used inside Transformer
// feed-forward blocks, in its tanh approximation.
type GELU struct {
	x *Matrix
}

// NewGELU returns a GELU activation layer.
func NewGELU() *GELU { return &GELU{} }

const geluC = 0.7978845608028654 // sqrt(2/π)

// Forward applies the tanh-approximated GELU element-wise.
func (g *GELU) Forward(x *Matrix, train bool) *Matrix {
	g.x = x
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
	}
	return out
}

// Backward applies the analytic derivative of the tanh approximation.
func (g *GELU) Backward(dout *Matrix) *Matrix {
	if g.x == nil {
		panic("nn: GELU.Backward before Forward")
	}
	dx := NewMatrix(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		x := g.x.Data[i]
		u := geluC * (x + 0.044715*x*x*x)
		t := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*x*x)
		dx.Data[i] = v * (0.5*(1+t) + 0.5*x*(1-t*t)*du)
	}
	return dx
}

// Params returns nil: GELU has no trainable parameters.
func (g *GELU) Params() []*Param { return nil }

// SoftmaxRows applies a numerically stable softmax to each row of x,
// returning a new matrix. It is a pure function (no backprop state);
// losses that need softmax gradients fuse them analytically.
func SoftmaxRows(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), Softmax(x.Row(i)))
	}
	return out
}
