package nn

import (
	"testing"

	"nerglobalizer/internal/parallel"
)

// naive reference kernels: the pre-blocking triple loops.

func matMulNaive(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func matMulTNaive(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

func tMatMulNaive(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func randMatrix(rows, cols int, rng *RNG) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if rng.Float64() < 0.1 {
			m.Data[i] = 0 // exercise the zero-skip branch
		}
	}
	return m
}

func mustEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (must be bit-identical)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestBlockedKernelsBitIdenticalToNaive pins the determinism contract:
// blocking and row sharding must not change a single bit of any
// product, because they preserve the per-element accumulation order.
func TestBlockedKernelsBitIdenticalToNaive(t *testing.T) {
	rng := NewRNG(42)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {24, 32, 32},
		{63, 64, 65}, {65, 130, 64}, {200, 70, 90},
	}
	for _, workers := range []int{1, 4} {
		SetMatMulWorkers(workers)
		for _, s := range shapes {
			a := randMatrix(s.m, s.k, rng)
			b := randMatrix(s.k, s.n, rng)
			bt := randMatrix(s.n, s.k, rng)
			at := randMatrix(s.k, s.m, rng)
			mustEqual(t, "MatMul", MatMul(a, b), matMulNaive(a, b))
			mustEqual(t, "MatMulT", MatMulT(a, bt), matMulTNaive(a, bt))
			mustEqual(t, "TMatMul", TMatMul(at, b), tMatMulNaive(at, b))
		}
	}
	SetMatMulWorkers(0)
}

// TestParallelKernelAboveThreshold forces the sharded path (matrix big
// enough to clear parallelMatMulMinFlops) and checks bit-identity.
func TestParallelKernelAboveThreshold(t *testing.T) {
	rng := NewRNG(7)
	const n = 96 // 96³ ≈ 885k flops > threshold
	a := randMatrix(n, n, rng)
	b := randMatrix(n, n, rng)
	SetMatMulWorkers(1)
	serial := MatMul(a, b)
	serialT := MatMulT(a, b)
	serialTT := TMatMul(a, b)
	SetMatMulWorkers(8)
	mustEqual(t, "MatMul(parallel)", MatMul(a, b), serial)
	mustEqual(t, "MatMulT(parallel)", MatMulT(a, b), serialT)
	mustEqual(t, "TMatMul(parallel)", TMatMul(a, b), serialTT)
	SetMatMulWorkers(0)
}

func TestIntoVariantsReuseDst(t *testing.T) {
	rng := NewRNG(11)
	a := randMatrix(10, 12, rng)
	b := randMatrix(12, 8, rng)
	dst := NewMatrix(10, 8)
	dst.Fill(99) // stale contents must be overwritten
	MatMulInto(dst, a, b)
	mustEqual(t, "MatMulInto", dst, matMulNaive(a, b))

	bt := randMatrix(8, 12, rng)
	dstT := NewMatrix(10, 8)
	dstT.Fill(-5)
	MatMulTInto(dstT, a, bt)
	mustEqual(t, "MatMulTInto", dstT, matMulTNaive(a, bt))

	at := randMatrix(12, 10, rng)
	dstTT := NewMatrix(10, 8)
	dstTT.Fill(3)
	TMatMulInto(dstTT, at, b)
	mustEqual(t, "TMatMulInto", dstTT, tMatMulNaive(at, b))
}

func TestIntoShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 4)
	bad := NewMatrix(2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMulInto(bad, a, b)
}

func TestReuseMatrix(t *testing.T) {
	m := NewMatrix(4, 8)
	backing := &m.Data[0]
	m2 := ReuseMatrix(m, 2, 16)
	if &m2.Data[0] != backing {
		t.Fatal("ReuseMatrix should reuse capacity when it fits")
	}
	if m2.Rows != 2 || m2.Cols != 16 {
		t.Fatalf("reshaped to %dx%d", m2.Rows, m2.Cols)
	}
	m3 := ReuseMatrix(m2, 10, 10)
	if m3.Rows != 10 || m3.Cols != 10 || len(m3.Data) != 100 {
		t.Fatal("ReuseMatrix must grow when capacity is short")
	}
	if m4 := ReuseMatrix(nil, 3, 3); m4.Rows != 3 || m4.Cols != 3 {
		t.Fatal("ReuseMatrix(nil) must allocate")
	}
}

// TestInferMatchesForward pins Infer(x) == Forward(x, false) for every
// layer, the identity the parallel inference path depends on.
func TestInferMatchesForward(t *testing.T) {
	rng := NewRNG(5)
	x := randMatrix(6, 16, rng)
	layers := []struct {
		name  string
		layer Layer
	}{
		{"dense", NewDense("t.dense", 16, 10, rng)},
		{"relu", NewReLU()},
		{"tanh", NewTanh()},
		{"gelu", NewGELU()},
		{"dropout", NewDropout(0.5, rng.Fork())},
		{"layernorm", NewLayerNorm("t.ln", 16)},
		{"batchnorm", NewBatchNorm("t.bn", 16)},
		{"sequential", NewSequential(NewDense("t.s1", 16, 16, rng), NewGELU(), NewDense("t.s2", 16, 4, rng))},
	}
	for _, tc := range layers {
		want := tc.layer.Forward(x, false)
		got := tc.layer.(Inferer).Infer(x)
		mustEqual(t, tc.name, got, want)
	}
}

// TestInferConcurrentSafe runs Infer from many goroutines over one
// shared layer stack; go test -race is the assertion.
func TestInferConcurrentSafe(t *testing.T) {
	rng := NewRNG(9)
	seq := NewSequential(
		NewDense("c.1", 16, 32, rng),
		NewGELU(),
		NewLayerNorm("c.ln", 32),
		NewDropout(0.3, rng.Fork()),
		NewDense("c.2", 32, 8, rng),
	)
	x := randMatrix(5, 16, rng)
	want := seq.Infer(x)
	p := parallel.New(8)
	outs := parallel.MapOrdered(p, 64, func(i int) *Matrix { return seq.Infer(x) })
	for i, got := range outs {
		if got == nil {
			t.Fatalf("missing result %d", i)
		}
		mustEqual(t, "concurrent infer", got, want)
	}
}
