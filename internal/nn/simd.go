package nn

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
)

// Runtime kernel dispatch. The reduced-precision inner loops come in
// up to three ISA tiers per architecture — a portable Go reference
// (kernels_ref.go), the amd64 SSE2 baseline (simd_amd64.s) and 8-wide
// AVX2/FMA assembly (simd_avx2_amd64.s), and the arm64 NEON baseline
// (simd_arm64.s) — selected once at init from CPU feature bits and
// swappable at runtime through SetSIMD. This file owns the level
// namespace and the dispatch machinery; each architecture contributes
// its tiers through the archTiers registry (simd_amd64.go,
// simd_arm64.go, simd_generic.go), so levels parse uniformly on every
// platform and forcing a level the local architecture cannot run is a
// loud error rather than a silent generic fallback.
//
// The active tier lives in an atomic pointer to an immutable
// kernelSet: every GEMM call loads the set once and uses it for the
// whole call, so a concurrent tier switch can never mix kernels (or
// the W8A8/W8A16 activation formats) within one multiply.
//
// Contracts, per tier:
//
//   - Within one tier, a row computes identical bits through the
//     blocked and single-row kernels and at any shard/tile geometry.
//   - Across tiers, dot/quant/i8 outputs agree to the analytic error
//     bounds pinned in precision_test.go — cross-ISA bit equality is
//     explicitly NOT promised (FMA contraction, 8- vs 4-lane
//     accumulation, and round-half-even vs half-away quantizer ties
//     all differ).
//   - geluVec's and expRow32's vector prefixes are bit-identical to
//     the scalar formulas at every tier (kernels_test.go), so GELU and
//     softmax-exp results never depend on an element's index modulo
//     the vector width.
//   - The saxpy kernels (axpy4/axpy1, the attention combine), the
//     layer-norm affine pass (lnAffine), the softmax row-max scan
//     (rowMax), and the in-place scale (vscale) are bit-identical to
//     the scalar reference at EVERY tier: they vectorize along
//     independent output lanes with mul-then-add (no FMA) and never
//     split a reduction, or compute an order-insensitive max, so
//     MatMul32Into produces the same bits at any level, tile geometry,
//     and worker count.
//   - Only the layer-norm mean/variance reductions (lnSum/lnSq) and
//     the softmax exp partial sum reassociate; those are pinned by
//     analytic error bounds per tier (kernels_test.go).

// SIMDLevel identifies one dispatched kernel tier.
type SIMDLevel uint8

const (
	// SIMDGeneric is the portable pure-Go reference tier — the only
	// tier on architectures without assembly kernels, and a forcing
	// target everywhere for differential testing.
	SIMDGeneric SIMDLevel = iota
	// SIMDSSE2 is the amd64 baseline assembly tier (4-wide f32,
	// PMADDWD W8A16). Always available on amd64 (GOAMD64=v1).
	SIMDSSE2
	// SIMDAVX2 is the amd64 8-wide AVX2/FMA tier with the VPMADDUBSW
	// W8A8 quantized GEMM. Requires AVX2+FMA and OS YMM state support.
	SIMDAVX2
	// SIMDNEON is the arm64 baseline assembly tier (4-wide f32 via
	// Advanced SIMD, SMLAL-based W8A16). Always available on arm64 —
	// NEON is part of the aarch64 base ISA.
	SIMDNEON
)

// String returns the level's reporting name, as surfaced in /statusz,
// the ner_kernel_isa gauge, and the bench fingerprint.
func (l SIMDLevel) String() string {
	switch l {
	case SIMDSSE2:
		return "sse2"
	case SIMDAVX2:
		return "avx2-fma"
	case SIMDNEON:
		return "neon"
	default:
		return "generic"
	}
}

// ParseSIMD maps an operator-facing level name (NER_SIMD, -simd) to a
// SIMDLevel. "avx2" and the reporting name "avx2-fma" are synonyms.
// Every level name parses on every architecture — forcing a level the
// local architecture cannot run fails later, in SetSIMD or init, with
// an error that names the architecture and its supported levels.
func ParseSIMD(s string) (SIMDLevel, error) {
	switch s {
	case "generic":
		return SIMDGeneric, nil
	case "sse2":
		return SIMDSSE2, nil
	case "avx2", "avx2-fma":
		return SIMDAVX2, nil
	case "neon":
		return SIMDNEON, nil
	}
	return 0, fmt.Errorf("nn: unknown SIMD level %q (want generic, sse2, avx2, or neon)", s)
}

// simdTier is one architecture-contributed kernel tier: a feature
// gate and the overlay that installs its entry points on top of the
// reference set. Per-arch files declare archTiers in ascending level
// order; simd.go derives bestSIMD/simdSupported/newKernelSet from it.
type simdTier struct {
	level     SIMDLevel
	supported func() bool
	apply     func(*kernelSet)
}

func bestSIMD() SIMDLevel {
	best := SIMDGeneric
	for _, t := range archTiers {
		if t.supported() {
			best = t.level
		}
	}
	return best
}

func simdSupported(l SIMDLevel) bool {
	if l == SIMDGeneric {
		return true
	}
	for _, t := range archTiers {
		if t.level == l {
			return t.supported()
		}
	}
	return false
}

func newKernelSet(l SIMDLevel, m i8Mode) *kernelSet {
	ks := refKernelSet(m)
	ks.level = l
	ks.w8a8 = w8a8For(l, m)
	// Apply every supported tier up to and including the requested
	// level, lowest first, so a higher tier inherits the lower tier's
	// kernels for entry points it does not override (AVX2 keeps the
	// SSE2 W8A16 bodies, for example).
	for _, t := range archTiers {
		if t.level <= l && t.supported() {
			t.apply(ks)
		}
	}
	return ks
}

// simdUnsupportedErr explains why a parsed level cannot run here:
// names the architecture and lists what it does support.
func simdUnsupportedErr(l SIMDLevel) error {
	names := make([]string, 0, 4)
	for _, s := range SupportedSIMDLevels() {
		names = append(names, s.String())
	}
	return fmt.Errorf("nn: SIMD level %s is not supported on %s/%s (supported levels: %s)",
		l, runtime.GOOS, runtime.GOARCH, strings.Join(names, ", "))
}

// i8Mode selects the quantized-GEMM flavor of the I8 tier.
type i8Mode uint8

const (
	// i8ModeAuto currently resolves to W8A16 at every level: on the
	// golden stream the W8A8 affine-activation error crosses the
	// smallest f64 tagger decision margin (≈0.074) and flips a BIO tag,
	// so the faster VPMADDUBSW path stays opt-in (NER_I8_KERNEL=w8a8 /
	// SetI8Mode) until the margin headroom improves. benchpipeline
	// measures both modes and reports the flip counts as data.
	i8ModeAuto i8Mode = iota
	// i8ModeW8A16 pins the int16-activation kernels at every level.
	i8ModeW8A16
	// i8ModeW8A8 pins the uint8-activation kernels at every level
	// (through the reference bodies where no assembly exists).
	i8ModeW8A8
)

// w8a8For resolves the effective quantized-GEMM flavor for a level.
// Auto keeps W8A16 everywhere — see the i8ModeAuto comment for the
// accuracy data behind that choice.
func w8a8For(level SIMDLevel, m i8Mode) bool {
	return m == i8ModeW8A8
}

// kernelSet is one immutable, coherent bundle of kernel entry points.
// Callers load it once per GEMM (kernels()) and never observe a
// half-switched tier.
type kernelSet struct {
	level SIMDLevel
	mode  i8Mode
	w8a8  bool

	dot     func(dst, a, rows []float32)
	quant   func(q []int16, x []float32) float32
	i8r     func(dst []float32, q []int16, wt []int8, scale, b []float32, s float32)
	i8r4    func(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad, dstStride int)
	gelu    func(dst, x []float32) int
	exprow  func(dst, x []float32, scale, max float32) (int, float32)
	quantU8 func(u []uint8, x []float32) (xmin, step float32)
	u8r     func(dst []float32, u []uint8, wt []int8, scale, corr, b []float32, xmin, step float32)
	u8r4    func(dst []float32, u []uint8, aff []float32, wt []int8, scale, corr, b []float32, out, inPad, dstStride int)

	// Attention-combine saxpy: dst[j] accumulates av[r]·b_r[j] for four
	// (axpy4) or one (axpy1) activation coefficients, mul-then-add in
	// ascending r order — bit-identical across tiers, tails included.
	axpy4 func(dst, b []float32, stride int, av []float32)
	axpy1 func(dst, b []float32, av float32)
	// Layer-norm passes: lnSum writes o = x + res over a vector-aligned
	// prefix and returns (covered, partial sum); lnSq returns the
	// partial Σ(o[j]−mean)² over a prefix; lnAffine writes
	// o[j] = (o[j]−mean)·inv·gamma[j] + beta[j] over a prefix
	// (bit-identical to the scalar formula at every tier — no FMA).
	// The caller finishes each tail with the scalar loop; the generic
	// tier covers nothing, keeping its historical scalar bits.
	lnSum    func(o, x, res []float32) (int, float32)
	lnSq     func(o []float32, mean float32) (int, float32)
	lnAffine func(o []float32, mean, inv float32, gamma, beta []float32) int
	// Softmax passes: rowMax returns the max of x[j]·scale over a
	// vector-aligned prefix (exact — max never reassociates); vscale
	// multiplies a prefix of o by inv in place (element-wise, exact).
	rowMax func(x []float32, scale float32) (int, float32)
	vscale func(o []float32, inv float32) int
}

var activeKernels atomic.Pointer[kernelSet]

// defaultLevel is the boot-time level: the best CPU-supported tier,
// or the NER_SIMD override when set. SetSIMDAuto restores it.
var defaultLevel SIMDLevel

func init() {
	level := bestSIMD()
	if env := os.Getenv("NER_SIMD"); env != "" {
		l, err := ParseSIMD(env)
		if err != nil {
			panic(err.Error())
		}
		if !simdSupported(l) {
			panic(fmt.Sprintf("nn: NER_SIMD=%s: %v", env, simdUnsupportedErr(l)))
		}
		level = l
	}
	defaultLevel = level
	m := i8ModeAuto
	if env := os.Getenv("NER_I8_KERNEL"); env != "" {
		var err error
		if m, err = parseI8Mode(env); err != nil {
			panic(err.Error())
		}
	}
	activeKernels.Store(newKernelSet(level, m))
}

// kernels returns the active kernel set. Hot paths call it once per
// GEMM and thread the set through their tile functions.
func kernels() *kernelSet { return activeKernels.Load() }

// ActiveSIMD reports the currently dispatched kernel tier.
func ActiveSIMD() SIMDLevel { return kernels().level }

// BestSIMD reports the highest tier this CPU supports.
func BestSIMD() SIMDLevel { return bestSIMD() }

// SupportedSIMDLevels lists every tier SetSIMD would accept on this
// machine, lowest first. The set is architecture-specific: amd64
// reports generic/sse2[/avx2-fma], arm64 reports generic/neon.
func SupportedSIMDLevels() []SIMDLevel {
	out := []SIMDLevel{SIMDGeneric}
	for _, t := range archTiers {
		if t.supported() {
			out = append(out, t.level)
		}
	}
	return out
}

// SetSIMD pins the kernel tier. It rejects (rather than silently
// degrades) a level the CPU or architecture cannot run. In-flight
// GEMMs finish on the set they loaded; new calls pick up the new tier.
func SetSIMD(l SIMDLevel) error {
	if !simdSupported(l) {
		return simdUnsupportedErr(l)
	}
	activeKernels.Store(newKernelSet(l, kernels().mode))
	return nil
}

// SetSIMDAuto restores the boot-time tier (CPU-detected best, or the
// NER_SIMD override when the process started with one).
func SetSIMDAuto() {
	activeKernels.Store(newKernelSet(defaultLevel, kernels().mode))
}

func parseI8Mode(s string) (i8Mode, error) {
	switch s {
	case "", "auto":
		return i8ModeAuto, nil
	case "w8a16":
		return i8ModeW8A16, nil
	case "w8a8":
		return i8ModeW8A8, nil
	}
	return 0, fmt.Errorf("nn: unknown i8 kernel mode %q (want auto, w8a16, or w8a8)", s)
}

// SetI8Mode pins the quantized-GEMM flavor: "auto" (currently W8A16
// everywhere), "w8a16", or "w8a8". The NER_I8_KERNEL environment
// variable sets the boot-time mode.
func SetI8Mode(s string) error {
	m, err := parseI8Mode(s)
	if err != nil {
		return err
	}
	ks := kernels()
	activeKernels.Store(newKernelSet(ks.level, m))
	return nil
}

// I8KernelMode reports the effective quantized-GEMM flavor of the
// active tier ("w8a8" or "w8a16").
func I8KernelMode() string {
	if kernels().w8a8 {
		return "w8a8"
	}
	return "w8a16"
}

// refKernelSet builds the portable reference tier; newKernelSet
// overlays the architecture tiers on top of it.
func refKernelSet(m i8Mode) *kernelSet {
	return &kernelSet{
		level:    SIMDGeneric,
		mode:     m,
		w8a8:     w8a8For(SIMDGeneric, m),
		dot:      dotRows32Ref,
		quant:    quantRowRef,
		i8r:      i8RowsRef,
		i8r4:     i8Rows4Ref,
		gelu:     geluVecRef,
		exprow:   expRowRef,
		quantU8:  quantRowU8Ref,
		u8r:      u8RowsRef,
		u8r4:     u8Rows4Ref,
		axpy4:    axpy4Ref,
		axpy1:    axpy1Ref,
		lnSum:    lnSumRef,
		lnSq:     lnSqRef,
		lnAffine: lnAffineRef,
		rowMax:   rowMaxRef,
		vscale:   vscaleRef,
	}
}

// Dispatch wrappers: the historical kernel names, now routed through
// the active set. Non-hot-loop callers (MatMulT32Into, GELU, tests)
// use these; the GEMM tile loops load the set once instead.

func dotRows32(dst, a, rows []float32) { kernels().dot(dst, a, rows) }

func quantRow(q []int16, x []float32) float32 { return kernels().quant(q, x) }

func i8Rows(dst []float32, q []int16, wt []int8, scale, b []float32, s float32) {
	kernels().i8r(dst, q, wt, scale, b, s)
}

func i8Rows4(dst []float32, q []int16, sx []float32, wt []int8, scale, b []float32, out, inPad, dstStride int) {
	kernels().i8r4(dst, q, sx, wt, scale, b, out, inPad, dstStride)
}

func geluVec(dst, x []float32) int { return kernels().gelu(dst, x) }

// expRow32 fills dst[i] = exp32(x[i]·scale − max) for a vector-aligned
// prefix of x and returns (covered count, sum of the written values).
// The caller finishes the tail with scalar exp32 (the generic tier
// covers nothing, so the full row stays on the historical scalar
// path). Callers must guarantee x[i]·scale ≤ max — the softmax
// contract — so no overflow clamp is needed. Per-element bits are
// identical across tiers (the kernels avoid FMA); only the returned
// partial sum's accumulation order is tier-specific.
func expRow32(dst, x []float32, scale, max float32) (int, float32) {
	return kernels().exprow(dst, x, scale, max)
}

func quantRowU8(u []uint8, x []float32) (xmin, step float32) {
	return kernels().quantU8(u, x)
}

func u8Rows(dst []float32, u []uint8, wt []int8, scale, corr, b []float32, xmin, step float32) {
	kernels().u8r(dst, u, wt, scale, corr, b, xmin, step)
}

func u8Rows4(dst []float32, u []uint8, aff []float32, wt []int8, scale, corr, b []float32, out, inPad, dstStride int) {
	kernels().u8r4(dst, u, aff, wt, scale, corr, b, out, inPad, dstStride)
}
