package nn

import (
	"math"
	"sync/atomic"
)

// Packed read-only weight mirrors for the reduced-precision inference
// tiers. The float64 Param remains the single source of truth; each
// mirror is derived from it on demand and tagged with the Param
// versions it was built from, so any weight mutation (optimizer step,
// checkpoint load, direct edit followed by Bump) invalidates it and
// the next inference call rebuilds. Mirrors are stored through
// atomic.Pointer: concurrent inference goroutines either see a fully
// built mirror or build their own identical copy, never a torn one.
//
// Layout: both mirrors store the weight TRANSPOSED (out×in) relative
// to the f64 in×out Param. The reduced kernels compute each output as
// a contiguous dot product over one mirror row, which removes the
// strided column walks and dst store/reload traffic of the f64
// saxpy-style kernel.

// pack32 is the float32 mirror of a Dense layer: transposed weights
// plus the bias, both one f64→f32 rounding away from the source.
type pack32 struct {
	wver, bver uint64
	in, out    int
	wt         []float32 // out×in, wt[o*in+i] = W[i][o]
	b          []float32 // len out
}

// i8Group is the quantization group size along the reduction (input)
// dimension: every group of 16 input features gets its own weight
// scale. Group-wise scales keep one outlier weight from inflating the
// quantization step of its whole row — the dominant error source of
// the int8 tier now that activations carry 16 bits — at the cost of
// one extra dequant multiply per group per output. Sixteen is also the
// SIMD-natural unit: one group is exactly two 8-wide int16×int8
// multiply-accumulate blocks in the amd64 kernel.
const i8Group = 16

// packI8 is the int8 mirror of a Dense layer. Quantization is
// symmetric per (output row × input group): scale[o*nb+g] =
// maxabs(W[g-th group, o])/127 and wt[o*in+i] = round(W[i][o]/scale),
// so dequantizing each group's int32 dot product needs one multiply by
// scale·sx (sx = the activation row's dynamic int16 scale). The
// float32 bias is added during dequant ("bias folding"): the integer
// loop sees only the zero-symmetric product, so a zero activation row
// still maps to exactly b — the same zero-skip semantics the f64
// kernel gets from skipping 0·w terms.
// The transposed weight rows are zero-padded to a whole number of
// groups (inPad = nb·i8Group): the kernel's activation plane carries
// matching zero padding, so padded lanes contribute exactly zero and
// the group loop never needs a ragged tail — the shape the SIMD
// kernel requires.
type packI8 struct {
	wver, bver uint64
	in, out    int
	nb         int       // groups per row: ceil(in/i8Group)
	inPad      int       // padded row stride: nb·i8Group
	wt         []int8    // out×inPad, quantized transposed weights
	scale      []float32 // out×nb per-group dequant scales
	b          []float32 // len out
	// corr is the W8A8 affine-activation correction, precomputed per
	// output row: corr[o] = Σ_g scale[o,g]·(Σ_{i∈g} wt[o,i]). With the
	// uint8 activation x̂ = xmin + step·u, the dot product against the
	// quantized weights splits into step·(Σ scale·dot) + xmin·corr[o];
	// the W8A16 kernels never read it.
	corr []float32 // len out
}

// pack32s returns the current float32 mirror, rebuilding it if the
// weight or bias Param changed since the last build.
func (d *Dense) pack32s() *pack32 {
	wv, bv := d.W.Version(), d.B.Version()
	if p := d.p32.Load(); p != nil && p.wver == wv && p.bver == bv {
		return p
	}
	in, out := d.W.W.Rows, d.W.W.Cols
	p := &pack32{wver: wv, bver: bv, in: in, out: out,
		wt: make([]float32, in*out), b: make([]float32, out)}
	w := d.W.W
	for i := 0; i < in; i++ {
		row := w.Row(i)
		for o, v := range row {
			p.wt[o*in+i] = float32(v)
		}
	}
	for o, v := range d.B.W.Data {
		p.b[o] = float32(v)
	}
	d.p32.Store(p)
	return p
}

// packI8s returns the current int8 mirror, rebuilding it if the
// weight or bias Param changed since the last build.
func (d *Dense) packI8s() *packI8 {
	wv, bv := d.W.Version(), d.B.Version()
	if p := d.pi8.Load(); p != nil && p.wver == wv && p.bver == bv {
		return p
	}
	in, out := d.W.W.Rows, d.W.W.Cols
	nb := (in + i8Group - 1) / i8Group
	inPad := nb * i8Group
	p := &packI8{wver: wv, bver: bv, in: in, out: out, nb: nb, inPad: inPad,
		wt: make([]int8, inPad*out), scale: make([]float32, out*nb),
		b: make([]float32, out), corr: make([]float32, out)}
	w := d.W.W
	for o := 0; o < out; o++ {
		for g := 0; g < nb; g++ {
			lo, hi := g*i8Group, (g+1)*i8Group
			if hi > in {
				hi = in // quantize real weights only; the pad stays zero
			}
			maxabs := 0.0
			for i := lo; i < hi; i++ {
				if a := math.Abs(w.Data[i*out+o]); a > maxabs {
					maxabs = a
				}
			}
			if maxabs == 0 {
				// scale stays 0; the group's quantized weights stay 0,
				// and the dequant multiply keeps its contribution at
				// exactly zero (an all-zero column yields exactly the
				// bias).
				continue
			}
			p.scale[o*nb+g] = float32(maxabs / 127)
			inv := 127 / maxabs
			for i := lo; i < hi; i++ {
				q := math.Round(w.Data[i*out+o] * inv)
				if q > 127 {
					q = 127
				} else if q < -127 {
					q = -127
				}
				p.wt[o*inPad+i] = int8(q)
			}
		}
	}
	for o, v := range d.B.W.Data {
		p.b[o] = float32(v)
	}
	// W8A8 correction terms: per output, the scale-weighted sum of each
	// group's quantized weights. Group sums are exact in int32 (16
	// weights in ±127); the float32 combination is fixed at pack time,
	// so the kernel result does not depend on tile geometry.
	for o := 0; o < out; o++ {
		var c float32
		for g := 0; g < nb; g++ {
			var ws int32
			for i := g * i8Group; i < (g+1)*i8Group; i++ {
				ws += int32(p.wt[o*inPad+i])
			}
			c += p.scale[o*nb+g] * float32(ws)
		}
		p.corr[o] = c
	}
	d.pi8.Store(p)
	return p
}

// lnPack32 is the float32 mirror of LayerNorm's affine parameters.
type lnPack32 struct {
	gver, bver uint64
	gamma      []float32
	beta       []float32
}

func (ln *LayerNorm) pack32s() *lnPack32 {
	gv, bv := ln.Gamma.Version(), ln.Beta.Version()
	if p := ln.p32.Load(); p != nil && p.gver == gv && p.bver == bv {
		return p
	}
	dim := ln.Gamma.W.Cols
	p := &lnPack32{gver: gv, bver: bv,
		gamma: make([]float32, dim), beta: make([]float32, dim)}
	for j, v := range ln.Gamma.W.Data {
		p.gamma[j] = float32(v)
	}
	for j, v := range ln.Beta.W.Data {
		p.beta[j] = float32(v)
	}
	ln.p32.Store(p)
	return p
}

// Warm pre-builds the packed mirrors a precision tier needs, so the
// first inference after a weight change doesn't pay the packing cost
// inside a latency-sensitive call. F64 needs no mirrors.
func (d *Dense) Warm(p Precision) {
	switch p {
	case F32:
		d.pack32s()
	case I8:
		d.packI8s()
	}
}

// Warm pre-builds the float32 affine mirror for the reduced tiers
// (both f32 and i8 normalize in float32).
func (ln *LayerNorm) Warm(p Precision) {
	if p != F64 {
		ln.pack32s()
	}
}

// packPtr aliases atomic.Pointer so dense.go stays readable.
type (
	packPtr32   = atomic.Pointer[pack32]
	packPtrI8   = atomic.Pointer[packI8]
	lnPackPtr32 = atomic.Pointer[lnPack32]
)
