package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := FromRows([][]float64{{0, 0, 0, 0}})
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient rows sum to zero.
	sum := 0.0
	for _, v := range grad.Row(0) {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("gradient row sum = %v", sum)
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := NewRNG(3)
	logits := NewMatrix(3, 5)
	rng.NormalInit(logits, 1)
	targets := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, targets)
	num := NumericGrad(func() float64 {
		l, _ := SoftmaxCrossEntropy(logits, targets)
		return l
	}, logits.Data, 1e-6)
	if d := MaxGradDiff(grad.Data, num); d > 1e-6 {
		t.Fatalf("cross-entropy gradient mismatch: %g", d)
	}
}

func TestSoftmaxCrossEntropyMasking(t *testing.T) {
	logits := FromRows([][]float64{{5, 0}, {0, 5}})
	lossAll, _ := SoftmaxCrossEntropy(logits, []int{0, 0})
	lossMasked, grad := SoftmaxCrossEntropy(logits, []int{0, -1})
	if lossMasked >= lossAll {
		t.Fatalf("masking the high-loss row should lower loss: %v vs %v", lossMasked, lossAll)
	}
	for _, v := range grad.Row(1) {
		if v != 0 {
			t.Fatal("masked row must have zero gradient")
		}
	}
	lossNone, _ := SoftmaxCrossEntropy(logits, []int{-1, -1})
	if lossNone != 0 {
		t.Fatalf("fully masked batch loss = %v, want 0", lossNone)
	}
}

func TestCosineDistanceGradNumeric(t *testing.T) {
	a := []float64{0.3, -0.8, 0.5, 1.2}
	b := []float64{-0.1, 0.9, 0.4, -0.7}
	da, db := CosineDistanceGrad(a, b)
	numA := NumericGrad(func() float64 { return CosineDistance(a, b) }, a, 1e-6)
	numB := NumericGrad(func() float64 { return CosineDistance(a, b) }, b, 1e-6)
	if d := MaxGradDiff(da, numA); d > 1e-7 {
		t.Fatalf("da mismatch: %g", d)
	}
	if d := MaxGradDiff(db, numB); d > 1e-7 {
		t.Fatalf("db mismatch: %g", d)
	}
}

func TestCosineDistanceGradZeroVector(t *testing.T) {
	da, db := CosineDistanceGrad([]float64{0, 0}, []float64{1, 2})
	for _, v := range append(da, db...) {
		if v != 0 {
			t.Fatal("zero-vector gradient must be zero")
		}
	}
}

func TestTripletCosineLossInactive(t *testing.T) {
	// Positive identical to anchor, negative orthogonal: d(a,p)=0,
	// d(a,n)=1, margin 1 ⇒ hinge exactly at zero.
	a := []float64{1, 0}
	loss, da, dp, dn := TripletCosineLoss(a, []float64{2, 0}, []float64{0, 5}, 1)
	if loss != 0 {
		t.Fatalf("loss = %v, want 0", loss)
	}
	for _, v := range append(append(da, dp...), dn...) {
		if v != 0 {
			t.Fatal("inactive triplet must have zero gradients")
		}
	}
}

func TestTripletCosineLossActiveGradients(t *testing.T) {
	a := []float64{0.9, 0.2, -0.4}
	p := []float64{-0.5, 0.8, 0.1}
	n := []float64{0.8, 0.3, -0.3}
	loss, da, dp, dn := TripletCosineLoss(a, p, n, 1)
	if loss <= 0 {
		t.Fatalf("expected active triplet, loss = %v", loss)
	}
	f := func() float64 {
		l, _, _, _ := TripletCosineLoss(a, p, n, 1)
		return l
	}
	if d := MaxGradDiff(da, NumericGrad(f, a, 1e-6)); d > 1e-7 {
		t.Fatalf("anchor grad mismatch: %g", d)
	}
	if d := MaxGradDiff(dp, NumericGrad(f, p, 1e-6)); d > 1e-7 {
		t.Fatalf("positive grad mismatch: %g", d)
	}
	if d := MaxGradDiff(dn, NumericGrad(f, n, 1e-6)); d > 1e-7 {
		t.Fatalf("negative grad mismatch: %g", d)
	}
}

func TestTripletLossNonNegativeProperty(t *testing.T) {
	f := func(a, p, n [4]float64) bool {
		loss, _, _, _ := TripletCosineLoss(sanitizeVec(a), sanitizeVec(p), sanitizeVec(n), 1)
		return loss >= 0 && !math.IsNaN(loss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftNNLossPrefersTightClusters(t *testing.T) {
	// Well-separated classes should have lower loss than mixed ones.
	tight := [][]float64{{1, 0}, {0.99, 0.05}, {0, 1}, {0.05, 0.99}}
	labels := []int{0, 0, 1, 1}
	mixed := [][]float64{{1, 0}, {0, 1}, {0.99, 0.05}, {0.05, 0.99}}
	lossTight, _ := SoftNearestNeighborLoss(tight, labels, 0.5)
	lossMixed, _ := SoftNearestNeighborLoss(mixed, labels, 0.5)
	if lossTight >= lossMixed {
		t.Fatalf("tight clusters should score lower: %v vs %v", lossTight, lossMixed)
	}
}

func TestSoftNNLossGradientNumeric(t *testing.T) {
	embs := [][]float64{
		{0.5, -0.2, 0.7},
		{0.4, 0.1, 0.6},
		{-0.6, 0.8, -0.1},
		{-0.5, 0.7, 0.2},
	}
	labels := []int{0, 0, 1, 1}
	_, grads := SoftNearestNeighborLoss(embs, labels, 0.7)
	for i := range embs {
		num := NumericGrad(func() float64 {
			l, _ := SoftNearestNeighborLoss(embs, labels, 0.7)
			return l
		}, embs[i], 1e-6)
		if d := MaxGradDiff(grads[i], num); d > 1e-6 {
			t.Fatalf("embedding %d gradient mismatch: %g", i, d)
		}
	}
}

func TestSoftNNLossDegenerateBatches(t *testing.T) {
	// Single element: no neighbours, loss 0.
	loss, _ := SoftNearestNeighborLoss([][]float64{{1, 0}}, []int{0}, 0.5)
	if loss != 0 {
		t.Fatalf("singleton loss = %v", loss)
	}
	// All distinct classes: no positive pairs anywhere.
	loss, grads := SoftNearestNeighborLoss([][]float64{{1, 0}, {0, 1}}, []int{0, 1}, 0.5)
	if loss != 0 {
		t.Fatalf("no-positive loss = %v", loss)
	}
	for _, g := range grads {
		for _, v := range g {
			if v != 0 {
				t.Fatal("no-positive gradients must be zero")
			}
		}
	}
}
