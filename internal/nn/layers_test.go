package nn

import (
	"math"
	"testing"
)

// checkLayerGradients runs a generic finite-difference gradient check
// on a layer: it verifies both the input gradient and every parameter
// gradient against numeric estimates of a scalar pseudo-loss
// L = Σ c_ij · out_ij with fixed random coefficients c.
func checkLayerGradients(t *testing.T, layer Layer, rows, cols int, seed int64, tol float64) {
	t.Helper()
	rng := NewRNG(seed)
	x := NewMatrix(rows, cols)
	rng.NormalInit(x, 1)
	coeff := NewMatrix(0, 0)

	lossFn := func() float64 {
		out := layer.Forward(x.Clone(), true)
		if coeff.Rows != out.Rows || coeff.Cols != out.Cols {
			coeff = NewMatrix(out.Rows, out.Cols)
			crng := NewRNG(seed + 1)
			crng.NormalInit(coeff, 1)
		}
		s := 0.0
		for i, v := range out.Data {
			s += coeff.Data[i] * v
		}
		return s
	}

	// Analytic pass.
	lossFn()
	ZeroGrads(layer.Params())
	dx := layer.Backward(coeff.Clone())

	numDX := NumericGrad(lossFn, x.Data, 1e-5)
	if d := MaxGradDiff(dx.Data, numDX); d > tol {
		t.Fatalf("input gradient mismatch: max diff %g > %g", d, tol)
	}
	for _, p := range layer.Params() {
		analytic := append([]float64(nil), p.G.Data...)
		num := NumericGrad(lossFn, p.W.Data, 1e-5)
		if d := MaxGradDiff(analytic, num); d > tol {
			t.Fatalf("param %s gradient mismatch: max diff %g > %g", p.Name, d, tol)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := NewRNG(11)
	checkLayerGradients(t, NewDense("d", 4, 3, rng), 5, 4, 21, 1e-6)
}

func TestDenseForwardKnown(t *testing.T) {
	rng := NewRNG(1)
	d := NewDense("d", 2, 2, rng)
	copy(d.W.W.Data, []float64{1, 2, 3, 4})
	copy(d.B.W.Data, []float64{10, 20})
	out := d.Forward(FromRows([][]float64{{1, 1}}), false)
	if out.At(0, 0) != 14 || out.At(0, 1) != 26 {
		t.Fatalf("Dense forward = %v", out.Data)
	}
}

func TestReLUGradients(t *testing.T) {
	checkLayerGradients(t, NewReLU(), 4, 6, 31, 1e-6)
}

func TestReLUForward(t *testing.T) {
	out := NewReLU().Forward(FromRows([][]float64{{-1, 0, 2}}), false)
	if out.At(0, 0) != 0 || out.At(0, 1) != 0 || out.At(0, 2) != 2 {
		t.Fatalf("ReLU forward = %v", out.Data)
	}
}

func TestTanhGradients(t *testing.T) {
	checkLayerGradients(t, NewTanh(), 4, 6, 41, 1e-6)
}

func TestGELUGradients(t *testing.T) {
	checkLayerGradients(t, NewGELU(), 4, 6, 51, 1e-5)
}

func TestLayerNormGradients(t *testing.T) {
	checkLayerGradients(t, NewLayerNorm("ln", 6), 4, 6, 61, 1e-5)
}

func TestLayerNormNormalizesRows(t *testing.T) {
	ln := NewLayerNorm("ln", 4)
	out := ln.Forward(FromRows([][]float64{{1, 2, 3, 4}}), false)
	mean := 0.0
	for _, v := range out.Row(0) {
		mean += v
	}
	mean /= 4
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("LayerNorm output mean = %v, want ~0", mean)
	}
}

func TestBatchNormGradients(t *testing.T) {
	checkLayerGradients(t, NewBatchNorm("bn", 5), 6, 5, 71, 1e-5)
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	rng := NewRNG(5)
	// Train on a few batches with mean ~3.
	for i := 0; i < 200; i++ {
		x := NewMatrix(8, 2)
		for j := range x.Data {
			x.Data[j] = 3 + rng.NormFloat64()
		}
		bn.Forward(x, true)
	}
	if math.Abs(bn.RunningMean[0]-3) > 0.5 {
		t.Fatalf("running mean = %v, want ~3", bn.RunningMean[0])
	}
	// Inference on the mean input should map near zero pre-affine.
	out := bn.Forward(FromRows([][]float64{{3, 3}}), false)
	if math.Abs(out.At(0, 0)) > 0.5 {
		t.Fatalf("inference output = %v, want ~0", out.At(0, 0))
	}
}

func TestDropoutTrainAndEval(t *testing.T) {
	rng := NewRNG(9)
	d := NewDropout(0.5, rng)
	x := NewMatrix(10, 10)
	x.Fill(1)
	out := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatalf("dropout should both keep and drop: zeros=%d twos=%d", zeros, twos)
	}
	eval := d.Forward(x, false)
	for _, v := range eval.Data {
		if v != 1 {
			t.Fatal("dropout must be identity at inference")
		}
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	rng := NewRNG(10)
	d := NewDropout(0.5, rng)
	x := NewMatrix(4, 4)
	x.Fill(1)
	out := d.Forward(x, true)
	dout := NewMatrix(4, 4)
	dout.Fill(1)
	dx := d.Backward(dout)
	for i := range out.Data {
		if (out.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("gradient mask must match forward mask")
		}
	}
}

func TestSequentialComposesAndBackprops(t *testing.T) {
	rng := NewRNG(12)
	seq := NewSequential(
		NewDense("l1", 3, 5, rng),
		NewReLU(),
		NewDense("l2", 5, 2, rng),
	)
	if len(seq.Params()) != 4 {
		t.Fatalf("Params count = %d, want 4", len(seq.Params()))
	}
	checkLayerGradients(t, seq, 4, 3, 81, 1e-5)
}

func TestClipGrads(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.G.Data[0], p.G.Data[1] = 3, 4
	norm := ClipGrads([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	if g := math.Sqrt(p.G.Data[0]*p.G.Data[0] + p.G.Data[1]*p.G.Data[1]); math.Abs(g-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", g)
	}
}
