package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// forEachSIMDLevel runs fn as a subtest once per kernel tier this
// machine supports, with the dispatch pinned to that tier, and
// restores the boot tier afterwards. Tests using it must not run in
// parallel — the dispatch is process-global.
func forEachSIMDLevel(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	defer SetSIMDAuto()
	for _, l := range SupportedSIMDLevels() {
		t.Run(l.String(), func(t *testing.T) {
			if err := SetSIMD(l); err != nil {
				t.Fatal(err)
			}
			fn(t)
		})
	}
}

func TestParseSIMDRoundTrip(t *testing.T) {
	for _, l := range []SIMDLevel{SIMDGeneric, SIMDSSE2, SIMDAVX2, SIMDNEON} {
		got, err := ParseSIMD(l.String())
		if err != nil || got != l {
			t.Errorf("ParseSIMD(%q) = %v, %v; want %v", l.String(), got, err, l)
		}
	}
	if got, err := ParseSIMD("avx2"); err != nil || got != SIMDAVX2 {
		t.Errorf("ParseSIMD(avx2) = %v, %v; want avx2-fma", got, err)
	}
	for _, bad := range []string{"", "sse4", "avx512", "AVX2"} {
		if _, err := ParseSIMD(bad); err == nil {
			t.Errorf("ParseSIMD(%q) accepted; want error", bad)
		}
	}
}

func TestSIMDLevelSelection(t *testing.T) {
	levels := SupportedSIMDLevels()
	if len(levels) == 0 || levels[0] != SIMDGeneric {
		t.Fatalf("SupportedSIMDLevels() = %v; want generic first", levels)
	}
	best := BestSIMD()
	found := false
	for _, l := range levels {
		if l == best {
			found = true
		}
	}
	if !found {
		t.Fatalf("BestSIMD() = %v not in supported set %v", best, levels)
	}
	defer SetSIMDAuto()
	for _, l := range levels {
		if err := SetSIMD(l); err != nil {
			t.Fatalf("SetSIMD(%v): %v", l, err)
		}
		if got := ActiveSIMD(); got != l {
			t.Fatalf("ActiveSIMD() = %v after SetSIMD(%v)", got, l)
		}
	}
	SetSIMDAuto()
	if unknown := SIMDNEON + 1; SetSIMD(unknown) == nil {
		t.Fatal("SetSIMD accepted an unknown level")
	}
}

func TestSetI8Mode(t *testing.T) {
	defer SetI8Mode("auto")
	if err := SetI8Mode("int8"); err == nil {
		t.Fatal("SetI8Mode(int8) accepted; want error")
	}
	for _, c := range []struct{ mode, want string }{
		{"auto", "w8a16"}, // auto stays W8A16 until the golden-margin headroom improves
		{"w8a16", "w8a16"},
		{"w8a8", "w8a8"},
	} {
		if err := SetI8Mode(c.mode); err != nil {
			t.Fatalf("SetI8Mode(%s): %v", c.mode, err)
		}
		if got := I8KernelMode(); got != c.want {
			t.Fatalf("I8KernelMode() = %q after SetI8Mode(%s); want %q", got, c.mode, c.want)
		}
	}
}

// TestDotRows32MatchesRefAcrossLevels checks every dispatched f32 dot
// kernel against the portable reference on ragged, empty, and
// tail-only widths. The tiers accumulate in different widths (and the
// AVX2 tier contracts with FMA), so the comparison is the analytic
// dot-product condition bound, not bit equality.
func TestDotRows32MatchesRefAcrossLevels(t *testing.T) {
	forEachSIMDLevel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(29))
		for _, in := range []int{0, 1, 3, 4, 7, 8, 15, 16, 17, 31, 32, 33, 63, 100} {
			for _, outs := range []int{1, 2, 5} {
				a := make([]float32, in)
				rows := make([]float32, in*outs)
				for i := range a {
					a[i] = float32(rng.NormFloat64())
				}
				for i := range rows {
					rows[i] = float32(rng.NormFloat64())
				}
				got := make([]float32, outs)
				want := make([]float32, outs)
				dotRows32(got, a, rows)
				dotRows32Ref(want, a, rows)
				for j := range got {
					var sumabs float64
					for k := 0; k < in; k++ {
						sumabs += math.Abs(float64(a[k]) * float64(rows[j*in+k]))
					}
					tol := 1e-5*sumabs + 1e-6
					if diff := math.Abs(float64(got[j]) - float64(want[j])); diff > tol {
						t.Fatalf("in=%d out %d/%d: |%g − %g| = %g > %g", in, j, outs, got[j], want[j], diff, tol)
					}
				}
			}
		}
	})
}

// TestQuantRowU8Properties pins the W8A8 quantizer contract at every
// tier: dequantization within half a step, values inside the
// VPMADDUBSW pairing bound (u ≤ 128), zeroed padding, and the
// constant/empty-row degenerate cases.
func TestQuantRowU8Properties(t *testing.T) {
	forEachSIMDLevel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(31))
		for _, n := range []int{1, 2, 3, 4, 7, 8, 15, 16, 17, 24, 45} {
			inPad := (n + i8Group - 1) / i8Group * i8Group
			x := make([]float32, n)
			for i := range x {
				x[i] = float32(rng.NormFloat64())
			}
			u := make([]uint8, inPad)
			for i := range u {
				u[i] = 0xAA // must be overwritten (pad included)
			}
			xmin, step := quantRowU8(u, x)
			if n == 1 {
				// single-element rows are constant: step 0, all-zero u
				if xmin != x[0] || step != 0 {
					t.Fatalf("n=1: (xmin, step) = (%g, %g), want (%g, 0)", xmin, step, x[0])
				}
			} else if step <= 0 {
				t.Fatalf("n=%d: step %g for non-constant row", n, step)
			}
			for i, v := range x {
				deq := float64(xmin) + float64(step)*float64(u[i])
				if diff := math.Abs(float64(v) - deq); diff > 0.502*float64(step)+1e-6 {
					t.Fatalf("n=%d u[%d]=%d: |%g − %g| = %g > step/2 = %g", n, i, u[i], v, deq, diff, step/2)
				}
				if u[i] > 128 {
					t.Fatalf("n=%d: u[%d] = %d breaks the ≤128 pairing bound", n, i, u[i])
				}
			}
			for i := n; i < inPad; i++ {
				if u[i] != 0 {
					t.Fatalf("n=%d: padding u[%d] = %d, want 0", n, i, u[i])
				}
			}
			// constant row
			for i := range x {
				x[i] = 3.25
			}
			if xmin, step := quantRowU8(u, x); xmin != 3.25 || step != 0 {
				t.Fatalf("n=%d: constant row (xmin, step) = (%g, %g), want (3.25, 0)", n, xmin, step)
			}
			for i, v := range u {
				if v != 0 {
					t.Fatalf("n=%d: constant row u[%d] = %d, want 0", n, i, v)
				}
			}
		}
		// empty row: all-padding u, (0, 0)
		u := []uint8{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}
		if xmin, step := quantRowU8(u, nil); xmin != 0 || step != 0 {
			t.Fatalf("empty row (xmin, step) = (%g, %g), want (0, 0)", xmin, step)
		}
		for i, v := range u {
			if v != 0 {
				t.Fatalf("empty row u[%d] = %d, want 0", i, v)
			}
		}
	})
}

// TestU8RowsMatchesRefAcrossLevels feeds identical quantized inputs to
// the dispatched W8A8 row kernel and the portable reference. Group
// dots are exact int32 in both, so the only divergence is float
// association in the scale-weighted sum — bounded tightly against the
// float64-evaluated expected value.
func TestU8RowsMatchesRefAcrossLevels(t *testing.T) {
	forEachSIMDLevel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(37))
		for _, shape := range []struct{ in, out int }{{16, 3}, {32, 8}, {48, 24}, {80, 7}, {16, 1}} {
			nb := shape.in / i8Group
			wt := make([]int8, shape.out*shape.in)
			scale := make([]float32, shape.out*nb)
			corr := make([]float32, shape.out)
			b := make([]float32, shape.out)
			for i := range wt {
				wt[i] = int8(rng.Intn(255) - 127)
			}
			for i := range scale {
				scale[i] = float32(rng.Float64() * 0.01)
			}
			for o := range b {
				b[o] = float32(rng.NormFloat64())
				corr[o] = float32(rng.NormFloat64())
			}
			u := make([]uint8, shape.in)
			for i := range u {
				u[i] = uint8(rng.Intn(129))
			}
			xmin := float32(rng.NormFloat64())
			step := float32(rng.Float64() * 1e-2)
			got := make([]float32, shape.out)
			want := make([]float32, shape.out)
			u8Rows(got, u, wt, scale, corr, b, xmin, step)
			u8RowsRef(want, u, wt, scale, corr, b, xmin, step)
			for o := range got {
				// float64 magnitude of the accumulated terms → tolerance
				var accAbs float64
				for g := 0; g < nb; g++ {
					var dot int64
					for i := g * i8Group; i < (g+1)*i8Group; i++ {
						dot += int64(u[i]) * int64(wt[o*shape.in+i])
					}
					if dot < 0 {
						dot = -dot
					}
					accAbs += float64(scale[o*nb+g]) * float64(dot)
				}
				tol := 1e-5*(float64(step)*accAbs+math.Abs(float64(xmin)*float64(corr[o]))+math.Abs(float64(b[o]))) + 1e-6
				if diff := math.Abs(float64(got[o]) - float64(want[o])); diff > tol {
					t.Fatalf("in=%d out=%d o=%d: |%g − %g| = %g > %g", shape.in, shape.out, o, got[o], want[o], diff, tol)
				}
			}
		}
	})
}

// TestU8Rows4MatchesSingleRow is the W8A8 counterpart of
// TestI8Rows4MatchesSingleRow: within one tier a row must compute
// identical bits through the 4-row blocked kernel and the single-row
// one, at full width and at a narrow column tile (dstStride > out).
func TestU8Rows4MatchesSingleRow(t *testing.T) {
	forEachSIMDLevel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(41))
		for _, shape := range []struct{ in, out int }{{16, 3}, {32, 8}, {48, 24}, {5, 7}} {
			inPad := (shape.in + i8Group - 1) / i8Group * i8Group
			nb := inPad / i8Group
			wt := make([]int8, shape.out*inPad)
			scale := make([]float32, shape.out*nb)
			corr := make([]float32, shape.out)
			b := make([]float32, shape.out)
			for o := 0; o < shape.out; o++ {
				for j := 0; j < shape.in; j++ {
					wt[o*inPad+j] = int8(rng.Intn(255) - 127)
				}
				for g := 0; g < nb; g++ {
					scale[o*nb+g] = float32(rng.Float64() * 0.01)
				}
				b[o] = float32(rng.NormFloat64())
				corr[o] = float32(rng.NormFloat64())
			}
			u := make([]uint8, 4*inPad)
			aff := make([]float32, 8)
			for r := 0; r < 4; r++ {
				for j := 0; j < shape.in; j++ {
					u[r*inPad+j] = uint8(rng.Intn(129))
				}
				aff[2*r] = float32(rng.NormFloat64())
				aff[2*r+1] = float32(rng.Float64() * 1e-2)
			}
			for _, stride := range []int{shape.out, shape.out + 5} {
				blocked := make([]float32, 3*stride+shape.out)
				single := make([]float32, 3*stride+shape.out)
				u8Rows4(blocked, u, aff, wt, scale, corr, b, shape.out, inPad, stride)
				for r := 0; r < 4; r++ {
					u8Rows(single[r*stride:r*stride+shape.out], u[r*inPad:(r+1)*inPad], wt, scale, corr, b, aff[2*r], aff[2*r+1])
				}
				for i := range blocked {
					if math.Float32bits(blocked[i]) != math.Float32bits(single[i]) {
						t.Fatalf("in=%d out=%d stride=%d: element %d blocked %g vs single %g",
							shape.in, shape.out, stride, i, blocked[i], single[i])
					}
				}
			}
		}
	})
}

// TestGEMMTilingBitIdentity pins the cooperative-tiling contract: the
// packed GEMMs produce bit-identical output at every worker count,
// column-tile floor, and kernel tier — including shapes where rows <
// workers so the planner tiles the output dimension, and ragged spans
// from a forced 1-element tile floor.
func TestGEMMTilingBitIdentity(t *testing.T) {
	shapes := []struct{ rows, in, out int }{
		{3, 256, 256}, // rows < workers → column tiling, ragged col spans
		{6, 256, 96},  // mixed row+col tiling, 4-row blocks + tail
		{32, 64, 128}, // rows ≥ workers → pure row sharding
	}
	defer func() {
		SetMatMulWorkers(0)
		minGEMMColTile = 32
		SetI8Mode("auto")
	}()
	forEachSIMDLevel(t, func(t *testing.T) {
		rng := NewRNG(59)
		for _, sh := range shapes {
			d := NewDense("t", sh.in, sh.out, rng)
			rng.NormalInit(d.B.W, 0.5)
			x := down(randomMatrix(sh.rows, sh.in, int64(500+sh.rows)))

			SetMatMulWorkers(1)
			minGEMMColTile = 32
			base32 := NewMatrix32(sh.rows, sh.out)
			d.InferInto32(base32, x)
			var qs I8Scratch
			baseI8 := NewMatrix32(sh.rows, sh.out)
			if err := SetI8Mode("w8a16"); err != nil {
				t.Fatal(err)
			}
			d.InferIntoI8(baseI8, x, &qs)
			baseU8 := NewMatrix32(sh.rows, sh.out)
			if err := SetI8Mode("w8a8"); err != nil {
				t.Fatal(err)
			}
			d.InferIntoI8(baseU8, x, &qs)

			for _, workers := range []int{2, 3, 8, 16} {
				for _, colTile := range []int{1, 8, 32} {
					SetMatMulWorkers(workers)
					minGEMMColTile = colTile
					got := NewMatrix32(sh.rows, sh.out)
					d.InferInto32(got, x)
					assertBits32(t, sh, workers, colTile, "f32", got, base32)
					if err := SetI8Mode("w8a16"); err != nil {
						t.Fatal(err)
					}
					d.InferIntoI8(got, x, &qs)
					assertBits32(t, sh, workers, colTile, "w8a16", got, baseI8)
					if err := SetI8Mode("w8a8"); err != nil {
						t.Fatal(err)
					}
					d.InferIntoI8(got, x, &qs)
					assertBits32(t, sh, workers, colTile, "w8a8", got, baseU8)
				}
			}
			SetMatMulWorkers(0)
		}
	})
}

func assertBits32(t *testing.T, sh struct{ rows, in, out int }, workers, colTile int, path string, got, want *Matrix32) {
	t.Helper()
	for i, v := range got.Data {
		if math.Float32bits(v) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%dx%d→%d %s workers=%d colTile=%d: element %d = %g, serial %g",
				sh.rows, sh.in, sh.out, path, workers, colTile, i, v, want.Data[i])
		}
	}
}

// TestGemmTilesPlan sanity-checks the 2D split planner and span
// arithmetic: small multiplies stay serial, tiles cover [0, n) exactly
// once, and the column split never goes below the tile floor.
func TestGemmTilesPlan(t *testing.T) {
	defer SetMatMulWorkers(0)
	SetMatMulWorkers(8)
	if p, _, _ := gemmTiles(4, 8, 1000); p != nil {
		t.Fatal("small multiply got a pool")
	}
	p, rt, ct := gemmTiles(3, 256, 1<<20)
	if p == nil || rt != 3 || ct < 2 {
		t.Fatalf("rows<workers plan = (%v, %d, %d); want col tiling", p != nil, rt, ct)
	}
	if max := 256 / minGEMMColTile; ct > max {
		t.Fatalf("colTiles %d breaks the %d floor", ct, minGEMMColTile)
	}
	p, rt, ct = gemmTiles(32, 256, 1<<20)
	if p == nil || rt != 8 || ct != 1 {
		t.Fatalf("rows≥workers plan = (%v, %d, %d); want pure row sharding", p != nil, rt, ct)
	}
	SetMatMulWorkers(1)
	if p, _, _ := gemmTiles(32, 256, 1<<20); p != nil {
		t.Fatal("workers=1 got a pool")
	}
	for _, c := range []struct{ parts, n int }{{1, 7}, {3, 7}, {3, 256}, {6, 256}, {7, 5}, {16, 96}} {
		next := 0
		for s := 0; s < c.parts; s++ {
			lo, hi := tileSpan(s, c.parts, c.n)
			if lo != next || hi < lo {
				t.Fatalf("tileSpan(%d, %d, %d) = [%d, %d); want lo %d", s, c.parts, c.n, lo, hi, next)
			}
			next = hi
		}
		if next != c.n {
			t.Fatalf("spans over %d/%d end at %d", c.n, c.parts, next)
		}
	}
}

// TestKernelSwitchHammer drives concurrent inference while the
// dispatched tier and i8 flavor flip continuously. The atomic
// kernelSet must keep every individual GEMM internally coherent (one
// tier, one activation format); run under -race this also proves the
// switch path publishes safely.
func TestKernelSwitchHammer(t *testing.T) {
	rng := NewRNG(61)
	d := NewDense("h", 64, 48, rng)
	rng.NormalInit(d.B.W, 0.5)
	x := down(randomMatrix(8, 64, 67))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qs I8Scratch
			dst := NewMatrix32(8, 48)
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.InferInto32(dst, x)
				d.InferIntoI8(dst, x, &qs)
			}
		}()
	}
	levels := SupportedSIMDLevels()
	modes := []string{"auto", "w8a16", "w8a8"}
	for i := 0; i < 300; i++ {
		if err := SetSIMD(levels[i%len(levels)]); err != nil {
			t.Error(err)
			break
		}
		if err := SetI8Mode(modes[i%len(modes)]); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	SetSIMDAuto()
	SetI8Mode("auto")
}
