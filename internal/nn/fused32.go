package nn

import "math"

// Reduced-precision inference kernels. These are the f32/i8 siblings
// of the fused f64 kernels in fused.go, operating on Matrix32 scratch
// planes and the packed weight mirrors from pack.go. They drop the
// bit-identity contract of the f64 path in exchange for bandwidth:
// the correctness contract here is the relative-error bound pinned by
// the property tests in precision_test.go plus annotation-equal
// end-to-end output on the golden streams (internal/core).
//
// Kernel shape: the f64 GEMM walks b row-wise (saxpy) and re-loads
// every dst element once per k; the reduced kernels instead read the
// TRANSPOSED mirror so each output element is one contiguous dot
// product — no dst traffic, no zero-check branches, and the bias folds
// into the same pass. The per-row inner loops (dotRows32, i8Rows) live
// in simd_amd64.s / simd_generic.go: SSE2 on amd64 — four-lane f32
// multiply-accumulate, and PMADDWD int16×int8 for the quantized tier —
// with portable pure-Go bodies everywhere else.

// InferInto32 computes dst = x·W + b over the float32 weight mirror.
// dst must be x.Rows×Out and must not alias x. The multiply is tiled
// 2D (rows × output columns, gemmTiles) across the matmul pool; every
// output element is one contiguous dot product regardless of tile
// geometry, so shard boundaries never change the bits.
func (d *Dense) InferInto32(dst, x *Matrix32) {
	ks := kernels()
	pk := d.pack32s()
	checkInferShape(dst.Rows, dst.Cols, x.Rows, x.Cols, pk.in, pk.out)
	if p, rt, ct := gemmTiles(x.Rows, pk.out, x.Rows*pk.in*pk.out); p != nil {
		p.ForEach(rt*ct, func(t int) {
			r0, r1 := tileSpan(t/ct, rt, x.Rows)
			o0, o1 := tileSpan(t%ct, ct, pk.out)
			inferTile32(dst, x, pk, ks, r0, r1, o0, o1)
		})
	} else {
		inferTile32(dst, x, pk, ks, 0, x.Rows, 0, pk.out)
	}
}

// inferTile32 computes one tile of the f32 GEMM: activation rows
// [r0,r1) × outputs [o0,o1). The weight mirror is row-major in the
// output dimension, so a column tile is a contiguous wt slice.
func inferTile32(dst, x *Matrix32, pk *pack32, ks *kernelSet, r0, r1, o0, o1 int) {
	in := pk.in
	wt := pk.wt[o0*in : o1*in]
	b := pk.b[o0:o1]
	for i := r0; i < r1; i++ {
		or := dst.Row(i)[o0:o1]
		ks.dot(or, x.Row(i), wt)
		for o, bv := range b {
			or[o] += bv
		}
	}
}

// I8Scratch holds the per-call buffers of the int8-weight kernel: the
// quantized activation plane and its per-row dynamic quantization
// parameters — int16 q + scale sx for W8A16, uint8 u + (xmin, step)
// pairs aff for W8A8. One instance per concurrent caller (it lives in
// the inference arena); buffers grow on demand and are reused across
// calls, so a mode switch costs at most one extra plane allocation.
type I8Scratch struct {
	q   []int16
	sx  []float32
	u   []uint8
	aff []float32
}

func (s *I8Scratch) ensure(rows, cols int) ([]int16, []float32) {
	n := rows * cols
	if cap(s.q) < n {
		s.q = make([]int16, n)
	}
	if cap(s.sx) < rows {
		s.sx = make([]float32, rows)
	}
	return s.q[:n], s.sx[:rows]
}

func (s *I8Scratch) ensureU8(rows, cols int) ([]uint8, []float32) {
	n := rows * cols
	if cap(s.u) < n {
		s.u = make([]uint8, n)
	}
	if cap(s.aff) < 2*rows {
		s.aff = make([]float32, 2*rows)
	}
	return s.u[:n], s.aff[:2*rows]
}

// InferIntoI8 computes dst ≈ x·W + b through the int8 weight mirror.
// The weights carry the tier's bandwidth win (one byte per element,
// group-wise scales); activations are quantized dynamically per row,
// in one of two formats selected by the active kernel set:
//
//   - W8A16 (default below AVX2): symmetric int16, scale
//     maxabs/32767. Each group's Σ q·w accumulates exactly in int32;
//     dequantization multiplies by the group's weight scale, sums the
//     groups in float32, and applies the row's activation scale and
//     the float32 bias last (dst = sx·Σ + b).
//   - W8A8 (default on AVX2): affine uint8 on the row's [min, max]
//     range, u ∈ [0,127] so the VPMADDUBSW pair sums stay exact in
//     int16. The row finishes as dst = step·Σ + xmin·corr + b, with
//     corr precomputed at pack time (see pack.go).
//
// In both formats a zero activation row yields exactly b (sx/step and
// all quantized lanes are 0, and for W8A8 xmin = 0 kills the corr
// term) — the same semantics the f64 kernel's zero-skip gives padded
// rows. The quantized plane is padded to whole groups with zeros,
// matching the pack's padded weight rows, so the group loop has no
// ragged tail. dst must be x.Rows×Out and must not alias x.
// The kernel set is loaded once per call and threaded through the
// tile functions: a concurrent SetSIMD/SetI8Mode can therefore never
// mix the W8A16 and W8A8 activation formats inside one multiply.
func (d *Dense) InferIntoI8(dst, x *Matrix32, qs *I8Scratch) {
	ks := kernels()
	pk := d.packI8s()
	checkInferShape(dst.Rows, dst.Cols, x.Rows, x.Cols, pk.in, pk.out)
	rows, in, inPad := x.Rows, x.Cols, pk.inPad
	flops := rows * in * pk.out
	if ks.w8a8 {
		u, aff := qs.ensureU8(rows, inPad)
		for i := 0; i < rows; i++ {
			// The quantizers also zero the group-padding tail — required
			// every call because the scratch is shared across layer shapes.
			aff[2*i], aff[2*i+1] = ks.quantU8(u[i*inPad:i*inPad+inPad], x.Row(i))
		}
		if p, rt, ct := gemmTiles(rows, pk.out, flops); p != nil {
			p.ForEach(rt*ct, func(t int) {
				r0, r1 := tileSpan(t/ct, rt, rows)
				o0, o1 := tileSpan(t%ct, ct, pk.out)
				inferTileU8(dst, u, aff, pk, ks, r0, r1, o0, o1)
			})
		} else {
			inferTileU8(dst, u, aff, pk, ks, 0, rows, 0, pk.out)
		}
		return
	}
	q, sx := qs.ensure(rows, inPad)
	for i := 0; i < rows; i++ {
		sx[i] = ks.quant(q[i*inPad:i*inPad+inPad], x.Row(i))
	}
	if p, rt, ct := gemmTiles(rows, pk.out, flops); p != nil {
		p.ForEach(rt*ct, func(t int) {
			r0, r1 := tileSpan(t/ct, rt, rows)
			o0, o1 := tileSpan(t%ct, ct, pk.out)
			inferTileI8(dst, q, sx, pk, ks, r0, r1, o0, o1)
		})
	} else {
		inferTileI8(dst, q, sx, pk, ks, 0, rows, 0, pk.out)
	}
}

// inferTileI8 computes one tile of the W8A16 GEMM: rows [r0,r1) ×
// outputs [o0,o1). Blocks of four rows share one weight
// sign-extension sweep; a row computes identical bits in the blocked
// and single-row kernels, so neither shard boundaries (worker count)
// nor tile boundaries change the result.
func inferTileI8(dst *Matrix32, q []int16, sx []float32, pk *packI8, ks *kernelSet, r0, r1, o0, o1 int) {
	inPad, out := pk.inPad, pk.out
	tw := o1 - o0
	wt := pk.wt[o0*inPad : o1*inPad]
	scale := pk.scale[o0*pk.nb : o1*pk.nb]
	b := pk.b[o0:o1]
	i := r0
	for ; i+4 <= r1; i += 4 {
		ks.i8r4(dst.Data[i*out+o0:(i+3)*out+o1], q[i*inPad:(i+4)*inPad], sx[i:i+4], wt, scale, b, tw, inPad, out)
	}
	for ; i < r1; i++ {
		ks.i8r(dst.Row(i)[o0:o1], q[i*inPad:i*inPad+inPad], wt, scale, b, sx[i])
	}
}

// inferTileU8 is inferTileI8's W8A8 sibling: uint8 activation plane,
// per-row (xmin, step) affine parameters, and the pack's corr term
// carrying the activation-independent xmin·Σŵ contribution.
func inferTileU8(dst *Matrix32, u []uint8, aff []float32, pk *packI8, ks *kernelSet, r0, r1, o0, o1 int) {
	inPad, out := pk.inPad, pk.out
	tw := o1 - o0
	wt := pk.wt[o0*inPad : o1*inPad]
	scale := pk.scale[o0*pk.nb : o1*pk.nb]
	corr := pk.corr[o0:o1]
	b := pk.b[o0:o1]
	i := r0
	for ; i+4 <= r1; i += 4 {
		ks.u8r4(dst.Data[i*out+o0:(i+3)*out+o1], u[i*inPad:(i+4)*inPad], aff[2*i:2*i+8], wt, scale, corr, b, tw, inPad, out)
	}
	for ; i < r1; i++ {
		ks.u8r(dst.Row(i)[o0:o1], u[i*inPad:i*inPad+inPad], wt, scale, corr, b, aff[2*i], aff[2*i+1])
	}
}

func checkInferShape(dstRows, dstCols, xRows, xCols, in, out int) {
	if xCols != in || dstRows != xRows || dstCols != out {
		panic("nn: reduced-precision infer shape mismatch")
	}
}

// MatMul32Into computes dst = a × b in float32, overwriting dst.
// Saxpy-style with a four-wide k unroll and no zero-skip branches
// (its callers feed it dense softmax/value matrices — this is the
// attention combine, attnW × V). The multiply is tiled 2D (rows ×
// output columns, gemmTiles) across the matmul pool and the saxpy
// walk runs through the dispatched axpy4/axpy1 kernels, which
// vectorize along the independent output lanes with the identical
// per-j mul-then-add sequence (no FMA): the bits are identical at
// every SIMD level, tile geometry, and worker count. dst must be
// a.Rows×b.Cols and must not alias a or b.
func MatMul32Into(dst, a, b *Matrix32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("nn: matmul32 shape mismatch")
	}
	ks := kernels()
	if p, rt, ct := gemmTiles(a.Rows, b.Cols, a.Rows*a.Cols*b.Cols); p != nil {
		p.ForEach(rt*ct, func(t int) {
			r0, r1 := tileSpan(t/ct, rt, a.Rows)
			c0, c1 := tileSpan(t%ct, ct, b.Cols)
			combineTile32(dst, a, b, ks, r0, r1, c0, c1)
		})
	} else {
		combineTile32(dst, a, b, ks, 0, a.Rows, 0, b.Cols)
	}
}

// combineTile32 computes one tile of the f32 saxpy GEMM: activation
// rows [r0,r1) × output columns [c0,c1). The k dimension is never
// split — each output element sees the full ascending-k 4-unrolled
// walk — so tile boundaries only select which independent lanes a
// call touches, never how any lane accumulates.
func combineTile32(dst, a, b *Matrix32, ks *kernelSet, r0, r1, c0, c1 int) {
	K, bc := a.Cols, b.Cols
	w := c1 - c0
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)[c0:c1]
		for j := range orow {
			orow[j] = 0
		}
		k := 0
		for ; k+3 < K; k += 4 {
			ks.axpy4(orow, b.Data[k*bc+c0:(k+3)*bc+c0+w], bc, arow[k:k+4:k+4])
		}
		for ; k < K; k++ {
			ks.axpy1(orow, b.Row(k)[c0:c0+w], arow[k])
		}
	}
}

// MatMulT32Into computes dst = a × bᵀ in float32, overwriting dst.
// b's rows are contiguous, so every dst row is one dotRows32 sweep.
// dst must be a.Rows×b.Rows and must not alias a or b.
func MatMulT32Into(dst, a, b *Matrix32) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("nn: matmulT32 shape mismatch")
	}
	ks := kernels()
	for i := 0; i < a.Rows; i++ {
		ks.dot(dst.Row(i), a.Row(i), b.Data)
	}
}

// ScaledSoftmaxRows32Into writes the row-wise softmax of scale·x into
// dst using the fast exp32 approximation. dst must share x's shape;
// dst == x is allowed. All three passes are vectorized through the
// dispatched kernels: the row-max scan (rowMax — exact, max never
// reassociates), the exp pass (expRow32 — per-element bits identical
// to scalar exp32 at every tier), and the normalize scale (vscale —
// element-wise, exact). Only the normalization sum's accumulation
// order is tier-specific, so results are deterministic within a tier.
func ScaledSoftmaxRows32Into(dst, x *Matrix32, scale float32) {
	x.mustSameShape(dst)
	ks := kernels()
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		if len(row) == 0 {
			continue
		}
		o := dst.Row(i)
		n, max := ks.rowMax(row, scale)
		j0 := n
		if n == 0 {
			max = row[0] * scale
			j0 = 1
		}
		for _, v := range row[j0:] {
			if sv := v * scale; sv > max {
				max = sv
			}
		}
		n, sum := ks.exprow(o, row, scale, max)
		for j := n; j < len(row); j++ {
			e := exp32(row[j]*scale - max)
			o[j] = e
			sum += e
		}
		inv := 1 / sum
		m := ks.vscale(o, inv)
		for j := m; j < len(o); j++ {
			o[j] *= inv
		}
	}
}

// InferResidualInto32 fuses residual add and layer normalization in
// float32: dst = LayerNorm(x + res). Row statistics accumulate in
// float32 — fine at the model's feature widths (≤ a few hundred). All
// three passes run through the dispatched kernels: the residual-add
// sum (lnSum) and variance reduction (lnSq) reassociate per tier
// (analytic-error-bounded, like the GEMM dot products), while the
// normalize/affine pass (lnAffine) is element-wise with the exact
// scalar operation order and therefore bit-identical across tiers for
// identical (mean, inv). All three matrices share one shape; dst must
// not alias x or res.
func (ln *LayerNorm) InferResidualInto32(dst, x, res *Matrix32) {
	x.mustSameShape(res)
	x.mustSameShape(dst)
	ks := kernels()
	pk := ln.pack32s()
	n := float32(x.Cols)
	eps := float32(ln.Eps)
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		rrow := res.Row(i)
		o := dst.Row(i)
		c, mean := ks.lnSum(o, xrow, rrow)
		for j := c; j < len(xrow); j++ {
			s := xrow[j] + rrow[j]
			o[j] = s
			mean += s
		}
		mean /= n
		c, variance := ks.lnSq(o, mean)
		for _, v := range o[c:] {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / float32(math.Sqrt(float64(variance+eps)))
		c = ks.lnAffine(o, mean, inv, pk.gamma, pk.beta)
		for j := c; j < len(o); j++ {
			o[j] = (o[j]-mean)*inv*pk.gamma[j] + pk.beta[j]
		}
	}
}

// InferInto32 applies the tanh-approximated GELU element-wise in
// float32 using the fast tanh32. dst must share x's shape; dst == x
// is allowed.
func (g *GELU) InferInto32(dst, x *Matrix32) {
	x.mustSameShape(dst)
	n := geluVec(dst.Data, x.Data)
	c := float32(geluC)
	for i := n; i < len(x.Data); i++ {
		v := x.Data[i]
		dst.Data[i] = 0.5 * v * (1 + tanh32(c*(v+0.044715*v*v*v)))
	}
}

// exp32 approximates eˣ in float32 to ≈2e-5 relative error: exponent
// extraction in base 2 plus a degree-6 polynomial for 2^f on [0,1),
// recombined through the float32 exponent bits. Inputs below the
// float32 underflow line return 0; inputs above the overflow line are
// clamped (softmax feeds it only x ≤ 0).
func exp32(x float32) float32 {
	if x < -87 {
		return 0
	}
	if x > 88 {
		x = 88
	}
	z := x * 1.4426950408889634 // log₂(e)
	n := int32(z)
	if z < float32(n) {
		n--
	}
	f := z - float32(n) // [0,1)
	// Taylor of 2^f = e^{f·ln2} through degree 6; truncation ≲8e-6 rel.
	p := float32(0.00015403530393381608)
	p = p*f + 0.0013333558146428443
	p = p*f + 0.009618129107628477
	p = p*f + 0.05550410866482158
	p = p*f + 0.2402265069591007
	p = p*f + 0.6931471805599453
	p = p*f + 1
	return p * math.Float32frombits(uint32(n+127)<<23)
}

// tanh32 approximates tanh in float32 via exp32 and the odd-symmetric
// identity tanh(x) = (1−e^{−2x})/(1+e^{−2x}); saturates past |x| ≥ 9
// where tanh is 1 to within float32 resolution.
func tanh32(x float32) float32 {
	if x >= 9 {
		return 1
	}
	if x <= -9 {
		return -1
	}
	neg := x < 0
	if neg {
		x = -x
	}
	e := exp32(-2 * x)
	t := (1 - e) / (1 + e)
	if neg {
		return -t
	}
	return t
}
