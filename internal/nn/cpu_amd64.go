//go:build amd64

package nn

// CPUID feature detection for the AVX2 kernel tier. Checked once at
// package init; the result gates both bestSIMD and SetSIMD(SIMDAVX2).

// cpuid executes CPUID with the given leaf/subleaf (cpu_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (cpu_amd64.s). Only valid
// when CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

// cpuHasAVX2FMA reports whether the AVX2 tier can run: AVX2 and FMA
// instruction support plus OS-managed YMM register state (XCR0 bits
// 1:2) — without the XSAVE check the registers would be silently
// truncated to 128 bits on context switch.
var cpuHasAVX2FMA = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12 // CPUID.1:ECX.FMA
		osxsaveBit = 1 << 27 // CPUID.1:ECX.OSXSAVE
		avxBit     = 1 << 28 // CPUID.1:ECX.AVX
	)
	_, _, c, _ := cpuid(1, 0)
	if c&fmaBit == 0 || c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX/YMM) must both be OS-enabled.
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // CPUID.7.0:EBX.AVX2
}
