// Package nn provides the minimal neural-network substrate used by the
// NER Globalizer reproduction: dense matrices and vectors, layers with
// explicit backpropagation, optimizers, and the contrastive losses from
// the paper (triplet loss and soft nearest-neighbour loss).
//
// The package is intentionally small and deterministic. All math is
// float64, all randomness flows through an explicitly seeded RNG, and
// layers cache their forward activations so Backward can be called
// immediately after Forward on the same inputs.
package nn

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
//
// The zero value is not useful; construct with NewMatrix or FromRows.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data
// is copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("nn: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// FromVec wraps a vector as a 1×n matrix, sharing the underlying data.
func FromVec(v []float64) *Matrix {
	return &Matrix{Rows: 1, Cols: len(v), Data: v}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// AddInPlace adds o element-wise into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	m.mustSameShape(o)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// SubInPlace subtracts o element-wise from m.
func (m *Matrix) SubInPlace(o *Matrix) {
	m.mustSameShape(o)
	for i, v := range o.Data {
		m.Data[i] -= v
	}
}

// ScaleInPlace multiplies every element of m by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// MulElemInPlace multiplies m element-wise by o (Hadamard product).
func (m *Matrix) MulElemInPlace(o *Matrix) {
	m.mustSameShape(o)
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// Transpose returns mᵀ as a new matrix. Hot paths avoid it: a
// transpose-then-multiply is always expressible as MatMulT (a × bᵀ) or
// TMatMul (aᵀ × b), which skip materializing the transposed copy. The
// kernels themselves live in matmul.go.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// AddRowVecInPlace adds vector v to every row of m.
func (m *Matrix) AddRowVecInPlace(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("nn: row vector length %d does not match %d cols", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range v {
			row[j] += x
		}
	}
}

// SumRows returns the column-wise sum of m as a vector of length Cols.
func (m *Matrix) SumRows() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// MaxAbs returns the maximum absolute value in m, or 0 for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("nn: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}
