//go:build amd64

#include "textflag.h"

// AVX2/FMA kernel tier. Only dispatched when cpu_amd64.go verified
// AVX2 + FMA + OS-enabled YMM state, so every body here may use VEX.256
// and FMA freely — except gelu8AVX2, whose contract is bit equality
// with the scalar GELU and therefore keeps multiply and add separate.
// Every routine that touches a Y register executes VZEROUPPER before
// returning (or before falling into a legacy-SSE scalar tail, whose
// XMM results survive the upper-half clear).

// 32767.0 in float32 — the symmetric int16 activation range.
DATA qc32767<>+0(SB)/4, $0x46fffe00
GLOBL qc32767<>(SB), RODATA|NOPTR, $4

// 127.0 in float32 — the W8A8 affine activation range.
DATA u8c127<>+0(SB)/4, $0x42fe0000
GLOBL u8c127<>(SB), RODATA|NOPTR, $4

// func dotRows32AVX2(dst, a, rows []float32)
//
// dst[j] = Σ_k a[k]·rows[j·len(a)+k]. Two 8-wide FMA accumulators (Y0
// lanes carry k≡0..7 (mod 16), Y1 lanes k≡8..15), an 8-block and a
// 4-block tail, scalar FMA remainder, then a fixed horizontal
// reduction: fold Y1 into Y0, fold the upper 128 bits, then
// (l0+l2)+(l1+l3). The upper halves are folded BEFORE any 128-bit op
// touches the accumulator — VEX.128 writes zero bits 255:128.
TEXT ·dotRows32AVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ rows_base+48(FP), R8
	TESTQ DX, DX
	JZ   adrdone

adrouter:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ   SI, R10 // a cursor
	MOVQ   R8, R11 // weight-row cursor
	MOVQ   CX, R9
	SHRQ   $4, R9  // 16-wide blocks
	JZ     adrtail8

adrloop16:
	VMOVUPS (R10), Y2
	VFMADD231PS (R11), Y2, Y0
	VMOVUPS 32(R10), Y3
	VFMADD231PS 32(R11), Y3, Y1
	ADDQ    $64, R10
	ADDQ    $64, R11
	DECQ    R9
	JNZ     adrloop16

adrtail8:
	TESTQ $8, CX
	JZ    adrfold
	VMOVUPS (R10), Y2
	VFMADD231PS (R11), Y2, Y0
	ADDQ  $32, R10
	ADDQ  $32, R11

adrfold:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X2
	VADDPS X2, X0, X0
	TESTQ  $4, CX
	JZ     adrhsum4
	VMOVUPS (R10), X2
	VFMADD231PS (R11), X2, X0
	ADDQ   $16, R10
	ADDQ   $16, R11

adrhsum4:
	VPSHUFD $0x4E, X0, X2
	VADDPS  X2, X0, X0
	VPSHUFD $0x55, X0, X2
	VADDSS  X2, X0, X0
	MOVQ    CX, R9
	ANDQ    $3, R9
	JZ      adrstore

adrtail1:
	VMOVSS (R10), X2
	VFMADD231SS (R11), X2, X0
	ADDQ   $4, R10
	ADDQ   $4, R11
	DECQ   R9
	JNZ    adrtail1

adrstore:
	VMOVSS X0, (DI)
	ADDQ   $4, DI
	LEAQ   (R8)(CX*4), R8 // next weight row
	DECQ   DX
	JNZ    adrouter

adrdone:
	VZEROUPPER
	RET

// func quantRowAVX2(q []int16, x []float32) float32
//
// quantRowSSE2 widened: 8-wide maxabs scan, 16-wide quantize loop
// (two VCVTPS2DQ round-half-even conversions, VPACKSSDW per-lane pack,
// VPERMQ $0xD8 lane fix), scalar CVTSS2SL tail after VZEROUPPER.
// Same half-even tie rounding as the vector body, so the tier is
// internally consistent; cross-tier bit equality is not the contract.
TEXT ·quantRowAVX2(SB), NOSPLIT, $0-52
	MOVQ q_base+0(FP), DI
	MOVQ q_len+8(FP), DX  // padded length
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX // real length
	VPCMPEQD Y7, Y7, Y7
	VPSRLD   $1, Y7, Y7   // 0x7fffffff lanes
	VXORPS   Y0, Y0, Y0   // maxabs accumulator
	MOVQ     SI, R10
	MOVQ     CX, R9
	SHRQ     $3, R9
	JZ       aqmfold

aqmloop:
	VANDPS (R10), Y7, Y1
	VMAXPS Y1, Y0, Y0
	ADDQ   $32, R10
	DECQ   R9
	JNZ    aqmloop

aqmfold:
	VEXTRACTF128 $1, Y0, X1
	VMAXPS X1, X0, X0
	MOVQ   CX, R9
	ANDQ   $7, R9
	JZ     aqhmax

aqmtail1:
	VMOVSS (R10), X1
	VANDPS X7, X1, X1
	VMAXSS X1, X0, X0
	ADDQ   $4, R10
	DECQ   R9
	JNZ    aqmtail1

aqhmax:
	VPSHUFD $0x4E, X0, X1
	VMAXPS  X1, X0, X0
	VPSHUFD $0x55, X0, X1
	VMAXSS  X1, X0, X0 // low lane = maxabs
	VXORPS  X2, X2, X2
	VUCOMISS X2, X0
	JNE     aqscale
	// zero row: clear the whole padded q, return scale 0
	VZEROUPPER
	MOVQ DX, R9
	SHRQ $3, R9 // len(q) is a whole number of 16-wide groups
	JZ   aqzret

aqzero:
	MOVOU X2, (DI)
	ADDQ  $16, DI
	DECQ  R9
	JNZ   aqzero

aqzret:
	MOVSS X2, ret+48(FP)
	RET

aqscale:
	VMOVSS qc32767<>+0(SB), X3
	VDIVSS X0, X3, X3 // inv = 32767/maxabs
	VBROADCASTSS X3, Y3
	MOVQ   SI, R10
	MOVQ   CX, R9
	SHRQ   $4, R9
	JZ     aqvtail

aq16:
	VMULPS (R10), Y3, Y1
	VCVTPS2DQ Y1, Y1
	VMULPS 32(R10), Y3, Y2
	VCVTPS2DQ Y2, Y2
	VPACKSSDW Y2, Y1, Y1 // per-lane: [x0..3 | x8..11 | x4..7 | x12..15]
	VPERMQ $0xD8, Y1, Y1 // memory order restored
	VMOVDQU Y1, (DI)
	ADDQ   $64, R10
	ADDQ   $32, DI
	DECQ   R9
	JNZ    aq16

aqvtail:
	VZEROUPPER // X0 (maxabs) and X3 (inv) low lanes survive
	MOVQ CX, R9
	ANDQ $15, R9
	JZ   aqpad

aqtail1:
	MOVSS (R10), X1
	MULSS X3, X1
	CVTSS2SL X1, AX
	CMPL  AX, $32767
	JLE   aqclamplo
	MOVL  $32767, AX

aqclamplo:
	CMPL AX, $-32768
	JGE  aqstore
	MOVL $-32768, AX

aqstore:
	MOVW AX, (DI)
	ADDQ $4, R10
	ADDQ $2, DI
	DECQ R9
	JNZ  aqtail1

aqpad:
	MOVQ DX, R9
	SUBQ CX, R9
	JZ   aqret
	XORL AX, AX

aqpadloop:
	MOVW AX, (DI)
	ADDQ $2, DI
	DECQ R9
	JNZ  aqpadloop

aqret:
	DIVSS qc32767<>+0(SB), X0 // sx = maxabs/32767
	MOVSS X0, ret+48(FP)
	RET

// Broadcast constant table for gelu8 — the same float32 bit patterns
// as the SSE2 gelu<> table, widened to 32 bytes per entry.
DATA gelu8<>+0x000(SB)/8, $0x3d3727133d372713 // 0.044715
DATA gelu8<>+0x008(SB)/8, $0x3d3727133d372713
DATA gelu8<>+0x010(SB)/8, $0x3d3727133d372713
DATA gelu8<>+0x018(SB)/8, $0x3d3727133d372713
DATA gelu8<>+0x020(SB)/8, $0x3f4c422a3f4c422a // √(2/π)
DATA gelu8<>+0x028(SB)/8, $0x3f4c422a3f4c422a
DATA gelu8<>+0x030(SB)/8, $0x3f4c422a3f4c422a
DATA gelu8<>+0x038(SB)/8, $0x3f4c422a3f4c422a
DATA gelu8<>+0x040(SB)/8, $0x7fffffff7fffffff // |·| mask
DATA gelu8<>+0x048(SB)/8, $0x7fffffff7fffffff
DATA gelu8<>+0x050(SB)/8, $0x7fffffff7fffffff
DATA gelu8<>+0x058(SB)/8, $0x7fffffff7fffffff
DATA gelu8<>+0x060(SB)/8, $0x8000000080000000 // sign mask
DATA gelu8<>+0x068(SB)/8, $0x8000000080000000
DATA gelu8<>+0x070(SB)/8, $0x8000000080000000
DATA gelu8<>+0x078(SB)/8, $0x8000000080000000
DATA gelu8<>+0x080(SB)/8, $0xc0000000c0000000 // -2.0
DATA gelu8<>+0x088(SB)/8, $0xc0000000c0000000
DATA gelu8<>+0x090(SB)/8, $0xc0000000c0000000
DATA gelu8<>+0x098(SB)/8, $0xc0000000c0000000
DATA gelu8<>+0x0a0(SB)/8, $0x3fb8aa3b3fb8aa3b // log₂(e)
DATA gelu8<>+0x0a8(SB)/8, $0x3fb8aa3b3fb8aa3b
DATA gelu8<>+0x0b0(SB)/8, $0x3fb8aa3b3fb8aa3b
DATA gelu8<>+0x0b8(SB)/8, $0x3fb8aa3b3fb8aa3b
DATA gelu8<>+0x0c0(SB)/8, $0x3921848939218489 // exp32 poly, degree 6 first
DATA gelu8<>+0x0c8(SB)/8, $0x3921848939218489
DATA gelu8<>+0x0d0(SB)/8, $0x3921848939218489
DATA gelu8<>+0x0d8(SB)/8, $0x3921848939218489
DATA gelu8<>+0x0e0(SB)/8, $0x3aaec3ff3aaec3ff
DATA gelu8<>+0x0e8(SB)/8, $0x3aaec3ff3aaec3ff
DATA gelu8<>+0x0f0(SB)/8, $0x3aaec3ff3aaec3ff
DATA gelu8<>+0x0f8(SB)/8, $0x3aaec3ff3aaec3ff
DATA gelu8<>+0x100(SB)/8, $0x3c1d955b3c1d955b
DATA gelu8<>+0x108(SB)/8, $0x3c1d955b3c1d955b
DATA gelu8<>+0x110(SB)/8, $0x3c1d955b3c1d955b
DATA gelu8<>+0x118(SB)/8, $0x3c1d955b3c1d955b
DATA gelu8<>+0x120(SB)/8, $0x3d6358473d635847
DATA gelu8<>+0x128(SB)/8, $0x3d6358473d635847
DATA gelu8<>+0x130(SB)/8, $0x3d6358473d635847
DATA gelu8<>+0x138(SB)/8, $0x3d6358473d635847
DATA gelu8<>+0x140(SB)/8, $0x3e75fdf03e75fdf0
DATA gelu8<>+0x148(SB)/8, $0x3e75fdf03e75fdf0
DATA gelu8<>+0x150(SB)/8, $0x3e75fdf03e75fdf0
DATA gelu8<>+0x158(SB)/8, $0x3e75fdf03e75fdf0
DATA gelu8<>+0x160(SB)/8, $0x3f3172183f317218
DATA gelu8<>+0x168(SB)/8, $0x3f3172183f317218
DATA gelu8<>+0x170(SB)/8, $0x3f3172183f317218
DATA gelu8<>+0x178(SB)/8, $0x3f3172183f317218
DATA gelu8<>+0x180(SB)/8, $0x3f8000003f800000 // 1.0
DATA gelu8<>+0x188(SB)/8, $0x3f8000003f800000
DATA gelu8<>+0x190(SB)/8, $0x3f8000003f800000
DATA gelu8<>+0x198(SB)/8, $0x3f8000003f800000
DATA gelu8<>+0x1a0(SB)/8, $0x3f0000003f000000 // 0.5
DATA gelu8<>+0x1a8(SB)/8, $0x3f0000003f000000
DATA gelu8<>+0x1b0(SB)/8, $0x3f0000003f000000
DATA gelu8<>+0x1b8(SB)/8, $0x3f0000003f000000
DATA gelu8<>+0x1c0(SB)/8, $0x410fffff410fffff // bits(9.0)−1, for a≥9 as ints
DATA gelu8<>+0x1c8(SB)/8, $0x410fffff410fffff
DATA gelu8<>+0x1d0(SB)/8, $0x410fffff410fffff
DATA gelu8<>+0x1d8(SB)/8, $0x410fffff410fffff
DATA gelu8<>+0x1e0(SB)/8, $0x0000007f0000007f // exponent bias 127
DATA gelu8<>+0x1e8(SB)/8, $0x0000007f0000007f
DATA gelu8<>+0x1f0(SB)/8, $0x0000007f0000007f
DATA gelu8<>+0x1f8(SB)/8, $0x0000007f0000007f
GLOBL gelu8<>(SB), RODATA|NOPTR, $512

// func gelu8AVX2(dst, x []float32)
//
// gelu4SSE2 widened to eight lanes: the identical IEEE operation
// sequence in 3-operand AVX form. Deliberately NO FMA anywhere — the
// contract is bit equality with the scalar
// 0.5·v·(1+tanh32(c·(v+0.044715·v³))) at every lane, and FMA's fused
// rounding would break it. len(x) must be a multiple of 8; dst may
// alias x.
TEXT ·gelu8AVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), DX
	SHRQ $3, DX
	JZ   g8done

g8loop:
	VMOVUPS (SI), Y0                    // v
	VMULPS  gelu8<>+0x000(SB), Y0, Y1
	VMULPS  Y0, Y1, Y1
	VMULPS  Y0, Y1, Y1                  // 0.044715·v³ (left-assoc like the scalar code)
	VADDPS  Y0, Y1, Y1
	VMULPS  gelu8<>+0x020(SB), Y1, Y1   // x = c·(v + 0.044715·v³)
	VANDPS  gelu8<>+0x060(SB), Y1, Y3   // Y3 = sign bits of x
	VANDPS  gelu8<>+0x040(SB), Y1, Y1   // Y1 = a = |x|
	VPCMPGTD gelu8<>+0x1c0(SB), Y1, Y2  // Y2 = saturation mask (a ≥ 9)
	// e = exp32(-2a)
	VMULPS  gelu8<>+0x080(SB), Y1, Y4   // -2a
	VMULPS  gelu8<>+0x0a0(SB), Y4, Y4   // z = -2a·log₂e  (≤ 0)
	VCVTTPS2DQ Y4, Y5                   // n = trunc(z)
	VCVTDQ2PS Y5, Y6                    // float(n)
	VXORPS  gelu8<>+0x060(SB), Y4, Y7   // -z
	VXORPS  gelu8<>+0x060(SB), Y6, Y1   // -float(n)
	VPCMPGTD Y1, Y7, Y7                 // z < float(n) → need floor correction
	VPADDD  Y7, Y5, Y5                  // n-- where truncation rounded up
	VCVTDQ2PS Y5, Y6
	VSUBPS  Y6, Y4, Y4                  // f = z - n ∈ [0,1)
	VMOVUPS gelu8<>+0x0c0(SB), Y7
	VMULPS  Y4, Y7, Y7
	VADDPS  gelu8<>+0x0e0(SB), Y7, Y7
	VMULPS  Y4, Y7, Y7
	VADDPS  gelu8<>+0x100(SB), Y7, Y7
	VMULPS  Y4, Y7, Y7
	VADDPS  gelu8<>+0x120(SB), Y7, Y7
	VMULPS  Y4, Y7, Y7
	VADDPS  gelu8<>+0x140(SB), Y7, Y7
	VMULPS  Y4, Y7, Y7
	VADDPS  gelu8<>+0x160(SB), Y7, Y7
	VMULPS  Y4, Y7, Y7
	VADDPS  gelu8<>+0x180(SB), Y7, Y7   // p ≈ 2^f
	VPADDD  gelu8<>+0x1e0(SB), Y5, Y5
	VPSLLD  $23, Y5, Y5                 // float bits of 2^n
	VMULPS  Y5, Y7, Y7                  // e = p·2^n
	// t = (1-e)/(1+e), then restore sign
	VMOVUPS gelu8<>+0x180(SB), Y1       // 1.0
	VSUBPS  Y7, Y1, Y4
	VADDPS  Y7, Y1, Y1
	VDIVPS  Y1, Y4, Y4
	VXORPS  Y3, Y4, Y4                  // t, signed
	// saturated lanes → ±1
	VXORPS  gelu8<>+0x180(SB), Y3, Y1   // ±1
	VPAND   Y2, Y1, Y1
	VPANDN  Y4, Y2, Y2
	VPOR    Y1, Y2, Y2                  // t, saturation applied
	// gelu = (0.5·v)·(1+t)
	VMULPS  gelu8<>+0x1a0(SB), Y0, Y1
	VADDPS  gelu8<>+0x180(SB), Y2, Y4
	VMULPS  Y4, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     g8loop

g8done:
	VZEROUPPER
	RET

// func quantRowU8AVX2(u []uint8, x []float32) (xmin, step float32)
//
// The W8A8 activation quantizer: affine uint8 on the row's [min, max],
// u = round((x − xmin)·127/range) with VCVTPS2DQ's round-half-even
// (the portable body rounds half up; either stays inside the ±½-step
// bound, and cross-tier bit equality is not the contract), VPACKUSWB
// saturation, padding tail zeroed, returning (xmin, step = range/127).
// A constant row (range 0, including empty) zeroes u and returns
// step 0.
TEXT ·quantRowU8AVX2(SB), NOSPLIT, $0-56
	MOVQ u_base+0(FP), DI
	MOVQ u_len+8(FP), DX  // padded length (bytes)
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX // real length
	VXORPS X0, X0, X0     // xmin defaults to 0 for the empty row
	TESTQ  CX, CX
	JZ     u8qzfill
	VBROADCASTSS (SI), Y0 // min accumulator
	VBROADCASTSS (SI), Y1 // max accumulator
	MOVQ   SI, R10
	MOVQ   CX, R9
	SHRQ   $3, R9
	JZ     u8qmfold

u8qmloop:
	VMOVUPS (R10), Y2
	VMINPS  Y2, Y0, Y0
	VMAXPS  Y2, Y1, Y1
	ADDQ    $32, R10
	DECQ    R9
	JNZ     u8qmloop

u8qmfold:
	VEXTRACTF128 $1, Y0, X2
	VMINPS  X2, X0, X0
	VEXTRACTF128 $1, Y1, X2
	VMAXPS  X2, X1, X1
	VPSHUFD $0x4E, X0, X2
	VMINPS  X2, X0, X0
	VPSHUFD $0x55, X0, X2
	VMINSS  X2, X0, X0
	VPSHUFD $0x4E, X1, X2
	VMAXPS  X2, X1, X1
	VPSHUFD $0x55, X1, X2
	VMAXSS  X2, X1, X1
	MOVQ    CX, R9
	ANDQ    $7, R9
	JZ      u8qrange

u8qmtail1:
	VMINSS (R10), X0, X0
	VMAXSS (R10), X1, X1
	ADDQ   $4, R10
	DECQ   R9
	JNZ    u8qmtail1

u8qrange:
	VSUBSS X0, X1, X2 // range = max − min
	VXORPS X3, X3, X3
	VUCOMISS X3, X2
	JNE    u8qscale

u8qzfill:
	// constant (or empty) row: u all zero, step 0
	VXORPS X3, X3, X3
	VMOVSS X0, xmin+48(FP)
	VMOVSS X3, step+52(FP)
	MOVQ   DX, R9
	SHRQ   $4, R9 // len(u) is a whole number of 16-byte groups
	JZ     u8qzdone

u8qzloop:
	VMOVDQU X3, (DI)
	ADDQ    $16, DI
	DECQ    R9
	JNZ     u8qzloop

u8qzdone:
	VZEROUPPER
	RET

u8qscale:
	VMOVSS u8c127<>+0(SB), X3
	VDIVSS X2, X3, X3     // inv = 127/range
	VBROADCASTSS X3, Y3
	VBROADCASTSS X0, Y4   // xmin, broadcast
	MOVQ   SI, R10
	MOVQ   CX, R9
	SHRQ   $4, R9
	JZ     u8qvtail

u8q16:
	VMOVUPS (R10), Y5
	VSUBPS  Y4, Y5, Y5
	VMULPS  Y3, Y5, Y5
	VCVTPS2DQ Y5, Y5
	VMOVUPS 32(R10), Y6
	VSUBPS  Y4, Y6, Y6
	VMULPS  Y3, Y6, Y6
	VCVTPS2DQ Y6, Y6
	VPACKSSDW Y6, Y5, Y5
	VPERMQ  $0xD8, Y5, Y5 // 16 int16 in memory order
	VEXTRACTI128 $1, Y5, X6
	VPACKUSWB X6, X5, X5  // 16 uint8, saturated to [0, 255]
	VMOVDQU X5, (DI)
	ADDQ    $64, R10
	ADDQ    $16, DI
	DECQ    R9
	JNZ     u8q16

u8qvtail:
	VZEROUPPER // X0 (xmin), X2 (range), X3 (inv) low lanes survive
	MOVQ CX, R9
	ANDQ $15, R9
	JZ   u8qpad

u8qtail1:
	MOVSS (R10), X5
	SUBSS X0, X5
	MULSS X3, X5
	CVTSS2SL X5, AX
	CMPL  AX, $255
	JLE   u8qclamplo
	MOVL  $255, AX

u8qclamplo:
	TESTL AX, AX
	JGE   u8qstore
	XORL  AX, AX

u8qstore:
	MOVB AX, (DI)
	ADDQ $4, R10
	INCQ DI
	DECQ R9
	JNZ  u8qtail1

u8qpad:
	MOVQ DX, R9
	SUBQ CX, R9
	JZ   u8qret
	XORL AX, AX

u8qpadloop:
	MOVB AX, (DI)
	INCQ DI
	DECQ R9
	JNZ  u8qpadloop

u8qret:
	MOVSS X0, xmin+48(FP)
	DIVSS u8c127<>+0(SB), X2 // step = range/127
	MOVSS X2, step+52(FP)
	RET

// func u8RowsAVX2(dst []float32, u []uint8, wt []int8, scale, corr, b []float32, xmin, step float32)
//
// One activation row of the W8A8 GEMM. Per pair of 16-wide groups
// (one 32-byte YMM load): VPMADDUBSW multiplies the unsigned
// activations against the signed weights with exact pairwise int16
// sums (u ≤ 128, so |u·w + u'·w'| ≤ 2·128·127 < 2¹⁵ — never
// saturates), VPMADDWD against a ones vector widens to four exact
// int32 quarter-sums per group, VCVTDQ2PS is exact (< 2²⁴), and an
// FMA folds quarter·scale into a packed float accumulator whose lane
// 128-halves carry the two groups' scales via VINSERTF128. The odd
// trailing group runs the identical sequence at XMM width AFTER the
// upper accumulator half is folded (VEX.128 zeroes bits 255:128).
// Reduction per output: fold-upper, (l0+l2)+(l1+l3), then
// dst[o] = step·Σ + xmin·corr[o] + b[o]. The operation order is
// IDENTICAL to one row of u8Rows4AVX2, so blocking never changes a
// row's bits.
TEXT ·u8RowsAVX2(SB), NOSPLIT, $0-152
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ u_base+24(FP), SI
	MOVQ u_len+32(FP), AX
	SHRQ $4, AX           // group count
	MOVQ wt_base+48(FP), R8
	MOVQ scale_base+72(FP), R12
	MOVQ corr_base+96(FP), R13
	MOVQ b_base+120(FP), R14
	VMOVSS xmin+144(FP), X10
	VMOVSS step+148(FP), X11
	VPCMPEQD Y0, Y0, Y0
	VPSRLW $15, Y0, Y0    // every int16 lane = 1
	TESTQ DX, DX
	JZ    u8rdone

u8router:
	VXORPS Y8, Y8, Y8
	MOVQ   SI, R10 // u cursor (reset per output)
	MOVQ   AX, R9
	SHRQ   $1, R9  // group pairs
	JZ     u8rfold

u8rpair:
	VMOVDQU (R10), Y1
	VPMADDUBSW (R8), Y1, Y1 // 16 int16 pairwise u·w sums, exact
	VPMADDWD Y0, Y1, Y1     // 8 int32 quarter-group sums, exact
	VCVTDQ2PS Y1, Y1
	VBROADCASTSS (R12), X4
	VBROADCASTSS 4(R12), X3
	VINSERTF128 $1, X3, Y4, Y4 // [scale_g ×4 | scale_g+1 ×4]
	VFMADD231PS Y4, Y1, Y8
	ADDQ    $32, R10
	ADDQ    $32, R8
	ADDQ    $8, R12
	DECQ    R9
	JNZ     u8rpair

u8rfold:
	VEXTRACTF128 $1, Y8, X7
	VADDPS  X7, X8, X8 // fold BEFORE any 128-bit op writes X8
	TESTQ   $1, AX
	JZ      u8rhsum
	VMOVDQU (R10), X1
	VPMADDUBSW (R8), X1, X1
	VPMADDWD X0, X1, X1
	VCVTDQ2PS X1, X1
	VBROADCASTSS (R12), X4
	VFMADD231PS X4, X1, X8
	ADDQ    $16, R8
	ADDQ    $4, R12

u8rhsum:
	VPSHUFD $0x4E, X8, X7
	VADDPS  X7, X8, X8
	VPSHUFD $0x55, X8, X7
	VADDSS  X7, X8, X8
	VMULSS  X11, X8, X8  // × step
	VMOVSS  (R13), X7
	VMULSS  X10, X7, X7  // xmin·corr[o]
	VADDSS  X7, X8, X8
	VADDSS  (R14), X8, X8 // + b[o]
	VMOVSS  X8, (DI)
	ADDQ    $4, DI
	ADDQ    $4, R13
	ADDQ    $4, R14
	DECQ    DX
	JNZ     u8router

u8rdone:
	VZEROUPPER
	RET

// func u8Rows4AVX2(dst []float32, u []uint8, aff []float32, wt []int8, scale, corr, b []float32, out, inPad, dstStride int)
//
// u8RowsAVX2 over four activation rows in one sweep: each group
// pair's weight load and scale broadcast feed four VPMADDUBSW
// pipelines (one packed accumulator per row). dst rows sit dstStride
// elements apart (out contiguous outputs each), u is 4×inPad
// contiguous, aff holds the rows' (xmin, step) pairs. Per-row
// arithmetic matches u8RowsAVX2 bit for bit.
TEXT ·u8Rows4AVX2(SB), NOSPLIT, $0-192
	MOVQ dst_base+0(FP), DI
	MOVQ u_base+24(FP), SI
	MOVQ wt_base+72(FP), R8
	MOVQ scale_base+96(FP), R12
	MOVQ corr_base+120(FP), R13
	MOVQ b_base+144(FP), R14
	MOVQ out+168(FP), DX
	MOVQ inPad+176(FP), BX  // u row stride in bytes
	LEAQ (BX)(BX*2), CX     // 3× stride for row 3
	MOVQ dstStride+184(FP), R11
	SHLQ $2, R11            // dst row stride in bytes
	LEAQ (R11)(R11*2), R15
	MOVQ inPad+176(FP), AX
	SHRQ $4, AX             // group count
	VPCMPEQD Y0, Y0, Y0
	VPSRLW $15, Y0, Y0
	TESTQ DX, DX
	JZ    u8b4done

u8b4outer:
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	MOVQ   SI, R10
	MOVQ   AX, R9
	SHRQ   $1, R9
	JZ     u8b4fold

u8b4pair:
	VMOVDQU (R8), Y5 // two groups of weights, shared by the four rows
	VBROADCASTSS (R12), X4
	VBROADCASTSS 4(R12), X3
	VINSERTF128 $1, X3, Y4, Y4
	// row 0
	VMOVDQU (R10), Y1
	VPMADDUBSW Y5, Y1, Y1
	VPMADDWD Y0, Y1, Y1
	VCVTDQ2PS Y1, Y1
	VFMADD231PS Y4, Y1, Y8
	// row 1
	VMOVDQU (R10)(BX*1), Y1
	VPMADDUBSW Y5, Y1, Y1
	VPMADDWD Y0, Y1, Y1
	VCVTDQ2PS Y1, Y1
	VFMADD231PS Y4, Y1, Y9
	// row 2
	VMOVDQU (R10)(BX*2), Y1
	VPMADDUBSW Y5, Y1, Y1
	VPMADDWD Y0, Y1, Y1
	VCVTDQ2PS Y1, Y1
	VFMADD231PS Y4, Y1, Y10
	// row 3
	VMOVDQU (R10)(CX*1), Y1
	VPMADDUBSW Y5, Y1, Y1
	VPMADDWD Y0, Y1, Y1
	VCVTDQ2PS Y1, Y1
	VFMADD231PS Y4, Y1, Y11
	ADDQ    $32, R10
	ADDQ    $32, R8
	ADDQ    $8, R12
	DECQ    R9
	JNZ     u8b4pair

u8b4fold:
	VEXTRACTF128 $1, Y8, X7
	VADDPS  X7, X8, X8
	VEXTRACTF128 $1, Y9, X7
	VADDPS  X7, X9, X9
	VEXTRACTF128 $1, Y10, X7
	VADDPS  X7, X10, X10
	VEXTRACTF128 $1, Y11, X7
	VADDPS  X7, X11, X11
	TESTQ   $1, AX
	JZ      u8b4hsum
	VMOVDQU (R8), X5
	VBROADCASTSS (R12), X4
	// row 0
	VMOVDQU (R10), X1
	VPMADDUBSW X5, X1, X1
	VPMADDWD X0, X1, X1
	VCVTDQ2PS X1, X1
	VFMADD231PS X4, X1, X8
	// row 1
	VMOVDQU (R10)(BX*1), X1
	VPMADDUBSW X5, X1, X1
	VPMADDWD X0, X1, X1
	VCVTDQ2PS X1, X1
	VFMADD231PS X4, X1, X9
	// row 2
	VMOVDQU (R10)(BX*2), X1
	VPMADDUBSW X5, X1, X1
	VPMADDWD X0, X1, X1
	VCVTDQ2PS X1, X1
	VFMADD231PS X4, X1, X10
	// row 3
	VMOVDQU (R10)(CX*1), X1
	VPMADDUBSW X5, X1, X1
	VPMADDWD X0, X1, X1
	VCVTDQ2PS X1, X1
	VFMADD231PS X4, X1, X11
	ADDQ    $16, R8
	ADDQ    $4, R12

u8b4hsum:
	// reduce, dequantize, and store the four outputs (dst stride R11)
	MOVQ    aff_base+48(FP), R9
	VMOVSS  (R13), X6 // corr[o], shared across rows
	// row 0
	VPSHUFD $0x4E, X8, X7
	VADDPS  X7, X8, X8
	VPSHUFD $0x55, X8, X7
	VADDSS  X7, X8, X8
	VMULSS  4(R9), X8, X8 // × step₀
	VMOVSS  (R9), X5
	VMULSS  X6, X5, X5    // xmin₀·corr[o]
	VADDSS  X5, X8, X8
	VADDSS  (R14), X8, X8
	VMOVSS  X8, (DI)
	// row 1
	VPSHUFD $0x4E, X9, X7
	VADDPS  X7, X9, X9
	VPSHUFD $0x55, X9, X7
	VADDSS  X7, X9, X9
	VMULSS  12(R9), X9, X9
	VMOVSS  8(R9), X5
	VMULSS  X6, X5, X5
	VADDSS  X5, X9, X9
	VADDSS  (R14), X9, X9
	VMOVSS  X9, (DI)(R11*1)
	// row 2
	VPSHUFD $0x4E, X10, X7
	VADDPS  X7, X10, X10
	VPSHUFD $0x55, X10, X7
	VADDSS  X7, X10, X10
	VMULSS  20(R9), X10, X10
	VMOVSS  16(R9), X5
	VMULSS  X6, X5, X5
	VADDSS  X5, X10, X10
	VADDSS  (R14), X10, X10
	VMOVSS  X10, (DI)(R11*2)
	// row 3
	VPSHUFD $0x4E, X11, X7
	VADDPS  X7, X11, X11
	VPSHUFD $0x55, X11, X7
	VADDSS  X7, X11, X11
	VMULSS  28(R9), X11, X11
	VMOVSS  24(R9), X5
	VMULSS  X6, X5, X5
	VADDSS  X5, X11, X11
	VADDSS  (R14), X11, X11
	VMOVSS  X11, (DI)(R15*1)
	ADDQ    $4, DI
	ADDQ    $4, R13
	ADDQ    $4, R14
	DECQ    DX
	JNZ     u8b4outer

u8b4done:
	VZEROUPPER
	RET

// 87.0 in float32 — |w| beyond this, exp32(w) flushes to zero.
DATA expc8<>+0x00(SB)/8, $0x42ae000042ae0000
DATA expc8<>+0x08(SB)/8, $0x42ae000042ae0000
DATA expc8<>+0x10(SB)/8, $0x42ae000042ae0000
DATA expc8<>+0x18(SB)/8, $0x42ae000042ae0000
GLOBL expc8<>(SB), RODATA|NOPTR, $32

// func expRow8AVX2(dst, x []float32, scale, max float32) float32
//
// Eight-lane mirror of expRow4SSE2: dst[i] = exp32(x[i]·scale − max)
// with the sum of the written values returned. len(x) must be a
// multiple of 8 and x[i]·scale ≤ max. Deliberately FMA-free so the
// per-element bits match scalar exp32 (and the SSE2 tier) exactly;
// only the returned sum's fold order differs.
TEXT ·expRow8AVX2(SB), NOSPLIT, $0-60
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), DX
	VBROADCASTSS scale+48(FP), Y8
	VBROADCASTSS max+52(FP), Y9
	VXORPS Y10, Y10, Y10    // sum accumulator
	SHRQ $3, DX
	JZ   ex8done

ex8loop:
	VMOVUPS (SI), Y0
	VMULPS  Y8, Y0, Y0      // v·scale
	VSUBPS  Y9, Y0, Y0      // w = v·scale − max ≤ 0
	// flush mask: w < −87 ⇔ −w > 87 (positive floats order as ints)
	VXORPS  gelu8<>+0x060(SB), Y0, Y7
	VPCMPGTD expc8<>+0x00(SB), Y7, Y7
	// z = w·log₂e, n = floor(z), f = z − n (trunc-and-correct)
	VMULPS  gelu8<>+0x0a0(SB), Y0, Y4
	VCVTTPS2DQ Y4, Y5       // n = trunc(z)
	VCVTDQ2PS Y5, Y6        // float(n)
	VXORPS  gelu8<>+0x060(SB), Y4, Y2  // −z
	VXORPS  gelu8<>+0x060(SB), Y6, Y1  // −float(n)
	VPCMPGTD Y1, Y2, Y2     // z < float(n) → truncation rounded up
	VPADDD  Y2, Y5, Y5      // n--
	VCVTDQ2PS Y5, Y6
	VSUBPS  Y6, Y4, Y4      // f = z − n ∈ [0,1)
	// p ≈ 2^f: exp32's degree-6 Horner, no FMA
	VMOVUPS gelu8<>+0x0c0(SB), Y1
	VMULPS  Y4, Y1, Y1
	VADDPS  gelu8<>+0x0e0(SB), Y1, Y1
	VMULPS  Y4, Y1, Y1
	VADDPS  gelu8<>+0x100(SB), Y1, Y1
	VMULPS  Y4, Y1, Y1
	VADDPS  gelu8<>+0x120(SB), Y1, Y1
	VMULPS  Y4, Y1, Y1
	VADDPS  gelu8<>+0x140(SB), Y1, Y1
	VMULPS  Y4, Y1, Y1
	VADDPS  gelu8<>+0x160(SB), Y1, Y1
	VMULPS  Y4, Y1, Y1
	VADDPS  gelu8<>+0x180(SB), Y1, Y1  // p
	VPADDD  gelu8<>+0x1e0(SB), Y5, Y5
	VPSLLD  $23, Y5, Y5     // float bits of 2^n
	VMULPS  Y5, Y1, Y1      // e = p·2^n
	VPANDN  Y1, Y7, Y1      // flush: ^mask & e
	VMOVUPS Y1, (DI)
	VADDPS  Y1, Y10, Y10
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     ex8loop

ex8done:
	// fold before any 128-bit op touches the accumulator
	VEXTRACTF128 $1, Y10, X1
	VADDPS  X1, X10, X10
	VPSHUFD $0x4E, X10, X1
	VADDPS  X1, X10, X10
	VPSHUFD $0x55, X10, X1
	VADDSS  X1, X10, X10
	VZEROUPPER
	MOVSS   X10, ret+56(FP)
	RET

// func axpy4AVX2(dst, b []float32, stride int, av []float32)
//
// 8-wide saxpy over four rows — deliberately VMULPS+VADDPS, no FMA:
// the contract is bit equality with the scalar mul-then-add walk at
// every tier. 4-wide (VEX.128) and scalar (VEX) tails inside the
// kernel keep the identical per-lane operation order.
TEXT ·axpy4AVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ b_base+24(FP), SI
	MOVQ stride+48(FP), R8
	SHLQ $2, R8 // stride in bytes
	MOVQ av_base+56(FP), AX
	VBROADCASTSS 0(AX), Y4
	VBROADCASTSS 4(AX), Y5
	VBROADCASTSS 8(AX), Y6
	VBROADCASTSS 12(AX), Y7
	LEAQ (SI)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-8, DX

vax4vec8:
	CMPQ BX, DX
	JGE  vax4vec4
	VMOVUPS (DI)(BX*4), Y0
	VMULPS  (SI)(BX*4), Y4, Y1
	VADDPS  Y1, Y0, Y0
	VMULPS  (R9)(BX*4), Y5, Y1
	VADDPS  Y1, Y0, Y0
	VMULPS  (R10)(BX*4), Y6, Y1
	VADDPS  Y1, Y0, Y0
	VMULPS  (R11)(BX*4), Y7, Y1
	VADDPS  Y1, Y0, Y0
	VMOVUPS Y0, (DI)(BX*4)
	ADDQ    $8, BX
	JMP     vax4vec8

vax4vec4:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ BX, DX
	JGE  vax4tail
	VMOVUPS (DI)(BX*4), X0
	VMULPS  (SI)(BX*4), X4, X1
	VADDPS  X1, X0, X0
	VMULPS  (R9)(BX*4), X5, X1
	VADDPS  X1, X0, X0
	VMULPS  (R10)(BX*4), X6, X1
	VADDPS  X1, X0, X0
	VMULPS  (R11)(BX*4), X7, X1
	VADDPS  X1, X0, X0
	VMOVUPS X0, (DI)(BX*4)
	ADDQ    $4, BX

vax4tail:
	CMPQ BX, CX
	JGE  vax4done
	VMOVSS (DI)(BX*4), X0
	VMULSS (SI)(BX*4), X4, X1
	VADDSS X1, X0, X0
	VMULSS (R9)(BX*4), X5, X1
	VADDSS X1, X0, X0
	VMULSS (R10)(BX*4), X6, X1
	VADDSS X1, X0, X0
	VMULSS (R11)(BX*4), X7, X1
	VADDSS X1, X0, X0
	VMOVSS X0, (DI)(BX*4)
	INCQ   BX
	JMP    vax4tail

vax4done:
	VZEROUPPER
	RET

// func axpy1AVX2(dst, b []float32, av float32)
//
// 8-wide single-row saxpy, no FMA, 4-wide + scalar tails inside.
TEXT ·axpy1AVX2(SB), NOSPLIT, $0-52
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ b_base+24(FP), SI
	VBROADCASTSS av+48(FP), Y4
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-8, DX

vax1vec8:
	CMPQ BX, DX
	JGE  vax1vec4
	VMOVUPS (DI)(BX*4), Y0
	VMULPS  (SI)(BX*4), Y4, Y1
	VADDPS  Y1, Y0, Y0
	VMOVUPS Y0, (DI)(BX*4)
	ADDQ    $8, BX
	JMP     vax1vec8

vax1vec4:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ BX, DX
	JGE  vax1tail
	VMOVUPS (DI)(BX*4), X0
	VMULPS  (SI)(BX*4), X4, X1
	VADDPS  X1, X0, X0
	VMOVUPS X0, (DI)(BX*4)
	ADDQ    $4, BX

vax1tail:
	CMPQ BX, CX
	JGE  vax1done
	VMOVSS (DI)(BX*4), X0
	VMULSS (SI)(BX*4), X4, X1
	VADDSS X1, X0, X0
	VMOVSS X0, (DI)(BX*4)
	INCQ   BX
	JMP    vax1tail

vax1done:
	VZEROUPPER
	RET

// func lnSum8AVX2(o, x, res []float32) float32
//
// o[j] = x[j] + res[j], returning Σ o[j]: 8-lane accumulator, upper
// half folded first, then the (l0+l2)+(l1+l3) pairing. len(o) must be
// a multiple of 8.
TEXT ·lnSum8AVX2(SB), NOSPLIT, $0-76
	MOVQ o_base+0(FP), DI
	MOVQ o_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	MOVQ res_base+48(FP), DX
	VXORPS Y0, Y0, Y0
	XORQ   BX, BX

vlnsloop:
	CMPQ BX, CX
	JGE  vlnsfold
	VMOVUPS (SI)(BX*4), Y1
	VADDPS  (DX)(BX*4), Y1, Y1
	VMOVUPS Y1, (DI)(BX*4)
	VADDPS  Y1, Y0, Y0
	ADDQ    $8, BX
	JMP     vlnsloop

vlnsfold:
	VEXTRACTF128 $1, Y0, X1
	VADDPS  X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VADDPS  X1, X0, X0
	VPSHUFD $0x55, X0, X1
	VADDSS  X1, X0, X0
	VMOVSS  X0, ret+72(FP)
	VZEROUPPER
	RET

// func lnSq8AVX2(o []float32, mean float32) float32
//
// Returns Σ (o[j]−mean)², 8-lane accumulator, fold as lnSum8AVX2.
// len(o) must be a multiple of 8.
TEXT ·lnSq8AVX2(SB), NOSPLIT, $0-36
	MOVQ o_base+0(FP), DI
	MOVQ o_len+8(FP), CX
	VBROADCASTSS mean+24(FP), Y4
	VXORPS Y0, Y0, Y0
	XORQ   BX, BX

vlnqloop:
	CMPQ BX, CX
	JGE  vlnqfold
	VMOVUPS (DI)(BX*4), Y1
	VSUBPS  Y4, Y1, Y1
	VMULPS  Y1, Y1, Y1
	VADDPS  Y1, Y0, Y0
	ADDQ    $8, BX
	JMP     vlnqloop

vlnqfold:
	VEXTRACTF128 $1, Y0, X1
	VADDPS  X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VADDPS  X1, X0, X0
	VPSHUFD $0x55, X0, X1
	VADDSS  X1, X0, X0
	VMOVSS  X0, ret+32(FP)
	VZEROUPPER
	RET

// func lnAffine8AVX2(o []float32, mean, inv float32, gamma, beta []float32)
//
// o[j] = ((o[j]−mean)·inv)·gamma[j] + beta[j], no FMA — bit-identical
// to the scalar order. len(o) must be a multiple of 8.
TEXT ·lnAffine8AVX2(SB), NOSPLIT, $0-80
	MOVQ o_base+0(FP), DI
	MOVQ o_len+8(FP), CX
	VBROADCASTSS mean+24(FP), Y4
	VBROADCASTSS inv+28(FP), Y5
	MOVQ gamma_base+32(FP), SI
	MOVQ beta_base+56(FP), DX
	XORQ BX, BX

vlnaloop:
	CMPQ BX, CX
	JGE  vlnadone
	VMOVUPS (DI)(BX*4), Y0
	VSUBPS  Y4, Y0, Y0
	VMULPS  Y5, Y0, Y0
	VMULPS  (SI)(BX*4), Y0, Y0
	VADDPS  (DX)(BX*4), Y0, Y0
	VMOVUPS Y0, (DI)(BX*4)
	ADDQ    $8, BX
	JMP     vlnaloop

vlnadone:
	VZEROUPPER
	RET

// func rowMax8AVX2(x []float32, scale float32) float32
//
// Returns max_j x[j]·scale — exact, max never reassociates (finite
// inputs). len(x) must be a non-zero multiple of 8.
TEXT ·rowMax8AVX2(SB), NOSPLIT, $0-36
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	VBROADCASTSS scale+24(FP), Y4
	VMOVUPS (SI), Y0
	VMULPS  Y4, Y0, Y0
	MOVQ    $8, BX

vrmloop:
	CMPQ BX, CX
	JGE  vrmfold
	VMULPS (SI)(BX*4), Y4, Y1
	VMAXPS Y1, Y0, Y0
	ADDQ   $8, BX
	JMP    vrmloop

vrmfold:
	VEXTRACTF128 $1, Y0, X1
	VMAXPS  X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VMAXPS  X1, X0, X0
	VPSHUFD $0x55, X0, X1
	VMAXSS  X1, X0, X0
	VMOVSS  X0, ret+32(FP)
	VZEROUPPER
	RET

// func vscale8AVX2(o []float32, inv float32)
//
// o[j] *= inv in place. len(o) must be a multiple of 8.
TEXT ·vscale8AVX2(SB), NOSPLIT, $0-28
	MOVQ o_base+0(FP), DI
	MOVQ o_len+8(FP), CX
	VBROADCASTSS inv+24(FP), Y4
	XORQ BX, BX

vvsloop:
	CMPQ BX, CX
	JGE  vvsdone
	VMULPS (DI)(BX*4), Y4, Y0
	VMOVUPS Y0, (DI)(BX*4)
	ADDQ   $8, BX
	JMP    vvsloop

vvsdone:
	VZEROUPPER
	RET
