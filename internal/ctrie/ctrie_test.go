package ctrie

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestInsertAndContains(t *testing.T) {
	tr := New()
	if !tr.Insert([]string{"Andy", "Beshear"}) {
		t.Fatal("first insert should report true")
	}
	if tr.Insert([]string{"andy", "beshear"}) {
		t.Fatal("duplicate (case-insensitive) insert should report false")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Contains([]string{"ANDY", "BESHEAR"}) {
		t.Fatal("Contains must be case-insensitive")
	}
	if tr.Contains([]string{"andy"}) {
		t.Fatal("prefix of a surface form is not itself a surface form")
	}
	if tr.Insert(nil) {
		t.Fatal("empty insert must be a no-op")
	}
}

func TestPrefixAndNestedForms(t *testing.T) {
	tr := New()
	tr.InsertSurface("new york")
	tr.InsertSurface("new york city")
	tr.InsertSurface("new")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.MaxSurfaceLen() != 3 {
		t.Fatalf("MaxSurfaceLen = %d", tr.MaxSurfaceLen())
	}
	got := tr.Surfaces()
	sort.Strings(got)
	want := []string{"new", "new york", "new york city"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Surfaces = %v", got)
	}
}

func TestScanLongestMatch(t *testing.T) {
	tr := New()
	tr.InsertSurface("new york")
	tr.InsertSurface("new york city")
	toks := strings.Fields("i love New York City a lot")
	got := tr.Scan(toks)
	want := []Match{{Start: 2, End: 5, Surface: "new york city"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Scan = %v, want %v", got, want)
	}
}

func TestScanFallsBackToShorterMatch(t *testing.T) {
	tr := New()
	tr.InsertSurface("new york")
	tr.InsertSurface("new york city")
	toks := strings.Fields("flying to new york tomorrow")
	got := tr.Scan(toks)
	want := []Match{{Start: 2, End: 4, Surface: "new york"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Scan = %v, want %v", got, want)
	}
}

func TestScanMultipleAndAdjacent(t *testing.T) {
	tr := New()
	tr.InsertSurface("italy")
	tr.InsertSurface("canada")
	toks := strings.Fields("Italy Canada both closed borders with italy")
	got := tr.Scan(toks)
	want := []Match{
		{Start: 0, End: 1, Surface: "italy"},
		{Start: 1, End: 2, Surface: "canada"},
		{Start: 6, End: 7, Surface: "italy"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Scan = %v", got)
	}
}

func TestScanPartialPathThenRestart(t *testing.T) {
	// "andy beshear" is registered; "andy warhol" should not match,
	// but a later full mention must still be found even though "andy"
	// consumed trie steps.
	tr := New()
	tr.InsertSurface("andy beshear")
	toks := strings.Fields("andy warhol met andy beshear")
	got := tr.Scan(toks)
	want := []Match{{Start: 3, End: 5, Surface: "andy beshear"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Scan = %v", got)
	}
}

func TestScanOverlapCandidates(t *testing.T) {
	// Registered forms "a b" and "b c": scanning "a b c" should match
	// "a b" first (leftmost-longest), leaving "c" alone.
	tr := New()
	tr.InsertSurface("a b")
	tr.InsertSurface("b c")
	got := tr.Scan([]string{"a", "b", "c"})
	want := []Match{{Start: 0, End: 2, Surface: "a b"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Scan = %v", got)
	}
}

func TestScanEmpty(t *testing.T) {
	tr := New()
	if got := tr.Scan([]string{"anything"}); got != nil {
		t.Fatalf("empty trie Scan = %v", got)
	}
	tr.InsertSurface("x")
	if got := tr.Scan(nil); got != nil {
		t.Fatalf("nil tokens Scan = %v", got)
	}
}

// Property: every match returned by Scan is a registered surface form
// and matches are non-overlapping and sorted left to right.
func TestScanWellFormedProperty(t *testing.T) {
	vocab := []string{"a", "b", "c", "d"}
	f := func(formSeeds [3]uint16, sentSeed [10]uint8) bool {
		tr := New()
		for _, fs := range formSeeds {
			n := 1 + int(fs)%3
			toks := make([]string, n)
			v := int(fs)
			for i := range toks {
				toks[i] = vocab[v%len(vocab)]
				v /= len(vocab)
			}
			tr.Insert(toks)
		}
		sent := make([]string, len(sentSeed))
		for i, s := range sentSeed {
			sent[i] = vocab[int(s)%len(vocab)]
		}
		matches := tr.Scan(sent)
		prevEnd := 0
		for _, m := range matches {
			if m.Start < prevEnd || m.End <= m.Start || m.End > len(sent) {
				return false
			}
			if !tr.ContainsSurface(m.Surface) {
				return false
			}
			if canonical(sent[m.Start:m.End]) != m.Surface {
				return false
			}
			prevEnd = m.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkTrieScan measures the mention-extraction hot path: matches
// must reuse the canonical surface cached on the terminal node at
// Insert time instead of re-joining (and re-allocating) the matched
// tokens per hit. The allocs/op column is the regression guard — a
// match costs one slice append, not one string join.
func BenchmarkTrieScan(b *testing.B) {
	tr := New()
	vocab := []string{"andy", "beshear", "new", "york", "city", "italy", "canada", "covid", "governor", "update"}
	for i := 0; i < len(vocab); i++ {
		tr.Insert([]string{vocab[i]})
		for j := 0; j < len(vocab); j++ {
			if i != j {
				tr.Insert([]string{vocab[i], vocab[j]})
			}
		}
	}
	sent := strings.Fields("Governor Andy Beshear gives a covid update from New York City before flying to Italy and Canada again")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tr.Scan(sent)) == 0 {
			b.Fatal("no matches")
		}
	}
}

// TestScanSurfaceMatchesCanonical pins the node-cached surface to the
// canonical form of the matched tokens.
func TestScanSurfaceMatchesCanonical(t *testing.T) {
	tr := New()
	tr.Insert([]string{"New", "York"})
	tr.InsertSurface("ITALY")
	for _, m := range tr.Scan(strings.Fields("NEW YORK beats italy")) {
		if m.Surface != canonical([]string{"new", "york"}) && m.Surface != "italy" {
			t.Fatalf("surface %q not canonical", m.Surface)
		}
	}
	got := tr.Scan(strings.Fields("nEw YoRk"))
	if len(got) != 1 || got[0].Surface != "new york" {
		t.Fatalf("Scan = %v", got)
	}
}

// Property: insert then Contains is always true; Surfaces count equals Len.
func TestInsertContainsProperty(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "eps"}
	f := func(seeds [5]uint16) bool {
		tr := New()
		inserted := map[string]bool{}
		for _, s := range seeds {
			n := 1 + int(s)%3
			toks := make([]string, n)
			v := int(s)
			for i := range toks {
				toks[i] = vocab[v%len(vocab)]
				v /= len(vocab)
			}
			tr.Insert(toks)
			inserted[strings.Join(toks, " ")] = true
			if !tr.Contains(toks) {
				return false
			}
		}
		return tr.Len() == len(inserted) && len(tr.Surfaces()) == len(inserted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
