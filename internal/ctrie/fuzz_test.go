package ctrie

import (
	"strings"
	"testing"
)

// FuzzScan inserts surfaces derived from the fuzz input and scans a
// sentence derived from the same input, checking the scan invariants:
// matches are in-range, non-overlapping, left-to-right, and every
// match is a registered surface.
func FuzzScan(f *testing.F) {
	f.Add("us covid italy", "the us fights covid in italy")
	f.Add("new york,new york city", "i love new york city")
	f.Add("", "no registered surfaces")
	f.Fuzz(func(t *testing.T, surfacesCSV, sentence string) {
		tr := New()
		for _, s := range strings.Split(surfacesCSV, ",") {
			tr.InsertSurface(s)
		}
		tokens := strings.Fields(sentence)
		prevEnd := 0
		for _, m := range tr.Scan(tokens) {
			if m.Start < prevEnd || m.End <= m.Start || m.End > len(tokens) {
				t.Fatalf("ill-formed match %+v", m)
			}
			if !tr.ContainsSurface(m.Surface) {
				t.Fatalf("match %q is not registered", m.Surface)
			}
			prevEnd = m.End
		}
	})
}
