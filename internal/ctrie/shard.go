package ctrie

// Surface-form ownership hashing for the sharded serving fleet. A
// fleet of K engine processes partitions the Global NER phase by
// surface form: every shard replicates the stream (trie scans need the
// full trie, and overlap resolution couples surfaces within a
// sentence), but embeds, clusters and classifies only the surfaces it
// owns. Ownership must be a pure function of the canonical surface
// string so the router, every shard, and the identity tests all agree
// without coordination.

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// SurfaceHash returns the finalized FNV-1a 64-bit hash of a canonical
// surface form (lower-cased, space-joined — the form Insert
// materializes and Scan returns). Inlined rather than hash/fnv so the
// hot routing path does not allocate a hasher per lookup.
//
// Raw FNV-1a is avalanched through the SplitMix64 finalizer before
// use: for short lowercase ASCII strings the raw hash's low bits are
// dominated by the final characters, and `hash % K` for small K reads
// exactly those bits — measured on a Zipf-distributed stream, the
// three heaviest surface forms all landed on the same shard of two.
// The finalizer mixes every input bit into every output bit, making
// the mod-K bucket behave uniformly.
func SurfaceHash(surface string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(surface); i++ {
		h ^= uint64(surface[i])
		h *= fnvPrime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// OwnerShard maps a canonical surface form to its owning shard in a
// fleet of the given size. Any count below two collapses to single
// ownership (shard 0 owns everything).
func OwnerShard(surface string, count int) int {
	if count <= 1 {
		return 0
	}
	return int(SurfaceHash(surface) % uint64(count))
}
