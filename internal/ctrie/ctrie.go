// Package ctrie implements the CandidatePrefixTrie (CTrie) from the
// NER Globalizer paper: a case-insensitive prefix trie forest over
// token sequences. Local NER registers seed candidate surface forms in
// the CTrie; the Global NER mention-extraction step then scans each
// sentence against the trie to find every mention — including those
// Local NER missed — using a longest-subsequence match.
package ctrie

import (
	"strings"
	"unicode/utf8"
)

// node is one trie node, keyed by lower-cased token.
type node struct {
	children map[string]*node
	// terminal marks that the path from the root to this node spells a
	// registered candidate surface form.
	terminal bool
	// surface is the canonical (lower-cased, space-joined) form of the
	// path from the root, set when terminal. Materializing it once at
	// Insert time lets Scan return matches without re-joining tokens on
	// every hit — the former join was the dominant allocation of the
	// mention-extraction hot path.
	surface string
}

func newNode() *node { return &node{children: make(map[string]*node)} }

// Trie is a prefix trie forest over token sequences. Matching is
// case-insensitive; surface forms are stored in canonical lower-cased
// form. The zero value is not usable; call New.
type Trie struct {
	root *node
	size int
	// maxLen tracks the longest registered surface form in tokens,
	// bounding the scan window (the paper's parameter k).
	maxLen int
}

// New returns an empty CTrie.
func New() *Trie { return &Trie{root: newNode()} }

// Len returns the number of registered surface forms.
func (t *Trie) Len() int { return t.size }

// MaxSurfaceLen returns the token length of the longest registered
// surface form.
func (t *Trie) MaxSurfaceLen() int { return t.maxLen }

// Insert registers a candidate surface form given as a token sequence.
// Tokens are lower-cased. Inserting an empty sequence or a duplicate is
// a no-op; Insert reports whether the form was newly added.
func (t *Trie) Insert(tokens []string) bool {
	if len(tokens) == 0 {
		return false
	}
	n := t.root
	// One builder pass constructs the canonical surface alongside the
	// node walk, so Scan never has to join tokens per match.
	var b strings.Builder
	for i, tok := range tokens {
		key := strings.ToLower(tok)
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(key)
		child, ok := n.children[key]
		if !ok {
			child = newNode()
			n.children[key] = child
		}
		n = child
	}
	if n.terminal {
		return false
	}
	n.terminal = true
	n.surface = b.String()
	t.size++
	if len(tokens) > t.maxLen {
		t.maxLen = len(tokens)
	}
	return true
}

// InsertSurface registers a surface form given as a single
// space-separated string.
func (t *Trie) InsertSurface(surface string) bool {
	return t.Insert(strings.Fields(surface))
}

// Contains reports whether the exact token sequence is a registered
// surface form (case-insensitive).
func (t *Trie) Contains(tokens []string) bool {
	n := t.root
	for _, tok := range tokens {
		child, ok := n.children[strings.ToLower(tok)]
		if !ok {
			return false
		}
		n = child
	}
	return n.terminal
}

// ContainsSurface reports whether the space-separated surface form is
// registered.
func (t *Trie) ContainsSurface(surface string) bool {
	return t.Contains(strings.Fields(surface))
}

// Surfaces returns all registered surface forms in canonical form, in
// depth-first order.
func (t *Trie) Surfaces() []string {
	var out []string
	var walk func(n *node)
	walk = func(n *node) {
		if n.terminal {
			out = append(out, n.surface)
		}
		for _, child := range n.children {
			walk(child)
		}
	}
	walk(t.root)
	return out
}

// Match is one surface-form occurrence found by Scan: the half-open
// token range [Start, End) and the canonical surface form it matched.
type Match struct {
	Start, End int
	Surface    string
}

// Scan implements the mention-extraction walk of Section V-A: it
// scans the sentence left to right with an incrementally growing
// window, following CTrie paths with case-insensitive comparisons, and
// records the set of longest non-overlapping subsequences that match
// registered surface forms.
//
// When a window's match fails, the scan restarts after the last
// recorded match; if nothing in the window matched any CTrie path, the
// new window starts at the token immediately right of the previous
// window's first token.
func (t *Trie) Scan(tokens []string) []Match {
	var out []Match
	var buf []byte
	i := 0
	for i < len(tokens) {
		n := t.root
		bestEnd := -1
		var bestSurface string
		j := i
		for j < len(tokens) {
			child, ok := childFold(n, tokens[j], &buf)
			if !ok {
				break
			}
			n = child
			j++
			if n.terminal {
				bestEnd = j
				bestSurface = n.surface
			}
		}
		if bestEnd > 0 {
			out = append(out, Match{Start: i, End: bestEnd, Surface: bestSurface})
			i = bestEnd
		} else {
			i++
		}
	}
	return out
}

// childFold looks up tok's case-folded child without allocating per
// probe: already-lower-case ASCII tokens index the map directly, and
// mixed-case ASCII tokens are lowered into the caller's reusable
// scratch buffer, whose string conversion the map index elides. Only
// non-ASCII tokens fall back to strings.ToLower.
func childFold(n *node, tok string, buf *[]byte) (*node, bool) {
	lower := true
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c >= utf8.RuneSelf {
			child, ok := n.children[strings.ToLower(tok)]
			return child, ok
		}
		if 'A' <= c && c <= 'Z' {
			lower = false
		}
	}
	if lower {
		child, ok := n.children[tok]
		return child, ok
	}
	b := (*buf)[:0]
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	*buf = b
	child, ok := n.children[string(b)]
	return child, ok
}

// canonical lower-cases and space-joins tokens; kept for tests and
// callers that need the canonical form outside a trie walk.
func canonical(tokens []string) string {
	parts := make([]string, len(tokens))
	for i, t := range tokens {
		parts[i] = strings.ToLower(t)
	}
	return strings.Join(parts, " ")
}
