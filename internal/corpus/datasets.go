package corpus

import (
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// evalNoise returns the noise knobs of the evaluation streams: the
// full alternation distribution (train/test lexical shift), heavy case
// noise (microblog users rarely capitalize), realistic typo rates,
// about a third of tweets with no entity, and a tail of
// ambiguous/uninformative contexts that starve local processing.
func evalNoise(cfg StreamConfig) StreamConfig {
	cfg.ZipfExponent = 1.1
	cfg.AltFull = true
	cfg.TypoRate = 0.08
	cfg.CapNoiseRate = 0.12
	cfg.LowercaseRate = 0.35
	cfg.NonEntityRate = 0.3
	cfg.AmbiguousRate = 0.15
	cfg.UninformativeRate = 0.25
	return cfg
}

// trainNoise returns the noise knobs of the training corpora: the
// same generator restricted to canonical alternation variants and
// milder noise — a "pre-shift" crawl, as WNUT17's training split is
// relative to its novel-and-emerging test split.
func trainNoise(cfg StreamConfig) StreamConfig {
	cfg = evalNoise(cfg)
	cfg.AltFull = false
	cfg.TypoRate = 0.02
	cfg.CapNoiseRate = 0.08
	cfg.UninformativeRate = 0.15
	return cfg
}

// D1 models Table I's D1: a 1K-tweet single-topic stream with ~283
// unique entities.
func D1() *Dataset {
	return Generate(evalNoise(StreamConfig{
		Name: "D1", NumTweets: 1000, NumTopics: 1,
		PerTopicEntities: [4]int{100, 80, 60, 60},
		Ambiguity:        true, Streaming: true, Seed: 101,
	}))
}

// D2 models the Covid-19 stream of the case study: 2K tweets, one
// topic, ~461 unique entities.
func D2() *Dataset {
	return Generate(evalNoise(StreamConfig{
		Name: "D2", NumTweets: 2000, NumTopics: 1,
		PerTopicEntities: [4]int{150, 120, 110, 100},
		Ambiguity:        true, Streaming: true, Seed: 102,
	}))
}

// D3 models D3: 3K tweets over 3 topics, ~906 unique entities.
func D3() *Dataset {
	return Generate(evalNoise(StreamConfig{
		Name: "D3", NumTweets: 3000, NumTopics: 3,
		PerTopicEntities: [4]int{110, 90, 60, 60},
		Ambiguity:        true, Streaming: true, Seed: 103,
	}))
}

// D4 models D4: 6K tweets over 5 topics, ~674 unique entities (fewer
// entities than D3 despite more tweets — heavier recurrence).
func D4() *Dataset {
	return Generate(evalNoise(StreamConfig{
		Name: "D4", NumTweets: 6000, NumTopics: 5,
		PerTopicEntities: [4]int{50, 40, 25, 25},
		Ambiguity:        true, Streaming: true, Seed: 104,
	}))
}

// D5 models the training stream: 3430 tweets used to train the Phrase
// Embedder and Entity Classifier. Like the fine-tuning split, it is a
// pre-shift crawl (canonical alternation variants only) spanning two
// topics so the classifier sees diverse entity inventories.
func D5() *Dataset {
	cfg := trainNoise(StreamConfig{
		Name: "D5", NumTweets: 3430, NumTopics: 2,
		PerTopicEntities: [4]int{70, 55, 50, 45},
		Ambiguity:        true, Streaming: true, Seed: 105,
	})
	return Generate(cfg)
}

// WNUT17 models the WNUT17 test set: 1287 random-sampled tweets with
// low entity recurrence.
func WNUT17() *Dataset {
	return Generate(evalNoise(StreamConfig{
		Name: "WNUT17", NumTweets: 1287, NumTopics: 8,
		PerTopicEntities: [4]int{20, 15, 12, 12},
		Ambiguity:        true, Streaming: false, Seed: 106,
	}))
}

// WNUT17Train models the WNUT17 training split used to fine-tune the
// Local NER language model.
func WNUT17Train() *Dataset {
	cfg := trainNoise(StreamConfig{
		Name: "WNUT17-train", NumTweets: 3000, NumTopics: 10,
		PerTopicEntities: [4]int{25, 20, 15, 15},
		Ambiguity:        true, Streaming: false, Seed: 107,
	})
	return Generate(cfg)
}

// BTC models the Broad Twitter Corpus: 9553 random-sampled tweets.
func BTC() *Dataset {
	return Generate(evalNoise(StreamConfig{
		Name: "BTC", NumTweets: 9553, NumTopics: 12,
		PerTopicEntities: [4]int{20, 16, 12, 12},
		Ambiguity:        true, Streaming: false, Seed: 108,
	}))
}

// EvaluationSets returns the six annotated datasets of Tables III–V in
// paper order.
func EvaluationSets() []*Dataset {
	return []*Dataset{D1(), D2(), D3(), D4(), WNUT17(), BTC()}
}

// StreamingSets returns D1–D4, the datasets that retain Twitter-stream
// properties (used for Figure 3, Figure 4 and the error analysis).
func StreamingSets() []*Dataset {
	return []*Dataset{D1(), D2(), D3(), D4()}
}

// PretrainTweets generates an unlabeled tweet corpus for masked-LM
// pre-training of the BERTweet stand-in: mixed topics, full microblog
// noise.
func PretrainTweets(n int, seed int64) [][]string {
	d := Generate(evalNoise(StreamConfig{
		Name: "pretrain-tweets", NumTweets: n, NumTopics: 6,
		PerTopicEntities: [4]int{30, 25, 20, 20},
		Ambiguity:        true, Streaming: true, Seed: seed,
	}))
	out := make([][]string, 0, len(d.Sentences))
	for _, s := range d.Sentences {
		out = append(out, s.Tokens)
	}
	return out
}

// PretrainFormal generates a well-edited text corpus (no typos, no
// case noise, no hashtags, informative contexts only) for pre-training
// the BERT-NER baseline — the domain-mismatch that makes seminal BERT
// weaker than BERTweet on microblog text.
func PretrainFormal(n int, seed int64) [][]string {
	cfg := StreamConfig{
		Name: "pretrain-formal", NumTweets: n, NumTopics: 6,
		PerTopicEntities:  [4]int{30, 25, 20, 20},
		ZipfExponent:      1.1,
		TypoRate:          0,
		LowercaseRate:     0,
		NonEntityRate:     0.3,
		AmbiguousRate:     0,
		UninformativeRate: 0,
		Ambiguity:         false,
		NoHashtags:        true,
		Streaming:         true,
		Seed:              seed,
	}
	d := Generate(cfg)
	out := make([][]string, 0, len(d.Sentences))
	for _, s := range d.Sentences {
		out = append(out, s.Tokens)
	}
	return out
}

// SampleSentences returns up to n sentences drawn without replacement
// from the dataset, useful for building smaller debugging corpora.
func (d *Dataset) SampleSentences(n int, seed int64) []*types.Sentence {
	if n >= len(d.Sentences) {
		return d.Sentences
	}
	rng := nn.NewRNG(seed)
	perm := rng.Perm(len(d.Sentences))
	out := make([]*types.Sentence, n)
	for i := 0; i < n; i++ {
		out[i] = d.Sentences[perm[i]]
	}
	return out
}
