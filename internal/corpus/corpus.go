// Package corpus generates the synthetic microblog streams that stand
// in for the paper's crawled Twitter datasets (D1–D5) and benchmark
// corpora (WNUT17, BTC).
//
// The real datasets are gated behind the Twitter API and the authors'
// crawls, so per the reproduction's substitution rule this package
// reproduces the *phenomena* the paper's evaluation depends on, each
// behind an explicit knob:
//
//   - topical streams that repeat a finite entity inventory with
//     Zipfian mention frequencies (entity recurrence — the fuel of
//     collective processing, and the long tail of Figure 4);
//   - locally sparse, noisy context: uninformative templates, random
//     lower-casing and typos, which make isolated-message NER
//     inconsistent;
//   - ambiguous surface forms: strings shared between entity types
//     ("washington" PER/LOC) and between entities and non-entities
//     ("us" the country vs. "us" the pronoun);
//   - non-streaming corpora sampled across many topics with low
//     recurrence, on which global pooling should help less.
//
// All generation is deterministic given the seed.
package corpus

import (
	"nerglobalizer/internal/types"
)

// Dataset is a generated corpus: annotated sentences plus the metadata
// reported in Table I.
type Dataset struct {
	Name      string
	Sentences []*types.Sentence
	Topics    int
	Hashtags  int
	Streaming bool
}

// Size returns the number of tweets (each tweet generates exactly one
// sentence, matching the tweet counts of Table I).
func (d *Dataset) Size() int { return len(d.Sentences) }

// entityID identifies a unique entity as (canonical surface, type).
type entityID struct {
	surface string
	typ     types.EntityType
}

// UniqueEntities counts the distinct (surface form, type) pairs
// annotated in the dataset — the "#Entities" column of Table I.
func (d *Dataset) UniqueEntities() int {
	seen := make(map[entityID]bool)
	for _, s := range d.Sentences {
		for _, g := range s.Gold {
			if g.Type == types.None || g.End > len(s.Tokens) {
				continue
			}
			seen[entityID{s.SurfaceAt(g.Span), g.Type}] = true
		}
	}
	return len(seen)
}

// MentionCount returns the total number of gold entity mentions.
func (d *Dataset) MentionCount() int {
	n := 0
	for _, s := range d.Sentences {
		for _, g := range s.Gold {
			if g.Type != types.None {
				n++
			}
		}
	}
	return n
}

// GoldByKey indexes gold annotations by sentence key, the layout the
// metrics package consumes.
func (d *Dataset) GoldByKey() map[types.SentenceKey][]types.Entity {
	out := make(map[types.SentenceKey][]types.Entity, len(d.Sentences))
	for _, s := range d.Sentences {
		out[s.Key()] = s.Gold
	}
	return out
}
