package corpus

import (
	"strings"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// Entity is one inventory entry: a canonical surface form (possibly
// multi-token) and its type. Weight is the Zipf sampling weight
// assigned when the topic is built.
type Entity struct {
	Tokens []string
	Type   types.EntityType
	Weight float64
}

// Surface returns the canonical (lower-case) surface form.
func (e Entity) Surface() string { return types.CanonicalSurface(e.Tokens) }

// Syllable pools for pronounceable synthetic names. Keeping names
// synthetic (rather than a fixed list) lets every topic carry novel,
// out-of-vocabulary entities — the regime WNUT17 calls "novel and
// emerging entities" and the regime hashing embeddings must handle.
var (
	onsets  = []string{"b", "br", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z"}
	nuclei  = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou", "io"}
	codas   = []string{"", "n", "r", "s", "l", "m", "t", "k", "nd", "rn", "sh"}
	orgSuf  = []string{"corp", "group", "agency", "ministry", "council", "labs", "institute", "network", "party", "union"}
	locSuf  = []string{"", "", "", "land", "ville", "burg", "shire", "stan", "port"}
	miscSuf = []string{"virus", "flu", "fest", "gate", "con", "cup", "act", "bill"}
)

func syllable(rng *nn.RNG) string {
	return onsets[rng.Intn(len(onsets))] + nuclei[rng.Intn(len(nuclei))] + codas[rng.Intn(len(codas))]
}

func word(rng *nn.RNG, syllables int) string {
	var b strings.Builder
	for i := 0; i < syllables; i++ {
		b.WriteString(syllable(rng))
	}
	return b.String()
}

// newPerson generates a one- or two-token person name.
func newPerson(rng *nn.RNG) Entity {
	toks := []string{word(rng, 2)}
	if rng.Float64() < 0.6 {
		toks = append(toks, word(rng, 2))
	}
	return Entity{Tokens: toks, Type: types.Person}
}

// Suffix cues are deliberately weak: if synthetic names telegraphed
// their type through affixes, feature-engineered baselines could type
// entities from the name alone, which real-world novel entities
// rarely allow. Typing must come mostly from context.

// newLocation generates a location name.
func newLocation(rng *nn.RNG) Entity {
	base := word(rng, 2)
	if rng.Float64() < 0.25 {
		base += locSuf[3+rng.Intn(len(locSuf)-3)]
	}
	toks := []string{base}
	if rng.Float64() < 0.15 {
		toks = []string{"new", base}
	}
	return Entity{Tokens: toks, Type: types.Location}
}

// newOrganization generates an organization name, occasionally an
// all-caps acronym (like "NHS") or a multi-token name (like "justice
// department").
func newOrganization(rng *nn.RNG) Entity {
	r := rng.Float64()
	switch {
	case r < 0.2: // acronym
		n := 2 + rng.Intn(3)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(byte('A' + rng.Intn(26)))
		}
		return Entity{Tokens: []string{b.String()}, Type: types.Organization}
	case r < 0.45:
		return Entity{Tokens: []string{word(rng, 2), orgSuf[rng.Intn(len(orgSuf))]}, Type: types.Organization}
	default:
		return Entity{Tokens: []string{word(rng, 2+rng.Intn(2))}, Type: types.Organization}
	}
}

// newMiscellaneous generates a miscellaneous entity (disease, event,
// creative work — the mixed-genre catch-all type).
func newMiscellaneous(rng *nn.RNG) Entity {
	base := word(rng, 2)
	if rng.Float64() < 0.3 {
		base += miscSuf[rng.Intn(len(miscSuf))]
	}
	toks := []string{base}
	if rng.Float64() < 0.25 {
		toks = append(toks, word(rng, 1))
	}
	return Entity{Tokens: toks, Type: types.Miscellaneous}
}

// newEntity dispatches on type.
func newEntity(rng *nn.RNG, t types.EntityType) Entity {
	switch t {
	case types.Person:
		return newPerson(rng)
	case types.Location:
		return newLocation(rng)
	case types.Organization:
		return newOrganization(rng)
	default:
		return newMiscellaneous(rng)
	}
}
