package corpus

import "nerglobalizer/internal/types"

// Sentence templates. "{E}" is the entity slot, "{W}" a topic word,
// "{S}" a stopword filler, "{H}" a hashtag.
//
// Tokens containing '|' are morphological alternation families
// ("announced|announces|announcing"): one variant is sampled per use.
// Training corpora are generated with AltFull=false, restricting every
// family to its first (canonical) variant; evaluation streams sample
// the whole family. Unseen inflections defeat word-identity features
// (a CRF that learned "w-1=announced" gets nothing from "announcing")
// while subword/trigram-based encoders transfer across the family —
// the train/test lexical shift that makes microblog NER hard for
// feature-engineered systems, per WNUT17's "novel and emerging"
// setting.
//
// Informative templates give the encoder a learnable type cue;
// ambiguous templates are shared across types (a source of local
// mistyping); uninformative templates carry no cue at all (a source of
// local misses that occurrence mining later recovers).

var perTemplates = [][]string{
	{"{E}", "said|says|saying", "today", "that", "{W}", "is", "under", "control"},
	{"{E}", "announced|announces|announcing", "new", "{W}", "measures"},
	{"governor|governors", "{E}", "gives|gave|giving", "an", "update", "on", "{W}"},
	{"president", "{E}", "spoke|speaks|speaking", "about", "the", "{W}"},
	{"thank|thanks|thanking", "you", "{E}", "for", "your", "leadership"},
	{"{E}", "claims|claimed|claiming", "the", "{W}", "will", "end", "soon"},
	{"watch|watched|watching", "{E}", "address", "the", "nation", "tonight"},
	{"{E}", "refuses|refused|refusing", "to", "comment", "on", "{W}"},
	{"interview|interviews", "with", "{E}", "about", "{W}", "tonight"},
}

var locTemplates = [][]string{
	{"cases", "rise|rose|rising", "in", "{E}", "again"},
	{"{E}", "is", "under", "lockdown|lockdowns", "since", "monday"},
	{"travel|travels|travelling", "to", "{E}", "is", "banned"},
	{"the", "outbreak|outbreaks", "in", "{E}", "is", "slowing"},
	{"flights|flight", "from", "{E}", "cancelled|cancels|cancelling", "today"},
	{"people", "in", "{E}", "are", "staying|stayed|stay", "home"},
	{"{E}", "closes|closed|closing", "its", "borders", "over", "{W}"},
	{"hospitals|hospital", "across", "{E}", "are", "full"},
	{"new", "restrictions|restriction", "announced|announces|announcing", "in", "{E}"},
}

var orgTemplates = [][]string{
	{"the", "{E}", "issued|issues|issuing", "new", "{W}", "guidance"},
	{"{E}", "warns|warned|warning", "about", "the", "{W}"},
	{"officials|official", "at", "{E}", "confirmed|confirms|confirming", "the", "report"},
	{"{E}", "staff", "are", "working|worked|work", "overtime"},
	{"a", "statement|statements", "from", "{E}", "is", "expected"},
	{"{E}", "denies|denied|denying", "the", "{W}", "allegations"},
	{"funding|funds", "for", "{E}", "was", "approved|approves|approving"},
	{"the", "{E}", "released|releases|releasing", "its", "{W}", "numbers"},
}

var miscTemplates = [][]string{
	{"the", "{E}", "outbreak|outbreaks", "is", "spreading|spread|spreads"},
	{"{E}", "cases", "doubled|doubles|doubling", "this", "week"},
	{"symptoms|symptom", "of", "{E}", "include|included|includes", "fever"},
	{"a", "vaccine|vaccines", "for", "{E}", "is", "in", "trials"},
	{"{E}", "is", "trending|trended|trends", "after", "the", "{W}"},
	{"everyone", "is", "talking|talked|talks", "about", "{E}", "now"},
	{"tested|tests|testing", "positive", "for", "{E}", "yesterday"},
	{"the", "{E}", "pandemic", "changed|changes|changing", "everything"},
}

// ambiguousTemplates fit any entity type, starving the local model of
// a type cue while still signalling entity-hood.
var ambiguousTemplates = [][]string{
	{"thoughts|thought", "on", "{E}", "?"},
	{"{E}", "is", "all", "over", "the", "news"},
	{"can't", "believe|believes|believing", "{E}", "right", "now"},
	{"so", "much", "{W}", "news", "about", "{E}"},
	{"{E}", "again", "...", "wow"},
}

// uninformativeTemplates give no contextual cue at all; isolated
// processing tends to miss these mentions entirely.
var uninformativeTemplates = [][]string{
	{"{E}", "lol"},
	{"omg", "{E}"},
	{"{E}", "{H}"},
	{"{S}", "{E}", "{S}", "{S}"},
	{"{E}", "smh"},
}

// nonEntityTemplates contain no entity slot. Several deliberately use
// pronoun "us" and verb "trump", the classic surface-form ambiguity
// traps.
var nonEntityTemplates = [][]string{
	{"stay|stayed|staying", "home", "and", "stay", "safe", "everyone"},
	{"join|joins|joining", "us", "tonight", "for", "a", "live", "{W}", "chat"},
	{"they", "told|tells|telling", "us", "to", "wash", "our", "hands"},
	{"nothing", "can", "trump", "a", "good", "night", "of", "sleep"},
	{"what", "a", "week", "this", "has", "been", "{H}"},
	{"the", "{W}", "numbers", "look|looked|looking", "better", "today"},
	{"please", "wear|wears|wearing", "a", "mask", "when", "outside"},
	{"i", "miss|missed|missing", "going", "to", "restaurants", "so", "much"},
	{"working|worked|works", "from", "home", "again", "today", "{S}"},
	{"this", "{W}", "situation", "is", "exhausting"},
	{"help|helps|helping", "us", "share", "this", "{W}", "thread"},
	{"good", "morning", "everyone", "have", "a", "great", "day"},
}

var stopwords = []string{
	"the", "a", "and", "but", "so", "very", "just", "really", "still",
	"also", "now", "then", "here", "there", "today", "again", "maybe",
}

// templatesForType returns the informative template bank for a type.
func templatesForType(t types.EntityType) [][]string {
	switch t {
	case types.Person:
		return perTemplates
	case types.Location:
		return locTemplates
	case types.Organization:
		return orgTemplates
	default:
		return miscTemplates
	}
}
