package corpus

import (
	"math"
	"strings"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// Topic is one conversation stream: a hashtag set, topic jargon, and a
// Zipf-weighted entity inventory.
type Topic struct {
	Name     string
	Hashtags []string
	Words    []string
	Entities []Entity
	weights  []float64 // cumulative Zipf weights for sampling
}

// GenerateTopic builds a topic with the given per-type entity counts
// and Zipf exponent. When ambiguity is true, the inventory includes
// the paper's trap cases: a person/location surface-form collision and
// the location "us" (colliding with the pronoun in non-entity
// templates) plus the person "trump" (colliding with the verb).
func GenerateTopic(rng *nn.RNG, name string, nPer, nLoc, nOrg, nMisc int, zipfExp float64, ambiguity bool) *Topic {
	t := &Topic{Name: name}
	nh := 1 + rng.Intn(2)
	for i := 0; i < nh; i++ {
		t.Hashtags = append(t.Hashtags, "#"+word(rng, 2))
	}
	for i := 0; i < 6; i++ {
		t.Words = append(t.Words, word(rng, 2))
	}
	counts := map[types.EntityType]int{
		types.Person: nPer, types.Location: nLoc,
		types.Organization: nOrg, types.Miscellaneous: nMisc,
	}
	for _, et := range types.EntityTypes {
		for i := 0; i < counts[et]; i++ {
			t.Entities = append(t.Entities, newEntity(rng, et))
		}
	}
	if ambiguity && nPer > 0 && nLoc > 0 {
		// A location that reuses a person's last name (the
		// "washington" case).
		var per *Entity
		for i := range t.Entities {
			if t.Entities[i].Type == types.Person && len(t.Entities[i].Tokens) == 2 {
				per = &t.Entities[i]
				break
			}
		}
		if per != nil {
			t.Entities = append(t.Entities, Entity{
				Tokens: []string{per.Tokens[1]},
				Type:   types.Location,
			})
		}
		// The pronoun-colliding country and the verb-colliding person.
		t.Entities = append(t.Entities,
			Entity{Tokens: []string{"us"}, Type: types.Location},
			Entity{Tokens: []string{"trump"}, Type: types.Person},
		)
	}
	// Zipf weights over a shuffled inventory so types interleave along
	// the frequency ranking.
	rng.Shuffle(len(t.Entities), func(i, j int) {
		t.Entities[i], t.Entities[j] = t.Entities[j], t.Entities[i]
	})
	cum := 0.0
	t.weights = make([]float64, len(t.Entities))
	for i := range t.Entities {
		w := 1 / math.Pow(float64(i+1), zipfExp)
		t.Entities[i].Weight = w
		cum += w
		t.weights[i] = cum
	}
	return t
}

// sampleEntity draws an entity index from the topic's Zipf
// distribution.
func (t *Topic) sampleEntity(rng *nn.RNG) *Entity {
	if len(t.Entities) == 0 {
		return nil
	}
	x := rng.Float64() * t.weights[len(t.weights)-1]
	lo, hi := 0, len(t.weights)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.weights[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &t.Entities[lo]
}

// StreamConfig controls dataset generation.
type StreamConfig struct {
	Name             string
	NumTweets        int
	NumTopics        int
	PerTopicEntities [4]int // PER, LOC, ORG, MISC counts per topic
	ZipfExponent     float64
	// TypoRate is the per-token probability of a character-level typo
	// on filler tokens (entities get a tenth of it).
	TypoRate float64
	// LowercaseRate is the probability an entity mention is rendered
	// fully lower-cased (case noise).
	LowercaseRate float64
	// CapNoiseRate is the probability a non-entity token is rendered
	// capitalized — the stray capitalization of real tweets that makes
	// "capitalized ⇒ entity" unreliable and feeds false positives into
	// local NER (which the Entity Classifier later filters).
	CapNoiseRate float64
	// NonEntityRate is the fraction of tweets with no entity at all.
	NonEntityRate float64
	// AmbiguousRate is, among entity tweets, the fraction drawn from
	// type-agnostic templates.
	AmbiguousRate float64
	// UninformativeRate is, among entity tweets, the fraction drawn
	// from cue-free templates.
	UninformativeRate float64
	// Ambiguity injects surface-form collision entities.
	Ambiguity bool
	// NoHashtags strips hashtags entirely (formal-text corpora).
	NoHashtags bool
	// AltFull samples template alternation families in full; when
	// false (training corpora) only each family's first, canonical
	// variant is used, creating the train/test lexical shift of the
	// WNUT17 "novel and emerging" setting.
	AltFull bool
	// Streaming marks topical streams (Table I D1–D4); false models
	// random-sampled corpora (WNUT17/BTC) where each tweet draws a
	// fresh micro-topic, killing entity recurrence.
	Streaming bool
	Seed      int64
}

// Generate builds a dataset from the configuration.
func Generate(cfg StreamConfig) *Dataset {
	rng := nn.NewRNG(cfg.Seed)
	var topics []*Topic
	n := cfg.NumTopics
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		topics = append(topics, GenerateTopic(
			rng, cfg.Name+"-t"+itoa(i),
			cfg.PerTopicEntities[0], cfg.PerTopicEntities[1],
			cfg.PerTopicEntities[2], cfg.PerTopicEntities[3],
			cfg.ZipfExponent, cfg.Ambiguity))
	}
	if cfg.NoHashtags {
		for _, t := range topics {
			t.Hashtags = nil
		}
	}
	d := &Dataset{Name: cfg.Name, Topics: n, Streaming: cfg.Streaming}
	for _, t := range topics {
		d.Hashtags += len(t.Hashtags)
	}
	for i := 0; i < cfg.NumTweets; i++ {
		topic := topics[rng.Intn(len(topics))]
		if !cfg.Streaming {
			// Random sampling: most tweets come from throwaway
			// micro-topics with fresh entities, so recurrence is low.
			if rng.Float64() < 0.75 {
				topic = GenerateTopic(rng, "micro", 2, 2, 1, 1, 1.0, false)
				if cfg.NoHashtags {
					topic.Hashtags = nil
				}
			}
		}
		s := generateSentence(rng, topic, cfg, i)
		d.Sentences = append(d.Sentences, s)
	}
	return d
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// generateSentence renders one tweet-sentence with gold annotations.
func generateSentence(rng *nn.RNG, topic *Topic, cfg StreamConfig, tweetID int) *types.Sentence {
	s := &types.Sentence{TweetID: tweetID}
	if rng.Float64() < cfg.NonEntityRate || len(topic.Entities) == 0 {
		tmpl := nonEntityTemplates[rng.Intn(len(nonEntityTemplates))]
		s.Tokens = fillTemplate(rng, tmpl, nil, topic, cfg, s)
		return s
	}
	ent := topic.sampleEntity(rng)
	var tmpl []string
	switch r := rng.Float64(); {
	case r < cfg.UninformativeRate:
		tmpl = uninformativeTemplates[rng.Intn(len(uninformativeTemplates))]
	case r < cfg.UninformativeRate+cfg.AmbiguousRate:
		tmpl = ambiguousTemplates[rng.Intn(len(ambiguousTemplates))]
	default:
		bank := templatesForType(ent.Type)
		tmpl = bank[rng.Intn(len(bank))]
	}
	s.Tokens = fillTemplate(rng, tmpl, ent, topic, cfg, s)
	// Occasionally append the topic hashtag, mimicking stream crawls
	// keyed on hashtags.
	if cfg.Streaming && rng.Float64() < 0.3 && len(topic.Hashtags) > 0 {
		s.Tokens = append(s.Tokens, topic.Hashtags[rng.Intn(len(topic.Hashtags))])
	}
	return s
}

// fillTemplate expands template placeholders, rendering the entity
// mention with case noise and recording its gold span on s.
func fillTemplate(rng *nn.RNG, tmpl []string, ent *Entity, topic *Topic, cfg StreamConfig, s *types.Sentence) []string {
	var out []string
	for _, tok := range tmpl {
		switch tok {
		case "{E}":
			if ent == nil {
				continue
			}
			start := len(out)
			out = append(out, renderEntity(rng, ent, cfg)...)
			s.Gold = append(s.Gold, types.Entity{
				Span: types.Span{Start: start, End: len(out)},
				Type: ent.Type,
			})
		case "{W}":
			out = append(out, maybeCap(rng, maybeTypo(rng, topic.Words[rng.Intn(len(topic.Words))], cfg.TypoRate), cfg.CapNoiseRate))
		case "{S}":
			out = append(out, maybeCap(rng, stopwords[rng.Intn(len(stopwords))], cfg.CapNoiseRate))
		case "{H}":
			if len(topic.Hashtags) > 0 {
				out = append(out, topic.Hashtags[rng.Intn(len(topic.Hashtags))])
			}
		default:
			out = append(out, maybeCap(rng, maybeTypo(rng, chooseAlternation(rng, tok, cfg.AltFull), cfg.TypoRate), cfg.CapNoiseRate))
		}
	}
	return out
}

// chooseAlternation samples one variant of a '|'-separated template
// token. With full=false only the first (canonical) variant is used.
func chooseAlternation(rng *nn.RNG, tok string, full bool) string {
	if !strings.Contains(tok, "|") {
		return tok
	}
	parts := strings.Split(tok, "|")
	if !full {
		return parts[0]
	}
	return parts[rng.Intn(len(parts))]
}

// renderEntity renders an entity's tokens with casing noise and a low
// typo rate (a typo'd mention escapes exact occurrence mining, just as
// in the real system).
func renderEntity(rng *nn.RNG, ent *Entity, cfg StreamConfig) []string {
	out := make([]string, len(ent.Tokens))
	lower := rng.Float64() < cfg.LowercaseRate
	for i, tok := range ent.Tokens {
		if isAcronym(tok) {
			out[i] = tok
		} else if lower {
			out[i] = tok
		} else {
			out[i] = capitalize(tok)
		}
		out[i] = maybeTypo(rng, out[i], cfg.TypoRate/10)
	}
	return out
}

func isAcronym(tok string) bool {
	return tok != "" && tok == strings.ToUpper(tok) && strings.ToLower(tok) != tok
}

func capitalize(tok string) string {
	if tok == "" {
		return tok
	}
	return strings.ToUpper(tok[:1]) + tok[1:]
}

// maybeCap capitalizes a token with probability rate.
func maybeCap(rng *nn.RNG, tok string, rate float64) string {
	if rate <= 0 || rng.Float64() >= rate {
		return tok
	}
	return capitalize(tok)
}

// maybeTypo applies a single character-level mutation with probability
// rate: swap of adjacent characters or deletion.
func maybeTypo(rng *nn.RNG, tok string, rate float64) string {
	if rate <= 0 || rng.Float64() >= rate || len(tok) < 3 {
		return tok
	}
	b := []byte(tok)
	i := rng.Intn(len(b) - 1)
	if rng.Float64() < 0.5 {
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	}
	return string(append(b[:i], b[i+1:]...))
}
