package corpus

import (
	"strings"
	"testing"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

func smallConfig() StreamConfig {
	return evalNoise(StreamConfig{
		Name: "test", NumTweets: 300, NumTopics: 2,
		PerTopicEntities: [4]int{10, 8, 6, 6},
		Ambiguity:        true, Streaming: true, Seed: 42,
	})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Sentences) != len(b.Sentences) {
		t.Fatal("sizes differ")
	}
	for i := range a.Sentences {
		if a.Sentences[i].Text() != b.Sentences[i].Text() {
			t.Fatalf("sentence %d differs", i)
		}
	}
}

func TestGenerateGoldSpansValid(t *testing.T) {
	d := Generate(smallConfig())
	if d.Size() != 300 {
		t.Fatalf("size = %d", d.Size())
	}
	for _, s := range d.Sentences {
		for _, g := range s.Gold {
			if g.Start < 0 || g.End > len(s.Tokens) || g.Start >= g.End {
				t.Fatalf("invalid gold span %+v in %v", g, s.Tokens)
			}
			if g.Type == types.None {
				t.Fatal("gold entity with None type")
			}
		}
	}
}

func TestGenerateEntityRecurrence(t *testing.T) {
	d := Generate(smallConfig())
	// Streaming datasets must repeat entities: mentions should clearly
	// exceed unique entities.
	unique := d.UniqueEntities()
	mentions := d.MentionCount()
	if unique == 0 || mentions == 0 {
		t.Fatal("no entities generated")
	}
	if float64(mentions) < 1.5*float64(unique) {
		t.Fatalf("insufficient recurrence: %d mentions over %d entities", mentions, unique)
	}
}

func TestStreamingVsNonStreamingRecurrence(t *testing.T) {
	stream := D1()
	random := WNUT17()
	sRec := float64(stream.MentionCount()) / float64(stream.UniqueEntities())
	rRec := float64(random.MentionCount()) / float64(random.UniqueEntities())
	if sRec <= rRec {
		t.Fatalf("streaming recurrence (%v) should exceed non-streaming (%v)", sRec, rRec)
	}
}

func TestTableIShapes(t *testing.T) {
	cases := []struct {
		d     *Dataset
		size  int
		paper int // paper's #Entities (approximate target)
	}{
		{D1(), 1000, 283},
		{D2(), 2000, 461},
	}
	for _, c := range cases {
		if c.d.Size() != c.size {
			t.Errorf("%s size = %d, want %d", c.d.Name, c.d.Size(), c.size)
		}
		u := c.d.UniqueEntities()
		// The synthetic inventory targets the paper's magnitude; allow
		// a factor-of-two band.
		if u < c.paper/2 || u > c.paper*2 {
			t.Errorf("%s unique entities = %d, paper %d", c.d.Name, u, c.paper)
		}
	}
}

func TestAmbiguitySurfacesPresent(t *testing.T) {
	cfg := smallConfig()
	cfg.NumTweets = 1200 // enough draws to hit the injected traps
	d := Generate(cfg)
	// "us" must occur both as a gold Location mention and as a plain
	// pronoun token in non-entity contexts.
	var asEntity, asPronoun bool
	for _, s := range d.Sentences {
		goldAt := map[int]bool{}
		for _, g := range s.Gold {
			for i := g.Start; i < g.End; i++ {
				goldAt[i] = true
			}
			if g.Span.Len() == 1 && strings.EqualFold(s.Tokens[g.Start], "us") && g.Type == types.Location {
				asEntity = true
			}
		}
		for i, tok := range s.Tokens {
			if strings.EqualFold(tok, "us") && !goldAt[i] {
				asPronoun = true
			}
		}
	}
	if !asEntity || !asPronoun {
		t.Fatalf("ambiguity traps missing: entity=%v pronoun=%v", asEntity, asPronoun)
	}
}

func TestZipfLongTail(t *testing.T) {
	d := D2()
	freq := map[string]int{}
	for _, s := range d.Sentences {
		for _, g := range s.Gold {
			freq[s.SurfaceAt(g.Span)+"/"+g.Type.String()]++
		}
	}
	max, singletons := 0, 0
	for _, f := range freq {
		if f > max {
			max = f
		}
		if f == 1 {
			singletons++
		}
	}
	if max < 10 {
		t.Fatalf("head entity frequency = %d, want Zipfian head", max)
	}
	if singletons < len(freq)/10 {
		t.Fatalf("long tail too thin: %d singletons of %d entities", singletons, len(freq))
	}
}

func TestGoldByKeyCoversAllSentences(t *testing.T) {
	d := Generate(smallConfig())
	gold := d.GoldByKey()
	if len(gold) != len(d.Sentences) {
		t.Fatalf("gold map size %d, sentences %d", len(gold), len(d.Sentences))
	}
}

func TestPretrainCorpora(t *testing.T) {
	tw := PretrainTweets(100, 9)
	if len(tw) != 100 {
		t.Fatalf("tweets = %d", len(tw))
	}
	formal := PretrainFormal(100, 9)
	if len(formal) != 100 {
		t.Fatalf("formal = %d", len(formal))
	}
	// Formal text must contain no hashtags.
	for _, sent := range formal {
		for _, tok := range sent {
			if strings.HasPrefix(tok, "#") {
				t.Fatalf("formal corpus contains hashtag %q", tok)
			}
		}
	}
}

func TestSampleSentences(t *testing.T) {
	d := Generate(smallConfig())
	s := d.SampleSentences(10, 3)
	if len(s) != 10 {
		t.Fatalf("sampled %d", len(s))
	}
	all := d.SampleSentences(10000, 3)
	if len(all) != d.Size() {
		t.Fatal("oversample should return everything")
	}
}

func TestMaybeTypoPreservesShortTokens(t *testing.T) {
	rng := nn.NewRNG(1)
	if got := maybeTypo(rng, "ab", 1); got != "ab" {
		t.Fatalf("short token mutated: %q", got)
	}
	// With rate 1 a long token must change.
	changed := false
	for i := 0; i < 20; i++ {
		if maybeTypo(rng, "coronavirus", 1) != "coronavirus" {
			changed = true
		}
	}
	if !changed {
		t.Fatal("typo never applied at rate 1")
	}
}

func TestGenerateTopicAmbiguityInjection(t *testing.T) {
	rng := nn.NewRNG(5)
	topic := GenerateTopic(rng, "x", 5, 5, 2, 2, 1.1, true)
	surfaces := map[string]map[types.EntityType]bool{}
	for _, e := range topic.Entities {
		if surfaces[e.Surface()] == nil {
			surfaces[e.Surface()] = map[types.EntityType]bool{}
		}
		surfaces[e.Surface()][e.Type] = true
	}
	if !surfaces["us"][types.Location] {
		t.Fatal("ambiguous 'us' location missing")
	}
	if !surfaces["trump"][types.Person] {
		t.Fatal("ambiguous 'trump' person missing")
	}
}
