// Package localner implements the Local NER phase of NER Globalizer: a
// traditional sequence tagger that processes each tweet sentence in
// isolation. A Transformer encoder (the BERTweet stand-in) produces
// token-level contextual embeddings, a token-classification head emits
// BIO labels, and the whole stack is fine-tuned end-to-end on an
// annotated training set.
//
// Its outputs — seed candidate surface forms and entity-aware token
// embeddings — feed the Global NER stage. As in the paper, Local NER
// acts as a deliberately weak labeller: locally sparse context makes
// its extractions inconsistent, which is exactly what Global NER
// corrects.
package localner

import (
	"math"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

// Encoder is the language-model contract Local NER needs: a trainable
// sequence encoder producing one contextual embedding per token. Both
// the Transformer stand-in (internal/transformer) and the BiGRU
// (internal/rnn) satisfy it — the paper notes either family serves as
// the Local NER language model, and the pipeline is decoupled from the
// choice.
type Encoder interface {
	Forward(tokens []string, train bool) *nn.Matrix
	// Infer must equal Forward(tokens, false) while writing no encoder
	// state, so concurrent calls over one trained encoder are safe.
	Infer(tokens []string) *nn.Matrix
	Backward(dout *nn.Matrix)
	Params() []*nn.Param
	Truncate(tokens []string) []string
	Dim() int
	RNG() *nn.RNG
}

// BatchEncoder is the optional extension of Encoder implemented by
// encoders whose inference path can pack many sentences into one flat
// token matrix (the Transformer). InferBatch must return, for every
// sentence, exactly the matrix Infer would — the batch is a packing,
// not an approximation.
type BatchEncoder interface {
	InferBatch(batch [][]string) []*nn.Matrix
}

// BatchEncoderAt is the optional extension of BatchEncoder implemented
// by encoders that can run one inference call at an explicit precision
// tier regardless of the configured default (the Transformer). Used
// where a reduced-tier pipeline needs a higher-precision forward for a
// specific consumer — e.g. the i8 tier re-embedding mentioned
// sentences at f32 for the Global NER phase.
type BatchEncoderAt interface {
	InferBatchAt(batch [][]string, p nn.Precision) []*nn.Matrix
}

// PrecisionEncoder is the optional extension of Encoder implemented by
// encoders with selectable inference precision tiers (the
// Transformer). SetPrecision switches every subsequent Infer and
// InferBatch call onto the tier's kernels; Precision reports the
// active tier.
type PrecisionEncoder interface {
	SetPrecision(nn.Precision)
	Precision() nn.Precision
}

// Tagger is a fine-tunable BIO token tagger over a sequence encoder.
type Tagger struct {
	enc  Encoder
	head *nn.Dense
	opt  *nn.Adam
	rng  *nn.RNG

	// WordDropout is the probability that a token is replaced by the
	// mask token during fine-tuning. Microblog NER must label entities
	// never seen in training; masking identities forces the tagger to
	// read context instead of memorizing names — the robustness a
	// large pre-trained subword vocabulary provides implicitly.
	WordDropout float64

	// BatchTokens caps the packed tokens per inference call when the
	// encoder implements BatchEncoder: RunBatch and EmbedBatch pack
	// contiguous sentences until the truncated token count would exceed
	// it. Zero or negative disables packing (one sentence per worker
	// item, the pre-batching behavior). The setting changes throughput
	// only — outputs are bit-identical at every value.
	BatchTokens int
}

// NewTagger attaches a fresh classification head to the encoder. The
// optimizer covers both encoder and head, so Train fine-tunes
// end-to-end (as the paper does before freezing the encoder for the
// Global NER stage).
func NewTagger(enc Encoder, lr float64) *Tagger {
	rng := enc.RNG().Fork()
	head := nn.NewDense("ner.head", enc.Dim(), types.NumBIOLabels, rng)
	opt := nn.NewAdam(lr)
	opt.Register(enc.Params()...)
	opt.Register(head.Params()...)
	return &Tagger{enc: enc, head: head, opt: opt, rng: rng}
}

// Encoder returns the underlying encoder (used by the Phrase Embedder,
// which consumes the same entity-aware token embeddings with the
// encoder weights frozen, and by masked-LM pre-training when the
// encoder is a Transformer).
func (t *Tagger) Encoder() Encoder { return t.enc }

// Dim returns the token-embedding dimensionality.
func (t *Tagger) Dim() int { return t.enc.Dim() }

// SetPrecision selects the inference precision tier of the underlying
// encoder, when it supports tiers. The classification head stays f64
// (an O(dim·labels) GEMM — negligible next to the encoder). Returns
// false when the encoder has no tier support and a reduced tier was
// requested, so callers can reject the configuration instead of
// silently running exact.
func (t *Tagger) SetPrecision(p nn.Precision) bool {
	if pe, ok := t.enc.(PrecisionEncoder); ok {
		pe.SetPrecision(p)
		return true
	}
	return p == nn.F64
}

// Precision reports the encoder's active inference precision tier
// (F64 for encoders without tier support).
func (t *Tagger) Precision() nn.Precision {
	if pe, ok := t.enc.(PrecisionEncoder); ok {
		return pe.Precision()
	}
	return nn.F64
}

// TrainEpoch fine-tunes for one shuffled pass over the annotated
// sentences and returns the mean token cross-entropy.
func (t *Tagger) TrainEpoch(sentences []*types.Sentence) float64 {
	perm := t.rng.Perm(len(sentences))
	total, count := 0.0, 0
	for _, idx := range perm {
		s := sentences[idx]
		if len(s.Tokens) == 0 {
			continue
		}
		tokens := t.enc.Truncate(s.Tokens)
		labels := types.EncodeBIO(len(tokens), s.Gold)
		targets := make([]int, len(tokens))
		for i, l := range labels {
			targets[i] = int(l)
		}
		if t.WordDropout > 0 {
			masked := make([]string, len(tokens))
			copy(masked, tokens)
			for i := range masked {
				if t.rng.Float64() < t.WordDropout {
					masked[i] = transformer.MaskToken
				}
			}
			tokens = masked
		}
		h := t.enc.Forward(tokens, true)
		logits := t.head.Forward(h, true)
		loss, dlogits := nn.SoftmaxCrossEntropy(logits, targets)
		dh := t.head.Backward(dlogits)
		t.enc.Backward(dh)
		nn.ClipGrads(t.params(), 5)
		t.opt.Step()
		total += loss
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Train runs epochs passes of fine-tuning, returning the per-epoch
// mean losses.
func (t *Tagger) Train(sentences []*types.Sentence, epochs int) []float64 {
	losses := make([]float64, 0, epochs)
	for i := 0; i < epochs; i++ {
		losses = append(losses, t.TrainEpoch(sentences))
	}
	return losses
}

func (t *Tagger) params() []*nn.Param {
	return append(t.enc.Params(), t.head.Params()...)
}

// Params returns every trainable parameter of the tagger (encoder and
// classification head), for checkpointing.
func (t *Tagger) Params() []*nn.Param { return t.params() }

// Result is the Local NER output for one sentence: the BIO labels, the
// decoded entity spans, and the final-layer entity-aware token
// embeddings (one row per surviving token after truncation).
type Result struct {
	Tokens     []string
	Labels     []types.BIOLabel
	Entities   []types.Entity
	Embeddings *nn.Matrix
}

// Run tags one sentence and returns labels, decoded entities, and the
// token embeddings from the same forward pass. It uses the cache-free
// inference path, so concurrent Run calls on one trained tagger are
// safe (training must not run at the same time).
func (t *Tagger) Run(tokens []string) *Result {
	tokens = t.enc.Truncate(tokens)
	if len(tokens) == 0 {
		return &Result{}
	}
	return t.resultFrom(tokens, t.enc.Infer(tokens))
}

// resultFrom decodes the classification head over already-computed
// token embeddings. Shared by the per-sentence and packed-batch paths
// so both assemble byte-identical Results.
func (t *Tagger) resultFrom(tokens []string, h *nn.Matrix) *Result {
	logits := t.head.Infer(h)
	labels := make([]types.BIOLabel, len(tokens))
	for i := 0; i < logits.Rows; i++ {
		labels[i] = types.BIOLabel(nn.ArgMax(logits.Row(i)))
	}
	return &Result{
		Tokens:     tokens,
		Labels:     labels,
		Entities:   types.DecodeBIO(labels),
		Embeddings: h,
	}
}

// Margins returns the per-token decision margin — best head logit
// minus runner-up — over already-computed token embeddings. It is a
// diagnostic for the reduced-precision tiers: a token whose margin is
// smaller than a kernel's error bound is one a tier could flip, so the
// golden-stream equality tests print the margin distribution when a
// tier changes an annotation.
func (t *Tagger) Margins(h *nn.Matrix) []float64 {
	logits := t.head.Infer(h)
	margins := make([]float64, logits.Rows)
	for i := range margins {
		row := logits.Row(i)
		best, next := math.Inf(-1), math.Inf(-1)
		for _, v := range row {
			if v > best {
				best, next = v, best
			} else if v > next {
				next = v
			}
		}
		margins[i] = best - next
	}
	return margins
}

// packSpans splits [0, len(sentences)) into contiguous spans whose
// truncated token counts stay within BatchTokens. Every span holds at
// least one sentence, so oversized sentences still run (alone). The
// split depends only on sentence lengths and BatchTokens — never on
// the worker count — which keeps batched runs deterministic.
func (t *Tagger) packSpans(sentences [][]string) [][2]int {
	spans := make([][2]int, 0, len(sentences)/4+1)
	lo, toks := 0, 0
	for i, s := range sentences {
		T := len(t.enc.Truncate(s))
		if i > lo && toks+T > t.BatchTokens {
			spans = append(spans, [2]int{lo, i})
			lo, toks = i, 0
		}
		toks += T
	}
	if lo < len(sentences) {
		spans = append(spans, [2]int{lo, len(sentences)})
	}
	return spans
}

// RunBatch tags many sentences over the pool. When the encoder
// supports batched inference and BatchTokens is set, contiguous
// sentences are packed into flat token matrices and each worker runs
// one packed span; otherwise it falls back to one sentence per worker
// item. Results land at the sentence's own index either way, so the
// output is identical to a serial Run loop at any worker count and any
// batch size. A nil pool runs serially.
func (t *Tagger) RunBatch(sentences [][]string, pool *parallel.Pool) []*Result {
	be, ok := t.enc.(BatchEncoder)
	if !ok || t.BatchTokens <= 0 {
		return parallel.MapOrdered(pool, len(sentences), func(i int) *Result {
			return t.Run(sentences[i])
		})
	}
	spans := t.packSpans(sentences)
	results := make([]*Result, len(sentences))
	pool.ForEach(len(spans), func(si int) {
		lo, hi := spans[si][0], spans[si][1]
		hs := be.InferBatch(sentences[lo:hi])
		for i := lo; i < hi; i++ {
			tokens := t.enc.Truncate(sentences[i])
			if len(tokens) == 0 {
				results[i] = &Result{}
				continue
			}
			results[i] = t.resultFrom(tokens, hs[i-lo])
		}
	})
	return results
}

// EmbedBatch returns the token embeddings of many sentences — the
// batched counterpart of Embed, packing sentences through the encoder
// exactly like RunBatch. Outputs are bit-identical to per-sentence
// Embed calls.
func (t *Tagger) EmbedBatch(sentences [][]string, pool *parallel.Pool) []*nn.Matrix {
	be, ok := t.enc.(BatchEncoder)
	if !ok || t.BatchTokens <= 0 {
		return parallel.MapOrdered(pool, len(sentences), func(i int) *nn.Matrix {
			return t.Embed(sentences[i])
		})
	}
	spans := t.packSpans(sentences)
	out := make([]*nn.Matrix, len(sentences))
	pool.ForEach(len(spans), func(si int) {
		lo, hi := spans[si][0], spans[si][1]
		copy(out[lo:hi], be.InferBatch(sentences[lo:hi]))
	})
	return out
}

// Embed returns just the entity-aware token embeddings for a sentence,
// without decoding labels. Used when re-embedding sentences during
// Global NER. Like Run, it is safe to call concurrently on a trained
// tagger.
func (t *Tagger) Embed(tokens []string) *nn.Matrix {
	tokens = t.enc.Truncate(tokens)
	if len(tokens) == 0 {
		return nn.NewMatrix(0, t.enc.Dim())
	}
	return t.enc.Infer(tokens)
}

// EmbedAt is Embed at an explicit precision tier, regardless of the
// encoder's configured default. Encoders without an explicit-tier path
// (the BiGRU, which only has the exact f64 path) run their ordinary
// inference instead.
func (t *Tagger) EmbedAt(tokens []string, p nn.Precision) *nn.Matrix {
	tokens = t.enc.Truncate(tokens)
	if len(tokens) == 0 {
		return nn.NewMatrix(0, t.enc.Dim())
	}
	if be, ok := t.enc.(BatchEncoderAt); ok {
		return be.InferBatchAt([][]string{tokens}, p)[0]
	}
	return t.enc.Infer(tokens)
}
