package localner

import (
	"testing"

	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

func testConfig() transformer.Config {
	return transformer.Config{
		Dim: 16, Heads: 2, Layers: 1, FFDim: 32, MaxLen: 16,
		VocabBuckets: 256, CharBuckets: 64, Dropout: 0, Seed: 5,
	}
}

func trainingSentences() []*types.Sentence {
	mk := func(tokens []string, ents ...types.Entity) *types.Sentence {
		return &types.Sentence{Tokens: tokens, Gold: ents}
	}
	return []*types.Sentence{
		mk([]string{"beshear", "gives", "an", "update"},
			types.Entity{Span: types.Span{Start: 0, End: 1}, Type: types.Person}),
		mk([]string{"cases", "rise", "in", "italy"},
			types.Entity{Span: types.Span{Start: 3, End: 4}, Type: types.Location}),
		mk([]string{"trump", "visits", "canada"},
			types.Entity{Span: types.Span{Start: 0, End: 1}, Type: types.Person},
			types.Entity{Span: types.Span{Start: 2, End: 3}, Type: types.Location}),
		mk([]string{"the", "nhs", "is", "overwhelmed"},
			types.Entity{Span: types.Span{Start: 1, End: 2}, Type: types.Organization}),
		mk([]string{"nothing", "happening", "today"}),
		mk([]string{"beshear", "visits", "italy"},
			types.Entity{Span: types.Span{Start: 0, End: 1}, Type: types.Person},
			types.Entity{Span: types.Span{Start: 2, End: 3}, Type: types.Location}),
	}
}

func TestTaggerLearnsTrainingSet(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	sents := trainingSentences()
	losses := tagger.Train(sents, 40)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("fine-tuning loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	// The tagger should recover the training annotations.
	res := tagger.Run([]string{"beshear", "gives", "an", "update"})
	if len(res.Entities) != 1 || res.Entities[0].Type != types.Person || res.Entities[0].Start != 0 {
		t.Fatalf("tagger failed to learn training example: %+v", res.Entities)
	}
}

func TestRunReturnsConsistentShapes(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	res := tagger.Run([]string{"hello", "world"})
	if len(res.Labels) != 2 || res.Embeddings.Rows != 2 || res.Embeddings.Cols != 16 {
		t.Fatalf("result shapes wrong: %d labels, %dx%d emb", len(res.Labels), res.Embeddings.Rows, res.Embeddings.Cols)
	}
	if len(res.Tokens) != 2 {
		t.Fatalf("tokens = %v", res.Tokens)
	}
}

func TestRunEmptySentence(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	res := tagger.Run(nil)
	if len(res.Labels) != 0 || len(res.Entities) != 0 {
		t.Fatal("empty sentence should produce empty result")
	}
}

func TestEmbedMatchesRunEmbeddings(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	tokens := []string{"covid", "in", "us"}
	a := tagger.Run(tokens).Embeddings
	b := tagger.Embed(tokens)
	a.SubInPlace(b)
	if a.MaxAbs() != 0 {
		t.Fatal("Embed must match the embeddings produced by Run")
	}
}

func TestTruncationInRun(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	long := make([]string, 40)
	for i := range long {
		long[i] = "x"
	}
	res := tagger.Run(long)
	if len(res.Labels) != 16 {
		t.Fatalf("labels after truncation = %d, want 16", len(res.Labels))
	}
}

func TestTrainEpochSkipsEmptySentences(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	loss := tagger.TrainEpoch([]*types.Sentence{{Tokens: nil}})
	if loss != 0 {
		t.Fatalf("loss over empty corpus = %v", loss)
	}
}
