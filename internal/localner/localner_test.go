package localner

import (
	"reflect"
	"testing"

	"nerglobalizer/internal/parallel"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

func testConfig() transformer.Config {
	return transformer.Config{
		Dim: 16, Heads: 2, Layers: 1, FFDim: 32, MaxLen: 16,
		VocabBuckets: 256, CharBuckets: 64, Dropout: 0, Seed: 5,
	}
}

func trainingSentences() []*types.Sentence {
	mk := func(tokens []string, ents ...types.Entity) *types.Sentence {
		return &types.Sentence{Tokens: tokens, Gold: ents}
	}
	return []*types.Sentence{
		mk([]string{"beshear", "gives", "an", "update"},
			types.Entity{Span: types.Span{Start: 0, End: 1}, Type: types.Person}),
		mk([]string{"cases", "rise", "in", "italy"},
			types.Entity{Span: types.Span{Start: 3, End: 4}, Type: types.Location}),
		mk([]string{"trump", "visits", "canada"},
			types.Entity{Span: types.Span{Start: 0, End: 1}, Type: types.Person},
			types.Entity{Span: types.Span{Start: 2, End: 3}, Type: types.Location}),
		mk([]string{"the", "nhs", "is", "overwhelmed"},
			types.Entity{Span: types.Span{Start: 1, End: 2}, Type: types.Organization}),
		mk([]string{"nothing", "happening", "today"}),
		mk([]string{"beshear", "visits", "italy"},
			types.Entity{Span: types.Span{Start: 0, End: 1}, Type: types.Person},
			types.Entity{Span: types.Span{Start: 2, End: 3}, Type: types.Location}),
	}
}

func TestTaggerLearnsTrainingSet(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	sents := trainingSentences()
	losses := tagger.Train(sents, 40)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("fine-tuning loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	// The tagger should recover the training annotations.
	res := tagger.Run([]string{"beshear", "gives", "an", "update"})
	if len(res.Entities) != 1 || res.Entities[0].Type != types.Person || res.Entities[0].Start != 0 {
		t.Fatalf("tagger failed to learn training example: %+v", res.Entities)
	}
}

func TestRunReturnsConsistentShapes(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	res := tagger.Run([]string{"hello", "world"})
	if len(res.Labels) != 2 || res.Embeddings.Rows != 2 || res.Embeddings.Cols != 16 {
		t.Fatalf("result shapes wrong: %d labels, %dx%d emb", len(res.Labels), res.Embeddings.Rows, res.Embeddings.Cols)
	}
	if len(res.Tokens) != 2 {
		t.Fatalf("tokens = %v", res.Tokens)
	}
}

func TestRunEmptySentence(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	res := tagger.Run(nil)
	if len(res.Labels) != 0 || len(res.Entities) != 0 {
		t.Fatal("empty sentence should produce empty result")
	}
}

func TestEmbedMatchesRunEmbeddings(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	tokens := []string{"covid", "in", "us"}
	a := tagger.Run(tokens).Embeddings
	b := tagger.Embed(tokens)
	a.SubInPlace(b)
	if a.MaxAbs() != 0 {
		t.Fatal("Embed must match the embeddings produced by Run")
	}
}

func TestTruncationInRun(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	long := make([]string, 40)
	for i := range long {
		long[i] = "x"
	}
	res := tagger.Run(long)
	if len(res.Labels) != 16 {
		t.Fatalf("labels after truncation = %d, want 16", len(res.Labels))
	}
}

// batchTestSentences mixes ragged, empty, and overlong sentences.
func batchTestSentences() [][]string {
	long := make([]string, 40)
	for i := range long {
		long[i] = "pad"
	}
	return [][]string{
		{"beshear", "gives", "an", "update"},
		{},
		{"cases", "rise", "in", "Italy", "#covid"},
		nil,
		long,
		{"trump"},
		{"the", "NHS", "is", "overwhelmed", "@bbc", "http://x.co/1"},
		{"nothing", "happening", "today"},
	}
}

// TestRunBatchIdentityAcrossBatchSizes pins batched tagging to the
// per-sentence path: at every BatchTokens setting and worker count,
// RunBatch must reproduce Run's labels, entities, and embedding bytes.
func TestRunBatchIdentityAcrossBatchSizes(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	tagger.Train(trainingSentences(), 10)
	sents := batchTestSentences()
	want := make([]*Result, len(sents))
	for i, s := range sents {
		want[i] = tagger.Run(s)
	}
	for _, batchTokens := range []int{0, 1, 16, 256} {
		for _, workers := range []int{1, 4, 8} {
			tagger.BatchTokens = batchTokens
			got := tagger.RunBatch(sents, parallel.New(workers))
			for i := range sents {
				g, w := got[i], want[i]
				if !reflect.DeepEqual(g.Tokens, w.Tokens) || !reflect.DeepEqual(g.Labels, w.Labels) ||
					!reflect.DeepEqual(g.Entities, w.Entities) {
					t.Fatalf("batch=%d workers=%d sentence %d: %+v vs %+v", batchTokens, workers, i, g, w)
				}
				if (g.Embeddings == nil) != (w.Embeddings == nil) {
					t.Fatalf("batch=%d workers=%d sentence %d: embeddings nil mismatch", batchTokens, workers, i)
				}
				if g.Embeddings == nil {
					continue
				}
				if g.Embeddings.Rows != w.Embeddings.Rows || g.Embeddings.Cols != w.Embeddings.Cols {
					t.Fatalf("batch=%d workers=%d sentence %d: embedding shape mismatch", batchTokens, workers, i)
				}
				for j := range w.Embeddings.Data {
					if g.Embeddings.Data[j] != w.Embeddings.Data[j] {
						t.Fatalf("batch=%d workers=%d sentence %d: embedding byte %d diverges", batchTokens, workers, i, j)
					}
				}
			}
		}
	}
}

// TestEmbedBatchIdentity pins EmbedBatch to per-sentence Embed.
func TestEmbedBatchIdentity(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	sents := batchTestSentences()
	tagger.BatchTokens = 24
	got := tagger.EmbedBatch(sents, parallel.New(4))
	for i, s := range sents {
		want := tagger.Embed(s)
		if got[i].Rows != want.Rows || got[i].Cols != want.Cols {
			t.Fatalf("sentence %d: shape %dx%d want %dx%d", i, got[i].Rows, got[i].Cols, want.Rows, want.Cols)
		}
		for j := range want.Data {
			if got[i].Data[j] != want.Data[j] {
				t.Fatalf("sentence %d diverges at %d", i, j)
			}
		}
	}
}

// TestPackSpansRespectsBudget checks the packing invariants: spans
// cover every sentence exactly once, in order, and no span exceeds the
// token budget unless it holds a single oversized sentence.
func TestPackSpansRespectsBudget(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	tagger.BatchTokens = 8
	sents := batchTestSentences()
	spans := tagger.packSpans(sents)
	next := 0
	for _, sp := range spans {
		if sp[0] != next || sp[1] <= sp[0] {
			t.Fatalf("spans not contiguous: %v", spans)
		}
		next = sp[1]
		toks := 0
		for _, s := range sents[sp[0]:sp[1]] {
			toks += len(tagger.enc.Truncate(s))
		}
		if toks > tagger.BatchTokens && sp[1]-sp[0] > 1 {
			t.Fatalf("span %v holds %d tokens over budget %d", sp, toks, tagger.BatchTokens)
		}
	}
	if next != len(sents) {
		t.Fatalf("spans end at %d, want %d", next, len(sents))
	}
}

func TestTrainEpochSkipsEmptySentences(t *testing.T) {
	tagger := NewTagger(transformer.NewEncoder(testConfig()), 0.01)
	loss := tagger.TrainEpoch([]*types.Sentence{{Tokens: nil}})
	if loss != 0 {
		t.Fatalf("loss over empty corpus = %v", loss)
	}
}
