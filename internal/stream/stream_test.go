package stream

import (
	"testing"

	"nerglobalizer/internal/types"
)

func rec(tweetID int, tokens ...string) *Record {
	return &Record{Sentence: &types.Sentence{TweetID: tweetID, Tokens: tokens}}
}

func TestTweetBaseAddGetOrder(t *testing.T) {
	tb := NewTweetBase()
	tb.Add(rec(2, "b"))
	tb.Add(rec(1, "a"))
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	keys := tb.Keys()
	if keys[0].TweetID != 2 || keys[1].TweetID != 1 {
		t.Fatalf("insertion order lost: %v", keys)
	}
	if tb.Get(types.SentenceKey{TweetID: 1}) == nil {
		t.Fatal("Get failed")
	}
	if tb.Get(types.SentenceKey{TweetID: 99}) != nil {
		t.Fatal("missing key should return nil")
	}
}

func TestTweetBaseReplaceKeepsOrder(t *testing.T) {
	tb := NewTweetBase()
	tb.Add(rec(1, "old"))
	tb.Add(rec(1, "new"))
	if tb.Len() != 1 {
		t.Fatalf("replace duplicated record: %d", tb.Len())
	}
	if got := tb.Get(types.SentenceKey{TweetID: 1}).Sentence.Tokens[0]; got != "new" {
		t.Fatalf("record not replaced: %q", got)
	}
}

func TestFinalEntityMapSkipsNone(t *testing.T) {
	tb := NewTweetBase()
	r := rec(1, "us", "said")
	r.FinalMentions = []types.Mention{
		{Key: r.Sentence.Key(), Span: types.Span{Start: 0, End: 1}, Type: types.Location},
		{Key: r.Sentence.Key(), Span: types.Span{Start: 1, End: 2}, Type: types.None},
	}
	tb.Add(r)
	ents := tb.FinalEntityMap()[r.Sentence.Key()]
	if len(ents) != 1 || ents[0].Type != types.Location {
		t.Fatalf("FinalEntityMap = %v", ents)
	}
}

func TestBatches(t *testing.T) {
	sents := make([]*types.Sentence, 7)
	for i := range sents {
		sents[i] = &types.Sentence{TweetID: i}
	}
	b := Batches(sents, 3)
	if len(b) != 3 || len(b[0]) != 3 || len(b[2]) != 1 {
		t.Fatalf("batches = %v", b)
	}
	whole := Batches(sents, 0)
	if len(whole) != 1 || len(whole[0]) != 7 {
		t.Fatal("size<=0 should produce one batch")
	}
	if Batches(nil, 3) != nil {
		t.Fatal("empty input should produce no batches")
	}
}

func TestCandidateBase(t *testing.T) {
	cb := NewCandidateBase()
	cb.SetClusters("us", []*Candidate{
		{Surface: "us", ClusterID: 0, Type: types.Location},
		{Surface: "us", ClusterID: 1, Type: types.None},
	})
	cb.SetClusters("italy", []*Candidate{{Surface: "italy", ClusterID: 0}})
	if cb.Len() != 3 {
		t.Fatalf("Len = %d", cb.Len())
	}
	if len(cb.ForSurface("us")) != 2 {
		t.Fatal("ForSurface wrong")
	}
	surfaces := cb.Surfaces()
	if len(surfaces) != 2 || surfaces[0] != "italy" {
		t.Fatalf("Surfaces = %v", surfaces)
	}
	all := cb.All()
	if len(all) != 3 || all[0].Surface != "italy" {
		t.Fatalf("All = %v", all)
	}
}

func TestLocalEntityMap(t *testing.T) {
	tb := NewTweetBase()
	r := rec(4, "italy")
	r.LocalEntities = []types.Entity{{Span: types.Span{Start: 0, End: 1}, Type: types.Location}}
	tb.Add(r)
	m := tb.LocalEntityMap()
	if len(m[r.Sentence.Key()]) != 1 {
		t.Fatal("LocalEntityMap missing entities")
	}
}
