// Package stream provides the streaming bookkeeping of NER Globalizer:
// batch iteration over incoming tweets, the TweetBase of per-sentence
// records produced by Local NER (and updated after Global NER), and
// the CandidateBase of entity candidates discovered during candidate
// cluster generation.
package stream

import (
	"sort"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// Record is the TweetBase entry for one tweet sentence: the sentence
// itself, what Local NER said about it, the cached entity-aware token
// embeddings, and — after Global NER — the final verified mentions.
type Record struct {
	Sentence      *types.Sentence
	LocalEntities []types.Entity
	Embeddings    *nn.Matrix
	FinalMentions []types.Mention
}

// TweetBase indexes records by (tweet ID, sentence ID), preserving
// insertion order for deterministic iteration.
type TweetBase struct {
	records map[types.SentenceKey]*Record
	order   []types.SentenceKey
	index   map[types.SentenceKey]int
}

// NewTweetBase returns an empty TweetBase.
func NewTweetBase() *TweetBase {
	return &TweetBase{
		records: make(map[types.SentenceKey]*Record),
		index:   make(map[types.SentenceKey]int),
	}
}

// Add inserts or replaces the record for the sentence.
func (tb *TweetBase) Add(r *Record) {
	key := r.Sentence.Key()
	if _, exists := tb.records[key]; !exists {
		tb.index[key] = len(tb.order)
		tb.order = append(tb.order, key)
	}
	tb.records[key] = r
}

// Get returns the record for key, or nil.
func (tb *TweetBase) Get(key types.SentenceKey) *Record { return tb.records[key] }

// IndexOf returns the insertion position of key, or -1 when absent.
// The amortizer's per-surface mention pools are ordered by this index,
// so splicing one sentence's contribution is a binary search instead
// of a stream walk.
func (tb *TweetBase) IndexOf(key types.SentenceKey) int {
	if i, ok := tb.index[key]; ok {
		return i
	}
	return -1
}

// Len returns the number of records.
func (tb *TweetBase) Len() int { return len(tb.order) }

// Keys returns the record keys in insertion order.
func (tb *TweetBase) Keys() []types.SentenceKey {
	return append([]types.SentenceKey(nil), tb.order...)
}

// KeysFrom returns the record keys at insertion positions [from, Len)
// in insertion order. Records are append-only, so this is exactly the
// set of sentences added since the caller last observed Len() — the
// amortized rescan uses it to find never-scanned sentences without
// walking the whole stream.
func (tb *TweetBase) KeysFrom(from int) []types.SentenceKey {
	if from < 0 {
		from = 0
	}
	if from >= len(tb.order) {
		return nil
	}
	return append([]types.SentenceKey(nil), tb.order[from:]...)
}

// Each calls fn for every record in insertion order.
func (tb *TweetBase) Each(fn func(*Record)) {
	for _, k := range tb.order {
		fn(tb.records[k])
	}
}

// Records returns every record in insertion order. Index-addressed
// access is what the data-parallel phases need: workers can read
// records[i] without touching the map.
func (tb *TweetBase) Records() []*Record {
	out := make([]*Record, len(tb.order))
	for i, k := range tb.order {
		out[i] = tb.records[k]
	}
	return out
}

// LocalEntityMap returns Local NER's entities keyed by sentence — the
// shape the metrics package and mention extraction consume.
func (tb *TweetBase) LocalEntityMap() map[types.SentenceKey][]types.Entity {
	out := make(map[types.SentenceKey][]types.Entity, len(tb.order))
	for _, k := range tb.order {
		out[k] = tb.records[k].LocalEntities
	}
	return out
}

// FinalEntityMap converts the post-Global-NER mentions of every record
// into typed entities keyed by sentence.
func (tb *TweetBase) FinalEntityMap() map[types.SentenceKey][]types.Entity {
	out := make(map[types.SentenceKey][]types.Entity, len(tb.order))
	for _, k := range tb.order {
		var ents []types.Entity
		for _, m := range tb.records[k].FinalMentions {
			if m.Type == types.None {
				continue
			}
			ents = append(ents, types.Entity{Span: m.Span, Type: m.Type})
		}
		out[k] = ents
	}
	return out
}

// Batches splits sentences into consecutive batches of at most size,
// discretizing the stream's evolution the way the paper's execution
// cycles do.
func Batches(sents []*types.Sentence, size int) [][]*types.Sentence {
	if size <= 0 {
		size = len(sents)
	}
	var out [][]*types.Sentence
	for start := 0; start < len(sents); start += size {
		end := start + size
		if end > len(sents) {
			end = len(sents)
		}
		out = append(out, sents[start:end])
	}
	return out
}

// Candidate is a CandidateBase entry: one candidate cluster of a
// surface form, its mentions, their local embeddings, the global
// embedding pooled from them, and the type assigned by the Entity
// Classifier (None until classified, or for rejected candidates).
type Candidate struct {
	Surface   string
	ClusterID int
	Mentions  []types.Mention
	Embs      [][]float64
	GlobalEmb []float64
	Type      types.EntityType
	// Confidence is the classifier's probability for the assigned type.
	Confidence float64
}

// MentionCount returns the number of mentions aggregated so far.
func (c *Candidate) MentionCount() int { return len(c.Mentions) }

// CandidateBase maintains an entry for every candidate discovered in a
// stream, keyed by surface form (several candidates may share one —
// that is the whole point of candidate clusters).
type CandidateBase struct {
	bySurface map[string][]*Candidate
}

// NewCandidateBase returns an empty CandidateBase.
func NewCandidateBase() *CandidateBase {
	return &CandidateBase{bySurface: make(map[string][]*Candidate)}
}

// ForSurface returns the candidate clusters of a surface form.
func (cb *CandidateBase) ForSurface(surface string) []*Candidate {
	return cb.bySurface[surface]
}

// SetClusters replaces the candidate clusters of a surface form.
func (cb *CandidateBase) SetClusters(surface string, cands []*Candidate) {
	cb.bySurface[surface] = cands
}

// Delete removes every candidate cluster of a surface form. The
// incremental candidate bookkeeping uses it when a surface's mention
// pool empties (a longer late surface shadowing every match) or when
// its support drops below the local-evidence floor.
func (cb *CandidateBase) Delete(surface string) {
	delete(cb.bySurface, surface)
}

// Surfaces returns all registered surface forms, sorted for
// determinism.
func (cb *CandidateBase) Surfaces() []string {
	out := make([]string, 0, len(cb.bySurface))
	for s := range cb.bySurface {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// All returns every candidate across all surface forms in sorted
// surface order.
func (cb *CandidateBase) All() []*Candidate {
	var out []*Candidate
	for _, s := range cb.Surfaces() {
		out = append(out, cb.bySurface[s]...)
	}
	return out
}

// Len returns the total number of candidates.
func (cb *CandidateBase) Len() int {
	n := 0
	for _, cs := range cb.bySurface {
		n += len(cs)
	}
	return n
}
