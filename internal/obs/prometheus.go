package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines per
// metric, cumulative le-labelled buckets plus _sum and _count for
// histograms, metrics in name order. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, e := range r.sorted() {
		bw.WriteString("# HELP ")
		bw.WriteString(e.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(e.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(e.name)
		switch e.kind {
		case kindCounter:
			bw.WriteString(" counter\n")
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(e.c.Value(), 10))
			bw.WriteByte('\n')
		case kindGauge:
			bw.WriteString(" gauge\n")
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(e.g.Value(), 10))
			bw.WriteByte('\n')
		case kindHistogram:
			bw.WriteString(" histogram\n")
			writeHistogram(bw, e.name, e.h)
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series.
func writeHistogram(bw *bufio.Writer, name string, h *Histogram) {
	counts := h.BucketCounts()
	bounds := h.Bounds()
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		bw.WriteString(name)
		bw.WriteString(`_bucket{le="`)
		bw.WriteString(formatFloat(b))
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	cum += counts[len(counts)-1]
	bw.WriteString(name)
	bw.WriteString(`_bucket{le="+Inf"} `)
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_sum ")
	bw.WriteString(formatFloat(h.Sum()))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count ")
	// The cumulative +Inf total, not h.Count(): under concurrent
	// observation the two can differ transiently, and exposition must
	// keep count equal to the +Inf bucket for scrapers to accept it.
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in a help string per the
// exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is the sum of observed values (seconds for latency series).
	Sum float64 `json:"sum"`
	// Bounds are the bucket upper bounds; Counts the per-bucket
	// (non-cumulative) observation counts, with one extra trailing
	// entry for the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a point-in-time JSON-friendly view of a registry — the
// /statusz document body.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value. A nil registry
// yields an empty (but non-nil-mapped) snapshot, so /statusz always
// serializes to the same shape.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.c.Value()
		case kindGauge:
			s.Gauges[e.name] = e.g.Value()
		case kindHistogram:
			counts := e.h.BucketCounts()
			total := int64(0)
			for _, n := range counts {
				total += n
			}
			s.Histograms[e.name] = HistogramSnapshot{
				Count:  total,
				Sum:    e.h.Sum(),
				Bounds: e.h.Bounds(),
				Counts: counts,
			}
		}
	}
	return s
}
