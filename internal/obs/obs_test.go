package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	g := r.Gauge("x", "help")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	// Re-registration returns the same instrument.
	if r.Counter("x_total", "help") != c {
		t.Fatal("re-registered counter is a different instance")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil metrics")
	}
	// None of these may panic or record.
	c.Add(1)
	c.Inc()
	g.Set(9)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metric reported a non-zero value")
	}
	var rec *SpanRecorder
	tr := rec.Begin()
	tr.Span("stage", timeNowForTest(), 1, 0)
	tr.End()
	if rec.Traces() != nil {
		t.Fatal("nil recorder returned traces")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v, wrote %q", err, sb.String())
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal
// to a bound lands in that bound's bucket (le = less-or-equal), a
// value above every bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3.9, 4, 4.1, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // (≤1): 0.5,1; (≤2): 1.0000001,2; (≤4): 3.9,4; +Inf: 4.1,100
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 3.9 + 4 + 4.1 + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram([]float64{4, 1, 2})
	h.Observe(1.5)
	if got := h.Bounds(); got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("bounds not sorted: %v", got)
	}
	if counts := h.BucketCounts(); counts[1] != 1 {
		t.Fatalf("1.5 not in (1,2] bucket: %v", counts)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	if !a.Merge(b) {
		t.Fatal("merge of identical boundaries failed")
	}
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if math.Abs(a.Sum()-12.0) > 1e-9 {
		t.Fatalf("merged sum = %v, want 12", a.Sum())
	}
	if counts := a.BucketCounts(); counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("merged buckets = %v", counts)
	}
	// Mismatched boundaries refuse to merge and leave a untouched.
	c := NewHistogram([]float64{1, 3})
	if a.Merge(c) {
		t.Fatal("merge of mismatched boundaries succeeded")
	}
	if a.Count() != 3 {
		t.Fatal("failed merge mutated the receiver")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestSpanRecorderRing(t *testing.T) {
	rec := NewSpanRecorder(2)
	for i := 0; i < 3; i++ {
		tr := rec.Begin()
		tr.Span("stage", timeNowForTest(), int64(i), 0)
		tr.End()
	}
	traces := rec.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring kept %d traces, want 2", len(traces))
	}
	if traces[0].Cycle != 2 || traces[1].Cycle != 3 {
		t.Fatalf("ring order wrong: cycles %d, %d", traces[0].Cycle, traces[1].Cycle)
	}
	if len(traces[1].Spans) != 1 || traces[1].Spans[0].Items != 2 {
		t.Fatalf("span payload wrong: %+v", traces[1].Spans)
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Gauge("b", "").Set(-1)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s.Counters["a_total"] != 2 {
		t.Fatalf("snapshot counter = %d", s.Counters["a_total"])
	}
	if s.Gauges["b"] != -1 {
		t.Fatalf("snapshot gauge = %d", s.Gauges["b"])
	}
	hs, ok := s.Histograms["c_seconds"]
	if !ok || hs.Count != 1 || hs.Sum != 0.5 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
	if len(hs.Bounds) != 1 || len(hs.Counts) != 2 {
		t.Fatalf("snapshot histogram shape = %+v", hs)
	}
	// Nil registry snapshots to the same (empty) shape.
	var nilr *Registry
	ns := nilr.Snapshot()
	if ns.Counters == nil || ns.Gauges == nil || ns.Histograms == nil {
		t.Fatal("nil registry snapshot has nil maps")
	}
}
