package obs

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// timeNowForTest keeps test files free of a direct time import tangle.
func timeNowForTest() time.Time { return time.Now() }

// TestPrometheusExposition validates the text format line by line:
// every series has HELP/TYPE headers, histogram buckets are cumulative
// and le-labelled, _count equals the +Inf bucket, and metrics appear
// in name order.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ner_cycles_total", "executed cycles").Add(3)
	r.Gauge("ner_queue_depth", "queued jobs").Set(5)
	h := r.Histogram("ner_cycle_seconds", "cycle wall time", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	wantLines := []string{
		"# HELP ner_cycle_seconds cycle wall time",
		"# TYPE ner_cycle_seconds histogram",
		`ner_cycle_seconds_bucket{le="0.1"} 1`,
		`ner_cycle_seconds_bucket{le="1"} 2`,
		`ner_cycle_seconds_bucket{le="+Inf"} 3`,
		"ner_cycle_seconds_sum 3.55",
		"ner_cycle_seconds_count 3",
		"# HELP ner_cycles_total executed cycles",
		"# TYPE ner_cycles_total counter",
		"ner_cycles_total 3",
		"# HELP ner_queue_depth queued jobs",
		"# TYPE ner_queue_depth gauge",
		"ner_queue_depth 5",
	}
	got := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("exposition has %d lines, want %d:\n%s", len(got), len(wantLines), text)
	}
	for i, want := range wantLines {
		if got[i] != want {
			t.Fatalf("line %d = %q, want %q\nfull:\n%s", i, got[i], want, text)
		}
	}
}

// TestPrometheusParseable is a minimal scraper: every non-comment line
// must be "name{labels} value" or "name value" with a numeric value.
func TestPrometheusParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "with \\ backslash\nand newline").Add(1)
	r.Histogram("b_seconds", "", nil).Observe(0.2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
			if strings.Contains(line, "\n") {
				t.Fatalf("unescaped newline in %q", line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line %q does not split into name and value", line)
		}
		if fields[1] != "+Inf" {
			if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
				t.Fatalf("sample value %q not numeric: %v", fields[1], err)
			}
		}
	}
}

// TestMetricsHammer records from many goroutines while the exposition
// and snapshot paths scrape in a loop — the -race smoke for the whole
// package. Totals are verified exactly afterwards.
func TestMetricsHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_inflight", "")
	h := r.Histogram("hammer_seconds", "", []float64{0.25, 0.5, 0.75})
	rec := NewSpanRecorder(4)

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run until the writers finish.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
				rec.Traces()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 4.0)
				g.Add(-1)
				if i%500 == 0 {
					tr := rec.Begin()
					tr.Span("stage", time.Now(), 1, 0)
					tr.End()
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if c.Value() != writers*perWriter {
		t.Fatalf("counter = %d, want %d", c.Value(), writers*perWriter)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
	counts := h.BucketCounts()
	total := int64(0)
	for _, n := range counts {
		total += n
	}
	if total != h.Count() {
		t.Fatalf("bucket total %d != count %d", total, h.Count())
	}
	if len(rec.Traces()) != 4 {
		t.Fatalf("recorder kept %d traces, want 4", len(rec.Traces()))
	}
}
