package obs

import (
	"sync"
	"time"
)

// Span is one stage of one execution cycle: its name, when it started
// relative to the cycle, how long it ran, and how many items it
// processed (sentences, mentions, surfaces — stage-dependent).
type Span struct {
	Stage string `json:"stage"`
	// StartSec is the offset from the cycle start; WallSec the stage's
	// wall-clock. Fan-out stages additionally report BusySec, the CPU
	// time summed across workers (>= WallSec when parallel).
	StartSec float64 `json:"start_sec"`
	WallSec  float64 `json:"wall_sec"`
	BusySec  float64 `json:"busy_sec,omitempty"`
	Items    int64   `json:"items"`
}

// CycleTrace is the span breakdown of one execution cycle.
type CycleTrace struct {
	Cycle   uint64  `json:"cycle"`
	WallSec float64 `json:"wall_sec"`
	Spans   []Span  `json:"spans"`
}

// SpanRecorder keeps the traces of the most recent cycles in a ring.
// Begin starts a trace; the returned Trace is used by exactly one
// cycle (the pipeline runs cycles serially) and committed back with
// End. Reading the ring (Traces) is safe concurrently with recording.
// A nil SpanRecorder is valid and records nothing.
type SpanRecorder struct {
	mu   sync.Mutex
	seq  uint64
	ring []CycleTrace
	next int
	full bool
}

// NewSpanRecorder keeps the last capacity cycle traces (minimum 1).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRecorder{ring: make([]CycleTrace, capacity)}
}

// Trace accumulates one cycle's spans. A nil Trace (what a nil
// recorder begins) records nothing.
type Trace struct {
	rec   *SpanRecorder
	start time.Time
	trace CycleTrace
}

// Begin starts a new cycle trace. Returns nil on a nil recorder.
func (r *SpanRecorder) Begin() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.mu.Unlock()
	return &Trace{rec: r, start: time.Now(), trace: CycleTrace{Cycle: seq}}
}

// Span records one completed stage given its start time, item count,
// and optional busy time summed over workers. No-op on nil.
func (t *Trace) Span(stage string, start time.Time, items int64, busy time.Duration) {
	if t == nil {
		return
	}
	t.trace.Spans = append(t.trace.Spans, Span{
		Stage:    stage,
		StartSec: start.Sub(t.start).Seconds(),
		WallSec:  time.Since(start).Seconds(),
		BusySec:  busy.Seconds(),
		Items:    items,
	})
}

// End commits the trace to the recorder's ring. No-op on nil.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.trace.WallSec = time.Since(t.start).Seconds()
	r := t.rec
	r.mu.Lock()
	r.ring[r.next] = t.trace
	r.next++
	if r.next == len(r.ring) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Traces returns the recorded cycles, oldest first. Nil-safe.
func (r *SpanRecorder) Traces() []CycleTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []CycleTrace
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	return out
}
