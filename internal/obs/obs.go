// Package obs is the pipeline's observability substrate: lock-free
// atomic counters and gauges, fixed-bucket latency histograms, and a
// per-cycle stage-span recorder, gathered in a Registry that exports
// Prometheus text exposition and a JSON snapshot. It depends only on
// the standard library.
//
// The zero-overhead contract every instrument upholds: a nil metric
// (what a nil *Registry hands out) makes every recording method a
// single nil-check branch — no allocation, no atomic operation, no
// time syscall. Instrumented code therefore threads metric pointers
// unconditionally and never wraps call sites in feature flags; turning
// observability off is passing a nil Registry.
//
// Metric naming scheme (see DESIGN.md "Observability"):
//
//	ner_<subsystem>_<what>_<unit-suffix>
//
// with the Prometheus conventions: counters end in _total, histograms
// of durations end in _seconds, gauges are bare nouns. Every metric is
// registered with a help string that becomes its # HELP line.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil Counter
// is valid and records nothing.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil Gauge is valid and
// records nothing.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on nil.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (use for in-flight style gauges).
// No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram, race-safe and
// mergeable. Bucket boundaries are upper bounds (le); an implicit +Inf
// bucket catches everything above the last boundary. Observations are
// lock-free: one atomic add on the bucket plus a CAS loop on the
// float-bit sum. A nil Histogram is valid and records nothing.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// DefBuckets is the default boundary set for second-denominated
// latencies, spanning 50µs to 30s — micro-stage busy times through
// whole training-free cycles.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SizeBuckets is the default boundary set for count-denominated
// distributions (batch sizes, coalesced jobs per cycle).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// NewHistogram builds a detached histogram (one not owned by a
// registry) over the given ascending bucket bounds. Most callers use
// Registry.Histogram instead; detached histograms exist for merging
// scratch and tests.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the +Inf bucket is index
	// len(bounds).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the
// last entry being the +Inf bucket. The copy is not an atomic snapshot
// across buckets; under concurrent observation the cumulative counts
// can trail count by in-flight observations, which exposition
// tolerates.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Merge adds other's observations into h. The histograms must share
// bucket boundaries; Merge reports whether they did (and merges only
// then). Merging a nil other is a no-op that reports true.
func (h *Histogram) Merge(other *Histogram) bool {
	if h == nil || other == nil {
		return true
	}
	if len(h.bounds) != len(other.bounds) {
		return false
	}
	for i, b := range h.bounds {
		if other.bounds[i] != b {
			return false
		}
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + other.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return true
		}
	}
}

// metricKind tags a registry entry for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. Registration takes a mutex (it happens
// once, at wiring time); recording through the returned metric
// pointers is lock-free. A nil *Registry is valid: it hands out nil
// metrics, making the entire instrumented program a collection of
// single-branch no-ops.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Counter registers (or returns the existing) counter under name.
// Returns nil on a nil registry. Registering a name that exists with a
// different metric kind panics: it is a wiring bug, not a runtime
// condition.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindCounter {
			panic("obs: metric " + name + " re-registered with a different kind")
		}
		return e.c
	}
	c := &Counter{}
	r.entries[name] = &entry{name: name, help: help, kind: kindCounter, c: c}
	return c
}

// Gauge registers (or returns the existing) gauge under name. Returns
// nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindGauge {
			panic("obs: metric " + name + " re-registered with a different kind")
		}
		return e.g
	}
	g := &Gauge{}
	r.entries[name] = &entry{name: name, help: help, kind: kindGauge, g: g}
	return g
}

// Histogram registers (or returns the existing) histogram under name
// with the given bucket bounds (DefBuckets when bounds is nil).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindHistogram {
			panic("obs: metric " + name + " re-registered with a different kind")
		}
		return e.h
	}
	h := NewHistogram(bounds)
	r.entries[name] = &entry{name: name, help: help, kind: kindHistogram, h: h}
	return h
}

// sorted returns the entries in name order — the stable exposition
// order both /metrics and /statusz use.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len reports how many metrics are registered (0 on nil).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
