// Package metrics implements entity-level NER evaluation: per-type
// precision/recall/F1 with exact span-and-type matching, macro-F1 in
// the WNUT17 "F1 (entity)" convention, EMD-only (boundary) scoring,
// and the frequency-binned recall analysis of Figure 4.
package metrics

import (
	"sort"

	"nerglobalizer/internal/types"
)

// Counts are raw match counts for one class.
type Counts struct {
	TP, FP, FN int
}

// Add accumulates another Counts.
func (c *Counts) Add(o Counts) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// PRF are precision, recall and F1 derived from Counts.
type PRF struct {
	Precision, Recall, F1 float64
}

// PRF converts counts to precision/recall/F1, with empty denominators
// scoring zero.
func (c Counts) PRF() PRF {
	p := safeDiv(float64(c.TP), float64(c.TP+c.FP))
	r := safeDiv(float64(c.TP), float64(c.TP+c.FN))
	return PRF{Precision: p, Recall: r, F1: safeDiv(2*p*r, p+r)}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Evaluation aggregates per-type counts over a dataset.
type Evaluation struct {
	PerType map[types.EntityType]*Counts
}

// NewEvaluation returns an Evaluation with zero counts for all types.
func NewEvaluation() *Evaluation {
	e := &Evaluation{PerType: make(map[types.EntityType]*Counts)}
	for _, t := range types.EntityTypes {
		e.PerType[t] = &Counts{}
	}
	return e
}

// entityKey matches entities exactly on span and type within one
// sentence.
type entityKey struct {
	span types.Span
	typ  types.EntityType
}

// AddSentence scores one sentence's predictions against its gold
// annotations with exact span-and-type matching and accumulates the
// counts.
func (e *Evaluation) AddSentence(gold, pred []types.Entity) {
	goldSet := make(map[entityKey]bool, len(gold))
	for _, g := range gold {
		if g.Type == types.None {
			continue
		}
		goldSet[entityKey{g.Span, g.Type}] = true
	}
	matched := make(map[entityKey]bool)
	for _, p := range pred {
		if p.Type == types.None {
			continue
		}
		k := entityKey{p.Span, p.Type}
		if goldSet[k] && !matched[k] {
			matched[k] = true
			e.PerType[p.Type].TP++
		} else {
			e.PerType[p.Type].FP++
		}
	}
	for k := range goldSet {
		if !matched[k] {
			e.PerType[k.typ].FN++
		}
	}
}

// Evaluate scores predictions against gold for a whole dataset keyed
// by sentence.
func Evaluate(gold, pred map[types.SentenceKey][]types.Entity) *Evaluation {
	e := NewEvaluation()
	keys := make(map[types.SentenceKey]bool)
	for k := range gold {
		keys[k] = true
	}
	for k := range pred {
		keys[k] = true
	}
	for k := range keys {
		e.AddSentence(gold[k], pred[k])
	}
	return e
}

// TypeF1 returns precision/recall/F1 for one entity type.
func (e *Evaluation) TypeF1(t types.EntityType) PRF {
	return e.PerType[t].PRF()
}

// MacroF1 is the unweighted mean F1 over the four entity types — the
// "F1 (Entity)" summary of the WNUT17 shared task used throughout the
// paper's tables.
func (e *Evaluation) MacroF1() float64 {
	sum := 0.0
	for _, t := range types.EntityTypes {
		sum += e.PerType[t].PRF().F1
	}
	return sum / float64(len(types.EntityTypes))
}

// EvaluateEMD scores entity mention detection only: predictions match
// gold on span boundaries, ignoring types.
func EvaluateEMD(gold, pred map[types.SentenceKey][]types.Entity) Counts {
	var c Counts
	keys := make(map[types.SentenceKey]bool)
	for k := range gold {
		keys[k] = true
	}
	for k := range pred {
		keys[k] = true
	}
	for k := range keys {
		goldSet := make(map[types.Span]bool)
		for _, g := range gold[k] {
			if g.Type != types.None {
				goldSet[g.Span] = true
			}
		}
		matched := make(map[types.Span]bool)
		for _, p := range pred[k] {
			if p.Type == types.None {
				continue
			}
			if goldSet[p.Span] && !matched[p.Span] {
				matched[p.Span] = true
				c.TP++
			} else {
				c.FP++
			}
		}
		for s := range goldSet {
			if !matched[s] {
				c.FN++
			}
		}
	}
	return c
}

// FreqBin is one bin of the Figure 4 analysis: entities whose gold
// mention frequency falls in [Lo, Hi] and the recall achieved on their
// mentions.
type FreqBin struct {
	Lo, Hi   int
	Entities int
	Mentions int
	Detected int
}

// Recall returns the fraction of this bin's gold mentions that were
// detected.
func (b FreqBin) Recall() float64 {
	return safeDiv(float64(b.Detected), float64(b.Mentions))
}

// FrequencyBinnedRecall groups gold entities (identified by canonical
// surface form and type across the dataset) into bins of width
// binWidth by mention frequency, and reports per-bin mention recall —
// the analysis behind Figure 4. The sentences provide token text for
// surface-form extraction.
func FrequencyBinnedRecall(sents []*types.Sentence, pred map[types.SentenceKey][]types.Entity, binWidth int) []FreqBin {
	if binWidth <= 0 {
		binWidth = 5
	}
	type entityID struct {
		surface string
		typ     types.EntityType
	}
	freq := make(map[entityID]int)
	detected := make(map[entityID]int)
	for _, s := range sents {
		predSet := make(map[entityKey]bool)
		for _, p := range pred[s.Key()] {
			predSet[entityKey{p.Span, p.Type}] = true
		}
		for _, g := range s.Gold {
			if g.Type == types.None || g.End > len(s.Tokens) {
				continue
			}
			id := entityID{surface: s.SurfaceAt(g.Span), typ: g.Type}
			freq[id]++
			if predSet[entityKey{g.Span, g.Type}] {
				detected[id]++
			}
		}
	}
	bins := make(map[int]*FreqBin)
	for id, f := range freq {
		b := (f - 1) / binWidth
		fb, ok := bins[b]
		if !ok {
			fb = &FreqBin{Lo: b*binWidth + 1, Hi: (b + 1) * binWidth}
			bins[b] = fb
		}
		fb.Entities++
		fb.Mentions += f
		fb.Detected += detected[id]
	}
	ids := make([]int, 0, len(bins))
	for b := range bins {
		ids = append(ids, b)
	}
	sort.Ints(ids)
	out := make([]FreqBin, 0, len(ids))
	for _, b := range ids {
		out = append(out, *bins[b])
	}
	return out
}
