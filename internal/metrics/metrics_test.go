package metrics

import (
	"math"
	"testing"

	"nerglobalizer/internal/types"
)

func ent(start, end int, t types.EntityType) types.Entity {
	return types.Entity{Span: types.Span{Start: start, End: end}, Type: t}
}

func TestCountsPRF(t *testing.T) {
	c := Counts{TP: 8, FP: 2, FN: 8}
	prf := c.PRF()
	if math.Abs(prf.Precision-0.8) > 1e-12 || math.Abs(prf.Recall-0.5) > 1e-12 {
		t.Fatalf("PRF = %+v", prf)
	}
	wantF1 := 2 * 0.8 * 0.5 / 1.3
	if math.Abs(prf.F1-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", prf.F1, wantF1)
	}
	if (Counts{}).PRF().F1 != 0 {
		t.Fatal("zero counts must give zero F1, not NaN")
	}
}

func TestAddSentenceExactMatch(t *testing.T) {
	e := NewEvaluation()
	gold := []types.Entity{ent(0, 1, types.Person), ent(2, 4, types.Location)}
	pred := []types.Entity{ent(0, 1, types.Person), ent(2, 3, types.Location)}
	e.AddSentence(gold, pred)
	if e.PerType[types.Person].TP != 1 {
		t.Fatal("person TP wrong")
	}
	loc := e.PerType[types.Location]
	// Wrong boundary: FP for the prediction, FN for the gold.
	if loc.TP != 0 || loc.FP != 1 || loc.FN != 1 {
		t.Fatalf("location counts = %+v", loc)
	}
}

func TestAddSentenceTypeMismatch(t *testing.T) {
	e := NewEvaluation()
	gold := []types.Entity{ent(0, 1, types.Organization)}
	pred := []types.Entity{ent(0, 1, types.Person)}
	e.AddSentence(gold, pred)
	if e.PerType[types.Person].FP != 1 || e.PerType[types.Organization].FN != 1 {
		t.Fatal("mistyping must count FP for predicted type and FN for gold type")
	}
}

func TestAddSentenceDuplicatePredictions(t *testing.T) {
	e := NewEvaluation()
	gold := []types.Entity{ent(0, 1, types.Person)}
	pred := []types.Entity{ent(0, 1, types.Person), ent(0, 1, types.Person)}
	e.AddSentence(gold, pred)
	c := e.PerType[types.Person]
	if c.TP != 1 || c.FP != 1 {
		t.Fatalf("duplicate prediction counts = %+v", c)
	}
}

func TestAddSentenceIgnoresNone(t *testing.T) {
	e := NewEvaluation()
	e.AddSentence([]types.Entity{ent(0, 1, types.None)}, []types.Entity{ent(0, 1, types.None)})
	for _, c := range e.PerType {
		if c.TP+c.FP+c.FN != 0 {
			t.Fatal("None entities must be ignored")
		}
	}
}

func TestEvaluateAcrossSentences(t *testing.T) {
	gold := map[types.SentenceKey][]types.Entity{
		{TweetID: 1}: {ent(0, 1, types.Person)},
		{TweetID: 2}: {ent(1, 2, types.Location)},
	}
	pred := map[types.SentenceKey][]types.Entity{
		{TweetID: 1}: {ent(0, 1, types.Person)},
		{TweetID: 3}: {ent(0, 1, types.Miscellaneous)}, // spurious sentence
	}
	e := Evaluate(gold, pred)
	if e.PerType[types.Person].TP != 1 {
		t.Fatal("cross-sentence TP missing")
	}
	if e.PerType[types.Location].FN != 1 {
		t.Fatal("unpredicted sentence should yield FN")
	}
	if e.PerType[types.Miscellaneous].FP != 1 {
		t.Fatal("prediction on non-gold sentence should be FP")
	}
}

func TestMacroF1(t *testing.T) {
	e := NewEvaluation()
	// Perfect on PER only.
	e.PerType[types.Person].TP = 5
	if got := e.MacroF1(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("MacroF1 = %v, want 0.25", got)
	}
}

func TestEvaluateEMDIgnoresTypes(t *testing.T) {
	gold := map[types.SentenceKey][]types.Entity{
		{TweetID: 1}: {ent(0, 1, types.Person), ent(2, 3, types.Location)},
	}
	pred := map[types.SentenceKey][]types.Entity{
		{TweetID: 1}: {ent(0, 1, types.Organization), ent(3, 4, types.Location)},
	}
	c := EvaluateEMD(gold, pred)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("EMD counts = %+v", c)
	}
}

func TestFrequencyBinnedRecall(t *testing.T) {
	// Entity "covid" appears 7 times (bin 6-10), "italy" twice (bin 1-5).
	var sents []*types.Sentence
	pred := map[types.SentenceKey][]types.Entity{}
	for i := 0; i < 7; i++ {
		s := &types.Sentence{
			TweetID: i,
			Tokens:  []string{"covid", "spreads"},
			Gold:    []types.Entity{ent(0, 1, types.Miscellaneous)},
		}
		sents = append(sents, s)
		if i < 5 { // detect 5 of 7
			pred[s.Key()] = []types.Entity{ent(0, 1, types.Miscellaneous)}
		}
	}
	for i := 10; i < 12; i++ {
		s := &types.Sentence{
			TweetID: i,
			Tokens:  []string{"Italy", "suffers"},
			Gold:    []types.Entity{ent(0, 1, types.Location)},
		}
		sents = append(sents, s)
		// detect 1 of 2
		if i == 10 {
			pred[s.Key()] = []types.Entity{ent(0, 1, types.Location)}
		}
	}
	bins := FrequencyBinnedRecall(sents, pred, 5)
	if len(bins) != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	if bins[0].Lo != 1 || bins[0].Hi != 5 || bins[0].Entities != 1 || bins[0].Mentions != 2 {
		t.Fatalf("low bin = %+v", bins[0])
	}
	if math.Abs(bins[0].Recall()-0.5) > 1e-12 {
		t.Fatalf("low-bin recall = %v", bins[0].Recall())
	}
	if bins[1].Lo != 6 || bins[1].Hi != 10 || math.Abs(bins[1].Recall()-5.0/7.0) > 1e-12 {
		t.Fatalf("high bin = %+v", bins[1])
	}
}

func TestFrequencyBinnedRecallDefaultsWidth(t *testing.T) {
	if got := FrequencyBinnedRecall(nil, nil, 0); got != nil && len(got) != 0 {
		t.Fatalf("empty input bins = %v", got)
	}
}
