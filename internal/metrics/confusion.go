package metrics

import (
	"fmt"
	"sort"
	"strings"

	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// Confusion is an entity-level confusion matrix over boundary-matched
// spans: for every gold entity whose span was predicted (with any
// type), it counts gold type × predicted type; unmatched gold spans
// count towards the Missed column and unmatched predictions towards
// the Spurious row. It quantifies the paper's mistyping discussion
// ("BERTweet's predisposition to map mentions of these types to more
// frequent entity types like Person/Location").
type Confusion struct {
	// Matrix[g][p] counts gold type g predicted as type p (entity
	// types only, both indexed by types.EntityType).
	Matrix [types.NumClasses][types.NumClasses]int
	// Missed[g] counts gold entities of type g with no prediction on
	// their span.
	Missed [types.NumClasses]int
	// Spurious[p] counts predictions of type p on spans with no gold
	// entity.
	Spurious [types.NumClasses]int
}

// AddSentence accumulates one sentence.
func (c *Confusion) AddSentence(gold, pred []types.Entity) {
	predBySpan := make(map[types.Span]types.EntityType, len(pred))
	for _, p := range pred {
		if p.Type != types.None {
			predBySpan[p.Span] = p.Type
		}
	}
	goldSpans := make(map[types.Span]bool, len(gold))
	for _, g := range gold {
		if g.Type == types.None {
			continue
		}
		goldSpans[g.Span] = true
		if p, ok := predBySpan[g.Span]; ok {
			c.Matrix[int(g.Type)][int(p)]++
		} else {
			c.Missed[int(g.Type)]++
		}
	}
	for sp, p := range predBySpan {
		if !goldSpans[sp] {
			c.Spurious[int(p)]++
		}
	}
}

// ConfusionMatrix builds the confusion over a dataset.
func ConfusionMatrix(gold, pred map[types.SentenceKey][]types.Entity) *Confusion {
	c := &Confusion{}
	keys := make(map[types.SentenceKey]bool)
	for k := range gold {
		keys[k] = true
	}
	for k := range pred {
		keys[k] = true
	}
	for k := range keys {
		c.AddSentence(gold[k], pred[k])
	}
	return c
}

// String renders the matrix as aligned text.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "gold\\pred")
	for _, p := range types.EntityTypes {
		fmt.Fprintf(&b, "%7s", p.String())
	}
	fmt.Fprintf(&b, "%8s\n", "Missed")
	for _, g := range types.EntityTypes {
		fmt.Fprintf(&b, "%-8s", g.String())
		for _, p := range types.EntityTypes {
			fmt.Fprintf(&b, "%7d", c.Matrix[int(g)][int(p)])
		}
		fmt.Fprintf(&b, "%8d\n", c.Missed[int(g)])
	}
	fmt.Fprintf(&b, "%-8s", "Spurious")
	for _, p := range types.EntityTypes {
		fmt.Fprintf(&b, "%7d", c.Spurious[int(p)])
	}
	b.WriteString("\n")
	return b.String()
}

// BootstrapMacroF1 estimates a confidence interval for the macro-F1 of
// predictions against gold by resampling sentences with replacement n
// times. It returns the point estimate on the full data and the
// (lo, hi) percentile bounds at the given confidence level in (0, 1),
// e.g. 0.95.
func BootstrapMacroF1(gold, pred map[types.SentenceKey][]types.Entity, n int, level float64, seed int64) (point, lo, hi float64) {
	point = Evaluate(gold, pred).MacroF1()
	if n <= 0 {
		return point, point, point
	}
	keys := make([]types.SentenceKey, 0, len(gold))
	for k := range gold {
		keys = append(keys, k)
	}
	// Deterministic order for reproducibility.
	sortKeys(keys)
	rng := nn.NewRNG(seed)
	samples := make([]float64, n)
	for i := 0; i < n; i++ {
		e := NewEvaluation()
		for j := 0; j < len(keys); j++ {
			k := keys[rng.Intn(len(keys))]
			e.AddSentence(gold[k], pred[k])
		}
		samples[i] = e.MacroF1()
	}
	sortFloats(samples)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(n))
	hiIdx := int((1 - alpha) * float64(n-1))
	if hiIdx >= n {
		hiIdx = n - 1
	}
	return point, samples[loIdx], samples[hiIdx]
}

func sortKeys(keys []types.SentenceKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].TweetID != keys[j].TweetID {
			return keys[i].TweetID < keys[j].TweetID
		}
		return keys[i].SentID < keys[j].SentID
	})
}

func sortFloats(v []float64) { sort.Float64s(v) }
