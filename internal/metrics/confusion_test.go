package metrics

import (
	"strings"
	"testing"

	"nerglobalizer/internal/types"
)

func TestConfusionMatrixCounts(t *testing.T) {
	c := &Confusion{}
	gold := []types.Entity{
		ent(0, 1, types.Organization),  // predicted PER → mistype
		ent(2, 3, types.Location),      // predicted LOC → correct
		ent(4, 5, types.Miscellaneous), // unpredicted → missed
	}
	pred := []types.Entity{
		ent(0, 1, types.Person),
		ent(2, 3, types.Location),
		ent(6, 7, types.Person), // no gold → spurious
	}
	c.AddSentence(gold, pred)
	if c.Matrix[int(types.Organization)][int(types.Person)] != 1 {
		t.Fatal("ORG→PER mistype not counted")
	}
	if c.Matrix[int(types.Location)][int(types.Location)] != 1 {
		t.Fatal("correct LOC not counted")
	}
	if c.Missed[int(types.Miscellaneous)] != 1 {
		t.Fatal("missed MISC not counted")
	}
	if c.Spurious[int(types.Person)] != 1 {
		t.Fatal("spurious PER not counted")
	}
}

func TestConfusionMatrixString(t *testing.T) {
	c := &Confusion{}
	c.Matrix[int(types.Person)][int(types.Person)] = 3
	out := c.String()
	if !strings.Contains(out, "PER") || !strings.Contains(out, "Spurious") {
		t.Fatalf("rendering missing sections:\n%s", out)
	}
}

func TestConfusionMatrixOverDataset(t *testing.T) {
	gold := map[types.SentenceKey][]types.Entity{
		{TweetID: 1}: {ent(0, 1, types.Person)},
		{TweetID: 2}: {ent(0, 1, types.Location)},
	}
	pred := map[types.SentenceKey][]types.Entity{
		{TweetID: 1}: {ent(0, 1, types.Person)},
		{TweetID: 2}: {ent(0, 1, types.Organization)},
	}
	c := ConfusionMatrix(gold, pred)
	if c.Matrix[int(types.Person)][int(types.Person)] != 1 {
		t.Fatal("PER correct missing")
	}
	if c.Matrix[int(types.Location)][int(types.Organization)] != 1 {
		t.Fatal("LOC→ORG mistype missing")
	}
}

func TestBootstrapMacroF1(t *testing.T) {
	gold := map[types.SentenceKey][]types.Entity{}
	pred := map[types.SentenceKey][]types.Entity{}
	for i := 0; i < 40; i++ {
		k := types.SentenceKey{TweetID: i}
		gold[k] = []types.Entity{ent(0, 1, types.Person)}
		if i%2 == 0 {
			pred[k] = []types.Entity{ent(0, 1, types.Person)}
		}
	}
	point, lo, hi := BootstrapMacroF1(gold, pred, 200, 0.95, 7)
	if lo > point || point > hi {
		t.Fatalf("interval does not bracket point: %v not in [%v, %v]", point, lo, hi)
	}
	if lo == hi {
		t.Fatal("interval should have positive width on noisy data")
	}
	// Determinism.
	p2, lo2, hi2 := BootstrapMacroF1(gold, pred, 200, 0.95, 7)
	if p2 != point || lo2 != lo || hi2 != hi {
		t.Fatal("bootstrap must be deterministic for a fixed seed")
	}
}

func TestBootstrapMacroF1NoResamples(t *testing.T) {
	gold := map[types.SentenceKey][]types.Entity{{TweetID: 1}: {ent(0, 1, types.Person)}}
	pred := map[types.SentenceKey][]types.Entity{{TweetID: 1}: {ent(0, 1, types.Person)}}
	point, lo, hi := BootstrapMacroF1(gold, pred, 0, 0.95, 1)
	if point != lo || point != hi {
		t.Fatal("n<=0 must collapse the interval to the point estimate")
	}
}
