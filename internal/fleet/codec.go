// Hand-rolled binary codec for the per-cycle RPC payloads.
//
// Each shard RPC opens a fresh gob stream, and gob's per-stream costs —
// re-transmitting type descriptors, then compiling decoder machines for
// every nested type on the receiving side — measured in the hundreds of
// microseconds per call here, comparable to the useful work in a cycle.
// The four hot types therefore implement GobEncoder/GobDecoder
// themselves: the gob envelope survives (so the transport, the replay
// cache and the cold fan-in paths are untouched) but carries a single
// opaque byte blob laid out with fixed-width little-endian fields and
// memcpy-grade loops. Float64 bits are preserved exactly — fleet
// identity depends on it.
//
// Layout conventions: integers are 64-bit two's complement, counts and
// string lengths are uint32, strings are length-prefixed bytes, slices
// are count-prefixed elements, floats are IEEE-754 bit images. A nil
// embedding matrix encodes as rows = -1.
package fleet

import (
	"encoding/binary"
	"fmt"
	"math"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// wireWriter accumulates a payload. Callers pre-size via the *Size
// helpers so encoding a multi-megabyte commit body never re-allocates.
type wireWriter struct {
	buf []byte
	err error
}

func (w *wireWriter) u64(x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	w.buf = append(w.buf, b[:]...)
}

func (w *wireWriter) i64(x int) { w.u64(uint64(int64(x))) }

func (w *wireWriter) f64(x float64) { w.u64(math.Float64bits(x)) }

func (w *wireWriter) u32(x int) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(x))
	w.buf = append(w.buf, b[:]...)
}

func (w *wireWriter) str(s string) {
	w.u32(len(s))
	w.buf = append(w.buf, s...)
}

func (w *wireWriter) strs(ss []string) {
	w.u32(len(ss))
	for _, s := range ss {
		w.str(s)
	}
}

func (w *wireWriter) floats(d []float64) {
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, 8*len(d))...)
	for i, v := range d {
		binary.LittleEndian.PutUint64(w.buf[off+8*i:], math.Float64bits(v))
	}
}

// wireReader consumes a payload. The first out-of-bounds read latches
// err and every subsequent read returns a zero value, so decoders can
// run straight-line and check done() once.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("fleet: wire body truncated or corrupt at byte %d of %d", r.off, len(r.b))
	}
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) i64() int { return int(int64(r.u64())) }

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) u32() int {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return int(v)
}

// count reads an element count whose elements each occupy at least min
// bytes, rejecting counts the remaining body cannot possibly hold — the
// guard that keeps a corrupt length field from driving a huge make().
func (r *wireReader) count(min int) int {
	c := r.u32()
	if r.err == nil && c > (len(r.b)-r.off)/min {
		r.fail()
		return 0
	}
	return c
}

func (r *wireReader) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *wireReader) strs() []string {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *wireReader) floats(n int) []float64 {
	if r.err != nil || n < 0 || n > (len(r.b)-r.off)/8 {
		r.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off+8*i:]))
	}
	r.off += 8 * n
	return out
}

// done finishes a decode: any latched error wins, and trailing bytes
// are an error too (a length-field corruption that still lands inside
// the body would otherwise pass silently).
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("fleet: wire body has %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

const (
	wireSentenceMin = 20 // TweetID + SentID + token count
	wireTagMin      = 16 // token count + entity count + matrix rows
	wireEntityMin   = 24 // Start + End + Type
	wireSEMin       = 20 // TweetID + SentID + entity count
	wireOwnedMin    = 28 // WireEntity fields + surface length
)

func sentencesSize(ss []WireSentence) int {
	n := 4
	for i := range ss {
		n += wireSentenceMin
		for _, t := range ss[i].Tokens {
			n += 4 + len(t)
		}
	}
	return n
}

func putSentences(w *wireWriter, ss []WireSentence) {
	w.u32(len(ss))
	for i := range ss {
		w.i64(ss[i].TweetID)
		w.i64(ss[i].SentID)
		w.strs(ss[i].Tokens)
	}
}

func getSentences(r *wireReader) []WireSentence {
	n := r.count(wireSentenceMin)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]WireSentence, n)
	for i := range out {
		out[i].TweetID = r.i64()
		out[i].SentID = r.i64()
		out[i].Tokens = r.strs()
	}
	return out
}

func tagsSize(ts []WireTag) int {
	n := 4
	for i := range ts {
		n += wireTagMin + wireEntityMin*len(ts[i].Entities)
		for _, t := range ts[i].Tokens {
			n += 4 + len(t)
		}
		if ts[i].Emb != nil {
			n += 8 + 8*len(ts[i].Emb.Data)
		}
	}
	return n
}

func putTags(w *wireWriter, ts []WireTag) {
	w.u32(len(ts))
	for i := range ts {
		t := &ts[i]
		w.strs(t.Tokens)
		w.u32(len(t.Entities))
		for _, e := range t.Entities {
			w.i64(e.Start)
			w.i64(e.End)
			w.i64(int(e.Type))
		}
		if t.Emb == nil {
			w.i64(-1)
			continue
		}
		if len(t.Emb.Data) != t.Emb.Rows*t.Emb.Cols && w.err == nil {
			w.err = fmt.Errorf("fleet: matrix %dx%d has %d values", t.Emb.Rows, t.Emb.Cols, len(t.Emb.Data))
		}
		w.i64(t.Emb.Rows)
		w.i64(t.Emb.Cols)
		w.floats(t.Emb.Data)
	}
}

func getTags(r *wireReader) []WireTag {
	n := r.count(wireTagMin)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]WireTag, n)
	for i := range out {
		t := &out[i]
		t.Tokens = r.strs()
		ne := r.count(wireEntityMin)
		if r.err != nil {
			return nil
		}
		if ne > 0 {
			t.Entities = make([]types.Entity, ne)
		}
		for j := range t.Entities {
			t.Entities[j].Start = r.i64()
			t.Entities[j].End = r.i64()
			t.Entities[j].Type = types.EntityType(r.i64())
		}
		rows := r.i64()
		if rows == -1 {
			continue
		}
		cols := r.i64()
		if rows < 0 || cols < 0 || (cols > 0 && rows > (len(r.b)-r.off)/8/cols) {
			r.fail()
			return nil
		}
		t.Emb = &nn.Matrix{Rows: rows, Cols: cols, Data: r.floats(rows * cols)}
	}
	return out
}

func ownedSize(es []SentenceEntities) int {
	n := 4
	for i := range es {
		n += wireSEMin
		for _, e := range es[i].Entities {
			n += wireOwnedMin + len(e.Surface)
		}
	}
	return n
}

func putOwned(w *wireWriter, es []SentenceEntities) {
	w.u32(len(es))
	for i := range es {
		w.i64(es[i].TweetID)
		w.i64(es[i].SentID)
		w.u32(len(es[i].Entities))
		for _, e := range es[i].Entities {
			w.i64(e.Start)
			w.i64(e.End)
			w.i64(int(e.Type))
			w.str(e.Surface)
		}
	}
}

func getOwned(r *wireReader) []SentenceEntities {
	n := r.count(wireSEMin)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]SentenceEntities, n)
	for i := range out {
		out[i].TweetID = r.i64()
		out[i].SentID = r.i64()
		ne := r.count(wireOwnedMin)
		if r.err != nil {
			return nil
		}
		if ne > 0 {
			out[i].Entities = make([]WireEntity, ne)
		}
		for j := range out[i].Entities {
			e := &out[i].Entities[j]
			e.Start = r.i64()
			e.End = r.i64()
			e.Type = types.EntityType(r.i64())
			e.Surface = r.str()
		}
	}
	return out
}

// GobEncode implements gob.GobEncoder.
func (q *TagRequest) GobEncode() ([]byte, error) {
	w := &wireWriter{buf: make([]byte, 0, 8+sentencesSize(q.Sentences))}
	w.u64(q.Seq)
	putSentences(w, q.Sentences)
	return w.buf, w.err
}

// GobDecode implements gob.GobDecoder.
func (q *TagRequest) GobDecode(b []byte) error {
	r := &wireReader{b: b}
	q.Seq = r.u64()
	q.Sentences = getSentences(r)
	return r.done()
}

// GobEncode implements gob.GobEncoder.
func (q *TagResponse) GobEncode() ([]byte, error) {
	w := &wireWriter{buf: make([]byte, 0, 16+tagsSize(q.Results))}
	w.u64(q.Seq)
	putTags(w, q.Results)
	w.f64(q.BusySeconds)
	return w.buf, w.err
}

// GobDecode implements gob.GobDecoder.
func (q *TagResponse) GobDecode(b []byte) error {
	r := &wireReader{b: b}
	q.Seq = r.u64()
	q.Results = getTags(r)
	q.BusySeconds = r.f64()
	return r.done()
}

// GobEncode implements gob.GobEncoder.
func (q *CommitRequest) GobEncode() ([]byte, error) {
	w := &wireWriter{buf: make([]byte, 0, 16+sentencesSize(q.Sentences)+tagsSize(q.Tagged))}
	w.u64(q.Seq)
	putSentences(w, q.Sentences)
	putTags(w, q.Tagged)
	w.i64(int(q.Mode))
	return w.buf, w.err
}

// GobDecode implements gob.GobDecoder.
func (q *CommitRequest) GobDecode(b []byte) error {
	r := &wireReader{b: b}
	q.Seq = r.u64()
	q.Sentences = getSentences(r)
	q.Tagged = getTags(r)
	q.Mode = core.Mode(r.i64())
	return r.done()
}

// GobEncode implements gob.GobEncoder.
func (q *CommitResponse) GobEncode() ([]byte, error) {
	w := &wireWriter{buf: make([]byte, 0, 32+ownedSize(q.Entities))}
	w.u64(q.Seq)
	putOwned(w, q.Entities)
	w.i64(q.StreamSize)
	w.i64(q.Candidates)
	w.f64(q.BusySeconds)
	return w.buf, w.err
}

// GobDecode implements gob.GobDecoder.
func (q *CommitResponse) GobDecode(b []byte) error {
	r := &wireReader{b: b}
	q.Seq = r.u64()
	q.Entities = getOwned(r)
	q.StreamSize = r.i64()
	q.Candidates = r.i64()
	q.BusySeconds = r.f64()
	return r.done()
}
