package fleet

import (
	"math"
	"testing"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// fuzzSampleCommit builds a small but structurally complete
// CommitRequest: nested lists, a matrix, non-ASCII strings, edge-case
// floats. The fuzz targets below use its encoding as the seed corpus
// so mutation starts from a valid frame, not random noise.
func fuzzSampleCommit() *CommitRequest {
	emb := nn.NewMatrix(2, 3)
	emb.Data = []float64{math.Inf(1), math.Copysign(0, -1), 5e-324, 1.5, -2.25, 0}
	return &CommitRequest{
		Seq: 7,
		Sentences: []WireSentence{
			{TweetID: 1, SentID: 0, Tokens: []string{"Caffè", "in", "Milano"}},
			{TweetID: 2, SentID: 1, Tokens: nil},
		},
		Tagged: []WireTag{
			{
				Tokens:   []string{"Caffè", "in", "Milano"},
				Entities: []types.Entity{{Span: types.Span{Start: 2, End: 3}, Type: types.Location}},
				Emb:      emb,
			},
			{Tokens: nil, Entities: nil, Emb: nil},
		},
		Mode: core.ModeFull,
	}
}

// decodeAny drives every wire type's decoder over the same payload.
// The contract under fuzzing is narrow and absolute: arbitrary bytes
// may fail to decode, but they must never panic the decoder — a
// malformed peer must not be able to crash a shard or the router.
func decodeAny(payload []byte) {
	_ = new(CommitRequest).GobDecode(payload)
	_ = new(CommitResponse).GobDecode(payload)
	_ = new(TagRequest).GobDecode(payload)
	_ = new(TagResponse).GobDecode(payload)
}

func FuzzWireCodecDecode(f *testing.F) {
	creq := fuzzSampleCommit()
	raw, err := creq.GobEncode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)

	cresp := &CommitResponse{
		Seq: 7,
		Entities: []SentenceEntities{
			{TweetID: 1, SentID: 0, Entities: []WireEntity{{Start: 2, End: 3, Type: types.Location, Surface: "milano"}}},
		},
		StreamSize:  2,
		Candidates:  1,
		BusySeconds: 0.25,
	}
	if raw, err := cresp.GobEncode(); err != nil {
		f.Fatal(err)
	} else {
		f.Add(raw)
	}
	treq := &TagRequest{Seq: 3, Sentences: creq.Sentences}
	if raw, err := treq.GobEncode(); err != nil {
		f.Fatal(err)
	} else {
		f.Add(raw)
	}
	tresp := &TagResponse{Seq: 3, Results: creq.Tagged, BusySeconds: 1.5}
	if raw, err := tresp.GobEncode(); err != nil {
		f.Fatal(err)
	} else {
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		decodeAny(payload)
	})
}

// TestWireCodecMutationsNeverPanic is the deterministic slice of the
// fuzz surface that runs on every `go test`: every single-byte
// mutation and every truncation of a valid CommitRequest frame is fed
// to all four decoders. Decoding may succeed (some mutations only
// touch payload values) or error — it must not panic or over-allocate.
func TestWireCodecMutationsNeverPanic(t *testing.T) {
	raw, err := fuzzSampleCommit().GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= flip
			decodeAny(mut)
		}
		decodeAny(raw[:i])
	}
}
