package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/durable"
	"nerglobalizer/internal/obs"
	"nerglobalizer/internal/server"
	"nerglobalizer/internal/tokenizer"
	"nerglobalizer/internal/types"
)

// routerMaxBodyBytes caps public JSON request bodies, matching the
// single-process server's bound.
const routerMaxBodyBytes = 1 << 20

// routerQueueDepth is the /annotate admission bound, matching the
// single-process server's.
const routerQueueDepth = 128

// routerRetryAfterSeconds is the Retry-After hint on router-side
// rejections (queue saturation, aborted cycles).
const routerRetryAfterSeconds = 1

// maxPendingCommits bounds the per-shard queue of commits a degraded
// shard has missed. When a shard is down long enough to hit the bound
// the router stops ingesting (503) rather than growing memory without
// limit — replicas stay reconcilable and the operator gets back
// pressure instead of an OOM.
const maxPendingCommits = 64

// routerJob is one enqueued /annotate request: tweets already
// tokenized and sentence-split on the request goroutine, and the
// channel its outcome comes back on.
type routerJob struct {
	tweets [][][]string // per tweet, per sentence, tokens
	done   chan routerJobResult
}

// routerJobResult is a cycle's answer to one job: either a response or
// an HTTP error to propagate.
type routerJobResult struct {
	resp       annotateResponse
	status     int // 0 = success
	retryAfter int
	errMsg     string
}

// annotateResponse mirrors the single-process server's /annotate reply
// field for field, so fleet responses are byte-identical.
type annotateResponse struct {
	Sentences  []server.SentenceJSON `json:"sentences"`
	StreamSize int                   `json:"stream_size"`
	Candidates int                   `json:"candidates"`
}

// annotateRequest mirrors the single-process server's payload.
type annotateRequest struct {
	Tweets []string `json:"tweets"`
}

// Router is the fleet's stateless front: it owns tokenization, tweet
// ID assignment, and the cycle schedule, fanning tag and commit RPCs
// to the shards and merging their owned annotations back into request
// order. "Stateless" means no model and no stream state — everything
// the router tracks (ID counter, token cache for rendering, pending
// commits) is reconstructible from the shards plus a reset.
type Router struct {
	clients []*ShardClient

	mu     sync.Mutex
	nextID int
	seq    uint64
	// journaledID is the ID watermark of the last journaled cycle:
	// every sentence with TweetID below it is covered by the intent
	// journal. Router snapshots clamp to it so a pipelined commit's
	// snapshot can never capture IDs a concurrent prepare published but
	// has not yet journaled (zero / unused without -data-dir).
	journaledID int
	// sentences caches the tokens of every ingested sentence so
	// /entities can render surfaces without re-asking the shards.
	sentences map[types.SentenceKey]*types.Sentence
	// pending holds, per shard, commits the shard has missed (oldest
	// first). They drain in seq order before the shard takes new ones.
	pending [][]*CommitRequest
	window  time.Duration

	jobs      chan *routerJob
	quit      chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once

	cycles atomic.Int64

	// serialFanout runs the tag and commit fan-outs sequentially
	// instead of in parallel goroutines. Benchmarks on machines with
	// fewer cores than shards set it so per-RPC timings are not
	// inflated by timeslicing between concurrent handlers.
	serialFanout atomic.Bool

	// pipelined (default on) overlaps cycle N's commit fan-out with
	// cycle N+1's tag stage: the scheduler hands each prepared cycle to
	// a commit goroutine chained behind the previous cycle's, so
	// per-shard commit order — and with it the seq gate — is untouched
	// while the router's tag work runs ahead. Tagging is pure (it reads
	// the trained model, never the stream), so the overlap cannot change
	// a single byte of any commit.
	pipelined atomic.Bool

	// prevCommit / pprevCommit are the done channels of the last two
	// scheduled commit goroutines. Scheduler-owned (loop goroutine
	// only): waiting on pprevCommit before spawning the next commit
	// bounds the pipeline at one commit in flight plus one chained.
	prevCommit  chan struct{}
	pprevCommit chan struct{}
	// lastCommitDone mirrors prevCommit under mu for Close and reset,
	// which must wait out in-flight commits from other goroutines.
	lastCommitDone chan struct{}

	statsMu     sync.Mutex
	recordStats bool
	stats       []CycleStat

	o atomic.Pointer[routerObs]

	// Durability (nil / zero unless StartDurable was called): the
	// intent journal — appended before every commit fan-out — and the
	// recovery lifecycle flags.
	dl         *durable.Log
	replaying  atomic.Bool
	broken     atomic.Bool
	replayDone chan struct{}
	recoverErr error
}

// CycleStat is one committed cycle's timing decomposition. The
// distributed critical path — what a fleet with each shard on its own
// machine and the fan-outs running in parallel would spend on the
// cycle — is
//
//	WallSeconds - TagRPCSum - CommitRPCSum + TagRPCMax + CommitRPCMax
//
// wall-clock minus every shard RPC's client-observed round trip (which
// a single-box harness with a serial fan-out strings end to end), plus
// the slowest RPC of each of the two sequential stages. Each round
// trip includes the shard's busy time AND the per-RPC transport cost
// (connection handling, body transfer, response decode), so the model
// charges transport to the per-shard lanes it actually rides on rather
// than to the router's serial residue. At one shard every sum equals
// its max and the expression reduces to WallSeconds exactly, which
// anchors the model to a measured number.
//
// The Busy fields carry the shard-reported handler times for the same
// stages — the gap between an RPC max and a busy max is the per-RPC
// transport overhead, reported so it stays visible as data.
type CycleStat struct {
	WallSeconds   float64
	TagRPCSum     float64
	TagRPCMax     float64
	CommitRPCSum  float64
	CommitRPCMax  float64
	TagBusyMax    float64
	CommitBusyMax float64
	BusySum       float64
}

// routerObs is the router metric set. The obs registry has no label
// support, so per-shard series are materialized as suffixed names
// (ner_fleet_shard0_rpc_seconds, ...).
type routerObs struct {
	reg *obs.Registry

	requests     *obs.Counter   // ner_http_requests_total
	rejected     *obs.Counter   // ner_http_rejected_total
	fleetCycles  *obs.Counter   // ner_fleet_cycles_total
	degraded     *obs.Counter   // ner_fleet_degraded_cycles_total
	tagSeconds   *obs.Histogram // ner_fleet_tag_seconds
	mergeSeconds *obs.Histogram // ner_fleet_merge_seconds

	shardRPC  []*obs.Histogram // ner_fleet_shard<i>_rpc_seconds
	shardErrs []*obs.Counter   // ner_fleet_shard<i>_errors_total
}

func newRouterObs(reg *obs.Registry, shards int) *routerObs {
	if reg == nil {
		return nil
	}
	ro := &routerObs{
		reg: reg,
		requests: reg.Counter("ner_http_requests_total",
			"HTTP requests served across all router endpoints."),
		rejected: reg.Counter("ner_http_rejected_total",
			"Annotate requests rejected with 503 (queue saturation or degraded cycle)."),
		fleetCycles: reg.Counter("ner_fleet_cycles_total",
			"Execution cycles the router has committed to the fleet."),
		degraded: reg.Counter("ner_fleet_degraded_cycles_total",
			"Committed cycles some shard missed (its commit went to the pending queue)."),
		tagSeconds: reg.Histogram("ner_fleet_tag_seconds",
			"Wall-clock of the partitioned tag fan-out per cycle.", nil),
		mergeSeconds: reg.Histogram("ner_fleet_merge_seconds",
			"Wall-clock of the cross-shard annotation merge per cycle.", nil),
	}
	for i := 0; i < shards; i++ {
		ro.shardRPC = append(ro.shardRPC, reg.Histogram(
			fmt.Sprintf("ner_fleet_shard%d_rpc_seconds", i),
			fmt.Sprintf("Round-trip latency of RPCs to shard %d.", i), nil))
		ro.shardErrs = append(ro.shardErrs, reg.Counter(
			fmt.Sprintf("ner_fleet_shard%d_errors_total", i),
			fmt.Sprintf("Failed RPCs to shard %d (unavailable, timeout, conflict).", i)))
	}
	return ro
}

// NewRouter builds a router over the given shard clients (index order
// must match the shards' ownership indices) and starts its scheduler.
// Call Close to stop it.
func NewRouter(clients []*ShardClient) *Router {
	r := &Router{
		clients:   clients,
		sentences: make(map[types.SentenceKey]*types.Sentence),
		pending:   make([][]*CommitRequest, len(clients)),
		jobs:      make(chan *routerJob, routerQueueDepth),
		quit:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	r.pipelined.Store(true)
	go r.loop()
	return r
}

// Close stops the scheduler, waits out any in-flight commit fan-out,
// and releases the shard connection pools.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.quit) })
	<-r.loopDone
	r.waitCommitsIdle()
	if r.replayDone != nil {
		<-r.replayDone
	}
	if r.dl != nil {
		r.dl.Close()
	}
	for _, c := range r.clients {
		c.Close()
	}
}

// waitCommitsIdle blocks until the most recently scheduled commit
// goroutine has finished. Commits chain in cycle order, so the latest
// done channel covers every earlier one.
func (r *Router) waitCommitsIdle() {
	r.mu.Lock()
	done := r.lastCommitDone
	r.mu.Unlock()
	if done != nil {
		<-done
	}
}

// SetObserver attaches a metrics registry to the router.
func (r *Router) SetObserver(reg *obs.Registry) {
	r.o.Store(newRouterObs(reg, len(r.clients)))
}

// SetBatchWindow sets the micro-batch coalescing window, mirroring the
// single-process server's knob.
func (r *Router) SetBatchWindow(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.window = d
}

// SetRPCTimeout re-bounds every shard RPC (tests use short ones).
func (r *Router) SetRPCTimeout(d time.Duration) {
	for _, c := range r.clients {
		c.SetTimeout(d)
	}
}

// SetSerialFanout toggles sequential shard fan-outs (benchmarks only;
// serving keeps the parallel fan-out).
func (r *Router) SetSerialFanout(on bool) { r.serialFanout.Store(on) }

// SetPipelined toggles cross-cycle pipelining (on by default): off,
// the scheduler runs each cycle's commit fan-out to completion before
// preparing the next — the pre-pipelining serial behavior benchmarks
// use as their baseline.
func (r *Router) SetPipelined(on bool) { r.pipelined.Store(on) }

// SetRecordStats toggles per-cycle timing capture for TakeCycleStats.
func (r *Router) SetRecordStats(on bool) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.recordStats = on
	r.stats = nil
}

// TakeCycleStats returns the timing of every cycle committed since the
// last call (or since SetRecordStats) and clears the buffer.
func (r *Router) TakeCycleStats() []CycleStat {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	out := r.stats
	r.stats = nil
	return out
}

// Cycles reports how many execution cycles the router has committed.
func (r *Router) Cycles() int { return int(r.cycles.Load()) }

// Shards reports the fleet size.
func (r *Router) Shards() int { return len(r.clients) }

func (r *Router) batchWindow() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.window
}

// loop is the scheduler: one cycle at a time, coalescing everything
// queued while the previous cycle was in flight.
func (r *Router) loop() {
	defer close(r.loopDone)
	for {
		select {
		case <-r.quit:
			return
		case first := <-r.jobs:
			batch := append([]*routerJob{first}, r.drain()...)
			r.runCycle(batch)
		}
	}
}

func (r *Router) drain() []*routerJob {
	var out []*routerJob
	for {
		select {
		case j := <-r.jobs:
			out = append(out, j)
			continue
		default:
		}
		break
	}
	if w := r.batchWindow(); w > 0 {
		timer := time.NewTimer(w)
		defer timer.Stop()
		for {
			select {
			case j := <-r.jobs:
				out = append(out, j)
			case <-timer.C:
				return out
			case <-r.quit:
				return out
			}
		}
	}
	return out
}

// failAll answers every job in the cycle with the same HTTP error.
func failAll(jobs []*routerJob, status, retryAfter int, msg string) {
	for _, j := range jobs {
		j.done <- routerJobResult{status: status, retryAfter: retryAfter, errMsg: msg}
	}
}

// runCycle executes one micro-batched cycle against the fleet:
//
//  1. Admission: refuse outright if any shard's pending queue is full.
//  2. Tag: shard i tags the i-th contiguous slice of the batch, with
//     failover to the next shard (tagging is pure). If a slice cannot
//     be tagged anywhere the cycle aborts with no state change.
//  3. Commit: once tagging succeeded the cycle is ingested — seq and
//     the ID counter advance — and every shard receives the full batch
//     plus full tag results, draining its pending queue first. A shard
//     that fails gets the commit queued instead.
//  4. Respond: if every shard committed, the owned annotations merge
//     into request order; otherwise the jobs get 503 + Retry-After
//     (their tweets are in the stream, but annotations would be
//     missing the degraded shard's surfaces).
func (r *Router) runCycle(jobs []*routerJob) {
	cycleStart := time.Now()
	r.cycles.Add(1)
	ro := r.o.Load()
	if ro != nil {
		ro.fleetCycles.Inc()
	}

	// Admission against pending overflow.
	r.mu.Lock()
	for i := range r.pending {
		if len(r.pending[i]) >= maxPendingCommits {
			r.mu.Unlock()
			failAll(jobs, http.StatusServiceUnavailable, routerRetryAfterSeconds,
				fmt.Sprintf("shard %d unreachable, pending commits full", i))
			return
		}
	}
	// Tentative ID assignment in queue order; nothing is published
	// until the tag stage succeeds.
	startID := r.nextID
	r.mu.Unlock()
	id := startID
	var batch []*types.Sentence
	perJob := make([][]*types.Sentence, len(jobs))
	for ji, job := range jobs {
		for _, sentTokens := range job.tweets {
			for si, toks := range sentTokens {
				sent := &types.Sentence{TweetID: id, SentID: si, Tokens: toks}
				batch = append(batch, sent)
				perJob[ji] = append(perJob[ji], sent)
			}
			id++
		}
	}

	// Tag fan-out with failover.
	tagged, tagBusy, tagRPC, err := r.tagPartitioned(batch)
	if err != nil {
		failAll(jobs, http.StatusServiceUnavailable, routerRetryAfterSeconds,
			"tag stage failed on every shard: "+err.Error())
		return
	}

	// The cycle is now ingested: publish IDs and sentences, take a seq.
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.nextID = id
	for _, s := range batch {
		r.sentences[s.Key()] = s
	}
	r.mu.Unlock()

	// Journal the intent before any shard sees the commit: after a
	// router crash, every cycle a shard may have applied is re-drivable
	// from the journal. The append is a blocking (durable) one even
	// under fsync=group — a shard must never get ahead of the journal's
	// disk, or recovery would find records the journal lost.
	if r.dl != nil {
		if err := r.journalCycle(seq, batch); err != nil {
			failAll(jobs, http.StatusInternalServerError, 0, "journal failure: "+err.Error())
			return
		}
		r.mu.Lock()
		r.journaledID = id
		r.mu.Unlock()
	}

	req := &CommitRequest{
		Seq:       seq,
		Sentences: ToWireSentences(batch),
		Tagged:    tagged,
		Mode:      core.ModeFull,
	}
	// One encode serves the whole fan-out: every shard receives the
	// same bytes, so the router's serialization cost does not grow with
	// the fleet.
	body, encErr := encodeGob(req)
	if encErr != nil {
		// Unreachable with well-formed engine output; queue the commit
		// everywhere so seq bookkeeping stays consistent and degrade.
		r.mu.Lock()
		for i := range r.pending {
			r.pending[i] = append(r.pending[i], req)
		}
		r.mu.Unlock()
		if ro != nil {
			ro.degraded.Inc()
		}
		failAll(jobs, http.StatusInternalServerError, 0, encErr.Error())
		return
	}

	work := &commitWork{
		jobs: jobs, perJob: perJob, batch: batch,
		req: req, body: body.Bytes(), seq: seq,
		tagBusy: tagBusy, tagRPC: tagRPC,
		cycleStart: cycleStart,
	}
	if !r.pipelined.Load() {
		r.commitCycle(work)
		return
	}
	// Pipelined: hand the commit fan-out to a goroutine chained behind
	// the previous cycle's, so shards still see commits strictly in seq
	// order while the scheduler moves on to the next cycle's tag stage.
	// Waiting on the cycle-before-last bounds the chain at one commit
	// running plus one queued.
	if r.pprevCommit != nil {
		<-r.pprevCommit
	}
	prev := r.prevCommit
	done := make(chan struct{})
	r.mu.Lock()
	r.lastCommitDone = done
	r.mu.Unlock()
	go func() {
		defer close(done)
		if prev != nil {
			<-prev
		}
		r.commitCycle(work)
	}()
	r.pprevCommit, r.prevCommit = r.prevCommit, done
}

// commitWork is one prepared cycle awaiting its commit fan-out: the
// jobs to answer, the shared pre-encoded commit body, and the tag-stage
// timings for CycleStat.
type commitWork struct {
	jobs       []*routerJob
	perJob     [][]*types.Sentence
	batch      []*types.Sentence
	req        *CommitRequest
	body       []byte
	seq        uint64
	tagBusy    []float64
	tagRPC     []float64
	cycleStart time.Time
}

// commitCycle runs one prepared cycle's commit fan-out, degradation
// handling, merge, and response — stages 3 and 4 of runCycle. Under
// pipelining it runs on a chained goroutine; otherwise inline on the
// scheduler.
func (r *Router) commitCycle(work *commitWork) {
	jobs, batch, perJob := work.jobs, work.batch, work.perJob
	req, seq := work.req, work.seq
	ro := r.o.Load()
	k := len(r.clients)
	resps := make([]*CommitResponse, k)
	commitRPC := make([]float64, k)
	errs := make([]error, k)
	if r.serialFanout.Load() {
		for i := 0; i < k; i++ {
			resps[i], commitRPC[i], errs[i] = r.commitShard(i, req, work.body)
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resps[i], commitRPC[i], errs[i] = r.commitShard(i, req, work.body)
			}(i)
		}
		wg.Wait()
	}

	var failed []int
	for i, err := range errs {
		if err != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) > 0 {
		if ro != nil {
			ro.degraded.Inc()
		}
		retry := routerRetryAfterSeconds
		for _, i := range failed {
			var ue *ShardUnavailableError
			if errors.As(errs[i], &ue) && ue.RetryAfter > retry {
				retry = ue.RetryAfter
			}
		}
		failAll(jobs, http.StatusServiceUnavailable, retry,
			fmt.Sprintf("%d of %d shards degraded this cycle", len(failed), k))
		return
	}

	if r.dl != nil {
		if snap := r.maybeSnapshot(seq); snap != nil {
			r.dl.SubmitSnapshot(snap, snap.Seq)
		}
	}

	t0 := time.Now()
	streamSize := resps[0].StreamSize
	candidates := 0
	for _, resp := range resps {
		candidates += resp.Candidates
	}
	// Merge each sentence's per-shard groups and answer per job.
	merged := make([][]WireEntity, len(batch))
	parts := make([][]WireEntity, k)
	for si := range batch {
		for i, resp := range resps {
			parts[i] = resp.Entities[si].Entities
		}
		merged[si] = mergeEntityGroups(parts)
	}
	bi := 0
	for ji, job := range jobs {
		resp := annotateResponse{StreamSize: streamSize, Candidates: candidates}
		for _, sent := range perJob[ji] {
			sj := server.SentenceJSON{
				TweetID:  sent.TweetID,
				SentID:   sent.SentID,
				Tokens:   sent.Tokens,
				Entities: []server.EntityJSON{},
			}
			for _, e := range merged[bi] {
				sj.Entities = append(sj.Entities, server.EntityJSON{
					Start:   e.Start,
					End:     e.End,
					Type:    e.Type.String(),
					Surface: sent.SurfaceAt(types.Span{Start: e.Start, End: e.End}),
				})
			}
			resp.Sentences = append(resp.Sentences, sj)
			bi++
		}
		job.done <- routerJobResult{resp: resp}
	}
	if ro != nil {
		ro.mergeSeconds.Observe(time.Since(t0).Seconds())
	}

	r.statsMu.Lock()
	if r.recordStats {
		stat := CycleStat{WallSeconds: time.Since(work.cycleStart).Seconds()}
		for i, b := range work.tagBusy {
			stat.BusySum += b
			stat.TagRPCSum += work.tagRPC[i]
			if b > stat.TagBusyMax {
				stat.TagBusyMax = b
			}
			if work.tagRPC[i] > stat.TagRPCMax {
				stat.TagRPCMax = work.tagRPC[i]
			}
		}
		for i, resp := range resps {
			stat.BusySum += resp.BusySeconds
			stat.CommitRPCSum += commitRPC[i]
			if resp.BusySeconds > stat.CommitBusyMax {
				stat.CommitBusyMax = resp.BusySeconds
			}
			if commitRPC[i] > stat.CommitRPCMax {
				stat.CommitRPCMax = commitRPC[i]
			}
		}
		r.stats = append(r.stats, stat)
	}
	r.statsMu.Unlock()
}

// tagPartitioned has shard i tag the i-th contiguous slice of the
// batch, failing over to the next shard in ring order when one
// refuses: tagging is pure, so any shard's answer is byte-identical.
// The extra returns are each slice's shard-reported busy time and its
// client-observed RPC round trip, for critical-path accounting.
func (r *Router) tagPartitioned(batch []*types.Sentence) ([]WireTag, []float64, []float64, error) {
	k := len(r.clients)
	ro := r.o.Load()
	t0 := time.Now()
	tagged := make([]WireTag, len(batch))
	busy := make([]float64, k)
	rpc := make([]float64, k)
	errs := make([]error, k)
	tagSlice := func(i, lo, hi int) {
		req := &TagRequest{Sentences: ToWireSentences(batch[lo:hi])}
		var resp *TagResponse
		var err error
		st0 := time.Now()
		for attempt := 0; attempt < k; attempt++ {
			shard := (i + attempt) % k
			rt0 := time.Now()
			resp, err = r.clients[shard].Tag(req)
			if ro != nil {
				ro.shardRPC[shard].Observe(time.Since(rt0).Seconds())
				if err != nil {
					ro.shardErrs[shard].Inc()
				}
			}
			if err == nil {
				break
			}
		}
		rpc[i] = time.Since(st0).Seconds()
		if err != nil {
			errs[i] = err
			return
		}
		busy[i] = resp.BusySeconds
		copy(tagged[lo:hi], resp.Results)
	}
	if r.serialFanout.Load() {
		for i := 0; i < k; i++ {
			if lo, hi := i*len(batch)/k, (i+1)*len(batch)/k; lo < hi {
				tagSlice(i, lo, hi)
			}
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			lo, hi := i*len(batch)/k, (i+1)*len(batch)/k
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				tagSlice(i, lo, hi)
			}(i, lo, hi)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if ro != nil {
		ro.tagSeconds.Observe(time.Since(t0).Seconds())
	}
	return tagged, busy, rpc, nil
}

// commitShard drains shard i's pending commits in seq order, then
// applies req (whose pre-encoded body the caller shares across the
// fan-out). Any failure queues req (and keeps the rest of the pending
// queue) so the shard can catch up next cycle — the shard's seq gate
// guarantees replayed commits apply exactly once. The second return is
// the shard's total client-observed commit round-trip time this cycle
// (replays included — they ride the same per-shard lane).
func (r *Router) commitShard(i int, req *CommitRequest, body []byte) (*CommitResponse, float64, error) {
	ro := r.o.Load()
	lane := time.Now()
	observe := func(t0 time.Time, err error) {
		if ro != nil {
			ro.shardRPC[i].Observe(time.Since(t0).Seconds())
			if err != nil {
				ro.shardErrs[i].Inc()
			}
		}
	}
	for {
		r.mu.Lock()
		if len(r.pending[i]) == 0 {
			r.mu.Unlock()
			break
		}
		head := r.pending[i][0]
		r.mu.Unlock()
		t0 := time.Now()
		_, err := r.clients[i].Commit(head)
		observe(t0, err)
		if err != nil {
			r.mu.Lock()
			r.pending[i] = append(r.pending[i], req)
			r.mu.Unlock()
			return nil, time.Since(lane).Seconds(), err
		}
		r.mu.Lock()
		r.pending[i] = r.pending[i][1:]
		r.mu.Unlock()
	}
	t0 := time.Now()
	resp, err := r.clients[i].CommitEncoded(body)
	observe(t0, err)
	if err != nil {
		r.mu.Lock()
		r.pending[i] = append(r.pending[i], req)
		r.mu.Unlock()
		return nil, time.Since(lane).Seconds(), err
	}
	return resp, time.Since(lane).Seconds(), nil
}

// mergeEntityGroups interleaves per-shard surface groups back into the
// engine's sorted-surface-major order. Each shard's list is already
// grouped by ascending canonical surface, and a surface lives on
// exactly one shard, so a linear k-way group merge reproduces the
// single-process ordering exactly.
func mergeEntityGroups(parts [][]WireEntity) []WireEntity {
	idx := make([]int, len(parts))
	var out []WireEntity
	for {
		best := -1
		for s, p := range parts {
			if idx[s] >= len(p) {
				continue
			}
			if best == -1 || p[idx[s]].Surface < parts[best][idx[best]].Surface {
				best = s
			}
		}
		if best == -1 {
			return out
		}
		p := parts[best]
		surf := p[idx[best]].Surface
		for idx[best] < len(p) && p[idx[best]].Surface == surf {
			out = append(out, p[idx[best]])
			idx[best]++
		}
	}
}

// Handler returns the router's routed HTTP handler. The public
// endpoints (/annotate, /candidates, /entities, /reset) are
// byte-compatible with the single-process server's.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/annotate", r.counted(r.handleAnnotate))
	mux.HandleFunc("/candidates", r.counted(r.handleCandidates))
	mux.HandleFunc("/entities", r.counted(r.handleEntities))
	mux.HandleFunc("/reset", r.counted(r.handleReset))
	mux.HandleFunc("/metrics", r.counted(r.handleMetrics))
	mux.HandleFunc("/statusz", r.counted(r.handleStatusz))
	mux.HandleFunc("/proof", r.counted(r.handleProof))
	mux.HandleFunc("/healthz", r.counted(r.handleHealthz))
	return mux
}

func (r *Router) counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if ro := r.o.Load(); ro != nil {
			ro.requests.Inc()
		}
		h(w, req)
	}
}

func (r *Router) handleAnnotate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if r.rejectUnready(w) {
		return
	}
	ro := r.o.Load()
	req.Body = http.MaxBytesReader(w, req.Body, routerMaxBodyBytes)
	var ar annotateRequest
	if err := json.NewDecoder(req.Body).Decode(&ar); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(ar.Tweets) == 0 {
		http.Error(w, "no tweets", http.StatusBadRequest)
		return
	}

	job := &routerJob{done: make(chan routerJobResult, 1)}
	for _, raw := range ar.Tweets {
		job.tweets = append(job.tweets, tokenizer.SplitSentences(tokenizer.Tokenize(raw)))
	}

	select {
	case <-r.quit:
		http.Error(w, "router shutting down", http.StatusServiceUnavailable)
		return
	case <-req.Context().Done():
		return
	default:
	}
	select {
	case r.jobs <- job:
	default:
		if ro != nil {
			ro.rejected.Inc()
		}
		w.Header().Set("Retry-After", strconv.Itoa(routerRetryAfterSeconds))
		http.Error(w, "annotate queue saturated", http.StatusServiceUnavailable)
		return
	}
	select {
	case res := <-job.done:
		if res.status != 0 {
			if ro != nil {
				ro.rejected.Inc()
			}
			if res.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(res.retryAfter))
			}
			http.Error(w, res.errMsg, res.status)
			return
		}
		writeJSON(w, res.resp)
	case <-r.quit:
		http.Error(w, "router shutting down", http.StatusServiceUnavailable)
	}
}

// handleCandidates fans /shard/candidates in from every shard and
// k-way merges the disjoint, surface-sorted lists back into the global
// sorted order — byte-identical to the single server's /candidates.
func (r *Router) handleCandidates(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	k := len(r.clients)
	parts := make([][]WireCandidate, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = r.clients[i].Candidates()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			http.Error(w, "candidate fan-in: "+err.Error(), http.StatusBadGateway)
			return
		}
	}
	idx := make([]int, k)
	out := []server.CandidateJSON{}
	for {
		best := -1
		for i := 0; i < k; i++ {
			if idx[i] >= len(parts[i]) {
				continue
			}
			if best == -1 || parts[i][idx[i]].Surface < parts[best][idx[best]].Surface {
				best = i
			}
		}
		if best == -1 {
			break
		}
		surf := parts[best][idx[best]].Surface
		for idx[best] < len(parts[best]) && parts[best][idx[best]].Surface == surf {
			c := parts[best][idx[best]]
			out = append(out, server.CandidateJSON{
				Surface:    c.Surface,
				ClusterID:  c.ClusterID,
				Type:       c.Type.String(),
				Mentions:   c.Mentions,
				Confidence: c.Confidence,
			})
			idx[best]++
		}
	}
	writeJSON(w, out)
}

// handleEntities fans /shard/entities in from every shard and merges
// the whole stream's annotations in insertion order — byte-identical
// to the single server's /entities.
func (r *Router) handleEntities(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	k := len(r.clients)
	parts := make([][]SentenceEntities, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = r.clients[i].Entities()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			http.Error(w, "entity fan-in: "+err.Error(), http.StatusBadGateway)
			return
		}
	}
	for i := 1; i < k; i++ {
		if len(parts[i]) != len(parts[0]) {
			http.Error(w, fmt.Sprintf("entity fan-in: shard stream sizes differ (%d vs %d)",
				len(parts[0]), len(parts[i])), http.StatusBadGateway)
			return
		}
	}
	r.mu.Lock()
	sentences := r.sentences
	r.mu.Unlock()
	out := []server.SentenceEntitiesJSON{}
	groups := make([][]WireEntity, k)
	for si := range parts[0] {
		key := types.SentenceKey{TweetID: parts[0][si].TweetID, SentID: parts[0][si].SentID}
		for i := 0; i < k; i++ {
			groups[i] = parts[i][si].Entities
		}
		sj := server.SentenceEntitiesJSON{
			TweetID:  key.TweetID,
			SentID:   key.SentID,
			Entities: []server.EntityJSON{},
		}
		sent := sentences[key]
		for _, e := range mergeEntityGroups(groups) {
			surface := e.Surface
			if sent != nil {
				surface = sent.SurfaceAt(types.Span{Start: e.Start, End: e.End})
			}
			sj.Entities = append(sj.Entities, server.EntityJSON{
				Start:   e.Start,
				End:     e.End,
				Type:    e.Type.String(),
				Surface: surface,
			})
		}
		out = append(out, sj)
	}
	writeJSON(w, out)
}

// handleReset clears the whole fleet's stream state: every shard, then
// the router's own counters. Failures leave the fleet inconsistent and
// surface as 502 so the operator retries.
func (r *Router) handleReset(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if r.dl != nil {
		http.Error(w, "reset is not supported with -data-dir; wipe the data dirs and restart the fleet", http.StatusConflict)
		return
	}
	// A pipelined commit may still be in flight; let it land before
	// zeroing the fleet so the reset cannot interleave with a cycle.
	r.waitCommitsIdle()
	for _, c := range r.clients {
		if err := c.Reset(); err != nil {
			http.Error(w, "reset fan-out: "+err.Error(), http.StatusBadGateway)
			return
		}
	}
	r.mu.Lock()
	r.nextID = 0
	r.seq = 0
	r.sentences = make(map[types.SentenceKey]*types.Sentence)
	r.pending = make([][]*CommitRequest, len(r.clients))
	r.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	var reg *obs.Registry
	if ro := r.o.Load(); ro != nil {
		reg = ro.reg
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}

// RouterShardStatus is one shard's entry in the router's /statusz:
// reachability, the router-side pending-commit backlog, and the
// shard's own resolved settings for homogeneity checks.
type RouterShardStatus struct {
	Index   int         `json:"index"`
	URL     string      `json:"url"`
	Healthy bool        `json:"healthy"`
	Error   string      `json:"error,omitempty"`
	Pending int         `json:"pending_commits"`
	Status  ShardStatus `json:"status"`
}

// RouterStatuszResponse is the router's GET /statusz payload.
type RouterStatuszResponse struct {
	Role   string `json:"role"`
	Cycles int    `json:"cycles"`
	Seq    uint64 `json:"seq"`
	// Pipelined reports whether cycle N's commit fan-out overlaps cycle
	// N+1's tag stage (the default serving mode).
	Pipelined bool `json:"pipelined"`
	// Durability summarizes the router journal's commit path; nil
	// without -data-dir.
	Durability *durable.Status     `json:"durability,omitempty"`
	Shards     []RouterShardStatus `json:"shards"`
	Metrics    obs.Snapshot        `json:"metrics"`
}

func (r *Router) handleStatusz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	k := len(r.clients)
	shards := make([]RouterShardStatus, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := r.clients[i].Status()
			shards[i] = RouterShardStatus{
				Index:   i,
				URL:     r.clients[i].BaseURL(),
				Healthy: err == nil,
				Status:  st,
			}
			if err != nil {
				shards[i].Error = err.Error()
			}
		}(i)
	}
	wg.Wait()
	r.mu.Lock()
	for i := range shards {
		shards[i].Pending = len(r.pending[i])
	}
	seq := r.seq
	r.mu.Unlock()
	var reg *obs.Registry
	if ro := r.o.Load(); ro != nil {
		reg = ro.reg
	}
	resp := RouterStatuszResponse{
		Role:      "router",
		Cycles:    int(r.cycles.Load()),
		Seq:       seq,
		Pipelined: r.pipelined.Load(),
		Shards:    shards,
		Metrics:   reg.Snapshot(),
	}
	if r.dl != nil {
		st := r.dl.Status()
		resp.Durability = &st
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
