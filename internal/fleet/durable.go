package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/durable"
	"nerglobalizer/internal/obs"
	"nerglobalizer/internal/types"
)

// Fleet durability splits along the ownership contract:
//
//   - Each shard owns a WAL + snapshot of its replica and a Merkle
//     provenance chain over its OWNED annotations — the bytes it put on
//     the wire. A commit is acked only after the shard's WAL append, so
//     the router's view of what a shard has committed (its ack) never
//     runs ahead of the shard's disk.
//   - The router journals intent records (seq + batch sentences, no
//     annotations — it never computes any) BEFORE the commit fan-out.
//     Shards can therefore never be ahead of the journal, and a router
//     restart re-drives any shard that lags the journaled seq by
//     re-tagging the logged batches (tagging is pure and byte-identical
//     on any shard) and committing them in order; the shard seq gate
//     makes the re-drive exactly-once.
//   - The router snapshots only at cycles every shard has acked, so the
//     journal tail past the latest snapshot always contains every
//     record a lagging shard could need.

// replayRetryInterval paces the router's recovery polling of shards
// that are themselves still replaying.
const replayRetryInterval = 200 * time.Millisecond

// replayDeadline bounds how long router recovery waits for one shard.
const replayDeadline = 2 * time.Minute

// toCycleSentences converts wire sentences for the WAL.
func toCycleSentences(ws []WireSentence) []durable.CycleSentence {
	out := make([]durable.CycleSentence, len(ws))
	for i, s := range ws {
		out[i] = durable.CycleSentence{TweetID: s.TweetID, SentID: s.SentID, Tokens: s.Tokens}
	}
	return out
}

// wireAnnotations converts a commit response's owned entities into the
// WAL / Merkle-leaf form. The surfaces are the canonical wire surfaces,
// so the provenance chain covers exactly the bytes the shard served.
func wireAnnotations(ents []SentenceEntities) []durable.SentenceAnnotation {
	out := make([]durable.SentenceAnnotation, len(ents))
	for i, se := range ents {
		a := durable.SentenceAnnotation{TweetID: se.TweetID, SentID: se.SentID}
		for _, e := range se.Entities {
			a.Entities = append(a.Entities, durable.Entity{
				Start: e.Start, End: e.End, Type: e.Type, Surface: e.Surface,
			})
		}
		out[i] = a
	}
	return out
}

// ---------------------------------------------------------------------
// Shard durability
// ---------------------------------------------------------------------

// StartDurable opens the shard's data directory and begins recovery.
// Call once, after NewShard and SetObserver but before serving.
// Mutating RPCs answer 503 until recovery finishes; WaitWarm blocks on
// it.
func (s *Shard) StartDurable(dir string, opts durable.Options) error {
	var reg *obs.Registry
	if so := s.o.Load(); so != nil {
		reg = so.reg
	}
	dl, rec, err := durable.Open(dir, opts, reg)
	if err != nil {
		return err
	}
	s.dl = dl
	s.prov = durable.NewProvenance()
	s.replayDone = make(chan struct{})
	s.replaying.Store(true)
	go func() {
		defer close(s.replayDone)
		defer s.replaying.Store(false)
		if err := s.recoverFrom(rec); err != nil {
			s.recoverErr = err
			s.broken.Store(true)
		}
	}()
	return nil
}

// WaitWarm blocks until shard recovery completes and returns its error.
func (s *Shard) WaitWarm() error {
	if s.replayDone == nil {
		return nil
	}
	<-s.replayDone
	return s.recoverErr
}

// Close waits out recovery and seals the shard's WAL. A shard without
// StartDurable needs no Close.
func (s *Shard) Close() {
	if s.replayDone != nil {
		<-s.replayDone
	}
	if s.dl != nil {
		s.dl.Close()
	}
}

// recoverFrom restores the replica snapshot and re-executes the WAL
// tail by self-tagging each logged batch — byte-identical to the
// original commits by the fleet's homogeneity contract, and verified
// against the logged annotations to catch a model or configuration
// mismatch.
func (s *Shard) recoverFrom(rec *durable.Recovery) error {
	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap := rec.Snapshot; snap != nil {
		if snap.Kind != durable.KindShard {
			return fmt.Errorf("fleet: shard %d: data dir was written by process kind %d, not a shard", s.index, snap.Kind)
		}
		if snap.Warm == nil {
			return fmt.Errorf("fleet: shard %d: snapshot at seq %d has no engine state", s.index, snap.Seq)
		}
		if err := s.g.RestoreWarmState(snap.Warm); err != nil {
			return err
		}
		s.seq = snap.Seq
		s.lastResp = nil
		if len(snap.LastResp) > 0 {
			var lr CommitResponse
			if err := decodeGob(bytes.NewReader(snap.LastResp), &lr); err != nil {
				return fmt.Errorf("fleet: shard %d: snapshot last response: %w", s.index, err)
			}
			s.lastResp = &lr
		}
		s.prov = durable.RestoreProvenance(snap.Provenance)
	}
	for _, cr := range rec.Tail {
		batch := durable.ToSentences(cr.Sentences)
		results := s.g.TagBatch(batch)
		s.g.ProcessTagged(batch, results, core.Mode(cr.Mode))
		resp := &CommitResponse{
			Seq:        cr.Seq,
			Entities:   make([]SentenceEntities, len(batch)),
			StreamSize: s.g.TweetBase().Len(),
			Candidates: s.g.CandidateBase().Len(),
		}
		for i, sent := range batch {
			resp.Entities[i] = s.ownedEntities(sent.Key())
		}
		got := wireAnnotations(resp.Entities)
		if !durable.AnnotationsEqual(got, cr.Annotations) {
			return fmt.Errorf("fleet: shard %d: replay of cycle %d diverged from the logged annotations — model or configuration mismatch", s.index, cr.Seq)
		}
		s.prov.AppendCycle(cr.Seq, cr.Annotations)
		s.seq = cr.Seq
		s.lastResp = resp
	}
	s.dl.ObserveReplay(len(rec.Tail), time.Since(t0))
	return nil
}

// durableCommit is handleCommit's persistence tail, run under s.mu
// after the engine applied the cycle and before the response is acked.
// It issues the WAL append, folds the cycle into the provenance chain,
// and returns a captured snapshot when the schedule calls for one plus
// the append's durability wait — the caller calls the wait off-lock
// before acking (immediate under fsync=always, the covering group
// fsync under fsync=group). An append failure bricks the shard: the
// replica has advanced past its disk, so acking — or taking further
// commits — would let a restart silently drop the cycle.
func (s *Shard) durableCommit(req *CommitRequest, resp *CommitResponse) (*durable.Snapshot, func() error, error) {
	rec := &durable.CycleRecord{
		Seq:         req.Seq,
		Mode:        int(req.Mode),
		Sentences:   toCycleSentences(req.Sentences),
		Annotations: wireAnnotations(resp.Entities),
	}
	wait, err := s.dl.AppendAsync(rec)
	if err != nil {
		s.broken.Store(true)
		return nil, nil, err
	}
	s.prov.AppendCycle(req.Seq, rec.Annotations)
	if !s.dl.ShouldSnapshot(req.Seq) {
		return nil, wait, nil
	}
	lr, err := encodeGob(resp)
	if err != nil {
		return nil, wait, nil // snapshot skipped; the WAL already covers the cycle
	}
	return &durable.Snapshot{
		Kind:       durable.KindShard,
		Seq:        req.Seq,
		LastResp:   lr.Bytes(),
		Warm:       s.g.CaptureWarmState(),
		Provenance: s.prov.Cycles(),
	}, wait, nil
}

// unready gates mutating RPCs while the shard is replaying or bricked.
func (s *Shard) unready(w http.ResponseWriter) bool {
	if s.replaying.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(shardRetryAfterSeconds))
		http.Error(w, "shard replaying snapshot and WAL", http.StatusServiceUnavailable)
		return true
	}
	if s.broken.Load() {
		http.Error(w, "shard durability failed; restart from the data dir", http.StatusServiceUnavailable)
		return true
	}
	return false
}

// handleHealthz mirrors the single server's readiness contract.
func (s *Shard) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.replaying.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"replaying\"}\n"))
		return
	}
	if s.broken.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"durability_failed\"}\n"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleProof serves this shard's inclusion proofs: GET
// /shard/proof?tweet=N returns one bundle over the shard's own chain,
// covering its owned annotations for the tweet.
func (s *Shard) handleProof(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if s.dl == nil {
		http.Error(w, "provenance requires -data-dir", http.StatusNotFound)
		return
	}
	if s.unready(w) {
		return
	}
	tweet, err := strconv.Atoi(r.URL.Query().Get("tweet"))
	if err != nil {
		http.Error(w, "tweet query parameter required", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	b, ok := s.prov.BundleForTweet(tweet, s.index)
	s.mu.Unlock()
	if !ok {
		http.Error(w, "tweet not in the annotated stream", http.StatusNotFound)
		return
	}
	s.dl.ProofServed()
	writeJSON(w, b)
}

// ---------------------------------------------------------------------
// Router durability
// ---------------------------------------------------------------------

// StartDurable opens the router's journal directory and begins
// recovery: restore the cycle cursor and sentence registry, then
// re-drive any shard whose committed seq lags the journal. Call once,
// after NewRouter and SetObserver but before serving.
func (r *Router) StartDurable(dir string, opts durable.Options) error {
	dl, rec, err := durable.Open(dir, opts, r.observerReg())
	if err != nil {
		return err
	}
	r.dl = dl
	r.replayDone = make(chan struct{})
	r.replaying.Store(true)
	go func() {
		defer close(r.replayDone)
		defer r.replaying.Store(false)
		if err := r.recoverFrom(rec); err != nil {
			r.recoverErr = err
			r.broken.Store(true)
		}
	}()
	return nil
}

// WaitWarm blocks until router recovery (including shard re-driving)
// completes and returns its error.
func (r *Router) WaitWarm() error {
	if r.replayDone == nil {
		return nil
	}
	<-r.replayDone
	return r.recoverErr
}

func (r *Router) observerReg() *obs.Registry {
	if ro := r.o.Load(); ro != nil {
		return ro.reg
	}
	return nil
}

// recoverFrom restores the router's registry and reconciles the fleet.
func (r *Router) recoverFrom(rec *durable.Recovery) error {
	t0 := time.Now()
	bySeq := make(map[uint64]*durable.CycleRecord, len(rec.Tail))
	r.mu.Lock()
	if snap := rec.Snapshot; snap != nil {
		if snap.Kind != durable.KindRouter {
			r.mu.Unlock()
			return fmt.Errorf("fleet: router data dir was written by process kind %d, not a router", snap.Kind)
		}
		r.seq = snap.Seq
		r.nextID = snap.NextID
		for _, cs := range snap.RouterSentences {
			sent := cs.Sentence()
			r.sentences[sent.Key()] = sent
		}
	}
	for _, cr := range rec.Tail {
		bySeq[cr.Seq] = cr
		for _, cs := range cr.Sentences {
			sent := cs.Sentence()
			r.sentences[sent.Key()] = sent
			if sent.TweetID >= r.nextID {
				r.nextID = sent.TweetID + 1
			}
		}
		r.seq = cr.Seq
	}
	target := r.seq
	r.cycles.Store(int64(target))
	// Everything restored so far came from the journal itself.
	r.journaledID = r.nextID
	r.mu.Unlock()

	// Re-drive: every shard must reach the journaled seq. Shards are
	// never ahead (the journal is appended before the fan-out); a shard
	// behind gets the missing cycles re-tagged and committed in order.
	for i := range r.clients {
		if err := r.redriveShard(i, target, bySeq); err != nil {
			return err
		}
	}
	r.dl.ObserveReplay(len(rec.Tail), time.Since(t0))
	return nil
}

// redriveShard brings shard i up to the journaled seq.
func (r *Router) redriveShard(i int, target uint64, bySeq map[uint64]*durable.CycleRecord) error {
	deadline := time.Now().Add(replayDeadline)
	var st ShardStatus
	var err error
	for {
		st, err = r.clients[i].Status()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: router recovery: shard %d unreachable: %w", i, err)
		}
		time.Sleep(replayRetryInterval)
	}
	if st.Seq > target {
		return fmt.Errorf("fleet: router recovery: shard %d is at seq %d, ahead of the journal's %d — journal lost records", i, st.Seq, target)
	}
	for seq := st.Seq + 1; seq <= target; seq++ {
		cr, ok := bySeq[seq]
		if !ok {
			return fmt.Errorf("fleet: router recovery: shard %d needs cycle %d but the journal starts later — compaction outran the shard", i, seq)
		}
		batch := durable.ToSentences(cr.Sentences)
		tagged, _, _, err := r.tagPartitioned(batch)
		if err != nil {
			return fmt.Errorf("fleet: router recovery: re-tag cycle %d: %w", seq, err)
		}
		req := &CommitRequest{Seq: seq, Sentences: ToWireSentences(batch), Tagged: tagged, Mode: core.Mode(cr.Mode)}
		for {
			_, err = r.clients[i].Commit(req)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("fleet: router recovery: re-drive cycle %d to shard %d: %w", seq, i, err)
			}
			time.Sleep(replayRetryInterval)
		}
	}
	return nil
}

// journalCycle appends the intent record for a freshly ingested cycle —
// called before the commit fan-out, so the journal always covers
// everything any shard may have applied. A failure bricks the router.
func (r *Router) journalCycle(seq uint64, batch []*types.Sentence) error {
	rec := &durable.CycleRecord{
		Seq:       seq,
		Mode:      int(core.ModeFull),
		Sentences: durable.ToCycleSentences(batch),
	}
	if err := r.dl.Append(rec); err != nil {
		r.broken.Store(true)
		return err
	}
	return nil
}

// maybeSnapshot captures a router snapshot when the schedule calls for
// one AND every shard has acked through seq (all pending queues empty —
// guaranteed when the cycle just committed everywhere), so compaction
// can never outrun a lagging shard. Returns nil when not due.
//
// Under pipelining this runs on a commit goroutine while the scheduler
// may already have published the NEXT cycle's IDs and sentences but not
// yet journaled them. The capture clamps to journaledID — the watermark
// of the last journaled cycle — so the snapshot never carries state the
// journal cannot re-drive after a crash.
func (r *Router) maybeSnapshot(seq uint64) *durable.Snapshot {
	if !r.dl.ShouldSnapshot(seq) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.pending {
		if len(r.pending[i]) > 0 {
			return nil
		}
	}
	limitID := r.journaledID
	sents := make([]durable.CycleSentence, 0, len(r.sentences))
	for _, s := range r.sentences {
		if s.TweetID >= limitID {
			continue
		}
		sents = append(sents, durable.CycleSentence{TweetID: s.TweetID, SentID: s.SentID, Tokens: s.Tokens})
	}
	sort.Slice(sents, func(a, b int) bool {
		if sents[a].TweetID != sents[b].TweetID {
			return sents[a].TweetID < sents[b].TweetID
		}
		return sents[a].SentID < sents[b].SentID
	})
	return &durable.Snapshot{
		Kind:            durable.KindRouter,
		Seq:             seq,
		NextID:          limitID,
		RouterSentences: sents,
	}
}

// rejectUnready answers 503 while the router recovers or after its
// journal failed.
func (r *Router) rejectUnready(w http.ResponseWriter) bool {
	if r.replaying.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(routerRetryAfterSeconds))
		http.Error(w, "router replaying journal", http.StatusServiceUnavailable)
		return true
	}
	if r.broken.Load() {
		http.Error(w, "router journal failed; restart from the data dir", http.StatusServiceUnavailable)
		return true
	}
	return false
}

// handleHealthz mirrors the single server's readiness contract.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.replaying.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"replaying\"}\n"))
		return
	}
	if r.broken.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"durability_failed\"}\n"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleProof fans GET /proof?tweet=N out to every shard and returns
// the per-shard bundles as one array — each shard proves its own owned
// annotations on its own chain, and cmd/nerprove verifies each bundle
// independently.
func (r *Router) handleProof(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if r.rejectUnready(w) {
		return
	}
	tweet, err := strconv.Atoi(req.URL.Query().Get("tweet"))
	if err != nil {
		http.Error(w, "tweet query parameter required", http.StatusBadRequest)
		return
	}
	bundles := []*durable.ProofBundle{}
	for i := range r.clients {
		b, found, err := r.clients[i].Proof(tweet)
		if err != nil {
			http.Error(w, "proof fan-in: "+err.Error(), http.StatusBadGateway)
			return
		}
		if found {
			bundles = append(bundles, b)
		}
	}
	if len(bundles) == 0 {
		http.Error(w, "tweet not in the annotated stream (or shards run without -data-dir)", http.StatusNotFound)
		return
	}
	writeJSON(w, bundles)
}
