package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/corpus"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/server"
	"nerglobalizer/internal/tokenizer"
	"nerglobalizer/internal/transformer"
	"nerglobalizer/internal/types"
)

var (
	fleetOnce sync.Once
	fleetG    *core.Globalizer
)

// trainedPipeline trains one tiny pipeline per test binary; tests
// clone it (harness) or Reset it (single-process comparisons).
func trainedPipeline(t *testing.T) *core.Globalizer {
	t.Helper()
	fleetOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Encoder = transformer.Config{
			Dim: 16, Heads: 2, Layers: 1, FFDim: 32, MaxLen: 20,
			VocabBuckets: 256, CharBuckets: 64, Dropout: 0, Seed: 3,
		}
		cfg.PretrainEpochs = 1
		cfg.FineTuneEpochs = 6
		cfg.MaxTriplets = 1500
		cfg.PhraseTrain.Epochs = 10
		cfg.ClassifierTrain.Epochs = 30
		cfg.EnsembleSize = 1
		g := core.New(cfg)
		g.PretrainEncoder(corpus.PretrainTweets(150, 5))
		train := corpus.Generate(corpus.StreamConfig{
			Name: "train", NumTweets: 250, NumTopics: 2,
			PerTopicEntities: [4]int{10, 8, 6, 6},
			ZipfExponent:     1.1, TypoRate: 0.02, LowercaseRate: 0.3,
			NonEntityRate: 0.3, AmbiguousRate: 0.1, UninformativeRate: 0.1,
			Ambiguity: true, Streaming: false, Seed: 6,
		})
		g.FineTuneLocal(train.Sentences)
		g.TrainGlobal(train.Sentences)
		fleetG = g
	})
	return fleetG
}

// streamBodies renders a deterministic synthetic stream as /annotate
// request payloads, several tweets per request.
func streamBodies(n, perReq int) []string {
	test := corpus.Generate(corpus.StreamConfig{
		Name: "fleettest", NumTweets: n, NumTopics: 2,
		PerTopicEntities: [4]int{8, 6, 5, 5},
		ZipfExponent:     1.1, TypoRate: 0.05, LowercaseRate: 0.3,
		NonEntityRate: 0.3, AmbiguousRate: 0.1, UninformativeRate: 0.15,
		Ambiguity: true, Streaming: true, Seed: 17,
	})
	var raws []string
	for _, s := range test.Sentences {
		var buf bytes.Buffer
		for i, tok := range s.Tokens {
			if i > 0 {
				buf.WriteByte(' ')
			}
			buf.WriteString(tok)
		}
		raws = append(raws, buf.String())
	}
	var bodies []string
	for start := 0; start < len(raws); start += perReq {
		end := start + perReq
		if end > len(raws) {
			end = len(raws)
		}
		b, _ := json.Marshal(map[string][]string{"tweets": raws[start:end]})
		bodies = append(bodies, string(b))
	}
	return bodies
}

func postBody(t *testing.T, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// httptestServer serves a handler on loopback for the test's lifetime.
func httptestServer(t *testing.T, h http.Handler) string {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL
}

// runSingle feeds the bodies to a fresh single-process server and
// returns the per-request responses plus the final /candidates and
// /entities bodies.
func runSingle(t *testing.T, g *core.Globalizer, bodies []string) (resps []string, cands, ents string) {
	t.Helper()
	srv := server.New(g)
	defer srv.Close()
	hs := httptestServer(t, srv.Handler())
	for _, body := range bodies {
		status, resp, _ := postBody(t, hs+"/annotate", body)
		if status != http.StatusOK {
			t.Fatalf("single-process annotate: status %d: %s", status, resp)
		}
		resps = append(resps, resp)
	}
	return resps, getBody(t, hs+"/candidates"), getBody(t, hs+"/entities")
}

// TestFleetIdentity is the tentpole contract: for every shard count,
// the fleet's responses on the same request sequence are byte-identical
// to the single-process server's — per-request /annotate bodies, the
// final /candidates body, and the final whole-stream /entities body.
func TestFleetIdentity(t *testing.T) {
	g := trainedPipeline(t)
	bodies := streamBodies(24, 3)
	want, wantCands, wantEnts := runSingle(t, g, bodies)

	for _, k := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			h, err := NewHarness(g, k, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			for i, body := range bodies {
				status, resp, _ := postBody(t, h.URL()+"/annotate", body)
				if status != http.StatusOK {
					t.Fatalf("request %d: status %d: %s", i, status, resp)
				}
				if resp != want[i] {
					t.Fatalf("request %d: fleet response differs from single-process\nfleet:  %s\nsingle: %s", i, resp, want[i])
				}
			}
			if cands := getBody(t, h.URL()+"/candidates"); cands != wantCands {
				t.Fatalf("candidates differ\nfleet:  %s\nsingle: %s", cands, wantCands)
			}
			if ents := getBody(t, h.URL()+"/entities"); ents != wantEnts {
				t.Fatalf("entities differ\nfleet:  %s\nsingle: %s", ents, wantEnts)
			}
		})
	}
}

// fleetAnnotateResponse decodes fleet/server /annotate bodies in tests.
type fleetAnnotateResponse struct {
	Sentences  []server.SentenceJSON `json:"sentences"`
	StreamSize int                   `json:"stream_size"`
	Candidates int                   `json:"candidates"`
}

// TestFleetConcurrentIdentity hammers a 3-shard fleet with concurrent
// clients, then verifies the fleet's final state equals a
// single-process engine replaying the accepted stream in the order the
// router ingested it. The final entity map is a pure function of
// sentence insertion order, so the replay reconstructs it exactly.
// Under -race this doubles as the router/shard concurrency hammer.
func TestFleetConcurrentIdentity(t *testing.T) {
	g := trainedPipeline(t)
	h, err := NewHarness(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	bodies := streamBodies(24, 2)
	const clients = 6
	perClient := len(bodies) / clients
	var wg sync.WaitGroup
	responses := make([][]string, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, body := range bodies[c*perClient : (c+1)*perClient] {
				resp, err := http.Post(h.URL()+"/annotate", "application/json",
					bytes.NewReader([]byte(body)))
				if err != nil {
					errs[c] = err
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
					return
				}
				responses[c] = append(responses[c], string(b))
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Tokens per ingested sentence, from the responses.
	tokens := map[types.SentenceKey][]string{}
	for _, rs := range responses {
		for _, r := range rs {
			var ar fleetAnnotateResponse
			if err := json.Unmarshal([]byte(r), &ar); err != nil {
				t.Fatal(err)
			}
			for _, s := range ar.Sentences {
				tokens[types.SentenceKey{TweetID: s.TweetID, SentID: s.SentID}] = s.Tokens
			}
		}
	}

	// The fleet's accepted insertion order.
	var ents []server.SentenceEntitiesJSON
	if err := json.Unmarshal([]byte(getBody(t, h.URL()+"/entities")), &ents); err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(tokens) {
		t.Fatalf("stream has %d sentences, responses covered %d", len(ents), len(tokens))
	}

	// Replay through a single-process engine and compare annotations.
	var replay []*types.Sentence
	for _, se := range ents {
		key := types.SentenceKey{TweetID: se.TweetID, SentID: se.SentID}
		toks, ok := tokens[key]
		if !ok {
			t.Fatalf("no tokens recorded for %v", key)
		}
		replay = append(replay, &types.Sentence{TweetID: se.TweetID, SentID: se.SentID, Tokens: toks})
	}
	g.Reset()
	final := g.ProcessBatchEntities(replay, core.ModeFull)
	for i, sent := range replay {
		var wantEnts []server.EntityJSON
		for _, e := range final[sent.Key()] {
			wantEnts = append(wantEnts, server.EntityJSON{
				Start:   e.Start,
				End:     e.End,
				Type:    e.Type.String(),
				Surface: sent.SurfaceAt(e.Span),
			})
		}
		got := ents[i].Entities
		if len(wantEnts) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, wantEnts) {
			t.Fatalf("sentence %v: fleet %+v, replay %+v", sent.Key(), got, wantEnts)
		}
	}
}

// TestFleetPartialDegradation saturates one shard and verifies the
// router propagates 503 + Retry-After without stalling the healthy
// shards, queues the missed commits, and recovers to byte-identical
// state once the shard readmits traffic.
func TestFleetPartialDegradation(t *testing.T) {
	g := trainedPipeline(t)
	bodies := streamBodies(10, 2)

	h, err := NewHarness(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Healthy warm-up.
	for _, body := range bodies[:2] {
		if status, resp, _ := postBody(t, h.URL()+"/annotate", body); status != http.StatusOK {
			t.Fatalf("warm-up: status %d: %s", status, resp)
		}
	}

	// Saturate shard 1: its admission gate rejects tag and commit RPCs.
	h.Shards[1].SetAdmission(0)
	for i, body := range bodies[2:4] {
		status, resp, hdr := postBody(t, h.URL()+"/annotate", body)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("degraded request %d: status %d (want 503): %s", i, status, resp)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("degraded request %d: missing Retry-After", i)
		}
	}

	// The router's statusz shows the backlog; the shard is reachable
	// (statusz is not admission-gated) and its replica is behind.
	var st RouterStatuszResponse
	if err := json.Unmarshal([]byte(getBody(t, h.URL()+"/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("statusz shards = %d", len(st.Shards))
	}
	if st.Shards[1].Pending != 2 {
		t.Fatalf("shard 1 pending = %d (want 2)", st.Shards[1].Pending)
	}
	if st.Shards[0].Pending != 0 || st.Shards[2].Pending != 0 {
		t.Fatalf("healthy shards have pending commits: %d, %d",
			st.Shards[0].Pending, st.Shards[2].Pending)
	}
	if st.Shards[1].Status.Seq+2 != st.Shards[0].Status.Seq {
		t.Fatalf("shard 1 seq = %d, shard 0 seq = %d (want 2 behind)",
			st.Shards[1].Status.Seq, st.Shards[0].Status.Seq)
	}

	// Readmit; the next cycle drains the backlog and answers normally.
	h.Shards[1].SetAdmission(4)
	for _, body := range bodies[4:] {
		if status, resp, _ := postBody(t, h.URL()+"/annotate", body); status != http.StatusOK {
			t.Fatalf("post-recovery: status %d: %s", status, resp)
		}
	}
	cands := getBody(t, h.URL()+"/candidates")
	ents := getBody(t, h.URL()+"/entities")

	// Every POST was ingested (tagging failed over, commits queued), so
	// the recovered fleet must byte-match a single-process server fed
	// the same sequence.
	_, wantCands, wantEnts := runSingle(t, g, bodies)
	if cands != wantCands {
		t.Fatalf("candidates after recovery differ\nfleet:  %s\nsingle: %s", cands, wantCands)
	}
	if ents != wantEnts {
		t.Fatalf("entities after recovery differ\nfleet:  %s\nsingle: %s", ents, wantEnts)
	}
}

// TestFleetStatusz checks the router surfaces each shard's resolved
// settings and health, the flag-parity half of the fleet contract.
func TestFleetStatusz(t *testing.T) {
	g := trainedPipeline(t)
	h, err := NewHarness(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if status, resp, _ := postBody(t, h.URL()+"/annotate", `{"tweets":["hello world"]}`); status != http.StatusOK {
		t.Fatalf("annotate: status %d: %s", status, resp)
	}

	var st RouterStatuszResponse
	if err := json.Unmarshal([]byte(getBody(t, h.URL()+"/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "router" || st.Cycles != 1 || st.Seq != 1 {
		t.Fatalf("router statusz: %+v", st)
	}
	for i, sh := range st.Shards {
		if !sh.Healthy {
			t.Fatalf("shard %d unhealthy: %s", i, sh.Error)
		}
		if sh.Status.Index != i || sh.Status.Count != 2 {
			t.Fatalf("shard %d ownership: %+v", i, sh.Status)
		}
		if sh.Status.Seq != 1 || sh.Status.StreamSize != 1 {
			t.Fatalf("shard %d replica state: %+v", i, sh.Status)
		}
		if sh.Status.Precision == "" || sh.Status.SIMD == "" {
			t.Fatalf("shard %d missing resolved settings: %+v", i, sh.Status)
		}
		if sh.Status.Settings["harness"] != "true" {
			t.Fatalf("shard %d settings not surfaced: %+v", i, sh.Status.Settings)
		}
	}
}

// TestFleetReset checks /reset clears the whole fleet and tweet IDs
// restart, matching single-process semantics.
func TestFleetReset(t *testing.T) {
	g := trainedPipeline(t)
	h, err := NewHarness(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	postBody(t, h.URL()+"/annotate", `{"tweets":["hello world"]}`)
	resp, err := http.Post(h.URL()+"/reset", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reset: status %d", resp.StatusCode)
	}
	status, body, _ := postBody(t, h.URL()+"/annotate", `{"tweets":["hello again"]}`)
	if status != http.StatusOK {
		t.Fatalf("post-reset annotate: status %d", status)
	}
	var ar fleetAnnotateResponse
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.StreamSize != 1 || len(ar.Sentences) != 1 || ar.Sentences[0].TweetID != 0 {
		t.Fatalf("post-reset state: %+v", ar)
	}
}

// TestMergeEntityGroups pins the k-way surface-group merge on a
// hand-built case: groups interleave by ascending surface and stay
// contiguous.
func TestMergeEntityGroups(t *testing.T) {
	e := func(surf string, start int) WireEntity {
		return WireEntity{Start: start, End: start + 1, Type: types.Person, Surface: surf}
	}
	parts := [][]WireEntity{
		{e("alpha", 0), e("alpha", 3), e("delta", 5)},
		{},
		{e("bravo", 1), e("echo", 7)},
	}
	got := mergeEntityGroups(parts)
	want := []WireEntity{
		e("alpha", 0), e("alpha", 3), e("bravo", 1), e("delta", 5), e("echo", 7),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
	if out := mergeEntityGroups([][]WireEntity{{}, {}}); len(out) != 0 {
		t.Fatalf("empty merge = %+v", out)
	}
}

// tokenizerSmoke keeps the tokenizer import honest: bodies built by
// streamBodies round-trip through the same tokenizer the router uses.
func TestStreamBodiesTokenize(t *testing.T) {
	bodies := streamBodies(4, 2)
	if len(bodies) != 2 {
		t.Fatalf("bodies = %d", len(bodies))
	}
	var req struct {
		Tweets []string `json:"tweets"`
	}
	if err := json.Unmarshal([]byte(bodies[0]), &req); err != nil {
		t.Fatal(err)
	}
	for _, raw := range req.Tweets {
		if sents := tokenizer.SplitSentences(tokenizer.Tokenize(raw)); len(sents) == 0 {
			t.Fatalf("tweet %q tokenized to nothing", raw)
		}
	}
}

// TestWireCodecRoundTrip pushes the hand-rolled binary payloads for
// the per-cycle RPC types through the same gob envelope the transport
// uses, covering the shapes that matter: nil embedding matrices, empty
// token and entity lists, non-ASCII tokens and exact float64 bits
// (negative zero, infinities, subnormals).
func TestWireCodecRoundTrip(t *testing.T) {
	creq := &CommitRequest{
		Seq: 7,
		Sentences: []WireSentence{
			{TweetID: 3, SentID: 0, Tokens: []string{"héllo", "wörld", ""}},
			{TweetID: 4, SentID: 1},
		},
		Tagged: []WireTag{
			{
				Tokens:   []string{"héllo", "wörld"},
				Entities: []types.Entity{{Span: types.Span{Start: 0, End: 2}, Type: types.Location}},
				Emb: &nn.Matrix{Rows: 2, Cols: 3, Data: []float64{
					0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), 5e-324, -math.Pi,
				}},
			},
			{},
		},
		Mode: core.ModeFull,
	}
	values := []struct {
		in, out any
	}{
		{creq, &CommitRequest{}},
		{&TagRequest{Seq: 2, Sentences: creq.Sentences}, &TagRequest{}},
		{&TagResponse{Seq: 2, Results: creq.Tagged, BusySeconds: 0.25}, &TagResponse{}},
		{&CommitResponse{
			Seq: 7,
			Entities: []SentenceEntities{
				{TweetID: 3, SentID: 0, Entities: []WireEntity{
					{Start: 0, End: 2, Type: types.Location, Surface: "héllo wörld"},
				}},
				{TweetID: 4, SentID: 1},
			},
			StreamSize: 12, Candidates: 5, BusySeconds: 1.5,
		}, &CommitResponse{}},
	}
	for _, v := range values {
		buf, err := encodeGob(v.in)
		if err != nil {
			t.Fatalf("%T: %v", v.in, err)
		}
		if err := decodeGob(bytes.NewReader(buf.Bytes()), v.out); err != nil {
			t.Fatalf("%T: decode: %v", v.in, err)
		}
		if !reflect.DeepEqual(v.in, v.out) {
			t.Fatalf("%T round-trip:\n in: %+v\nout: %+v", v.in, v.in, v.out)
		}
	}

	// Every truncation of the raw payload must decode to an error, and
	// so must trailing junk — never a panic or a silent partial value.
	raw, err := creq.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		if err := new(CommitRequest).GobDecode(raw[:n]); err == nil {
			t.Fatalf("truncation at %d bytes decoded cleanly", n)
		}
	}
	if err := new(CommitRequest).GobDecode(append(append([]byte{}, raw...), 0)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}
