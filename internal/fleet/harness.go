package fleet

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"path/filepath"

	"nerglobalizer/internal/checkpoint"
	"nerglobalizer/internal/core"
	"nerglobalizer/internal/durable"
)

// Harness is an in-process fleet: a router plus K shard replicas of
// one trained engine, served over loopback httptest listeners. It is
// what the identity tests and cmd/benchpipeline's fleet section run
// against — real HTTP, real gob encoding, no separate processes.
type Harness struct {
	Router *Router
	Shards []*Shard

	servers   []*httptest.Server
	routerSrv *httptest.Server
}

// NewHarness replicates the trained engine K times via a checkpoint
// round-trip (the same clone path a real fleet uses), assigns shard
// ownership 0..K-1, and wires a router over loopback HTTP servers.
// configure, if non-nil, runs on every replica before serving — the
// hook for applying homogeneous fleet settings (workers, precision,
// inference batching).
func NewHarness(g *core.Globalizer, k int, configure func(*core.Globalizer)) (*Harness, error) {
	if k < 1 {
		return nil, fmt.Errorf("fleet: harness needs at least one shard, got %d", k)
	}
	var buf bytes.Buffer
	if err := checkpoint.Save(&buf, g); err != nil {
		return nil, fmt.Errorf("fleet: harness checkpoint: %w", err)
	}
	h := &Harness{}
	clients := make([]*ShardClient, k)
	for i := 0; i < k; i++ {
		replica, err := checkpoint.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("fleet: harness replica %d: %w", i, err)
		}
		if configure != nil {
			configure(replica)
		}
		shard, err := NewShard(replica, i, k, map[string]string{"harness": "true"})
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("fleet: harness shard %d: %w", i, err)
		}
		srv := httptest.NewServer(shard.Handler())
		h.Shards = append(h.Shards, shard)
		h.servers = append(h.servers, srv)
		clients[i] = NewShardClient(i, srv.URL, 4)
	}
	h.Router = NewRouter(clients)
	h.routerSrv = httptest.NewServer(h.Router.Handler())
	return h, nil
}

// StartDurable turns on durability for the whole harness fleet: each
// shard persists under dataDir/shard-<i> and the router journals under
// dataDir/router. It blocks until every member has finished recovery —
// shards first (the router's re-drive needs them answering), then the
// router.
func (h *Harness) StartDurable(dataDir string, opts durable.Options) error {
	for i, shard := range h.Shards {
		if err := shard.StartDurable(filepath.Join(dataDir, fmt.Sprintf("shard-%d", i)), opts); err != nil {
			return err
		}
	}
	for i, shard := range h.Shards {
		if err := shard.WaitWarm(); err != nil {
			return fmt.Errorf("fleet: harness shard %d recovery: %w", i, err)
		}
	}
	if err := h.Router.StartDurable(filepath.Join(dataDir, "router"), opts); err != nil {
		return err
	}
	if err := h.Router.WaitWarm(); err != nil {
		return fmt.Errorf("fleet: harness router recovery: %w", err)
	}
	return nil
}

// URL returns the router's base URL.
func (h *Harness) URL() string { return h.routerSrv.URL }

// Close tears the fleet down: router first (stops the scheduler and
// its shard connections), then the shard listeners and the shards'
// durability state.
func (h *Harness) Close() {
	if h.routerSrv != nil {
		h.routerSrv.Close()
	}
	if h.Router != nil {
		h.Router.Close()
	}
	for _, srv := range h.servers {
		srv.Close()
	}
	for _, s := range h.Shards {
		s.Close()
	}
}
