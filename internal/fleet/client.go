package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"nerglobalizer/internal/durable"
)

// defaultRPCTimeout bounds one shard RPC end to end. Commit RPCs do
// real inference work, so the bound is generous; the router's
// liveness comes from propagating failures, not from tight deadlines.
const defaultRPCTimeout = 30 * time.Second

// ShardUnavailableError reports a shard answering 503 (admission
// saturated). RetryAfter carries the shard's Retry-After hint in
// seconds so the router can pass it through to its own callers.
type ShardUnavailableError struct {
	Shard      int
	RetryAfter int
}

func (e *ShardUnavailableError) Error() string {
	return fmt.Sprintf("fleet: shard %d unavailable (retry after %ds)", e.Shard, e.RetryAfter)
}

// ShardConflictError reports a commit rejected by the shard's sequence
// gate — the replica and router disagree about stream history, which is
// not retryable.
type ShardConflictError struct {
	Shard  int
	Detail string
}

func (e *ShardConflictError) Error() string {
	return fmt.Sprintf("fleet: shard %d commit conflict: %s", e.Shard, e.Detail)
}

// ShardClient is the router's handle to one shard: a bounded
// connection pool plus typed wrappers over the shard RPCs.
type ShardClient struct {
	index   int
	baseURL string
	hc      *http.Client
	timeout time.Duration
}

// NewShardClient builds a client for the shard at baseURL (scheme and
// host, no trailing slash). The transport keeps at most maxConns
// connections to the shard — the fleet's only concurrency toward a
// shard is the router's own fan-out, so a small bound suffices and
// keeps a misbehaving shard from accumulating sockets.
func NewShardClient(index int, baseURL string, maxConns int) *ShardClient {
	if maxConns <= 0 {
		maxConns = 4
	}
	tr := &http.Transport{
		MaxConnsPerHost:     maxConns,
		MaxIdleConnsPerHost: maxConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &ShardClient{
		index:   index,
		baseURL: baseURL,
		hc:      &http.Client{Transport: tr},
		timeout: defaultRPCTimeout,
	}
}

// SetTimeout overrides the per-RPC deadline (tests use short ones).
func (c *ShardClient) SetTimeout(d time.Duration) { c.timeout = d }

// Index returns the shard index this client addresses.
func (c *ShardClient) Index() int { return c.index }

// BaseURL returns the shard's base URL.
func (c *ShardClient) BaseURL() string { return c.baseURL }

// post runs one gob POST RPC, decoding the reply into out.
func (c *ShardClient) post(path string, req, out any) error {
	body, err := encodeGob(req)
	if err != nil {
		return err
	}
	return c.postBytes(path, body.Bytes(), out)
}

// postBytes runs one gob POST RPC whose body the caller already
// encoded. The router uses it to encode a commit once and fan the same
// bytes out to every shard — serialization cost on the router stays
// constant as the fleet grows.
func (c *ShardClient) postBytes(path string, body []byte, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: shard %d: %w", c.index, err)
	}
	hr.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(hr)
	if err != nil {
		return fmt.Errorf("fleet: shard %d %s: %w", c.index, path, err)
	}
	defer resp.Body.Close()
	if err := c.checkStatus(path, resp); err != nil {
		return err
	}
	return decodeGob(resp.Body, out)
}

// get runs one gob GET RPC.
func (c *ShardClient) get(path string, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return fmt.Errorf("fleet: shard %d: %w", c.index, err)
	}
	resp, err := c.hc.Do(hr)
	if err != nil {
		return fmt.Errorf("fleet: shard %d %s: %w", c.index, path, err)
	}
	defer resp.Body.Close()
	if err := c.checkStatus(path, resp); err != nil {
		return err
	}
	return decodeGob(resp.Body, out)
}

// checkStatus maps shard HTTP errors to typed router errors.
func (c *ShardClient) checkStatus(path string, resp *http.Response) error {
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusServiceUnavailable:
		retry := shardRetryAfterSeconds
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			retry = v
		}
		io.Copy(io.Discard, resp.Body)
		return &ShardUnavailableError{Shard: c.index, RetryAfter: retry}
	case http.StatusConflict:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &ShardConflictError{Shard: c.index, Detail: string(bytes.TrimSpace(msg))}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: shard %d %s: status %d: %s",
			c.index, path, resp.StatusCode, bytes.TrimSpace(msg))
	}
}

// Tag runs Local NER for one batch slice on the shard.
func (c *ShardClient) Tag(req *TagRequest) (*TagResponse, error) {
	var out TagResponse
	if err := c.post("/shard/tag", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Commit applies one execution cycle to the shard's replica.
func (c *ShardClient) Commit(req *CommitRequest) (*CommitResponse, error) {
	var out CommitResponse
	if err := c.post("/shard/commit", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CommitEncoded is Commit with a pre-encoded request body, shared
// byte-for-byte across the fan-out.
func (c *ShardClient) CommitEncoded(body []byte) (*CommitResponse, error) {
	var out CommitResponse
	if err := c.postBytes("/shard/commit", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reset clears the shard's stream state.
func (c *ShardClient) Reset() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/shard/reset", nil)
	if err != nil {
		return fmt.Errorf("fleet: shard %d: %w", c.index, err)
	}
	resp, err := c.hc.Do(hr)
	if err != nil {
		return fmt.Errorf("fleet: shard %d /shard/reset: %w", c.index, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: shard %d reset: status %d", c.index, resp.StatusCode)
	}
	return nil
}

// Candidates fetches the shard's owned candidate clusters.
func (c *ShardClient) Candidates() ([]WireCandidate, error) {
	var out []WireCandidate
	if err := c.get("/shard/candidates", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Entities fetches the shard's owned stream annotations.
func (c *ShardClient) Entities() ([]SentenceEntities, error) {
	var out []SentenceEntities
	if err := c.get("/shard/entities", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Status fetches the shard's /statusz (JSON, not gob — it is also the
// human-facing endpoint).
func (c *ShardClient) Status() (ShardStatus, error) {
	var st ShardStatus
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/statusz", nil)
	if err != nil {
		return st, fmt.Errorf("fleet: shard %d: %w", c.index, err)
	}
	resp, err := c.hc.Do(hr)
	if err != nil {
		return st, fmt.Errorf("fleet: shard %d /statusz: %w", c.index, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("fleet: shard %d statusz: status %d", c.index, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("fleet: shard %d statusz: %w", c.index, err)
	}
	return st, nil
}

// Proof fetches the shard's inclusion-proof bundle for one tweet
// (JSON — proofs are the auditor-facing format). The second return is
// false when the shard does not know the tweet.
func (c *ShardClient) Proof(tweet int) (*durable.ProofBundle, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	url := fmt.Sprintf("%s/shard/proof?tweet=%d", c.baseURL, tweet)
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, fmt.Errorf("fleet: shard %d: %w", c.index, err)
	}
	resp, err := c.hc.Do(hr)
	if err != nil {
		return nil, false, fmt.Errorf("fleet: shard %d /shard/proof: %w", c.index, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, false, fmt.Errorf("fleet: shard %d proof: status %d: %s",
			c.index, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var b durable.ProofBundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		return nil, false, fmt.Errorf("fleet: shard %d proof: %w", c.index, err)
	}
	return &b, true, nil
}

// Close releases idle connections in the client's pool.
func (c *ShardClient) Close() {
	if tr, ok := c.hc.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}
