package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"nerglobalizer/internal/durable"
)

// TestFleetDurableRestartByteIdentical is the tentpole contract on the
// sharded topology: a K=2 fleet killed mid-stream and restarted from
// its data dirs continues the stream byte-identically to an
// uninterrupted single-process run — per-shard snapshots and WALs
// restore the replicas, the router journal restores the cycle cursor.
func TestFleetDurableRestartByteIdentical(t *testing.T) {
	g := trainedPipeline(t)
	bodies := streamBodies(16, 2)
	_, wantCands, wantEnts := runSingle(t, g, bodies)
	half := len(bodies) / 2

	dir := t.TempDir()
	opts := durable.Options{SnapshotEvery: 2, Fsync: durable.FsyncAlways}

	h1, err := NewHarness(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.StartDurable(dir, opts); err != nil {
		h1.Close()
		t.Fatal(err)
	}
	for i, body := range bodies[:half] {
		status, resp, _ := postBody(t, h1.URL()+"/annotate", body)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, resp)
		}
	}
	h1.Close()

	h2, err := NewHarness(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if err := h2.StartDurable(dir, opts); err != nil {
		t.Fatal(err)
	}
	for i, body := range bodies[half:] {
		status, resp, _ := postBody(t, h2.URL()+"/annotate", body)
		if status != http.StatusOK {
			t.Fatalf("resumed request %d: status %d: %s", i, status, resp)
		}
	}
	if ents := getBody(t, h2.URL()+"/entities"); ents != wantEnts {
		t.Fatalf("entities diverged after fleet restart\nfleet:  %s\nsingle: %s", ents, wantEnts)
	}
	if cands := getBody(t, h2.URL()+"/candidates"); cands != wantCands {
		t.Fatalf("candidates diverged after fleet restart\nfleet:  %s\nsingle: %s", cands, wantCands)
	}

	// Every shard proves its owned annotations for a pre-crash tweet on
	// its own chain.
	var bundles []*durable.ProofBundle
	if err := json.Unmarshal([]byte(getBody(t, h2.URL()+"/proof?tweet=0")), &bundles); err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("proof bundles = %d, want one per shard", len(bundles))
	}
	seen := map[int]bool{}
	for _, b := range bundles {
		if n, err := b.Verify(); err != nil {
			t.Fatalf("shard %d bundle: %v", b.Shard, err)
		} else if n == 0 {
			t.Fatalf("shard %d bundle proves nothing", b.Shard)
		}
		seen[b.Shard] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("bundles cover shards %v, want 0 and 1", seen)
	}

	// Reset is refused while durability is on — fleet-wide.
	status, _, _ := postBody(t, h2.URL()+"/reset", "")
	if status != http.StatusConflict {
		t.Fatalf("durable fleet reset status = %d, want 409", status)
	}
}

// TestFleetRedriveWipedShard loses one shard's entire data dir and
// restarts: the shard recovers cold at seq 0 and the router re-drives
// every journaled cycle into it (re-tagging is pure, the seq gate makes
// replay exactly-once), converging back to the identical stream.
func TestFleetRedriveWipedShard(t *testing.T) {
	g := trainedPipeline(t)
	bodies := streamBodies(8, 2)
	dir := t.TempDir()
	// No snapshots: the journal must retain everything a cold shard
	// needs.
	opts := durable.Options{SnapshotEvery: 1 << 20, Fsync: durable.FsyncAlways}

	h1, err := NewHarness(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.StartDurable(dir, opts); err != nil {
		h1.Close()
		t.Fatal(err)
	}
	for i, body := range bodies {
		status, resp, _ := postBody(t, h1.URL()+"/annotate", body)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, resp)
		}
	}
	want := getBody(t, h1.URL()+"/entities")
	cycles := h1.Router.Cycles()
	h1.Close()

	if err := os.RemoveAll(filepath.Join(dir, "shard-1")); err != nil {
		t.Fatal(err)
	}

	h2, err := NewHarness(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if err := h2.StartDurable(dir, opts); err != nil {
		t.Fatal(err)
	}
	if got := h2.Shards[1].Status().Seq; got != uint64(cycles) {
		t.Fatalf("re-driven shard at seq %d, want %d", got, cycles)
	}
	if got := getBody(t, h2.URL()+"/entities"); got != want {
		t.Fatalf("entities diverged after shard re-drive\nwant: %s\ngot:  %s", want, got)
	}
}

// TestFleetHealthzStates covers the replay-aware readiness contract on
// both fleet roles.
func TestFleetHealthzStates(t *testing.T) {
	g := trainedPipeline(t)
	h, err := NewHarness(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	check := func(name string, handler http.HandlerFunc, wantCode int, wantBody string) {
		t.Helper()
		rec := httptest.NewRecorder()
		handler(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != wantCode || rec.Body.String() != wantBody {
			t.Fatalf("%s healthz = %d %q, want %d %q", name, rec.Code, rec.Body.String(), wantCode, wantBody)
		}
	}
	sh, rt := h.Shards[0], h.Router
	check("shard warm", sh.handleHealthz, http.StatusOK, "ok\n")
	check("router warm", rt.handleHealthz, http.StatusOK, "ok\n")
	sh.replaying.Store(true)
	rt.replaying.Store(true)
	check("shard replaying", sh.handleHealthz, http.StatusServiceUnavailable, "{\"status\":\"replaying\"}\n")
	check("router replaying", rt.handleHealthz, http.StatusServiceUnavailable, "{\"status\":\"replaying\"}\n")
	sh.replaying.Store(false)
	rt.replaying.Store(false)
}
