package fleet

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/durable"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/obs"
	"nerglobalizer/internal/types"
)

// defaultShardAdmission bounds concurrently admitted mutating RPCs per
// shard. The router runs one cycle at a time, so the bound only bites
// when a shard falls behind or extra routers appear — then rejections
// surface as 503s the router can propagate instead of queue growth.
const defaultShardAdmission = 4

// shardRetryAfterSeconds is the Retry-After hint on shard saturation.
const shardRetryAfterSeconds = 1

// Shard wraps one engine replica as the fleet's unit of scale-out: it
// owns the surfaces ctrie.OwnerShard assigns to its index and serves
// the tag/commit RPC pair the router drives cycles with. All engine
// execution is serialized by the shard mutex — the engine's stream
// state is single-writer by design.
type Shard struct {
	mu sync.Mutex
	g  *core.Globalizer
	// seq is the last committed cycle; commits must arrive in order.
	seq uint64
	// lastResp answers idempotent retries of the last committed cycle
	// (a commit can apply even when the router times out waiting).
	lastResp *CommitResponse

	index, count int
	settings     map[string]string

	// admit bounds concurrently admitted mutating RPCs.
	admitMu sync.Mutex
	admit   chan struct{}

	o atomic.Pointer[shardObs]

	// Durability (nil / zero unless StartDurable was called): the WAL +
	// snapshot manager and the shard's own Merkle chain over its owned
	// annotations (guarded by mu).
	dl         *durable.Log
	prov       *durable.Provenance
	replaying  atomic.Bool
	broken     atomic.Bool
	replayDone chan struct{}
	recoverErr error
}

// shardObs is the shard-side metric set.
type shardObs struct {
	reg *obs.Registry

	requests      *obs.Counter   // ner_fleet_shard_requests_total
	rejected      *obs.Counter   // ner_fleet_shard_rejected_total
	tagSeconds    *obs.Histogram // ner_fleet_shard_tag_seconds
	commitSeconds *obs.Histogram // ner_fleet_shard_commit_seconds
}

func newShardObs(reg *obs.Registry) *shardObs {
	if reg == nil {
		return nil
	}
	return &shardObs{
		reg: reg,
		requests: reg.Counter("ner_fleet_shard_requests_total",
			"Fleet RPCs served by this shard across all endpoints."),
		rejected: reg.Counter("ner_fleet_shard_rejected_total",
			"Fleet RPCs rejected with 503 because shard admission was saturated."),
		tagSeconds: reg.Histogram("ner_fleet_shard_tag_seconds",
			"Wall-clock of tag RPCs (Local NER over one batch slice).", nil),
		commitSeconds: reg.Histogram("ner_fleet_shard_commit_seconds",
			"Wall-clock of commit RPCs (stream replay + owned global phase).", nil),
	}
}

// NewShard wraps an engine as shard index of count, restricting its
// global phase to owned surfaces (which resets stream state). settings
// is the resolved serving configuration the shard reports through
// /statusz, so a fleet operator can verify homogeneity; nil is fine.
func NewShard(g *core.Globalizer, index, count int, settings map[string]string) (*Shard, error) {
	if err := g.SetShardOwnership(index, count); err != nil {
		return nil, err
	}
	if settings == nil {
		settings = map[string]string{}
	}
	return &Shard{
		g:        g,
		index:    index,
		count:    count,
		settings: settings,
		admit:    make(chan struct{}, defaultShardAdmission),
	}, nil
}

// SetObserver attaches a metrics registry to the shard and its engine.
func (s *Shard) SetObserver(reg *obs.Registry) {
	s.o.Store(newShardObs(reg))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g.SetObserver(reg)
}

// SetAdmission re-bounds concurrently admitted mutating RPCs. Zero
// rejects everything — the lever the partial-degradation tests pull to
// saturate one shard deterministically.
func (s *Shard) SetAdmission(n int) {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	s.admit = make(chan struct{}, n)
}

// Engine exposes the wrapped engine for in-process harness wiring
// (workers, precision, caching). Serving traffic must be stopped while
// reconfiguring.
func (s *Shard) Engine() *core.Globalizer { return s.g }

// Ownership returns the shard's (index, count).
func (s *Shard) Ownership() (int, int) { return s.index, s.count }

// tryAdmit reserves an admission slot, answering 503 when saturated.
func (s *Shard) tryAdmit(w http.ResponseWriter) (release func(), ok bool) {
	s.admitMu.Lock()
	admit := s.admit
	s.admitMu.Unlock()
	select {
	case admit <- struct{}{}:
		return func() { <-admit }, true
	default:
		if so := s.o.Load(); so != nil {
			so.rejected.Inc()
		}
		w.Header().Set("Retry-After", strconv.Itoa(shardRetryAfterSeconds))
		http.Error(w, "shard saturated", http.StatusServiceUnavailable)
		return nil, false
	}
}

// Handler returns the shard's routed HTTP handler.
func (s *Shard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/shard/tag", s.counted(s.handleTag))
	mux.HandleFunc("/shard/commit", s.counted(s.handleCommit))
	mux.HandleFunc("/shard/reset", s.counted(s.handleReset))
	mux.HandleFunc("/shard/candidates", s.counted(s.handleCandidates))
	mux.HandleFunc("/shard/entities", s.counted(s.handleEntities))
	mux.HandleFunc("/shard/proof", s.counted(s.handleProof))
	mux.HandleFunc("/statusz", s.counted(s.handleStatusz))
	mux.HandleFunc("/metrics", s.counted(s.handleMetrics))
	mux.HandleFunc("/healthz", s.counted(s.handleHealthz))
	return mux
}

func (s *Shard) counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if so := s.o.Load(); so != nil {
			so.requests.Inc()
		}
		h(w, r)
	}
}

// handleTag runs Local NER over a batch slice. Tagging is pure — it
// reads the trained model, never the stream — so any shard can tag any
// slice and the router is free to fail a slice over to a healthy peer.
func (s *Shard) handleTag(w http.ResponseWriter, r *http.Request) {
	// The busy clock starts before the body decode: deserialization is
	// shard-side work in a real fleet, and the router subtracts
	// BusySeconds from its own wall-clock when accounting the cycle
	// critical path.
	t0 := time.Now()
	if s.unready(w) {
		return
	}
	var req TagRequest
	if !readGobRequest(w, r, &req) {
		return
	}
	release, ok := s.tryAdmit(w)
	if !ok {
		return
	}
	defer release()
	s.mu.Lock()
	results := s.g.TagBatch(ToSentences(req.Sentences))
	s.mu.Unlock()
	busy := time.Since(t0).Seconds()
	if so := s.o.Load(); so != nil {
		so.tagSeconds.Observe(busy)
	}
	writeGob(w, &TagResponse{Seq: req.Seq, Results: ToWireTags(results), BusySeconds: busy})
}

// handleCommit applies one cycle to the replicated stream. The Seq
// gate keeps replicas exact under router retries: in-order commits
// apply, a replay of the last applied commit answers from cache
// (idempotency — the router may time out after the shard already
// applied), and anything else is a 409 the router treats as
// desynchronization.
func (s *Shard) handleCommit(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if s.unready(w) {
		return
	}
	var req CommitRequest
	if !readGobRequest(w, r, &req) {
		return
	}
	release, ok := s.tryAdmit(w)
	if !ok {
		return
	}
	defer release()
	s.mu.Lock()
	if req.Seq == s.seq && s.lastResp != nil {
		resp := s.lastResp
		s.mu.Unlock()
		writeGob(w, resp)
		return
	}
	if req.Seq != s.seq+1 {
		have := s.seq
		s.mu.Unlock()
		http.Error(w, "commit out of order: have "+strconv.FormatUint(have, 10)+
			", got "+strconv.FormatUint(req.Seq, 10), http.StatusConflict)
		return
	}
	batch := ToSentences(req.Sentences)
	s.g.ProcessTagged(batch, ToResults(req.Tagged), req.Mode)
	resp := &CommitResponse{
		Seq:        req.Seq,
		Entities:   make([]SentenceEntities, len(batch)),
		StreamSize: s.g.TweetBase().Len(),
		Candidates: s.g.CandidateBase().Len(),
	}
	for i, sent := range batch {
		resp.Entities[i] = s.ownedEntities(sent.Key())
	}
	// Ack-after-durable: the WAL append is issued under the lock and its
	// durability wait happens after release — the response still never
	// outruns the shard's disk, but under fsync=group the next cycle's
	// tag RPC can run on the engine while this cycle's flush completes.
	var snap *durable.Snapshot
	var wait func() error
	if s.dl != nil {
		var err error
		snap, wait, err = s.durableCommit(&req, resp)
		if err != nil {
			s.seq = req.Seq
			s.lastResp = resp
			s.mu.Unlock()
			http.Error(w, "durability failure: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	resp.BusySeconds = time.Since(t0).Seconds()
	s.seq = req.Seq
	s.lastResp = resp
	s.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			s.broken.Store(true)
			http.Error(w, "durability failure: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if so := s.o.Load(); so != nil {
		so.commitSeconds.Observe(resp.BusySeconds)
	}
	writeGob(w, resp)
	if snap != nil {
		s.dl.SubmitSnapshot(snap, snap.Seq)
	}
}

func (s *Shard) handleReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// A reset would fork the replica away from its WAL; durable shards
	// reset by wiping the data dir and restarting.
	if s.dl != nil {
		http.Error(w, "reset is not supported with -data-dir; wipe the data dir and restart", http.StatusConflict)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g.Reset()
	s.seq = 0
	s.lastResp = nil
	w.WriteHeader(http.StatusOK)
}

// WireCandidate is one candidate cluster in a shard's fan-in reply,
// in the engine's sorted-surface order.
type WireCandidate struct {
	Surface    string
	ClusterID  int
	Type       types.EntityType
	Mentions   int
	Confidence float64
}

func (s *Shard) handleCandidates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	out := []WireCandidate{}
	for _, c := range s.g.CandidateBase().All() {
		out = append(out, WireCandidate{
			Surface:    c.Surface,
			ClusterID:  c.ClusterID,
			Type:       c.Type,
			Mentions:   c.MentionCount(),
			Confidence: c.Confidence,
		})
	}
	s.mu.Unlock()
	writeGob(w, out)
}

// ownedEntities renders one sentence's verified owned mentions for the
// wire: the typed entries of the record's FinalMentions, carrying the
// canonical (trie) surface. That surface is what rebuildFinal sorts
// sentence mentions by, so shipping it — rather than the sentence
// text — lets the router's k-way group merge reproduce the
// single-process ordering exactly.
func (s *Shard) ownedEntities(key types.SentenceKey) SentenceEntities {
	se := SentenceEntities{TweetID: key.TweetID, SentID: key.SentID, Entities: []WireEntity{}}
	rec := s.g.TweetBase().Get(key)
	if rec == nil {
		return se
	}
	for _, m := range rec.FinalMentions {
		if m.Type == types.None {
			continue
		}
		se.Entities = append(se.Entities, WireEntity{
			Start:   m.Span.Start,
			End:     m.Span.End,
			Type:    m.Type,
			Surface: m.Surface,
		})
	}
	return se
}

// handleEntities returns the shard's owned annotations for the whole
// stream in insertion order — the fan-in half of the router's
// /entities endpoint.
func (s *Shard) handleEntities(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	tb := s.g.TweetBase()
	out := make([]SentenceEntities, 0, tb.Len())
	for _, key := range tb.Keys() {
		out = append(out, s.ownedEntities(key))
	}
	s.mu.Unlock()
	writeGob(w, out)
}

// Status snapshots the shard's resolved configuration and replica
// state.
func (s *Shard) Status() ShardStatus {
	s.mu.Lock()
	st := ShardStatus{
		Index:      s.index,
		Count:      s.count,
		Seq:        s.seq,
		StreamSize: s.g.TweetBase().Len(),
		Candidates: s.g.CandidateBase().Len(),
		Precision:  s.g.Precision().String(),
		SIMD:       nn.ActiveSIMD().String(),
		I8Kernel:   nn.I8KernelMode(),
		Settings:   s.settings,
	}
	s.mu.Unlock()
	if s.dl != nil {
		d := s.dl.Status()
		st.Durability = &d
	}
	return st
}

func (s *Shard) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Status())
}

func (s *Shard) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	var reg *obs.Registry
	if so := s.o.Load(); so != nil {
		reg = so.reg
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}
