// Package fleet implements sharded scale-out of the NER Globalizer
// serving path: a stateless front router that owns tokenization and
// deterministic surface-form routing, fanning execution cycles out to
// K engine shards over HTTP and merging their partial annotations back
// into request order.
//
// The decomposition follows the engine-level ownership contract
// (core.SetShardOwnership): every shard replicates the full stream —
// trie scans resolve overlaps against the whole trie, so mention
// extraction must see every sentence — but runs the expensive
// per-surface Global NER steps (embedding, candidate clustering,
// classification) only for the surface forms it owns under
// ctrie.OwnerShard. Because those steps are pure functions of each
// surface's own mention pool, the union of the shards' outputs is
// byte-identical to a single-process run at any shard count.
//
// Tagging is partitioned too: per-sentence tag results are
// byte-identical at any batch composition (the localner batching
// contract), so the router has shard i tag the i-th contiguous slice
// of each cycle's batch and ships the results to every shard, which
// replays them with ProcessTagged. Each cycle therefore costs one
// tag RPC and one commit RPC per shard, gob-framed around a fixed-width
// binary payload (see codec.go) so per-RPC serialization stays cheap.
package fleet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"

	"nerglobalizer/internal/core"
	"nerglobalizer/internal/durable"
	"nerglobalizer/internal/localner"
	"nerglobalizer/internal/nn"
	"nerglobalizer/internal/types"
)

// shardMaxBodyBytes caps shard RPC bodies. Commit payloads carry the
// batch's token embeddings (float64 matrices), so the bound is far
// above the router's public 1 MB JSON cap.
const shardMaxBodyBytes = 64 << 20

// WireSentence is one tweet sentence on the wire: identity plus the
// tokenizer's output. Gold annotations never cross the wire — serving
// traffic has none.
type WireSentence struct {
	TweetID int
	SentID  int
	Tokens  []string
}

// Sentence materializes the wire form.
func (w WireSentence) Sentence() *types.Sentence {
	return &types.Sentence{TweetID: w.TweetID, SentID: w.SentID, Tokens: w.Tokens}
}

// ToWireSentences converts a batch for shipping.
func ToWireSentences(batch []*types.Sentence) []WireSentence {
	out := make([]WireSentence, len(batch))
	for i, s := range batch {
		out[i] = WireSentence{TweetID: s.TweetID, SentID: s.SentID, Tokens: s.Tokens}
	}
	return out
}

// ToSentences materializes a shipped batch.
func ToSentences(ws []WireSentence) []*types.Sentence {
	out := make([]*types.Sentence, len(ws))
	for i, w := range ws {
		out[i] = w.Sentence()
	}
	return out
}

// WireTag is one sentence's Local NER result on the wire: exactly the
// fields the stream-state replay (applyTagged) consumes. Tokens are
// the tagger's view — possibly truncated to the encoder's MaxLen, and
// the basis of entity spans — so they ship verbatim rather than being
// re-derived from the sentence. Embeddings ship as exact float64: the
// global phase reads them bit-for-bit, and identity across the fleet
// depends on it.
type WireTag struct {
	Tokens   []string
	Entities []types.Entity
	Emb      *nn.Matrix
}

// ToWireTags converts tag results for shipping.
func ToWireTags(results []*localner.Result) []WireTag {
	out := make([]WireTag, len(results))
	for i, r := range results {
		out[i] = WireTag{Tokens: r.Tokens, Entities: r.Entities, Emb: r.Embeddings}
	}
	return out
}

// ToResults materializes shipped tag results for ProcessTagged. BIO
// labels intentionally stay off the wire: the replay path never reads
// them.
func ToResults(tags []WireTag) []*localner.Result {
	out := make([]*localner.Result, len(tags))
	for i, t := range tags {
		out[i] = &localner.Result{Tokens: t.Tokens, Entities: t.Entities, Embeddings: t.Emb}
	}
	return out
}

// TagRequest asks a shard to tag one contiguous slice of a cycle's
// batch. Tagging is pure, so Seq is advisory (observability only).
type TagRequest struct {
	Seq       uint64
	Sentences []WireSentence
}

// TagResponse returns the slice's tag results, index-aligned.
// BusySeconds is the shard's own wall-clock for serving the RPC
// (request decode through inference); the router uses it to separate
// shard work from router work when it accounts a cycle's distributed
// critical path.
type TagResponse struct {
	Seq         uint64
	Results     []WireTag
	BusySeconds float64
}

// CommitRequest applies one execution cycle to a shard's replicated
// stream: the full batch with its full tag results, in batch order.
// Commits must apply in Seq order (1, 2, 3, ...) — the shard rejects
// gaps, which is how a router-side retry after a partial failure stays
// exact instead of silently desynchronizing the replica.
type CommitRequest struct {
	Seq       uint64
	Sentences []WireSentence
	Tagged    []WireTag
	Mode      core.Mode
}

// WireEntity is one owned entity in a commit response, carrying the
// canonical surface form the router merges on.
type WireEntity struct {
	Start   int
	End     int
	Type    types.EntityType
	Surface string
}

// SentenceEntities is one batch sentence's owned annotations,
// surface-grouped in ascending canonical-surface order — the order the
// engine's FinalMentions contract guarantees, which makes the router's
// cross-shard merge a linear group interleave.
type SentenceEntities struct {
	TweetID  int
	SentID   int
	Entities []WireEntity
}

// CommitResponse returns the cycle's owned annotations for the batch
// (index-aligned with the request's Sentences), plus replica state for
// cross-checking and response rendering.
type CommitResponse struct {
	Seq         uint64
	Entities    []SentenceEntities
	StreamSize  int
	Candidates  int
	BusySeconds float64
}

// ShardStatus is a shard's resolved configuration and health, surfaced
// through the router's /statusz so an operator can verify the fleet is
// homogeneous (mixed precision or SIMD tiers across shards would break
// bit-identical tag shipping).
type ShardStatus struct {
	Index      int               `json:"index"`
	Count      int               `json:"count"`
	Seq        uint64            `json:"seq"`
	StreamSize int               `json:"stream_size"`
	Candidates int               `json:"candidates"`
	Precision  string            `json:"precision"`
	SIMD       string            `json:"simd"`
	I8Kernel   string            `json:"i8_kernel"`
	Settings   map[string]string `json:"settings"`
	// Durability summarizes the shard's commit path; nil without
	// -data-dir.
	Durability *durable.Status `json:"durability,omitempty"`
}

// encodeGob writes v as a gob stream.
func encodeGob(v any) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("fleet: encode: %w", err)
	}
	return &buf, nil
}

// decodeGob reads one gob value from r.
func decodeGob(r io.Reader, v any) error {
	if err := gob.NewDecoder(r).Decode(v); err != nil {
		return fmt.Errorf("fleet: decode: %w", err)
	}
	return nil
}

// readGobRequest bounds and decodes a shard RPC body.
func readGobRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, shardMaxBodyBytes)
	if err := decodeGob(r.Body, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// writeGob answers a shard RPC with a gob body.
func writeGob(w http.ResponseWriter, v any) {
	buf, err := encodeGob(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf.Bytes())
}
